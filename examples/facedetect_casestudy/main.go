// Face Detection case study (paper Sec. IV-C): train the congestion
// predictor once, then walk the paper's two-step resolution — detect the
// hotspot in the baseline from HLS information alone, remove function
// inlining, detect the residual hotspot at the classifier inputs, replicate
// the shared input data — validating each step with one real
// place-and-route run.
//
//	go run ./examples/facedetect_casestudy
package main

import (
	"fmt"
	"log"

	congest "repro"
)

func main() {
	cfg := congest.DefaultFlowConfig()

	fmt.Println("== training phase: one full C-to-FPGA run per training design ==")
	ds, _, err := congest.BuildTrainingDataset(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d samples, %.2f%% marginal operations filtered\n",
		ds.Len(), 100*ds.MarginalFraction())
	pred, err := congest.TrainPredictor(ds, congest.TrainOptions{
		Kind: congest.GBRT, Filter: true, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}

	steps := []struct {
		name string
		dir  congest.Directives
		note string
	}{
		{"Baseline", congest.WithDirectives(),
			"all directives on: inlined cascade, unrolled scan, partitioned window"},
		{"Not Inline", congest.NotInline(),
			"step 1: remove function inlining from the cascade"},
		{"Replication", congest.Replication(),
			"step 2: replicate the shared window data per classifier"},
	}
	for _, st := range steps {
		m := congest.FaceDetection(st.dir)
		fmt.Printf("\n== %s — %s ==\n", st.name, st.note)

		// Prediction phase: HLS information only, no placement or routing.
		preds, err := pred.PredictModule(m, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("predicted hottest source regions (from HLS IR only):")
		for i, h := range congest.Hotspots(preds) {
			if i >= 5 {
				break
			}
			fmt.Printf("  %-22s ops=%-4d predicted maxAvg=%6.1f%%\n", h.Loc, h.Ops, h.MaxAvg)
		}

		// Validation: one real implementation run, as the paper's Table VI.
		res, err := congest.RunFlow(m, cfg)
		if err != nil {
			log.Fatal(err)
		}
		p := res.Perf(st.name)
		fmt.Printf("actual PAR: WNS=%7.3f ns  Fmax=%5.1f MHz  latency=%d  maxV=%6.1f%%  maxH=%6.1f%%  congested CLBs=%d\n",
			p.WNS, p.FmaxMHz, p.LatencyCycles, p.MaxVertPct, p.MaxHorizPct, p.CongestedCLBs)
	}
	fmt.Println("\ncongestion resolved at the source level without iterating the RTL flow.")
}
