// Feature importance (paper Sec. IV-B): train the GBRT on the paper's
// dataset, then report which individual features and which of the seven
// categories the ensemble actually splits on — reproducing the analysis
// behind Table V.
//
//	go run ./examples/feature_importance
package main

import (
	"fmt"
	"log"
	"sort"

	congest "repro"
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/ml/gbrt"
)

func main() {
	cfg := congest.DefaultFlowConfig()
	ds, _, err := congest.BuildTrainingDataset(cfg)
	if err != nil {
		log.Fatal(err)
	}
	filtered, removed := ds.FilterMarginal()
	fmt.Printf("dataset: %d samples (%d marginal removed)\n", filtered.Len(), removed)

	X, y := filtered.Matrix(congest.Vertical)
	model := core.NewModel(core.GBRT, 11).(*gbrt.Model)
	if err := model.Fit(X, y); err != nil {
		log.Fatal(err)
	}
	imp := model.FeatureImportance()
	names := features.Names()
	cats := features.Categories()

	// Category shares.
	byCat := make([]float64, features.CategoryCount)
	for j, v := range imp {
		byCat[cats[j]] += v
	}
	fmt.Println("\nimportance share per category (vertical congestion):")
	order := make([]int, features.CategoryCount)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return byCat[order[a]] > byCat[order[b]] })
	for _, c := range order {
		fmt.Printf("  %-20s %6.1f%%\n", features.Category(c), 100*byCat[c])
	}

	// Top individual features.
	idx := make([]int, len(imp))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return imp[idx[a]] > imp[idx[b]] })
	fmt.Println("\ntop 15 individual features by split count:")
	for _, j := range idx[:15] {
		fmt.Printf("  %-34s %-20s %5.2f%%\n", names[j], cats[j], 100*imp[j])
	}
}
