// Design-space exploration: the paper's motivation is the trade-off
// between latency and routability when choosing HLS directives. This
// example sweeps Face Detection's directive space and prints the
// latency/frequency/congestion frontier, showing why a congestion-aware
// view matters during HLS-level DSE.
//
//	go run ./examples/design_space
package main

import (
	"fmt"
	"log"

	congest "repro"
)

func main() {
	cfg := congest.DefaultFlowConfig()
	fmt.Printf("%-34s %8s %10s %12s %8s %8s %6s\n",
		"directives", "WNS(ns)", "Fmax(MHz)", "latency", "maxV%", "maxH%", ">100%")

	type point struct {
		name string
		dir  congest.Directives
	}
	var sweep []point
	for _, unroll := range []int{1, 2, 4} {
		for _, inline := range []bool{false, true} {
			for _, part := range []bool{false, true} {
				d := congest.Directives{
					Inline:            inline,
					Unroll:            unroll,
					Pipeline:          true,
					PartitionComplete: part,
				}
				sweep = append(sweep, point{
					name: fmt.Sprintf("unroll=%d inline=%-5v partition=%-5v", unroll, inline, part),
					dir:  d,
				})
			}
		}
	}
	best := -1.0
	bestName := ""
	for _, pt := range sweep {
		res, err := congest.RunFlow(congest.FaceDetection(pt.dir), cfg)
		if err != nil {
			log.Fatal(err)
		}
		p := res.Perf(pt.name)
		fmt.Printf("%-34s %8.3f %10.1f %12d %8.1f %8.1f %6d\n",
			pt.name, p.WNS, p.FmaxMHz, p.LatencyCycles, p.MaxVertPct, p.MaxHorizPct, p.CongestedCLBs)
		// Throughput proxy: windows per second = Fmax / (latency per window).
		score := p.FmaxMHz * 1e6 / float64(p.LatencyCycles)
		if score > best {
			best = score
			bestName = pt.name
		}
	}
	fmt.Printf("\nbest frames-per-second proxy: %s\n", bestName)
}
