// Model reuse: train the congestion predictor once, persist it to disk,
// reload it (as a separate tool invocation would), and use it to screen a
// new design — the deployment workflow where training happens in CI and
// prediction happens interactively.
//
//	go run ./examples/model_reuse
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	congest "repro"
	"repro/internal/core"
)

func main() {
	cfg := congest.DefaultFlowConfig()
	modelPath := filepath.Join(os.TempDir(), "congest_gbrt.json")

	// --- Training side (run once, e.g. in CI) -----------------------------
	fmt.Println("training phase: building dataset and fitting GBRT...")
	ds, _, err := congest.BuildTrainingDataset(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(ds.Summary())
	pred, err := congest.TrainPredictor(ds, congest.TrainOptions{
		Kind: congest.GBRT, Filter: true, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(modelPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := pred.Save(f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	info, _ := os.Stat(modelPath)
	fmt.Printf("saved trained predictor to %s (%d KiB)\n\n", modelPath, info.Size()/1024)

	// --- Prediction side (every design iteration) -------------------------
	rf, err := os.Open(modelPath)
	if err != nil {
		log.Fatal(err)
	}
	defer rf.Close()
	loaded, err := core.LoadPredictor(rf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reloaded %s predictor; screening a new design without PAR...\n", loaded.Kind)

	design := congest.FaceDetection(congest.NotInline())
	preds, err := loaded.PredictModule(design, cfg)
	if err != nil {
		log.Fatal(err)
	}
	hs := congest.Hotspots(preds)
	fmt.Printf("top predicted congestion hotspots in %s:\n", design.Name)
	for i, h := range hs {
		if i >= 6 {
			break
		}
		fmt.Printf("  %-22s ops=%-4d predicted maxAvg=%6.1f%%\n", h.Loc, h.Ops, h.MaxAvg)
	}
	os.Remove(modelPath)
}
