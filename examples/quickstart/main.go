// Quickstart: build a small custom HLS design with the public API, run the
// simulated C-to-FPGA flow, and print its performance and congestion map.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	congest "repro"
)

func main() {
	// A toy FIR-like kernel: a completely partitioned coefficient bank and
	// a multiply-accumulate loop unrolled by 8.
	m := congest.NewModule("fir8")
	top := m.NewFunction("fir_top")
	b := congest.NewBuilder(top).At("fir.cpp", 5)

	x := b.Port("x_in", 16)
	coeffs := b.Array("coeffs", 32, 16, 32) // completely partitioned

	b.Line(12)
	var taps []*congest.Op
	b.UnrolledLoop("mac", 1024, 8, func(copy int) {
		c := b.Load(coeffs, nil)
		prod := b.Op(congest.KindMul, 16, x, c)
		sh := b.Op(congest.KindAShr, 16, prod, b.Const(4))
		taps = append(taps, sh)
	})
	b.Line(18)
	acc := b.ReduceTree(congest.KindAdd, 16, taps)
	b.Ret(acc)

	res, err := congest.RunFlow(m, congest.DefaultFlowConfig())
	if err != nil {
		log.Fatal(err)
	}
	p := res.Perf(m.Name)
	fmt.Printf("design %s: %d ops, %d cells, %d nets\n",
		m.Name, m.NumOps(), len(res.Netlist.Cells), len(res.Netlist.Nets))
	fmt.Printf("WNS=%.3f ns  Fmax=%.1f MHz  latency=%d cycles\n", p.WNS, p.FmaxMHz, p.LatencyCycles)
	fmt.Printf("max congestion: V=%.1f%%  H=%.1f%%  congested CLBs(>100%%)=%d\n",
		p.MaxVertPct, p.MaxHorizPct, p.CongestedCLBs)
	fmt.Print(res.Routing.Map.RenderASCII(congest.MapAverage, 2, 4))
}
