// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation section. Each benchmark regenerates its artifact from
// scratch through the full simulated flow and reports paper-facing figures
// as custom metrics, so
//
//	go test -bench=. -benchmem -benchtime=1x
//
// reproduces the entire evaluation. The rendered tables print once per run
// (first iteration) so the output doubles as the experiment log.
package congest

import (
	"context"
	"fmt"
	"os"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/experiments"
)

func benchCfg() experiments.Config {
	return experiments.DefaultConfig()
}

// printOnce deduplicates table printing across benchmark iterations.
var printOnce sync.Map

func printArtifact(b *testing.B, key, text string) {
	b.StopTimer()
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Println(text)
	}
	b.StartTimer()
}

// BenchmarkTableI regenerates Table I: Face Detection with vs without
// directives.
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.TableI(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].MaxCongPct, "withDir-maxCong%")
		b.ReportMetric(res.Rows[1].MaxCongPct, "noDir-maxCong%")
		b.ReportMetric(res.Rows[0].FmaxMHz, "withDir-Fmax-MHz")
		printArtifact(b, "table1", res.Format())
	}
}

// BenchmarkFigure1 regenerates Fig. 1: the two congestion maps.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure1(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		printArtifact(b, "fig1", res.Format())
	}
}

// BenchmarkTableIII regenerates Table III: the benchmark property summary.
func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.TableIII(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Max[2], "maxVert%")
		b.ReportMetric(res.Avg[4], "avgVH%")
		b.ReportMetric(float64(res.Samples), "samples")
		printArtifact(b, "table3", res.Format())
	}
}

// BenchmarkTableIV regenerates the headline Table IV: estimation accuracy
// of the three models with and without marginal-operation filtering.
func BenchmarkTableIV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.TableIV(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res.Rows {
			if r.Filtered && r.Kind.String() == "GBRT" {
				b.ReportMetric(r.Acc[dataset.Vertical].MAE, "GBRT-V-MAE%")
				b.ReportMetric(r.Acc[dataset.Vertical].MedAE, "GBRT-V-MedAE%")
				b.ReportMetric(r.Acc[dataset.Horizontal].MAE, "GBRT-H-MAE%")
			}
		}
		printArtifact(b, "table4", res.Format())
	}
}

// BenchmarkTableV regenerates Table V: important feature categories.
func BenchmarkTableV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.TableV(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		printArtifact(b, "table5", res.Format())
	}
}

// BenchmarkTableVI regenerates Table VI: the Face Detection case study.
func BenchmarkTableVI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.TableVI(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Rows[0].CongestedCLBs), "baseline-congCLBs")
		b.ReportMetric(float64(res.Rows[2].CongestedCLBs), "replication-congCLBs")
		b.ReportMetric(res.Rows[2].FmaxMHz, "replication-Fmax-MHz")
		printArtifact(b, "table6", res.Format())
	}
}

// BenchmarkFigure5 regenerates Fig. 5: the radial distribution of vertical
// congestion.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure5(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.CenterMean, "center-mean%")
		b.ReportMetric(res.MarginMean, "margin-mean%")
		printArtifact(b, "fig5", res.Format())
	}
}

// BenchmarkFigure6 regenerates Fig. 6: per-step congestion maps of the
// case study.
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure6(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		printArtifact(b, "fig6", res.Format())
	}
}

// BenchmarkAblationCategories knocks out one feature category at a time
// and reports the accuracy cost — the interventional counterpart of
// Table V.
func BenchmarkAblationCategories(b *testing.B) {
	cfg := benchCfg()
	ds, _, err := cfg.PaperDataset()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblateCategories(cfg, ds)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Baseline, "baseline-MAE%")
		printArtifact(b, "ablate-cat", res.Format())
	}
}

// BenchmarkAblationFilterThreshold sweeps the marginal-filter deviation
// threshold (Sec. III-C1's design knob).
func BenchmarkAblationFilterThreshold(b *testing.B) {
	cfg := benchCfg()
	ds, _, err := cfg.PaperDataset()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points, err := experiments.SweepFilterThreshold(cfg, ds, []float64{0, 0.5, 0.75, 0.9, 1.0})
		if err != nil {
			b.Fatal(err)
		}
		printArtifact(b, "ablate-filter", experiments.FormatFilterSweep(points))
	}
}

// BenchmarkAblationLabelAveraging rebuilds the dataset with 1..3 placement
// runs per label, quantifying the expected-congestion substitution
// DESIGN.md documents.
func BenchmarkAblationLabelAveraging(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		points, err := experiments.AblateLabelAveraging(cfg, []int{1, 2, 3})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(points[0].MAE, "runs1-MAE%")
		b.ReportMetric(points[len(points)-1].MAE, "runs3-MAE%")
		printArtifact(b, "ablate-runs", experiments.FormatLabelRuns(points))
	}
}

// BenchmarkTuning runs the paper-style grid search with cross-validation
// for each model family.
func BenchmarkTuning(b *testing.B) {
	cfg := benchCfg()
	ds, _, err := cfg.PaperDataset()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var all []*experiments.TuningResult
		for _, kind := range []ModelKind{Linear, GBRT} { // ANN CV is hours in pure Go
			r, err := experiments.Tuning(cfg, ds, kind)
			if err != nil {
				b.Fatal(err)
			}
			all = append(all, r)
		}
		printArtifact(b, "tuning", experiments.FormatTuning(all))
	}
}

// BenchmarkGeneralization measures leave-one-design-out accuracy — the
// cost of predicting a design family the model never saw, quantifying the
// paper's advice to enrich the dataset with the target design.
func BenchmarkGeneralization(b *testing.B) {
	cfg := benchCfg()
	ds, _, err := cfg.PaperDataset()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Generalization(cfg, ds)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.RandomSplit[dataset.Average].MAE, "randomsplit-MAE%")
		if len(res.Rows) > 0 {
			b.ReportMetric(res.Rows[0].Acc[dataset.Average].MAE, "heldout0-MAE%")
		}
		printArtifact(b, "generalize", res.Format())
	}
}

// BenchmarkHotspotDetection scores the paper's actual use case: does the
// predictor, from HLS information only, rank the same source lines hottest
// as a real place-and-route does?
func BenchmarkHotspotDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.HotspotDetection(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Spearman, "spearman")
		if p, ok := res.PrecisionAtK[5]; ok {
			b.ReportMetric(p, "precision@5")
		}
		printArtifact(b, "hotspots", res.Format())
	}
}

// BenchmarkBuildDataset measures the end-to-end training-dataset build —
// the hot loop the parallel execution layer targets — at several worker
// counts. Workers=1 is the sequential baseline; parallel builds produce
// byte-identical output (core's determinism test), so the sub-benchmark
// times are directly comparable. On a single-CPU host all worker counts
// collapse to sequential throughput; scripts/bench.sh records the CPU
// count alongside the timings for that reason.
func BenchmarkBuildDataset(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mods := TrainingModules()
				_, _, _, err := BuildDatasetResilient(context.Background(), mods,
					DefaultFlowConfig(), BuildOptions{LabelRuns: 2, Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBuildDatasetObserved is BenchmarkBuildDataset/workers=2 with a
// live observer (tracer + metrics registry) attached — the worst-case
// observation cost, since every flow stage, module cell and cache lookup
// records spans and metrics. The ratio to the unobserved workers=2 time is
// the enabled-observer overhead; scripts/bench.sh records both and asserts
// the *disabled* path (plain BenchmarkBuildDataset, nil observer) stays
// within 2% of the seed.
func BenchmarkBuildDatasetObserved(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mods := TrainingModules()
		cfg := WithObserver(DefaultFlowConfig(), NewObserver())
		_, _, _, err := BuildDatasetResilient(context.Background(), mods,
			cfg, BuildOptions{LabelRuns: 2, Workers: 2})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(cfg.Obs.Trace.Len()), "spans")
	}
}

// BenchmarkBuildDatasetWarmCache measures rebuilding the training dataset
// against a pre-populated flow cache — the steady state of experiment
// sweeps and ablations, where every (design, config, seed) implementation
// has already run once. Only back-tracing, graph building and feature
// extraction remain, so the ratio to BenchmarkBuildDataset/workers=1 is
// the speedup delivered by internal/flowcache. The warm build's output is
// byte-identical to a cold one (core's flow-cache determinism test).
func BenchmarkBuildDatasetWarmCache(b *testing.B) {
	cache := NewFlowCache(0)
	cfg := DefaultFlowConfig()
	cfg.Cache = cache
	opts := BuildOptions{LabelRuns: 2, Workers: 1}
	// Prime the cache with one untimed cold build.
	if _, _, _, err := BuildDatasetResilient(context.Background(), TrainingModules(), cfg, opts); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mods := TrainingModules()
		_, _, _, err := BuildDatasetResilient(context.Background(), mods, cfg, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if s := cache.Stats(); s.Hits == 0 {
		b.Fatal("warm rebuild never hit the cache; benchmark measured cold builds")
	}
}

// storeBuild runs one checkpointed training-dataset build against the
// persistent store at dir, with a fresh in-memory cache so the disk tier is
// the only carried-over state — exactly the cross-process resume scenario.
func storeBuild(b *testing.B, dir string) {
	b.Helper()
	s, err := OpenArtifactStore(dir, ArtifactStoreOptions{})
	if err != nil {
		b.Fatal(err)
	}
	cache := NewFlowCache(0)
	cache.AttachStore(s)
	cfg := DefaultFlowConfig()
	cfg.Cache = cache
	_, _, _, err = BuildDatasetResilient(context.Background(), TrainingModules(), cfg,
		BuildOptions{LabelRuns: 2, Workers: 1, Checkpoint: NewBuildCheckpoint(s)})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkBuildDatasetColdStore measures the training-dataset build while
// persisting every flow result and per-module checkpoint block to a fresh
// disk store — the first run of a crash-safe sweep. The ratio to plain
// BenchmarkBuildDataset/workers=1 is the durability overhead (encode +
// fsync + rename per artifact).
func BenchmarkBuildDatasetColdStore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir, err := os.MkdirTemp("", "congest-bench-store-")
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		storeBuild(b, dir)
		b.StopTimer()
		os.RemoveAll(dir)
		b.StartTimer()
	}
}

// BenchmarkBuildDatasetWarmStore measures the same build resumed against an
// already-populated store directory with a cold in-memory cache — the
// rerun-after-crash steady state. Every module restores from its checkpoint
// block (decode + verify, zero flow runs), so the ratio to ColdStore is the
// resume speedup the persistence layer delivers across process boundaries.
func BenchmarkBuildDatasetWarmStore(b *testing.B) {
	dir, err := os.MkdirTemp("", "congest-bench-store-")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	storeBuild(b, dir) // prime the store with one untimed cold build
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		storeBuild(b, dir)
	}
	b.StopTimer()
	s, err := OpenArtifactStore(dir, ArtifactStoreOptions{})
	if err != nil {
		b.Fatal(err)
	}
	if st := s.Stats(); st.Entries == 0 {
		b.Fatal("store is empty after warm rebuilds; benchmark measured cold builds")
	}
}

// BenchmarkFullFlowFaceDetection measures the simulated C-to-FPGA flow on
// the largest training design — the operation the paper's predictor lets a
// designer skip.
func BenchmarkFullFlowFaceDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := FaceDetection(WithDirectives())
		if _, err := RunFlow(m, DefaultFlowConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictionOnly measures the HLS-side prediction path (schedule,
// bind, features, model inference) — what replaces the full flow at design
// time.
func BenchmarkPredictionOnly(b *testing.B) {
	ds, _, err := BuildTrainingDataset(DefaultFlowConfig())
	if err != nil {
		b.Fatal(err)
	}
	pred, err := TrainPredictor(ds, TrainOptions{Kind: GBRT, Filter: true, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := FaceDetection(NotInline())
		if _, err := pred.PredictModule(m, DefaultFlowConfig()); err != nil {
			b.Fatal(err)
		}
	}
}
