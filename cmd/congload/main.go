// congload is congserve's load generator, with two firing disciplines:
//
//   - Closed-loop (default): N workers each keep exactly one /predict
//     request in flight. Throughput is what the server sustains; latency
//     hides queueing because a slow server slows the arrival rate too
//     (coordinated omission).
//   - Open-loop (-rate R): requests fire on a fixed schedule of R per
//     second regardless of how the server is doing, serviced by -conns
//     workers. Latency is measured from each request's *scheduled* fire
//     time, so server stalls show up as tail latency instead of vanishing
//     into a slower offered rate. When every worker is busy, ticks queue
//     in a bounded buffer; overflow is counted (dropped_ticks) rather
//     than silently stretching the schedule.
//
// Both report throughput percentiles as a parseable JSON document — the
// numbers behind BENCH_PR9.json (and PR7's before it).
//
// Usage:
//
//	congload -addr HOST:PORT [flags]
//	congload -addr HOST:PORT -probe FILE    one deterministic request;
//	                                        raw response body → FILE
//
// Flags:
//
//	-addr HOST:PORT   server address (required; scheme-less)
//	-duration DUR     run length (default 3s; ignored when -n > 0)
//	-n N              stop after N total requests instead of a duration
//	-concurrency C    closed-loop workers (default 4)
//	-rate R           open-loop offered load in req/s (0 = closed-loop)
//	-conns C          open-loop service workers (0 = -concurrency)
//	-rows R           feature rows per request (default 64)
//	-format F         binary (ContentF64) or json (default binary)
//	-warmup DUR       untimed warmup before measuring (default 200ms)
//	-out FILE         write the JSON report to FILE too ("" = stdout only)
//	-probe FILE       send one request built from the fixed seed, write
//	                  the raw response bytes to FILE and exit — lets
//	                  scripts diff responses across server configurations
//	                  (byte-identity of sharded vs single-shard serving)
//
// The report: {"mode", "requests", "errors", "shed", "preds",
// "duration_sec", "preds_per_sec", "requests_per_sec", "p50_us",
// "p90_us", "p99_us", "max_us", "rows", "concurrency", "format",
// "offered_rate", "conns", "dropped_ticks", "server_p99_us_bound",
// "server_shed", "server_reloads", "server_reload_errors", "server"} —
// the server_* fields mirror the server's own /debug/metrics counters
// (lifetime totals) so overload and reload behaviour is diagnosable from
// the report alone, and the "server" object is the *delta* of those
// metrics across the measured window (a /debug/metrics snapshot taken
// right before and right after): what the server itself saw THIS run —
// requests, predictions, sheds, errors, batches, and the latency window's
// count/p50/p99 interpolated from its histogram bucket deltas.
package main

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/features"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	os.Exit(realMain())
}

type report struct {
	// Mode is "closed" or "open" (see the package comment for the
	// difference in what the latency percentiles mean).
	Mode        string  `json:"mode"`
	Requests    int64   `json:"requests"`
	Errors      int64   `json:"errors"`
	Shed        int64   `json:"shed"`
	Preds       int64   `json:"preds"`
	DurationSec float64 `json:"duration_sec"`
	PredsPerSec float64 `json:"preds_per_sec"`
	ReqsPerSec  float64 `json:"requests_per_sec"`
	P50Us       float64 `json:"p50_us"`
	P90Us       float64 `json:"p90_us"`
	P99Us       float64 `json:"p99_us"`
	MaxUs       float64 `json:"max_us"`
	Rows        int     `json:"rows"`
	Concurrency int     `json:"concurrency"`
	Format      string  `json:"format"`
	// OfferedRate / Conns / DroppedTicks describe the open-loop schedule
	// (zero in closed-loop mode): the configured req/s, the worker pool
	// servicing the schedule, and the ticks dropped because the bounded
	// tick queue was full — nonzero dropped_ticks means the measured rate
	// undershot the offered rate and the percentiles describe a saturated
	// server.
	OfferedRate  float64 `json:"offered_rate"`
	Conns        int     `json:"conns"`
	DroppedTicks int64   `json:"dropped_ticks"`
	// ServerP99UsBound is the tightest serve.latency_us histogram bucket
	// bound covering ≥99% of the server's own ServeBytes observations —
	// the serving-layer p99 with the HTTP and network cost stripped away
	// (0 when /debug/metrics was unavailable).
	ServerP99UsBound float64 `json:"server_p99_us_bound"`
	// ServerShed/ServerReloads/ServerReloadErrors mirror the server's own
	// serve.shed / serve.reloads / serve.reload_errors counters from the
	// same /debug/metrics snapshot, so an overload or mid-run reload is
	// diagnosable from this report alone. They are lifetime totals, not
	// this run's delta, and 0 when the endpoint was unavailable.
	ServerShed         int64 `json:"server_shed"`
	ServerReloads      int64 `json:"server_reloads"`
	ServerReloadErrors int64 `json:"server_reload_errors"`
	// Server is the delta of the server's own metrics across the measured
	// window (nil when /debug/metrics was unavailable at either end) — the
	// server-side account of this run, with queueing and network stripped
	// to what ServeBytes itself observed.
	Server *serverDelta `json:"server,omitempty"`
}

// serverDelta is the change in the server's /debug/metrics between a
// snapshot taken just before the measured window and one just after.
// Counter deltas follow the Prometheus reset rule (a shrunk total — the
// server restarted mid-run — re-bases on the current value); the latency
// fields are the serve.latency_us histogram's window activity with p50/p99
// interpolated from its bucket deltas.
type serverDelta struct {
	Requests     int64   `json:"requests"`
	Predictions  int64   `json:"predictions"`
	Shed         int64   `json:"shed"`
	Errors       int64   `json:"errors"`
	Batches      int64   `json:"batches"`
	LatencyCount int64   `json:"latency_count"`
	LatencyP50Us float64 `json:"latency_p50_us"`
	LatencyP99Us float64 `json:"latency_p99_us"`
}

// deltaReport derives the measured-window server delta from two snapshots.
func deltaReport(before, after *obs.Snapshot) *serverDelta {
	if before == nil || after == nil {
		return nil
	}
	cd := func(name string) int64 {
		prev, _ := before.Counter(name)
		cur, _ := after.Counter(name)
		if cur < prev { // reset: the server restarted behind the endpoint
			return cur
		}
		return cur - prev
	}
	d := &serverDelta{
		Requests:    cd(obs.MetricServeRequests),
		Predictions: cd(obs.MetricServePredictions),
		Shed:        cd(obs.MetricServeShed),
		Errors:      cd(obs.MetricServeErrors),
		Batches:     cd(obs.MetricServeBatches),
	}
	if cur := after.Histogram(obs.MetricServeLatencyUs); cur != nil {
		hw := obs.HistogramWindow(before.Histogram(obs.MetricServeLatencyUs), cur)
		d.LatencyCount = hw.Count
		d.LatencyP50Us = hw.P50
		d.LatencyP99Us = hw.P99
	}
	return d
}

func realMain() int {
	addr := flag.String("addr", "", "server address HOST:PORT (required)")
	duration := flag.Duration("duration", 3*time.Second, "run length (ignored when -n > 0)")
	totalN := flag.Int64("n", 0, "stop after N requests instead of a duration")
	concurrency := flag.Int("concurrency", 4, "closed-loop workers")
	rate := flag.Float64("rate", 0, "open-loop offered load in req/s (0 = closed-loop)")
	conns := flag.Int("conns", 0, "open-loop service workers (0 = -concurrency)")
	rows := flag.Int("rows", 64, "feature rows per request")
	format := flag.String("format", "binary", "binary or json")
	warmup := flag.Duration("warmup", 200*time.Millisecond, "untimed warmup")
	out := flag.String("out", "", "also write the JSON report to FILE")
	probe := flag.String("probe", "", "send one deterministic request, write the raw response body to FILE, exit")
	flag.Parse()
	if *addr == "" || flag.NArg() != 0 {
		flag.Usage()
		return 2
	}
	isBinary := *format == "binary"
	if !isBinary && *format != "json" {
		fmt.Fprintln(os.Stderr, "congload: -format must be binary or json")
		return 2
	}

	payload := buildPayload(*rows, isBinary)
	url := "http://" + *addr + "/predict"
	contentType := serve.ContentJSON
	if isBinary {
		contentType = serve.ContentF64
	}

	// One transport with enough idle conns that each closed-loop worker
	// keeps its connection alive — measuring the server, not TCP setup.
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        *concurrency * 2,
		MaxIdleConnsPerHost: *concurrency * 2,
	}}

	if *probe != "" {
		// Probe mode: one request from the fixed payload seed, raw response
		// bytes to the file. Two servers are provably serving the same
		// predictions iff their probe files compare byte-equal.
		resp, err := client.Post(url, contentType, bytes.NewReader(payload))
		if err != nil {
			fmt.Fprintln(os.Stderr, "congload: probe:", err)
			return 1
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil || resp.StatusCode != http.StatusOK {
			fmt.Fprintf(os.Stderr, "congload: probe status %d: %s\n", resp.StatusCode, body)
			return 1
		}
		if err := os.WriteFile(*probe, body, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "congload:", err)
			return 1
		}
		return 0
	}

	shoot := func(buf *bytes.Reader) (int, error) {
		buf.Reset(payload)
		req, err := http.NewRequest(http.MethodPost, url, buf)
		if err != nil {
			return 0, err
		}
		req.Header.Set("Content-Type", contentType)
		resp, err := client.Do(req)
		if err != nil {
			return 0, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, nil
	}

	// Warmup: fill pools, JIT the connection reuse, let the server's lazy
	// scratch grow — untimed.
	wbuf := bytes.NewReader(payload)
	wend := time.Now().Add(*warmup)
	for time.Now().Before(wend) {
		if _, err := shoot(wbuf); err != nil {
			fmt.Fprintln(os.Stderr, "congload: warmup:", err)
			return 1
		}
	}

	// Bracket the measured window with server snapshots: the delta between
	// them is what the server itself saw during this run, immune to earlier
	// runs, the warmup and other clients inflating the lifetime totals.
	before := fetchSnapshot(client, *addr)

	var (
		requests, errCount, shed, dropped atomic.Int64
		mu                                sync.Mutex
		latencies                         []float64 // µs, merged per worker at the end
	)
	record := func(local *[]float64, status int, err error, lat float64) {
		switch {
		case err != nil:
			errCount.Add(1)
		case status == http.StatusTooManyRequests:
			shed.Add(1)
		case status != http.StatusOK:
			errCount.Add(1)
		default:
			*local = append(*local, lat)
		}
	}
	mode := "closed"
	openWorkers := 0
	if *rate > 0 {
		mode = "open"
		openWorkers = *conns
		if openWorkers <= 0 {
			openWorkers = *concurrency
		}
	}
	start := time.Now()
	deadline := start.Add(*duration)
	var wg sync.WaitGroup
	if mode == "open" {
		// Open loop: the scheduler emits ticks on an absolute timetable —
		// tick i fires at start + i/rate, immune to per-tick sleep drift —
		// and workers service the bounded queue, measuring latency from the
		// scheduled fire time so queueing delay counts against the server
		// instead of being coordinated away.
		interval := time.Duration(float64(time.Second) / *rate)
		ticks := make(chan time.Time, 4*openWorkers)
		go func() {
			defer close(ticks)
			for i := int64(0); ; i++ {
				if *totalN > 0 && i >= *totalN {
					return
				}
				sched := start.Add(time.Duration(i) * interval)
				if *totalN <= 0 && sched.After(deadline) {
					return
				}
				if d := time.Until(sched); d > 0 {
					time.Sleep(d)
				}
				select {
				case ticks <- sched:
				default:
					// Queue full: every worker is busy and the buffer has
					// absorbed what it can. Count the drop and hold the
					// schedule — never block, or this becomes a closed loop.
					dropped.Add(1)
				}
			}
		}()
		for w := 0; w < openWorkers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				buf := bytes.NewReader(payload)
				local := make([]float64, 0, 1<<16)
				for sched := range ticks {
					requests.Add(1)
					status, err := shoot(buf)
					record(&local, status, err, float64(time.Since(sched))/float64(time.Microsecond))
				}
				mu.Lock()
				latencies = append(latencies, local...)
				mu.Unlock()
			}()
		}
	} else {
		for w := 0; w < *concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				buf := bytes.NewReader(payload)
				local := make([]float64, 0, 1<<16)
				for {
					if *totalN > 0 {
						if requests.Add(1) > *totalN {
							break
						}
					} else {
						if time.Now().After(deadline) {
							break
						}
						requests.Add(1)
					}
					t0 := time.Now()
					status, err := shoot(buf)
					record(&local, status, err, float64(time.Since(t0))/float64(time.Microsecond))
				}
				mu.Lock()
				latencies = append(latencies, local...)
				mu.Unlock()
			}()
		}
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	n := requests.Load()
	if *totalN > 0 && n > *totalN {
		n = *totalN
	}
	ok := int64(len(latencies))
	r := report{
		Mode:         mode,
		Requests:     n,
		Errors:       errCount.Load(),
		Shed:         shed.Load(),
		Preds:        ok * int64(*rows),
		DurationSec:  elapsed,
		Rows:         *rows,
		Concurrency:  *concurrency,
		Format:       *format,
		OfferedRate:  *rate,
		Conns:        openWorkers,
		DroppedTicks: dropped.Load(),
	}
	if elapsed > 0 {
		r.PredsPerSec = float64(r.Preds) / elapsed
		r.ReqsPerSec = float64(ok) / elapsed
	}
	if len(latencies) > 0 {
		sort.Float64s(latencies)
		r.P50Us = quantile(latencies, 0.50)
		r.P90Us = quantile(latencies, 0.90)
		r.P99Us = quantile(latencies, 0.99)
		r.MaxUs = latencies[len(latencies)-1]
	}
	after := fetchSnapshot(client, *addr)
	r.ServerP99UsBound, r.ServerShed, r.ServerReloads, r.ServerReloadErrors =
		serverMetrics(after)
	r.Server = deltaReport(before, after)
	doc, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "congload:", err)
		return 1
	}
	doc = append(doc, '\n')
	os.Stdout.Write(doc)
	if *out != "" {
		if err := os.WriteFile(*out, doc, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "congload:", err)
			return 1
		}
	}
	if r.Errors > 0 {
		return 1
	}
	return 0
}

// fetchSnapshot reads the server's /debug/metrics document into the obs
// snapshot schema it was written from (the overflow bucket's "+Inf" bound
// round-trips via BucketSnap's unmarshaller). Returns nil when the
// endpoint is unavailable or the body does not parse — server metrics are
// a diagnostic rider, never a reason to fail the run.
func fetchSnapshot(client *http.Client, addr string) *obs.Snapshot {
	resp, err := client.Get("http://" + addr + "/debug/metrics")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if resp.StatusCode != http.StatusOK ||
		json.NewDecoder(resp.Body).Decode(&snap) != nil {
		return nil
	}
	return &snap
}

// serverMetrics extracts the lifetime fields the report mirrors from one
// snapshot: the tightest serve.latency_us bucket bound covering at least
// 99% of observations (0 when the snapshot or series is unavailable, -1
// when only the +Inf overflow bucket covers p99), plus the serve.shed /
// serve.reloads / serve.reload_errors counters.
func serverMetrics(snap *obs.Snapshot) (p99Bound float64, shed, reloads, reloadErrs int64) {
	if snap == nil {
		return 0, 0, 0, 0
	}
	shed, _ = snap.Counter(obs.MetricServeShed)
	reloads, _ = snap.Counter(obs.MetricServeReloads)
	reloadErrs, _ = snap.Counter(obs.MetricServeReloadErrors)
	if h := snap.Histogram(obs.MetricServeLatencyUs); h != nil && h.Count > 0 {
		var run int64
		for _, b := range h.Buckets {
			run += b.Count
			if float64(run) >= 0.99*float64(h.Count) {
				if math.IsInf(b.UpperBound, 1) {
					return -1, shed, reloads, reloadErrs
				}
				return b.UpperBound, shed, reloads, reloadErrs
			}
		}
	}
	return 0, shed, reloads, reloadErrs
}

// quantile reads the q-quantile from sorted µs samples (nearest-rank).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// buildPayload builds one request body with the library's real feature
// width so the server accepts it against any artifact.
func buildPayload(rows int, isBinary bool) []byte {
	rng := rand.New(rand.NewSource(42))
	if isBinary {
		b := binary.LittleEndian.AppendUint32(nil, uint32(rows))
		b = binary.LittleEndian.AppendUint32(b, uint32(features.NumFeatures))
		for i := 0; i < rows*features.NumFeatures; i++ {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(rng.NormFloat64()))
		}
		return b
	}
	var buf bytes.Buffer
	buf.WriteString(`{"rows":[`)
	for i := 0; i < rows; i++ {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.WriteByte('[')
		for j := 0; j < features.NumFeatures; j++ {
			if j > 0 {
				buf.WriteByte(',')
			}
			fmt.Fprintf(&buf, "%.6g", rng.NormFloat64())
		}
		buf.WriteByte(']')
	}
	buf.WriteString(`]}`)
	return buf.Bytes()
}
