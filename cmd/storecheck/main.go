// storecheck operates on a persistent artifact store (internal/store): it
// verifies every entry end to end, and it can drive a checkpointed dataset
// build against the store — the harness the crash-recovery check uses to
// kill a build mid-sweep and prove the rerun resumes to a byte-identical
// artifact.
//
// Usage:
//
//	storecheck -dir DIR                   verify every entry (exit 1 if any
//	                                      entry had to be quarantined)
//	storecheck -dir DIR -build [flags]    run a checkpointed dataset build
//
// Build flags:
//
//	-modules A,B      benchmark designs to build (see internal/bench.Catalog)
//	-label-runs N     label-averaging placement runs per module
//	-moves N          override placer moves (0 = flow default)
//	-seed N           base placement seed
//	-max-bytes N      store byte budget (0 = unbounded)
//	-out FILE         write the dataset artifact (canonical columnar
//	                  encoding) to FILE — byte-identical across reruns
//	-crash-after-puts N
//	                  SIGKILL this process right after the Nth store put,
//	                  simulating a crash at a deterministic point
//
// Both modes print one parseable "store: hit=..." line so scripts can
// assert on the store's behavior.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"syscall"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/flowcache"
	"repro/internal/ir"
	"repro/internal/store"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	dir := flag.String("dir", "", "artifact store directory (required)")
	build := flag.Bool("build", false, "run a checkpointed dataset build against the store")
	out := flag.String("out", "", "write the built dataset artifact to this file")
	modules := flag.String("modules", "digit_recognition,spam_filtering",
		"comma-separated benchmark designs to build")
	labelRuns := flag.Int("label-runs", 2, "label-averaging placement runs per module")
	moves := flag.Int("moves", 0, "override placer moves (0 = flow default)")
	seed := flag.Int64("seed", 1, "base placement seed")
	maxBytes := flag.Int64("max-bytes", 0, "store byte budget (0 = unbounded)")
	crashAfter := flag.Int("crash-after-puts", 0, "SIGKILL the process after N store puts")
	flag.Parse()
	if *dir == "" || flag.NArg() != 0 {
		flag.Usage()
		return 2
	}

	opts := store.Options{MaxBytes: *maxBytes}
	if *crashAfter > 0 {
		n := *crashAfter
		opts.PutHook = func(puts int) {
			if puts >= n {
				// A real crash, not an exit: no deferred cleanup, no
				// flushes. The next Open must recover on its own.
				syscall.Kill(os.Getpid(), syscall.SIGKILL)
			}
		}
	}
	s, err := store.Open(*dir, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "storecheck:", err)
		return 1
	}

	if !*build {
		return verify(s)
	}
	if err := runBuild(s, *modules, *labelRuns, *moves, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "storecheck:", err)
		return 1
	}
	return 0
}

// verify re-reads and fully verifies every entry; quarantined entries make
// the exit code nonzero so scripts catch silent corruption.
func verify(s *store.Store) int {
	ok, quarantined := s.VerifyAll()
	fmt.Printf("verify: ok=%d quarantined=%d\n", ok, quarantined)
	printStats(s)
	if quarantined > 0 {
		return 1
	}
	return 0
}

// runBuild executes a checkpointed dataset build with the store as both the
// flow cache's disk tier and the build checkpoint. Workers is pinned to 1
// so -crash-after-puts kills the process at a reproducible point.
func runBuild(s *store.Store, modules string, labelRuns, moves int, seed int64, out string) error {
	catalog := bench.Catalog()
	var mods []*ir.Module
	for _, name := range strings.Split(modules, ",") {
		name = strings.TrimSpace(name)
		gen, ok := catalog[name]
		if !ok {
			return fmt.Errorf("unknown design %q", name)
		}
		mods = append(mods, gen(bench.WithDirectives()))
	}
	cfg := flow.DefaultConfig()
	cfg.Seed = seed
	if moves > 0 {
		cfg.Place.Moves = moves
	}
	cache := flowcache.New(0)
	cache.AttachStore(s)
	cfg.Cache = cache

	ds, _, sum, err := core.BuildDatasetContext(context.Background(), mods, cfg, core.BuildOptions{
		LabelRuns:  labelRuns,
		Retry:      flow.DefaultRetryPolicy(),
		Workers:    1,
		Checkpoint: store.NewCheckpoint(s),
	})
	if err != nil {
		return err
	}
	fmt.Printf("build: modules=%d restored=%d flow_runs=%d samples=%d\n",
		sum.Modules, sum.Restored, sum.FlowRuns, ds.Len())
	printStats(s)
	if out != "" {
		if err := os.WriteFile(out, store.EncodeDataset(ds), 0o666); err != nil {
			return err
		}
	}
	return nil
}

// printStats emits the parseable store counter line scripts assert on.
func printStats(s *store.Store) {
	st := s.Stats()
	fmt.Printf("store: hit=%d miss=%d put=%d corrupt=%d evict=%d entries=%d bytes=%d\n",
		st.Hits, st.Misses, st.Puts, st.Corrupt, st.Evictions, st.Entries, st.Bytes)
}
