// congserve is the congestion predictor's serving daemon: it loads a
// SavePredictor artifact and answers POST /predict with per-op vertical /
// horizontal congestion predictions, coalescing concurrent requests into
// micro-batches on the zero-alloc inference path (see internal/serve).
//
// Usage:
//
//	congserve -model FILE [-addr HOST:PORT] [flags]      serve
//	congserve -train-quick -model FILE [flags]           train a quick
//	                                                     artifact, write it
//	                                                     to FILE and exit
//
// Serving flags:
//
//	-addr HOST:PORT     listen address (default 127.0.0.1:8347; :0 picks a
//	                    free port)
//	-addr-file FILE     write the bound address to FILE once listening —
//	                    how scripts discover a :0 port
//	-debug-addr H:P     serve /debug/* on a second listener too ("" = only
//	                    on the main mux)
//	-window DUR         micro-batch coalescing window (default 200µs;
//	                    negative = never wait)
//	-max-batch N        row cap of one coalesced batch (default 256)
//	-max-inflight N     admission cap; excess requests get 429 (default
//	                    4×GOMAXPROCS, rounded up to a multiple of -shards)
//	-shards N           independent batcher lanes; requests are routed by
//	                    affinity so lanes share nothing on the hot path
//	                    (default GOMAXPROCS)
//	-log-level LEVEL    debug, info, warn or error (default info)
//
// Observability flags:
//
//	-trace FILE         write a Chrome trace on exit (and on SIGHUP)
//	-metrics FILE       write a JSON metrics snapshot on exit (and SIGHUP)
//	-history-interval D time-series recorder sampling interval behind
//	                    /debug/metrics/history (default 1s; 0 disables)
//	-history-cap N      ring-buffer capacity in samples (default 300)
//	-breach-dir DIR     write breach captures (pprof + history) here
//	-breach-p99-us N    capture when a history window's serve.latency_us
//	                    p99 exceeds N microseconds (0 disables)
//	-breach-min-interval D  rate limit between captures (default 1m)
//
// Train-quick flags:
//
//	-modules A,B        benchmark designs to label (default
//	                    digit_recognition)
//	-moves N            placer moves per run (default 3000, the smoke
//	                    setting)
//	-seed N             base placement seed
//	-kind MODEL         linear, ann or gbrt (default gbrt)
//
// Signals: SIGHUP hot-reloads the model artifact from disk (also POST
// /reload); SIGINT/SIGTERM drain gracefully — in-flight requests finish,
// then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	addr := flag.String("addr", "127.0.0.1:8347", "listen address (:0 picks a free port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening")
	debugAddr := flag.String("debug-addr", "", "extra listener for /debug/* (\"\" = main mux only)")
	model := flag.String("model", "", "predictor artifact file (required)")
	window := flag.Duration("window", 200*time.Microsecond, "coalescing window (negative = never wait)")
	maxBatch := flag.Int("max-batch", 256, "row cap of one coalesced batch")
	maxInflight := flag.Int("max-inflight", 0, "admission cap (0 = 4×GOMAXPROCS)")
	shards := flag.Int("shards", 0, "batcher lanes (0 = GOMAXPROCS)")
	logLevel := flag.String("log-level", "info", "debug, info, warn or error")
	traceFile := flag.String("trace", "", "write a Chrome trace here on exit and on SIGHUP")
	metricsFile := flag.String("metrics", "", "write a JSON metrics snapshot here on exit and on SIGHUP")
	historyInterval := flag.Duration("history-interval", time.Second, "metrics history sampling interval (0 disables the recorder)")
	historyCap := flag.Int("history-cap", 300, "metrics history ring capacity in samples")
	breachDir := flag.String("breach-dir", "", "directory for breach captures (pprof + metrics history)")
	breachP99 := flag.Float64("breach-p99-us", 0, "capture when a window's serve.latency_us p99 exceeds this (0 disables)")
	breachMinInterval := flag.Duration("breach-min-interval", time.Minute, "rate limit between breach captures")
	trainQuick := flag.Bool("train-quick", false, "train a quick artifact to -model and exit")
	modules := flag.String("modules", "digit_recognition", "train-quick: benchmark designs, comma-separated")
	moves := flag.Int("moves", 3000, "train-quick: placer moves per run")
	seed := flag.Int64("seed", 1, "train-quick: base placement seed")
	kind := flag.String("kind", "gbrt", "train-quick: linear, ann or gbrt")
	flag.Parse()
	if *model == "" || flag.NArg() != 0 {
		flag.Usage()
		return 2
	}

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "congserve:", err)
		return 2
	}
	o := obs.New()
	o.Log = obs.NewLogger(os.Stderr, level)

	if *trainQuick {
		if err := trainQuickArtifact(o, *model, *modules, *kind, *moves, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "congserve:", err)
			return 1
		}
		return 0
	}
	oc := obsConfig{
		TraceFile:         *traceFile,
		MetricsFile:       *metricsFile,
		HistoryInterval:   *historyInterval,
		HistoryCap:        *historyCap,
		BreachDir:         *breachDir,
		BreachP99Us:       *breachP99,
		BreachMinInterval: *breachMinInterval,
	}
	if err := run(o, *addr, *addrFile, *debugAddr, *model, oc, serve.Options{
		MaxBatch:    *maxBatch,
		Window:      *window,
		MaxInflight: *maxInflight,
		Shards:      *shards,
		Obs:         o,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "congserve:", err)
		return 1
	}
	return 0
}

// obsConfig groups the serving daemon's observability knobs.
type obsConfig struct {
	TraceFile         string
	MetricsFile       string
	HistoryInterval   time.Duration
	HistoryCap        int
	BreachDir         string
	BreachP99Us       float64
	BreachMinInterval time.Duration
}

// flushObs writes the -trace / -metrics artifacts. Called on SIGHUP and
// on every exit path — including a drain started by SIGTERM — so an
// interrupted run still leaves valid artifacts behind.
func flushObs(o *obs.Observer, oc obsConfig) {
	write := func(path string, emit func(*os.File) error) {
		if path == "" {
			return
		}
		f, err := os.Create(path)
		if err == nil {
			err = emit(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "congserve: writing %s: %v\n", path, err)
		}
	}
	write(oc.TraceFile, func(f *os.File) error { return o.Trace.WriteChromeTrace(f) })
	write(oc.MetricsFile, func(f *os.File) error { return o.WriteMetricsJSON(f) })
}

// trainQuickArtifact labels the named benchmark designs with a reduced
// placer budget, trains a quick-size predictor and saves it to path — a
// self-contained way for scripts (and first-time users) to mint a valid
// serving artifact in seconds.
func trainQuickArtifact(o *obs.Observer, path, modules, kindName string, moves int, seed int64) error {
	var mk core.ModelKind
	switch strings.ToLower(kindName) {
	case "linear":
		mk = core.Linear
	case "ann":
		mk = core.ANN
	case "gbrt":
		mk = core.GBRT
	default:
		return fmt.Errorf("unknown model kind %q", kindName)
	}
	catalog := bench.Catalog()
	var mods []*ir.Module
	for _, name := range strings.Split(modules, ",") {
		name = strings.TrimSpace(name)
		gen, ok := catalog[name]
		if !ok {
			return fmt.Errorf("unknown design %q", name)
		}
		mods = append(mods, gen(bench.WithDirectives()))
	}
	cfg := flow.DefaultConfig()
	cfg.Seed = seed
	if moves > 0 {
		cfg.Place.Moves = moves
	}
	ds, _, _, err := core.BuildDatasetContext(context.Background(), mods, cfg, core.BuildOptions{
		LabelRuns: 1,
		Retry:     flow.DefaultRetryPolicy(),
		Workers:   1,
	})
	if err != nil {
		return fmt.Errorf("building training set: %w", err)
	}
	p, err := core.Train(ds, core.TrainOptions{Kind: mk, Seed: seed, Size: core.SizeQuick})
	if err != nil {
		return fmt.Errorf("training: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := p.Save(f); err != nil {
		f.Close()
		return fmt.Errorf("saving artifact: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("trained: kind=%s samples=%d model=%s\n", mk.String(), ds.Len(), path)
	return nil
}

// writeFileAtomic publishes content via temp-file + rename, so a script
// polling the path never reads a partially written file: rename within a
// directory is atomic and readers see either nothing or the whole address.
func writeFileAtomic(path string, content []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, content, 0o666); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// run serves until SIGINT/SIGTERM, hot-reloading on SIGHUP.
func run(o *obs.Observer, addr, addrFile, debugAddr, model string, oc obsConfig, opts serve.Options) error {
	s := serve.New(opts)
	m, err := s.LoadModel(model)
	if err != nil {
		return err
	}

	// Time-series recorder: samples the registry off the request path and
	// feeds /debug/metrics/history and the breach watcher. The request
	// path never touches it.
	if oc.HistoryInterval > 0 {
		rec := obs.NewRecorder(o.Reg, obs.RecorderOptions{
			Interval: oc.HistoryInterval,
			Capacity: oc.HistoryCap,
		})
		o.Rec = rec
		if oc.BreachDir != "" && oc.BreachP99Us > 0 {
			obs.NewBreachWatcher(rec,
				[]obs.BreachRule{{Metric: obs.MetricServeLatencyUs, P99Above: oc.BreachP99Us}},
				obs.BreachOptions{
					Dir:         oc.BreachDir,
					MinInterval: oc.BreachMinInterval,
					Log:         o.Logger(),
				})
		}
		rec.Start()
		defer rec.Stop()
	}
	defer flushObs(o, oc)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if addrFile != "" {
		if err := writeFileAtomic(addrFile, []byte(bound+"\n")); err != nil {
			ln.Close()
			return fmt.Errorf("writing -addr-file: %w", err)
		}
	}
	httpSrv := &http.Server{Handler: s.Handler()}

	var debugSrv *http.Server
	if debugAddr != "" {
		dln, err := net.Listen("tcp", debugAddr)
		if err != nil {
			ln.Close()
			return fmt.Errorf("debug listener: %w", err)
		}
		debugSrv = &http.Server{Handler: o.Handler()}
		go debugSrv.Serve(dln)
		if l := o.Logger(); l != nil {
			l.Info("debug listener up", "addr", dln.Addr().String())
		}
	}

	if l := o.Logger(); l != nil {
		l.Info("congserve up", "addr", bound, "model", model,
			"generation", m.Generation, "kind", m.Pred.Kind.String(),
			"window", s.Options().Window.String(), "max_batch", s.Options().MaxBatch,
			"max_inflight", s.Options().MaxInflight, "shards", s.Options().Shards)
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	for {
		select {
		case err := <-serveErr:
			if err != nil && !errors.Is(err, http.ErrServerClosed) {
				return err
			}
			return nil
		case sig := <-sigs:
			if sig == syscall.SIGHUP {
				if m, err := s.Reload(); err != nil {
					if l := o.Logger(); l != nil {
						l.Warn("SIGHUP reload rejected", "error", err)
					}
				} else if l := o.Logger(); l != nil {
					l.Info("SIGHUP reload done", "generation", m.Generation)
				}
				// Checkpoint the exporters too: a long-lived daemon's trace
				// and metrics files stay readable mid-run.
				flushObs(o, oc)
				continue
			}
			// Graceful drain: stop accepting connections and let every
			// in-flight request finish, then retire the coalescer.
			if l := o.Logger(); l != nil {
				l.Info("draining", "signal", sig.String())
			}
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			shutdownErr := httpSrv.Shutdown(ctx)
			stopErr := s.Stop(ctx)
			cancel()
			if debugSrv != nil {
				debugSrv.Close()
			}
			if shutdownErr != nil {
				return fmt.Errorf("shutdown: %w", shutdownErr)
			}
			if stopErr != nil {
				return stopErr
			}
			if l := o.Logger(); l != nil {
				l.Info("congserve down")
			}
			return nil
		}
	}
}
