// hlscong is the command-line front end of the congestion predictor: it
// regenerates the paper's tables and figures, trains the model, and prints
// predicted congestion hotspots for a benchmark design without running
// placement and routing.
//
// Usage:
//
//	hlscong [flags] <command>
//
// Commands:
//
//	table1 | table3 | table4 | table5 | table6   regenerate a paper table
//	fig1   | fig5   | fig6                       regenerate a paper figure
//	all                                          everything above in order
//	predict                                      train GBRT, predict hotspots
//	                                             for Face Detection and
//	                                             compare with the real PAR
//	report                                       HLS synthesis/utilization/QoR
//	tune                                         grid search + k-fold CV
//	ablate                                       design-choice ablations
//	hotspots                                     hotspot-detection score
//	generalize                                   leave-one-design-out accuracy
//	build                                        build the labelled dataset and
//	                                             write its canonical encoded
//	                                             artifact (-out); locally, or
//	                                             coordinating a worker fleet
//	                                             with -serve-builds
//
// Flags:
//
//	-quick       use shrunken ML models (fast smoke run)
//	-seed N      split/model seed (default 42)
//	-design D    predict target: baseline|noinline|replication (default baseline)
//	-timeout D   abort after D (e.g. 90s, 10m); flow runs stop within one
//	             placer/router iteration
//	-workers N   concurrent flow runs / grid-search cells (0 = one per CPU,
//	             1 = sequential; the output is identical either way)
//	-flowcache N memoize up to N completed flow runs so repeated
//	             (design, config, seed) implementations are served from
//	             cache (0 disables; results are identical either way)
//	-store-dir D persist completed flow runs and dataset-build checkpoints
//	             to a crash-safe artifact store under D: a rerun (or a run
//	             killed mid-sweep) restores finished work from disk instead
//	             of recomputing it; results are identical either way
//	-store-max-bytes N
//	             evict least-recently-used store entries past N bytes
//	             (0 = unbounded)
//	-cpuprofile F / -memprofile F
//	             write a CPU / heap profile to F for `go tool pprof`
//	-trace F     write a Chrome trace_event JSON of every flow stage, retry
//	             and cache event to F (load in chrome://tracing or Perfetto)
//	-metrics F   write a JSON snapshot of all counters/gauges/histograms to F
//	-log-level L stream structured logs to stderr at debug|info|warn|error
//	-debug-addr A
//	             serve /debug/metrics, /debug/trace and /debug/vars on A
//	             (e.g. localhost:6060) for the duration of the run
//
// Fleet flags (distributed dataset builds; see DESIGN.md §11):
//
//	-serve-builds A
//	             with the build command: serve the cell grid as a
//	             work-stealing queue on A (e.g. 127.0.0.1:0) and let
//	             joined workers run the flows; the artifact is
//	             byte-identical to a local -workers 1 build
//	-join A      run as a fleet worker: pull cells from the coordinator
//	             at A until the build completes (no command argument)
//	-fleet-name S
//	             worker name for lease ownership and per-worker metrics
//	             (default worker-<pid>)
//	-fleet-lease D
//	             coordinator lease TTL: a cell unresolved this long is
//	             re-queued and its worker counted lost (default 30s)
//	-fleet-addr-file F
//	             coordinator writes its bound address to F (for scripts
//	             that bind port 0)
//	-modules M1,M2
//	             build: comma-separated benchmark names (default: the
//	             paper's three training implementations)
//	-label-runs N
//	             build: placement seeds averaged per label (default 3)
//	-moves N     build: placer move budget override (0 = default)
//	-out F       build: write the encoded dataset artifact to F
//
// Any of the four observability flags arms the observer; an end-of-run
// per-stage wall-time summary is then printed to stderr. With none set the
// run is entirely unobserved and byte-identical output is guaranteed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"repro/internal/backtrace"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/flow"
	"repro/internal/flowcache"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/store"
)

func main() {
	os.Exit(realMain())
}

// realMain carries the exit code back through the deferred profile flushes
// (os.Exit in main would skip them).
func realMain() (code int) {
	quick := flag.Bool("quick", false, "use shrunken ML models")
	seed := flag.Int64("seed", 42, "split/model seed")
	design := flag.String("design", "baseline", "predict target: baseline|noinline|replication")
	timeout := flag.Duration("timeout", 0, "abort after this long (0 = no limit)")
	workers := flag.Int("workers", 0, "concurrent flow runs / CV cells (0 = one per CPU, 1 = sequential)")
	cacheSize := flag.Int("flowcache", flowcache.DefaultMaxEntries,
		"memoize up to N completed flow runs (0 disables)")
	storeDir := flag.String("store-dir", "",
		"persist flow runs and build checkpoints to this artifact store directory")
	storeMaxBytes := flag.Int64("store-max-bytes", 0,
		"evict least-recently-used store entries past this many bytes (0 = unbounded)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	traceFile := flag.String("trace", "", "write a Chrome trace_event JSON to this file")
	metricsFile := flag.String("metrics", "", "write a JSON metrics snapshot to this file")
	logLevel := flag.String("log-level", "", "structured logs to stderr: debug|info|warn|error")
	debugAddr := flag.String("debug-addr", "", "serve /debug/{metrics,trace,vars} on this address")
	var ff fleetFlags
	flag.StringVar(&ff.serveBuilds, "serve-builds", "", "with `build`: coordinate a worker fleet on this address")
	flag.StringVar(&ff.join, "join", "", "run as a fleet worker pulling cells from this coordinator address")
	flag.DurationVar(&ff.leaseTTL, "fleet-lease", 30*time.Second, "coordinator lease TTL before a cell is re-queued")
	flag.StringVar(&ff.name, "fleet-name", "", "worker name (default worker-<pid>)")
	flag.StringVar(&ff.addrFile, "fleet-addr-file", "", "coordinator writes its bound address to this file")
	flag.StringVar(&ff.modules, "modules", "", "build: comma-separated benchmark names (default: training set)")
	flag.IntVar(&ff.labelRuns, "label-runs", 0, "build: placement seeds averaged per label (0 = paper default)")
	flag.IntVar(&ff.moves, "moves", 0, "build: placer move budget override (0 = default)")
	flag.StringVar(&ff.out, "out", "", "build: write the encoded dataset artifact to this file")
	flag.Parse()
	if n := flag.NArg(); (ff.join == "" && n != 1) || (ff.join != "" && n != 0) {
		flag.Usage()
		return 2
	}

	// No internal invariant panic may take the process down without a
	// diagnosis: convert it to a message and a non-zero exit. Registered
	// before the profile defers so those still flush on the way out.
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(os.Stderr, "hlscong: internal panic: %v\n", r)
			code = 3
		}
	}()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hlscong:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "hlscong:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hlscong:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "hlscong:", err)
			}
		}()
	}

	// SIGTERM gets the same graceful treatment as ^C: the context cancels,
	// flow runs stop at the next iteration boundary, and the deferred
	// exporter flushes below still write their files on the way out.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if *timeout > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, *timeout)
		defer tcancel()
	}

	cfg := experiments.DefaultConfig()
	cfg.Quick = *quick
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.Ctx = ctx
	var cache *flowcache.Cache
	if *cacheSize > 0 {
		// Repeated (design, config, seed) implementations — label runs,
		// ablations, the "all" command — are served from cache; the output
		// is byte-identical with the cache off.
		cache = flowcache.New(*cacheSize)
		cfg.Flow.Cache = cache
	} else {
		cfg.Flow.Cache = nil // -flowcache 0 disables memoization entirely
	}
	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(*storeDir, store.Options{MaxBytes: *storeMaxBytes})
		if err != nil {
			fmt.Fprintln(os.Stderr, "hlscong:", err)
			return 1
		}
		// The store backs both tiers of persistence: completed flow runs
		// spill through the flow cache, and dataset builds checkpoint
		// per-module progress so a killed run resumes.
		if cache != nil {
			cache.AttachStore(st)
		}
		cfg.Checkpoint = store.NewCheckpoint(st)
	}

	// Any observability flag arms the observer. Observation rides along on
	// the flow config and never changes what the commands compute or print
	// to stdout; traces, metrics and the stage summary go to files/stderr.
	observing := *traceFile != "" || *metricsFile != "" || *logLevel != "" || *debugAddr != ""
	var o *obs.Observer
	if observing {
		o = obs.New()
		if *logLevel != "" {
			lv, err := obs.ParseLevel(*logLevel)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hlscong:", err)
				return 2
			}
			o.Log = obs.NewLogger(os.Stderr, lv)
		}
		cfg.Flow.Obs = o
		if cache != nil {
			cache.SetObserver(o) // forwards to the attached store, if any
		} else {
			st.SetObserver(o) // nil-safe
		}
		if *debugAddr != "" {
			addr, err := o.Serve(*debugAddr)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hlscong:", err)
				return 1
			}
			fmt.Fprintf(os.Stderr, "hlscong: debug endpoint: http://%s/debug/metrics\n", addr)
		}
		// SIGHUP flushes the exporters mid-run — a long dataset build can be
		// inspected in chrome://tracing without waiting for (or killing) the
		// process. The final deferred flush below still rewrites the files
		// with the complete picture on exit.
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		defer signal.Stop(hup)
		go func() {
			for range hup {
				if err := writeObsOutputs(o, *traceFile, *metricsFile); err != nil {
					fmt.Fprintln(os.Stderr, "hlscong:", err)
				}
			}
		}()
		// Flush trace/metrics and print the stage summary even when the
		// command fails — a failed run's trace is the one you want most.
		defer func() {
			if err := writeObsOutputs(o, *traceFile, *metricsFile); err != nil {
				fmt.Fprintln(os.Stderr, "hlscong:", err)
				if code == 0 {
					code = 1
				}
			}
			fmt.Fprint(os.Stderr, stageSummary(o, cache, st))
		}()
	}

	ff.breachDir = *storeDir // breach captures live with the build artifacts

	var err error
	switch {
	case ff.join != "":
		err = runWorker(ctx, ff, cfg.Flow.Cache, o)
	case flag.Arg(0) == "build":
		err = runBuild(ctx, cfg, ff)
	default:
		err = run(cfg, flag.Arg(0), *design)
	}
	if err != nil {
		reportError(err)
		return 1
	}
	return 0
}

// writeObsOutputs exports the collected spans and metrics to the requested
// files.
func writeObsOutputs(o *obs.Observer, traceFile, metricsFile string) error {
	if traceFile != "" && o.Trace != nil {
		f, err := os.Create(traceFile)
		if err != nil {
			return err
		}
		err = o.Trace.WriteChromeTrace(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
		fmt.Fprintf(os.Stderr, "hlscong: wrote %d spans to %s\n", o.Trace.Len(), traceFile)
	}
	if metricsFile != "" {
		f, err := os.Create(metricsFile)
		if err != nil {
			return err
		}
		err = o.WriteMetricsJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("writing metrics: %w", err)
		}
		fmt.Fprintf(os.Stderr, "hlscong: wrote metrics snapshot to %s\n", metricsFile)
	}
	return nil
}

// stageSummary renders the end-of-run per-stage wall-time table from the
// metrics registry, plus flow/cache/store totals.
func stageSummary(o *obs.Observer, cache *flowcache.Cache, st *store.Store) string {
	snap := o.Metrics().Snapshot()
	var b []byte
	add := func(format string, args ...any) { b = fmt.Appendf(b, format, args...) }
	add("\nRUN SUMMARY (wall time per flow stage)\n")
	add("  %-10s %6s %10s %10s %10s %10s\n", "stage", "runs", "total", "mean", "min", "max")
	printed := false
	for _, stage := range flow.Stages {
		h := snap.Histogram(obs.MetricStagePrefix + stage)
		if h == nil || h.Count == 0 {
			continue
		}
		printed = true
		add("  %-10s %6d %9.1fms %9.2fms %9.2fms %9.2fms\n",
			stage, h.Count, h.Sum, h.Mean, h.Min, h.Max)
	}
	if !printed {
		add("  (no flow stages ran)\n")
	}
	if runs, ok := snap.Counter(obs.MetricFlowRuns); ok {
		retries, _ := snap.Counter(obs.MetricFlowRetries)
		faults, _ := snap.Counter(obs.MetricFlowFaults)
		add("  flow runs: %d (%d retries, %d faults injected)\n", runs, retries, faults)
	}
	if cache != nil {
		add("  %s\n", cache.Stats())
	}
	if st != nil {
		add("  %s\n", st.Stats())
	}
	if cps, ok := snap.Gauge(obs.MetricGridCandidatesPerSec); ok {
		add("  grid search: %.1f candidates/sec\n", cps)
	}
	return string(b)
}

// reportError prints the failure with its stage-error chain spelled out,
// so a failed dataset build names every skipped design, stage and seed.
func reportError(err error) {
	fmt.Fprintln(os.Stderr, "hlscong:", err)
	for _, se := range stageErrors(err) {
		fmt.Fprintf(os.Stderr, "hlscong:   stage=%s design=%q seed=%d attempt-cause: %v\n",
			se.Stage, se.Design, se.Seed, se.Err)
	}
	switch {
	case errors.Is(err, flow.ErrTimedOut):
		fmt.Fprintln(os.Stderr, "hlscong: run exceeded -timeout; rerun with a larger budget or -quick")
	case errors.Is(err, context.Canceled):
		fmt.Fprintln(os.Stderr, "hlscong: interrupted")
	}
}

// stageErrors collects every *flow.StageError in the error tree, walking
// both single-cause chains and errors.Join lists.
func stageErrors(err error) []*flow.StageError {
	var out []*flow.StageError
	var walk func(error)
	walk = func(e error) {
		if e == nil {
			return
		}
		if se, ok := e.(*flow.StageError); ok {
			out = append(out, se)
			return
		}
		switch u := e.(type) {
		case interface{ Unwrap() error }:
			walk(u.Unwrap())
		case interface{ Unwrap() []error }:
			for _, c := range u.Unwrap() {
				walk(c)
			}
		}
	}
	walk(err)
	return out
}

func run(cfg experiments.Config, cmd, design string) error {
	switch cmd {
	case "table1":
		return show(experiments.TableI(cfg))
	case "table3":
		return show(experiments.TableIII(cfg))
	case "table4":
		return show(experiments.TableIV(cfg))
	case "table5":
		return show(experiments.TableV(cfg))
	case "table6":
		return show(experiments.TableVI(cfg))
	case "fig1":
		return show(experiments.Figure1(cfg))
	case "fig5":
		return show(experiments.Figure5(cfg))
	case "fig6":
		return show(experiments.Figure6(cfg))
	case "all":
		for _, c := range []string{"table1", "fig1", "table3", "table4", "table5", "table6", "fig5", "fig6"} {
			if err := run(cfg, c, design); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	case "predict":
		return predict(cfg, design)
	case "report":
		var dir bench.Directives
		switch design {
		case "baseline":
			dir = bench.WithDirectives()
		case "noinline":
			dir = bench.NotInline()
		case "replication":
			dir = bench.Replication()
		default:
			return fmt.Errorf("unknown design %q", design)
		}
		res, err := experiments.RunOnce(bench.FaceDetection(dir), cfg)
		if err != nil {
			return err
		}
		fmt.Print(report.Full(res))
		return nil
	case "tune":
		results, err := experiments.TuneAll(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTuning(results))
		var total time.Duration
		for _, r := range results {
			total += r.Elapsed
		}
		fmt.Printf("total grid-search wall time: %.2fs\n", total.Seconds())
		return nil
	case "ablate":
		return ablate(cfg)
	case "hotspots":
		res, err := experiments.HotspotDetection(cfg)
		if err != nil {
			return err
		}
		fmt.Print(res.Format())
		return nil
	case "generalize":
		ds, _, err := cfg.PaperDataset()
		if err != nil {
			return err
		}
		res, err := experiments.Generalization(cfg, ds)
		if err != nil {
			return err
		}
		fmt.Print(res.Format())
		return nil
	}
	return fmt.Errorf("unknown command %q", cmd)
}

// formatter is what every experiment result knows how to do.
type formatter interface{ Format() string }

func show[T formatter](res T, err error) error {
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	return nil
}

// ablate runs the design-choice ablations: feature-category knockout, the
// marginal-filter threshold sweep, and label-averaging depth.
func ablate(cfg experiments.Config) error {
	ds, _, err := cfg.PaperDataset()
	if err != nil {
		return err
	}
	cat, err := experiments.AblateCategories(cfg, ds)
	if err != nil {
		return err
	}
	fmt.Print(cat.Format())
	sweep, err := experiments.SweepFilterThreshold(cfg, ds, []float64{0, 0.5, 0.75, 0.9, 1.0})
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatFilterSweep(sweep))
	runs, err := experiments.AblateLabelAveraging(cfg, []int{1, 2, 3})
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatLabelRuns(runs))
	return nil
}

// predict demonstrates the prediction phase: train on the paper's dataset,
// estimate per-op congestion for the requested Face Detection variant with
// the HLS-side information only, report the hottest source lines, then run
// the real PAR once to show where the actual congestion landed.
func predict(cfg experiments.Config, design string) error {
	var dir bench.Directives
	switch design {
	case "baseline":
		dir = bench.WithDirectives()
	case "noinline":
		dir = bench.NotInline()
	case "replication":
		dir = bench.Replication()
	default:
		return fmt.Errorf("unknown design %q", design)
	}
	fmt.Println("building training dataset (3 implementations, full flow)...")
	ds, _, err := cfg.PaperDataset()
	if err != nil {
		return err
	}
	fmt.Printf("dataset: %d samples (%.2f%% marginal)\n", ds.Len(), 100*ds.MarginalFraction())
	pred, err := core.Train(ds, core.TrainOptions{Kind: core.GBRT, Filter: true, Seed: cfg.Seed})
	if err != nil {
		return err
	}
	m := bench.FaceDetection(dir)
	preds, err := pred.PredictModule(m, cfg.Flow)
	if err != nil {
		return err
	}
	fmt.Printf("\npredicted congestion hotspots for %s/%s (no PAR run):\n", m.Name, design)
	hot := core.Hotspots(preds)
	for i, h := range hot {
		if i >= 8 {
			break
		}
		fmt.Printf("  %-22s ops=%-4d maxAvg=%6.1f%% meanV=%6.1f%% meanH=%6.1f%%\n",
			h.Loc, h.Ops, h.MaxAvg, h.MeanV, h.MeanH)
	}
	fmt.Println("\nvalidating against one real place-and-route run...")
	res, err := experiments.RunOnce(m, cfg)
	if err != nil {
		return err
	}
	actual := backtrace.HotspotsBySource(backtrace.Trace(res))
	fmt.Println("actual congestion hotspots after PAR:")
	for i, h := range actual {
		if i >= 8 {
			break
		}
		fmt.Printf("  %-22s ops=%-4d maxAvg=%6.1f%% meanV=%6.1f%% meanH=%6.1f%%\n",
			h.Loc, h.Ops, h.MaxAvg, h.MeanV, h.MeanH)
	}
	return nil
}
