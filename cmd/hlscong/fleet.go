// Fleet-mode entry points: the `build` command (local or coordinating a
// worker fleet) and the -join worker loop. Both sides assemble the exact
// dataset a sequential `build -workers 1` produces — the fleet protocol
// verifies every completion against its flow.CacheKey, so distribution
// changes wall time, never bytes.
package main

import (
	"context"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/flow"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/store"
)

// fleetFlags carries the build/fleet command-line options from realMain.
type fleetFlags struct {
	serveBuilds string        // coordinator listen address ("" = build locally)
	join        string        // coordinator address to pull work from ("" = not a worker)
	leaseTTL    time.Duration // coordinator lease expiry
	name        string        // worker name ("" = worker-<pid>)
	addrFile    string        // coordinator writes its bound address here
	breachDir   string        // breach captures land here (the -store-dir, when set)
	modules     string        // comma-separated bench.Catalog names ("" = training set)
	labelRuns   int           // placement seeds averaged per label
	moves       int           // placer move budget override (0 = default)
	out         string        // encoded dataset artifact path ("" = don't write)
}

// buildModules resolves the -modules list against the benchmark catalog.
// An empty list means the paper's three training implementations.
func buildModules(names string) ([]*ir.Module, error) {
	if names == "" {
		return bench.TrainingModules(), nil
	}
	catalog := bench.Catalog()
	var mods []*ir.Module
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		gen, ok := catalog[name]
		if !ok {
			return nil, fmt.Errorf("unknown module %q (see bench.Catalog)", name)
		}
		mods = append(mods, gen(bench.WithDirectives()))
	}
	return mods, nil
}

// runBuild executes the `build` command: construct the dataset over the
// requested modules and write the canonical encoded artifact to -out.
// With -serve-builds it coordinates a worker fleet instead of running
// cells in-process; the artifact is byte-identical either way.
func runBuild(ctx context.Context, cfg experiments.Config, ff fleetFlags) error {
	mods, err := buildModules(ff.modules)
	if err != nil {
		return err
	}
	fcfg := cfg.Flow
	if ff.moves > 0 {
		fcfg.Place.Moves = ff.moves
	}
	labelRuns := ff.labelRuns
	if labelRuns < 1 {
		labelRuns = core.LabelRuns
	}
	opts := core.BuildOptions{
		LabelRuns:  labelRuns,
		Retry:      flow.DefaultRetryPolicy(),
		Workers:    cfg.Workers,
		Checkpoint: cfg.Checkpoint,
	}

	var (
		ds       *dataset.Dataset
		summary  *core.BuildSummary
		buildErr error
	)
	if ff.serveBuilds == "" {
		ds, _, summary, buildErr = core.BuildDatasetContext(ctx, mods, fcfg, opts)
	} else {
		spec, err := fleet.NewBuildSpec(mods, fcfg, labelRuns, opts.Retry)
		if err != nil {
			return err
		}
		coord, err := fleet.NewCoordinator(spec, fleet.CoordinatorOptions{
			LeaseTTL: ff.leaseTTL,
			Obs:      fcfg.Obs,
		})
		if err != nil {
			return err
		}
		bound, shutdown, err := coord.Serve(ff.serveBuilds)
		if err != nil {
			return err
		}
		defer shutdown()
		// An observed coordinator also runs the flight recorder, so
		// /debug/metrics/history shows worker cell rates live and a breach
		// watcher can turn a lost worker into a profile capture on disk
		// (under the artifact store, next to the checkpoints it orphaned).
		if o := fcfg.Obs; o != nil {
			rec := obs.NewRecorder(o.Metrics(), obs.RecorderOptions{})
			o.Rec = rec
			rec.Start()
			defer rec.Stop()
			if ff.breachDir != "" {
				rules := []obs.BreachRule{{Metric: obs.MetricFleetWorkerLost, DeltaAtLeast: 1}}
				if obs.NewBreachWatcher(rec, rules, obs.BreachOptions{Dir: ff.breachDir, Log: o.Logger()}) != nil {
					fmt.Fprintf(os.Stderr, "hlscong: breach watcher armed: %s -> %s\n",
						obs.MetricFleetWorkerLost, ff.breachDir)
				}
			}
		}
		if ff.addrFile != "" {
			if err := os.WriteFile(ff.addrFile, []byte(bound), 0o644); err != nil {
				return fmt.Errorf("write -fleet-addr-file: %w", err)
			}
		}
		fmt.Fprintf(os.Stderr, "hlscong: coordinating fleet build on %s (%d modules × %d label runs)\n",
			bound, len(mods), labelRuns)
		ds, _, summary, buildErr = core.BuildDatasetExec(ctx, mods, fcfg, opts, coord.Execute)
		st := coord.StatusSnapshot()
		fmt.Fprintf(os.Stderr,
			"hlscong: fleet: %d cells done, %d failed, %d steals, %d leases expired, %d duplicate, %d rejected completions\n",
			st.Done, st.Failed, st.Steals, st.Lost, st.Dups, st.Bad)
		for name, cells := range st.Workers {
			fmt.Fprintf(os.Stderr, "hlscong: fleet:   worker %s: %d cells\n", name, cells)
		}
		// Leave the server up briefly so idle workers observe Done on their
		// next lease poll and exit cleanly instead of hitting a dead socket.
		time.Sleep(200 * time.Millisecond)
	}
	if ds == nil {
		return buildErr
	}
	fmt.Print(summary.Format())
	fmt.Printf("dataset: %d samples, %d features\n", ds.Len(), len(ds.FeatureNames))
	if ff.out != "" {
		payload := store.EncodeDataset(ds)
		if err := os.WriteFile(ff.out, payload, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %d bytes to %s\n", len(payload), ff.out)
	}
	return buildErr
}

// runWorker joins the coordinator at ff.join and runs cells until the
// build finishes or ctx is cancelled. The worker's cache (and through it
// the shared artifact store, when -store-dir points at one) dedupes cells
// it has run before — a re-queued or stolen cell replays from disk.
func runWorker(ctx context.Context, ff fleetFlags, cache flow.Cache, o *obs.Observer) error {
	name := ff.name
	if name == "" {
		name = fmt.Sprintf("worker-%d", os.Getpid())
	}
	client := fleet.NewClient(ff.join, nil)
	w, err := fleet.Join(client, fleet.WorkerOptions{Name: name, Cache: cache, Obs: o})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "hlscong: worker %s joined fleet at %s\n", name, ff.join)
	completed, err := w.Run(ctx)
	fmt.Fprintf(os.Stderr, "hlscong: worker %s done: %d cells completed\n", name, completed)
	return err
}
