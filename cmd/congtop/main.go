// congtop is the terminal dashboard over the /debug observability
// surface: it polls a process's /debug/metrics/history ring (congserve or
// an hlscong coordinator run with -history-interval / -debug-addr) and
// repaints a live view of what the flight recorder sees — counter rates,
// gauges, histogram window p50/p99 — plus, when -fleet points at a
// coordinator, the build's cell progress and per-worker balance.
//
// congtop reads the derived series the recorder already computed; it does
// no rate math of its own, so what it shows is exactly what a breach
// capture would have dumped to disk at that moment.
//
// Usage:
//
//	congtop -addr HOST:PORT [flags]
//
// Flags:
//
//	-addr HOST:PORT   /debug endpoint to poll (required)
//	-fleet HOST:PORT  also poll this fleet coordinator's /fleet/status
//	-interval DUR     poll interval (default 1s)
//	-frames N         exit after N frames (0 = run until interrupted)
//	-once             one frame, no screen control, then exit
//	                  (exit 1 when the endpoint is unreachable)
//	-plain            no ANSI escapes: frames append instead of repainting
//
// A metric with no window activity is elided, so an idle process renders
// a short frame rather than a wall of zeros.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"time"

	"repro/internal/fleet"
	"repro/internal/obs"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	addr := flag.String("addr", "", "debug endpoint HOST:PORT (required)")
	fleetAddr := flag.String("fleet", "", "also poll this coordinator's /fleet/status")
	interval := flag.Duration("interval", time.Second, "poll interval")
	frames := flag.Int("frames", 0, "exit after N frames (0 = until interrupted)")
	once := flag.Bool("once", false, "render one frame and exit (1 on fetch failure)")
	plain := flag.Bool("plain", false, "no ANSI escapes; append frames instead of repainting")
	flag.Parse()
	if *addr == "" || flag.NArg() != 0 {
		flag.Usage()
		return 2
	}
	if *once {
		*frames = 1
		*plain = true
	}

	client := &http.Client{Timeout: 5 * time.Second}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)

	painted := false
	for n := 0; *frames == 0 || n < *frames; n++ {
		if n > 0 {
			select {
			case <-sig:
				return 0
			case <-time.After(*interval):
			}
		}
		hist, err := fetchHistory(client, *addr)
		frame := renderFrame(*addr, hist, err, fetchStatus(client, *fleetAddr))
		if *plain {
			os.Stdout.WriteString(frame)
		} else {
			// Home the cursor and clear below rather than clearing the whole
			// screen per frame — no flicker, and partial lines from a
			// previous, taller frame never linger.
			if !painted {
				os.Stdout.WriteString("\x1b[2J")
				painted = true
			}
			os.Stdout.WriteString("\x1b[H" + frame + "\x1b[J")
		}
		if *once && err != nil {
			fmt.Fprintln(os.Stderr, "congtop:", err)
			return 1
		}
	}
	return 0
}

// fetchHistory pulls the recorder ring from /debug/metrics/history.
func fetchHistory(client *http.Client, addr string) (*obs.RecorderHistory, error) {
	resp, err := client.Get("http://" + addr + "/debug/metrics/history")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /debug/metrics/history: HTTP %d", resp.StatusCode)
	}
	var env obs.RecorderHistory
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		return nil, fmt.Errorf("decoding history: %w", err)
	}
	return &env, nil
}

// fetchStatus polls the coordinator, returning nil when -fleet is unset or
// the poll fails — fleet progress is an optional pane, never an error.
func fetchStatus(client *http.Client, addr string) *fleet.Status {
	if addr == "" {
		return nil
	}
	resp, err := client.Get("http://" + addr + "/fleet/status")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var st fleet.Status
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&st) != nil {
		return nil
	}
	return &st
}

// renderFrame formats one full screen of output.
func renderFrame(addr string, hist *obs.RecorderHistory, err error, st *fleet.Status) string {
	var b strings.Builder
	fmt.Fprintf(&b, "congtop  %s  %s\n", addr, time.Now().Format("15:04:05"))
	switch {
	case err != nil:
		fmt.Fprintf(&b, "  (unreachable: %v)\n", err)
	case hist == nil || len(hist.Samples) == 0:
		b.WriteString("  (no samples yet — is the recorder running? -history-interval)\n")
	default:
		s := hist.Samples[len(hist.Samples)-1]
		fmt.Fprintf(&b, "sample #%d  window %dms  ring %d/%d @ %dms\n",
			s.Seq, s.WindowMs, len(hist.Samples), hist.Capacity, hist.IntervalMs)
		renderCounters(&b, s)
		renderGauges(&b, s)
		renderHists(&b, s)
		renderWorkerBalance(&b, s)
	}
	if st != nil {
		renderFleet(&b, st)
	}
	return b.String()
}

func renderCounters(b *strings.Builder, s obs.RecorderSample) {
	active := make([]obs.CounterRate, 0, len(s.Counters))
	for _, c := range s.Counters {
		if c.Delta != 0 || c.PerSec != 0 {
			active = append(active, c)
		}
	}
	if len(active) == 0 {
		return
	}
	sort.Slice(active, func(i, j int) bool { return active[i].PerSec > active[j].PerSec })
	fmt.Fprintf(b, "\n%-28s %12s %10s %12s\n", "COUNTER", "total", "delta", "per-sec")
	for _, c := range active {
		fmt.Fprintf(b, "%-28s %12d %10d %12.1f\n", clip(c.Name, 28), c.Total, c.Delta, c.PerSec)
	}
}

func renderGauges(b *strings.Builder, s obs.RecorderSample) {
	shown := false
	for _, g := range s.Gauges {
		if strings.HasPrefix(g.Name, obs.MetricFleetWorkerCellsPrefix) {
			continue // rendered as the balance pane below
		}
		if !shown {
			fmt.Fprintf(b, "\n%-28s %12s\n", "GAUGE", "value")
			shown = true
		}
		fmt.Fprintf(b, "%-28s %12.2f\n", clip(g.Name, 28), g.Value)
	}
}

func renderHists(b *strings.Builder, s obs.RecorderSample) {
	shown := false
	for _, h := range s.Hists {
		if h.Count == 0 {
			continue
		}
		if !shown {
			fmt.Fprintf(b, "\n%-28s %10s %12s %12s\n", "HISTOGRAM (window)", "count", "p50", "p99")
			shown = true
		}
		fmt.Fprintf(b, "%-28s %10d %12.1f %12.1f\n", clip(h.Name, 28), h.Count, h.P50, h.P99)
	}
}

// renderWorkerBalance bar-charts the per-worker completed-cell gauges the
// coordinator maintains, so a stalled or slow worker is visible at a
// glance without a /fleet/status round trip.
func renderWorkerBalance(b *strings.Builder, s obs.RecorderSample) {
	type wc struct {
		name  string
		cells float64
	}
	var workers []wc
	max := 0.0
	for _, g := range s.Gauges {
		name, ok := strings.CutPrefix(g.Name, obs.MetricFleetWorkerCellsPrefix)
		if !ok {
			continue
		}
		name = strings.TrimSuffix(name, ".cells_done")
		workers = append(workers, wc{name, g.Value})
		if g.Value > max {
			max = g.Value
		}
	}
	if len(workers) == 0 {
		return
	}
	sort.Slice(workers, func(i, j int) bool { return workers[i].name < workers[j].name })
	b.WriteString("\nWORKER BALANCE (cells done)\n")
	for _, w := range workers {
		width := 0
		if max > 0 {
			width = int(w.cells / max * 30)
		}
		fmt.Fprintf(b, "%-20s %6.0f %s\n", clip(w.name, 20), w.cells, strings.Repeat("#", width))
	}
}

func renderFleet(b *strings.Builder, st *fleet.Status) {
	b.WriteString("\nFLEET BUILD\n")
	done := 0.0
	if st.Cells > 0 {
		done = float64(st.Done) / float64(st.Cells)
	}
	bar := int(done * 30)
	fmt.Fprintf(b, "  [%s%s] %d/%d cells", strings.Repeat("=", bar), strings.Repeat(" ", 30-bar), st.Done, st.Cells)
	if st.BuildDone {
		b.WriteString("  DONE")
	}
	b.WriteByte('\n')
	fmt.Fprintf(b, "  leased %d  pending %d  failed %d  steals %d  lost %d  dup %d  bad %d\n",
		st.Leased, st.Pending, st.Failed, st.Steals, st.Lost, st.Dups, st.Bad)
	if len(st.Workers) > 0 {
		names := make([]string, 0, len(st.Workers))
		for n := range st.Workers {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(b, "  worker %-20s %d cells\n", clip(n, 20), st.Workers[n])
		}
	}
}

// clip shortens s to fit an n-column field, marking the cut with an
// ellipsis so columns stay aligned under arbitrary metric names.
func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	if n <= 3 {
		return s[:n]
	}
	return s[:n-3] + "..."
}
