// congmap renders the post-route congestion map of a benchmark design as
// an ASCII heat map, the equivalent of Vivado's congestion device view used
// in the paper's Figs. 1 and 6.
//
// Usage:
//
//	congmap [-design face_detection|digit_spam|bnn_render_of]
//	        [-directives with|without|noinline|replication]
//	        [-metric v|h|avg] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/congestion"
	"repro/internal/flow"
)

func main() {
	design := flag.String("design", "face_detection", "benchmark design")
	directives := flag.String("directives", "with", "with|without|noinline|replication (face_detection only)")
	metric := flag.String("metric", "avg", "v|h|avg")
	seed := flag.Int64("seed", 1, "placement seed")
	pgm := flag.String("pgm", "", "also write the map as a PGM image to this path")
	flag.Parse()

	var dir bench.Directives
	switch *directives {
	case "with":
		dir = bench.WithDirectives()
	case "without":
		dir = bench.WithoutDirectives()
	case "noinline":
		dir = bench.NotInline()
	case "replication":
		dir = bench.Replication()
	default:
		fmt.Fprintf(os.Stderr, "congmap: unknown directives %q\n", *directives)
		os.Exit(2)
	}

	gens := bench.Catalog()
	gen, ok := gens[*design]
	if !ok {
		fmt.Fprintf(os.Stderr, "congmap: unknown design %q (have:", *design)
		for name := range gens {
			fmt.Fprintf(os.Stderr, " %s", name)
		}
		fmt.Fprintln(os.Stderr, ")")
		os.Exit(2)
	}

	var mt congestion.Metric
	switch *metric {
	case "v":
		mt = congestion.Vertical
	case "h":
		mt = congestion.Horizontal
	case "avg":
		mt = congestion.Average
	default:
		fmt.Fprintf(os.Stderr, "congmap: unknown metric %q\n", *metric)
		os.Exit(2)
	}

	cfg := flow.DefaultConfig()
	cfg.Seed = *seed
	m := gen(dir)
	res, err := flow.Run(m, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "congmap:", err)
		os.Exit(1)
	}
	p := res.Perf(m.Name)
	fmt.Printf("%s: WNS=%.3f ns  Fmax=%.1f MHz  latency=%d cycles  maxV=%.1f%%  maxH=%.1f%%  congested CLBs(>100%%)=%d\n",
		m.Name, p.WNS, p.FmaxMHz, p.LatencyCycles, p.MaxVertPct, p.MaxHorizPct, p.CongestedCLBs)
	fmt.Print(res.Routing.Map.RenderASCII(mt, 1, 2))
	if *pgm != "" {
		f, err := os.Create(*pgm)
		if err != nil {
			fmt.Fprintln(os.Stderr, "congmap:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := res.Routing.Map.WritePGM(f, mt, 200); err != nil {
			fmt.Fprintln(os.Stderr, "congmap:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *pgm)
	}
}
