// obscheck validates the observability artifacts a hlscong run writes: the
// Chrome trace_event JSON (-trace) and the metrics snapshot (-metrics). It
// checks that both parse, that the trace contains a span for every flow
// stage, and that the metrics registry recorded the canonical flow series.
// scripts/check.sh runs it after a quick observed run; exit status is
// non-zero with a diagnostic when an expectation fails.
//
// With -stitched the trace is validated as a multi-process fleet trace
// instead: exactly one fleet.build root on the local (pid 1) lane, at
// least -lanes named worker lanes (process_name metadata), one or more
// flow spans per worker lane, all worker events inside the root's
// interval (with scheduling slack), and per-lane timestamps in order.
//
// -prom validates a Prometheus text-format exposition (the
// /debug/metrics/prom body): TYPE declared before samples, histogram
// buckets cumulative and ascending with a trailing +Inf bucket equal to
// the count, sum/count series present, and no duplicate series.
//
// Usage:
//
//	obscheck -trace trace.json -metrics metrics.json
//	obscheck -trace fleet.json -stitched -lanes 2
//	obscheck -prom metrics.prom
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/flow"
	"repro/internal/obs"
)

// traceEvent mirrors the subset of a Chrome trace_event record the
// validator cares about, including the "M" process_name metadata that
// labels stitched worker lanes.
type traceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args"`
}

// traceFile mirrors the envelope.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

func main() {
	tracePath := flag.String("trace", "", "Chrome trace JSON to validate")
	metricsPath := flag.String("metrics", "", "metrics snapshot JSON to validate")
	stitched := flag.Bool("stitched", false, "validate -trace as a stitched multi-process fleet trace")
	lanes := flag.Int("lanes", 2, "with -stitched: minimum named worker lanes")
	promPath := flag.String("prom", "", "Prometheus text exposition to validate")
	flag.Parse()
	if *tracePath == "" && *metricsPath == "" && *promPath == "" {
		fmt.Fprintln(os.Stderr, "obscheck: need -trace, -metrics and/or -prom")
		os.Exit(2)
	}
	fail := false
	if *tracePath != "" {
		check, kind := checkTrace, "trace"
		if *stitched {
			check = func(path string) error { return checkStitched(path, *lanes) }
			kind = "stitched trace"
		}
		if err := check(*tracePath); err != nil {
			fmt.Fprintf(os.Stderr, "obscheck: %s: %v\n", kind, err)
			fail = true
		} else {
			fmt.Printf("obscheck: %s %s ok\n", kind, *tracePath)
		}
	}
	if *promPath != "" {
		if err := checkProm(*promPath); err != nil {
			fmt.Fprintln(os.Stderr, "obscheck: prom:", err)
			fail = true
		} else {
			fmt.Printf("obscheck: prom %s ok\n", *promPath)
		}
	}
	if *metricsPath != "" {
		if err := checkMetrics(*metricsPath); err != nil {
			fmt.Fprintln(os.Stderr, "obscheck: metrics:", err)
			fail = true
		} else {
			fmt.Printf("obscheck: metrics %s ok\n", *metricsPath)
		}
	}
	if fail {
		os.Exit(1)
	}
}

// checkTrace verifies the trace parses and contains at least one complete
// ("X") event per flow stage plus the root "flow" span, all with sane
// timestamps.
func checkTrace(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var tf traceFile
	if err := json.Unmarshal(raw, &tf); err != nil {
		return fmt.Errorf("not valid JSON: %w", err)
	}
	if len(tf.TraceEvents) == 0 {
		return fmt.Errorf("no traceEvents")
	}
	seen := map[string]int{}
	for _, ev := range tf.TraceEvents {
		if ev.TS < 0 || ev.Dur < 0 {
			return fmt.Errorf("event %q has negative ts/dur", ev.Name)
		}
		if ev.Phase == "X" {
			seen[ev.Name]++
		}
	}
	want := append([]string{"flow"}, flow.Stages...)
	for _, name := range want {
		if seen[name] == 0 {
			return fmt.Errorf("no %q span in %d events", name, len(tf.TraceEvents))
		}
	}
	return nil
}

// checkMetrics verifies the snapshot parses into obs.Snapshot and carries
// the canonical flow series: a duration histogram per stage with counts,
// and the flow.runs / flowcache.misses counters.
func checkMetrics(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(f).Decode(&snap); err != nil {
		return fmt.Errorf("not a metrics snapshot: %w", err)
	}
	for _, stage := range flow.Stages {
		h := snap.Histogram(obs.MetricStagePrefix + stage)
		if h == nil {
			return fmt.Errorf("missing histogram %s%s", obs.MetricStagePrefix, stage)
		}
		if h.Count == 0 {
			return fmt.Errorf("histogram %s has zero observations", h.Name)
		}
	}
	runs, ok := snap.Counter(obs.MetricFlowRuns)
	if !ok || runs == 0 {
		return fmt.Errorf("counter %s missing or zero", obs.MetricFlowRuns)
	}
	if _, ok := snap.Counter(obs.MetricCacheMisses); !ok {
		return fmt.Errorf("counter %s missing", obs.MetricCacheMisses)
	}
	return nil
}

// stitchSlackUs absorbs the wall-clock skew Tracer.Import tolerates
// between the coordinator's epoch and a worker's: spans may legitimately
// start slightly before the root span did (the worker's clock read raced
// the coordinator's) without the stitch being wrong.
const stitchSlackUs = 1e6

// checkStitched validates a coordinator trace assembled from shipped
// worker span batches — the artifact a `build -serve-builds -trace` run
// writes. The properties checked are exactly what stitching promises:
// one build root on the local lane, named worker lanes, every worker's
// work inside the build's interval, and time moving forward within each
// lane's track.
func checkStitched(path string, lanes int) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var tf traceFile
	if err := json.Unmarshal(raw, &tf); err != nil {
		return fmt.Errorf("not valid JSON: %w", err)
	}

	// Lane names come from the process_name metadata records the exporter
	// emits for every imported proc; the local lane (pid 1) has none.
	laneName := map[int]string{}
	var roots []traceEvent
	for _, ev := range tf.TraceEvents {
		switch {
		case ev.Phase == "M" && ev.Name == "process_name":
			name, _ := ev.Args["name"].(string)
			if name == "" {
				return fmt.Errorf("process_name metadata for pid %d has no name", ev.PID)
			}
			if prev, dup := laneName[ev.PID]; dup {
				return fmt.Errorf("pid %d named twice (%q, %q)", ev.PID, prev, name)
			}
			if ev.PID == 1 {
				return fmt.Errorf("pid 1 is the local lane but has process_name %q", name)
			}
			laneName[ev.PID] = name
		case ev.Phase == "X":
			if ev.TS < 0 || ev.Dur < 0 {
				return fmt.Errorf("event %q has negative ts/dur", ev.Name)
			}
			if ev.Name == "fleet.build" {
				roots = append(roots, ev)
			}
		}
	}
	if len(roots) != 1 {
		return fmt.Errorf("%d fleet.build roots, want exactly 1", len(roots))
	}
	root := roots[0]
	if root.PID != 1 {
		return fmt.Errorf("fleet.build root on pid %d, want the local lane (pid 1)", root.PID)
	}
	if len(laneName) < lanes {
		return fmt.Errorf("%d named worker lanes, want at least %d", len(laneName), lanes)
	}

	// Worker events sit inside the build interval (modulo clock slack) and
	// each lane's tracks move forward in time; each worker ran at least one
	// full flow.
	flowsPerLane := map[int]int{}
	lastTS := map[[2]int]float64{}
	for _, ev := range tf.TraceEvents {
		if ev.Phase != "X" {
			continue
		}
		track := [2]int{ev.PID, ev.TID}
		if ev.TS < lastTS[track] {
			return fmt.Errorf("lane pid %d tid %d goes backwards in time at %q", ev.PID, ev.TID, ev.Name)
		}
		lastTS[track] = ev.TS
		if _, worker := laneName[ev.PID]; !worker {
			continue
		}
		if ev.TS < root.TS-stitchSlackUs || ev.TS+ev.Dur > root.TS+root.Dur+stitchSlackUs {
			return fmt.Errorf("worker %s event %q [%f, %f] outside the build span [%f, %f]",
				laneName[ev.PID], ev.Name, ev.TS, ev.TS+ev.Dur, root.TS, root.TS+root.Dur)
		}
		if ev.Name == "flow" {
			flowsPerLane[ev.PID]++
		}
	}
	for pid, name := range laneName {
		if flowsPerLane[pid] == 0 {
			return fmt.Errorf("worker lane %q has no flow span", name)
		}
	}
	return nil
}

// promHist accumulates one histogram family's series while scanning.
type promHist struct {
	buckets  int
	lastLe   float64
	lastCum  int64
	infCum   int64
	sawInf   bool
	sum      bool
	count    bool
	countVal int64
}

// checkProm validates a Prometheus text-format exposition the way a
// strict ingester would: every sample's family is TYPE-declared first,
// names are in the legal charset, values parse, no series repeats, and
// histogram families are internally consistent — buckets cumulative with
// ascending bounds, a trailing +Inf bucket equal to _count, and _sum and
// _count present.
func checkProm(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	types := map[string]string{}
	series := map[string]bool{}
	samples := map[string]int{}
	hists := map[string]*promHist{}
	for i, line := range strings.Split(string(data), "\n") {
		lineNo := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) < 2 || f[1] != "TYPE" {
				continue // HELP and free comments pass through
			}
			if len(f) != 4 {
				return fmt.Errorf("line %d: malformed TYPE comment %q", lineNo, line)
			}
			name, typ := f[2], f[3]
			if !validPromName(name) {
				return fmt.Errorf("line %d: illegal metric name %q", lineNo, name)
			}
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				return fmt.Errorf("line %d: unknown type %q for %s", lineNo, typ, name)
			}
			if _, dup := types[name]; dup {
				return fmt.Errorf("line %d: %s TYPE declared twice", lineNo, name)
			}
			types[name] = typ
			if typ == "histogram" {
				hists[name] = &promHist{}
			}
			continue
		}
		name, labels, value, err := splitPromSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		if !validPromName(name) {
			return fmt.Errorf("line %d: illegal metric name %q", lineNo, name)
		}
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return fmt.Errorf("line %d: value %q does not parse", lineNo, value)
		}
		if series[name+labels] {
			return fmt.Errorf("line %d: duplicate series %s%s", lineNo, name, labels)
		}
		series[name+labels] = true

		base, suffix := name, ""
		for _, s := range []string{"_bucket", "_sum", "_count"} {
			if trimmed := strings.TrimSuffix(name, s); trimmed != name && types[trimmed] == "histogram" {
				base, suffix = trimmed, s
				break
			}
		}
		typ, declared := types[base]
		if !declared {
			return fmt.Errorf("line %d: sample %s has no TYPE declaration above it", lineNo, name)
		}
		samples[base]++
		if typ != "histogram" {
			if labels != "" {
				return fmt.Errorf("line %d: unexpected labels on %s %s", lineNo, typ, name)
			}
			continue
		}
		h := hists[base]
		switch suffix {
		case "_bucket":
			le, ok := strings.CutPrefix(labels, `{le="`)
			le, ok2 := strings.CutSuffix(le, `"}`)
			if !ok || !ok2 {
				return fmt.Errorf("line %d: bucket labels %q are not {le=\"...\"}", lineNo, labels)
			}
			bound := math.Inf(1)
			if le != "+Inf" {
				if bound, err = strconv.ParseFloat(le, 64); err != nil {
					return fmt.Errorf("line %d: bucket bound %q does not parse", lineNo, le)
				}
			}
			cum := int64(v)
			if h.sawInf {
				return fmt.Errorf("line %d: bucket after the +Inf bucket of %s", lineNo, base)
			}
			if h.buckets > 0 && bound <= h.lastLe {
				return fmt.Errorf("line %d: %s bucket bounds not ascending (%v after %v)", lineNo, base, bound, h.lastLe)
			}
			if cum < h.lastCum {
				return fmt.Errorf("line %d: %s buckets not cumulative (%d after %d)", lineNo, base, cum, h.lastCum)
			}
			h.buckets++
			h.lastLe, h.lastCum = bound, cum
			if math.IsInf(bound, 1) {
				h.sawInf, h.infCum = true, cum
			}
		case "_sum":
			if h.sum {
				return fmt.Errorf("line %d: duplicate %s_sum", lineNo, base)
			}
			h.sum = true
		case "_count":
			if h.count {
				return fmt.Errorf("line %d: duplicate %s_count", lineNo, base)
			}
			h.count, h.countVal = true, int64(v)
		default:
			return fmt.Errorf("line %d: bare sample %s for histogram %s", lineNo, name, base)
		}
	}
	if len(types) == 0 {
		// A zero-family exposition is technically legal Prometheus text,
		// but here it means a truncated download, not a healthy server.
		return fmt.Errorf("no metric families: empty or truncated exposition")
	}
	for name, typ := range types {
		if samples[name] == 0 {
			return fmt.Errorf("%s declared %s but has no samples", name, typ)
		}
		if typ != "histogram" {
			continue
		}
		h := hists[name]
		switch {
		case h.buckets == 0:
			return fmt.Errorf("histogram %s has no buckets", name)
		case !h.sawInf:
			return fmt.Errorf("histogram %s has no +Inf bucket", name)
		case !h.sum || !h.count:
			return fmt.Errorf("histogram %s is missing _sum or _count", name)
		case h.infCum != h.countVal:
			return fmt.Errorf("histogram %s +Inf bucket %d != count %d", name, h.infCum, h.countVal)
		}
	}
	return nil
}

// splitPromSample splits `name[{labels}] value [timestamp]`.
func splitPromSample(line string) (name, labels, value string, err error) {
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.IndexByte(line, '}')
		if j < i {
			return "", "", "", fmt.Errorf("unbalanced braces in %q", line)
		}
		name, labels, rest = line[:i], line[i:j+1], line[j+1:]
	} else if sp := strings.IndexByte(line, ' '); sp >= 0 {
		name, rest = line[:sp], line[sp:]
	} else {
		return "", "", "", fmt.Errorf("sample %q has no value", line)
	}
	f := strings.Fields(rest)
	if len(f) < 1 || len(f) > 2 {
		return "", "", "", fmt.Errorf("sample %q is not `name value [timestamp]`", line)
	}
	return name, labels, f[0], nil
}

// validPromName reports whether name is in [a-zA-Z_:][a-zA-Z0-9_:]*.
func validPromName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		digit := r >= '0' && r <= '9'
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (digit && i > 0)
		if !ok {
			return false
		}
	}
	return true
}
