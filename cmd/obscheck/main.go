// obscheck validates the observability artifacts a hlscong run writes: the
// Chrome trace_event JSON (-trace) and the metrics snapshot (-metrics). It
// checks that both parse, that the trace contains a span for every flow
// stage, and that the metrics registry recorded the canonical flow series.
// scripts/check.sh runs it after a quick observed run; exit status is
// non-zero with a diagnostic when an expectation fails.
//
// Usage:
//
//	obscheck -trace trace.json -metrics metrics.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/flow"
	"repro/internal/obs"
)

// traceFile mirrors the subset of the Chrome trace_event envelope the
// validator cares about.
type traceFile struct {
	TraceEvents []struct {
		Name  string  `json:"name"`
		Phase string  `json:"ph"`
		TS    float64 `json:"ts"`
		Dur   float64 `json:"dur"`
		PID   int     `json:"pid"`
		TID   int     `json:"tid"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func main() {
	tracePath := flag.String("trace", "", "Chrome trace JSON to validate")
	metricsPath := flag.String("metrics", "", "metrics snapshot JSON to validate")
	flag.Parse()
	if *tracePath == "" && *metricsPath == "" {
		fmt.Fprintln(os.Stderr, "obscheck: need -trace and/or -metrics")
		os.Exit(2)
	}
	fail := false
	if *tracePath != "" {
		if err := checkTrace(*tracePath); err != nil {
			fmt.Fprintln(os.Stderr, "obscheck: trace:", err)
			fail = true
		} else {
			fmt.Printf("obscheck: trace %s ok\n", *tracePath)
		}
	}
	if *metricsPath != "" {
		if err := checkMetrics(*metricsPath); err != nil {
			fmt.Fprintln(os.Stderr, "obscheck: metrics:", err)
			fail = true
		} else {
			fmt.Printf("obscheck: metrics %s ok\n", *metricsPath)
		}
	}
	if fail {
		os.Exit(1)
	}
}

// checkTrace verifies the trace parses and contains at least one complete
// ("X") event per flow stage plus the root "flow" span, all with sane
// timestamps.
func checkTrace(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var tf traceFile
	if err := json.Unmarshal(raw, &tf); err != nil {
		return fmt.Errorf("not valid JSON: %w", err)
	}
	if len(tf.TraceEvents) == 0 {
		return fmt.Errorf("no traceEvents")
	}
	seen := map[string]int{}
	for _, ev := range tf.TraceEvents {
		if ev.TS < 0 || ev.Dur < 0 {
			return fmt.Errorf("event %q has negative ts/dur", ev.Name)
		}
		if ev.Phase == "X" {
			seen[ev.Name]++
		}
	}
	want := append([]string{"flow"}, flow.Stages...)
	for _, name := range want {
		if seen[name] == 0 {
			return fmt.Errorf("no %q span in %d events", name, len(tf.TraceEvents))
		}
	}
	return nil
}

// checkMetrics verifies the snapshot parses into obs.Snapshot and carries
// the canonical flow series: a duration histogram per stage with counts,
// and the flow.runs / flowcache.misses counters.
func checkMetrics(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(f).Decode(&snap); err != nil {
		return fmt.Errorf("not a metrics snapshot: %w", err)
	}
	for _, stage := range flow.Stages {
		h := snap.Histogram(obs.MetricStagePrefix + stage)
		if h == nil {
			return fmt.Errorf("missing histogram %s%s", obs.MetricStagePrefix, stage)
		}
		if h.Count == 0 {
			return fmt.Errorf("histogram %s has zero observations", h.Name)
		}
	}
	runs, ok := snap.Counter(obs.MetricFlowRuns)
	if !ok || runs == 0 {
		return fmt.Errorf("counter %s missing or zero", obs.MetricFlowRuns)
	}
	if _, ok := snap.Counter(obs.MetricCacheMisses); !ok {
		return fmt.Errorf("counter %s missing", obs.MetricCacheMisses)
	}
	return nil
}
