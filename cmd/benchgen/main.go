// benchgen builds the training dataset from the paper's three benchmark
// implementations and writes it to a CSV file (one row per back-traced IR
// operation: metadata, the three congestion labels, and the 302 features).
//
// Usage:
//
//	benchgen [-o dataset.csv] [-filter] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/flow"
)

func main() {
	out := flag.String("o", "dataset.csv", "output CSV path")
	filter := flag.Bool("filter", false, "remove marginal operations before writing")
	seed := flag.Int64("seed", 1, "placement seed")
	flag.Parse()

	cfg := flow.DefaultConfig()
	cfg.Seed = *seed
	ds, results, err := core.BuildDataset(bench.TrainingModules(), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
	for _, r := range results {
		p := r.Perf(r.Mod.Name)
		fmt.Printf("%-18s WNS=%8.3f Fmax=%6.1f MHz  maxV=%6.1f%% maxH=%6.1f%%\n",
			p.Name, p.WNS, p.FmaxMHz, p.MaxVertPct, p.MaxHorizPct)
	}
	removed := 0
	if *filter {
		ds, removed = ds.FilterMarginal()
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := ds.WriteCSV(f); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d samples (%d marginal removed) to %s\n", ds.Len(), removed, *out)
}
