package congest

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// TestFacadeEndToEnd drives the public API the way the README's quickstart
// does: build designs, run the flow, build a dataset, train, predict,
// report hotspots.
func TestFacadeEndToEnd(t *testing.T) {
	cfg := DefaultFlowConfig()
	cfg.Place.Moves = 4000

	// A custom design through the builder facade.
	m := NewModule("facade")
	top := m.NewFunction("top")
	b := NewBuilder(top).At("facade.cpp", 1)
	p := b.Port("in", 16)
	a := b.Array("buf", 32, 16, 4)
	var outs []*Op
	for i := 0; i < 8; i++ {
		v := b.Load(a, nil)
		outs = append(outs, b.Op(KindAdd, 16, v, p))
	}
	b.Ret(b.ReduceTree(KindAdd, 16, outs))

	res, err := RunFlow(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	perf := res.Perf("facade")
	if perf.FmaxMHz <= 0 {
		t.Fatal("flow produced no timing")
	}

	// Dataset over two variants, then train and predict.
	mods := []*Module{m, FaceDetection(WithoutDirectives())}
	ds, results, err := BuildDataset(mods, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || ds.Len() == 0 {
		t.Fatal("dataset build failed")
	}
	pred, err := TrainPredictor(ds, TrainOptions{Kind: Linear, Filter: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	preds, err := pred.PredictModule(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != m.NumOps() {
		t.Fatalf("predictions = %d, want %d", len(preds), m.NumOps())
	}
	if hs := Hotspots(preds); len(hs) == 0 {
		t.Fatal("no hotspots")
	}
	if _, err := Evaluate(ds, Linear, false, 1); err != nil {
		t.Fatal(err)
	}
}

// TestBenchmarkFacade checks the generator and directive re-exports.
func TestBenchmarkFacade(t *testing.T) {
	if len(TrainingModules()) != 3 {
		t.Fatal("TrainingModules must return the paper's three implementations")
	}
	for _, m := range []*Module{
		FaceDetection(WithDirectives()),
		FaceDetection(NotInline()),
		FaceDetection(Replication()),
		DigitSpam(),
		BNNRenderFlow(),
	} {
		if m.NumOps() == 0 {
			t.Fatalf("%s empty", m.Name)
		}
	}
	if WithoutDirectives().Inline {
		t.Fatal("directive re-export broken")
	}
}

// TestExperimentConfigDefaults pins the experiment defaults the benchmarks
// rely on.
func TestExperimentConfigDefaults(t *testing.T) {
	cfg := experiments.DefaultConfig()
	if cfg.Quick {
		t.Fatal("published numbers must not default to quick mode")
	}
	if cfg.Flow.Dev == nil || cfg.Flow.Dev.Name != "xc7z020clg484" {
		t.Fatal("default device must be the paper's xc7z020")
	}
	if cfg.Flow.Clock.PeriodNS != 10 {
		t.Fatal("default clock must be the paper's 100 MHz")
	}
}

// TestFacadeReportsAndPersistence covers the report and save/load surface
// of the facade.
func TestFacadeReportsAndPersistence(t *testing.T) {
	cfg := DefaultFlowConfig()
	cfg.Place.Moves = 3000
	m := NewModule("facade2")
	top := m.NewFunction("top")
	b := NewBuilder(top)
	p := b.Port("in", 16)
	cur := p
	for i := 0; i < 6; i++ {
		cur = b.Op(KindMul, 16, cur, cur)
	}
	b.Ret(cur)
	res, err := RunFlow(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := Report(res)
	for _, want := range []string{"SYNTHESIS", "UTILIZATION", "QoR"} {
		if !strings.Contains(out, want) {
			t.Errorf("facade report missing %q", want)
		}
	}
	paths := CriticalPaths(res, 3)
	if len(paths) == 0 {
		t.Fatal("no critical paths via facade")
	}

	ds, _, err := BuildDataset([]*Module{m}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := TrainPredictor(ds, TrainOptions{Kind: Linear, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SavePredictor(pred, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadPredictor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Kind != Linear {
		t.Error("facade load lost model kind")
	}
}

// TestFacadeOptimize covers the IR cleanup entry point.
func TestFacadeOptimize(t *testing.T) {
	m := NewModule("opt")
	top := m.NewFunction("top")
	b := NewBuilder(top)
	p := b.Port("p", 16)
	a1 := b.Op(KindAdd, 16, p, p)
	b.Op(KindAdd, 16, p, p) // duplicate, unused
	b.Ret(a1)
	folded, removed := Optimize(m)
	if folded+removed == 0 {
		t.Error("Optimize found nothing on a redundant design")
	}
}
