package congest

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/ir"
)

// brokenModule builds a module whose function list contains a nil op — the
// kind of internal-invariant violation that panics deep inside scheduling
// or feature extraction if the facade's recover guard is missing.
func brokenModule() *Module {
	m := NewModule("broken")
	f := m.NewFunction("top")
	f.Ops = append(f.Ops, nil)
	return m
}

// brokenDataset returns a dataset with a nil sample entry — an invariant
// violation the matrix internals dereference unconditionally.
func brokenDataset() *Dataset {
	return &Dataset{Samples: []*Sample{
		{Design: "a", Features: []float64{1, 2}},
		nil,
	}}
}

// mustNotPanic runs fn and reports the entry point that let a panic escape.
func mustNotPanic(t *testing.T, entry string, fn func() error) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s let a panic escape: %v", entry, r)
		}
	}()
	if err := fn(); err == nil {
		t.Fatalf("%s accepted malformed input without error", entry)
	}
}

// TestFacadeNeverPanics drives every facade entry point with malformed
// inputs: each must return an error, never panic.
func TestFacadeNeverPanics(t *testing.T) {
	cfg := DefaultFlowConfig()
	cfg.Place.Moves = 1000

	mustNotPanic(t, "RunFlow", func() error {
		_, err := RunFlow(brokenModule(), cfg)
		return err
	})
	mustNotPanic(t, "RunFlowContext", func() error {
		_, err := RunFlowContext(context.Background(), brokenModule(), cfg)
		return err
	})
	mustNotPanic(t, "RunFlowRetry", func() error {
		_, err := RunFlowRetry(context.Background(), brokenModule(), cfg, RetryPolicy{MaxAttempts: 2})
		return err
	})
	mustNotPanic(t, "BuildDataset", func() error {
		_, _, err := BuildDataset([]*Module{brokenModule()}, cfg)
		return err
	})
	mustNotPanic(t, "BuildDatasetResilient", func() error {
		_, _, _, err := BuildDatasetResilient(context.Background(), []*Module{brokenModule()}, cfg, BuildOptions{LabelRuns: 1})
		return err
	})
	mustNotPanic(t, "TrainPredictor", func() error {
		_, err := TrainPredictor(brokenDataset(), TrainOptions{Kind: Linear})
		return err
	})
	mustNotPanic(t, "PredictModule(zero predictor)", func() error {
		_, err := PredictModule(&Predictor{}, brokenModule(), cfg)
		return err
	})
	mustNotPanic(t, "PredictModule(nil predictor)", func() error {
		_, err := PredictModule(nil, brokenModule(), cfg)
		return err
	})
	mustNotPanic(t, "Evaluate", func() error {
		_, err := Evaluate(brokenDataset(), GBRT, false, 1)
		return err
	})
	mustNotPanic(t, "SavePredictor", func() error {
		var sb strings.Builder
		return SavePredictor(&Predictor{}, &sb)
	})
	mustNotPanic(t, "SavePredictor(nil)", func() error {
		var sb strings.Builder
		return SavePredictor(nil, &sb)
	})
	mustNotPanic(t, "LoadPredictor", func() error {
		_, err := LoadPredictor(strings.NewReader(`{"kind":0,"num_features":302,"scaler":{"Mean":[],"Std":[]}}`))
		return err
	})
}

// TestFacadePanicErrorNamesEntryPoint checks the guard wraps the panic
// with the entry point's name so logs identify where it escaped from.
func TestFacadePanicErrorNamesEntryPoint(t *testing.T) {
	_, err := PredictModule(&Predictor{}, smallFacadeModule(), DefaultFlowConfig())
	if err == nil || !strings.Contains(err.Error(), "PredictModule") {
		t.Fatalf("guard error does not name entry point: %v", err)
	}
	if !strings.Contains(err.Error(), "internal panic") {
		t.Fatalf("guard error does not mark the panic: %v", err)
	}
}

// smallFacadeModule is a tiny valid design (so the HLS front half runs and
// the panic comes from the zero-value predictor's missing models).
func smallFacadeModule() *Module {
	m := NewModule("ok")
	b := NewBuilder(m.NewFunction("top"))
	p := b.Port("p", 16)
	b.Ret(b.Op(ir.KindAdd, 16, p, p))
	return m
}

func TestFacadeContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := smallFacadeModule()
	if _, err := RunFlowContext(ctx, m, DefaultFlowConfig()); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	var se *StageError
	_, err := RunFlowContext(ctx, m, DefaultFlowConfig())
	if !errors.As(err, &se) {
		t.Fatalf("cancellation not wrapped in StageError: %v", err)
	}
}

func TestFacadeDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	_, err := RunFlowContext(ctx, smallFacadeModule(), DefaultFlowConfig())
	if !errors.Is(err, ErrTimedOut) {
		t.Fatalf("got %v, want ErrTimedOut", err)
	}
}

func TestFacadeSentinelsExported(t *testing.T) {
	for _, e := range []error{ErrUnroutable, ErrPlacementOverflow, ErrTimedOut} {
		if e == nil {
			t.Fatal("nil sentinel")
		}
	}
	p := DefaultRetryPolicy()
	if p.MaxAttempts < 2 || p.SeedStride == 0 {
		t.Fatalf("default retry policy is not a real escalation: %+v", p)
	}
	if len(dataset.Targets) == 0 {
		t.Fatal("dataset targets missing")
	}
}
