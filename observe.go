package congest

import (
	"io"
	"log/slog"

	"repro/internal/flow"
	"repro/internal/obs"
)

// Observability facade. An Observer bundles the three optional sinks —
// hierarchical span tracer, metrics registry, structured logger — and rides
// along on FlowConfig.Obs through every layer: flow stages, retries, fault
// injections, cache hits, dataset-build cells and grid-search cells all
// report into it. A nil Observer (the default) is free: the instrumented
// code degrades to nil-pointer checks and flow outputs are byte-identical
// either way. The observer is deliberately excluded from the flow cache key.
type (
	// Observer carries the optional trace/metrics/log sinks.
	Observer = obs.Observer
	// ObsSnapshot is a point-in-time copy of every registered metric.
	ObsSnapshot = obs.Snapshot
	// FlowTimings is the per-stage wall-time breakdown every FlowResult
	// carries, tracer or not.
	FlowTimings = flow.Timings
)

// NewObserver returns an Observer with a span tracer and a metrics registry
// armed (no logger). Attach it with WithObserver, then export with
// Observer.WriteChromeTrace and Observer.WriteMetricsJSON.
func NewObserver() *Observer { return obs.New() }

// WithObserver returns cfg with the observer attached. Passing nil detaches.
func WithObserver(cfg FlowConfig, o *Observer) FlowConfig {
	cfg.Obs = o
	return cfg
}

// NewObsLogger builds a structured text logger at the given level for
// Observer.Log. Level strings: "debug", "info", "warn", "error".
func NewObsLogger(w io.Writer, level string) (*slog.Logger, error) {
	lv, err := obs.ParseLevel(level)
	if err != nil {
		return nil, err
	}
	return obs.NewLogger(w, lv), nil
}
