// Package congest is the public API of this repository: a from-scratch Go
// reproduction of "Machine Learning Based Routing Congestion Prediction in
// FPGA High-Level Synthesis" (Zhao, Liang, Sinha, Zhang — DATE 2019).
//
// The library predicts post-place-and-route routing congestion for FPGA
// high-level-synthesis designs at the IR level — before placement and
// routing ever run — and maps the predicted hotspots back to source
// locations. It bundles every substrate the paper depends on: an HLS IR
// with directive-aware builders, a scheduler/binder with a characterized
// operator library, an RTL netlist elaborator, a Zynq XC7Z020 device model
// with a simulated-annealing placer and PathFinder-style router, a
// back-tracing flow from per-CLB congestion to IR operations, the paper's
// 302-feature extractor, and Lasso/ANN/GBRT regressors written on the
// standard library alone.
//
// Quick start:
//
//	ds, _, err := congest.BuildTrainingDataset(congest.DefaultFlowConfig())
//	if err != nil { ... }
//	pred, err := congest.TrainPredictor(ds, congest.TrainOptions{Kind: congest.GBRT, Filter: true})
//	if err != nil { ... }
//	design := congest.FaceDetection(congest.WithDirectives())
//	preds, err := pred.PredictModule(design, congest.DefaultFlowConfig())
//	hot := congest.Hotspots(preds) // hottest source lines first
//
// The experiment runners under internal/experiments regenerate every table
// and figure of the paper; the root-level benchmarks (bench_test.go) and
// the cmd/hlscong CLI expose them.
package congest

import (
	"context"
	"fmt"
	"io"

	"repro/internal/bench"
	"repro/internal/congestion"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/flow"
	"repro/internal/flowcache"
	"repro/internal/ir"
	"repro/internal/report"
	"repro/internal/store"
	"repro/internal/timing"
)

// Re-exported core types. The aliases keep one canonical implementation in
// the internal packages while giving library users a single import.
type (
	// Module is a whole HLS design: functions, arrays, loops, operations.
	Module = ir.Module
	// Builder constructs the dataflow graph of one function.
	Builder = ir.Builder
	// Op is one IR operation.
	Op = ir.Op
	// SourceLoc is a source-code position attached to operations.
	SourceLoc = ir.SourceLoc
	// Directives is the HLS optimization bundle of a generated benchmark.
	Directives = bench.Directives
	// FlowConfig selects the device, clock and tool options of the
	// simulated C-to-FPGA flow.
	FlowConfig = flow.Config
	// FlowResult bundles the artifacts of one implementation run.
	FlowResult = flow.Result
	// PerfRow is the per-implementation performance summary row.
	PerfRow = flow.PerfRow
	// Dataset is the training dataset of (features, congestion) samples.
	Dataset = dataset.Dataset
	// Sample is one dataset row.
	Sample = dataset.Sample
	// Target selects a congestion label (Vertical, Horizontal, Average).
	Target = dataset.Target
	// Predictor is a trained congestion estimator.
	Predictor = core.Predictor
	// TrainOptions tunes predictor training.
	TrainOptions = core.TrainOptions
	// OpPrediction is the estimated congestion of one operation.
	OpPrediction = core.OpPrediction
	// Hotspot is predicted congestion aggregated per source location.
	Hotspot = core.Hotspot
	// ModelKind selects Linear, ANN or GBRT.
	ModelKind = core.ModelKind
	// ModelSize selects the model effort level (TrainOptions.Size):
	// SizeFull is the published configuration, SizeQuick a shrunken
	// variant for tests and smoke runs.
	ModelSize = core.ModelSize
	// CongestionMap is the per-tile routing congestion map.
	CongestionMap = congestion.Map
	// EvalRow is one Table IV accuracy row.
	EvalRow = core.EvalRow
	// StageError reports which stage of which design's run failed; match
	// its sentinel causes with errors.Is.
	StageError = flow.StageError
	// Convergence is the router's convergence status on a FlowResult.
	Convergence = flow.Convergence
	// RetryPolicy governs flow retries with seed re-roll and router
	// escalation.
	RetryPolicy = flow.RetryPolicy
	// FaultInjector deterministically injects stage failures into the flow
	// (FlowConfig.Faults); see internal/faults for implementations.
	FaultInjector = faults.Injector
	// BuildSummary reports which modules a dataset build skipped and why.
	BuildSummary = core.BuildSummary
	// BuildOptions tunes the resilient dataset builder.
	BuildOptions = core.BuildOptions
	// FlowCache memoizes completed flow runs content-addressed by design,
	// config and seed (FlowConfig.Cache); see internal/flowcache.
	FlowCache = flowcache.Cache
	// FlowCacheStats is a snapshot of a FlowCache's hit/miss counters.
	FlowCacheStats = flowcache.Stats
	// ArtifactStore is the crash-safe persistent artifact tier: a
	// disk-backed content-addressed store with atomic writes, read-side
	// verification, quarantine of corrupt entries and mtime-LRU eviction;
	// see internal/store. Attach one to a FlowCache (AttachStore) to spill
	// completed flow runs to disk, or wrap it in a BuildCheckpoint to make
	// dataset builds resumable.
	ArtifactStore = store.Store
	// ArtifactStoreOptions tunes an ArtifactStore (byte budget, fault
	// injection, put hooks).
	ArtifactStoreOptions = store.Options
	// ArtifactStoreStats is a snapshot of an ArtifactStore's counters.
	ArtifactStoreStats = store.Stats
	// BuildCheckpoint persists per-module dataset-build progress so a
	// killed build resumes (BuildOptions.Checkpoint).
	BuildCheckpoint = store.Checkpoint
	// DiskFaultScript deterministically injects disk faults (torn write,
	// bit flip, ENOSPC, rename failure) into an ArtifactStore's write path
	// (ArtifactStoreOptions.Faults); see internal/faults.
	DiskFaultScript = faults.DiskScript
	// BatchShapeError reports a prediction batch rejected before scoring:
	// a feature row whose width does not match the predictor's trained
	// feature layout. Match with errors.As on PredictBatch/PredictBatchInto
	// errors; serving callers turn it into a client error (HTTP 400), not a
	// server fault.
	BatchShapeError = core.BatchShapeError
)

// Sentinel flow errors, re-exported for errors.Is matching at the facade.
var (
	// ErrUnroutable marks a router that exhausted its iterations with
	// overused tiles (under strict convergence or fault injection).
	ErrUnroutable = flow.ErrUnroutable
	// ErrPlacementOverflow marks a design exceeding device capacity.
	ErrPlacementOverflow = flow.ErrPlacementOverflow
	// ErrTimedOut marks a flow run cancelled by a context deadline.
	ErrTimedOut = flow.ErrTimedOut
)

// Model kinds.
const (
	// Linear is the Lasso linear model.
	Linear = core.Linear
	// ANN is the multilayer-perceptron regressor.
	ANN = core.ANN
	// GBRT is the gradient-boosted regression tree ensemble, the paper's
	// most accurate model.
	GBRT = core.GBRT
)

// Model effort levels (TrainOptions.Size).
const (
	// SizeFull is the grid-search-tuned configuration the tables use.
	SizeFull = core.SizeFull
	// SizeQuick trades accuracy for speed (tests, smoke runs).
	SizeQuick = core.SizeQuick
)

// Congestion label targets.
const (
	// Vertical is the vertical routing congestion percentage.
	Vertical = dataset.Vertical
	// Horizontal is the horizontal routing congestion percentage.
	Horizontal = dataset.Horizontal
	// Average is the paper's Avg (V, H) metric.
	Average = dataset.Average
)

// OpKind enumerates IR operation kinds.
type OpKind = ir.OpKind

// Operation kinds, re-exported for design construction through the facade.
const (
	KindAdd    = ir.KindAdd
	KindSub    = ir.KindSub
	KindMul    = ir.KindMul
	KindDiv    = ir.KindDiv
	KindRem    = ir.KindRem
	KindAnd    = ir.KindAnd
	KindOr     = ir.KindOr
	KindXor    = ir.KindXor
	KindNot    = ir.KindNot
	KindShl    = ir.KindShl
	KindLShr   = ir.KindLShr
	KindAShr   = ir.KindAShr
	KindICmp   = ir.KindICmp
	KindFAdd   = ir.KindFAdd
	KindFSub   = ir.KindFSub
	KindFMul   = ir.KindFMul
	KindFDiv   = ir.KindFDiv
	KindFCmp   = ir.KindFCmp
	KindSqrt   = ir.KindSqrt
	KindSelect = ir.KindSelect
	KindPhi    = ir.KindPhi
	KindLoad   = ir.KindLoad
	KindStore  = ir.KindStore
	KindTrunc  = ir.KindTrunc
	KindZExt   = ir.KindZExt
	KindSExt   = ir.KindSExt
	KindConcat = ir.KindConcat
	KindBitSel = ir.KindBitSel
	KindConst  = ir.KindConst
	KindCall   = ir.KindCall
	KindRet    = ir.KindRet
	KindPort   = ir.KindPort
)

// MapMetric selects a congestion-map view for rendering.
type MapMetric = congestion.Metric

// Congestion-map metrics (distinct from the dataset Targets, which label
// training samples).
const (
	MapVertical   = congestion.Vertical
	MapHorizontal = congestion.Horizontal
	MapAverage    = congestion.Average
)

// NewModule creates an empty design to build programmatically.
func NewModule(name string) *Module { return ir.NewModule(name) }

// NewBuilder returns a builder appending operations to a function.
func NewBuilder(f *ir.Function) *Builder { return ir.NewBuilder(f) }

// DefaultFlowConfig is the paper's setup: Zynq XC7Z020 at a 100 MHz target
// with the tuned placer/router/timing options.
func DefaultFlowConfig() FlowConfig { return flow.DefaultConfig() }

// NewFlowCache returns a concurrency-safe LRU cache holding up to
// maxEntries memoized flow results (maxEntries <= 0 selects the default
// bound). Assign it to FlowConfig.Cache so repeated (design, config, seed)
// implementations — label runs, ablations, experiment sweeps — are served
// without re-running placement and routing; outputs are byte-identical with
// caching off.
func NewFlowCache(maxEntries int) *FlowCache { return flowcache.New(maxEntries) }

// OpenArtifactStore opens (creating if needed) a crash-safe persistent
// artifact store rooted at dir. The startup scan quarantines torn or
// corrupt entries and enforces the byte budget, so a store left behind by
// a killed process is always safe to reopen.
func OpenArtifactStore(dir string, opts ArtifactStoreOptions) (*ArtifactStore, error) {
	return store.Open(dir, opts)
}

// NewBuildCheckpoint wraps an ArtifactStore as a dataset-build checkpoint
// for BuildOptions.Checkpoint. A nil store yields a nil (disabled)
// checkpoint.
func NewBuildCheckpoint(s *ArtifactStore) *BuildCheckpoint { return store.NewCheckpoint(s) }

// guard is the facade's panic firewall: it converts internal invariant
// panics (ir validation, feature extraction, model internals) escaping an
// exported entry point into a wrapped error naming that entry point, so no
// malformed input can crash a caller that checks errors.
func guard(entry string, errp *error) {
	if r := recover(); r != nil {
		*errp = fmt.Errorf("congest: %s: internal panic: %v", entry, r)
	}
}

// RunFlow executes the complete synthetic C-to-FPGA flow (schedule, bind,
// elaborate, place, route, timing) on a design.
func RunFlow(m *Module, cfg FlowConfig) (*FlowResult, error) {
	return RunFlowContext(context.Background(), m, cfg)
}

// RunFlowContext is RunFlow under a context: cancellation and deadlines
// are honored within one placer/router iteration, and a deadline expiry
// returns an error matching both ErrTimedOut and context.DeadlineExceeded.
// Stage failures come back as *StageError.
func RunFlowContext(ctx context.Context, m *Module, cfg FlowConfig) (res *FlowResult, err error) {
	defer guard("RunFlowContext", &err)
	return flow.RunContext(ctx, m, cfg)
}

// RunFlowRetry is RunFlowContext under a RetryPolicy: failed runs are
// retried with a re-rolled seed and escalated router effort.
func RunFlowRetry(ctx context.Context, m *Module, cfg FlowConfig, p RetryPolicy) (res *FlowResult, err error) {
	defer guard("RunFlowRetry", &err)
	return flow.RunWithRetry(ctx, m, cfg, p)
}

// DefaultRetryPolicy is the escalation used by resilient dataset builds.
func DefaultRetryPolicy() RetryPolicy { return flow.DefaultRetryPolicy() }

// TrainingModules returns the paper's three dataset implementations: Face
// Detection (optimized, alone), Digit Recognition + Spam Filtering, and
// BNN + 3D Rendering + Optical Flow.
func TrainingModules() []*Module { return bench.TrainingModules() }

// FaceDetection generates the Face Detection benchmark under a directive
// set; see WithDirectives, WithoutDirectives, NotInline and Replication.
func FaceDetection(d Directives) *Module { return bench.FaceDetection(d) }

// DigitSpam generates the combined Digit Recognition + Spam Filtering
// implementation.
func DigitSpam() *Module { return bench.DigitSpam() }

// BNNRenderFlow generates the combined BNN + 3D Rendering + Optical Flow
// implementation.
func BNNRenderFlow() *Module { return bench.BNNRenderFlow() }

// WithDirectives is the paper's optimized Face Detection configuration
// (inlining, unrolling, pipelining, complete array partitioning).
func WithDirectives() Directives { return bench.WithDirectives() }

// WithoutDirectives disables every optimization directive.
func WithoutDirectives() Directives { return bench.WithoutDirectives() }

// NotInline is the case study's first congestion-resolution step.
func NotInline() Directives { return bench.NotInline() }

// Replication is the case study's second congestion-resolution step.
func Replication() Directives { return bench.Replication() }

// BuildTrainingDataset runs the full flow over the paper's three training
// implementations, back-traces per-CLB congestion onto IR operations and
// extracts the 302 features per sample. Flow runs execute concurrently,
// one worker per CPU; the result is byte-identical to a sequential build
// (see BuildDatasetResilient for the Workers knob).
func BuildTrainingDataset(cfg FlowConfig) (*Dataset, []*FlowResult, error) {
	return BuildDataset(bench.TrainingModules(), cfg)
}

// BuildDataset is BuildTrainingDataset over caller-supplied designs.
func BuildDataset(mods []*Module, cfg FlowConfig) (ds *Dataset, results []*FlowResult, err error) {
	defer guard("BuildDataset", &err)
	return core.BuildDataset(mods, cfg)
}

// BuildDatasetResilient is BuildDataset with cancellation, per-run retry
// under the policy in opts, and degradation: modules that still fail after
// retrying are skipped (their errors joined into err) while the remaining
// modules' samples are returned, with a BuildSummary reporting what
// happened. opts.Workers bounds how many flow runs execute concurrently
// (0 = one per CPU, 1 = sequential); rows, labels, summary counts and
// joined error order are identical for every worker count.
func BuildDatasetResilient(ctx context.Context, mods []*Module, cfg FlowConfig, opts BuildOptions) (ds *Dataset, results []*FlowResult, sum *BuildSummary, err error) {
	defer guard("BuildDatasetResilient", &err)
	return core.BuildDatasetContext(ctx, mods, cfg, opts)
}

// TrainPredictor fits one regressor per congestion target.
func TrainPredictor(ds *Dataset, opts TrainOptions) (p *Predictor, err error) {
	defer guard("TrainPredictor", &err)
	return core.Train(ds, opts)
}

// PredictModule estimates per-operation congestion for a design running
// only the HLS front half — no placement, no routing. It is the
// panic-guarded facade form of Predictor.PredictModule.
func PredictModule(p *Predictor, m *Module, cfg FlowConfig) (preds []OpPrediction, err error) {
	defer guard("PredictModule", &err)
	if p == nil {
		return nil, fmt.Errorf("congest: PredictModule: nil predictor")
	}
	return p.PredictModule(m, cfg)
}

// PredictBatch estimates all three congestion metrics for a batch of raw
// feature vectors (one Extractor.Vector-shaped row per sample), returning
// freshly allocated result slices. It is the convenience form of
// PredictBatchInto.
func PredictBatch(p *Predictor, feats [][]float64) (vert, horiz, avg []float64, err error) {
	defer guard("PredictBatch", &err)
	if p == nil {
		return nil, nil, nil, fmt.Errorf("congest: PredictBatch: nil predictor")
	}
	vert = make([]float64, len(feats))
	horiz = make([]float64, len(feats))
	avg = make([]float64, len(feats))
	if err := p.PredictBatchInto(vert, horiz, avg, feats); err != nil {
		return nil, nil, nil, err
	}
	return vert, horiz, avg, nil
}

// PredictBatchInto is the serving fast path: it fills the caller-owned
// output slices (each len(feats)) with the three congestion estimates per
// feature vector. Steady-state calls do not allocate — rows are
// standardized into pooled scratch and the GBRT walks its flattened
// forest — so a caller scoring many batches can reuse its slices across
// calls. Values are identical to Predictor.PredictSample per row.
//
// Every feature row must have Predictor.NumFeatures entries; ragged or
// mis-sized batches come back whole as a *BatchShapeError (errors.As) with
// nothing written.
func PredictBatchInto(p *Predictor, vert, horiz, avg []float64, feats [][]float64) (err error) {
	defer guard("PredictBatchInto", &err)
	if p == nil {
		return fmt.Errorf("congest: PredictBatchInto: nil predictor")
	}
	return p.PredictBatchInto(vert, horiz, avg, feats)
}

// Hotspots groups per-operation predictions by source line, hottest first.
func Hotspots(preds []OpPrediction) []Hotspot { return core.Hotspots(preds) }

// Evaluate scores one model/filtering combination with the paper's 80/20
// protocol, returning MAE and MedAE per congestion target (a Table IV row).
func Evaluate(ds *Dataset, kind ModelKind, filter bool, seed int64) (row EvalRow, err error) {
	defer guard("Evaluate", &err)
	return core.Evaluate(ds, kind, filter, seed)
}

// Optimize runs the IR cleanup pipeline (common-subexpression merging,
// then dead-code elimination) on a hand-built design, returning how many
// operations were folded and removed. The benchmark generators emit clean
// graphs; run this on designs you construct yourself.
func Optimize(m *Module) (folded, removed int) { return ir.Optimize(m) }

// Report renders the full designer-facing report bundle for a completed
// flow run: the HLS synthesis report, the device utilization table and the
// post-implementation QoR summary with the worst timing paths.
func Report(res *FlowResult) string { return report.Full(res) }

// CriticalPaths returns the k slowest timing paths of a completed run,
// wire and logic delay split out, congestion-aware.
func CriticalPaths(res *FlowResult, k int) []timing.Path {
	return timing.CriticalPaths(res.Sched, res.Netlist, res.Routing, res.Config.Timing, k)
}

// SavePredictor serializes a trained predictor as JSON.
func SavePredictor(p *Predictor, w io.Writer) (err error) {
	defer guard("SavePredictor", &err)
	if p == nil {
		return fmt.Errorf("congest: SavePredictor: nil predictor")
	}
	return p.Save(w)
}

// LoadPredictor restores a predictor saved with SavePredictor, validating
// the payload (model kind, feature count, finite weights) before use.
func LoadPredictor(r io.Reader) (p *Predictor, err error) {
	defer guard("LoadPredictor", &err)
	return core.LoadPredictor(r)
}

// LoadPredictorFile restores a predictor from a SavePredictor artifact on
// disk. It is the one validated load path the prediction server's startup
// and hot-reload share: the artifact is decoded, validated and probed in
// full before the predictor is returned, so a failed load can never leave
// a caller holding a half-initialized model.
func LoadPredictorFile(path string) (p *Predictor, err error) {
	defer guard("LoadPredictorFile", &err)
	return core.LoadPredictorFile(path)
}
