package ir

import "fmt"

// Validate checks structural invariants of the module's IR:
//
//   - operation IDs are unique module-wide;
//   - every operand edge stays within one function;
//   - def/user lists are mutually consistent;
//   - edge weights are positive and never exceed the producer width;
//   - loops belong to the function that lists them;
//   - the top function exists and is not inlined.
//
// It returns the first violation found, or nil.
func Validate(m *Module) error {
	if m.Top == nil {
		return fmt.Errorf("ir: module %q has no top function", m.Name)
	}
	if m.Top.Inlined {
		return fmt.Errorf("ir: top function %q is inlined", m.Top.Name)
	}
	seen := make(map[int]*Op)
	for _, f := range m.Funcs {
		if f.Inlined {
			continue
		}
		for _, l := range f.Loops {
			if l.Func != f {
				return fmt.Errorf("ir: loop %q listed by %q but owned by %q", l.Name, f.Name, l.Func.Name)
			}
			if l.TripCount < 1 {
				return fmt.Errorf("ir: loop %q has trip count %d", l.Name, l.TripCount)
			}
		}
		for _, o := range f.Ops {
			if prev, dup := seen[o.ID]; dup {
				return fmt.Errorf("ir: duplicate op ID %d (%s and %s)", o.ID, prev.Name, o.Name)
			}
			seen[o.ID] = o
			if o.Func != f {
				return fmt.Errorf("ir: op %s listed by %q but owned by %q", o.Name, f.Name, o.Func.Name)
			}
			if o.Bitwidth <= 0 {
				return fmt.Errorf("ir: op %s has bitwidth %d", o.Name, o.Bitwidth)
			}
			if o.Kind.IsMemory() && o.Array == nil {
				return fmt.Errorf("ir: memory op %s has no array", o.Name)
			}
			for _, e := range o.Operands {
				if e.Def == nil {
					return fmt.Errorf("ir: op %s has nil operand", o.Name)
				}
				if e.Def.Func != f {
					return fmt.Errorf("ir: op %s uses %s across function boundary (%q -> %q)",
						o.Name, e.Def.Name, e.Def.Func.Name, f.Name)
				}
				if e.Bits <= 0 || e.Bits > e.Def.Bitwidth {
					return fmt.Errorf("ir: op %s edge from %s has weight %d (producer width %d)",
						o.Name, e.Def.Name, e.Bits, e.Def.Bitwidth)
				}
				if !hasUser(e.Def, o) {
					return fmt.Errorf("ir: op %s missing from user list of %s", o.Name, e.Def.Name)
				}
			}
			for _, u := range o.users {
				if !hasOperand(u, o) {
					return fmt.Errorf("ir: stale user %s on op %s", u.Name, o.Name)
				}
			}
		}
	}
	return nil
}

func hasUser(def, user *Op) bool {
	for _, u := range def.users {
		if u == user {
			return true
		}
	}
	return false
}

func hasOperand(user, def *Op) bool {
	for _, e := range user.Operands {
		if e.Def == def {
			return true
		}
	}
	return false
}
