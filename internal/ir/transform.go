package ir

import "fmt"

// UnrolledLoop builds a loop whose body is replicated `factor` times, the
// way an UNROLL directive replicates hardware. body is invoked once per
// copy; operations created in copies > 0 are marked as replicas of the
// corresponding operation in copy 0 (matched by creation order), which the
// dataset sample filter uses to spot marginal operations of unrolled loops.
func (b *Builder) UnrolledLoop(name string, trips, factor int, body func(copy int)) *Loop {
	if factor < 1 {
		factor = 1
	}
	if factor > trips {
		factor = trips
	}
	l := b.EnterLoop(name, trips)
	l.Unroll = factor

	var originals []*Op
	for c := 0; c < factor; c++ {
		start := len(b.F.Ops)
		body(c)
		created := b.F.Ops[start:]
		if c == 0 {
			originals = append([]*Op(nil), created...)
			continue
		}
		for i, o := range created {
			if i < len(originals) {
				o.ReplicaOf = originals[i].ID
				o.ReplicaIdx = c
			}
		}
	}
	b.ExitLoop()
	return l
}

// PipelinedLoop builds a loop marked for pipelining with the given
// initiation interval.
func (b *Builder) PipelinedLoop(name string, trips, ii int, body func()) *Loop {
	l := b.EnterLoop(name, trips)
	l.Pipelined = true
	if ii < 1 {
		ii = 1
	}
	l.II = ii
	body()
	b.ExitLoop()
	return l
}

// InlineFunction inlines every call site of callee throughout the module,
// cloning the callee body into each caller (the effect of an INLINE
// directive). The callee is marked Inlined and drops out of the live set.
// Port ops of the callee are wired to the call arguments; the call result
// is rewired to the cloned return value.
func InlineFunction(m *Module, callee *Function) error {
	if callee.IsTop {
		return fmt.Errorf("ir: cannot inline top function %q", callee.Name)
	}
	for _, f := range callee.Callees {
		if !f.Inlined {
			return fmt.Errorf("ir: inline %q: callee %q must be inlined first", callee.Name, f.Name)
		}
	}
	for _, caller := range m.Funcs {
		if caller == callee || caller.Inlined {
			continue
		}
		if err := inlineInto(m, caller, callee); err != nil {
			return err
		}
	}
	callee.Inlined = true
	return nil
}

func inlineInto(m *Module, caller, callee *Function) error {
	// Collect call sites first: cloning appends to caller.Ops.
	var calls []*Op
	for _, o := range caller.Ops {
		if o.Kind == KindCall && o.Name == "call_"+callee.Name {
			calls = append(calls, o)
		}
	}
	for _, call := range calls {
		if err := inlineCall(m, caller, callee, call); err != nil {
			return err
		}
	}
	if len(calls) > 0 {
		// Drop the call-graph edge; the callee's own edges transfer.
		kept := caller.Callees[:0]
		for _, cf := range caller.Callees {
			if cf != callee {
				kept = append(kept, cf)
			}
		}
		caller.Callees = kept
		for _, cf := range callee.Callees {
			found := false
			for _, have := range caller.Callees {
				if have == cf {
					found = true
					break
				}
			}
			if !found {
				caller.Callees = append(caller.Callees, cf)
			}
		}
	}
	return nil
}

func inlineCall(m *Module, caller, callee *Function, call *Op) error {
	ports := callee.PortOps()
	if len(call.Operands) < len(ports) {
		return fmt.Errorf("ir: call %s passes %d args, callee %q has %d ports",
			call.Name, len(call.Operands), callee.Name, len(ports))
	}
	clone := make(map[*Op]*Op, len(callee.Ops))
	// Map callee ports straight to the caller-side argument defs.
	for i, p := range ports {
		clone[p] = call.Operands[i].Def
	}
	var retVal *Op
	for _, o := range callee.Ops {
		if o.Kind == KindPort {
			continue
		}
		if o.Kind == KindRet {
			if len(o.Operands) > 0 {
				retVal = clone[o.Operands[0].Def]
			}
			continue
		}
		c := &Op{
			ID:         m.nextOpID,
			Kind:       o.Kind,
			Name:       fmt.Sprintf("%s.%s", callee.Name, o.Name),
			Bitwidth:   o.Bitwidth,
			Func:       caller,
			Loop:       call.Loop,
			Src:        o.Src,
			Array:      o.Array,
			ReplicaOf:  o.ReplicaOf,
			ReplicaIdx: o.ReplicaIdx,
		}
		m.nextOpID++
		for _, e := range o.Operands {
			d, ok := clone[e.Def]
			if !ok {
				return fmt.Errorf("ir: inline %q: operand %s defined after use", callee.Name, e.Def.Name)
			}
			c.Operands = append(c.Operands, Operand{Def: d, Bits: e.Bits})
			d.users = append(d.users, c)
		}
		clone[o] = c
		caller.Ops = append(caller.Ops, c)
	}
	// Callee arrays become caller arrays (fresh instance per call site).
	for _, a := range callee.Arrays {
		caller.Arrays = append(caller.Arrays, &Array{
			Name:  fmt.Sprintf("%s.%s.%d", callee.Name, a.Name, call.ID),
			Words: a.Words, Bits: a.Bits, Banks: a.Banks, Func: caller,
		})
	}
	// Rewire consumers of the call result to the cloned return value, then
	// detach the call op from the graph.
	if retVal == nil {
		retVal = call.Operands[0].Def // degenerate callee: forward first arg
	}
	for _, u := range call.users {
		for i := range u.Operands {
			if u.Operands[i].Def == call {
				u.Operands[i].Def = retVal
				if u.Operands[i].Bits > retVal.Bitwidth {
					u.Operands[i].Bits = retVal.Bitwidth
				}
				retVal.users = append(retVal.users, u)
			}
		}
	}
	call.users = nil
	for _, e := range call.Operands {
		removeUser(e.Def, call)
	}
	removeOp(caller, call)
	return nil
}

func removeUser(def, user *Op) {
	for i, u := range def.users {
		if u == user {
			def.users = append(def.users[:i], def.users[i+1:]...)
			return
		}
	}
}

func removeOp(f *Function, op *Op) {
	for i, o := range f.Ops {
		if o == op {
			f.Ops = append(f.Ops[:i], f.Ops[i+1:]...)
			return
		}
	}
}

// ReplicateProducer clones the producer op once per user beyond the first,
// so each consumer reads a private copy. This models the paper's case-study
// "Replication" fix: copying shared input data so classifiers no longer fan
// out from one completely partitioned array. It returns the clones created.
func ReplicateProducer(m *Module, producer *Op) []*Op {
	users := append([]*Op(nil), producer.users...)
	if len(users) <= 1 {
		return nil
	}
	f := producer.Func
	var clones []*Op
	for _, u := range users[1:] {
		c := &Op{
			ID:        m.nextOpID,
			Kind:      producer.Kind,
			Name:      fmt.Sprintf("%s.rep%d", producer.Name, len(clones)+1),
			Bitwidth:  producer.Bitwidth,
			Func:      f,
			Loop:      producer.Loop,
			Src:       producer.Src,
			Array:     producer.Array,
			ReplicaOf: -1,
		}
		m.nextOpID++
		for _, e := range producer.Operands {
			c.Operands = append(c.Operands, e)
			e.Def.users = append(e.Def.users, c)
		}
		for i := range u.Operands {
			if u.Operands[i].Def == producer {
				u.Operands[i].Def = c
				c.users = append(c.users, u)
			}
		}
		removeUser(producer, u)
		f.Ops = append(f.Ops, c)
		clones = append(clones, c)
	}
	return clones
}
