package ir

import "testing"

// buildCallPair returns a module with a leaf function (not x + y style
// body) called twice from the top.
func buildCallPair(t *testing.T) (*Module, *Function, *Function, []*Op) {
	t.Helper()
	m := NewModule("m")
	top := m.NewFunction("top")
	leaf := m.NewFunction("leaf")

	lb := NewBuilder(leaf).At("leaf.cpp", 1)
	x := lb.Port("x", 16)
	y := lb.Port("y", 16)
	sum := lb.Op(KindAdd, 16, x, y)
	neg := lb.Op(KindNot, 16, sum)
	lb.Ret(neg)

	tb := NewBuilder(top).At("top.cpp", 1)
	a := tb.Port("a", 16)
	c := tb.Port("c", 16)
	r1 := tb.Call(leaf, a, c)
	r2 := tb.Call(leaf, r1, c)
	out := tb.Op(KindXor, 16, r1, r2)
	tb.Ret(out)
	if err := Validate(m); err != nil {
		t.Fatalf("pre-inline validate: %v", err)
	}
	return m, top, leaf, []*Op{a, c, out}
}

func TestInlineFunction(t *testing.T) {
	m, top, leaf, keep := buildCallPair(t)
	preOps := m.NumOps()
	if err := InlineFunction(m, leaf); err != nil {
		t.Fatal(err)
	}
	if !leaf.Inlined {
		t.Fatal("leaf not marked inlined")
	}
	if err := Validate(m); err != nil {
		t.Fatalf("post-inline validate: %v", err)
	}
	// Both call sites replaced by the cloned body: 2 calls removed, 2x2
	// body ops added (ports map to args, rets dissolve).
	if got, want := m.NumOps(), preOps-len(leaf.Ops)-2+2*2; got != want {
		t.Errorf("NumOps after inline = %d, want %d", got, want)
	}
	for _, o := range top.Ops {
		if o.Kind == KindCall {
			t.Errorf("call op %v survived inlining", o)
		}
	}
	// The xor consumer must now read cloned not-ops.
	out := keep[2]
	for _, e := range out.Operands {
		if e.Def.Kind != KindNot {
			t.Errorf("out operand kind = %v, want not", e.Def.Kind)
		}
		if e.Def.Func != top {
			t.Errorf("out operand not cloned into top")
		}
	}
	if len(top.Callees) != 0 {
		t.Errorf("call-graph edge survived: %v", top.Callees)
	}
}

func TestInlineTopRejected(t *testing.T) {
	m, top, _, _ := buildCallPair(t)
	if err := InlineFunction(m, top); err == nil {
		t.Fatal("inlining the top function must fail")
	}
}

func TestInlineRequiresCalleesFirst(t *testing.T) {
	m := NewModule("m")
	top := m.NewFunction("top")
	mid := m.NewFunction("mid")
	leaf := m.NewFunction("leaf")

	lb := NewBuilder(leaf)
	lp := lb.Port("x", 8)
	lb.Ret(lb.Op(KindNot, 8, lp))

	mb := NewBuilder(mid)
	mp := mb.Port("x", 8)
	mv := mb.Call(leaf, mp)
	mb.Ret(mv)

	tb := NewBuilder(top)
	tp := tb.Port("x", 8)
	tb.Ret(tb.Call(mid, tp))

	if err := InlineFunction(m, mid); err == nil {
		t.Fatal("inlining mid before leaf must fail")
	}
	if err := InlineFunction(m, leaf); err != nil {
		t.Fatal(err)
	}
	if err := InlineFunction(m, mid); err != nil {
		t.Fatal(err)
	}
	if err := Validate(m); err != nil {
		t.Fatal(err)
	}
	if m.NumOps() == 0 || len(m.LiveFuncs()) != 1 {
		t.Errorf("live funcs = %d", len(m.LiveFuncs()))
	}
}

func TestInlineClonesArrays(t *testing.T) {
	m := NewModule("m")
	top := m.NewFunction("top")
	leaf := m.NewFunction("leaf")
	lb := NewBuilder(leaf)
	lp := lb.Port("x", 8)
	arr := lb.Array("buf", 16, 8, 2)
	ld := lb.Load(arr, lp)
	lb.Ret(ld)

	tb := NewBuilder(top)
	tp := tb.Port("x", 8)
	tb.Ret(tb.Call(leaf, tp))
	tb.Ret(tb.Call(leaf, tp))

	if err := InlineFunction(m, leaf); err != nil {
		t.Fatal(err)
	}
	if len(top.Arrays) != 2 {
		t.Fatalf("top has %d arrays after inlining two call sites, want 2", len(top.Arrays))
	}
	if err := Validate(m); err != nil {
		t.Fatal(err)
	}
}

func TestReplicateProducer(t *testing.T) {
	m := NewModule("m")
	f := m.NewFunction("f")
	b := NewBuilder(f)
	p := b.Port("p", 32)
	src := b.Op(KindNot, 32, p)
	var users []*Op
	for i := 0; i < 4; i++ {
		users = append(users, b.Op(KindAdd, 32, src, p))
	}
	clones := ReplicateProducer(m, src)
	if len(clones) != 3 {
		t.Fatalf("clones = %d, want 3", len(clones))
	}
	if src.NumUsers() != 1 {
		t.Errorf("src retains %d users, want 1", src.NumUsers())
	}
	for _, c := range clones {
		if c.NumUsers() != 1 {
			t.Errorf("clone has %d users, want 1", c.NumUsers())
		}
		if c.Kind != KindNot || c.Bitwidth != 32 {
			t.Errorf("clone malformed: %v", c)
		}
	}
	if err := Validate(m); err != nil {
		t.Fatal(err)
	}
	_ = users
}

func TestReplicateProducerSingleUserNoop(t *testing.T) {
	m := NewModule("m")
	f := m.NewFunction("f")
	b := NewBuilder(f)
	p := b.Port("p", 8)
	v := b.Op(KindNot, 8, p)
	b.Op(KindNot, 8, v)
	if clones := ReplicateProducer(m, v); clones != nil {
		t.Fatalf("single-user replicate returned %d clones", len(clones))
	}
}
