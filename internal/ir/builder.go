package ir

import "fmt"

// Builder constructs the dataflow graph of one function. It tracks the
// current loop scope and source line so benchmark generators read like the
// HLS programs they model.
type Builder struct {
	F    *Function
	loop *Loop
	src  SourceLoc
}

// NewBuilder returns a builder appending operations to f.
func NewBuilder(f *Function) *Builder {
	return &Builder{F: f}
}

// At sets the source location recorded on subsequently created operations.
func (b *Builder) At(file string, line int) *Builder {
	b.src = SourceLoc{File: file, Line: line}
	return b
}

// Line advances only the source line, keeping the file.
func (b *Builder) Line(line int) *Builder {
	b.src.Line = line
	return b
}

// EnterLoop opens a new loop scope nested in the current one. Operations
// created until the matching ExitLoop belong to the loop.
func (b *Builder) EnterLoop(name string, trips int) *Loop {
	m := b.F.Module
	l := &Loop{
		ID:        m.nextLoopID,
		Name:      name,
		TripCount: trips,
		Unroll:    1,
		Func:      b.F,
		Parent:    b.loop,
	}
	m.nextLoopID++
	if b.loop != nil {
		b.loop.Kids = append(b.loop.Kids, l)
	}
	b.F.Loops = append(b.F.Loops, l)
	b.loop = l
	return l
}

// ExitLoop closes the innermost loop scope.
func (b *Builder) ExitLoop() {
	if b.loop == nil {
		panic("ir: ExitLoop without matching EnterLoop")
	}
	b.loop = b.loop.Parent
}

// CurLoop returns the innermost open loop scope, or nil.
func (b *Builder) CurLoop() *Loop { return b.loop }

// Array declares an on-chip memory in the function.
func (b *Builder) Array(name string, words, bits, banks int) *Array {
	if banks < 1 {
		banks = 1
	}
	if banks > words {
		banks = words
	}
	a := &Array{Name: name, Words: words, Bits: bits, Banks: banks, Func: b.F}
	b.F.Arrays = append(b.F.Arrays, a)
	return a
}

// Op creates an operation of the given kind and result bitwidth. Each
// operand contributes its full bitwidth as edge weight; use OpBits for
// partial-bus taps.
func (b *Builder) Op(kind OpKind, bitwidth int, operands ...*Op) *Op {
	edges := make([]Operand, len(operands))
	for i, d := range operands {
		edges[i] = Operand{Def: d, Bits: d.Bitwidth}
	}
	return b.OpEdges(kind, bitwidth, edges...)
}

// OpBits creates an operation whose single operand contributes only `bits`
// wires — the partial-bus case the paper uses to motivate edge weights.
func (b *Builder) OpBits(kind OpKind, bitwidth int, def *Op, bits int) *Op {
	return b.OpEdges(kind, bitwidth, Operand{Def: def, Bits: bits})
}

// OpEdges creates an operation from explicit weighted edges.
func (b *Builder) OpEdges(kind OpKind, bitwidth int, edges ...Operand) *Op {
	if !kind.Valid() {
		panic(fmt.Sprintf("ir: invalid op kind %d", int(kind)))
	}
	if bitwidth <= 0 {
		panic(fmt.Sprintf("ir: op %s with non-positive bitwidth %d", kind, bitwidth))
	}
	m := b.F.Module
	o := &Op{
		ID:        m.nextOpID,
		Kind:      kind,
		Bitwidth:  bitwidth,
		Func:      b.F,
		Loop:      b.loop,
		Src:       b.src,
		ReplicaOf: -1,
		Operands:  edges,
	}
	m.nextOpID++
	for i := range edges {
		e := &o.Operands[i]
		if e.Def == nil {
			panic("ir: nil operand def")
		}
		if e.Bits <= 0 || e.Bits > e.Def.Bitwidth {
			e.Bits = e.Def.Bitwidth
		}
		e.Def.users = append(e.Def.users, o)
	}
	o.Name = defaultOpName(kind, o.ID)
	b.F.Ops = append(b.F.Ops, o)
	return o
}

// Port declares a function I/O port of the given width. Ports participate
// in the dependency graph as "port"-type nodes per the paper.
func (b *Builder) Port(name string, bitwidth int) *Op {
	o := b.Op(KindPort, bitwidth)
	o.Name = name
	return o
}

// Const materializes a constant of the given width.
func (b *Builder) Const(bitwidth int) *Op {
	return b.Op(KindConst, bitwidth)
}

// Load reads one word from an array. addr may be nil for affine accesses
// whose address computation is folded away.
func (b *Builder) Load(a *Array, addr *Op) *Op {
	var o *Op
	if addr != nil {
		o = b.Op(KindLoad, a.Bits, addr)
	} else {
		o = b.Op(KindLoad, a.Bits)
	}
	o.Array = a
	return o
}

// Store writes one word to an array and yields a 1-bit done token.
func (b *Builder) Store(a *Array, val *Op, addr *Op) *Op {
	var o *Op
	if addr != nil {
		o = b.Op(KindStore, 1, val, addr)
	} else {
		o = b.Op(KindStore, 1, val)
	}
	o.Array = a
	return o
}

// Call creates a call operation into callee, recording the call-graph edge.
// The result width is the callee's nominal return width (first Ret operand
// width, or 1).
func (b *Builder) Call(callee *Function, args ...*Op) *Op {
	w := 1
	for _, o := range callee.Ops {
		if o.Kind == KindRet && len(o.Operands) > 0 {
			w = o.Operands[0].Bits
		}
	}
	c := b.Op(KindCall, w, args...)
	c.Name = "call_" + callee.Name
	seen := false
	for _, cf := range b.F.Callees {
		if cf == callee {
			seen = true
			break
		}
	}
	if !seen {
		b.F.Callees = append(b.F.Callees, callee)
	}
	return c
}

// Ret creates the function return.
func (b *Builder) Ret(vals ...*Op) *Op {
	w := 1
	if len(vals) > 0 {
		w = vals[0].Bitwidth
	}
	return b.Op(KindRet, w, vals...)
}

// ReduceTree builds a balanced binary reduction over vals using the given
// kind (e.g. a balanced adder tree), returning the root. It is a convenience
// shared by several benchmark generators.
func (b *Builder) ReduceTree(kind OpKind, bitwidth int, vals []*Op) *Op {
	if len(vals) == 0 {
		panic("ir: ReduceTree over empty slice")
	}
	level := vals
	for len(level) > 1 {
		var next []*Op
		for i := 0; i+1 < len(level); i += 2 {
			next = append(next, b.Op(kind, bitwidth, level[i], level[i+1]))
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	return level[0]
}
