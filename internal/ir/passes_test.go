package ir

import "testing"

func TestEliminateDeadOps(t *testing.T) {
	m := NewModule("m")
	b := NewBuilder(m.NewFunction("f"))
	p := b.Port("p", 8)
	live := b.Op(KindNot, 8, p)
	b.Ret(live)
	// A dead chain: d2 uses d1, nobody uses d2.
	d1 := b.Op(KindAdd, 8, p, p)
	d2 := b.Op(KindXor, 8, d1, p)
	_ = d2
	// A dead store must survive (side effect).
	a := b.Array("mem", 8, 8, 1)
	b.Store(a, live, nil)

	before := m.NumOps()
	removed := EliminateDeadOps(m)
	if removed != 2 {
		t.Fatalf("removed %d ops, want 2 (the dead chain)", removed)
	}
	if m.NumOps() != before-2 {
		t.Fatalf("NumOps = %d", m.NumOps())
	}
	if err := Validate(m); err != nil {
		t.Fatal(err)
	}
	// Idempotent.
	if EliminateDeadOps(m) != 0 {
		t.Error("second DCE pass removed ops")
	}
}

func TestDCEKeepsPortsAndCalls(t *testing.T) {
	m := NewModule("m")
	leaf := m.NewFunction("leaf")
	lb := NewBuilder(leaf)
	lp := lb.Port("x", 8)
	lb.Ret(lb.Op(KindNot, 8, lp))
	top := m.NewFunction("top")
	m.SetTop(top)
	tb := NewBuilder(top)
	tp := tb.Port("unused_port", 8)
	call := tb.Call(leaf, tp) // result unused, but callee has effects
	_ = call
	if removed := EliminateDeadOps(m); removed != 0 {
		t.Fatalf("DCE removed %d ops; ports and calls must survive", removed)
	}
}

func TestMergeCommonSubexpressions(t *testing.T) {
	m := NewModule("m")
	b := NewBuilder(m.NewFunction("f"))
	p := b.Port("p", 16)
	q := b.Port("q", 16)
	s1 := b.Op(KindAdd, 16, p, q)
	s2 := b.Op(KindAdd, 16, p, q) // duplicate
	s3 := b.Op(KindAdd, 16, q, p) // different operand order: kept
	u1 := b.Op(KindNot, 16, s1)
	u2 := b.Op(KindNot, 16, s2) // after CSE both use s1 -> u2 duplicates u1
	out := b.Op(KindXor, 16, u1, u2)
	b.Ret(b.Op(KindOr, 16, out, s3))

	folded := MergeCommonSubexpressions(m)
	// The fold cascades: s2 merges into s1, which makes u2 a duplicate of
	// u1, which then merges too.
	if folded != 2 {
		t.Fatalf("folded %d, want 2 (duplicate add, then cascaded not)", folded)
	}
	if err := Validate(m); err != nil {
		t.Fatal(err)
	}
	// s1 now feeds exactly one surviving not.
	users := 0
	for _, u := range s1.Users() {
		if u.Kind == KindNot {
			users++
		}
	}
	if users != 1 {
		t.Errorf("survivor add has %d not-users, want 1 after the cascade", users)
	}
	// The xor reads the surviving not through both operands.
	if out.Operands[0].Def != u1 || out.Operands[1].Def != u1 {
		t.Error("xor operands not rewired to the surviving not")
	}
	_ = u2
	// Different operand order remains.
	found := false
	for _, o := range m.AllOps() {
		if o == s3 {
			found = true
		}
	}
	if !found {
		t.Error("operand-order-distinct add was merged")
	}
}

func TestCSESkipsReplicasAndMemory(t *testing.T) {
	m := NewModule("m")
	b := NewBuilder(m.NewFunction("f"))
	p := b.Port("p", 8)
	a := b.Array("mem", 8, 8, 1)
	// Two identical loads: must NOT merge (memory state).
	l1 := b.Load(a, nil)
	l2 := b.Load(a, nil)
	b.Ret(b.Op(KindAdd, 8, l1, l2))
	// Unrolled loop: replicas are real parallel hardware.
	b.UnrolledLoop("u", 8, 2, func(copy int) {
		b.Op(KindNot, 8, p)
	})
	if folded := MergeCommonSubexpressions(m); folded != 0 {
		t.Fatalf("folded %d ops; loads and replicas must be preserved", folded)
	}
}

func TestOptimizePipeline(t *testing.T) {
	m := NewModule("m")
	b := NewBuilder(m.NewFunction("f"))
	p := b.Port("p", 16)
	a1 := b.Op(KindAdd, 16, p, p)
	a2 := b.Op(KindAdd, 16, p, p) // CSE folds into a1...
	b.Ret(a1)
	_ = a2 // ...and a2's orphaned self is then DCE'd
	folded, removed := Optimize(m)
	if folded != 1 {
		t.Errorf("folded = %d", folded)
	}
	if removed != 0 {
		// a2 had no users, so CSE's rewiring leaves nothing dead — but a2
		// itself was already folded away. Nothing left to remove.
		t.Errorf("removed = %d", removed)
	}
	if err := Validate(m); err != nil {
		t.Fatal(err)
	}
}
