package ir

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuilderSourceTracking(t *testing.T) {
	m := NewModule("m")
	b := NewBuilder(m.NewFunction("f")).At("k.cpp", 10)
	o1 := b.Const(8)
	b.Line(20)
	o2 := b.Const(8)
	if o1.Src != (SourceLoc{File: "k.cpp", Line: 10}) {
		t.Errorf("o1.Src = %v", o1.Src)
	}
	if o2.Src != (SourceLoc{File: "k.cpp", Line: 20}) {
		t.Errorf("o2.Src = %v", o2.Src)
	}
}

func TestBuilderLoopScopes(t *testing.T) {
	m := NewModule("m")
	b := NewBuilder(m.NewFunction("f"))
	top := b.Const(8)
	l1 := b.EnterLoop("outer", 10)
	in1 := b.Const(8)
	l2 := b.EnterLoop("inner", 5)
	in2 := b.Const(8)
	b.ExitLoop()
	b.ExitLoop()
	after := b.Const(8)

	if top.Loop != nil || after.Loop != nil {
		t.Error("top-level ops must have nil loop")
	}
	if in1.Loop != l1 || in2.Loop != l2 {
		t.Error("loop scoping wrong")
	}
	if l2.Parent != l1 || len(l1.Kids) != 1 || l1.Kids[0] != l2 {
		t.Error("loop nesting wrong")
	}
	if b.CurLoop() != nil {
		t.Error("CurLoop after exits should be nil")
	}
}

func TestExitLoopWithoutEnterPanics(t *testing.T) {
	m := NewModule("m")
	b := NewBuilder(m.NewFunction("f"))
	defer func() {
		if recover() == nil {
			t.Fatal("ExitLoop without EnterLoop did not panic")
		}
	}()
	b.ExitLoop()
}

func TestBuilderOpEdgeWeights(t *testing.T) {
	m := NewModule("m")
	b := NewBuilder(m.NewFunction("f"))
	p := b.Port("p", 32)
	full := b.Op(KindNot, 32, p)
	partial := b.OpBits(KindBitSel, 8, p, 8)
	if full.Operands[0].Bits != 32 {
		t.Errorf("full edge bits = %d", full.Operands[0].Bits)
	}
	if partial.Operands[0].Bits != 8 {
		t.Errorf("partial edge bits = %d", partial.Operands[0].Bits)
	}
	// Weight larger than producer width clamps.
	clamped := b.OpBits(KindZExt, 64, p, 99)
	if clamped.Operands[0].Bits != 32 {
		t.Errorf("clamped edge bits = %d, want 32", clamped.Operands[0].Bits)
	}
}

func TestBuilderInvalidOpsPanic(t *testing.T) {
	m := NewModule("m")
	b := NewBuilder(m.NewFunction("f"))
	for name, fn := range map[string]func(){
		"invalid kind":  func() { b.Op(KindInvalid, 8) },
		"zero bitwidth": func() { b.Op(KindAdd, 0) },
		"empty reduce":  func() { b.ReduceTree(KindAdd, 8, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestArrayBankClamping(t *testing.T) {
	m := NewModule("m")
	b := NewBuilder(m.NewFunction("f"))
	a := b.Array("a", 16, 8, 100)
	if a.Banks != 16 {
		t.Errorf("banks = %d, want clamp to words (16)", a.Banks)
	}
	a2 := b.Array("a2", 16, 8, 0)
	if a2.Banks != 1 {
		t.Errorf("banks = %d, want 1", a2.Banks)
	}
}

func TestLoadStore(t *testing.T) {
	m := NewModule("m")
	b := NewBuilder(m.NewFunction("f"))
	a := b.Array("mem", 64, 16, 2)
	addr := b.Const(6)
	ld := b.Load(a, addr)
	if ld.Kind != KindLoad || ld.Array != a || ld.Bitwidth != 16 {
		t.Errorf("load malformed: %v", ld)
	}
	st := b.Store(a, ld, addr)
	if st.Kind != KindStore || st.Array != a || st.Bitwidth != 1 {
		t.Errorf("store malformed: %v", st)
	}
	ld2 := b.Load(a, nil)
	if len(ld2.Operands) != 0 {
		t.Error("load with nil addr should have no operands")
	}
}

func TestCallRecordsCallGraph(t *testing.T) {
	m := NewModule("m")
	callee := m.NewFunction("leaf")
	cb := NewBuilder(callee)
	p := cb.Port("x", 16)
	cb.Ret(cb.Op(KindNot, 16, p))

	top := m.NewFunction("top")
	m.SetTop(top)
	tb := NewBuilder(top)
	arg := tb.Port("a", 16)
	c1 := tb.Call(callee, arg)
	c2 := tb.Call(callee, arg)
	if c1.Bitwidth != 16 {
		t.Errorf("call result width = %d, want callee ret width 16", c1.Bitwidth)
	}
	if len(top.Callees) != 1 || top.Callees[0] != callee {
		t.Errorf("Callees = %v, want single edge", top.Callees)
	}
	if c1.Name != "call_leaf" || c2.Name != "call_leaf" {
		t.Errorf("call names: %q %q", c1.Name, c2.Name)
	}
}

func TestReduceTree(t *testing.T) {
	m := NewModule("m")
	b := NewBuilder(m.NewFunction("f"))
	var vals []*Op
	for i := 0; i < 7; i++ {
		vals = append(vals, b.Const(16))
	}
	before := len(b.F.Ops)
	root := b.ReduceTree(KindAdd, 16, vals)
	added := len(b.F.Ops) - before
	if added != 6 {
		t.Errorf("reduce over 7 leaves added %d adds, want 6", added)
	}
	if root.Kind != KindAdd {
		t.Errorf("root kind = %v", root.Kind)
	}
	// Single value passes through.
	single := b.ReduceTree(KindAdd, 16, vals[:1])
	if single != vals[0] {
		t.Error("reduce of single value should be identity")
	}
}

func TestUnrolledLoopReplicaMarking(t *testing.T) {
	m := NewModule("m")
	b := NewBuilder(m.NewFunction("f"))
	p := b.Port("p", 8)
	l := b.UnrolledLoop("u", 100, 4, func(copy int) {
		v := b.Op(KindNot, 8, p)
		b.Op(KindAdd, 8, v, p)
	})
	if l.Unroll != 4 || l.TripCount != 100 {
		t.Fatalf("loop = %+v", l)
	}
	var originals, replicas []*Op
	for _, o := range b.F.Ops {
		if o.Loop != l {
			continue
		}
		if o.IsReplica() {
			replicas = append(replicas, o)
		} else {
			originals = append(originals, o)
		}
	}
	if len(originals) != 2 || len(replicas) != 6 {
		t.Fatalf("originals=%d replicas=%d, want 2/6", len(originals), len(replicas))
	}
	for _, r := range replicas {
		root := m.OpByID(r.ReplicaOf)
		if root == nil || root.IsReplica() {
			t.Errorf("replica %v has bad root %v", r, root)
		}
		if root.Kind != r.Kind {
			t.Errorf("replica kind %v != root kind %v", r.Kind, root.Kind)
		}
		if r.ReplicaIdx < 1 || r.ReplicaIdx > 3 {
			t.Errorf("replica idx %d out of range", r.ReplicaIdx)
		}
	}
}

func TestUnrolledLoopFactorClamping(t *testing.T) {
	m := NewModule("m")
	b := NewBuilder(m.NewFunction("f"))
	l := b.UnrolledLoop("u", 3, 10, func(copy int) { b.Const(8) })
	if l.Unroll != 3 {
		t.Errorf("unroll = %d, want clamp to trips 3", l.Unroll)
	}
	l2 := b.UnrolledLoop("u2", 5, 0, func(copy int) { b.Const(8) })
	if l2.Unroll != 1 {
		t.Errorf("unroll = %d, want 1", l2.Unroll)
	}
}

func TestPipelinedLoop(t *testing.T) {
	m := NewModule("m")
	b := NewBuilder(m.NewFunction("f"))
	l := b.PipelinedLoop("p", 64, 2, func() { b.Const(8) })
	if !l.Pipelined || l.II != 2 {
		t.Fatalf("loop = %+v", l)
	}
	l2 := b.PipelinedLoop("p2", 64, 0, func() { b.Const(8) })
	if l2.II != 1 {
		t.Errorf("II = %d, want clamp to 1", l2.II)
	}
}

// TestRandomDAGsValidate is the builder's property test: any graph built
// through the Builder API must satisfy Validate, and fan-in/fan-out
// bookkeeping must be mutually consistent.
func TestRandomDAGsValidate(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewModule("rand")
		b := NewBuilder(m.NewFunction("f")).At("rand.cpp", 1)
		ops := []*Op{b.Port("p0", 16), b.Port("p1", 32)}
		kinds := []OpKind{KindAdd, KindSub, KindAnd, KindXor, KindMul, KindICmp, KindNot}
		n := 5 + rng.Intn(60)
		for i := 0; i < n; i++ {
			k := kinds[rng.Intn(len(kinds))]
			w := 1 + rng.Intn(32)
			nArgs := 1 + rng.Intn(2)
			var args []*Op
			for j := 0; j < nArgs; j++ {
				args = append(args, ops[rng.Intn(len(ops))])
			}
			ops = append(ops, b.Op(k, w, args...))
		}
		if err := Validate(m); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		// Conservation: total fan-out over all ops equals total fan-in.
		totalIn, totalOut := 0, 0
		for _, o := range m.AllOps() {
			totalIn += o.FanIn()
			totalOut += o.FanOut()
		}
		return totalIn == totalOut
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
