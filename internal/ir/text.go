package ir

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Textual IR: a line-oriented, human-readable serialization of a module,
// good enough to diff designs, store regression inputs, and move designs
// between tools. WriteText and ParseText round-trip every structural
// property the flow consumes (ops, operand taps, arrays, loops, source
// locations, replica marks, call-graph edges, non-default op names); op
// IDs are preserved.
//
// Format sketch:
//
//	module face_detection
//	func face_detect top calls=filter_pixel
//	  array window_buf words=64 bits=8 banks=64
//	  loop 0 scan_windows trips=40000 unroll=4 pipeline ii=2 parent=-1
//	  %3 = port "img_in" i32 @face_detect.cpp:12
//	  %7 = add i16 %3:16, %5 @face_detect.cpp:78 loop=0 replica=3/1
//	  %9 = load i8 mem=window_buf %8 @face_detect.cpp:60
//	  %12 = call "call_filter_pixel" i16 %9

// WriteText serializes the module's live functions.
func WriteText(w io.Writer, m *Module) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "module %s\n", m.Name)
	for _, f := range m.LiveFuncs() {
		role := ""
		if f.IsTop {
			role = " top"
		}
		// Call-graph edges: only live callees are serialized — inlined
		// functions no longer exist as text and their edges are dead
		// (resolution skips inlined callees anyway).
		var callees []string
		for _, cf := range f.Callees {
			if !cf.Inlined {
				callees = append(callees, cf.Name)
			}
		}
		if len(callees) > 0 {
			role += " calls=" + strings.Join(callees, ",")
		}
		fmt.Fprintf(bw, "func %s%s\n", f.Name, role)
		for _, a := range f.Arrays {
			fmt.Fprintf(bw, "  array %s words=%d bits=%d banks=%d\n", a.Name, a.Words, a.Bits, a.Banks)
		}
		loops := append([]*Loop(nil), f.Loops...)
		sort.Slice(loops, func(i, j int) bool { return loops[i].ID < loops[j].ID })
		for _, l := range loops {
			parent := -1
			if l.Parent != nil {
				parent = l.Parent.ID
			}
			attrs := fmt.Sprintf("trips=%d unroll=%d parent=%d", l.TripCount, l.Unroll, parent)
			if l.Pipelined {
				attrs += fmt.Sprintf(" pipeline ii=%d", l.II)
			}
			fmt.Fprintf(bw, "  loop %d %s %s\n", l.ID, l.Name, attrs)
		}
		for _, o := range f.Ops {
			if err := writeOp(bw, o); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

func writeOp(bw *bufio.Writer, o *Op) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "  %%%d = %s", o.ID, o.Kind)
	// Names are only written when they carry information: ports always (the
	// port name is the external interface), other ops when the name differs
	// from the kind_id default the parser would regenerate. Call ops depend
	// on this — rtl resolves the callee through the "call_<name>" op name.
	if o.Kind == KindPort || o.Name != defaultOpName(o.Kind, o.ID) {
		fmt.Fprintf(&sb, " %q", o.Name)
	}
	fmt.Fprintf(&sb, " i%d", o.Bitwidth)
	if o.Array != nil {
		fmt.Fprintf(&sb, " mem=%s", o.Array.Name)
	}
	for _, e := range o.Operands {
		if e.Bits != e.Def.Bitwidth {
			fmt.Fprintf(&sb, " %%%d:%d", e.Def.ID, e.Bits)
		} else {
			fmt.Fprintf(&sb, " %%%d", e.Def.ID)
		}
	}
	if !o.Src.IsZero() {
		fmt.Fprintf(&sb, " @%s:%d", o.Src.File, o.Src.Line)
	}
	if o.Loop != nil {
		fmt.Fprintf(&sb, " loop=%d", o.Loop.ID)
	}
	if o.IsReplica() {
		fmt.Fprintf(&sb, " replica=%d/%d", o.ReplicaOf, o.ReplicaIdx)
	}
	sb.WriteByte('\n')
	_, err := bw.WriteString(sb.String())
	return err
}

// ParseText reconstructs a module from WriteText output. The result passes
// Validate and preserves op IDs, so provenance stays stable across a
// round-trip.
func ParseText(r io.Reader) (*Module, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<22)
	var m *Module
	var f *Function
	opByID := make(map[int]*Op)
	loopByID := make(map[int]*Loop)
	type loopFix struct {
		loop   *Loop
		parent int
	}
	var loopFixes []loopFix
	type calleeFix struct {
		f     *Function
		names []string
	}
	var calleeFixes []calleeFix
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch {
		case fields[0] == "module":
			if len(fields) != 2 {
				return nil, fmt.Errorf("ir: line %d: malformed module header", lineNo)
			}
			m = NewModule(fields[1])
		case fields[0] == "func":
			if m == nil {
				return nil, fmt.Errorf("ir: line %d: func before module", lineNo)
			}
			f = m.NewFunction(fields[1])
			for _, tok := range fields[2:] {
				switch {
				case tok == "top":
					m.SetTop(f)
				case strings.HasPrefix(tok, "calls="):
					// Callees can be declared later in the text; resolve
					// after the whole module is parsed.
					calleeFixes = append(calleeFixes, calleeFix{f, strings.Split(tok[6:], ",")})
				default:
					return nil, fmt.Errorf("ir: line %d: bad func attr %q", lineNo, tok)
				}
			}
		case fields[0] == "array":
			if f == nil {
				return nil, fmt.Errorf("ir: line %d: array outside func", lineNo)
			}
			a := &Array{Name: fields[1], Func: f}
			for _, kv := range fields[2:] {
				k, v, ok := cutKV(kv)
				if !ok {
					return nil, fmt.Errorf("ir: line %d: bad array attr %q", lineNo, kv)
				}
				n, err := strconv.Atoi(v)
				if err != nil {
					return nil, fmt.Errorf("ir: line %d: %v", lineNo, err)
				}
				switch k {
				case "words":
					a.Words = n
				case "bits":
					a.Bits = n
				case "banks":
					a.Banks = n
				}
			}
			f.Arrays = append(f.Arrays, a)
		case fields[0] == "loop":
			if f == nil {
				return nil, fmt.Errorf("ir: line %d: loop outside func", lineNo)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("ir: line %d: %v", lineNo, err)
			}
			l := &Loop{ID: id, Name: fields[2], Unroll: 1, Func: f}
			parent := -1
			for _, kv := range fields[3:] {
				if kv == "pipeline" {
					l.Pipelined = true
					continue
				}
				k, v, ok := cutKV(kv)
				if !ok {
					return nil, fmt.Errorf("ir: line %d: bad loop attr %q", lineNo, kv)
				}
				n, err := strconv.Atoi(v)
				if err != nil {
					return nil, fmt.Errorf("ir: line %d: %v", lineNo, err)
				}
				switch k {
				case "trips":
					l.TripCount = n
				case "unroll":
					l.Unroll = n
				case "ii":
					l.II = n
				case "parent":
					parent = n
				}
			}
			f.Loops = append(f.Loops, l)
			loopByID[l.ID] = l
			loopFixes = append(loopFixes, loopFix{l, parent})
			if l.ID >= m.nextLoopID {
				m.nextLoopID = l.ID + 1
			}
		case strings.HasPrefix(fields[0], "%"):
			if f == nil {
				return nil, fmt.Errorf("ir: line %d: op outside func", lineNo)
			}
			o, err := parseOp(m, f, fields, opByID, loopByID)
			if err != nil {
				return nil, fmt.Errorf("ir: line %d: %w", lineNo, err)
			}
			opByID[o.ID] = o
		default:
			return nil, fmt.Errorf("ir: line %d: unrecognized directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if m == nil {
		return nil, fmt.Errorf("ir: empty input")
	}
	for _, fix := range loopFixes {
		if fix.parent >= 0 {
			p, ok := loopByID[fix.parent]
			if !ok {
				return nil, fmt.Errorf("ir: loop %d references unknown parent %d", fix.loop.ID, fix.parent)
			}
			fix.loop.Parent = p
			p.Kids = append(p.Kids, fix.loop)
		}
	}
	funcByName := make(map[string]*Function, len(m.Funcs))
	for _, fn := range m.Funcs {
		funcByName[fn.Name] = fn
	}
	for _, fix := range calleeFixes {
		for _, name := range fix.names {
			cf, ok := funcByName[name]
			if !ok {
				return nil, fmt.Errorf("ir: func %s calls unknown function %q", fix.f.Name, name)
			}
			fix.f.Callees = append(fix.f.Callees, cf)
		}
	}
	if err := Validate(m); err != nil {
		return nil, fmt.Errorf("ir: parsed module invalid: %w", err)
	}
	return m, nil
}

func parseOp(m *Module, f *Function, fields []string, opByID map[int]*Op, loopByID map[int]*Loop) (*Op, error) {
	// %ID = kind ["name"] iW [mem=a] [%op[:bits]...] [@file:line] [loop=N] [replica=R/I]
	id, err := strconv.Atoi(strings.TrimPrefix(fields[0], "%"))
	if err != nil || len(fields) < 4 || fields[1] != "=" {
		return nil, fmt.Errorf("malformed op header")
	}
	kind := kindByName(fields[2])
	if !kind.Valid() {
		return nil, fmt.Errorf("unknown op kind %q", fields[2])
	}
	o := &Op{ID: id, Kind: kind, Func: f, ReplicaOf: -1}
	o.Name = defaultOpName(kind, id)
	rest := fields[3:]
	if len(rest) > 0 && strings.HasPrefix(rest[0], "\"") {
		o.Name = strings.Trim(rest[0], "\"")
		rest = rest[1:]
	}
	if len(rest) == 0 || !strings.HasPrefix(rest[0], "i") {
		return nil, fmt.Errorf("missing bitwidth")
	}
	w, err := strconv.Atoi(rest[0][1:])
	if err != nil {
		return nil, fmt.Errorf("bad bitwidth %q", rest[0])
	}
	o.Bitwidth = w
	for _, tok := range rest[1:] {
		switch {
		case strings.HasPrefix(tok, "mem="):
			name := tok[4:]
			for _, a := range f.Arrays {
				if a.Name == name {
					o.Array = a
				}
			}
			if o.Array == nil {
				return nil, fmt.Errorf("unknown array %q", name)
			}
		case strings.HasPrefix(tok, "%"):
			spec := tok[1:]
			bits := -1
			if c := strings.IndexByte(spec, ':'); c >= 0 {
				bits, err = strconv.Atoi(spec[c+1:])
				if err != nil {
					return nil, fmt.Errorf("bad operand tap %q", tok)
				}
				spec = spec[:c]
			}
			did, err := strconv.Atoi(spec)
			if err != nil {
				return nil, fmt.Errorf("bad operand %q", tok)
			}
			def, ok := opByID[did]
			if !ok {
				return nil, fmt.Errorf("operand %%%d not yet defined", did)
			}
			if bits < 0 {
				bits = def.Bitwidth
			}
			o.Operands = append(o.Operands, Operand{Def: def, Bits: bits})
			def.users = append(def.users, o)
		case strings.HasPrefix(tok, "@"):
			loc := tok[1:]
			c := strings.LastIndexByte(loc, ':')
			if c < 0 {
				return nil, fmt.Errorf("bad source loc %q", tok)
			}
			ln, err := strconv.Atoi(loc[c+1:])
			if err != nil {
				return nil, fmt.Errorf("bad source line %q", tok)
			}
			o.Src = SourceLoc{File: loc[:c], Line: ln}
		case strings.HasPrefix(tok, "loop="):
			lid, err := strconv.Atoi(tok[5:])
			if err != nil {
				return nil, fmt.Errorf("bad loop ref %q", tok)
			}
			l, ok := loopByID[lid]
			if !ok {
				return nil, fmt.Errorf("unknown loop %d", lid)
			}
			o.Loop = l
		case strings.HasPrefix(tok, "replica="):
			var root, idx int
			if _, err := fmt.Sscanf(tok, "replica=%d/%d", &root, &idx); err != nil {
				return nil, fmt.Errorf("bad replica mark %q", tok)
			}
			o.ReplicaOf = root
			o.ReplicaIdx = idx
		default:
			return nil, fmt.Errorf("unrecognized token %q", tok)
		}
	}
	f.Ops = append(f.Ops, o)
	if id >= m.nextOpID {
		m.nextOpID = id + 1
	}
	return o, nil
}

// defaultOpName is the name NewBuilder assigns when the caller never names
// the op; such names carry no information and are omitted from the text.
func defaultOpName(kind OpKind, id int) string {
	return fmt.Sprintf("%s_%d", kind, id)
}

func cutKV(s string) (k, v string, ok bool) {
	i := strings.IndexByte(s, '=')
	if i < 0 {
		return "", "", false
	}
	return s[:i], s[i+1:], true
}

// kindByName resolves the textual kind name.
func kindByName(name string) OpKind {
	for _, k := range AllKinds() {
		if k.String() == name {
			return k
		}
	}
	return KindInvalid
}
