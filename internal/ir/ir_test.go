package ir

import (
	"strings"
	"testing"
)

func TestKindString(t *testing.T) {
	cases := map[OpKind]string{
		KindAdd:     "add",
		KindMul:     "mul",
		KindICmp:    "icmp",
		KindPort:    "port",
		KindInvalid: "invalid",
		OpKind(99):  "invalid",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("OpKind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestKindCount(t *testing.T) {
	if KindCount != 32 {
		t.Fatalf("KindCount = %d, want 32 (feature layout depends on it)", KindCount)
	}
	if len(AllKinds()) != KindCount {
		t.Fatalf("AllKinds() has %d entries, want %d", len(AllKinds()), KindCount)
	}
}

func TestKindIndexRoundTrip(t *testing.T) {
	for _, k := range AllKinds() {
		if !k.Valid() {
			t.Errorf("kind %v reported invalid", k)
		}
		if got := KindFromIndex(k.Index()); got != k {
			t.Errorf("KindFromIndex(Index(%v)) = %v", k, got)
		}
	}
}

func TestKindIndexPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("KindInvalid.Index() did not panic")
		}
	}()
	_ = KindInvalid.Index()
}

func TestKindClassifiers(t *testing.T) {
	if !KindFAdd.IsFloat() || !KindSqrt.IsFloat() {
		t.Error("float kinds not classified as float")
	}
	if KindAdd.IsFloat() {
		t.Error("add classified as float")
	}
	if !KindLoad.IsMemory() || !KindStore.IsMemory() {
		t.Error("memory kinds not classified as memory")
	}
	if KindAdd.IsMemory() {
		t.Error("add classified as memory")
	}
}

func TestSourceLoc(t *testing.T) {
	l := SourceLoc{File: "a.cpp", Line: 12}
	if l.String() != "a.cpp:12" {
		t.Errorf("String() = %q", l.String())
	}
	var zero SourceLoc
	if !zero.IsZero() {
		t.Error("zero loc not IsZero")
	}
	if zero.String() != "<unknown>" {
		t.Errorf("zero loc String() = %q", zero.String())
	}
}

func TestModuleTopSelection(t *testing.T) {
	m := NewModule("m")
	f1 := m.NewFunction("first")
	f2 := m.NewFunction("second")
	if m.Top != f1 || !f1.IsTop {
		t.Fatal("first function should be top by default")
	}
	m.SetTop(f2)
	if m.Top != f2 || f1.IsTop || !f2.IsTop {
		t.Fatal("SetTop did not transfer top status")
	}
}

func TestFanInFanOut(t *testing.T) {
	m := NewModule("m")
	f := m.NewFunction("f")
	b := NewBuilder(f)
	a := b.Port("a", 32)
	c := b.Port("c", 32)
	sum := b.Op(KindAdd, 32, a, c)
	// A consumer tapping only 8 of sum's 32 bits.
	tap := b.OpBits(KindBitSel, 8, sum, 8)
	full := b.Op(KindNot, 32, sum)

	if got := sum.FanIn(); got != 64 {
		t.Errorf("sum.FanIn() = %d, want 64", got)
	}
	if got := sum.FanOut(); got != 8+32 {
		t.Errorf("sum.FanOut() = %d, want 40", got)
	}
	if sum.NumUsers() != 2 {
		t.Errorf("sum.NumUsers() = %d, want 2", sum.NumUsers())
	}
	_ = tap
	_ = full
}

func TestOpString(t *testing.T) {
	m := NewModule("m")
	f := m.NewFunction("f")
	b := NewBuilder(f).At("x.cpp", 3)
	o := b.Op(KindAdd, 16, b.Const(16), b.Const(16))
	s := o.String()
	for _, want := range []string{"add", "i16", "x.cpp:3"} {
		if !strings.Contains(s, want) {
			t.Errorf("Op.String() = %q missing %q", s, want)
		}
	}
}

func TestModuleQueries(t *testing.T) {
	m := NewModule("m")
	f := m.NewFunction("top")
	g := m.NewFunction("leaf")
	bf := NewBuilder(f)
	bg := NewBuilder(g)
	p := bg.Port("in", 8)
	bg.Ret(bg.Op(KindNot, 8, p))
	a := bf.Port("x", 8)
	bf.Ret(a)

	if m.NumOps() != 5 {
		t.Fatalf("NumOps = %d, want 5", m.NumOps())
	}
	ops := m.AllOps()
	if len(ops) != 5 {
		t.Fatalf("AllOps len = %d", len(ops))
	}
	for i := 1; i < len(ops); i++ {
		if ops[i-1].ID >= ops[i].ID {
			t.Fatal("AllOps not sorted by ID")
		}
	}
	if m.OpByID(p.ID) != p {
		t.Error("OpByID failed")
	}
	if m.OpByID(99999) != nil {
		t.Error("OpByID(bogus) != nil")
	}
	if m.FuncByName("leaf") != g || m.FuncByName("nope") != nil {
		t.Error("FuncByName failed")
	}
	live := m.LiveFuncs()
	if len(live) != 2 || live[0] != f {
		t.Fatalf("LiveFuncs = %v (top must come first)", live)
	}
	g.Inlined = true
	if len(m.LiveFuncs()) != 1 || m.NumOps() != 2 {
		t.Error("inlined function still counted")
	}
}

func TestArrayHelpers(t *testing.T) {
	a := &Array{Name: "a", Words: 100, Bits: 16, Banks: 8}
	if a.Primitives() != 100*16*8 {
		t.Errorf("Primitives = %d", a.Primitives())
	}
	if a.WordsPerBank() != 13 {
		t.Errorf("WordsPerBank = %d, want ceil(100/8)=13", a.WordsPerBank())
	}
	b := &Array{Words: 64, Bits: 8, Banks: 0}
	if b.WordsPerBank() != 64 {
		t.Errorf("WordsPerBank with 0 banks = %d", b.WordsPerBank())
	}
}

func TestLoopHelpers(t *testing.T) {
	outer := &Loop{TripCount: 100, Unroll: 8}
	if outer.EffectiveTrips() != 13 {
		t.Errorf("EffectiveTrips = %d, want 13", outer.EffectiveTrips())
	}
	inner := &Loop{TripCount: 10, Unroll: 1, Parent: outer}
	if inner.Depth() != 2 || outer.Depth() != 1 {
		t.Error("Depth wrong")
	}
	z := &Loop{TripCount: 1, Unroll: 5}
	if z.EffectiveTrips() != 1 {
		t.Errorf("EffectiveTrips unroll>trips = %d", z.EffectiveTrips())
	}
}

func TestPortOps(t *testing.T) {
	m := NewModule("m")
	f := m.NewFunction("f")
	b := NewBuilder(f)
	p1 := b.Port("a", 8)
	b.Const(8)
	p2 := b.Port("b", 8)
	ports := f.PortOps()
	if len(ports) != 2 || ports[0] != p1 || ports[1] != p2 {
		t.Fatalf("PortOps = %v", ports)
	}
}
