// Package ir defines the high-level synthesis intermediate representation
// used throughout this repository. It mirrors the post-front-end IR that an
// HLS tool (e.g. Vivado HLS) produces from C/C++: a dataflow graph of typed,
// bit-accurate operations grouped into functions, with loops, arrays and
// synthesis directives (unrolling, pipelining, inlining, array partitioning)
// represented explicitly.
//
// The congestion predictor in internal/core consumes this IR; the benchmark
// generators in internal/bench construct it. Source locations attached to
// operations allow congestion reports to point back at the "source code"
// (the generator's synthetic program listing).
package ir

import (
	"fmt"
	"sort"
)

// OpKind enumerates the operation kinds the characterized operator library
// knows about. The set mirrors the LLVM-style IR vocabulary a typical HLS
// front end emits after bitwidth reduction.
type OpKind int

// Operation kinds. Keep KindCount in sync: the feature extractor emits one
// one-hot slot and one neighbor-count slot per kind.
const (
	KindInvalid OpKind = iota
	KindAdd
	KindSub
	KindMul
	KindDiv
	KindRem
	KindAnd
	KindOr
	KindXor
	KindNot
	KindShl
	KindLShr
	KindAShr
	KindICmp
	KindFAdd
	KindFSub
	KindFMul
	KindFDiv
	KindFCmp
	KindSqrt
	KindSelect
	KindPhi
	KindLoad
	KindStore
	KindTrunc
	KindZExt
	KindSExt
	KindConcat
	KindBitSel
	KindConst
	KindCall
	KindRet
	KindPort

	kindSentinel
)

// KindCount is the number of valid operation kinds (excluding KindInvalid).
const KindCount = int(kindSentinel) - 1

var kindNames = [...]string{
	KindInvalid: "invalid",
	KindAdd:     "add",
	KindSub:     "sub",
	KindMul:     "mul",
	KindDiv:     "div",
	KindRem:     "rem",
	KindAnd:     "and",
	KindOr:      "or",
	KindXor:     "xor",
	KindNot:     "not",
	KindShl:     "shl",
	KindLShr:    "lshr",
	KindAShr:    "ashr",
	KindICmp:    "icmp",
	KindFAdd:    "fadd",
	KindFSub:    "fsub",
	KindFMul:    "fmul",
	KindFDiv:    "fdiv",
	KindFCmp:    "fcmp",
	KindSqrt:    "sqrt",
	KindSelect:  "select",
	KindPhi:     "phi",
	KindLoad:    "load",
	KindStore:   "store",
	KindTrunc:   "trunc",
	KindZExt:    "zext",
	KindSExt:    "sext",
	KindConcat:  "concat",
	KindBitSel:  "bitsel",
	KindConst:   "const",
	KindCall:    "call",
	KindRet:     "ret",
	KindPort:    "port",
}

func (k OpKind) String() string {
	if k <= KindInvalid || k >= kindSentinel {
		return "invalid"
	}
	return kindNames[k]
}

// Valid reports whether k names a real operation kind.
func (k OpKind) Valid() bool { return k > KindInvalid && k < kindSentinel }

// Index returns a dense 0-based index for valid kinds, used by the feature
// extractor for one-hot encoding. It panics on invalid kinds.
func (k OpKind) Index() int {
	if !k.Valid() {
		panic(fmt.Sprintf("ir: OpKind(%d).Index on invalid kind", int(k)))
	}
	return int(k) - 1
}

// KindFromIndex is the inverse of OpKind.Index.
func KindFromIndex(i int) OpKind {
	if i < 0 || i >= KindCount {
		panic(fmt.Sprintf("ir: KindFromIndex(%d) out of range", i))
	}
	return OpKind(i + 1)
}

// AllKinds returns every valid operation kind in declaration order.
func AllKinds() []OpKind {
	ks := make([]OpKind, 0, KindCount)
	for k := KindAdd; k < kindSentinel; k++ {
		ks = append(ks, k)
	}
	return ks
}

// IsFloat reports whether the kind is a floating-point arithmetic operation.
func (k OpKind) IsFloat() bool {
	switch k {
	case KindFAdd, KindFSub, KindFMul, KindFDiv, KindFCmp, KindSqrt:
		return true
	}
	return false
}

// IsMemory reports whether the kind accesses an array.
func (k OpKind) IsMemory() bool { return k == KindLoad || k == KindStore }

// SourceLoc identifies a position in the (synthetic) high-level source.
type SourceLoc struct {
	File string
	Line int
}

func (s SourceLoc) String() string {
	if s.File == "" {
		return "<unknown>"
	}
	return fmt.Sprintf("%s:%d", s.File, s.Line)
}

// IsZero reports whether the location is unset.
func (s SourceLoc) IsZero() bool { return s.File == "" && s.Line == 0 }

// Operand is a data edge from a defining operation into a consumer. Bits is
// the number of wires the consumer actually taps from the producer's result
// bus; the paper stores this as the dependency-graph edge weight (a consumer
// that takes eight of a 32-bit result contributes weight eight).
type Operand struct {
	Def  *Op
	Bits int
}

// Op is a single IR operation: one node of the per-function dataflow graph.
type Op struct {
	ID       int       // unique within the Module
	Kind     OpKind    //
	Name     string    //
	Bitwidth int       // result width in bits
	Operands []Operand // dataflow inputs

	Func  *Function // owning function
	Loop  *Loop     // innermost enclosing loop, nil at function top level
	Src   SourceLoc // originating source statement
	Array *Array    // referenced array for Load/Store, else nil

	// ReplicaOf is the ID of the operation this one was copied from during
	// loop unrolling, or -1 when the op is an original. ReplicaIdx is the
	// copy number (0 = original position).
	ReplicaOf  int
	ReplicaIdx int

	users []*Op // reverse edges, maintained by the builder
}

// Users returns the operations that consume this op's result, one entry
// per operand edge (an operation using the value twice appears twice). The
// returned slice is owned by the IR; callers must not mutate it.
func (o *Op) Users() []*Op { return o.users }

// NumUsers returns the number of consuming operations.
func (o *Op) NumUsers() int { return len(o.users) }

// IsReplica reports whether the op was produced by loop unrolling.
func (o *Op) IsReplica() bool { return o.ReplicaOf >= 0 }

// FanIn returns the total number of input wires (sum of operand edge
// weights), the paper's fan-in measure.
func (o *Op) FanIn() int {
	n := 0
	for _, e := range o.Operands {
		n += e.Bits
	}
	return n
}

// FanOut returns the total number of output wires consumed by users: for
// each distinct user, the bits that user taps from this op across all of
// its operand edges.
func (o *Op) FanOut() int {
	n := 0
	var seen []*Op
	for _, u := range o.users {
		dup := false
		for _, s := range seen {
			if s == u {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		seen = append(seen, u)
		for _, e := range u.Operands {
			if e.Def == o {
				n += e.Bits
			}
		}
	}
	return n
}

func (o *Op) String() string {
	return fmt.Sprintf("%%%d = %s i%d (%s)", o.ID, o.Kind, o.Bitwidth, o.Src)
}

// Array models an on-chip memory (BRAM or register bank) declared in a
// function. Partitioning into banks follows the ARRAY_PARTITION directive.
type Array struct {
	Name  string
	Words int // depth
	Bits  int // element width
	Banks int // partition factor; 1 = monolithic, Words = complete

	Func *Function
}

// Primitives returns the paper's memory-primitive figure words*bits*banks.
func (a *Array) Primitives() int { return a.Words * a.Bits * a.Banks }

// WordsPerBank returns the depth of each bank after partitioning.
func (a *Array) WordsPerBank() int {
	if a.Banks <= 0 {
		return a.Words
	}
	n := a.Words / a.Banks
	if a.Words%a.Banks != 0 {
		n++
	}
	return n
}

// Loop models a counted loop with its HLS directives.
type Loop struct {
	ID        int
	Name      string
	TripCount int
	Unroll    int  // unroll factor actually applied (1 = none)
	Pipelined bool //
	II        int  // initiation interval when pipelined

	Func   *Function
	Parent *Loop
	Kids   []*Loop
}

// Depth returns the loop nesting depth (outermost loop = 1).
func (l *Loop) Depth() int {
	d := 0
	for p := l; p != nil; p = p.Parent {
		d++
	}
	return d
}

// EffectiveTrips returns the number of sequential iterations after
// unrolling: ceil(TripCount / Unroll).
func (l *Loop) EffectiveTrips() int {
	u := l.Unroll
	if u < 1 {
		u = 1
	}
	t := l.TripCount / u
	if l.TripCount%u != 0 {
		t++
	}
	if t < 1 {
		t = 1
	}
	return t
}

// Function is one HLS function: a flat dataflow graph plus declared arrays
// and loops. Call ops reference callee functions; when a function is inlined
// its ops are cloned into the caller and the Function is dropped from the
// module's live set.
type Function struct {
	Name   string
	Module *Module
	Ops    []*Op
	Arrays []*Array
	Loops  []*Loop

	Inlined bool // true if this function body has been inlined away
	IsTop   bool

	// Callers/Callees track the static call graph.
	Callees []*Function
}

// NumOps returns the operation count of the function body.
func (f *Function) NumOps() int { return len(f.Ops) }

// PortOps returns the function's I/O port operations in ID order.
func (f *Function) PortOps() []*Op {
	var ps []*Op
	for _, o := range f.Ops {
		if o.Kind == KindPort {
			ps = append(ps, o)
		}
	}
	return ps
}

// Module is a whole design: a set of functions with a designated top.
type Module struct {
	Name  string
	Funcs []*Function
	Top   *Function

	nextOpID   int
	nextLoopID int
}

// NewModule creates an empty design.
func NewModule(name string) *Module {
	return &Module{Name: name}
}

// NewFunction adds a function to the module. The first function added
// becomes the top unless SetTop overrides it.
func (m *Module) NewFunction(name string) *Function {
	f := &Function{Name: name, Module: m}
	if len(m.Funcs) == 0 {
		f.IsTop = true
		m.Top = f
	}
	m.Funcs = append(m.Funcs, f)
	return f
}

// SetTop designates f as the module's top-level function.
func (m *Module) SetTop(f *Function) {
	if m.Top != nil {
		m.Top.IsTop = false
	}
	m.Top = f
	f.IsTop = true
}

// LiveFuncs returns the functions that still own operations (i.e. have not
// been inlined away), top first, the rest sorted by name.
func (m *Module) LiveFuncs() []*Function {
	var fs []*Function
	for _, f := range m.Funcs {
		if !f.Inlined {
			fs = append(fs, f)
		}
	}
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].IsTop != fs[j].IsTop {
			return fs[i].IsTop
		}
		return fs[i].Name < fs[j].Name
	})
	return fs
}

// FuncByName returns the named function, or nil.
func (m *Module) FuncByName(name string) *Function {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// AllOps returns every operation in every live function, in ID order.
func (m *Module) AllOps() []*Op {
	var ops []*Op
	for _, f := range m.Funcs {
		if f.Inlined {
			continue
		}
		ops = append(ops, f.Ops...)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].ID < ops[j].ID })
	return ops
}

// NumOps returns the total live operation count.
func (m *Module) NumOps() int {
	n := 0
	for _, f := range m.Funcs {
		if !f.Inlined {
			n += len(f.Ops)
		}
	}
	return n
}

// OpByID returns the operation with the given ID, or nil.
func (m *Module) OpByID(id int) *Op {
	for _, f := range m.Funcs {
		for _, o := range f.Ops {
			if o.ID == id {
				return o
			}
		}
	}
	return nil
}
