package ir

import (
	"strings"
	"testing"
)

func validModule(t *testing.T) (*Module, *Function, *Builder) {
	t.Helper()
	m := NewModule("m")
	f := m.NewFunction("f")
	b := NewBuilder(f)
	p := b.Port("p", 8)
	b.Ret(b.Op(KindNot, 8, p))
	if err := Validate(m); err != nil {
		t.Fatalf("baseline module invalid: %v", err)
	}
	return m, f, b
}

func TestValidateDetectsNoTop(t *testing.T) {
	m := &Module{Name: "empty"}
	if err := Validate(m); err == nil || !strings.Contains(err.Error(), "no top") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateDetectsInlinedTop(t *testing.T) {
	m, f, _ := validModule(t)
	f.Inlined = true
	if err := Validate(m); err == nil || !strings.Contains(err.Error(), "inlined") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateDetectsDuplicateIDs(t *testing.T) {
	m, f, _ := validModule(t)
	f.Ops[1].ID = f.Ops[0].ID
	if err := Validate(m); err == nil || !strings.Contains(err.Error(), "duplicate op ID") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateDetectsCrossFunctionEdge(t *testing.T) {
	m, _, _ := validModule(t)
	g := m.NewFunction("g")
	gb := NewBuilder(g)
	gp := gb.Port("gp", 8)
	// Forge an edge from f's op into g.
	fOp := m.Top.Ops[0]
	bad := gb.Op(KindNot, 8, gp)
	bad.Operands = append(bad.Operands, Operand{Def: fOp, Bits: 8})
	if err := Validate(m); err == nil || !strings.Contains(err.Error(), "across function boundary") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateDetectsBadEdgeWeight(t *testing.T) {
	m, f, _ := validModule(t)
	ret := f.Ops[len(f.Ops)-1]
	ret.Operands[0].Bits = 100 // wider than the producer
	if err := Validate(m); err == nil || !strings.Contains(err.Error(), "weight") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateDetectsMissingUserEntry(t *testing.T) {
	m, f, _ := validModule(t)
	p := f.Ops[0]
	p.users = nil // corrupt the reverse edges
	if err := Validate(m); err == nil || !strings.Contains(err.Error(), "missing from user list") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateDetectsStaleUser(t *testing.T) {
	m, f, b := validModule(t)
	stranger := b.Const(8)
	f.Ops[0].users = append(f.Ops[0].users, stranger)
	if err := Validate(m); err == nil || !strings.Contains(err.Error(), "stale user") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateDetectsMemoryOpWithoutArray(t *testing.T) {
	m, _, b := validModule(t)
	a := b.Array("mem", 8, 8, 1)
	ld := b.Load(a, nil)
	ld.Array = nil
	if err := Validate(m); err == nil || !strings.Contains(err.Error(), "no array") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateDetectsBadBitwidth(t *testing.T) {
	m, f, _ := validModule(t)
	f.Ops[0].Bitwidth = 0
	if err := Validate(m); err == nil || !strings.Contains(err.Error(), "bitwidth") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateDetectsBadLoop(t *testing.T) {
	m, f, b := validModule(t)
	l := b.EnterLoop("l", 0)
	b.ExitLoop()
	_ = l
	if err := Validate(m); err == nil || !strings.Contains(err.Error(), "trip count") {
		t.Fatalf("err = %v", err)
	}
	_ = f
}
