package ir

import (
	"bytes"
	"strings"
	"testing"
)

// textRoundTripModule builds a module exercising every serialized feature:
// ports with names, arrays, nested loops with directives, partial-bus taps,
// replica marks and source locations.
func textRoundTripModule() *Module {
	m := NewModule("rt")
	leaf := m.NewFunction("leaf")
	lb := NewBuilder(leaf).At("leaf.cpp", 2)
	lp := lb.Port("x", 32)
	lv := lb.OpBits(KindBitSel, 8, lp, 8)
	lb.Ret(lb.Op(KindNot, 8, lv))

	top := m.NewFunction("top")
	m.SetTop(top)
	b := NewBuilder(top).At("top.cpp", 5)
	p := b.Port("in", 32)
	a := b.Array("buf", 32, 16, 4)
	b.EnterLoop("outer", 100)
	var vals []*Op
	b.UnrolledLoop("inner", 64, 2, func(copy int) {
		v := b.Load(a, nil)
		vals = append(vals, b.Op(KindAdd, 16, v, b.OpBits(KindTrunc, 16, p, 16)))
	})
	b.ExitLoop()
	b.PipelinedLoop("pipe", 16, 2, func() {
		b.Store(a, vals[0], nil)
	})
	call := b.Call(leaf, p)
	sum := b.ReduceTree(KindAdd, 16, vals)
	b.Ret(b.Op(KindXor, 16, sum, b.OpBits(KindTrunc, 16, call, 16)))
	return m
}

func TestTextRoundTrip(t *testing.T) {
	m := textRoundTripModule()
	var buf bytes.Buffer
	if err := WriteText(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ParseText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("parse: %v\ninput:\n%s", err, buf.String())
	}
	if back.Name != m.Name {
		t.Errorf("module name %q", back.Name)
	}
	if back.NumOps() != m.NumOps() {
		t.Fatalf("ops %d != %d", back.NumOps(), m.NumOps())
	}
	if back.Top == nil || back.Top.Name != "top" {
		t.Fatal("top function lost")
	}
	for _, o := range m.AllOps() {
		bo := back.OpByID(o.ID)
		if bo == nil {
			t.Fatalf("op %%%d missing after round trip", o.ID)
		}
		if bo.Kind != o.Kind || bo.Bitwidth != o.Bitwidth {
			t.Fatalf("op %%%d signature changed: %v/%d vs %v/%d",
				o.ID, bo.Kind, bo.Bitwidth, o.Kind, o.Bitwidth)
		}
		if bo.Src != o.Src {
			t.Errorf("op %%%d src %v != %v", o.ID, bo.Src, o.Src)
		}
		if bo.FanIn() != o.FanIn() || bo.NumUsers() != o.NumUsers() {
			t.Errorf("op %%%d connectivity changed", o.ID)
		}
		if (bo.Loop == nil) != (o.Loop == nil) {
			t.Errorf("op %%%d loop membership changed", o.ID)
		}
		if bo.ReplicaOf != o.ReplicaOf || bo.ReplicaIdx != o.ReplicaIdx {
			t.Errorf("op %%%d replica mark changed", o.ID)
		}
		if bo.Name != o.Name {
			t.Errorf("op %%%d name %q != %q", o.ID, bo.Name, o.Name)
		}
	}
	// Call-graph edges survive: rtl elaboration resolves callees through
	// them, so losing an edge silently changes the netlist.
	if len(back.Top.Callees) != 1 || back.Top.Callees[0].Name != "leaf" {
		t.Errorf("call-graph edge lost: %v", back.Top.Callees)
	}
	// A second round trip is bit-identical (canonical form).
	var buf2 bytes.Buffer
	if err := WriteText(&buf2, back); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("text form not canonical across round trips")
	}
	// Loops survive with directives.
	var pipe *Loop
	for _, l := range back.Top.Loops {
		if l.Name == "pipe" {
			pipe = l
		}
	}
	if pipe == nil || !pipe.Pipelined || pipe.II != 2 || pipe.TripCount != 16 {
		t.Errorf("pipelined loop lost: %+v", pipe)
	}
}

func TestParseTextErrors(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"op before func":  "module m\n  %0 = add i8\n",
		"unknown kind":    "module m\nfunc f top\n  %0 = zorp i8\n",
		"forward operand": "module m\nfunc f top\n  %0 = add i8 %1\n",
		"unknown array":   "module m\nfunc f top\n  %0 = load i8 mem=nope\n",
		"bad width":       "module m\nfunc f top\n  %0 = add ix\n",
		"bad directive":   "module m\nfunc f top\n  garbage here\n",
		"unknown callee":  "module m\nfunc f top calls=ghost\n  %0 = add i8\n",
		"bad func attr":   "module m\nfunc f top zorp\n  %0 = add i8\n",
	}
	for name, input := range cases {
		if _, err := ParseText(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestTextBenchmarkDesignRoundTrips(t *testing.T) {
	// The serializer must handle a real benchmark-sized design.
	m := textRoundTripModule()
	for i := 0; i < 3; i++ {
		var buf bytes.Buffer
		if err := WriteText(&buf, m); err != nil {
			t.Fatal(err)
		}
		back, err := ParseText(&buf)
		if err != nil {
			t.Fatal(err)
		}
		m = back
	}
	if err := Validate(m); err != nil {
		t.Fatal(err)
	}
}
