package ir

import "sort"

// Optimization passes a front end would run before handing the IR to the
// middle end. The benchmark generators emit clean graphs, but
// user-constructed designs routinely contain dead values and duplicated
// subexpressions; these passes keep the scheduler and feature extractor
// from characterizing hardware that synthesis would never instantiate.

// opsWithSideEffects reports whether an op must be preserved even without
// users: memory writes, returns, calls (callee effects) and ports
// (interface contract).
func opsWithSideEffects(o *Op) bool {
	switch o.Kind {
	case KindStore, KindRet, KindCall, KindPort:
		return true
	}
	return false
}

// EliminateDeadOps removes operations whose results are never used and
// that have no side effects, iterating until a fixed point (removing one
// dead op can orphan its operands). It returns the number of operations
// removed.
func EliminateDeadOps(m *Module) int {
	removed := 0
	for {
		var dead []*Op
		for _, f := range m.Funcs {
			if f.Inlined {
				continue
			}
			for _, o := range f.Ops {
				if o.NumUsers() == 0 && !opsWithSideEffects(o) {
					dead = append(dead, o)
				}
			}
		}
		if len(dead) == 0 {
			return removed
		}
		for _, o := range dead {
			for _, e := range o.Operands {
				removeUser(e.Def, o)
			}
			o.Operands = nil
			removeOp(o.Func, o)
			removed++
		}
	}
}

// cseKey identifies structurally identical pure operations: same kind,
// width, and operand identity (defs and tap widths, order-sensitive).
type cseKey struct {
	kind     OpKind
	bitwidth int
	loop     *Loop
	a, b     *Op
	aBits    int
	bBits    int
	extra    int // number of operands beyond two (not folded)
}

// MergeCommonSubexpressions folds duplicate pure operations with identical
// operands inside the same function and loop scope, rewiring users to the
// first occurrence. Memory operations, calls, ports, constants and
// operations with more than two operands are left alone (constants carry
// distinct values the IR does not model; >2-operand ops are rare and not
// worth the key complexity). Returns the number of operations folded.
//
// Loop scope matters: ops in different unrolled copies are NOT merged even
// when structurally identical, because replicas are real parallel hardware.
func MergeCommonSubexpressions(m *Module) int {
	folded := 0
	for _, f := range m.Funcs {
		if f.Inlined {
			continue
		}
		seen := make(map[cseKey]*Op)
		// Walk in creation order so the survivor dominates its users.
		ops := append([]*Op(nil), f.Ops...)
		sort.Slice(ops, func(i, j int) bool { return ops[i].ID < ops[j].ID })
		for _, o := range ops {
			if opsWithSideEffects(o) || o.Kind.IsMemory() || o.Kind == KindConst ||
				o.Kind == KindPhi || len(o.Operands) == 0 || len(o.Operands) > 2 {
				continue
			}
			if o.IsReplica() {
				continue
			}
			k := cseKey{kind: o.Kind, bitwidth: o.Bitwidth, loop: o.Loop}
			k.a = o.Operands[0].Def
			k.aBits = o.Operands[0].Bits
			if len(o.Operands) == 2 {
				k.b = o.Operands[1].Def
				k.bBits = o.Operands[1].Bits
			}
			first, ok := seen[k]
			if !ok {
				seen[k] = o
				continue
			}
			// Rewire o's users onto first, then delete o.
			for _, u := range append([]*Op(nil), o.users...) {
				for i := range u.Operands {
					if u.Operands[i].Def == o {
						u.Operands[i].Def = first
						first.users = append(first.users, u)
					}
				}
				removeUser(o, u)
			}
			for _, e := range o.Operands {
				removeUser(e.Def, o)
			}
			o.Operands = nil
			removeOp(f, o)
			folded++
		}
	}
	return folded
}

// Optimize runs the standard pass pipeline (CSE, then DCE to collect the
// operands CSE orphaned) and returns (folded, removed).
func Optimize(m *Module) (folded, removed int) {
	folded = MergeCommonSubexpressions(m)
	removed = EliminateDeadOps(m)
	return folded, removed
}
