package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"time"
)

// WriteChromeTrace serializes spans in Chrome trace_event JSON — the
// format chrome://tracing and Perfetto load directly. Each span becomes a
// complete ("X") event and each span event an instant ("i") event; spans
// are grouped into tracks (tid) by their root span, so a parallel dataset
// build renders one timeline row per concurrent flow run.
//
// The output is deterministic for a given span set: events are ordered by
// start time (span ID tie-break), every object's fields are written in a
// fixed order by hand, and no wall-clock reading happens here — all
// timestamps come from the tracer's epoch-relative offsets, so a fixed
// test clock yields a byte-stable file (the golden-file test pins this).
//
// Spans tagged with a Proc (imported from another process, see
// Tracer.Import) render under their own pid with a process_name metadata
// record, so a stitched fleet trace shows one lane per worker. Purely
// local span sets produce exactly the pre-stitching output: pid 1
// throughout and no metadata events.
func WriteChromeTrace(w io.Writer, spans []SpanData) error {
	ordered := make([]SpanData, len(spans))
	copy(ordered, spans)
	sort.SliceStable(ordered, func(i, j int) bool {
		if ordered[i].Start != ordered[j].Start {
			return ordered[i].Start < ordered[j].Start
		}
		return ordered[i].ID < ordered[j].ID
	})

	// Tracks: one tid per root span, numbered in first-appearance order of
	// the sorted events.
	tid := make(map[int64]int)
	for _, s := range ordered {
		if _, ok := tid[s.RootID]; !ok {
			tid[s.RootID] = len(tid) + 1
		}
	}

	// Lanes: the local process is pid 1; each distinct imported Proc gets
	// the next pid in first-appearance order of the sorted events.
	pid := map[string]int{"": 1}
	var procs []string
	for _, s := range ordered {
		if _, ok := pid[s.Proc]; !ok {
			pid[s.Proc] = len(pid) + 1
			procs = append(procs, s.Proc)
		}
	}

	bw := bufio.NewWriter(w)
	bw.WriteString(`{"traceEvents":[`)
	first := true
	for _, p := range procs {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(`{"name":"process_name","ph":"M","pid":`)
		bw.WriteString(strconv.Itoa(pid[p]))
		bw.WriteString(`,"args":{"name":`)
		bw.Write(jsonString(p))
		bw.WriteString(`}}`)
	}
	for _, s := range ordered {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		writeCompleteEvent(bw, s, pid[s.Proc], tid[s.RootID])
		for _, e := range s.Events {
			bw.WriteString(",\n")
			writeInstantEvent(bw, e, pid[s.Proc], tid[s.RootID])
		}
	}
	bw.WriteString("\n],\"displayTimeUnit\":\"ms\"}\n")
	return bw.Flush()
}

// WriteChromeTrace exports the tracer's finished spans; see the package
// function. Nil-safe: a nil tracer writes an empty (but valid) trace.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTrace(w, t.Spans())
}

func writeCompleteEvent(bw *bufio.Writer, s SpanData, pid, tid int) {
	bw.WriteString(`{"name":`)
	bw.Write(jsonString(s.Name))
	fmt.Fprintf(bw, `,"ph":"X","ts":%d,"dur":%d,"pid":%d,"tid":%d`,
		micros(s.Start), micros(s.End-s.Start), pid, tid)
	writeArgs(bw, s.Attrs)
	bw.WriteByte('}')
}

func writeInstantEvent(bw *bufio.Writer, e EventData, pid, tid int) {
	bw.WriteString(`{"name":`)
	bw.Write(jsonString(e.Name))
	fmt.Fprintf(bw, `,"ph":"i","ts":%d,"pid":%d,"tid":%d,"s":"t"`, micros(e.At), pid, tid)
	writeArgs(bw, e.Attrs)
	bw.WriteByte('}')
}

// writeArgs renders attributes as the event's "args" object, preserving
// attribute order (already deterministic at the instrumentation site).
func writeArgs(bw *bufio.Writer, attrs []Attr) {
	if len(attrs) == 0 {
		return
	}
	bw.WriteString(`,"args":{`)
	for i, a := range attrs {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.Write(jsonString(a.Key))
		bw.WriteByte(':')
		bw.Write(jsonValue(a.Value))
	}
	bw.WriteByte('}')
}

// micros converts an epoch offset to trace_event's microsecond unit.
func micros(d time.Duration) int64 { return int64(d / time.Microsecond) }

// jsonString marshals s as a JSON string (encoding/json's escaping rules,
// which are valid JSON for every input — strconv.Quote's are not).
func jsonString(s string) []byte {
	b, err := json.Marshal(s)
	if err != nil { // cannot happen for a string
		return []byte(`""`)
	}
	return b
}

// jsonValue renders one attribute value. Unsupported types and non-finite
// floats degrade to their string form rather than corrupting the file.
func jsonValue(v any) []byte {
	switch x := v.(type) {
	case string:
		return jsonString(x)
	case bool:
		if x {
			return []byte("true")
		}
		return []byte("false")
	case int64:
		return strconv.AppendInt(nil, x, 10)
	case int:
		return strconv.AppendInt(nil, int64(x), 10)
	case float64:
		if math.IsInf(x, 0) || math.IsNaN(x) {
			return jsonString(strconv.FormatFloat(x, 'g', -1, 64))
		}
		return strconv.AppendFloat(nil, x, 'g', -1, 64)
	default:
		return jsonString(fmt.Sprint(x))
	}
}

// MarshalJSON serializes the bucket, rendering the overflow bucket's +Inf
// bound as the string "+Inf" (bare Inf is not valid JSON).
func (b BucketSnap) MarshalJSON() ([]byte, error) {
	if math.IsInf(b.UpperBound, 1) {
		return []byte(fmt.Sprintf(`{"le":"+Inf","count":%d}`, b.Count)), nil
	}
	return []byte(fmt.Sprintf(`{"le":%s,"count":%d}`,
		strconv.FormatFloat(b.UpperBound, 'g', -1, 64), b.Count)), nil
}

// UnmarshalJSON accepts both the numeric and the "+Inf" bound forms.
func (b *BucketSnap) UnmarshalJSON(data []byte) error {
	var raw struct {
		LE    any   `json:"le"`
		Count int64 `json:"count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	b.Count = raw.Count
	switch v := raw.LE.(type) {
	case float64:
		b.UpperBound = v
	case string:
		b.UpperBound = math.Inf(1)
	}
	return nil
}

// WriteMetricsJSON serializes a metrics snapshot as indented JSON. The
// snapshot's sections are name-sorted and struct field order is fixed, so
// the bytes are deterministic for a given set of metric values.
func WriteMetricsJSON(w io.Writer, snap Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// WriteMetricsJSON exports the observer's registry snapshot. Nil-safe: a
// disabled observer writes an empty snapshot.
func (o *Observer) WriteMetricsJSON(w io.Writer) error {
	return WriteMetricsJSON(w, o.Metrics().Snapshot())
}
