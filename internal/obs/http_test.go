package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestDebugHandler(t *testing.T) {
	o := New()
	o.Count(MetricFlowRuns, 3)
	o.SetGauge(MetricGridCandidatesPerSec, 2.5)
	sp := o.Start("flow", String("design", "d"))
	sp.Child("place").End()
	sp.End()

	srv := httptest.NewServer(o.Handler())
	defer srv.Close()

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d: %s", path, resp.StatusCode, body)
		}
		return body
	}

	var snap Snapshot
	if err := json.Unmarshal(get("/debug/metrics"), &snap); err != nil {
		t.Fatalf("/debug/metrics not a snapshot: %v", err)
	}
	if v, _ := snap.Counter(MetricFlowRuns); v != 3 {
		t.Errorf("metrics endpoint counter=%d, want 3", v)
	}

	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(get("/debug/trace"), &trace); err != nil {
		t.Fatalf("/debug/trace not a trace: %v", err)
	}
	if len(trace.TraceEvents) != 2 {
		t.Errorf("trace endpoint has %d events, want 2", len(trace.TraceEvents))
	}

	vars := string(get("/debug/vars"))
	if !strings.Contains(vars, MetricFlowRuns) {
		t.Errorf("/debug/vars missing %s:\n%s", MetricFlowRuns, vars)
	}

	if resp, err := http.Get(srv.URL + "/nope"); err == nil {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown path returned %d", resp.StatusCode)
		}
	}
}
