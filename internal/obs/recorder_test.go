package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"time"
)

// testClock is a hand-advanced clock for deterministic windows.
type testClock struct{ t time.Time }

func newTestClock() *testClock {
	return &testClock{t: time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)}
}
func (c *testClock) now() time.Time          { return c.t }
func (c *testClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func sampleCounter(t *testing.T, s RecorderSample, name string) CounterRate {
	t.Helper()
	for _, c := range s.Counters {
		if c.Name == name {
			return c
		}
	}
	t.Fatalf("counter %q not in sample", name)
	return CounterRate{}
}

func sampleHist(t *testing.T, s RecorderSample, name string) HistWindow {
	t.Helper()
	for _, h := range s.Hists {
		if h.Name == name {
			return h
		}
	}
	t.Fatalf("hist %q not in sample", name)
	return HistWindow{}
}

// First sample: totals are present but deltas, rates and windows must all
// be zero — there is no previous sample to rate against.
func TestRecorderFirstSampleRates(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c").Add(100)
	reg.Histogram("h", []float64{1, 10, 100}).Observe(5)
	clk := newTestClock()
	rec := NewRecorder(reg, RecorderOptions{Now: clk.now})

	s := rec.Sample()
	if s.WindowMs != 0 {
		t.Errorf("first sample window = %dms, want 0", s.WindowMs)
	}
	c := sampleCounter(t, s, "c")
	if c.Total != 100 || c.Delta != 0 || c.PerSec != 0 {
		t.Errorf("first sample counter = %+v, want total 100, delta 0, rate 0", c)
	}
	h := sampleHist(t, s, "h")
	if h.Total != 1 || h.Count != 0 || h.P99 != 0 {
		t.Errorf("first sample hist = %+v, want total 1 and zero window", h)
	}
}

// Steady increments produce the right deltas and per-second rates.
func TestRecorderRates(t *testing.T) {
	reg := NewRegistry()
	clk := newTestClock()
	rec := NewRecorder(reg, RecorderOptions{Now: clk.now})
	reg.Counter("c").Add(10)
	rec.Sample()

	reg.Counter("c").Add(30)
	clk.advance(2 * time.Second)
	s := rec.Sample()
	c := sampleCounter(t, s, "c")
	if c.Total != 40 || c.Delta != 30 || c.PerSec != 15 {
		t.Errorf("counter = %+v, want total 40, delta 30, 15/s", c)
	}
}

// A counter that shrinks between samples (process restart or reload behind
// the same endpoint) is a reset: the delta is the new total, never
// negative.
func TestRecorderCounterReset(t *testing.T) {
	reg := NewRegistry()
	clk := newTestClock()
	rec := NewRecorder(reg, RecorderOptions{Now: clk.now})
	reg.Counter("c").Add(100)
	rec.Sample()

	// Simulate the reset by recording a fresh registry under the recorder's
	// nose: swap is not possible, so drive counterDelta directly too.
	if d := counterDelta(100, 7); d != 7 {
		t.Errorf("counterDelta(100, 7) = %d, want 7 (reset rule)", d)
	}
	if d := counterDelta(5, 5); d != 0 {
		t.Errorf("counterDelta(5, 5) = %d, want 0", d)
	}

	// Histogram reset: a smaller current count re-bases on the current
	// totals.
	prev := &HistogramSnap{Name: "h", Count: 50, Sum: 500,
		Buckets: []BucketSnap{{UpperBound: 1, Count: 50}, {UpperBound: math.Inf(1), Count: 0}}}
	cur := &HistogramSnap{Name: "h", Count: 3, Sum: 2.4,
		Buckets: []BucketSnap{{UpperBound: 1, Count: 3}, {UpperBound: math.Inf(1), Count: 0}}}
	hw := HistogramWindow(prev, cur)
	if hw.Count != 3 || hw.Sum != 2.4 {
		t.Errorf("reset window = %+v, want the current totals (count 3, sum 2.4)", hw)
	}
}

// An idle histogram yields an empty window: zero count, no quantiles, no
// buckets.
func TestRecorderEmptyWindow(t *testing.T) {
	reg := NewRegistry()
	clk := newTestClock()
	rec := NewRecorder(reg, RecorderOptions{Now: clk.now})
	reg.Histogram("h", []float64{1, 10}).Observe(5)
	rec.Sample()

	clk.advance(time.Second)
	s := rec.Sample()
	h := sampleHist(t, s, "h")
	if h.Count != 0 || h.Sum != 0 || h.P50 != 0 || h.P99 != 0 || h.Buckets != nil {
		t.Errorf("idle window = %+v, want all-zero with no buckets", h)
	}
	if h.Total != 1 {
		t.Errorf("idle window total = %d, want lifetime 1", h.Total)
	}
}

// Histogram windows carry only the window's observations, with quantiles
// from the delta buckets.
func TestRecorderHistogramWindow(t *testing.T) {
	reg := NewRegistry()
	clk := newTestClock()
	rec := NewRecorder(reg, RecorderOptions{Now: clk.now})
	h := reg.Histogram("h", []float64{10, 20, 40})
	h.Observe(5) // before the window: must not show in the delta
	rec.Sample()

	for i := 0; i < 100; i++ {
		h.Observe(15) // all in (10, 20]
	}
	clk.advance(time.Second)
	s := rec.Sample()
	hw := sampleHist(t, s, "h")
	if hw.Count != 100 {
		t.Fatalf("window count = %d, want 100", hw.Count)
	}
	if hw.P50 <= 10 || hw.P50 > 20 || hw.P99 <= 10 || hw.P99 > 20 {
		t.Errorf("window p50/p99 = %v/%v, want within (10, 20]", hw.P50, hw.P99)
	}
	if hw.Total != 101 {
		t.Errorf("window lifetime total = %d, want 101", hw.Total)
	}
}

// The ring overwrites oldest-first once full and History returns
// chronological order across the wrap point.
func TestRecorderRingWraparound(t *testing.T) {
	reg := NewRegistry()
	clk := newTestClock()
	rec := NewRecorder(reg, RecorderOptions{Capacity: 4, Now: clk.now})
	for i := 0; i < 10; i++ {
		clk.advance(time.Second)
		rec.Sample()
	}
	h := rec.History()
	if len(h) != 4 {
		t.Fatalf("history length = %d, want capacity 4", len(h))
	}
	for i, s := range h {
		if want := int64(7 + i); s.Seq != want {
			t.Errorf("history[%d].Seq = %d, want %d (oldest-first across the wrap)", i, s.Seq, want)
		}
	}
	last, ok := rec.Latest()
	if !ok || last.Seq != 10 {
		t.Errorf("Latest = %+v, %v, want seq 10", last, ok)
	}
}

// History JSON round-trips through the documented envelope.
func TestRecorderHistoryJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c").Inc()
	clk := newTestClock()
	rec := NewRecorder(reg, RecorderOptions{Capacity: 8, Interval: 2 * time.Second, Now: clk.now})
	rec.Sample()
	clk.advance(2 * time.Second)
	reg.Counter("c").Add(3)
	rec.Sample()

	var buf bytes.Buffer
	if err := rec.WriteHistoryJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var env RecorderHistory
	if err := json.Unmarshal(buf.Bytes(), &env); err != nil {
		t.Fatalf("history JSON does not parse: %v", err)
	}
	if env.IntervalMs != 2000 || env.Capacity != 8 || len(env.Samples) != 2 {
		t.Errorf("envelope = interval %d, cap %d, %d samples; want 2000/8/2",
			env.IntervalMs, env.Capacity, len(env.Samples))
	}
	if c := sampleCounter(t, env.Samples[1], "c"); c.Delta != 3 {
		t.Errorf("decoded delta = %d, want 3", c.Delta)
	}

	// Nil recorder serves a valid empty envelope.
	buf.Reset()
	var nilRec *Recorder
	if err := nilRec.WriteHistoryJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &env); err != nil || len(env.Samples) != 0 {
		t.Errorf("nil recorder history = %q (err %v), want empty envelope", buf.String(), err)
	}
}

// Start/Stop run the periodic sampler and Stop is idempotent.
func TestRecorderStartStop(t *testing.T) {
	reg := NewRegistry()
	rec := NewRecorder(reg, RecorderOptions{Interval: time.Millisecond, Capacity: 128})
	rec.Start()
	rec.Start() // second Start no-ops
	deadline := time.After(2 * time.Second)
	for {
		if _, ok := rec.Latest(); ok {
			break
		}
		select {
		case <-deadline:
			t.Fatal("sampler never produced a sample")
		case <-time.After(time.Millisecond):
		}
	}
	rec.Stop()
	rec.Stop() // idempotent
	n := len(rec.History())
	time.Sleep(5 * time.Millisecond)
	if got := len(rec.History()); got != n {
		t.Errorf("samples kept arriving after Stop: %d -> %d", n, got)
	}
}

func TestBucketQuantile(t *testing.T) {
	buckets := []BucketSnap{
		{UpperBound: 10, Count: 0},
		{UpperBound: 20, Count: 100},
		{UpperBound: 40, Count: 0},
		{UpperBound: math.Inf(1), Count: 0},
	}
	if p := BucketQuantile(buckets, 0.5); p != 15 {
		t.Errorf("p50 of uniform (10,20] bucket = %v, want 15 (midpoint interpolation)", p)
	}
	// Overflow-only mass reports the last finite bound.
	over := []BucketSnap{{UpperBound: 10, Count: 0}, {UpperBound: math.Inf(1), Count: 5}}
	if p := BucketQuantile(over, 0.99); p != 10 {
		t.Errorf("overflow p99 = %v, want last finite bound 10", p)
	}
	if p := BucketQuantile(nil, 0.5); p != 0 {
		t.Errorf("empty quantile = %v, want 0", p)
	}
}
