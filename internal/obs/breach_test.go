package obs

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// A latency breach writes one capture directory with the profile set, and
// the rate limit keeps a sustained breach at one capture per interval.
func TestBreachCaptureAndRateLimit(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry()
	clk := newTestClock()
	rec := NewRecorder(reg, RecorderOptions{Now: clk.now})
	w := NewBreachWatcher(rec, []BreachRule{{Metric: "serve.latency_us", P99Above: 100}},
		BreachOptions{Dir: dir, MinInterval: time.Minute, CPUProfile: -1, Now: clk.now})
	if w == nil {
		t.Fatal("watcher construction failed")
	}

	h := reg.Histogram("serve.latency_us", LatencyMicrosBuckets)
	rec.Sample() // baseline

	// Window full of ~800us observations: p99 far past the 100us rule.
	for i := 0; i < 50; i++ {
		h.Observe(700)
	}
	clk.advance(time.Second)
	rec.Sample()
	if w.Captures() != 1 {
		t.Fatalf("captures = %d, want 1", w.Captures())
	}
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("capture dirs = %v (err %v), want 1", ents, err)
	}
	cdir := filepath.Join(dir, ents[0].Name())
	for _, f := range []string{"reason.json", "history.json", "heap.pprof"} {
		if st, err := os.Stat(filepath.Join(cdir, f)); err != nil || st.Size() == 0 {
			t.Errorf("capture missing %s (err %v)", f, err)
		}
	}

	// Still breaching 1s later: suppressed by the rate limit.
	for i := 0; i < 50; i++ {
		h.Observe(700)
	}
	clk.advance(time.Second)
	rec.Sample()
	if w.Captures() != 1 || w.Breaches() != 2 {
		t.Errorf("after suppressed breach: captures %d breaches %d, want 1/2", w.Captures(), w.Breaches())
	}

	// Past the interval the next breach captures again.
	for i := 0; i < 50; i++ {
		h.Observe(700)
	}
	clk.advance(2 * time.Minute)
	rec.Sample()
	if w.Captures() != 2 {
		t.Errorf("captures after interval = %d, want 2", w.Captures())
	}
}

// Counter-delta rules (fleet.worker_lost) fire on window growth, not on
// lifetime totals.
func TestBreachCounterDelta(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry()
	clk := newTestClock()
	rec := NewRecorder(reg, RecorderOptions{Now: clk.now})
	w := NewBreachWatcher(rec, []BreachRule{{Metric: MetricFleetWorkerLost, DeltaAtLeast: 1}},
		BreachOptions{Dir: dir, CPUProfile: -1, Now: clk.now})

	reg.Counter(MetricFleetWorkerLost).Add(5) // pre-existing losses
	rec.Sample()                              // first sample: delta 0, no breach
	if w.Captures() != 0 {
		t.Fatalf("first sample captured on lifetime total: %d", w.Captures())
	}

	clk.advance(time.Second)
	rec.Sample() // idle window: no breach
	if w.Captures() != 0 {
		t.Fatalf("idle window captured: %d", w.Captures())
	}

	reg.Counter(MetricFleetWorkerLost).Inc()
	clk.advance(time.Second)
	rec.Sample()
	if w.Captures() != 1 {
		t.Errorf("captures = %d, want 1 after a lost worker", w.Captures())
	}
}

// Degenerate construction is a safe no-op.
func TestBreachWatcherNil(t *testing.T) {
	if NewBreachWatcher(nil, []BreachRule{{Metric: "m", P99Above: 1}}, BreachOptions{Dir: "/tmp"}) != nil {
		t.Error("nil recorder must yield nil watcher")
	}
	if NewBreachWatcher(NewRecorder(NewRegistry(), RecorderOptions{}), nil, BreachOptions{Dir: "/tmp"}) != nil {
		t.Error("no rules must yield nil watcher")
	}
	var w *BreachWatcher
	if w.Captures() != 0 || w.Breaches() != 0 {
		t.Error("nil watcher accessors must return 0")
	}
}
