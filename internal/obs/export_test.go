package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fakeClock is a deterministic time source: every reading advances by step.
func fakeClock(step time.Duration) func() time.Time {
	base := time.Unix(1700000000, 0)
	n := 0
	return func() time.Time {
		n++
		return base.Add(time.Duration(n) * step)
	}
}

// buildGoldenTrace produces a fixed span set resembling a two-run observed
// flow: parallel roots (two tracks), nested stage spans, instant events,
// and every attribute type the exporter serializes.
func buildGoldenTrace() *Tracer {
	tr := NewTracer()
	tr.SetClock(fakeClock(time.Millisecond))

	r1 := tr.start(nil, "flow", []Attr{String("design", "face_detection"), Int("seed", 42), Bool("cached", false)})
	r1.Event("flowcache.miss")
	s1 := r1.Child("place", Float("accept_rate", 0.25))
	s1.End()
	s2 := r1.Child("route")
	s2.Event("fault.injected", String("stage", "route"))
	s2.SetError(os.ErrDeadlineExceeded)
	s2.End()
	r1.End()

	r2 := tr.start(nil, "flow", []Attr{String("design", "digit \"quoted\""), Int("seed", 43)})
	r2.Child("schedule").End()
	r2.End()
	return tr
}

// TestChromeTraceGolden pins the exporter's byte-exact output under an
// injected clock: field order, track assignment, escaping and timestamp
// units must not drift, or saved traces stop loading identically.
func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildGoldenTrace().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_trace.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -run Golden -update` to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace drifted from golden file\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}

	// The golden bytes must also be what a Chrome-trace consumer can parse.
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) != 7 { // 5 complete + 2 instant events
		t.Errorf("got %d events, want 7", len(parsed.TraceEvents))
	}
	tids := map[float64]bool{}
	for _, ev := range parsed.TraceEvents {
		tids[ev["tid"].(float64)] = true
	}
	if len(tids) != 2 {
		t.Errorf("got %d tracks, want 2 (one per root span)", len(tids))
	}
}

// TestChromeTraceDeterministic writes the same span set twice and demands
// identical bytes.
func TestChromeTraceDeterministic(t *testing.T) {
	spans := buildGoldenTrace().Spans()
	var a, b bytes.Buffer
	if err := WriteChromeTrace(&a, spans); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&b, spans); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two exports of the same spans differ")
	}
}

// TestMetricsJSONRoundTrip checks the snapshot survives encode/decode,
// including the +Inf overflow bucket encoding/json cannot represent as a
// number.
func TestMetricsJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter(MetricFlowRuns).Add(7)
	r.Gauge(MetricGridCandidatesPerSec).Set(12.5)
	h := r.Histogram(MetricFlowMs, []float64{1, 10})
	h.Observe(0.2)
	h.Observe(300)

	var buf bytes.Buffer
	if err := WriteMetricsJSON(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"+Inf"`)) {
		t.Error("overflow bucket not serialized as \"+Inf\"")
	}

	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot does not round-trip: %v", err)
	}
	if v, ok := snap.Counter(MetricFlowRuns); !ok || v != 7 {
		t.Errorf("counter lost: %d, %v", v, ok)
	}
	if v, ok := snap.Gauge(MetricGridCandidatesPerSec); !ok || v != 12.5 {
		t.Errorf("gauge lost: %g, %v", v, ok)
	}
	hs := snap.Histogram(MetricFlowMs)
	if hs == nil || hs.Count != 2 || hs.Sum != 300.2 {
		t.Fatalf("histogram lost: %+v", hs)
	}
	last := hs.Buckets[len(hs.Buckets)-1]
	if !math.IsInf(last.UpperBound, 1) || last.Count != 1 {
		t.Errorf("overflow bucket wrong after round-trip: %+v", last)
	}
}

// TestEmptyTraceIsValid: a tracer with no spans still writes a loadable
// file (the CLI flushes unconditionally).
func TestEmptyTraceIsValid(t *testing.T) {
	var buf bytes.Buffer
	var tr *Tracer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("empty trace invalid: %v", err)
	}
}
