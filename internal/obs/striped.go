package obs

// Striped metrics: the contention-free variants of Counter, Gauge and
// Histogram for hot paths that many cores hit at once. A plain atomic
// counter is lock-free but still serializes cores on one cache line — at
// a few hundred thousand increments per second per core the line bounces
// between sockets and "cheap" metrics become the bottleneck they were
// supposed to observe. A striped metric splits the value across N
// cache-line-padded stripes; each writer picks a stripe that no other
// core is hammering (an explicit shard index, or a per-goroutine hint)
// and Snapshot merges the stripes back into one series under the original
// name. Two registries fed the same operation sequence — one plain, one
// striped — snapshot identically (see TestStripedSnapshotEquivalence),
// so readers never learn whether a metric was striped.
//
// Stripe picking: callers that already have a shard identity (the serving
// layer's per-shard batchers) resolve their stripe once with Stripe(i)
// and hold the plain handle — zero extra cost per operation. Callers
// without one (the flow cache, hit from arbitrary worker goroutines) use
// the hint-based Add/Inc/Observe, which hash a stack address into a
// stripe index: goroutine stacks are distinct allocations, so concurrent
// goroutines spread across stripes without any shared state.

import (
	"math"
	"runtime"
	"unsafe"
)

// cacheLine is the padding granularity. 64 bytes covers x86-64 and most
// arm64 parts; adjacent-line prefetchers make 128 tempting, but 64 already
// removes the measured contention and halves the footprint.
const cacheLine = 64

// DefaultStripes returns the stripe count used when the caller has no
// shard structure of its own: one stripe per schedulable core, capped so a
// huge host doesn't pay a huge snapshot merge.
func DefaultStripes() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	if n > 64 {
		n = 64
	}
	return n
}

// stripeHint returns a cheap per-goroutine stripe index in [0, n). The
// address of a stack variable identifies the calling goroutine's stack —
// distinct goroutines run on distinct stack allocations — and a Fibonacci
// hash spreads those addresses uniformly. The hint is stable enough for
// affinity (a goroutine keeps hitting the same stripe while its stack
// doesn't move) and requires no shared state, which is the whole point.
func stripeHint(n int) int {
	var b byte
	h := uint64(uintptr(unsafe.Pointer(&b))) * 0x9E3779B97F4A7C15
	return int((h >> 32) % uint64(n))
}

// paddedCounter keeps neighboring stripes on separate cache lines.
type paddedCounter struct {
	Counter
	_ [cacheLine - 8]byte
}

// StripedCounter is a Counter split across cache-line-padded stripes.
// All methods are nil-safe; Value and Snapshot sum the stripes.
type StripedCounter struct {
	stripes []paddedCounter
}

func newStripedCounter(n int) *StripedCounter {
	if n < 1 {
		n = 1
	}
	return &StripedCounter{stripes: make([]paddedCounter, n)}
}

// Stripe returns the plain Counter handle of stripe i (mod the stripe
// count). Callers with a stable shard identity resolve their stripe once
// and pay exactly one un-contended atomic per operation afterwards.
func (s *StripedCounter) Stripe(i int) *Counter {
	if s == nil {
		return nil
	}
	return &s.stripes[uint(i)%uint(len(s.stripes))].Counter
}

// Add increments the per-goroutine-hint stripe by n.
func (s *StripedCounter) Add(n int64) {
	if s == nil {
		return
	}
	s.stripes[stripeHint(len(s.stripes))].Counter.Add(n)
}

// Inc increments the per-goroutine-hint stripe by one.
func (s *StripedCounter) Inc() { s.Add(1) }

// Value returns the sum over all stripes.
func (s *StripedCounter) Value() int64 {
	if s == nil {
		return 0
	}
	var total int64
	for i := range s.stripes {
		total += s.stripes[i].Counter.Value()
	}
	return total
}

// paddedGauge keeps neighboring stripes on separate cache lines.
type paddedGauge struct {
	Gauge
	_ [cacheLine - 8]byte
}

// StripedGauge is a Gauge split across cache-line-padded stripes with
// *sum* merge semantics: each stripe holds one shard's contribution
// (e.g. that shard's in-flight request count) and Value/Snapshot report
// the total. That differs from the plain Gauge's last-write-wins — use a
// striped gauge only for quantities that are meaningful as a sum of
// per-shard parts.
type StripedGauge struct {
	stripes []paddedGauge
}

func newStripedGauge(n int) *StripedGauge {
	if n < 1 {
		n = 1
	}
	return &StripedGauge{stripes: make([]paddedGauge, n)}
}

// Stripe returns the plain Gauge handle of stripe i (mod the stripe count).
func (s *StripedGauge) Stripe(i int) *Gauge {
	if s == nil {
		return nil
	}
	return &s.stripes[uint(i)%uint(len(s.stripes))].Gauge
}

// Value returns the sum over all stripes.
func (s *StripedGauge) Value() float64 {
	if s == nil {
		return 0
	}
	var total float64
	for i := range s.stripes {
		total += s.stripes[i].Gauge.Value()
	}
	return total
}

// StripedHistogram is a Histogram split across stripes. Every stripe is a
// separately allocated Histogram with identical bounds (its hot atomics —
// bucket array, count, sum — therefore live on lines no other stripe
// touches), and Snapshot merges bucket counts, totals and min/max back
// into one distribution.
type StripedHistogram struct {
	bounds  []float64
	stripes []*Histogram
}

func newStripedHistogram(bounds []float64, n int) *StripedHistogram {
	if n < 1 {
		n = 1
	}
	s := &StripedHistogram{stripes: make([]*Histogram, n)}
	for i := range s.stripes {
		s.stripes[i] = newHistogram(bounds)
	}
	s.bounds = s.stripes[0].bounds
	return s
}

// Stripe returns the plain Histogram handle of stripe i (mod the stripe
// count).
func (s *StripedHistogram) Stripe(i int) *Histogram {
	if s == nil {
		return nil
	}
	return s.stripes[uint(i)%uint(len(s.stripes))]
}

// Observe records v into the per-goroutine-hint stripe.
func (s *StripedHistogram) Observe(v float64) {
	if s == nil {
		return
	}
	s.stripes[stripeHint(len(s.stripes))].Observe(v)
}

// merged folds every stripe into one HistogramSnap. Counts and bucket
// tallies are exact integer sums; Sum is a float sum per stripe first, so
// a sequence of exactly representable observations merges exactly.
func (s *StripedHistogram) merged(name string) HistogramSnap {
	hs := HistogramSnap{Name: name}
	min, max := math.Inf(1), math.Inf(-1)
	bucketCounts := make([]int64, len(s.bounds)+1)
	for _, h := range s.stripes {
		c := h.count.Load()
		if c == 0 {
			continue
		}
		hs.Count += c
		hs.Sum += math.Float64frombits(h.sumBits.Load())
		if v := math.Float64frombits(h.minBits.Load()); v < min {
			min = v
		}
		if v := math.Float64frombits(h.maxBits.Load()); v > max {
			max = v
		}
		for i := range h.buckets {
			bucketCounts[i] += h.buckets[i].Load()
		}
	}
	if hs.Count > 0 {
		hs.Min, hs.Max, hs.Mean = min, max, hs.Sum/float64(hs.Count)
	}
	for i, c := range bucketCounts {
		ub := math.Inf(1)
		if i < len(s.bounds) {
			ub = s.bounds[i]
		}
		hs.Buckets = append(hs.Buckets, BucketSnap{UpperBound: ub, Count: c})
	}
	return hs
}

// StripedCounter returns the named striped counter, registering it with
// the given stripe count on first use (later calls keep the original
// stripe count; pass DefaultStripes() when unsure). A name must be either
// plain or striped, never both. Nil-safe: a nil registry returns a nil
// handle whose methods no-op.
func (r *Registry) StripedCounter(name string, stripes int) *StripedCounter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.stripedCounters[name]
	if c == nil {
		c = newStripedCounter(stripes)
		r.stripedCounters[name] = c
	}
	return c
}

// StripedGauge returns the named striped (sum-merged) gauge, registering
// it with the given stripe count on first use. Nil-safe.
func (r *Registry) StripedGauge(name string, stripes int) *StripedGauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.stripedGauges[name]
	if g == nil {
		g = newStripedGauge(stripes)
		r.stripedGauges[name] = g
	}
	return g
}

// StripedHistogram returns the named striped histogram, registering it
// with bounds and the given stripe count on first use. Nil-safe.
func (r *Registry) StripedHistogram(name string, bounds []float64, stripes int) *StripedHistogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.stripedHists[name]
	if h == nil {
		h = newStripedHistogram(bounds, stripes)
		r.stripedHists[name] = h
	}
	return h
}
