// Package obs is the flow's observability layer: hierarchical spans with
// monotonic timing, a metrics registry with atomic hot paths, and exporters
// for Chrome trace_event JSON, JSON metrics snapshots, slog-structured logs
// and an HTTP debug endpoint. It depends only on the standard library.
//
// The package is built around one invariant: *observation must cost
// (almost) nothing when disabled*. Every entry point is nil-safe — a nil
// *Observer, *Tracer, *Registry or *Span accepts every call as a no-op —
// so instrumented code threads a possibly-nil Observer without guards and
// the disabled fast path is a pointer test (see TestDisabledSpanZeroAlloc
// for the allocation guarantee, and the no-op overhead numbers in
// BENCH_PR5.json). The second invariant is that observation never changes
// what it observes: spans and metrics are written on stage boundaries, not
// inside kernels, and nothing in this package feeds back into flow
// decisions, so instrumented runs stay byte-identical to bare ones.
//
// Concurrency: one Observer is shared by every worker of a parallel
// dataset build or grid search. The Tracer serializes span completion
// under a mutex (spans finish at stage granularity, so contention is
// negligible), the Registry's counters, gauges and histogram buckets are
// lock-free atomics after first registration, and loggers are slog's
// (already concurrency-safe).
package obs

import (
	"context"
	"log/slog"
	"time"
)

// Observer bundles the three observation sinks an instrumented layer may
// write to: a span tracer, a metrics registry and a structured logger. Any
// field may be nil to disable that sink; the nil *Observer disables all
// three. Construct with New (all sinks except logging) and assign Log for
// structured logs.
type Observer struct {
	// Trace collects hierarchical spans; nil disables tracing.
	Trace *Tracer
	// Reg accumulates counters, gauges and histograms; nil disables
	// metrics.
	Reg *Registry
	// Log receives structured log records; nil disables logging.
	Log *slog.Logger
	// Rec, when set, is the time-series recorder behind the
	// /debug/metrics/history endpoint; nil serves an empty history. The
	// recorder samples Reg from its own goroutine — nothing on the
	// instrumented path ever touches it.
	Rec *Recorder
}

// New returns an Observer with a fresh Tracer and Registry and no logger.
func New() *Observer {
	return &Observer{Trace: NewTracer(), Reg: NewRegistry()}
}

// Tracing reports whether spans started through this Observer are
// recorded. Nil-safe.
func (o *Observer) Tracing() bool { return o != nil && o.Trace != nil }

// Metrics returns the registry (nil when metrics are disabled). Nil-safe.
func (o *Observer) Metrics() *Registry {
	if o == nil {
		return nil
	}
	return o.Reg
}

// Logger returns the structured logger, or nil when logging is disabled.
// Callers must guard: `if l := o.Logger(); l != nil { l.Info(...) }` — the
// guard keeps disabled log sites allocation-free.
func (o *Observer) Logger() *slog.Logger {
	if o == nil {
		return nil
	}
	return o.Log
}

// Start begins a root span. Nil-safe: a nil Observer (or one without a
// Tracer) returns a nil *Span, on which every method no-ops.
func (o *Observer) Start(name string, attrs ...Attr) *Span {
	if o == nil || o.Trace == nil {
		return nil
	}
	return o.Trace.start(nil, name, attrs)
}

// Count adds n to the named counter. Nil-safe.
func (o *Observer) Count(name string, n int64) {
	if o == nil || o.Reg == nil {
		return
	}
	o.Reg.Counter(name).Add(n)
}

// SetGauge sets the named gauge. Nil-safe.
func (o *Observer) SetGauge(name string, v float64) {
	if o == nil || o.Reg == nil {
		return
	}
	o.Reg.Gauge(name).Set(v)
}

// ObserveMs records a duration, in milliseconds, into the named histogram
// (DefaultDurationBuckets). Nil-safe.
func (o *Observer) ObserveMs(name string, d time.Duration) {
	if o == nil || o.Reg == nil {
		return
	}
	o.Reg.Histogram(name, DefaultDurationBuckets).Observe(float64(d) / float64(time.Millisecond))
}

// Observe records a value into the named histogram with the given bucket
// bounds (used on first registration only). Nil-safe.
func (o *Observer) Observe(name string, bounds []float64, v float64) {
	if o == nil || o.Reg == nil {
		return
	}
	o.Reg.Histogram(name, bounds).Observe(v)
}

// ctxKey keys the active span in a context.
type ctxKey struct{}

// ContextWith returns ctx with s installed as the active span. A nil span
// returns ctx unchanged.
func ContextWith(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the active span of ctx, or nil.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// Tracing reports whether a span started under (ctx, o) would be recorded
// — either the Observer traces or the context already carries a parent
// span. Instrumented code uses it to guard attribute construction so the
// disabled path allocates nothing.
func Tracing(ctx context.Context, o *Observer) bool {
	return o.Tracing() || FromContext(ctx) != nil
}

// StartSpan begins a span parented on the context's active span when one
// is present (a root span otherwise), and returns ctx with the new span
// active. When neither the Observer nor the context can record it, the
// original ctx and a nil span come back — so callers may use the returned
// pair unconditionally.
func StartSpan(ctx context.Context, o *Observer, name string, attrs ...Attr) (context.Context, *Span) {
	if parent := FromContext(ctx); parent != nil {
		s := parent.tracer.start(parent, name, attrs)
		return ContextWith(ctx, s), s
	}
	if o == nil || o.Trace == nil {
		return ctx, nil
	}
	s := o.Trace.start(nil, name, attrs)
	return ContextWith(ctx, s), s
}
