package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestPromTextFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("serve.requests").Add(42)
	reg.Gauge("serve.inflight").Set(3.5)
	h := reg.Histogram("serve.latency_us", []float64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := []string{
		"# TYPE serve_requests counter\n",
		"serve_requests 42\n",
		"# TYPE serve_inflight gauge\n",
		"serve_inflight 3.5\n",
		"# TYPE serve_latency_us histogram\n",
		`serve_latency_us_bucket{le="10"} 1` + "\n",
		`serve_latency_us_bucket{le="100"} 2` + "\n",
		`serve_latency_us_bucket{le="+Inf"} 3` + "\n",
		"serve_latency_us_sum 5055\n",
		"serve_latency_us_count 3\n",
	}
	for _, w := range want {
		if !strings.Contains(got, w) {
			t.Errorf("prom output missing %q\n---\n%s", w, got)
		}
	}
	// Buckets must be cumulative: the +Inf bucket equals the count.
	if strings.Contains(got, `le="+Inf"} 0`) {
		t.Error("+Inf bucket is not cumulative")
	}
}

func TestPromNameSanitize(t *testing.T) {
	cases := map[string]string{
		"serve.latency_us":          "serve_latency_us",
		"fleet.worker.A.cells_done": "fleet_worker_A_cells_done",
		"9lives":                    "_9lives",
		"ok:colon":                  "ok:colon",
		"":                          "_",
		"sp ace":                    "sp_ace",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// Names that collide after sanitizing keep the first series only — a
// scraper rejects duplicate series outright.
func TestPromCollision(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a.b").Add(1)
	reg.Counter("a_b").Add(2)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "# TYPE a_b counter"); n != 1 {
		t.Errorf("collision produced %d TYPE lines, want 1\n%s", n, buf.String())
	}
	if n := strings.Count(buf.String(), "\na_b "); n != 1 {
		t.Errorf("collision produced %d samples, want 1\n%s", n, buf.String())
	}
}
