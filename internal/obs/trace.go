package obs

import (
	"sync"
	"time"
)

// Attr is one key/value annotation on a span or event. Values are limited
// to what the exporters serialize losslessly: string, int64, float64, bool.
type Attr struct {
	Key   string
	Value any
}

// String returns a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int returns an integer attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, Value: v} }

// Float returns a float attribute.
func Float(k string, v float64) Attr { return Attr{Key: k, Value: v} }

// Bool returns a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: v} }

// EventData is one instantaneous occurrence inside a span — a retry
// attempt, an injected fault, a cache hit — stamped relative to the trace
// epoch.
type EventData struct {
	Name  string
	At    time.Duration // offset from the trace epoch
	Attrs []Attr
}

// SpanData is one finished span as the exporters see it. Times are offsets
// from the trace epoch, derived from the tracer's monotonic clock.
type SpanData struct {
	ID       int64
	ParentID int64 // 0 for root spans
	RootID   int64 // track grouping: the top-level ancestor's ID
	Name     string
	// Proc is the originating process lane, set by Tracer.Import when a
	// span arrived from another process ("" for locally recorded spans).
	// The Chrome exporter renders each distinct Proc as its own pid, so a
	// stitched fleet trace shows one lane per worker.
	Proc   string
	Start  time.Duration
	End    time.Duration
	Attrs  []Attr
	Events []EventData
}

// Span is one in-flight operation. Spans form a hierarchy via Child and
// ContextWith/StartSpan; they are recorded when End is called. All methods
// are nil-safe no-ops, so instrumented code never guards.
//
// A span's own mutations (SetAttr, Event, End) must come from one
// goroutine — the one running the operation — but *different* spans of the
// same Tracer are safely started, mutated and ended concurrently, which is
// how parallel dataset builds and grid searches trace their workers.
type Span struct {
	tracer *Tracer
	data   SpanData
	ended  bool
}

// Child begins a sub-span. Nil-safe: a nil receiver returns nil.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.tracer.start(s, name, attrs)
}

// SetAttr appends annotations to the span. Nil-safe.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.data.Attrs = append(s.data.Attrs, attrs...)
}

// Event records an instantaneous occurrence inside the span. Nil-safe.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	s.data.Events = append(s.data.Events, EventData{
		Name:  name,
		At:    s.tracer.since(),
		Attrs: attrs,
	})
}

// SetError annotates the span with a failure cause. Nil-safe (on both
// sides: a nil error is ignored).
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.data.Attrs = append(s.data.Attrs, String("error", err.Error()))
}

// SpanID returns the span's tracer-local ID (0 for a nil span) — the
// value a coordinator puts in the propagation header so remote children
// can be re-parented under it on import.
func (s *Span) SpanID() int64 {
	if s == nil {
		return 0
	}
	return s.data.ID
}

// End finishes the span and hands it to the tracer. Safe to call more than
// once (later calls no-op) and nil-safe.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.data.End = s.tracer.since()
	s.tracer.finish(s.data)
}

// Tracer collects finished spans, concurrency-safe. Timing is monotonic:
// every timestamp is an offset from the trace epoch (the instant of the
// first clock reading), so wall-clock jumps never corrupt durations and
// exports are deterministic under an injected test clock.
type Tracer struct {
	mu       sync.Mutex
	clock    func() time.Time
	epoch    time.Time
	epochSet bool
	nextID   int64
	spans    []SpanData
}

// NewTracer returns a tracer reading time.Now.
func NewTracer() *Tracer {
	return &Tracer{clock: time.Now}
}

// SetClock replaces the time source and re-arms the epoch to the next
// reading — the hook the golden-file export tests use to produce
// deterministic traces. Call it before any span starts.
func (t *Tracer) SetClock(clock func() time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.clock = clock
	t.epochSet = false
}

// since returns the current offset from the trace epoch, arming the epoch
// on first use.
func (t *Tracer) since() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.clock()
	if !t.epochSet {
		t.epoch = now
		t.epochSet = true
	}
	return now.Sub(t.epoch)
}

// start begins a span under parent (nil for a root).
func (t *Tracer) start(parent *Span, name string, attrs []Attr) *Span {
	if t == nil {
		return nil
	}
	at := t.since()
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.mu.Unlock()
	s := &Span{tracer: t, data: SpanData{ID: id, RootID: id, Name: name, Start: at, Attrs: attrs}}
	if parent != nil {
		s.data.ParentID = parent.data.ID
		s.data.RootID = parent.data.RootID
	}
	return s
}

// finish records one completed span.
func (t *Tracer) finish(d SpanData) {
	t.mu.Lock()
	t.spans = append(t.spans, d)
	t.mu.Unlock()
}

// EpochWall returns the wall-clock instant of the trace epoch — the first
// clock reading — and whether the epoch has been armed yet. Two tracers on
// the same host are stitched by shifting one's offsets by the difference of
// their epochs (see Import). Nil-safe.
func (t *Tracer) EpochWall() (time.Time, bool) {
	if t == nil {
		return time.Time{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.epoch, t.epochSet
}

// Import splices spans recorded by another tracer (typically another
// process, decoded from a SpanBatch) into this one:
//
//   - IDs are remapped into this tracer's ID space so they never collide
//     with local spans.
//   - Spans whose parent is inside the batch keep their (remapped) parent;
//     batch roots are re-parented under parent when it is non-nil, so a
//     worker's flow spans hang off the coordinator's build span.
//   - Offsets are shifted by shift — the remote epoch minus the local one —
//     translating remote epoch-relative times into local ones; results are
//     clamped at zero so clock skew can never produce negative timestamps.
//   - Proc tags every imported span, giving it its own lane (pid) in the
//     Chrome export.
//
// RootID is remapped within the batch (each remote root keeps its own
// track) rather than inherited from parent, so a stitched trace renders
// each worker's concurrent flow runs on separate rows. Nil-safe.
func (t *Tracer) Import(spans []SpanData, proc string, parent *Span, shift time.Duration) {
	if t == nil || len(spans) == 0 {
		return
	}
	var parentID int64
	if parent != nil {
		parentID = parent.data.ID
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	idMap := make(map[int64]int64, len(spans))
	for i := range spans {
		t.nextID++
		idMap[spans[i].ID] = t.nextID
	}
	for _, s := range spans {
		d := s
		d.ID = idMap[s.ID]
		if mapped, ok := idMap[s.ParentID]; ok {
			d.ParentID = mapped
		} else {
			d.ParentID = parentID
		}
		if mapped, ok := idMap[s.RootID]; ok {
			d.RootID = mapped
		} else {
			d.RootID = d.ID
		}
		d.Proc = proc
		d.Start = clampNonNeg(s.Start + shift)
		d.End = clampNonNeg(s.End + shift)
		if len(s.Events) > 0 {
			d.Events = make([]EventData, len(s.Events))
			for i, e := range s.Events {
				e.At = clampNonNeg(e.At + shift)
				d.Events[i] = e
			}
		}
		t.spans = append(t.spans, d)
	}
}

func clampNonNeg(d time.Duration) time.Duration {
	if d < 0 {
		return 0
	}
	return d
}

// Spans returns a snapshot of every finished span, in completion order.
func (t *Tracer) Spans() []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanData, len(t.spans))
	copy(out, t.spans)
	return out
}

// Len returns the number of finished spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}
