package obs

// Canonical metric names. They are defined here — not in the packages that
// write them — because readers live elsewhere: the hlscong run report, the
// obscheck validator and the debug endpoint all key off these strings, and
// a shared constant keeps writer and reader from drifting.
const (
	// MetricStagePrefix prefixes one duration histogram per flow stage:
	// "flow.stage_ms.schedule", ..., "flow.stage_ms.timing" (milliseconds).
	MetricStagePrefix = "flow.stage_ms."
	// MetricFlowRuns counts completed flow runs (cache hits included).
	MetricFlowRuns = "flow.runs"
	// MetricFlowMs is the full-run duration histogram (milliseconds).
	MetricFlowMs = "flow.run_ms"
	// MetricFlowRetries counts failed attempts that were retried.
	MetricFlowRetries = "flow.retries"
	// MetricFlowFaults counts injected stage faults that fired.
	MetricFlowFaults = "flow.faults_injected"

	// MetricCacheHits / Misses / Evictions are the flow cache's counters.
	MetricCacheHits      = "flowcache.hits"
	MetricCacheMisses    = "flowcache.misses"
	MetricCacheEvictions = "flowcache.evictions"

	// MetricStoreHits / Misses / Corrupt / Evictions are the persistent
	// artifact store's counters: disk-tier hits and misses, entries
	// quarantined as corrupt (scan- or read-side), and entries evicted by
	// the byte budget.
	MetricStoreHits      = "store.hit"
	MetricStoreMisses    = "store.miss"
	MetricStoreCorrupt   = "store.corrupt"
	MetricStoreEvictions = "store.evict"

	// MetricPlaceMoves / Accepted count annealing moves proposed/committed.
	MetricPlaceMoves    = "place.moves"
	MetricPlaceAccepted = "place.accepted"
	// MetricPlaceAcceptRate is the per-run accept-rate histogram
	// (RatioBuckets).
	MetricPlaceAcceptRate = "place.accept_rate"

	// MetricRouteIterations is the per-run negotiation-pass histogram
	// (SmallCountBuckets).
	MetricRouteIterations = "route.iterations"
	// MetricRouteOverflow counts tile-direction pairs left above capacity,
	// summed over runs; MetricRouteNonConverged counts the runs.
	MetricRouteOverflow     = "route.overflow_edges"
	MetricRouteNonConverged = "route.nonconverged_runs"

	// MetricBuildFlowRuns counts successful flow executions of dataset
	// builds; MetricBuildModulesFailed the modules skipped after retries.
	MetricBuildFlowRuns      = "build.flow_runs"
	MetricBuildModulesFailed = "build.modules_failed"
	// MetricBuildRunMs is the per-(module, label-run) duration histogram.
	MetricBuildRunMs = "build.run_ms"

	// MetricCVCells counts evaluated (candidate, fold) grid-search cells;
	// MetricCVCellMs is their duration histogram.
	MetricCVCells  = "ml.cv_cells"
	MetricCVCellMs = "ml.cv_cell_ms"
	// MetricGridCandidatesPerSec is the last grid search's throughput in
	// candidates per second.
	MetricGridCandidatesPerSec = "ml.grid.candidates_per_sec"

	// The serve.* request-path series (requests, shed, errors,
	// predictions, batches, batch_rows, latency_us, inflight) are striped:
	// each serving shard writes its own cache-line-padded stripe and
	// Snapshot merges them back under these names (counters/histograms by
	// sum, serve.inflight as a sum-merged gauge). Readers see one series
	// per name either way. flowcache.hits/misses are striped the same way.
	//
	// MetricServeRequests counts /predict requests admitted past the
	// inflight gate; MetricServeShed those rejected by it (HTTP 429);
	// MetricServeErrors requests that failed after admission (bad payload,
	// no model loaded).
	MetricServeRequests = "serve.requests"
	MetricServeShed     = "serve.shed"
	MetricServeErrors   = "serve.errors"
	// MetricServePredictions counts individual feature rows scored;
	// MetricServeBatches the coalesced PredictBatchInto calls that scored
	// them. Their ratio is the effective batch size.
	MetricServePredictions = "serve.predictions"
	MetricServeBatches     = "serve.batches"
	// MetricServeBatchRows is the per-batch row-count histogram
	// (BatchRowsBuckets); MetricServeBatchOccupancy the last batch's fill
	// fraction of the size cap (gauge in [0, 1]).
	MetricServeBatchRows      = "serve.batch_rows"
	MetricServeBatchOccupancy = "serve.batch_occupancy"
	// MetricServeLatencyUs is the request-latency histogram in
	// microseconds (LatencyMicrosBuckets), measured decode-to-encode
	// around the coalescing wait.
	MetricServeLatencyUs = "serve.latency_us"
	// MetricServeInflight is the number of requests currently admitted.
	MetricServeInflight = "serve.inflight"
	// MetricServeReloads counts model hot-reloads that swapped a new
	// artifact in; MetricServeReloadErrors reload attempts rejected with
	// the old model left serving.
	MetricServeReloads      = "serve.reloads"
	MetricServeReloadErrors = "serve.reload_errors"

	// MetricFleetCellsDone counts grid cells the coordinator accepted a
	// verified result for (each cell counted once — duplicate completions
	// don't inflate it); MetricFleetCellsFailed cells reported terminally
	// failed by a worker.
	MetricFleetCellsDone   = "fleet.cells_done"
	MetricFleetCellsFailed = "fleet.cells_failed"
	// MetricFleetSteals counts in-flight leases re-issued to another
	// worker (work stealing); MetricFleetWorkerLost lease expiries — a
	// worker that went silent past its lease deadline.
	MetricFleetSteals     = "fleet.steal"
	MetricFleetWorkerLost = "fleet.worker_lost"
	// MetricFleetDupComplete counts completions for cells that already
	// had a verified result (the idempotency path);
	// MetricFleetBadComplete completions whose payload failed
	// verification against the cell's cache key and were rejected.
	MetricFleetDupComplete = "fleet.dup_complete"
	MetricFleetBadComplete = "fleet.bad_complete"
	// MetricFleetWorkers is the number of distinct workers that have
	// leased work so far (gauge).
	MetricFleetWorkers = "fleet.workers"
	// MetricFleetWorkerCellsPrefix prefixes the per-worker completed-cell
	// throughput gauges: fleet.worker.<name>.cells_done.
	MetricFleetWorkerCellsPrefix = "fleet.worker."
)
