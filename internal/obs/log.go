package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger returns a structured text logger writing records at or above
// level to w — the slog sink the CLI's -log-level flag builds. Timestamps
// are included by slog; instrumented code only logs on stage boundaries,
// so the sink never sits on a hot path.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}

// ParseLevel maps a -log-level flag value (debug, info, warn, error —
// case-insensitive) to its slog level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
}
