package obs

import (
	"encoding/json"
	"io"
	"math"
	"sync"
	"time"
)

// Recorder samples a Registry on a fixed interval into a fixed-capacity
// ring buffer, deriving what a point-in-time snapshot cannot show:
// counter deltas and per-second rates, histogram window deltas with
// interpolated p50/p99, all relative to the previous sample. The ring
// gives /debug/metrics/history a bounded sliding window — capacity ×
// interval of look-back, old samples overwritten in place — which is also
// the flight recorder a breach capture dumps to disk.
//
// Sampling runs outside the measured code: the request path writes the
// same lock-free atomics whether or not a recorder is attached, so an
// attached recorder costs the hot path nothing (the PR 5/PR 10 alloc and
// overhead gates pin this). All methods are nil-safe.
type Recorder struct {
	reg      *Registry
	interval time.Duration
	now      func() time.Time

	mu       sync.Mutex
	ring     []RecorderSample
	next     int // ring insertion index
	filled   bool
	seq      int64
	prev     *Snapshot
	prevAt   time.Time
	onSample []func(RecorderSample)

	stop chan struct{}
	done chan struct{}
}

// RecorderOptions configures a Recorder; the zero value gets defaults.
type RecorderOptions struct {
	// Interval between samples for Start (default 1s).
	Interval time.Duration
	// Capacity of the ring buffer in samples (default 300).
	Capacity int
	// Now injects a clock for tests (default time.Now).
	Now func() time.Time
}

// CounterRate is one counter in a sample: lifetime total plus the change
// over the sample window and its per-second rate. A total below the
// previous sample's (a restarted or reloaded writer) is treated as a
// counter reset: the delta is the new total, Prometheus-style.
type CounterRate struct {
	Name   string  `json:"name"`
	Total  int64   `json:"total"`
	Delta  int64   `json:"delta"`
	PerSec float64 `json:"per_sec"`
}

// HistWindow is one histogram's activity within a sample window: the
// observations that arrived since the previous sample, with quantiles
// interpolated from the window's bucket deltas (not the lifetime shape, so
// a p99 spike shows in the sample where it happened).
type HistWindow struct {
	Name    string       `json:"name"`
	Total   int64        `json:"total"`
	Count   int64        `json:"count"`
	Sum     float64      `json:"sum"`
	P50     float64      `json:"p50"`
	P99     float64      `json:"p99"`
	Buckets []BucketSnap `json:"buckets,omitempty"`
}

// RecorderSample is one ring entry: when it was taken, how long the window
// back to the previous sample was, and the derived series. The first
// sample after start (or after a reset) has WindowMs 0 and all-zero deltas
// and rates — there is no window to rate over yet.
type RecorderSample struct {
	Seq      int64         `json:"seq"`
	UnixMs   int64         `json:"t_ms"`
	WindowMs int64         `json:"window_ms"`
	Counters []CounterRate `json:"counters"`
	Gauges   []GaugeSnap   `json:"gauges"`
	Hists    []HistWindow  `json:"hists"`
}

// NewRecorder returns a recorder over reg. Start launches periodic
// sampling; Sample takes one synchronously (tests and one-shot captures).
func NewRecorder(reg *Registry, opts RecorderOptions) *Recorder {
	if opts.Interval <= 0 {
		opts.Interval = time.Second
	}
	if opts.Capacity <= 0 {
		opts.Capacity = 300
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	return &Recorder{
		reg:      reg,
		interval: opts.Interval,
		now:      opts.Now,
		ring:     make([]RecorderSample, opts.Capacity),
	}
}

// Interval returns the configured sampling interval (0 for nil).
func (r *Recorder) Interval() time.Duration {
	if r == nil {
		return 0
	}
	return r.interval
}

// OnSample registers fn to run synchronously after each sample lands —
// the hook breach watchers attach to. Register before Start. Nil-safe.
func (r *Recorder) OnSample(fn func(RecorderSample)) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.onSample = append(r.onSample, fn)
	r.mu.Unlock()
}

// Start launches the sampling goroutine. Calling Start on an already
// started (or nil) recorder no-ops. Stop ends it.
func (r *Recorder) Start() {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.stop != nil {
		r.mu.Unlock()
		return
	}
	r.stop = make(chan struct{})
	r.done = make(chan struct{})
	stop, done := r.stop, r.done
	r.mu.Unlock()
	go func() {
		defer close(done)
		tick := time.NewTicker(r.interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				r.Sample()
			}
		}
	}()
}

// Stop ends periodic sampling and waits for the goroutine to exit.
// Nil-safe and idempotent.
func (r *Recorder) Stop() {
	if r == nil {
		return
	}
	r.mu.Lock()
	stop, done := r.stop, r.done
	r.stop, r.done = nil, nil
	r.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// Sample takes one sample now: snapshot the registry, derive deltas and
// rates against the previous sample, append to the ring, and run the
// OnSample hooks. Nil-safe (returns the zero sample).
func (r *Recorder) Sample() RecorderSample {
	if r == nil {
		return RecorderSample{}
	}
	snap := r.reg.Snapshot()
	at := r.now()

	r.mu.Lock()
	r.seq++
	s := RecorderSample{Seq: r.seq, UnixMs: at.UnixMilli(), Gauges: snap.Gauges}
	var window time.Duration
	if r.prev != nil {
		window = at.Sub(r.prevAt)
		if window < 0 {
			window = 0
		}
	}
	s.WindowMs = window.Milliseconds()
	secs := window.Seconds()

	for _, c := range snap.Counters {
		cr := CounterRate{Name: c.Name, Total: c.Value}
		if r.prev != nil {
			prev, _ := r.prev.Counter(c.Name)
			cr.Delta = counterDelta(prev, c.Value)
			if secs > 0 {
				cr.PerSec = float64(cr.Delta) / secs
			}
		}
		s.Counters = append(s.Counters, cr)
	}
	for i := range snap.Histograms {
		h := &snap.Histograms[i]
		var prev *HistogramSnap
		if r.prev != nil {
			prev = r.prev.Histogram(h.Name)
		}
		hw := HistogramWindow(prev, h)
		if r.prev == nil {
			// First sample: totals only, no window to delta over.
			hw = HistWindow{Name: h.Name, Total: h.Count}
		}
		s.Hists = append(s.Hists, hw)
	}

	r.prev = &snap
	r.prevAt = at
	r.ring[r.next] = s
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
		r.filled = true
	}
	hooks := r.onSample
	r.mu.Unlock()

	for _, fn := range hooks {
		fn(s)
	}
	return s
}

// History returns the ring's samples, oldest first. Nil-safe.
func (r *Recorder) History() []RecorderSample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []RecorderSample
	if r.filled {
		out = append(out, r.ring[r.next:]...)
	}
	out = append(out, r.ring[:r.next]...)
	return out
}

// Latest returns the most recent sample (zero, false when none yet).
func (r *Recorder) Latest() (RecorderSample, bool) {
	if r == nil {
		return RecorderSample{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seq == 0 {
		return RecorderSample{}, false
	}
	i := r.next - 1
	if i < 0 {
		i = len(r.ring) - 1
	}
	return r.ring[i], true
}

// RecorderHistory is the JSON envelope of /debug/metrics/history.
type RecorderHistory struct {
	IntervalMs int64            `json:"interval_ms"`
	Capacity   int              `json:"capacity"`
	Samples    []RecorderSample `json:"samples"`
}

// WriteHistoryJSON serializes the ring as a RecorderHistory document.
// Nil-safe: a nil recorder writes an empty envelope.
func (r *Recorder) WriteHistoryJSON(w io.Writer) error {
	env := RecorderHistory{Samples: []RecorderSample{}}
	if r != nil {
		env.IntervalMs = r.interval.Milliseconds()
		env.Capacity = len(r.ring)
		if h := r.History(); h != nil {
			env.Samples = h
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(env)
}

// counterDelta is the window increase of a cumulative counter: cur-prev,
// except a shrunk counter means the writer restarted (model reload, new
// process behind the same endpoint) and the whole current total is the
// window's increase — the Prometheus rate() reset rule.
func counterDelta(prev, cur int64) int64 {
	if cur < prev {
		return cur
	}
	return cur - prev
}

// HistogramWindow derives one histogram's window activity between two
// snapshots of the same metric. prev may be nil (everything counts as the
// window, the reset rule); cur must be non-nil. Exposed because congload
// uses the same derivation to embed a server-side before/after delta in
// its report.
func HistogramWindow(prev, cur *HistogramSnap) HistWindow {
	hw := HistWindow{Name: cur.Name, Total: cur.Count}
	reset := prev == nil || cur.Count < prev.Count
	if reset {
		prev = nil
	}
	if prev == nil {
		hw.Count = cur.Count
		hw.Sum = cur.Sum
	} else {
		hw.Count = cur.Count - prev.Count
		hw.Sum = cur.Sum - prev.Sum
	}
	if hw.Count <= 0 {
		// Empty window: no quantiles to report, no buckets worth shipping.
		hw.Count = 0
		hw.Sum = 0
		return hw
	}
	hw.Buckets = make([]BucketSnap, len(cur.Buckets))
	for i, b := range cur.Buckets {
		d := b.Count
		if prev != nil && i < len(prev.Buckets) {
			d -= prev.Buckets[i].Count
			if d < 0 {
				d = 0
			}
		}
		hw.Buckets[i] = BucketSnap{UpperBound: b.UpperBound, Count: d}
	}
	hw.P50 = BucketQuantile(hw.Buckets, 0.5)
	hw.P99 = BucketQuantile(hw.Buckets, 0.99)
	return hw
}

// BucketQuantile estimates quantile q (in [0, 1]) from per-bucket (not
// cumulative) counts, interpolating linearly within the containing bucket.
// The overflow (+Inf) bucket reports its lower edge — the last finite
// bound — since no upper edge exists to interpolate toward. Returns 0 for
// an empty window.
func BucketQuantile(buckets []BucketSnap, q float64) float64 {
	var total int64
	for _, b := range buckets {
		total += b.Count
	}
	if total <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	lower := 0.0
	for _, b := range buckets {
		if b.Count == 0 {
			if !math.IsInf(b.UpperBound, 1) {
				lower = b.UpperBound
			}
			continue
		}
		if float64(cum+b.Count) >= rank {
			if math.IsInf(b.UpperBound, 1) {
				// Overflow bucket: no finite upper edge.
				return lower
			}
			frac := (rank - float64(cum)) / float64(b.Count)
			return lower + (b.UpperBound-lower)*frac
		}
		cum += b.Count
		lower = b.UpperBound
	}
	return lower
}
