package obs

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sync"
	"time"
)

// BreachRule is one threshold a BreachWatcher checks against every
// recorder sample. Exactly one of the two thresholds should be set:
//
//   - P99Above fires when the metric's histogram window p99 exceeds the
//     threshold (ignoring empty windows) — "p99 spiked past 5ms".
//   - DeltaAtLeast fires when the metric's counter grew by at least that
//     much within one window — "a worker lease expired".
type BreachRule struct {
	Metric       string
	P99Above     float64
	DeltaAtLeast int64
}

// BreachOptions configures a BreachWatcher.
type BreachOptions struct {
	// Dir receives one subdirectory per capture (required).
	Dir string
	// MinInterval rate-limits captures: breaches within MinInterval of
	// the last capture are counted but not captured (default 1m).
	MinInterval time.Duration
	// CPUProfile is how long the CPU profiler runs per capture (default
	// 250ms; negative disables the CPU profile, heap-only).
	CPUProfile time.Duration
	// Now injects a clock for tests (default time.Now).
	Now func() time.Time
	// Log receives one record per capture and per suppressed breach.
	Log *slog.Logger
}

// BreachReason is the reason.json document written with every capture:
// which rule fired, on what observed value, at which sample.
type BreachReason struct {
	Metric    string  `json:"metric"`
	Kind      string  `json:"kind"` // "p99" or "delta"
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	SampleSeq int64   `json:"sample_seq"`
	UnixMs    int64   `json:"t_ms"`
}

// BreachWatcher turns "the p99 spiked at 14:32" into an artifact: hooked
// into a Recorder, it checks each sample against its rules and on breach
// writes a capture directory — cpu.pprof, heap.pprof, the metrics-history
// window (history.json) and reason.json — into the artifact store dir.
// Captures are rate-limited (MinInterval) so a sustained breach produces
// one profile per interval, not one per sample; suppressed breaches are
// still counted. Capture runs synchronously inside the sampling tick —
// sampling pauses for the CPU-profile window, which is fine at one
// capture a minute, and means a manual Sample() call returns with the
// capture on disk (check.sh relies on that).
type BreachWatcher struct {
	rules []BreachRule
	opts  BreachOptions

	mu          sync.Mutex
	lastCapture time.Time
	hasCapture  bool
	breaches    int64
	captures    int64
}

// NewBreachWatcher attaches a watcher to rec. Returns nil (a safe no-op)
// when rec is nil, no rules are given, or Dir is empty.
func NewBreachWatcher(rec *Recorder, rules []BreachRule, opts BreachOptions) *BreachWatcher {
	if rec == nil || len(rules) == 0 || opts.Dir == "" {
		return nil
	}
	if opts.MinInterval <= 0 {
		opts.MinInterval = time.Minute
	}
	if opts.CPUProfile == 0 {
		opts.CPUProfile = 250 * time.Millisecond
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	w := &BreachWatcher{rules: rules, opts: opts}
	rec.OnSample(func(s RecorderSample) { w.check(rec, s) })
	return w
}

// Breaches returns how many rule breaches have been seen (captured or
// suppressed); Captures how many produced a directory. Nil-safe.
func (w *BreachWatcher) Breaches() int64 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.breaches
}

func (w *BreachWatcher) Captures() int64 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.captures
}

// check evaluates the rules against one sample and captures on the first
// breach found.
func (w *BreachWatcher) check(rec *Recorder, s RecorderSample) {
	reason, ok := w.breached(s)
	if !ok {
		return
	}
	now := w.opts.Now()
	w.mu.Lock()
	w.breaches++
	if w.hasCapture && now.Sub(w.lastCapture) < w.opts.MinInterval {
		w.mu.Unlock()
		if l := w.opts.Log; l != nil {
			l.Debug("breach suppressed by rate limit", "metric", reason.Metric, "value", reason.Value)
		}
		return
	}
	w.lastCapture = now
	w.hasCapture = true
	w.captures++
	seq := w.captures
	w.mu.Unlock()

	dir := filepath.Join(w.opts.Dir, fmt.Sprintf("breach-%03d-%s", seq, promName(reason.Metric)))
	if err := w.capture(rec, dir, reason); err != nil {
		if l := w.opts.Log; l != nil {
			l.Warn("breach capture failed", "dir", dir, "err", err)
		}
		return
	}
	if l := w.opts.Log; l != nil {
		l.Warn("breach captured", "metric", reason.Metric, "kind", reason.Kind,
			"value", reason.Value, "threshold", reason.Threshold, "dir", dir)
	}
}

// breached returns the first rule the sample violates.
func (w *BreachWatcher) breached(s RecorderSample) (BreachReason, bool) {
	for _, rule := range w.rules {
		if rule.P99Above > 0 {
			for _, h := range s.Hists {
				if h.Name == rule.Metric && h.Count > 0 && h.P99 > rule.P99Above {
					return BreachReason{
						Metric: rule.Metric, Kind: "p99",
						Value: h.P99, Threshold: rule.P99Above,
						SampleSeq: s.Seq, UnixMs: s.UnixMs,
					}, true
				}
			}
		}
		if rule.DeltaAtLeast > 0 {
			for _, c := range s.Counters {
				if c.Name == rule.Metric && c.Delta >= rule.DeltaAtLeast {
					return BreachReason{
						Metric: rule.Metric, Kind: "delta",
						Value: float64(c.Delta), Threshold: float64(rule.DeltaAtLeast),
						SampleSeq: s.Seq, UnixMs: s.UnixMs,
					}, true
				}
			}
		}
	}
	return BreachReason{}, false
}

// capture writes one breach directory. Partial failures degrade rather
// than abort: a CPU profiler already claimed by the process (hlscong
// -cpuprofile) skips cpu.pprof but still writes the heap profile, history
// and reason.
func (w *BreachWatcher) capture(rec *Recorder, dir string, reason BreachReason) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if data, err := json.MarshalIndent(reason, "", "  "); err == nil {
		os.WriteFile(filepath.Join(dir, "reason.json"), append(data, '\n'), 0o644)
	}
	if f, err := os.Create(filepath.Join(dir, "history.json")); err == nil {
		rec.WriteHistoryJSON(f)
		f.Close()
	}
	if w.opts.CPUProfile > 0 {
		if f, err := os.Create(filepath.Join(dir, "cpu.pprof")); err == nil {
			if err := pprof.StartCPUProfile(f); err == nil {
				time.Sleep(w.opts.CPUProfile)
				pprof.StopCPUProfile()
			} else if l := w.opts.Log; l != nil {
				l.Debug("cpu profile unavailable", "err", err)
			}
			f.Close()
		}
	}
	f, err := os.Create(filepath.Join(dir, "heap.pprof"))
	if err != nil {
		return err
	}
	defer f.Close()
	return pprof.WriteHeapProfile(f)
}
