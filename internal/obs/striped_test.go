package obs

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// TestStripedSnapshotEquivalence is the striping contract: a recorded
// operation sequence applied to a plain registry and to a striped one —
// the striped ops scattered across stripes — must yield byte-identical
// Snapshots. Readers (exporters, the debug endpoint, congload's report)
// must never be able to tell that a series was striped. Observation
// values are integers so float sums merge exactly regardless of the
// per-stripe addition order.
func TestStripedSnapshotEquivalence(t *testing.T) {
	const stripes = 7
	rng := rand.New(rand.NewSource(99))

	plain := NewRegistry()
	striped := NewRegistry()
	pc := plain.Counter("eq.count")
	sc := striped.StripedCounter("eq.count", stripes)
	ph := plain.Histogram("eq.hist", SmallCountBuckets)
	sh := striped.StripedHistogram("eq.hist", SmallCountBuckets, stripes)
	pg := plain.Gauge("eq.gauge")
	sg := striped.StripedGauge("eq.gauge", stripes)

	for i := 0; i < 5000; i++ {
		switch rng.Intn(3) {
		case 0:
			n := int64(rng.Intn(10))
			pc.Add(n)
			sc.Stripe(rng.Intn(stripes)).Add(n)
		case 1:
			v := float64(rng.Intn(40))
			ph.Observe(v)
			sh.Stripe(rng.Intn(stripes)).Observe(v)
		case 2:
			// Gauges merge by sum, so equivalence holds when every write
			// lands on one stripe: sum-of-stripes == last write.
			v := float64(rng.Intn(100))
			pg.Set(v)
			sg.Stripe(3).Set(v)
		}
	}

	want, got := plain.Snapshot(), striped.Snapshot()
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("striped snapshot diverges from plain:\nplain:   %+v\nstriped: %+v", want, got)
	}
}

// TestStripedHintPathCounts exercises the per-goroutine-hint writers: the
// merged totals must be exact however the hints scatter the increments.
func TestStripedHintPathCounts(t *testing.T) {
	r := NewRegistry()
	c := r.StripedCounter("hint.count", DefaultStripes())
	h := r.StripedHistogram("hint.hist", RatioBuckets, DefaultStripes())
	const goroutines, each = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*each {
		t.Fatalf("striped counter total %d, want %d", got, goroutines*each)
	}
	snap := r.Snapshot()
	if v, ok := snap.Counter("hint.count"); !ok || v != goroutines*each {
		t.Fatalf("snapshot counter %d (ok=%v), want %d", v, ok, goroutines*each)
	}
	hs := snap.Histogram("hint.hist")
	if hs == nil || hs.Count != goroutines*each || hs.Min != 0.5 || hs.Max != 0.5 {
		t.Fatalf("snapshot histogram %+v, want count=%d min=max=0.5", hs, goroutines*each)
	}
}

// TestStripedConcurrency hammers every striped surface from many
// goroutines while snapshots race, for the race detector's benefit.
func TestStripedConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.StripedCounter("conc.count", 4)
			h := r.StripedHistogram("conc.hist", SmallCountBuckets, 4)
			g := r.StripedGauge("conc.gauge", 4)
			for i := 0; i < 500; i++ {
				c.Stripe(w).Inc()
				c.Add(2)
				h.Stripe(w).Observe(float64(i % 16))
				h.Observe(float64(i % 16))
				g.Stripe(w).Set(float64(i))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			r.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	if got, want := r.StripedCounter("conc.count", 4).Value(), int64(workers*500*3); got != want {
		t.Fatalf("concurrent striped counter %d, want %d", got, want)
	}
}

// TestStripedNilSafety: the nil registry and nil handles must accept every
// call, like the rest of the package.
func TestStripedNilSafety(t *testing.T) {
	var r *Registry
	c := r.StripedCounter("x", 4)
	c.Inc()
	c.Add(3)
	c.Stripe(1).Inc()
	if c.Value() != 0 {
		t.Fatal("nil striped counter has a value")
	}
	h := r.StripedHistogram("x", RatioBuckets, 4)
	h.Observe(1)
	h.Stripe(0).Observe(1)
	g := r.StripedGauge("x", 4)
	g.Stripe(0).Set(1)
	if g.Value() != 0 {
		t.Fatal("nil striped gauge has a value")
	}
}

// TestStripeOutOfRangeWraps: Stripe indexes beyond the stripe count must
// wrap, not panic — shard counts and stripe counts are resolved
// independently by different layers.
func TestStripeOutOfRangeWraps(t *testing.T) {
	r := NewRegistry()
	c := r.StripedCounter("wrap", 2)
	c.Stripe(0).Inc()
	c.Stripe(5).Inc()
	c.Stripe(-1).Inc()
	if got := c.Value(); got != 3 {
		t.Fatalf("wrapped stripes counted %d, want 3", got)
	}
}
