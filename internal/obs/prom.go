package obs

import (
	"bufio"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders a metrics snapshot in the Prometheus text
// exposition format (version 0.0.4), so any standard scraper can pull
// congserve or a fleet coordinator without a sidecar:
//
//	# TYPE serve_requests counter
//	serve_requests 1234
//	# TYPE serve_latency_us histogram
//	serve_latency_us_bucket{le="25"} 10
//	...
//	serve_latency_us_bucket{le="+Inf"} 400
//	serve_latency_us_sum 81234
//	serve_latency_us_count 400
//
// Metric names are sanitized to the Prometheus charset (dots become
// underscores); histogram buckets are emitted cumulatively, as the format
// requires, even though snapshots store per-bucket counts. Output is
// deterministic: the snapshot is already name-sorted, and a post-sanitize
// name collision keeps the first series and drops the rest rather than
// emitting a duplicate an ingester would reject.
func WritePrometheus(w io.Writer, snap Snapshot) error {
	bw := bufio.NewWriter(w)
	seen := make(map[string]bool)
	for _, c := range snap.Counters {
		name := promName(c.Name)
		if seen[name] {
			continue
		}
		seen[name] = true
		bw.WriteString("# TYPE " + name + " counter\n")
		bw.WriteString(name + " " + strconv.FormatInt(c.Value, 10) + "\n")
	}
	for _, g := range snap.Gauges {
		name := promName(g.Name)
		if seen[name] {
			continue
		}
		seen[name] = true
		bw.WriteString("# TYPE " + name + " gauge\n")
		bw.WriteString(name + " " + promFloat(g.Value) + "\n")
	}
	for _, h := range snap.Histograms {
		name := promName(h.Name)
		if seen[name] {
			continue
		}
		seen[name] = true
		bw.WriteString("# TYPE " + name + " histogram\n")
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			le := "+Inf"
			if !math.IsInf(b.UpperBound, 1) {
				le = promFloat(b.UpperBound)
			}
			bw.WriteString(name + `_bucket{le="` + le + `"} ` + strconv.FormatInt(cum, 10) + "\n")
		}
		bw.WriteString(name + "_sum " + promFloat(h.Sum) + "\n")
		bw.WriteString(name + "_count " + strconv.FormatInt(h.Count, 10) + "\n")
	}
	return bw.Flush()
}

// promName maps a dotted metric name onto the Prometheus charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		if i == 0 && r >= '0' && r <= '9' {
			b.WriteByte('_') // leading digit: prefix rather than replace
			b.WriteRune(r)
			continue
		}
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9')
		if !ok {
			b.WriteByte('_')
			continue
		}
		b.WriteRune(r)
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// promFloat renders a float sample value. Non-finite values use the
// format's spellings (+Inf, -Inf, NaN).
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
