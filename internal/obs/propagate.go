package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// Cross-process trace propagation. The coordinator of a distributed build
// mints one trace ID and advertises it — with the span ID of its root
// build span — on every lease response. Workers that see the headers
// record their cell's spans into a private tracer and ship the finished
// batch back piggybacked on the completion upload; the coordinator splices
// them into its own tracer (Tracer.Import) so a single Chrome trace shows
// the whole fleet, one lane per worker.
const (
	// HeaderTrace carries the fleet-wide trace ID (response header on
	// /fleet/lease).
	HeaderTrace = "X-Cong-Trace"
	// HeaderSpan carries the coordinator's root span ID, the parent for
	// every shipped worker span.
	HeaderSpan = "X-Cong-Span"
	// HeaderSpanBytes, on a completion upload, gives the byte length of
	// the encoded SpanBatch prefixed to the artifact payload.
	HeaderSpanBytes = "X-Cong-Span-Bytes"
)

// MaxSpanBatchBytes bounds a shipped span batch. A batch past the bound is
// dropped by the sender (and ignored by a defensive receiver) — losing a
// trace lane must never fail a build or bloat a completion upload.
const MaxSpanBatchBytes = 1 << 20

// TraceContext identifies the distributed trace a piece of work belongs
// to: the fleet-wide trace ID and the span to parent remote spans under.
// The zero value means "not traced".
type TraceContext struct {
	TraceID string
	SpanID  int64
}

// Valid reports whether the context identifies a trace.
func (tc TraceContext) Valid() bool { return tc.TraceID != "" }

// SetHeader writes the context's propagation headers. Invalid contexts
// write nothing, so untraced builds stay byte-identical on the wire.
func (tc TraceContext) SetHeader(h http.Header) {
	if !tc.Valid() {
		return
	}
	h.Set(HeaderTrace, tc.TraceID)
	h.Set(HeaderSpan, strconv.FormatInt(tc.SpanID, 10))
}

// TraceContextFromHeader extracts a propagated context, returning the zero
// value when the headers are absent or malformed. Allocation-free for the
// (common) untraced case — the disabled-path guard pins this.
func TraceContextFromHeader(h http.Header) TraceContext {
	id := h.Get(HeaderTrace)
	if id == "" {
		return TraceContext{}
	}
	span, err := strconv.ParseInt(h.Get(HeaderSpan), 10, 64)
	if err != nil || span <= 0 {
		return TraceContext{}
	}
	return TraceContext{TraceID: id, SpanID: span}
}

// SpanBatch is the wire form of one process's finished spans: who recorded
// them (Proc becomes the lane name), under which trace, and the wall-clock
// instant of the sender's epoch so the receiver can shift the offsets into
// its own timebase.
type SpanBatch struct {
	TraceID     string     `json:"trace"`
	Proc        string     `json:"proc"`
	EpochUnixNs int64      `json:"epoch_ns"`
	Spans       []wireSpan `json:"spans"`
}

// wireSpan mirrors SpanData with explicit attr typing: JSON alone would
// collapse int64 attrs to float64 on the way back.
type wireSpan struct {
	ID       int64       `json:"id"`
	ParentID int64       `json:"parent,omitempty"`
	RootID   int64       `json:"root"`
	Name     string      `json:"name"`
	StartNs  int64       `json:"start_ns"`
	EndNs    int64       `json:"end_ns"`
	Attrs    []wireAttr  `json:"attrs,omitempty"`
	Events   []wireEvent `json:"events,omitempty"`
}

type wireEvent struct {
	Name  string     `json:"name"`
	AtNs  int64      `json:"at_ns"`
	Attrs []wireAttr `json:"attrs,omitempty"`
}

// wireAttr carries exactly one of the four supported value kinds in its
// own field, preserving the dynamic type across the wire.
type wireAttr struct {
	K string   `json:"k"`
	S *string  `json:"s,omitempty"`
	I *int64   `json:"i,omitempty"`
	F *float64 `json:"f,omitempty"`
	B *bool    `json:"b,omitempty"`
}

func toWireAttrs(attrs []Attr) []wireAttr {
	if len(attrs) == 0 {
		return nil
	}
	out := make([]wireAttr, 0, len(attrs))
	for _, a := range attrs {
		w := wireAttr{K: a.Key}
		switch v := a.Value.(type) {
		case string:
			w.S = &v
		case int64:
			w.I = &v
		case int:
			x := int64(v)
			w.I = &x
		case float64:
			w.F = &v
		case bool:
			w.B = &v
		default:
			s := fmt.Sprint(v)
			w.S = &s
		}
		out = append(out, w)
	}
	return out
}

func fromWireAttrs(attrs []wireAttr) []Attr {
	if len(attrs) == 0 {
		return nil
	}
	out := make([]Attr, 0, len(attrs))
	for _, w := range attrs {
		a := Attr{Key: w.K}
		switch {
		case w.S != nil:
			a.Value = *w.S
		case w.I != nil:
			a.Value = *w.I
		case w.F != nil:
			a.Value = *w.F
		case w.B != nil:
			a.Value = *w.B
		}
		out = append(out, a)
	}
	return out
}

// EncodeSpanBatch serializes the tracer's finished spans for shipping
// under the given trace. It returns nil when there is nothing to ship —
// no tracer, no spans, or an encoding larger than MaxSpanBatchBytes (a
// dropped lane, not an error: tracing must never fail the work it rides
// on).
func EncodeSpanBatch(t *Tracer, traceID, proc string) []byte {
	spans := t.Spans()
	if len(spans) == 0 {
		return nil
	}
	epoch, ok := t.EpochWall()
	if !ok {
		return nil
	}
	batch := SpanBatch{
		TraceID:     traceID,
		Proc:        proc,
		EpochUnixNs: epoch.UnixNano(),
		Spans:       make([]wireSpan, 0, len(spans)),
	}
	for _, s := range spans {
		ws := wireSpan{
			ID:       s.ID,
			ParentID: s.ParentID,
			RootID:   s.RootID,
			Name:     s.Name,
			StartNs:  int64(s.Start),
			EndNs:    int64(s.End),
			Attrs:    toWireAttrs(s.Attrs),
		}
		for _, e := range s.Events {
			ws.Events = append(ws.Events, wireEvent{Name: e.Name, AtNs: int64(e.At), Attrs: toWireAttrs(e.Attrs)})
		}
		batch.Spans = append(batch.Spans, ws)
	}
	data, err := json.Marshal(batch)
	if err != nil || len(data) > MaxSpanBatchBytes {
		return nil
	}
	return data
}

// DecodeSpanBatch parses an encoded batch back into SpanData offsets
// (relative to the sender's epoch) plus the batch envelope.
func DecodeSpanBatch(data []byte) (SpanBatch, []SpanData, error) {
	var batch SpanBatch
	if len(data) > MaxSpanBatchBytes {
		return batch, nil, fmt.Errorf("obs: span batch %d bytes exceeds cap %d", len(data), MaxSpanBatchBytes)
	}
	if err := json.Unmarshal(data, &batch); err != nil {
		return batch, nil, fmt.Errorf("obs: decoding span batch: %w", err)
	}
	spans := make([]SpanData, 0, len(batch.Spans))
	for _, ws := range batch.Spans {
		s := SpanData{
			ID:       ws.ID,
			ParentID: ws.ParentID,
			RootID:   ws.RootID,
			Name:     ws.Name,
			Start:    time.Duration(ws.StartNs),
			End:      time.Duration(ws.EndNs),
			Attrs:    fromWireAttrs(ws.Attrs),
		}
		for _, we := range ws.Events {
			s.Events = append(s.Events, EventData{Name: we.Name, At: time.Duration(we.AtNs), Attrs: fromWireAttrs(we.Attrs)})
		}
		spans = append(spans, s)
	}
	return batch, spans, nil
}
