package obs

import (
	"fmt"
	"net"
	"net/http"
)

// Handler returns the observer's debug endpoint, in the spirit of
// expvar's /debug/vars:
//
//	/debug/metrics          — JSON metrics snapshot (Snapshot schema)
//	/debug/metrics/prom     — the same snapshot in Prometheus text
//	                          exposition format (version 0.0.4), for
//	                          standard scrapers
//	/debug/metrics/history  — the attached Recorder's ring buffer
//	                          (RecorderHistory schema): rates, deltas and
//	                          window quantiles over time
//	/debug/trace    — Chrome trace_event JSON of the spans finished so far
//	/debug/vars     — flat expvar-style name→value object (counters and
//	                  gauges only), for scrapers that want one number per
//	                  line of jq
//
// Handlers snapshot on every request, so a long dataset build can be
// watched live. Nil-safe: a nil observer serves empty documents.
func (o *Observer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		o.WriteMetricsJSON(w)
	})
	mux.HandleFunc("/debug/metrics/prom", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, o.Metrics().Snapshot())
	})
	mux.HandleFunc("/debug/metrics/history", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var rec *Recorder
		if o != nil {
			rec = o.Rec
		}
		rec.WriteHistoryJSON(w)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var t *Tracer
		if o != nil {
			t = o.Trace
		}
		WriteChromeTrace(w, t.Spans())
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		snap := o.Metrics().Snapshot()
		fmt.Fprint(w, "{")
		sep := ""
		for _, c := range snap.Counters {
			fmt.Fprintf(w, "%s\n  %s: %d", sep, jsonString(c.Name), c.Value)
			sep = ","
		}
		for _, g := range snap.Gauges {
			fmt.Fprintf(w, "%s\n  %s: %s", sep, jsonString(g.Name), jsonValue(g.Value))
			sep = ","
		}
		fmt.Fprint(w, "\n}\n")
	})
	return mux
}

// Serve exposes the debug endpoint on addr (e.g. "localhost:6060") in a
// background goroutine, returning the bound listener address — the ":0"
// form picks a free port, which the endpoint tests rely on. The server
// lives until the process exits; long runs are its whole point.
func (o *Observer) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: debug endpoint: %w", err)
	}
	srv := &http.Server{Handler: o.Handler()}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}
