package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Fixed bucket sets. Histograms in this package always use fixed bounds
// (see DESIGN.md §8): the hot path is then one binary search plus one
// atomic increment — no allocation, no lock, no rebalancing — and two
// snapshots of the same metric are mergeable and byte-comparable.
var (
	// DefaultDurationBuckets is the millisecond scale for stage and cell
	// durations: sub-millisecond HLS stages up to minute-long full builds.
	DefaultDurationBuckets = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000, 30000, 60000}
	// RatioBuckets covers [0, 1] quantities such as accept and hit rates.
	RatioBuckets = []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1}
	// SmallCountBuckets covers small integer counts such as router
	// negotiation iterations or retry attempts.
	SmallCountBuckets = []float64{1, 2, 3, 4, 5, 8, 12, 16, 24, 32}
	// LatencyMicrosBuckets is the microsecond scale of the serving path:
	// sub-window fast turnarounds up to second-long outliers.
	LatencyMicrosBuckets = []float64{25, 50, 100, 200, 400, 800, 1600, 3200, 6400, 12800, 25600, 51200, 102400, 409600, 1638400}
	// BatchRowsBuckets covers coalesced-batch row counts (powers of two up
	// to the largest sensible size cap).
	BatchRowsBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048}
)

// Counter is a monotonically increasing count. The zero value is ready;
// all methods are atomic and nil-safe.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins float value. All methods are atomic and
// nil-safe.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last stored value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution with atomic observation.
// bounds[i] is the inclusive upper edge of bucket i; one overflow bucket
// catches everything above the last bound. Sum, count, min and max are
// tracked exactly (CAS loops on the float bits), so snapshots report a
// true mean alongside the bucketed shape.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last = overflow
	count   atomic.Int64
	sumBits atomic.Uint64
	minBits atomic.Uint64 // +Inf until first observation
	maxBits atomic.Uint64 // -Inf until first observation
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	h := &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one value. Nil-safe, lock-free, allocation-free.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(1)
	h.count.Add(1)
	addFloat(&h.sumBits, v)
	casLess(&h.minBits, v)
	casMore(&h.maxBits, v)
}

// addFloat atomically adds v to the float64 stored in bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// casLess lowers the stored float to v when v is smaller.
func casLess(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if v >= math.Float64frombits(old) || bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// casMore raises the stored float to v when v is larger.
func casMore(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if v <= math.Float64frombits(old) || bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Registry holds named metrics. Registration (the first use of a name)
// takes a mutex; every subsequent operation on the returned handle is
// atomic. The zero value is not usable — construct with NewRegistry.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	// Striped variants (see striped.go). A name is registered as either
	// plain or striped, never both; Snapshot merges each striped metric
	// into a single series under its name, so readers can't tell which
	// representation a writer chose.
	stripedCounters map[string]*StripedCounter
	stripedGauges   map[string]*StripedGauge
	stripedHists    map[string]*StripedHistogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:        make(map[string]*Counter),
		gauges:          make(map[string]*Gauge),
		hists:           make(map[string]*Histogram),
		stripedCounters: make(map[string]*StripedCounter),
		stripedGauges:   make(map[string]*StripedGauge),
		stripedHists:    make(map[string]*StripedHistogram),
	}
}

// Counter returns the named counter, registering it on first use.
// Nil-safe: a nil registry returns a nil handle whose methods no-op.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, registering it on first use. Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, registering it with bounds on
// first use (later calls keep the original bounds). Nil-safe.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// CounterSnap is one counter in a snapshot.
type CounterSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnap is one gauge in a snapshot.
type GaugeSnap struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// BucketSnap is one histogram bucket in a snapshot: the count of
// observations at or below the upper bound (and above the previous one).
// The overflow bucket carries +Inf, serialized by the JSON writer as the
// string "+Inf".
type BucketSnap struct {
	UpperBound float64 `json:"le"`
	Count      int64   `json:"count"`
}

// HistogramSnap is one histogram in a snapshot.
type HistogramSnap struct {
	Name    string       `json:"name"`
	Count   int64        `json:"count"`
	Sum     float64      `json:"sum"`
	Min     float64      `json:"min"`
	Max     float64      `json:"max"`
	Mean    float64      `json:"mean"`
	Buckets []BucketSnap `json:"buckets"`
}

// Snapshot is a point-in-time view of every registered metric, each
// section sorted by name so exports are deterministic.
type Snapshot struct {
	Counters   []CounterSnap   `json:"counters"`
	Gauges     []GaugeSnap     `json:"gauges"`
	Histograms []HistogramSnap `json:"histograms"`
}

// Counter returns the named counter's value in the snapshot (0, false when
// absent).
func (s Snapshot) Counter(name string) (int64, bool) {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}

// Gauge returns the named gauge's value in the snapshot.
func (s Snapshot) Gauge(name string) (float64, bool) {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value, true
		}
	}
	return 0, false
}

// Histogram returns the named histogram in the snapshot (nil when absent).
func (s Snapshot) Histogram(name string) *HistogramSnap {
	for i := range s.Histograms {
		if s.Histograms[i].Name == name {
			return &s.Histograms[i]
		}
	}
	return nil
}

// Snapshot captures every registered metric. Observations racing the
// snapshot land in either this one or the next — each individual value is
// read atomically. Nil-safe: a nil registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	if r == nil {
		return snap
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	stripedCounters := make(map[string]*StripedCounter, len(r.stripedCounters))
	for k, v := range r.stripedCounters {
		stripedCounters[k] = v
	}
	stripedGauges := make(map[string]*StripedGauge, len(r.stripedGauges))
	for k, v := range r.stripedGauges {
		stripedGauges[k] = v
	}
	stripedHists := make(map[string]*StripedHistogram, len(r.stripedHists))
	for k, v := range r.stripedHists {
		stripedHists[k] = v
	}
	r.mu.Unlock()

	for name, c := range counters {
		snap.Counters = append(snap.Counters, CounterSnap{Name: name, Value: c.Value()})
	}
	for name, c := range stripedCounters {
		snap.Counters = append(snap.Counters, CounterSnap{Name: name, Value: c.Value()})
	}
	sort.Slice(snap.Counters, func(i, j int) bool { return snap.Counters[i].Name < snap.Counters[j].Name })
	for name, g := range gauges {
		snap.Gauges = append(snap.Gauges, GaugeSnap{Name: name, Value: g.Value()})
	}
	for name, g := range stripedGauges {
		snap.Gauges = append(snap.Gauges, GaugeSnap{Name: name, Value: g.Value()})
	}
	sort.Slice(snap.Gauges, func(i, j int) bool { return snap.Gauges[i].Name < snap.Gauges[j].Name })
	for name, h := range hists {
		hs := HistogramSnap{
			Name:  name,
			Count: h.count.Load(),
			Sum:   math.Float64frombits(h.sumBits.Load()),
		}
		if hs.Count > 0 {
			hs.Min = math.Float64frombits(h.minBits.Load())
			hs.Max = math.Float64frombits(h.maxBits.Load())
			hs.Mean = hs.Sum / float64(hs.Count)
		}
		for i := range h.buckets {
			ub := math.Inf(1)
			if i < len(h.bounds) {
				ub = h.bounds[i]
			}
			hs.Buckets = append(hs.Buckets, BucketSnap{UpperBound: ub, Count: h.buckets[i].Load()})
		}
		snap.Histograms = append(snap.Histograms, hs)
	}
	for name, h := range stripedHists {
		snap.Histograms = append(snap.Histograms, h.merged(name))
	}
	sort.Slice(snap.Histograms, func(i, j int) bool { return snap.Histograms[i].Name < snap.Histograms[j].Name })
	return snap
}
