package obs

import (
	"bytes"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestTraceContextHeaderRoundTrip(t *testing.T) {
	h := make(http.Header)
	tc := TraceContext{TraceID: "deadbeefcafe0123", SpanID: 7}
	tc.SetHeader(h)
	if got := TraceContextFromHeader(h); got != tc {
		t.Errorf("round trip = %+v, want %+v", got, tc)
	}

	// Invalid contexts write nothing.
	h2 := make(http.Header)
	TraceContext{}.SetHeader(h2)
	if len(h2) != 0 {
		t.Errorf("zero context wrote headers: %v", h2)
	}

	// Malformed span IDs are rejected whole.
	h3 := make(http.Header)
	h3.Set(HeaderTrace, "abc")
	h3.Set(HeaderSpan, "not-a-number")
	if got := TraceContextFromHeader(h3); got.Valid() {
		t.Errorf("malformed header parsed as %+v", got)
	}
}

// The untraced path — every fleet request when the coordinator has no
// tracer — must not allocate while checking for propagation headers.
func TestTraceContextFromHeaderZeroAlloc(t *testing.T) {
	h := make(http.Header)
	h.Set("Content-Type", "application/octet-stream")
	if avg := testing.AllocsPerRun(100, func() {
		if tc := TraceContextFromHeader(h); tc.Valid() {
			t.Fatal("unexpected trace context")
		}
	}); avg != 0 {
		t.Errorf("untraced header check: %v allocs/op, want 0", avg)
	}
}

func TestSpanBatchRoundTrip(t *testing.T) {
	tr := NewTracer()
	base := time.Date(2026, 8, 1, 9, 0, 0, 0, time.UTC)
	step := 0
	tr.SetClock(func() time.Time { step++; return base.Add(time.Duration(step) * time.Millisecond) })

	root := tr.start(nil, "flow", []Attr{String("module", "m"), Int("run", 3)})
	child := root.Child("place", Float("score", 1.5), Bool("ok", true))
	child.Event("retry", Int("attempt", 2))
	child.End()
	root.End()

	data := EncodeSpanBatch(tr, "trace123", "workerA")
	if data == nil {
		t.Fatal("encode returned nil for a non-empty tracer")
	}
	batch, spans, err := DecodeSpanBatch(data)
	if err != nil {
		t.Fatal(err)
	}
	if batch.TraceID != "trace123" || batch.Proc != "workerA" {
		t.Errorf("envelope = %+v", batch)
	}
	if epoch, _ := tr.EpochWall(); batch.EpochUnixNs != epoch.UnixNano() {
		t.Errorf("epoch = %d, want %d", batch.EpochUnixNs, epoch.UnixNano())
	}
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Spans arrive in completion order: child first.
	got := spans[0]
	if got.Name != "place" || got.ParentID != spans[1].ID || got.RootID != spans[1].ID {
		t.Errorf("child span = %+v", got)
	}
	// Attr dynamic types survive the wire — int64 stays int64.
	want := []Attr{Float("score", 1.5), Bool("ok", true)}
	for i, a := range got.Attrs {
		if a != want[i] {
			t.Errorf("attr[%d] = %#v, want %#v", i, a, want[i])
		}
	}
	if len(got.Events) != 1 || got.Events[0].Name != "retry" || got.Events[0].Attrs[0] != Int("attempt", 2) {
		t.Errorf("events = %+v", got.Events)
	}
	if spans[1].Attrs[1] != Int("run", 3) {
		t.Errorf("root attr = %#v, want int64 3", spans[1].Attrs[1])
	}
}

func TestEncodeSpanBatchEmpty(t *testing.T) {
	if EncodeSpanBatch(nil, "t", "p") != nil {
		t.Error("nil tracer must encode to nil")
	}
	if EncodeSpanBatch(NewTracer(), "t", "p") != nil {
		t.Error("empty tracer must encode to nil")
	}
}

func TestDecodeSpanBatchRejects(t *testing.T) {
	if _, _, err := DecodeSpanBatch([]byte("{broken")); err == nil {
		t.Error("malformed JSON must fail to decode")
	}
	big := bytes.Repeat([]byte("x"), MaxSpanBatchBytes+1)
	if _, _, err := DecodeSpanBatch(big); err == nil || !strings.Contains(err.Error(), "cap") {
		t.Errorf("oversize batch error = %v, want cap violation", err)
	}
}

// Import remaps IDs, re-parents batch roots, shifts times and tags lanes.
func TestTracerImport(t *testing.T) {
	local := NewTracer()
	base := time.Date(2026, 8, 1, 9, 0, 0, 0, time.UTC)
	n := 0
	local.SetClock(func() time.Time { n++; return base.Add(time.Duration(n) * time.Second) })
	root := local.start(nil, "fleet.build", nil)

	remote := []SpanData{
		{ID: 1, RootID: 1, Name: "flow", Start: 10 * time.Millisecond, End: 90 * time.Millisecond},
		{ID: 2, ParentID: 1, RootID: 1, Name: "place", Start: 20 * time.Millisecond, End: 40 * time.Millisecond,
			Events: []EventData{{Name: "e", At: 30 * time.Millisecond}}},
	}
	local.Import(remote, "workerA", root, 2*time.Second)
	root.End()

	spans := local.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	var flow, place, build *SpanData
	for i := range spans {
		switch spans[i].Name {
		case "flow":
			flow = &spans[i]
		case "place":
			place = &spans[i]
		case "fleet.build":
			build = &spans[i]
		}
	}
	if flow == nil || place == nil || build == nil {
		t.Fatalf("missing spans: %+v", spans)
	}
	if flow.ParentID != build.ID {
		t.Errorf("batch root parent = %d, want coordinator span %d", flow.ParentID, build.ID)
	}
	if place.ParentID != flow.ID || place.RootID != flow.ID {
		t.Errorf("in-batch hierarchy broken: %+v under flow %d", place, flow.ID)
	}
	if flow.Proc != "workerA" || place.Proc != "workerA" {
		t.Errorf("lanes = %q/%q, want workerA", flow.Proc, place.Proc)
	}
	if flow.Start != 2*time.Second+10*time.Millisecond {
		t.Errorf("shifted start = %v", flow.Start)
	}
	if place.Events[0].At != 2*time.Second+30*time.Millisecond {
		t.Errorf("shifted event = %v", place.Events[0].At)
	}

	// Negative shifted times clamp to zero instead of going negative.
	local.Import([]SpanData{{ID: 9, RootID: 9, Name: "early", Start: time.Millisecond, End: 2 * time.Millisecond}},
		"workerB", root, -time.Hour)
	for _, s := range local.Spans() {
		if s.Name == "early" && (s.Start < 0 || s.End < 0) {
			t.Errorf("clamp failed: %+v", s)
		}
	}
}

// A stitched trace renders imported lanes as their own pid with a
// process_name record, while a purely local span set keeps the exact
// pre-stitching bytes (the golden file pins that separately).
func TestChromeTraceLanes(t *testing.T) {
	tr := NewTracer()
	base := time.Date(2026, 8, 1, 9, 0, 0, 0, time.UTC)
	n := 0
	tr.SetClock(func() time.Time { n++; return base.Add(time.Duration(n) * time.Second) })
	root := tr.start(nil, "fleet.build", nil)
	tr.Import([]SpanData{{ID: 1, RootID: 1, Name: "flow", Start: time.Second, End: 2 * time.Second}}, "workerA", root, 0)
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`{"name":"process_name","ph":"M","pid":2,"args":{"name":"workerA"}}`,
		`"pid":2`,
		`"pid":1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stitched trace missing %q\n%s", want, out)
		}
	}
}
