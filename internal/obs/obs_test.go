package obs

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/parallel"
)

// TestNilSafety exercises every entry point on nil receivers: none may
// panic, and none may record anything.
func TestNilSafety(t *testing.T) {
	var o *Observer
	if o.Tracing() {
		t.Error("nil observer claims to trace")
	}
	if o.Metrics() != nil || o.Logger() != nil {
		t.Error("nil observer returned live sinks")
	}
	o.Count("c", 1)
	o.SetGauge("g", 1)
	o.ObserveMs("h", time.Second)
	o.Observe("h2", RatioBuckets, 0.5)
	if sp := o.Start("root"); sp != nil {
		t.Error("nil observer started a span")
	}

	var s *Span
	s.SetAttr(String("k", "v"))
	s.Event("e")
	s.SetError(context.Canceled)
	s.End()
	if c := s.Child("child"); c != nil {
		t.Error("nil span produced a child")
	}

	var tr *Tracer
	if tr.Spans() != nil || tr.Len() != 0 {
		t.Error("nil tracer holds spans")
	}

	var r *Registry
	r.Counter("c").Add(1)
	r.Gauge("g").Set(1)
	r.Histogram("h", DefaultDurationBuckets).Observe(1)
	if snap := r.Snapshot(); len(snap.Counters) != 0 {
		t.Error("nil registry snapshot non-empty")
	}

	ctx, sp := StartSpan(context.Background(), nil, "x")
	if sp != nil || FromContext(ctx) != nil {
		t.Error("disabled StartSpan leaked a span")
	}
	if Tracing(context.Background(), nil) {
		t.Error("Tracing true with no observer and no context span")
	}
}

// TestDisabledSpanZeroAlloc pins the disabled fast path: the exact guarded
// instrumentation pattern the flow/core/ml layers use must not allocate
// when no observer is installed.
func TestDisabledSpanZeroAlloc(t *testing.T) {
	ctx := context.Background()
	var o *Observer
	allocs := testing.AllocsPerRun(1000, func() {
		if Tracing(ctx, o) {
			_, sp := StartSpan(ctx, o, "flow", String("design", "d"), Int("seed", 1))
			sp.End()
		}
		o.Count(MetricFlowRuns, 1)
		o.ObserveMs(MetricFlowMs, time.Millisecond)
		o.SetGauge(MetricGridCandidatesPerSec, 1)
		var sp *Span
		sp.Child("stage").End()
		sp.Event("evt")
		sp.SetError(nil)
	})
	if allocs != 0 {
		t.Fatalf("disabled observation allocated %.1f times per op, want 0", allocs)
	}
}

func TestSpanHierarchy(t *testing.T) {
	o := New()
	root := o.Start("flow", String("design", "d"))
	child := root.Child("place")
	child.SetAttr(Int("moves", 3000))
	child.Event("checkpoint", Float("temp", 0.5))
	child.End()
	child.End() // idempotent
	root.End()

	spans := o.Trace.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Completion order: child first.
	c, r := spans[0], spans[1]
	if c.Name != "place" || r.Name != "flow" {
		t.Fatalf("unexpected span order: %q, %q", c.Name, r.Name)
	}
	if c.ParentID != r.ID || c.RootID != r.ID || r.ParentID != 0 || r.RootID != r.ID {
		t.Errorf("bad hierarchy: child{id=%d parent=%d root=%d} root{id=%d parent=%d root=%d}",
			c.ID, c.ParentID, c.RootID, r.ID, r.ParentID, r.RootID)
	}
	if len(c.Events) != 1 || c.Events[0].Name != "checkpoint" {
		t.Errorf("child events = %+v", c.Events)
	}
	if c.End < c.Start || r.End < r.Start {
		t.Error("span ends before it starts")
	}
}

// TestContextPropagation checks that a context-carried parent records
// children even when the local observer is nil — how nested layers (retry
// inside build inside experiment) compose without passing observers down.
func TestContextPropagation(t *testing.T) {
	o := New()
	ctx, root := StartSpan(context.Background(), o, "outer")
	if !Tracing(ctx, nil) {
		t.Fatal("context span not detected")
	}
	_, inner := StartSpan(ctx, nil, "inner") // nil observer, parent from ctx
	inner.End()
	root.End()
	spans := o.Trace.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "inner" || spans[0].ParentID != spans[1].ID {
		t.Errorf("inner span not parented on outer: %+v", spans[0])
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 5, 50, 500} {
		h.Observe(v)
	}
	snap := r.Snapshot().Histogram("lat")
	if snap == nil {
		t.Fatal("histogram missing from snapshot")
	}
	if snap.Count != 5 || snap.Sum != 560.5 {
		t.Errorf("count=%d sum=%g, want 5, 560.5", snap.Count, snap.Sum)
	}
	if snap.Min != 0.5 || snap.Max != 500 {
		t.Errorf("min=%g max=%g, want 0.5, 500", snap.Min, snap.Max)
	}
	if got, want := snap.Mean, 560.5/5; math.Abs(got-want) > 1e-12 {
		t.Errorf("mean=%g, want %g", got, want)
	}
	wantBuckets := []int64{1, 2, 1, 1} // (<=1, <=10, <=100, +Inf)
	if len(snap.Buckets) != len(wantBuckets) {
		t.Fatalf("got %d buckets, want %d", len(snap.Buckets), len(wantBuckets))
	}
	for i, want := range wantBuckets {
		if snap.Buckets[i].Count != want {
			t.Errorf("bucket %d count=%d, want %d", i, snap.Buckets[i].Count, want)
		}
	}
	if !math.IsInf(snap.Buckets[len(snap.Buckets)-1].UpperBound, 1) {
		t.Error("last bucket bound is not +Inf")
	}
}

// TestRegistryConcurrency hammers one registry from the same worker pool
// the dataset builder uses; run under -race this doubles as the data-race
// proof, and the totals prove no increment was lost.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 1000
	err := parallel.ForEach(context.Background(), workers, workers, func(_ context.Context, w int) {
		for i := 0; i < perWorker; i++ {
			r.Counter("ops").Add(1)
			r.Gauge("last").Set(float64(w))
			r.Histogram("ms", DefaultDurationBuckets).Observe(float64(i % 100))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := r.Snapshot()
	if v, _ := snap.Counter("ops"); v != workers*perWorker {
		t.Errorf("counter=%d, want %d", v, workers*perWorker)
	}
	if h := snap.Histogram("ms"); h == nil || h.Count != workers*perWorker {
		t.Errorf("histogram count wrong: %+v", h)
	}
}

// TestTracerConcurrency starts and ends spans from many goroutines; -race
// validates the locking, the count validates nothing is dropped.
func TestTracerConcurrency(t *testing.T) {
	o := New()
	const workers, spansPer = 8, 200
	err := parallel.ForEach(context.Background(), workers, workers, func(_ context.Context, w int) {
		for i := 0; i < spansPer; i++ {
			sp := o.Start("work", Int("worker", int64(w)))
			sp.Child("inner").End()
			sp.End()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := o.Trace.Len(), workers*spansPer*2; got != want {
		t.Errorf("recorded %d spans, want %d", got, want)
	}
}

func TestParseLevel(t *testing.T) {
	for _, s := range []string{"debug", "info", "warn", "error"} {
		if _, err := ParseLevel(s); err != nil {
			t.Errorf("ParseLevel(%q): %v", s, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("bad level accepted")
	}
}
