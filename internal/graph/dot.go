package graph

import (
	"fmt"
	"io"
	"sort"
)

// WriteDOT emits the dependency graph in GraphViz DOT format: one node per
// (possibly merged) vertex labeled with its kind and width, edges labeled
// with their wire weight, port nodes drawn as boxes. Designs of a few
// hundred nodes render usefully; the maxNodes cap truncates larger graphs
// (0 = no cap) so a debug dump of a full benchmark stays loadable.
func (g *Graph) WriteDOT(w io.Writer, maxNodes int) error {
	if _, err := fmt.Fprintln(w, "digraph dependency {"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "  rankdir=TB; node [fontsize=9];"); err != nil {
		return err
	}
	nodes := g.Nodes
	truncated := false
	if maxNodes > 0 && len(nodes) > maxNodes {
		nodes = nodes[:maxNodes]
		truncated = true
	}
	inSet := make(map[*Node]bool, len(nodes))
	for _, n := range nodes {
		inSet[n] = true
	}
	for _, n := range nodes {
		shape := "ellipse"
		if n.IsPort() {
			shape = "box"
		}
		label := fmt.Sprintf("%s i%d", n.Kind, n.Bitwidth)
		if n.IsMerged() {
			label = fmt.Sprintf("%s x%d", label, len(n.Ops))
			shape = "doublecircle"
		}
		if _, err := fmt.Fprintf(w, "  n%d [label=%q shape=%s];\n", n.ID, label, shape); err != nil {
			return err
		}
	}
	var edges []*Edge
	for _, n := range nodes {
		for _, e := range n.Out {
			if inSet[e.To] {
				edges = append(edges, e)
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From.ID != edges[j].From.ID {
			return edges[i].From.ID < edges[j].From.ID
		}
		return edges[i].To.ID < edges[j].To.ID
	})
	for _, e := range edges {
		if _, err := fmt.Fprintf(w, "  n%d -> n%d [label=%d];\n", e.From.ID, e.To.ID, e.Wires); err != nil {
			return err
		}
	}
	if truncated {
		if _, err := fmt.Fprintf(w, "  trunc [label=\"(%d more nodes)\" shape=plaintext];\n",
			len(g.Nodes)-len(nodes)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
