// Package graph builds the paper's dependency graph (Sec. III-A2): one node
// per IR operation, directed edges between dependent operations weighted by
// the number of wires of the connection, operations that share one RTL
// module merged into a single combined node (Fig. 4), and "port"-type nodes
// marking which operators meet at the same function I/O port. The feature
// extractor reads interconnection, resource and #Resource/ΔTcs features off
// this graph, including the two-hop neighborhoods the paper found most
// influential.
package graph

import (
	"sort"

	"repro/internal/hls"
	"repro/internal/ir"
)

// Node is one dependency-graph vertex: a single operation, or several
// operations merged because they share a functional unit.
type Node struct {
	ID   int
	Ops  []*ir.Op
	Kind ir.OpKind
	// Bitwidth is the widest member operation.
	Bitwidth int

	In  []*Edge
	Out []*Edge

	// res caches Characterize(Kind, Bitwidth).Res: the extractor reads a
	// node's resources once per feature, and characterization is pure.
	res hls.Resources
}

// IsMerged reports whether the node combines shared operations.
func (n *Node) IsMerged() bool { return len(n.Ops) > 1 }

// IsPort reports whether the node represents a function I/O port.
func (n *Node) IsPort() bool { return n.Kind == ir.KindPort }

// Res returns the characterized resource usage of the node's hardware: one
// functional-unit instance (merged operations share it, so it is counted
// once, exactly why the paper merges the nodes).
func (n *Node) Res() hls.Resources { return n.res }

// FanIn returns the summed wire weight of incoming edges.
func (n *Node) FanIn() int {
	w := 0
	for _, e := range n.In {
		w += e.Wires
	}
	return w
}

// FanOut returns the summed wire weight of outgoing edges.
func (n *Node) FanOut() int {
	w := 0
	for _, e := range n.Out {
		w += e.Wires
	}
	return w
}

// Edge is a directed, wire-weighted dependence between nodes. Parallel
// dependences between the same pair are combined with their wire counts
// summed.
type Edge struct {
	From, To *Node
	Wires    int
}

// Graph is the module-wide dependency graph.
type Graph struct {
	Nodes []*Node
	OfOp  map[*ir.Op]*Node
}

// Build constructs the graph for a module. When binding is non-nil,
// operations bound to one shared functional unit collapse into a combined
// node; passing nil keeps one node per operation (the pre-merge graph).
func Build(m *ir.Module, binding *hls.Binding) *Graph {
	g := &Graph{OfOp: make(map[*ir.Op]*Node, m.NumOps())}

	newNode := func(ops []*ir.Op) *Node {
		n := &Node{ID: len(g.Nodes), Ops: ops, Kind: ops[0].Kind}
		for _, o := range ops {
			if o.Bitwidth > n.Bitwidth {
				n.Bitwidth = o.Bitwidth
			}
			g.OfOp[o] = n
		}
		n.res = hls.Characterize(n.Kind, n.Bitwidth).Res
		g.Nodes = append(g.Nodes, n)
		return n
	}

	if binding != nil {
		for _, u := range binding.Units {
			newNode(u.Ops)
		}
		// Ops a binder never saw (none today, but keep the graph total).
		for _, o := range m.AllOps() {
			if g.OfOp[o] == nil {
				newNode([]*ir.Op{o})
			}
		}
	} else {
		for _, o := range m.AllOps() {
			newNode([]*ir.Op{o})
		}
	}

	// Edges: combine parallel dependences, drop self-loops created by
	// merging.
	type key struct{ from, to int }
	wires := make(map[key]int)
	for _, o := range m.AllOps() {
		to := g.OfOp[o]
		for _, e := range o.Operands {
			from := g.OfOp[e.Def]
			if from == nil || from == to {
				continue
			}
			wires[key{from.ID, to.ID}] += e.Bits
		}
	}
	keys := make([]key, 0, len(wires))
	for k := range wires {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].from != keys[j].from {
			return keys[i].from < keys[j].from
		}
		return keys[i].to < keys[j].to
	})
	for _, k := range keys {
		e := &Edge{From: g.Nodes[k.from], To: g.Nodes[k.to], Wires: wires[k]}
		e.From.Out = append(e.From.Out, e)
		e.To.In = append(e.To.In, e)
	}
	return g
}

// Preds returns the distinct predecessor nodes.
func (n *Node) Preds() []*Node {
	out := make([]*Node, 0, len(n.In))
	for _, e := range n.In {
		out = append(out, e.From)
	}
	return out
}

// Succs returns the distinct successor nodes.
func (n *Node) Succs() []*Node {
	out := make([]*Node, 0, len(n.Out))
	for _, e := range n.Out {
		out = append(out, e.To)
	}
	return out
}

// Hop direction selectors for NeighborsK.
const (
	// DirPred walks edges backwards (towards producers).
	DirPred = iota
	// DirSucc walks edges forwards (towards consumers).
	DirSucc
	// DirBoth walks both directions.
	DirBoth
)

// NeighborsK returns the distinct nodes reachable from n within at most k
// hops in the given direction, excluding n itself. k=1 gives the one-hop
// neighborhood; the paper's "after including two-hop neighbors" features
// use k=2.
func (n *Node) NeighborsK(k, dir int) []*Node {
	seen := map[*Node]bool{n: true}
	frontier := []*Node{n}
	var out []*Node
	for hop := 0; hop < k; hop++ {
		var next []*Node
		for _, cur := range frontier {
			if dir == DirPred || dir == DirBoth {
				for _, e := range cur.In {
					if !seen[e.From] {
						seen[e.From] = true
						next = append(next, e.From)
						out = append(out, e.From)
					}
				}
			}
			if dir == DirSucc || dir == DirBoth {
				for _, e := range cur.Out {
					if !seen[e.To] {
						seen[e.To] = true
						next = append(next, e.To)
						out = append(out, e.To)
					}
				}
			}
		}
		frontier = next
	}
	return out
}

// MaxEdge returns the largest wire weight among the node's direct
// connections and that edge's share of the node's fan-in and fan-out — the
// paper's "max number of wires among all connections" features.
func (n *Node) MaxEdge() (wires int, fracIn, fracOut float64) {
	for _, e := range n.In {
		if e.Wires > wires {
			wires = e.Wires
		}
	}
	for _, e := range n.Out {
		if e.Wires > wires {
			wires = e.Wires
		}
	}
	if fi := n.FanIn(); fi > 0 {
		fracIn = float64(wires) / float64(fi)
	}
	if fo := n.FanOut(); fo > 0 {
		fracOut = float64(wires) / float64(fo)
	}
	return wires, fracIn, fracOut
}

// EdgeStatsK aggregates the wire weights of all edges incident to the k-hop
// neighborhood of n (edges with at least one endpoint in the neighborhood
// or at n): total weight, edge count, and the maximum single edge.
func (n *Node) EdgeStatsK(k int) (total, count, max int) {
	nodes := append([]*Node{n}, n.NeighborsK(k, DirBoth)...)
	inSet := make(map[*Node]bool, len(nodes))
	for _, x := range nodes {
		inSet[x] = true
	}
	seen := make(map[*Edge]bool)
	for _, x := range nodes {
		for _, e := range x.In {
			if !seen[e] && (inSet[e.From] || inSet[e.To]) {
				seen[e] = true
				total += e.Wires
				count++
				if e.Wires > max {
					max = e.Wires
				}
			}
		}
		for _, e := range x.Out {
			if !seen[e] && (inSet[e.From] || inSet[e.To]) {
				seen[e] = true
				total += e.Wires
				count++
				if e.Wires > max {
					max = e.Wires
				}
			}
		}
	}
	return total, count, max
}
