package graph

import (
	"strings"
	"testing"

	"repro/internal/hls"
	"repro/internal/ir"
)

// diamond builds p -> (a, b) -> c with known widths.
func diamond() (*ir.Module, *ir.Op, *ir.Op, *ir.Op, *ir.Op) {
	m := ir.NewModule("m")
	b := ir.NewBuilder(m.NewFunction("f"))
	p := b.Port("p", 32)
	a := b.Op(ir.KindNot, 32, p)
	c := b.OpBits(ir.KindBitSel, 8, p, 8)
	d := b.Op(ir.KindAdd, 32, a, c)
	return m, p, a, c, d
}

func TestBuildUnmerged(t *testing.T) {
	m, p, a, c, d := diamond()
	g := Build(m, nil)
	if len(g.Nodes) != m.NumOps() {
		t.Fatalf("nodes = %d, want one per op (%d)", len(g.Nodes), m.NumOps())
	}
	np := g.OfOp[p]
	if np.FanOut() != 32+8 {
		t.Errorf("port fanout = %d, want 40", np.FanOut())
	}
	nd := g.OfOp[d]
	if nd.FanIn() != 32+8 {
		t.Errorf("d fanin = %d, want 40", nd.FanIn())
	}
	if len(np.Succs()) != 2 || len(nd.Preds()) != 2 {
		t.Error("diamond edges wrong")
	}
	_ = a
	_ = c
}

func TestBuildMergesSharedUnits(t *testing.T) {
	m := ir.NewModule("m")
	b := ir.NewBuilder(m.NewFunction("f"))
	cur := b.Port("p", 16)
	for i := 0; i < 4; i++ {
		cur = b.Op(ir.KindMul, 16, cur, cur) // serial -> one shared unit
	}
	s, err := hls.ScheduleModule(m, hls.DefaultClock())
	if err != nil {
		t.Fatal(err)
	}
	bind := hls.BindModule(s)
	g := Build(m, bind)
	// All four muls share one node (Fig. 4 merging).
	var mulNode *Node
	for _, n := range g.Nodes {
		if n.Kind == ir.KindMul {
			if mulNode != nil && mulNode != n {
				t.Fatal("muls split across nodes despite sharing")
			}
			mulNode = n
		}
	}
	if mulNode == nil || !mulNode.IsMerged() || len(mulNode.Ops) != 4 {
		t.Fatalf("merged node wrong: %+v", mulNode)
	}
	// The serial chain becomes a self-loop and is dropped: merged node only
	// connects to the port.
	for _, e := range mulNode.In {
		if e.From == mulNode {
			t.Error("self loop survived merging")
		}
	}
	// Merged hardware counted once.
	if mulNode.Res().DSP != hls.Characterize(ir.KindMul, 16).Res.DSP {
		t.Errorf("merged node resources = %+v, want one instance", mulNode.Res())
	}
}

func TestParallelEdgesCombine(t *testing.T) {
	m := ir.NewModule("m")
	b := ir.NewBuilder(m.NewFunction("f"))
	p := b.Port("p", 16)
	// add uses p twice -> one combined edge of weight 32.
	add := b.Op(ir.KindAdd, 16, p, p)
	g := Build(m, nil)
	na := g.OfOp[add]
	if len(na.In) != 1 {
		t.Fatalf("parallel edges not combined: %d", len(na.In))
	}
	if na.In[0].Wires != 32 {
		t.Errorf("combined weight = %d, want 32", na.In[0].Wires)
	}
}

func TestPortNodes(t *testing.T) {
	m, p, _, _, _ := diamond()
	g := Build(m, nil)
	if !g.OfOp[p].IsPort() {
		t.Error("port op not flagged as port node")
	}
}

func TestNeighborsK(t *testing.T) {
	// Chain p -> a -> b -> c.
	m := ir.NewModule("m")
	bb := ir.NewBuilder(m.NewFunction("f"))
	p := bb.Port("p", 8)
	a := bb.Op(ir.KindNot, 8, p)
	b2 := bb.Op(ir.KindNot, 8, a)
	c := bb.Op(ir.KindNot, 8, b2)
	g := Build(m, nil)
	na := g.OfOp[a]
	if got := len(na.NeighborsK(1, DirPred)); got != 1 {
		t.Errorf("1-hop preds = %d", got)
	}
	if got := len(na.NeighborsK(2, DirSucc)); got != 2 {
		t.Errorf("2-hop succs = %d", got)
	}
	both := na.NeighborsK(2, DirBoth)
	if len(both) != 3 { // p, b2, c
		t.Errorf("2-hop both = %d, want 3", len(both))
	}
	for _, n := range both {
		if n == na {
			t.Error("self included in neighborhood")
		}
	}
	_ = c
}

func TestMaxEdge(t *testing.T) {
	m, p, _, _, d := diamond()
	g := Build(m, nil)
	w, fi, fo := g.OfOp[d].MaxEdge()
	if w != 32 {
		t.Errorf("max edge = %d", w)
	}
	if fi != 32.0/40.0 {
		t.Errorf("frac of fanin = %v", fi)
	}
	if fo != 0 {
		t.Errorf("frac of fanout on sink node = %v", fo)
	}
	_ = p
}

func TestEdgeStatsK(t *testing.T) {
	m, p, _, _, _ := diamond()
	g := Build(m, nil)
	total, count, max := g.OfOp[p].EdgeStatsK(2)
	// Diamond has 4 edges total: p->a (32), p->c (8), a->d (32), c->d (8).
	if count != 4 {
		t.Errorf("edge count = %d, want 4", count)
	}
	if total != 80 {
		t.Errorf("edge total = %d, want 80", total)
	}
	if max != 32 {
		t.Errorf("edge max = %d", max)
	}
}

func TestGraphDeterminism(t *testing.T) {
	m1, _, _, _, _ := diamond()
	m2, _, _, _, _ := diamond()
	g1 := Build(m1, nil)
	g2 := Build(m2, nil)
	if len(g1.Nodes) != len(g2.Nodes) {
		t.Fatal("node counts differ")
	}
	for i := range g1.Nodes {
		if g1.Nodes[i].Kind != g2.Nodes[i].Kind ||
			g1.Nodes[i].FanIn() != g2.Nodes[i].FanIn() ||
			g1.Nodes[i].FanOut() != g2.Nodes[i].FanOut() {
			t.Fatalf("node %d differs across identical builds", i)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	m, p, _, _, _ := diamond()
	g := Build(m, nil)
	var buf strings.Builder
	if err := g.WriteDOT(&buf, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", "shape=box", "->", "label=32", "}"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Truncation cap keeps large graphs bounded.
	var small strings.Builder
	if err := g.WriteDOT(&small, 2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(small.String(), "more nodes") {
		t.Error("truncation marker missing")
	}
	_ = p
}
