package bench

import "repro/internal/ir"

// Digit Recognition + Spam Filtering: the paper's second dataset
// implementation invokes both applications from one top function so the
// combined design exercises enough of the device to expose congestion.

// Digit Recognition (KNN over binarized digits) parameters.
const (
	drTraining = 2000 // training vectors scanned
	drUnroll   = 25   // distance units running in parallel
	drK        = 4    // nearest neighbors tracked
)

// Spam Filtering (SGD logistic regression) parameters.
const (
	sfFeatures  = 1024 // model dimensionality
	sfDotUnroll = 36   // parallel multiply-accumulate lanes
	sfUpdUnroll = 24   // parallel weight-update lanes
)

// DigitSpam generates the combined Digit Recognition + Spam Filtering
// design with the moderate unroll/partition directives the Rosetta versions
// ship with.
func DigitSpam() *ir.Module {
	m := ir.NewModule("digit_spam")
	top := m.NewFunction("digit_spam_top")

	digit := buildDigitRec(m)
	spam := buildSpamFilter(m)

	b := ir.NewBuilder(top).At("digit_spam_top.cpp", 10)
	testDigit := b.Port("test_digit", 32)
	emailVec := b.Port("email_vec", 32)
	rate := b.Port("learn_rate", 16)

	b.Line(18)
	dres := b.Call(digit, testDigit)
	b.Line(19)
	sres := b.Call(spam, emailVec, rate)
	b.Line(20)
	both := b.Op(ir.KindConcat, 32, dres, sres)
	b.Ret(both)
	return m
}

// buildDigitRec emits the KNN digit classifier: hamming distance against
// the training set with an unrolled scan and a K-deep running minimum.
func buildDigitRec(m *ir.Module) *ir.Function {
	f := m.NewFunction("digit_rec")
	b := ir.NewBuilder(f).At("digit_rec.cpp", 14)
	test := b.Port("test", 32)

	train := b.Array("training_set", 256, 32, drUnroll) // cyclic partition
	labels := b.Array("training_labels", 256, 4, drUnroll)

	// K running minima, initialized to the maximum distance.
	mins := make([]*ir.Op, drK)
	labs := make([]*ir.Op, drK)
	for k := range mins {
		mins[k] = b.Const(8)
		labs[k] = b.Const(4)
	}
	b.Line(30)
	b.UnrolledLoop("scan_training", drTraining, drUnroll, func(copy int) {
		tv := b.Load(train, nil)
		lv := b.Load(labels, nil)
		diff := b.Op(ir.KindXor, 32, tv, test)
		// Popcount: byte taps summed by a balanced tree.
		var parts []*ir.Op
		for i := 0; i < 4; i++ {
			byteTap := b.OpBits(ir.KindBitSel, 8, diff, 8)
			lo := b.OpBits(ir.KindBitSel, 4, byteTap, 4)
			hi := b.OpBits(ir.KindBitSel, 4, byteTap, 4)
			parts = append(parts, b.Op(ir.KindAdd, 8, lo, hi))
		}
		dist := b.ReduceTree(ir.KindAdd, 8, parts)
		// Insert into the K-deep minimum chain.
		for k := 0; k < drK; k++ {
			closer := b.Op(ir.KindICmp, 1, dist, mins[k])
			mins[k] = b.Op(ir.KindSelect, 8, closer, dist, mins[k])
			labs[k] = b.Op(ir.KindSelect, 4, closer, lv, labs[k])
		}
	})
	// Majority vote across the K labels.
	b.Line(52)
	eq01 := b.Op(ir.KindICmp, 1, labs[0], labs[1])
	eq12 := b.Op(ir.KindICmp, 1, labs[1], labs[2])
	winner := b.Op(ir.KindSelect, 4, eq12, labs[1], labs[0])
	final := b.Op(ir.KindSelect, 4, eq01, labs[0], winner)
	ext := b.Op(ir.KindZExt, 16, final)
	b.Ret(ext)
	return f
}

// buildSpamFilter emits one SGD epoch of the logistic-regression spam
// filter: a wide fixed-point dot product, a sigmoid lookup, and the
// unrolled weight update.
func buildSpamFilter(m *ir.Module) *ir.Function {
	f := m.NewFunction("spam_filter")
	b := ir.NewBuilder(f).At("spam_filter.cpp", 12)
	vec := b.Port("vec", 32)
	rate := b.Port("rate", 16)

	weights := b.Array("weights", 256, 16, sfUpdUnroll)
	sigmoid := b.Array("sigmoid_lut", 128, 16, 1)

	// Dot product with parallel MAC lanes.
	b.Line(24)
	var lanes []*ir.Op
	b.UnrolledLoop("dot_product", sfFeatures, sfDotUnroll, func(copy int) {
		w := b.Load(weights, nil)
		x := b.OpBits(ir.KindBitSel, 16, vec, 16)
		prod := b.Op(ir.KindMul, 16, w, x)
		sh := b.Op(ir.KindAShr, 16, prod, b.Const(4))
		lanes = append(lanes, sh)
	})
	dot := b.ReduceTree(ir.KindAdd, 16, lanes)

	// Sigmoid via lookup table, then the prediction error.
	b.Line(40)
	idx := b.OpBits(ir.KindBitSel, 8, dot, 8)
	prob := b.Load(sigmoid, idx)
	label := b.OpBits(ir.KindBitSel, 1, vec, 1)
	labExt := b.Op(ir.KindZExt, 16, label)
	err := b.Op(ir.KindSub, 16, prob, labExt)
	step := b.Op(ir.KindMul, 16, err, rate)

	// Unrolled weight update.
	b.Line(48)
	b.UnrolledLoop("update", sfFeatures, sfUpdUnroll, func(copy int) {
		w := b.Load(weights, nil)
		x := b.OpBits(ir.KindBitSel, 16, vec, 16)
		g := b.Op(ir.KindMul, 16, step, x)
		gs := b.Op(ir.KindAShr, 16, g, b.Const(4))
		nw := b.Op(ir.KindSub, 16, w, gs)
		b.Store(weights, nw, nil)
	})
	b.Line(58)
	spamBit := b.Op(ir.KindICmp, 1, prob, b.Const(16))
	res := b.Op(ir.KindZExt, 16, spamBit)
	b.Ret(res)
	return f
}
