package bench

import "repro/internal/ir"

// Individual application generators. The paper combines the six Rosetta
// applications into three implementations to fill the device; these
// standalone variants let library users study each workload's congestion
// behaviour in isolation (and give the CLI tools per-app targets).

// wrap builds a module whose top function forwards one 32-bit stream port
// into the application function and returns its result.
func wrap(name string, build func(*ir.Module) *ir.Function, extraArg bool) *ir.Module {
	m := ir.NewModule(name)
	top := m.NewFunction(name + "_top")
	app := build(m)
	b := ir.NewBuilder(top).At(name+"_top.cpp", 3)
	in := b.Port("stream_in", 32)
	args := []*ir.Op{in}
	if extraArg {
		args = append(args, b.OpBits(ir.KindTrunc, 16, in, 16))
	}
	b.Line(6)
	res := b.Call(app, args...)
	b.Ret(res)
	return m
}

// DigitRecognition generates the standalone KNN digit classifier.
func DigitRecognition() *ir.Module {
	return wrap("digit_recognition", buildDigitRec, false)
}

// SpamFiltering generates the standalone SGD logistic-regression filter.
func SpamFiltering() *ir.Module {
	return wrap("spam_filtering", buildSpamFilter, true)
}

// BNN generates the standalone binarized neural network.
func BNN() *ir.Module {
	return wrap("bnn", buildBNN, false)
}

// Rendering3D generates the standalone 3D rendering pipeline.
func Rendering3D() *ir.Module {
	return wrap("rendering3d", buildRendering, false)
}

// OpticalFlow generates the standalone optical-flow pipeline.
func OpticalFlow() *ir.Module {
	return wrap("optical_flow", buildOpticalFlow, false)
}
