package bench

import (
	"bytes"
	"testing"

	"repro/internal/ir"
)

func TestAllGeneratorsProduceValidIR(t *testing.T) {
	mods := map[string]*ir.Module{
		"facedet-with":    FaceDetection(WithDirectives()),
		"facedet-without": FaceDetection(WithoutDirectives()),
		"facedet-ni":      FaceDetection(NotInline()),
		"facedet-rep":     FaceDetection(Replication()),
		"digit_spam":      DigitSpam(),
		"bnn_render_of":   BNNRenderFlow(),
	}
	for name, m := range mods {
		if err := ir.Validate(m); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if m.NumOps() < 100 {
			t.Errorf("%s suspiciously small: %d ops", name, m.NumOps())
		}
	}
}

func TestTrainingModulesSampleBudget(t *testing.T) {
	total := 0
	for _, m := range TrainingModules() {
		total += m.NumOps()
	}
	// The paper's dataset holds 8111 samples; ours must stay within a few
	// percent so Table IV is comparable.
	if total < 7700 || total > 8600 {
		t.Errorf("total dataset ops = %d, want ~8111 +/- 5%%", total)
	}
}

func TestInliningGrowsTheDesign(t *testing.T) {
	// The paper: "function inlining increases the complexity in C synthesis
	// and generates a larger design" measured in logic, and collapses the
	// module hierarchy to one function.
	inlined := FaceDetection(WithDirectives())
	hier := FaceDetection(NotInline())
	if len(inlined.LiveFuncs()) != 1 {
		t.Errorf("inlined design has %d live functions", len(inlined.LiveFuncs()))
	}
	if len(hier.LiveFuncs()) < 9 {
		t.Errorf("de-inlined design has only %d live functions", len(hier.LiveFuncs()))
	}
}

func TestDirectiveBundles(t *testing.T) {
	w := WithDirectives()
	if !w.Inline || !w.Pipeline || !w.PartitionComplete || w.Unroll < 2 {
		t.Errorf("WithDirectives = %+v", w)
	}
	wo := WithoutDirectives()
	if wo.Inline || wo.Pipeline || wo.PartitionComplete || wo.Unroll != 1 {
		t.Errorf("WithoutDirectives = %+v", wo)
	}
	ni := NotInline()
	if ni.Inline || !ni.Pipeline {
		t.Errorf("NotInline = %+v", ni)
	}
	rep := Replication()
	if rep.Inline || !rep.ReplicateInputs {
		t.Errorf("Replication = %+v", rep)
	}
}

func TestPartitionDirectiveControlsBanks(t *testing.T) {
	part := FaceDetection(WithDirectives())
	mono := FaceDetection(WithoutDirectives())
	banksOf := func(m *ir.Module) int {
		for _, f := range m.LiveFuncs() {
			for _, a := range f.Arrays {
				if a.Name == "window_buf" {
					return a.Banks
				}
			}
		}
		return -1
	}
	if banksOf(part) != fdWindowWords {
		t.Errorf("partitioned window has %d banks, want %d", banksOf(part), fdWindowWords)
	}
	if banksOf(mono) != 1 {
		t.Errorf("monolithic window has %d banks, want 1", banksOf(mono))
	}
}

func TestReplicationOwnsPrivateCopies(t *testing.T) {
	rep := FaceDetection(Replication())
	private := 0
	for _, f := range rep.LiveFuncs() {
		if f.IsTop {
			continue
		}
		for _, a := range f.Arrays {
			if a.Name == "window_copy" {
				private++
			}
		}
	}
	// One private copy per classifier instance (stage x unroll copy).
	want := fdStages * WithDirectives().Unroll
	if private != want {
		t.Errorf("private window copies = %d, want %d", private, want)
	}
}

func TestUnrollMarksReplicas(t *testing.T) {
	m := FaceDetection(WithDirectives())
	replicas := 0
	for _, o := range m.AllOps() {
		if o.IsReplica() {
			replicas++
		}
	}
	if replicas == 0 {
		t.Fatal("unrolled design has no replica-marked ops")
	}
	frac := float64(replicas) / float64(m.NumOps())
	if frac < 0.3 {
		t.Errorf("replica fraction = %.2f, unexpectedly low for unroll factor %d",
			frac, WithDirectives().Unroll)
	}
}

func TestCatalogCoversGenerators(t *testing.T) {
	cat := Catalog()
	for _, name := range []string{"face_detection", "digit_spam", "bnn_render_of"} {
		gen, ok := cat[name]
		if !ok {
			t.Fatalf("catalog missing %q", name)
		}
		if m := gen(WithoutDirectives()); m == nil || m.NumOps() == 0 {
			t.Fatalf("catalog generator %q broken", name)
		}
	}
}

func TestGeneratorsAreDeterministic(t *testing.T) {
	a := FaceDetection(WithDirectives())
	b := FaceDetection(WithDirectives())
	if a.NumOps() != b.NumOps() {
		t.Fatal("generator not deterministic in op count")
	}
	ao, bo := a.AllOps(), b.AllOps()
	for i := range ao {
		if ao[i].Kind != bo[i].Kind || ao[i].Bitwidth != bo[i].Bitwidth {
			t.Fatalf("op %d differs across generations", i)
		}
	}
}

func TestSourceLocationsAssigned(t *testing.T) {
	for _, m := range TrainingModules() {
		missing := 0
		for _, o := range m.AllOps() {
			if o.Src.IsZero() {
				missing++
			}
		}
		if missing > 0 {
			t.Errorf("%s: %d ops without source locations", m.Name, missing)
		}
	}
}

func TestIndividualApplications(t *testing.T) {
	for name, gen := range map[string]func() *ir.Module{
		"digit_recognition": DigitRecognition,
		"spam_filtering":    SpamFiltering,
		"bnn":               BNN,
		"rendering3d":       Rendering3D,
		"optical_flow":      OpticalFlow,
	} {
		m := gen()
		if err := ir.Validate(m); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if m.NumOps() < 50 {
			t.Errorf("%s suspiciously small: %d ops", name, m.NumOps())
		}
		if len(m.LiveFuncs()) != 2 {
			t.Errorf("%s: %d live functions, want top + app", name, len(m.LiveFuncs()))
		}
	}
	if len(Catalog()) != 8 {
		t.Errorf("catalog has %d entries, want 8", len(Catalog()))
	}
}

func TestBenchmarksRoundTripThroughTextIR(t *testing.T) {
	for _, m := range TrainingModules() {
		var buf bytes.Buffer
		if err := ir.WriteText(&buf, m); err != nil {
			t.Fatalf("%s: write: %v", m.Name, err)
		}
		back, err := ir.ParseText(&buf)
		if err != nil {
			t.Fatalf("%s: parse: %v", m.Name, err)
		}
		if back.NumOps() != m.NumOps() {
			t.Errorf("%s: ops %d != %d after text round trip", m.Name, back.NumOps(), m.NumOps())
		}
		if len(back.LiveFuncs()) != len(m.LiveFuncs()) {
			t.Errorf("%s: functions changed", m.Name)
		}
	}
}
