package bench

import "repro/internal/ir"

// BNN + 3D Rendering + Optical Flow: the paper's third dataset
// implementation integrates three Rosetta applications under one top
// function.

// BNN (binarized neural network) parameters.
const (
	bnnNeurons = 1024 // output neurons per layer
	bnnUnroll  = 19   // XNOR-popcount lanes
	bnnLayers  = 2
)

// 3D Rendering parameters.
const (
	r3Triangles  = 3192 // triangles rasterized
	r3VtxUnroll  = 10   // parallel vertex-transform lanes
	r3EdgeUnroll = 10   // parallel edge-function lanes
)

// Optical Flow parameters.
const (
	ofPixels     = 4096 // pixels processed per frame
	ofGradUnroll = 15   // parallel gradient lanes
	ofWindow     = 5    // weighted-window taps accumulated per lane
)

// BNNRenderFlow generates the combined BNN + 3D Rendering + Optical Flow
// design with the Rosetta directive sets (moderate unrolling, partitioned
// hot arrays).
func BNNRenderFlow() *ir.Module {
	m := ir.NewModule("bnn_render_of")
	top := m.NewFunction("bnn_render_of_top")

	bnn := buildBNN(m)
	render := buildRendering(m)
	oflow := buildOpticalFlow(m)

	b := ir.NewBuilder(top).At("bro_top.cpp", 10)
	act := b.Port("activations", 32)
	tri := b.Port("triangles", 32)
	frame := b.Port("frames", 32)

	b.Line(20)
	r1 := b.Call(bnn, act)
	b.Line(21)
	r2 := b.Call(render, tri)
	b.Line(22)
	r3 := b.Call(oflow, frame)
	b.Line(23)
	lo := b.Op(ir.KindConcat, 32, r1, r2)
	all := b.Op(ir.KindConcat, 32, lo, r3)
	b.Ret(all)
	return m
}

// buildBNN emits two binarized layers: XNOR against the weight words,
// popcount, sign threshold.
func buildBNN(m *ir.Module) *ir.Function {
	f := m.NewFunction("bnn")
	b := ir.NewBuilder(f).At("bnn.cpp", 16)
	act := b.Port("act", 32)

	cur := act
	for layer := 0; layer < bnnLayers; layer++ {
		weights := b.Array(layerName("wt", layer), 512, 32, bnnUnroll)
		b.Line(30 + 20*layer)
		var outs []*ir.Op
		b.UnrolledLoop(layerName("neurons", layer), bnnNeurons, bnnUnroll, func(copy int) {
			w := b.Load(weights, nil)
			x := b.Op(ir.KindXor, 32, w, cur)
			xn := b.Op(ir.KindNot, 32, x) // XNOR
			var parts []*ir.Op
			for i := 0; i < 4; i++ {
				tap := b.OpBits(ir.KindBitSel, 8, xn, 8)
				parts = append(parts, b.Op(ir.KindZExt, 8, tap))
			}
			pc := b.ReduceTree(ir.KindAdd, 8, parts)
			sign := b.Op(ir.KindICmp, 1, pc, b.Const(8))
			outs = append(outs, b.Op(ir.KindZExt, 8, sign))
		})
		packed := b.ReduceTree(ir.KindConcat, 32, outs)
		cur = packed
	}
	b.Ret(cur)
	return f
}

func layerName(prefix string, layer int) string {
	return prefix + string(rune('0'+layer))
}

// buildRendering emits the projection + rasterization pipeline: 3x3 vertex
// transforms with a perspective divide, then edge-function tests.
func buildRendering(m *ir.Module) *ir.Function {
	f := m.NewFunction("rendering3d")
	b := ir.NewBuilder(f).At("rendering.cpp", 14)
	tri := b.Port("tri", 32)

	zbuf := b.Array("z_buffer", 256, 16, 4)
	fbuf := b.Array("frame_buffer", 256, 8, 4)

	b.Line(26)
	var screen []*ir.Op
	b.UnrolledLoop("vertex_xform", r3Triangles, r3VtxUnroll, func(copy int) {
		x := b.OpBits(ir.KindBitSel, 16, tri, 16)
		y := b.OpBits(ir.KindBitSel, 16, tri, 16)
		z := b.OpBits(ir.KindBitSel, 16, tri, 16)
		var acc []*ir.Op
		for r := 0; r < 3; r++ {
			mx := b.Op(ir.KindMul, 16, x, b.Const(16))
			my := b.Op(ir.KindMul, 16, y, b.Const(16))
			mz := b.Op(ir.KindMul, 16, z, b.Const(16))
			s1 := b.Op(ir.KindAdd, 16, mx, my)
			acc = append(acc, b.Op(ir.KindAdd, 16, s1, mz))
		}
		// Perspective divide on the projected coordinates.
		px := b.Op(ir.KindDiv, 16, acc[0], acc[2])
		py := b.Op(ir.KindDiv, 16, acc[1], acc[2])
		screen = append(screen, b.Op(ir.KindConcat, 32, px, py))
	})

	b.Line(48)
	var hits []*ir.Op
	b.UnrolledLoop("rasterize", r3Triangles, r3EdgeUnroll, func(copy int) {
		v := screen[copy%len(screen)]
		px := b.OpBits(ir.KindBitSel, 16, v, 16)
		py := b.OpBits(ir.KindBitSel, 16, v, 16)
		e0 := b.Op(ir.KindSub, 16, px, py)
		e1 := b.Op(ir.KindSub, 16, py, b.Const(16))
		inside0 := b.Op(ir.KindICmp, 1, e0, b.Const(16))
		inside1 := b.Op(ir.KindICmp, 1, e1, b.Const(16))
		inside := b.Op(ir.KindAnd, 1, inside0, inside1)
		depth := b.Load(zbuf, nil)
		nearer := b.Op(ir.KindICmp, 1, px, depth)
		write := b.Op(ir.KindAnd, 1, inside, nearer)
		nd := b.Op(ir.KindSelect, 16, write, px, depth)
		b.Store(zbuf, nd, nil)
		color := b.Op(ir.KindSelect, 8, write, b.Const(8), b.Const(8))
		b.Store(fbuf, color, nil)
		hits = append(hits, b.Op(ir.KindZExt, 8, write))
	})
	b.Line(70)
	total := b.ReduceTree(ir.KindAdd, 8, hits)
	ext := b.Op(ir.KindZExt, 16, total)
	b.Ret(ext)
	return f
}

// buildOpticalFlow emits the Lucas-Kanade style pipeline: spatial/temporal
// gradients, weighted window sums, and the final flow solve with divisions.
func buildOpticalFlow(m *ir.Module) *ir.Function {
	f := m.NewFunction("optical_flow")
	b := ir.NewBuilder(f).At("optical_flow.cpp", 18)
	frame := b.Port("frame", 32)

	lines := b.Array("line_buffer", 512, 8, ofGradUnroll)

	b.Line(30)
	var gxs, gys, gts []*ir.Op
	b.UnrolledLoop("gradients", ofPixels, ofGradUnroll, func(copy int) {
		p0 := b.Load(lines, nil)
		p1 := b.Load(lines, nil)
		p2 := b.OpBits(ir.KindBitSel, 8, frame, 8)
		gx := b.Op(ir.KindSub, 8, p1, p0)
		gy := b.Op(ir.KindSub, 8, p2, p0)
		gt := b.Op(ir.KindSub, 8, p2, p1)
		gxs = append(gxs, b.Op(ir.KindSExt, 16, gx))
		gys = append(gys, b.Op(ir.KindSExt, 16, gy))
		gts = append(gts, b.Op(ir.KindSExt, 16, gt))
	})

	// Weighted window sums of the gradient products.
	b.Line(46)
	var num, den []*ir.Op
	for i := 0; i < ofGradUnroll; i++ {
		gx, gy, gt := gxs[i], gys[i], gts[i]
		xx := b.Op(ir.KindMul, 16, gx, gx)
		xy := b.Op(ir.KindMul, 16, gx, gy)
		xt := b.Op(ir.KindMul, 16, gx, gt)
		yt := b.Op(ir.KindMul, 16, gy, gt)
		accN := xt
		accD := xx
		for wtap := 1; wtap < ofWindow; wtap++ {
			accN = b.Op(ir.KindAdd, 16, accN, yt)
			accD = b.Op(ir.KindAdd, 16, accD, xy)
		}
		num = append(num, accN)
		den = append(den, accD)
	}
	b.Line(60)
	sumN := b.ReduceTree(ir.KindAdd, 16, num)
	sumD := b.ReduceTree(ir.KindAdd, 16, den)
	one := b.Const(16)
	safeD := b.Op(ir.KindOr, 16, sumD, one)
	u := b.Op(ir.KindDiv, 16, sumN, safeD)
	v := b.Op(ir.KindDiv, 16, sumN, safeD)
	flow := b.Op(ir.KindConcat, 32, u, v)
	b.Ret(flow)
	return f
}
