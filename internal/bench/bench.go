// Package bench generates the benchmark designs the paper builds its
// dataset from: structural reproductions of the six Rosetta applications
// (Face Detection, Digit Recognition, Spam Filtering, BNN, 3D Rendering,
// Optical Flow), combined into the paper's three implementations — Face
// Detection alone, Digit Recognition + Spam Filtering under one top
// function, and BNN + 3D Rendering + Optical Flow under one top function.
//
// The generators are synthetic stand-ins for the Rosetta C++ sources: they
// build the HLS IR those programs synthesize to, with the paper's directive
// sets (function inlining, loop unrolling and pipelining, array
// partitioning) applied as first-class IR transforms. Source locations on
// the generated operations refer to the synthetic listing so congestion
// reports still point at "source code".
package bench

import "repro/internal/ir"

// Directives is the HLS optimization bundle a design is generated with,
// mirroring the pragma sets the paper toggles.
type Directives struct {
	// Inline clones callee bodies into callers (the INLINE pragma); the
	// paper's Face Detection baseline inlines the whole cascade.
	Inline bool
	// Unroll is the replication factor of the main processing loop.
	Unroll int
	// Pipeline enables loop pipelining with II=1..2 on inner loops.
	Pipeline bool
	// PartitionComplete completely partitions the hot arrays into
	// registers; false keeps them monolithic block RAMs.
	PartitionComplete bool
	// ReplicateInputs applies the paper's case-study step 2: private
	// copies of shared input data per consumer, cutting interconnect
	// fan-out.
	ReplicateInputs bool
}

// WithDirectives is the paper's optimized configuration (Table I row 1).
func WithDirectives() Directives {
	return Directives{Inline: true, Unroll: 4, Pipeline: true, PartitionComplete: true}
}

// WithoutDirectives is the plain configuration (Table I row 2).
func WithoutDirectives() Directives { return Directives{Unroll: 1} }

// NotInline is the case study's first resolution step: keep every
// optimization except function inlining.
func NotInline() Directives {
	d := WithDirectives()
	d.Inline = false
	return d
}

// Replication is the case study's second step: NotInline plus input-data
// replication.
func Replication() Directives {
	d := NotInline()
	d.ReplicateInputs = true
	return d
}

// clampUnroll keeps a directive's unroll factor sane for a loop.
func clampUnroll(u int) int {
	if u < 1 {
		return 1
	}
	return u
}

// banks returns the partition factor for an array of `words` words under
// the directives.
func banks(d Directives, words int) int {
	if d.PartitionComplete {
		return words
	}
	return 1
}

// Generator builds one benchmark module under a directive set.
type Generator func(Directives) *ir.Module

// Catalog names every generator, for the command-line tools. Face
// Detection honors the directive bundle; the other designs ship with their
// fixed Rosetta directive sets.
func Catalog() map[string]Generator {
	fixed := func(f func() *ir.Module) Generator {
		return func(Directives) *ir.Module { return f() }
	}
	return map[string]Generator{
		"face_detection":    FaceDetection,
		"digit_spam":        fixed(DigitSpam),
		"bnn_render_of":     fixed(BNNRenderFlow),
		"digit_recognition": fixed(DigitRecognition),
		"spam_filtering":    fixed(SpamFiltering),
		"bnn":               fixed(BNN),
		"rendering3d":       fixed(Rendering3D),
		"optical_flow":      fixed(OpticalFlow),
	}
}

// TrainingModules returns the paper's three dataset implementations with
// their published directive sets: Face Detection (fully optimized, tested
// individually), Digit Recognition + Spam Filtering combined, and BNN + 3D
// Rendering + Optical Flow combined.
func TrainingModules() []*ir.Module {
	return []*ir.Module{
		FaceDetection(WithDirectives()),
		DigitSpam(),
		BNNRenderFlow(),
	}
}
