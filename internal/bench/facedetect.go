package bench

import (
	"fmt"

	"repro/internal/ir"
)

// Face Detection structural parameters, scaled down from Rosetta's
// Viola-Jones cascade (25 stages, thousands of weak classifiers) to a size
// the simulated flow turns around quickly while keeping the same dataflow
// shape: a shared window buffer feeding a cascade of classifier stages
// whose results are summed and compared.
const (
	fdStages      = 8     // cascade stages
	fdFeatures    = 12    // weak classifiers per stage
	fdCallWords   = 6     // 32-bit window words consumed per stage
	fdWindowWords = 64    // window buffer depth (bytes)
	fdWindowTrips = 40000 // scanning windows processed per frame
)

// FaceDetection generates the Face Detection design under a directive set.
// The baseline (WithDirectives) inlines the whole cascade into the top
// function, unrolls the window loop and completely partitions the window
// buffer — the configuration whose congestion the paper's case study
// resolves step by step.
func FaceDetection(d Directives) *ir.Module {
	m := ir.NewModule("face_detection")
	top := m.NewFunction("face_detect")
	b := ir.NewBuilder(top).At("face_detect.cpp", 12)

	imgIn := b.Port("img_in", 32)
	coefIn := b.Port("coef_in", 16)

	// The shared window buffer. Under the case-study Replication step each
	// classifier stage instead gets a private copy filled as the stream
	// arrives, so the classifiers stop sharing one completely partitioned
	// array — the paper's fix for the post-de-inlining congestion at the
	// classifier inputs.
	// replicated selects the case-study step-2 structure: each classifier
	// function owns a private window copy filled from the stream, so the
	// copies and their loads sit inside the classifier's own region.
	replicated := d.ReplicateInputs && !d.Inline
	var win *ir.Array
	var winRep []*ir.Array
	switch {
	case replicated:
		// Private copies live inside the classifier functions below.
	case d.ReplicateInputs:
		for s := 0; s < fdStages; s++ {
			winRep = append(winRep, b.Array(fmt.Sprintf("window_buf_s%d", s),
				fdWindowWords, 8, banks(d, fdWindowWords)))
		}
	default:
		win = b.Array("window_buf", fdWindowWords, 8, banks(d, fdWindowWords))
	}

	// Integral-image style preamble: running sums over the incoming pixel
	// stream.
	b.Line(25)
	acc := b.OpBits(ir.KindTrunc, 16, imgIn, 16)
	b.PipelinedLoop("integral_rows", 320, 1, func() {
		px := b.OpBits(ir.KindTrunc, 8, imgIn, 8)
		ext := b.Op(ir.KindZExt, 16, px)
		acc = b.Op(ir.KindAdd, 16, acc, ext)
	})

	// Fill the window buffer(s) from the stream: one store per private
	// copy when replication is on, a single shared store otherwise.
	b.Line(40)
	fill := func() {
		v := b.OpBits(ir.KindTrunc, 8, imgIn, 8)
		if d.ReplicateInputs && !replicated {
			for _, a := range winRep {
				b.Store(a, v, nil)
			}
		} else {
			b.Store(win, v, nil)
		}
	}
	if !replicated {
		if d.Pipeline {
			b.PipelinedLoop("fill_window", fdWindowWords, 1, fill)
		} else {
			b.EnterLoop("fill_window", fdWindowWords)
			fill()
			b.ExitLoop()
		}
	}

	// Classifier stage hardware. In the inlined configuration the body is
	// cloned per stage inside the top function; otherwise each stage is a
	// separate function invoked through its interface ports. The scan loop
	// below is pipelined and unrolled, so every call site gets its own
	// instance (sharing one instance across the unrolled copies would
	// violate the initiation interval — Vivado HLS replicates instances in
	// this situation).
	unroll := clampUnroll(d.Unroll)
	var classifiers [][]*ir.Function // [stage][copy]
	if !d.Inline {
		classifiers = make([][]*ir.Function, fdStages)
		for s := 0; s < fdStages; s++ {
			for c := 0; c < unroll; c++ {
				classifiers[s] = append(classifiers[s], buildClassifierFunc(m, d, s, c))
			}
		}
	}
	// Main window-scanning loop: load the window words, run the cascade,
	// accumulate the stage votes.
	b.Line(55)
	var votes []*ir.Op
	body := func(copy int) {
		// assemble builds the fdCallWords 32-bit window words from byte
		// loads of an array.
		assemble := func(a *ir.Array) []*ir.Op {
			ws := make([]*ir.Op, fdCallWords)
			for w := 0; w < fdCallWords; w++ {
				bytes := make([]*ir.Op, 4)
				for k := range bytes {
					bytes[k] = b.Load(a, nil)
				}
				lo := b.Op(ir.KindConcat, 16, bytes[0], bytes[1])
				hi := b.Op(ir.KindConcat, 16, bytes[2], bytes[3])
				ws[w] = b.Op(ir.KindConcat, 32, lo, hi)
			}
			return ws
		}
		var shared []*ir.Op
		if !d.ReplicateInputs {
			shared = assemble(win)
		}
		var stageRes []*ir.Op
		for s := 0; s < fdStages; s++ {
			switch {
			case replicated:
				// The classifier instance pulls its own private data; the
				// call just forwards the stream and threshold.
				stageRes = append(stageRes, b.Call(classifiers[s][copy], imgIn, coefIn))
			case d.Inline:
				in := shared
				if d.ReplicateInputs {
					// Inline + replication: per-stage private word reads.
					in = assemble(winRep[s])
				}
				stageRes = append(stageRes, classifierBody(b, in, coefIn, s))
			default:
				args := append(append([]*ir.Op(nil), shared...), coefIn)
				stageRes = append(stageRes, b.Call(classifiers[s][copy], args...))
			}
		}
		// Sum the stage results and compare against the cascade threshold —
		// the hotspot the paper's model flags in the baseline.
		b.Line(78)
		sum := b.ReduceTree(ir.KindAdd, 16, stageRes)
		limit := b.Const(16)
		hit := b.Op(ir.KindICmp, 1, sum, limit)
		votes = append(votes, b.Op(ir.KindZExt, 8, hit))
	}
	if d.Pipeline {
		// Pipelined and unrolled: replicate the body, then mark the loop.
		l := b.UnrolledLoop("scan_windows", fdWindowTrips, unroll, body)
		l.Pipelined = true
		l.II = 2
	} else {
		b.UnrolledLoop("scan_windows", fdWindowTrips, unroll, body)
	}

	b.Line(92)
	total := b.ReduceTree(ir.KindAdd, 8, votes)
	b.Ret(total)
	return m
}

// buildClassifierFunc emits one classifier stage instance as its own
// function: interface ports (or, under replication, a stream port plus a
// private window copy and its own word assembly) feeding classifierBody.
func buildClassifierFunc(m *ir.Module, d Directives, stage, copy int) *ir.Function {
	replicated := d.ReplicateInputs && !d.Inline
	f := m.NewFunction(fmt.Sprintf("classifier_%d_%d", stage, copy))
	cb := ir.NewBuilder(f).At("classifier.cpp", 8)
	var ws []*ir.Op
	var thr *ir.Op
	if replicated {
		// The classifier owns a private window copy: it fills it from the
		// stream port and assembles its own words, so all the heavy wiring
		// stays inside the classifier's region.
		stream := cb.Port("stream_in", 32)
		thr = cb.Port("threshold", 16)
		priv := cb.Array("window_copy", fdWindowWords, 8, banks(d, fdWindowWords))
		cb.Line(14)
		// The copy fills in wide bursts overlapped with the stream, so it
		// costs a handful of cycles per window.
		cb.PipelinedLoop("fill_copy", fdWindowWords/8, 1, func() {
			v := cb.OpBits(ir.KindTrunc, 8, stream, 8)
			cb.Store(priv, v, nil)
		})
		cb.Line(20)
		ws = make([]*ir.Op, fdCallWords)
		for w := 0; w < fdCallWords; w++ {
			bytes := make([]*ir.Op, 4)
			for k := range bytes {
				bytes[k] = cb.Load(priv, nil)
			}
			lo := cb.Op(ir.KindConcat, 16, bytes[0], bytes[1])
			hi := cb.Op(ir.KindConcat, 16, bytes[2], bytes[3])
			ws[w] = cb.Op(ir.KindConcat, 32, lo, hi)
		}
	} else {
		ws = make([]*ir.Op, fdCallWords)
		for w := range ws {
			ws[w] = cb.Port(fmt.Sprintf("win%d", w), 32)
		}
		thr = cb.Port("threshold", 16)
	}
	res := classifierBody(cb, ws, thr, stage)
	cb.Line(60)
	cb.Ret(res)
	return f
}

// classifierBody emits one cascade stage: fdFeatures weak classifiers over
// byte taps of the window words, a weighted vote per feature, and the
// stage-level sum/compare.
func classifierBody(b *ir.Builder, ws []*ir.Op, thr *ir.Op, stage int) *ir.Op {
	b.Line(100 + stage)
	var feats []*ir.Op
	for f := 0; f < fdFeatures; f++ {
		// Three rectangle taps as partial-bus selections (16 of 32 wires,
		// the paper's edge-weight mechanism).
		t0 := b.OpBits(ir.KindBitSel, 16, ws[(f)%len(ws)], 16)
		t1 := b.OpBits(ir.KindBitSel, 16, ws[(f+1)%len(ws)], 16)
		t2 := b.OpBits(ir.KindBitSel, 16, ws[(f+2)%len(ws)], 16)
		d0 := b.Op(ir.KindSub, 16, t0, t1)
		d1 := b.Op(ir.KindSub, 16, d0, t2)
		ext := b.Op(ir.KindSExt, 16, d1)
		w := b.Const(16)
		// Every fourth feature weight multiply is full-precision and maps
		// to a DSP48; the rest are narrow LUT multipliers — keeping the
		// design inside the device's 220 DSP slices like the real cascade.
		var prod *ir.Op
		if f%4 == 0 {
			prod = b.Op(ir.KindMul, 16, ext, w)
		} else {
			prod = b.Op(ir.KindMul, 10, ext, w)
		}
		cmp := b.Op(ir.KindICmp, 1, prod, thr)
		wp := b.Const(16)
		wn := b.Const(16)
		feats = append(feats, b.Op(ir.KindSelect, 16, cmp, wp, wn))
	}
	sum := b.ReduceTree(ir.KindAdd, 16, feats)
	stageThr := b.Const(16)
	pass := b.Op(ir.KindICmp, 1, sum, stageThr)
	return b.Op(ir.KindSelect, 16, pass, sum, stageThr)
}
