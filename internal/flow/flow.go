// Package flow chains the complete synthetic C-to-FPGA implementation flow
// the paper runs once per training design: scheduling, binding, RTL
// elaboration, placement, routing and static timing. Everything downstream
// (back-tracing, dataset construction, the experiment tables) consumes its
// Result.
package flow

import (
	"fmt"
	"math/rand"

	"repro/internal/fpga"
	"repro/internal/hls"
	"repro/internal/ir"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/rtl"
	"repro/internal/timing"
)

// Config selects the device, clock and tool options for one implementation
// run. The zero value is unusable; start from DefaultConfig.
type Config struct {
	Dev    *fpga.Device
	Clock  hls.Clock
	Seed   int64
	Place  place.Options
	Route  route.Options
	Timing timing.Model
}

// DefaultConfig is the paper's setup: XC7Z020 at a 100 MHz target.
func DefaultConfig() Config {
	return Config{
		Dev:    fpga.XC7Z020(),
		Clock:  hls.DefaultClock(),
		Seed:   1,
		Place:  place.DefaultOptions(),
		Route:  route.DefaultOptions(),
		Timing: timing.DefaultModel(),
	}
}

// Result bundles every artifact of one implementation run.
type Result struct {
	Mod       *ir.Module
	Config    Config
	Sched     *hls.Schedule
	Bind      *hls.Binding
	Netlist   *rtl.Netlist
	Placement *place.Placement
	Routing   *route.Result
	Timing    *timing.Report
}

// Run executes the full flow on a module.
func Run(m *ir.Module, cfg Config) (*Result, error) {
	if cfg.Dev == nil {
		return nil, fmt.Errorf("flow: config has no device")
	}
	sched, err := hls.ScheduleModule(m, cfg.Clock)
	if err != nil {
		return nil, fmt.Errorf("flow: %w", err)
	}
	bind := hls.BindModule(sched)
	nl := rtl.Elaborate(bind)
	rng := rand.New(rand.NewSource(cfg.Seed))
	pl, err := place.Place(nl, cfg.Dev, rng, cfg.Place)
	if err != nil {
		return nil, fmt.Errorf("flow: %w", err)
	}
	rr := route.Route(pl, rng, cfg.Route)
	rep := timing.Analyze(sched, nl, rr, cfg.Timing)
	return &Result{
		Mod:       m,
		Config:    cfg,
		Sched:     sched,
		Bind:      bind,
		Netlist:   nl,
		Placement: pl,
		Routing:   rr,
		Timing:    rep,
	}, nil
}

// PerfRow is the performance summary the paper's tables report per
// implementation.
type PerfRow struct {
	Name          string
	WNS           float64
	FmaxMHz       float64
	LatencyCycles int64
	MaxVertPct    float64
	MaxHorizPct   float64
	MaxCongPct    float64
	CongestedCLBs int
}

// Perf extracts the table row for a run.
func (r *Result) Perf(name string) PerfRow {
	vs := r.Routing.Map.Summarize(0) // Vertical
	hs := r.Routing.Map.Summarize(1) // Horizontal
	max := vs.Max
	if hs.Max > max {
		max = hs.Max
	}
	return PerfRow{
		Name:          name,
		WNS:           timing.RoundWNS(r.Timing.WNS),
		FmaxMHz:       r.Timing.FmaxMHz,
		LatencyCycles: r.Timing.LatencyCycles,
		MaxVertPct:    vs.Max,
		MaxHorizPct:   hs.Max,
		MaxCongPct:    max,
		CongestedCLBs: r.Routing.Map.CongestedTiles(100),
	}
}
