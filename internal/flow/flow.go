// Package flow chains the complete synthetic C-to-FPGA implementation flow
// the paper runs once per training design: scheduling, binding, RTL
// elaboration, placement, routing and static timing. Everything downstream
// (back-tracing, dataset construction, the experiment tables) consumes its
// Result.
//
// The package is also the flow's resilience layer. RunContext threads a
// context.Context through the placer's annealing loop and the router's
// negotiation iterations so deadlines and cancellation take effect within
// one iteration; every stage failure is wrapped in a StageError carrying
// the stage name, design and seed, with sentinel causes (ErrUnroutable,
// ErrPlacementOverflow, ErrTimedOut) reachable through errors.Is; a
// non-converging router degrades to a partial Result whose Convergence
// field records the residual overuse instead of silently reporting clean
// congestion; and RunWithRetry reruns failed flows under a RetryPolicy
// with seed re-rolling and router escalation. Config.Faults accepts a
// deterministic fault injector (internal/faults) so all of those paths are
// testable.
package flow

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/congestion"
	"repro/internal/faults"
	"repro/internal/fpga"
	"repro/internal/hls"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/rtl"
	"repro/internal/timing"
)

// Config selects the device, clock and tool options for one implementation
// run. The zero value is unusable; start from DefaultConfig.
type Config struct {
	Dev    *fpga.Device
	Clock  hls.Clock
	Seed   int64
	Place  place.Options
	Route  route.Options
	Timing timing.Model

	// StrictConvergence makes RunContext fail with ErrUnroutable when the
	// router exhausts its iterations with overused tiles, instead of
	// degrading to a partial Result (the default, matching the paper:
	// congestion above 100 % is the signal being studied, not a failure).
	StrictConvergence bool

	// Cache optionally memoizes successful runs content-addressed by
	// CacheKey (design text, config, seed): repeated flows across label
	// runs, ablations and experiments are served without re-running the
	// implementation stages. Nil disables memoization. Runs with a fault
	// injector are never cached (see CacheKey).
	Cache Cache

	// Obs optionally observes the run: one span per stage (parented on
	// the context's active span when the caller — e.g. the dataset
	// builder — installed one), stage-duration histograms, placer/router
	// metrics and cache/fault/retry events. Nil disables observation;
	// the flow's outputs are byte-identical either way, and the Result's
	// Timings breakdown is populated regardless. Excluded from CacheKey.
	Obs *obs.Observer

	// Faults optionally injects deterministic stage failures (tests,
	// chaos runs). Nil disables injection.
	Faults faults.Injector
	// Attempt is the zero-based retry attempt this run represents; it keys
	// fault injection and is stamped into StageError. RunWithRetry sets it
	// per attempt.
	Attempt int
}

// DefaultConfig is the paper's setup: XC7Z020 at a 100 MHz target.
func DefaultConfig() Config {
	return Config{
		Dev:    fpga.XC7Z020(),
		Clock:  hls.DefaultClock(),
		Seed:   1,
		Place:  place.DefaultOptions(),
		Route:  route.DefaultOptions(),
		Timing: timing.DefaultModel(),
	}
}

// Convergence reports how cleanly the router finished: a run counts as
// converged when no tile-direction pair is left above capacity. A
// non-converged run is still a usable partial result — congestion above
// 100 % is precisely what the predictor learns — but callers that need
// clean routing can check this instead of trusting the map blindly.
type Convergence struct {
	// Converged is true when the final pass left no overused crossings.
	Converged bool
	// OverusedEdges counts tile-direction pairs above capacity after the
	// final pass.
	OverusedEdges int
	// Iterations is the number of rip-up-and-reroute passes executed.
	Iterations int
}

// Result bundles every artifact of one implementation run.
type Result struct {
	Mod       *ir.Module
	Config    Config
	Sched     *hls.Schedule
	Bind      *hls.Binding
	Netlist   *rtl.Netlist
	Placement *place.Placement
	Routing   *route.Result
	Timing    *timing.Report

	// Convergence is the router's convergence status; see Convergence.
	Convergence Convergence

	// Timings is the per-stage wall-time breakdown of this run — always
	// populated, tracer or not. Cached Results keep the timings of the
	// execution that produced them.
	Timings Timings
}

// Run executes the full flow on a module. It is RunContext without
// cancellation.
func Run(m *ir.Module, cfg Config) (*Result, error) {
	return RunContext(context.Background(), m, cfg)
}

// RunContext executes the full flow on a module under a context. The
// context is checked at every stage boundary, between the placer's
// annealing sweeps, and between the router's negotiation iterations, so
// cancellation or a deadline terminates the run within one iteration. A
// deadline expiry returns an error matching both ErrTimedOut and
// context.DeadlineExceeded; plain cancellation matches context.Canceled.
func RunContext(ctx context.Context, m *ir.Module, cfg Config) (res *Result, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	design := "<nil>"
	if m != nil {
		design = m.Name
	}
	fail := func(stage string, err error) error {
		return stageErr(stage, design, cfg.Seed, err)
	}
	if m == nil {
		return nil, fail(StageSchedule, fmt.Errorf("nil module"))
	}
	if cfg.Dev == nil {
		return nil, fail(StagePlace, fmt.Errorf("config has no device"))
	}

	// Observation: one "flow" span wrapping one child span per stage, a
	// Timings breakdown measured regardless of the observer, and stage
	// histograms/counters. All of it happens on stage boundaries, so runs
	// stay byte-identical with observation off. The span-attribute
	// construction is guarded by obs.Tracing so a bare run allocates
	// nothing here.
	o := cfg.Obs
	var root *obs.Span
	if obs.Tracing(ctx, o) {
		ctx, root = obs.StartSpan(ctx, o, "flow",
			obs.String("design", design), obs.Int("seed", cfg.Seed), obs.Int("attempt", int64(cfg.Attempt)))
	}
	defer func() {
		root.SetError(err)
		root.End()
	}()
	var tm Timings
	runStart := time.Now()

	// begin opens one stage's observation; the returned end closure
	// records the duration into tm, the stage histogram and the span.
	begin := func(stage string) (*obs.Span, func(errp *error)) {
		sp := root.Child(stage)
		t0 := time.Now()
		return sp, func(errp *error) {
			d := time.Since(t0)
			tm.set(stage, d)
			if errp != nil && *errp != nil {
				sp.SetError(*errp)
			}
			sp.End()
			o.ObserveMs(obs.MetricStagePrefix+stage, d)
		}
	}

	// Serve memoized results (after the context check, so cancelled runs
	// keep failing like uncached ones; fault-injected runs bypass the
	// cache so injected failures stay observable).
	var cacheKey string
	if cfg.Cache != nil && cfg.Faults == nil {
		if err := ctxErr(ctx); err != nil {
			return nil, fail(StageSchedule, err)
		}
		cacheKey = CacheKey(m, cfg)
		if res, ok := cfg.Cache.Get(cacheKey); ok {
			root.Event("flowcache.hit")
			o.Count(obs.MetricFlowRuns, 1)
			if l := o.Logger(); l != nil {
				l.Debug("flow served from cache", "design", design, "seed", cfg.Seed)
			}
			return res, nil
		}
		root.Event("flowcache.miss")
	}

	// enter guards one stage: context first, then injected faults.
	enter := func(stage string) error {
		if err := ctxErr(ctx); err != nil {
			return fail(stage, err)
		}
		if cfg.Faults != nil {
			if err := cfg.Faults.Check(design, stage, cfg.Attempt); err != nil {
				root.Event("fault.injected", obs.String("stage", stage))
				o.Count(obs.MetricFlowFaults, 1)
				if l := o.Logger(); l != nil {
					l.Warn("stage fault injected", "design", design, "stage", stage, "attempt", cfg.Attempt)
				}
				return fail(stage, err)
			}
		}
		return nil
	}

	if err := enter(StageSchedule); err != nil {
		return nil, err
	}
	_, end := begin(StageSchedule)
	sched, serr := hls.ScheduleModule(m, cfg.Clock)
	end(&serr)
	if serr != nil {
		return nil, fail(StageSchedule, serr)
	}

	if err := enter(StageBind); err != nil {
		return nil, err
	}
	_, end = begin(StageBind)
	bind := hls.BindModule(sched)
	end(nil)

	if err := enter(StageElaborate); err != nil {
		return nil, err
	}
	_, end = begin(StageElaborate)
	nl := rtl.Elaborate(bind)
	end(nil)

	rng := rand.New(rand.NewSource(cfg.Seed))
	if err := enter(StagePlace); err != nil {
		return nil, err
	}
	psp, end := begin(StagePlace)
	pl, perr := place.PlaceContext(ctx, nl, cfg.Dev, rng, cfg.Place)
	end(&perr)
	if perr != nil {
		if errors.Is(perr, place.ErrCapacity) {
			perr = fmt.Errorf("%w: %w", ErrPlacementOverflow, perr)
		}
		return nil, fail(StagePlace, decorateCtx(perr))
	}
	if o != nil {
		o.Count(obs.MetricPlaceMoves, int64(pl.Stats.Moves))
		o.Count(obs.MetricPlaceAccepted, int64(pl.Stats.Accepted))
		o.Observe(obs.MetricPlaceAcceptRate, obs.RatioBuckets, pl.Stats.AcceptRate())
	}
	if psp != nil {
		psp.SetAttr(obs.Int("moves", int64(pl.Stats.Moves)),
			obs.Float("accept_rate", pl.Stats.AcceptRate()))
	}

	if err := enter(StageRoute); err != nil {
		return nil, err
	}
	rsp, end := begin(StageRoute)
	rr, rerr := route.RouteContext(ctx, pl, rng, cfg.Route)
	end(&rerr)
	if rerr != nil {
		return nil, fail(StageRoute, decorateCtx(rerr))
	}
	conv := Convergence{
		Converged:     rr.Overflow == 0,
		OverusedEdges: rr.Overflow,
		Iterations:    rr.Iterations,
	}
	if o != nil {
		o.Observe(obs.MetricRouteIterations, obs.SmallCountBuckets, float64(rr.Iterations))
		if !conv.Converged {
			o.Count(obs.MetricRouteOverflow, int64(rr.Overflow))
			o.Count(obs.MetricRouteNonConverged, 1)
		}
	}
	if rsp != nil {
		rsp.SetAttr(obs.Int("iterations", int64(rr.Iterations)),
			obs.Int("overflow", int64(rr.Overflow)))
	}
	if cfg.StrictConvergence && !conv.Converged {
		return nil, fail(StageRoute, fmt.Errorf("%w: %d overused crossings after %d iterations",
			ErrUnroutable, conv.OverusedEdges, conv.Iterations))
	}

	if err := enter(StageTiming); err != nil {
		return nil, err
	}
	_, end = begin(StageTiming)
	rep := timing.Analyze(sched, nl, rr, cfg.Timing)
	end(nil)

	tm.Total = time.Since(runStart)
	res = &Result{
		Mod:         m,
		Config:      cfg,
		Sched:       sched,
		Bind:        bind,
		Netlist:     nl,
		Placement:   pl,
		Routing:     rr,
		Timing:      rep,
		Convergence: conv,
		Timings:     tm,
	}
	o.Count(obs.MetricFlowRuns, 1)
	o.ObserveMs(obs.MetricFlowMs, tm.Total)
	if l := o.Logger(); l != nil {
		l.Debug("flow run complete", "design", design, "seed", cfg.Seed,
			"total_ms", tm.Total.Milliseconds(), "converged", conv.Converged)
	}
	if cacheKey != "" {
		cfg.Cache.Put(cacheKey, res)
	}
	return res, nil
}

// ctxErr returns the context's error, tagging deadline expiry with
// ErrTimedOut so callers can match either the context sentinel or the
// flow's.
func ctxErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return decorateCtx(err)
	}
	return nil
}

// decorateCtx pairs context.DeadlineExceeded with ErrTimedOut.
func decorateCtx(err error) error {
	if errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, ErrTimedOut) {
		return fmt.Errorf("%w: %w", ErrTimedOut, err)
	}
	return err
}

// PerfRow is the performance summary the paper's tables report per
// implementation.
type PerfRow struct {
	Name          string
	WNS           float64
	FmaxMHz       float64
	LatencyCycles int64
	MaxVertPct    float64
	MaxHorizPct   float64
	MaxCongPct    float64
	CongestedCLBs int
}

// Perf extracts the table row for a run.
func (r *Result) Perf(name string) PerfRow {
	vs := r.Routing.Map.Summarize(congestion.Vertical)
	hs := r.Routing.Map.Summarize(congestion.Horizontal)
	max := vs.Max
	if hs.Max > max {
		max = hs.Max
	}
	return PerfRow{
		Name:          name,
		WNS:           timing.RoundWNS(r.Timing.WNS),
		FmaxMHz:       r.Timing.FmaxMHz,
		LatencyCycles: r.Timing.LatencyCycles,
		MaxVertPct:    vs.Max,
		MaxHorizPct:   hs.Max,
		MaxCongPct:    max,
		CongestedCLBs: r.Routing.Map.CongestedTiles(100),
	}
}
