package flow

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/ir"
)

// recordingCache is a minimal map-backed Cache that counts traffic. The real
// LRU implementation lives in internal/flowcache (which imports this
// package); flow's own tests only need the interface contract.
type recordingCache struct {
	m    map[string]*Result
	gets int
	puts int
}

func newRecordingCache() *recordingCache {
	return &recordingCache{m: make(map[string]*Result)}
}

func (c *recordingCache) Get(key string) (*Result, bool) {
	c.gets++
	res, ok := c.m[key]
	return res, ok
}

func (c *recordingCache) Put(key string, res *Result) {
	c.puts++
	c.m[key] = res
}

func TestCacheKeyDeterministic(t *testing.T) {
	cfg := quickConfig()
	k1 := CacheKey(smallModule(), cfg)
	k2 := CacheKey(smallModule(), cfg)
	if k1 != k2 {
		t.Fatalf("same design+config hashed differently: %s vs %s", k1, k2)
	}
	if len(k1) != 64 {
		t.Fatalf("key is not a hex sha256: %q", k1)
	}
}

func TestCacheKeySensitivity(t *testing.T) {
	base := quickConfig()
	m := smallModule()
	k0 := CacheKey(m, base)

	// Every flow-relevant input must change the key.
	variants := map[string]Config{}
	cfg := base
	cfg.Seed = base.Seed + 1
	variants["seed"] = cfg
	cfg = base
	cfg.Place.Moves = base.Place.Moves + 1
	variants["place option"] = cfg
	cfg = base
	cfg.Route.Iterations = base.Route.Iterations + 1
	variants["route option"] = cfg
	cfg = base
	cfg.Clock.PeriodNS = base.Clock.PeriodNS * 2
	variants["clock"] = cfg
	cfg = base
	cfg.StrictConvergence = !base.StrictConvergence
	variants["strict convergence"] = cfg
	cfg = base
	dev := *base.Dev
	dev.VCap = base.Dev.VCap + 1
	cfg.Dev = &dev
	variants["device capacity"] = cfg
	cfg = base
	cfg.Timing.PerTileNS = base.Timing.PerTileNS + 1
	variants["timing model"] = cfg

	seen := map[string]string{k0: "base"}
	for name, v := range variants {
		k := CacheKey(m, v)
		if prev, dup := seen[k]; dup {
			t.Errorf("changing %s produced the same key as %s", name, prev)
		}
		seen[k] = name
	}

	// A different design text changes the key too.
	m2 := smallModule()
	m2.Name = "other"
	if CacheKey(m2, base) == k0 {
		t.Error("different design hashed to the same key")
	}

	// Attempt is retry metadata, not a flow input: same key.
	cfg = base
	cfg.Attempt = 7
	if CacheKey(m, cfg) != k0 {
		t.Error("Attempt changed the key; retries would never hit the cache")
	}
}

func TestRunContextServesFromCache(t *testing.T) {
	cache := newRecordingCache()
	cfg := quickConfig()
	cfg.Cache = cache

	r1, err := Run(smallModule(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cache.puts != 1 {
		t.Fatalf("first run stored %d results, want 1", cache.puts)
	}
	r2, err := Run(smallModule(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r2 != r1 {
		t.Fatal("second identical run did not return the cached *Result")
	}
	if cache.puts != 1 {
		t.Fatalf("cache hit re-stored the result (puts=%d)", cache.puts)
	}

	// A different seed is a different key: miss, fresh run, second Put.
	cfg.Seed = 999
	r3, err := Run(smallModule(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r3 == r1 {
		t.Fatal("different seed served the old cached result")
	}
	if cache.puts != 2 {
		t.Fatalf("miss did not store its result (puts=%d)", cache.puts)
	}
}

func TestFaultInjectorBypassesCache(t *testing.T) {
	cache := newRecordingCache()
	cfg := quickConfig()
	cfg.Cache = cache
	cfg.Faults = faults.Script{} // injects nothing, but marks the run as chaos

	if _, err := Run(smallModule(), cfg); err != nil {
		t.Fatal(err)
	}
	if cache.gets != 0 || cache.puts != 0 {
		t.Fatalf("fault-injected run touched the cache (gets=%d puts=%d)",
			cache.gets, cache.puts)
	}
}

func TestFailedRunsAreNotCached(t *testing.T) {
	cache := newRecordingCache()
	cfg := quickConfig()
	cfg.Cache = cache
	if _, err := Run(&ir.Module{Name: "broken"}, cfg); err == nil {
		t.Fatal("invalid module accepted")
	}
	if cache.puts != 0 {
		t.Fatalf("failed run stored a result (puts=%d)", cache.puts)
	}
}
