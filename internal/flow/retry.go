package flow

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/ir"
	"repro/internal/obs"
)

// RetryPolicy governs how a failed flow run is retried. Each retry
// escalates: the placement seed is re-rolled (SeedStride) so a stochastic
// placer failure does not repeat, the router gets extra negotiation
// iterations (RouteIterStep) and a softened overflow penalty
// (CapacityRelax) so hard-to-route designs trade congestion quality for
// completion. The zero value retries nothing; start from
// DefaultRetryPolicy.
//
// One RetryPolicy value may drive many concurrent RunWithRetry calls (the
// parallel dataset builder hands the same policy to every worker): the
// policy is never mutated — escalation derives a fresh Config per attempt
// — and each attempt's backoff uses its own timer. Retryable, when set,
// must therefore be safe for concurrent use, as must any fault injector
// installed in Config.Faults (see faults.Injector).
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts (first try included).
	// Values below 1 mean a single attempt.
	MaxAttempts int
	// SeedStride is added to Config.Seed on every retry, re-rolling the
	// stochastic placement. Zero keeps the seed fixed.
	SeedStride int64
	// RouteIterStep adds this many router iterations per retry, giving
	// the negotiation more room to resolve overuse.
	RouteIterStep int
	// CapacityRelax softens the router's overflow penalty per retry:
	// attempt k scales Route.OverflowPenalty by 1/(1 + CapacityRelax*k),
	// accepting more congestion in exchange for convergence.
	CapacityRelax float64
	// Backoff is the wait between attempts — pointless for the in-process
	// flow, but the hook future remote implementation backends need. The
	// wait respects context cancellation.
	Backoff time.Duration
	// Retryable optionally filters which errors are retried; nil retries
	// every failure except context cancellation, which always aborts.
	Retryable func(error) bool
}

// DefaultRetryPolicy is the escalation used by dataset builds: three
// attempts, a large prime seed stride, two extra router iterations and a
// 30 % overflow-penalty relax per retry.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:   3,
		SeedStride:    104729,
		RouteIterStep: 2,
		CapacityRelax: 0.3,
	}
}

// Attempts normalizes MaxAttempts: the total attempt count RunWithRetry
// will make, never below one.
func (p RetryPolicy) Attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// Escalate derives the config for a given zero-based attempt. It is
// exported so remote executors can reproduce the escalation a worker's
// RunWithRetry performs — the fleet coordinator accepts a completion whose
// artifact hashes to the cache key of any attempt's config, since a cell
// that fails transiently succeeds under an escalated config, not the base
// one.
func (p RetryPolicy) Escalate(cfg Config, attempt int) Config {
	cfg.Attempt = attempt
	if attempt == 0 {
		return cfg
	}
	cfg.Seed += int64(attempt) * p.SeedStride
	cfg.Route.Iterations += attempt * p.RouteIterStep
	if p.CapacityRelax > 0 {
		cfg.Route.OverflowPenalty /= 1 + p.CapacityRelax*float64(attempt)
	}
	return cfg
}

// RunWithRetry executes the flow under the policy, escalating on each
// failed attempt. It returns the first successful Result; after the last
// attempt it returns the final StageError, annotated with the attempt
// count. Context cancellation aborts immediately and is never retried.
func RunWithRetry(ctx context.Context, m *ir.Module, cfg Config, p RetryPolicy) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	o := cfg.Obs
	n := p.Attempts()
	// One "flow.attempts" span wraps the whole escalation when retrying is
	// possible, so each attempt's "flow" span nests under it and failed
	// attempts show up as events on the wrapper.
	var sp *obs.Span
	if n > 1 && obs.Tracing(ctx, o) {
		design := "<nil>"
		if m != nil {
			design = m.Name
		}
		ctx, sp = obs.StartSpan(ctx, o, "flow.attempts",
			obs.String("design", design), obs.Int("max_attempts", int64(n)))
	}
	defer sp.End()
	var last error
	for attempt := 0; attempt < n; attempt++ {
		if attempt > 0 && p.Backoff > 0 {
			if err := sleepCtx(ctx, p.Backoff); err != nil {
				return nil, err
			}
		}
		res, err := RunContext(ctx, m, p.Escalate(cfg, attempt))
		if err == nil {
			if attempt > 0 {
				sp.SetAttr(obs.Int("succeeded_on_attempt", int64(attempt)))
			}
			return res, nil
		}
		last = err
		if ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, err
		}
		if p.Retryable != nil && !p.Retryable(err) {
			return nil, err
		}
		if attempt+1 < n {
			// This failure will be retried: record the escalation.
			sp.Event("attempt.failed", obs.Int("attempt", int64(attempt)), obs.String("error", err.Error()))
			o.Count(obs.MetricFlowRetries, 1)
			if l := o.Logger(); l != nil {
				l.Warn("flow attempt failed, retrying", "attempt", attempt, "error", err)
			}
		}
	}
	if n > 1 {
		last = fmt.Errorf("flow: %d attempts exhausted: %w", n, last)
	}
	return nil, last
}

// sleepCtx waits d or until the context is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctxErr(ctx)
	case <-t.C:
		return nil
	}
}
