package flow

import (
	"context"
	"testing"

	"repro/internal/faults"
	"repro/internal/obs"
)

// TestResultTimings: every Result carries the per-stage breakdown, with or
// without a tracer attached.
func TestResultTimings(t *testing.T) {
	res, err := Run(smallModule(), quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	tm := res.Timings
	var sum int64
	for _, stage := range Stages {
		d := tm.Stage(stage)
		if d <= 0 {
			t.Errorf("stage %s has no timing", stage)
		}
		sum += int64(d)
	}
	if int64(tm.Total) < sum {
		t.Errorf("Total %v less than stage sum %v", tm.Total, sum)
	}
	if tm.String() == "" {
		t.Error("empty Timings rendering")
	}
}

// TestFlowSpansAndMetrics: an observed run records one root "flow" span
// with exactly one child per stage, and the registry carries the canonical
// flow series.
func TestFlowSpansAndMetrics(t *testing.T) {
	o := obs.New()
	cfg := quickConfig()
	cfg.Obs = o
	if _, err := RunContext(context.Background(), smallModule(), cfg); err != nil {
		t.Fatal(err)
	}

	spans := o.Trace.Spans()
	byName := map[string]obs.SpanData{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	root, ok := byName["flow"]
	if !ok {
		t.Fatalf("no root flow span in %d spans", len(spans))
	}
	if root.ParentID != 0 {
		t.Error("flow span is not a root")
	}
	for _, stage := range Stages {
		s, ok := byName[stage]
		if !ok {
			t.Errorf("no span for stage %s", stage)
			continue
		}
		if s.ParentID != root.ID {
			t.Errorf("stage %s not parented on flow span", stage)
		}
	}
	if len(spans) != 1+len(Stages) {
		t.Errorf("got %d spans, want %d", len(spans), 1+len(Stages))
	}

	snap := o.Reg.Snapshot()
	if v, _ := snap.Counter(obs.MetricFlowRuns); v != 1 {
		t.Errorf("flow.runs=%d, want 1", v)
	}
	for _, stage := range Stages {
		h := snap.Histogram(obs.MetricStagePrefix + stage)
		if h == nil || h.Count != 1 {
			t.Errorf("stage histogram %s missing or wrong count: %+v", stage, h)
		}
	}
	if h := snap.Histogram(obs.MetricPlaceAcceptRate); h == nil || h.Count != 1 {
		t.Errorf("accept-rate histogram missing: %+v", h)
	}
	if v, _ := snap.Counter(obs.MetricPlaceMoves); v <= 0 {
		t.Errorf("place.moves=%d, want > 0", v)
	}
}

// TestRetryObservability: a fault on the first route attempt must surface
// as a fault event, a retry counter bump and an attempt-failed event on the
// wrapping "flow.attempts" span.
func TestRetryObservability(t *testing.T) {
	o := obs.New()
	cfg := quickConfig()
	cfg.Obs = o
	cfg.Faults = faults.FailFirst(StageRoute, 1, ErrUnroutable)
	res, err := RunWithRetry(context.Background(), smallModule(), cfg,
		RetryPolicy{MaxAttempts: 3, SeedStride: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("nil result")
	}

	snap := o.Reg.Snapshot()
	if v, _ := snap.Counter(obs.MetricFlowRetries); v != 1 {
		t.Errorf("flow.retries=%d, want 1", v)
	}
	if v, _ := snap.Counter(obs.MetricFlowFaults); v != 1 {
		t.Errorf("flow.faults_injected=%d, want 1", v)
	}

	var attempts *obs.SpanData
	events := map[string]int{}
	flowSpans := 0
	for _, s := range o.Trace.Spans() {
		s := s
		if s.Name == "flow.attempts" {
			attempts = &s
		}
		if s.Name == "flow" {
			flowSpans++
		}
		for _, e := range s.Events {
			events[e.Name]++
		}
	}
	if attempts == nil {
		t.Fatal("no flow.attempts span")
	}
	if flowSpans != 2 {
		t.Errorf("got %d flow spans, want 2 (failed + succeeded attempt)", flowSpans)
	}
	if events["attempt.failed"] != 1 {
		t.Errorf("attempt.failed events = %d, want 1", events["attempt.failed"])
	}
	if events["fault.injected"] != 1 {
		t.Errorf("fault.injected events = %d, want 1", events["fault.injected"])
	}
}

// TestObserverDoesNotChangeResult pins the core invariant: an observed run
// computes exactly what an unobserved run computes.
func TestObserverDoesNotChangeResult(t *testing.T) {
	cfg := quickConfig()
	bare, err := Run(smallModule(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Obs = obs.New()
	seen, err := Run(smallModule(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	pb, ps := bare.Perf("m"), seen.Perf("m")
	if pb != ps {
		t.Errorf("observed run diverged: %+v vs %+v", pb, ps)
	}
	if bare.Placement.Stats != seen.Placement.Stats {
		t.Errorf("placer stats diverged: %+v vs %+v", bare.Placement.Stats, seen.Placement.Stats)
	}
}

// TestCacheHitObservability: the second identical run must be served from
// cache, record a hit event on its span, and return the original run's
// timings.
func TestCacheHitObservability(t *testing.T) {
	o := obs.New()
	cfg := quickConfig()
	cfg.Obs = o
	cfg.Cache = newRecordingCache()
	first, err := Run(smallModule(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(smallModule(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if second != first {
		t.Fatal("second run not served from cache")
	}
	if second.Timings != first.Timings {
		t.Error("cached result lost its original timings")
	}
	hits := 0
	for _, s := range o.Trace.Spans() {
		for _, e := range s.Events {
			if e.Name == "flowcache.hit" {
				hits++
			}
		}
	}
	if hits != 1 {
		t.Errorf("flowcache.hit events = %d, want 1", hits)
	}
	if v, _ := o.Reg.Snapshot().Counter(obs.MetricFlowRuns); v != 2 {
		t.Errorf("flow.runs=%d, want 2 (cache hits count as runs)", v)
	}
}
