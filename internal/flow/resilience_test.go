package flow

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/fpga"
)

func TestStageErrorWrapsCause(t *testing.T) {
	cause := errors.New("boom")
	err := stageErr(StageRoute, "d", 7, cause)
	var se *StageError
	if !errors.As(err, &se) {
		t.Fatalf("not a StageError: %v", err)
	}
	if se.Stage != StageRoute || se.Design != "d" || se.Seed != 7 {
		t.Fatalf("bad fields: %+v", se)
	}
	if !errors.Is(err, cause) {
		t.Fatal("cause not reachable via errors.Is")
	}
	// Re-wrapping an existing StageError must not nest a second layer.
	if again := stageErr(StagePlace, "x", 1, err); again != err {
		t.Fatalf("double-wrapped: %v", again)
	}
}

func TestRunContextFaultInjectionPerStage(t *testing.T) {
	m := smallModule()
	for _, stage := range Stages {
		cause := errors.New("injected " + stage)
		cfg := quickConfig()
		cfg.Faults = faults.Script{{Stage: stage, Attempt: 0}: cause}
		_, err := Run(m, cfg)
		var se *StageError
		if !errors.As(err, &se) {
			t.Fatalf("%s: not a StageError: %v", stage, err)
		}
		if se.Stage != stage || se.Design != m.Name || !errors.Is(err, cause) {
			t.Fatalf("%s: wrong stage error: %+v", stage, se)
		}
	}
}

// TestRetrySucceedsWithRerolledSeed is acceptance criterion (a): injected
// router non-convergence on attempt 1 is retried under RetryPolicy and
// succeeds on attempt 2 with a re-rolled seed.
func TestRetrySucceedsWithRerolledSeed(t *testing.T) {
	cfg := quickConfig()
	cfg.Faults = faults.FailFirst(StageRoute, 1, ErrUnroutable)
	policy := RetryPolicy{MaxAttempts: 2, SeedStride: 104729, RouteIterStep: 2, CapacityRelax: 0.3}
	res, err := RunWithRetry(context.Background(), smallModule(), cfg, policy)
	if err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
	if res.Config.Attempt != 1 {
		t.Fatalf("succeeded on attempt %d, want 1", res.Config.Attempt)
	}
	if got, want := res.Config.Seed, cfg.Seed+policy.SeedStride; got != want {
		t.Fatalf("seed not re-rolled: got %d want %d", got, want)
	}
	if got, want := res.Config.Route.Iterations, cfg.Route.Iterations+policy.RouteIterStep; got != want {
		t.Fatalf("router iterations not escalated: got %d want %d", got, want)
	}
	if res.Config.Route.OverflowPenalty >= cfg.Route.OverflowPenalty {
		t.Fatalf("overflow penalty not relaxed: %v >= %v",
			res.Config.Route.OverflowPenalty, cfg.Route.OverflowPenalty)
	}
}

func TestRetryExhaustionKeepsTypedError(t *testing.T) {
	cfg := quickConfig()
	cfg.Faults = faults.FailFirst(StageRoute, 99, ErrUnroutable)
	_, err := RunWithRetry(context.Background(), smallModule(), cfg, RetryPolicy{MaxAttempts: 3, SeedStride: 1})
	if !errors.Is(err, ErrUnroutable) {
		t.Fatalf("exhausted retries lost sentinel: %v", err)
	}
	var se *StageError
	if !errors.As(err, &se) || se.Stage != StageRoute {
		t.Fatalf("exhausted retries lost stage context: %v", err)
	}
}

func TestRetryRespectsRetryableFilter(t *testing.T) {
	cfg := quickConfig()
	cfg.Faults = faults.FailFirst(StageSchedule, 99, errors.New("fatal"))
	calls := 0
	policy := RetryPolicy{MaxAttempts: 5, Retryable: func(error) bool { calls++; return false }}
	_, err := RunWithRetry(context.Background(), smallModule(), cfg, policy)
	if err == nil || calls != 1 {
		t.Fatalf("non-retryable error was retried (%d filter calls): %v", calls, err)
	}
}

// TestCancelledContextStopsRun is acceptance criterion (c): a cancelled
// context stops RunContext and returns context.Canceled.
func TestCancelledContextStopsRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, smallModule(), quickConfig())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// cancelOnStage cancels the run's context the moment a stage is entered,
// proving the *next* loop (placer sweeps, router iterations) observes the
// cancellation mid-stage rather than at the following stage boundary.
type cancelOnStage struct {
	stage  string
	cancel context.CancelFunc
}

func (c cancelOnStage) Check(design, stage string, attempt int) error {
	if stage == c.stage {
		c.cancel()
	}
	return nil
}

func TestCancellationInsidePlacerAndRouter(t *testing.T) {
	for _, stage := range []string{StagePlace, StageRoute} {
		ctx, cancel := context.WithCancel(context.Background())
		cfg := quickConfig()
		cfg.Faults = cancelOnStage{stage: stage, cancel: cancel}
		_, err := RunContext(ctx, smallModule(), cfg)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancel inside %s: got %v, want context.Canceled", stage, err)
		}
		var se *StageError
		if !errors.As(err, &se) || se.Stage != stage {
			t.Fatalf("cancel inside %s: stage context lost: %v", stage, err)
		}
	}
}

func TestDeadlineMatchesBothSentinels(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	_, err := RunContext(ctx, smallModule(), quickConfig())
	if !errors.Is(err, ErrTimedOut) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline error %v must match ErrTimedOut and DeadlineExceeded", err)
	}
}

func TestCancellationNeverRetried(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunWithRetry(ctx, smallModule(), quickConfig(), RetryPolicy{MaxAttempts: 5, SeedStride: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if err != nil && errors.Is(err, ErrUnroutable) {
		t.Fatal("cancellation misclassified")
	}
}

func TestPlacementOverflowSentinel(t *testing.T) {
	cfg := quickConfig()
	tiny := *fpga.XC7Z020()
	tiny.Cols, tiny.Rows = 1, 1
	tiny.DSPCols, tiny.BRAMCols = nil, nil
	cfg.Dev = &tiny
	_, err := Run(smallModule(), cfg)
	if !errors.Is(err, ErrPlacementOverflow) {
		t.Fatalf("got %v, want ErrPlacementOverflow", err)
	}
	var se *StageError
	if !errors.As(err, &se) || se.Stage != StagePlace {
		t.Fatalf("stage context lost: %v", err)
	}
}

func TestConvergenceStatusDegradation(t *testing.T) {
	cfg := quickConfig()
	starved := *fpga.XC7Z020()
	starved.VCap, starved.HCap = 0.25, 0.25
	cfg.Dev = &starved
	res, err := Run(smallModule(), cfg)
	if err != nil {
		t.Fatalf("starved routing must degrade, not fail: %v", err)
	}
	c := res.Convergence
	if c.Converged || c.OverusedEdges == 0 {
		t.Fatalf("starved channels reported converged: %+v", c)
	}
	if c.OverusedEdges != res.Routing.Overflow || c.Iterations != res.Routing.Iterations {
		t.Fatalf("convergence status disagrees with router: %+v vs overflow=%d iters=%d",
			c, res.Routing.Overflow, res.Routing.Iterations)
	}

	cfg.StrictConvergence = true
	_, err = Run(smallModule(), cfg)
	if !errors.Is(err, ErrUnroutable) {
		t.Fatalf("strict mode: got %v, want ErrUnroutable", err)
	}
}

func TestConvergedRunReportsCleanStatus(t *testing.T) {
	res, err := Run(smallModule(), quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	c := res.Convergence
	if c.Iterations != res.Routing.Iterations || c.OverusedEdges != res.Routing.Overflow {
		t.Fatalf("status mismatch: %+v", c)
	}
	if c.Converged != (res.Routing.Overflow == 0) || c.Converged != res.Routing.Converged() {
		t.Fatalf("converged flag inconsistent: %+v overflow=%d", c, res.Routing.Overflow)
	}
}

func TestRunContextNilModule(t *testing.T) {
	if _, err := RunContext(context.Background(), nil, quickConfig()); err == nil {
		t.Fatal("nil module accepted")
	}
}
