package flow

import (
	"testing"

	"repro/internal/ir"
)

func smallModule() *ir.Module {
	m := ir.NewModule("small")
	b := ir.NewBuilder(m.NewFunction("f"))
	p := b.Port("p", 16)
	a := b.Array("mem", 32, 16, 4)
	var outs []*ir.Op
	for i := 0; i < 12; i++ {
		v := b.Load(a, nil)
		outs = append(outs, b.Op(ir.KindMul, 16, v, p))
	}
	b.Ret(b.ReduceTree(ir.KindAdd, 16, outs))
	return m
}

func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.Place.Moves = 3000
	return cfg
}

func TestRunProducesAllArtifacts(t *testing.T) {
	res, err := Run(smallModule(), quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Sched == nil || res.Bind == nil || res.Netlist == nil ||
		res.Placement == nil || res.Routing == nil || res.Timing == nil {
		t.Fatal("missing artifacts")
	}
	if res.Timing.FmaxMHz <= 0 || res.Timing.LatencyCycles <= 0 {
		t.Error("timing report empty")
	}
}

func TestRunRequiresDevice(t *testing.T) {
	cfg := quickConfig()
	cfg.Dev = nil
	if _, err := Run(smallModule(), cfg); err == nil {
		t.Fatal("nil device accepted")
	}
}

func TestRunRejectsInvalidModule(t *testing.T) {
	if _, err := Run(&ir.Module{Name: "broken"}, quickConfig()); err == nil {
		t.Fatal("invalid module accepted")
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	cfg := quickConfig()
	r1, err := Run(smallModule(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(smallModule(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Timing.WNS != r2.Timing.WNS || r1.Routing.Overflow != r2.Routing.Overflow {
		t.Error("identical configs produced different results")
	}
	cfg2 := cfg
	cfg2.Seed = 999
	r3, err := Run(smallModule(), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Placement.HPWL() == r3.Placement.HPWL() {
		t.Error("different seeds produced identical placements (suspicious)")
	}
}

func TestPerfRowConsistency(t *testing.T) {
	res, err := Run(smallModule(), quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := res.Perf("x")
	if p.Name != "x" {
		t.Error("name not propagated")
	}
	if p.MaxCongPct < p.MaxVertPct-1e-9 || p.MaxCongPct < p.MaxHorizPct-1e-9 {
		t.Error("MaxCongPct below a directional max")
	}
	if p.MaxCongPct != p.MaxVertPct && p.MaxCongPct != p.MaxHorizPct {
		t.Error("MaxCongPct equals neither direction")
	}
	if p.CongestedCLBs != res.Routing.Map.CongestedTiles(100) {
		t.Error("congested CLB count mismatch")
	}
	if p.FmaxMHz != res.Timing.FmaxMHz {
		t.Error("Fmax mismatch")
	}
}
