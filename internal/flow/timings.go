package flow

import (
	"fmt"
	"strings"
	"time"
)

// Timings is the per-stage wall-time breakdown of one flow run. It is
// always populated — no tracer or Observer required — so any caller can
// see where a run's time went straight off the Result. Stage fields are
// zero for stages that never ran (early failure). For a Result served
// from the flow cache, Timings describes the original (cached) execution,
// not the near-instant cache hit.
type Timings struct {
	Schedule  time.Duration
	Bind      time.Duration
	Elaborate time.Duration
	Place     time.Duration
	Route     time.Duration
	Timing    time.Duration
	// Total is the whole run, stage-boundary overhead included.
	Total time.Duration
}

// set records one stage's duration by canonical name.
func (t *Timings) set(stage string, d time.Duration) {
	switch stage {
	case StageSchedule:
		t.Schedule = d
	case StageBind:
		t.Bind = d
	case StageElaborate:
		t.Elaborate = d
	case StagePlace:
		t.Place = d
	case StageRoute:
		t.Route = d
	case StageTiming:
		t.Timing = d
	}
}

// Stage returns the duration recorded for a canonical stage name (zero
// for unknown stages).
func (t Timings) Stage(stage string) time.Duration {
	switch stage {
	case StageSchedule:
		return t.Schedule
	case StageBind:
		return t.Bind
	case StageElaborate:
		return t.Elaborate
	case StagePlace:
		return t.Place
	case StageRoute:
		return t.Route
	case StageTiming:
		return t.Timing
	}
	return 0
}

// String renders the breakdown in flow order, e.g.
// "schedule=1ms bind=0s ... total=120ms".
func (t Timings) String() string {
	var b strings.Builder
	for _, st := range Stages {
		fmt.Fprintf(&b, "%s=%s ", st, t.Stage(st))
	}
	fmt.Fprintf(&b, "total=%s", t.Total)
	return b.String()
}
