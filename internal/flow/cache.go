package flow

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/ir"
)

// Cache memoizes successful flow results, content-addressed by CacheKey.
// The flow package only defines the interface (internal/flowcache provides
// the bounded LRU implementation) so the dependency points outward.
// Implementations must be safe for concurrent use: dataset builds run flows
// from many workers. A cached *Result is shared between all callers that
// hit the same key and must be treated as immutable.
type Cache interface {
	// Get returns the memoized result for key, if present.
	Get(key string) (*Result, bool)
	// Put stores a successful flow result under key.
	Put(key string, res *Result)
}

// CacheKey derives the content-addressed memoization key for running cfg on
// module m: a hash of the design's canonical text serialization, every
// config field that influences flow outputs (device geometry and capacities,
// clock, placer, router and timing options, strict-convergence mode) and
// the seed. Attempt is deliberately excluded — it only stamps error
// metadata — and fault injectors bypass caching entirely (RunContext never
// consults the cache when cfg.Faults is set). Changing any input that could
// change the Result changes the key, which is the cache's only
// invalidation rule.
func CacheKey(m *ir.Module, cfg Config) string {
	h := sha256.New()
	ir.WriteText(h, m)
	fmt.Fprintf(h, "|dev=%+v|clock=%+v|seed=%d|place=%+v|route=%+v|timing=%+v|strict=%v",
		*cfg.Dev, cfg.Clock, cfg.Seed, cfg.Place, cfg.Route, cfg.Timing, cfg.StrictConvergence)
	return hex.EncodeToString(h.Sum(nil))
}
