package flow

import (
	"errors"
	"fmt"
)

// Canonical stage names, in flow order. They key fault injection
// (faults.Injector.Check) and identify the failing stage in StageError.
const (
	StageSchedule  = "schedule"
	StageBind      = "bind"
	StageElaborate = "elaborate"
	StagePlace     = "place"
	StageRoute     = "route"
	StageTiming    = "timing"
)

// Stages lists the canonical stage names in execution order.
var Stages = []string{StageSchedule, StageBind, StageElaborate, StagePlace, StageRoute, StageTiming}

// Sentinel causes a StageError can wrap. Match them with errors.Is.
var (
	// ErrUnroutable marks a router that exhausted its iterations without
	// resolving overuse (only surfaced as an error under
	// Config.StrictConvergence or fault injection; the default flow
	// degrades to a partial Result instead — see Result.Convergence).
	ErrUnroutable = errors.New("design unroutable: router exhausted iterations with overused tiles")
	// ErrPlacementOverflow marks a design whose resource demand exceeds
	// the device capacity, so no legal placement exists.
	ErrPlacementOverflow = errors.New("placement overflow: design exceeds device capacity")
	// ErrTimedOut marks a run cancelled by a context deadline.
	ErrTimedOut = errors.New("flow run timed out")
)

// StageError reports which stage of which design's implementation run
// failed. It wraps the underlying cause, so errors.Is/errors.As reach both
// the sentinel causes above and stage-specific errors.
type StageError struct {
	Stage  string // canonical stage name (Stage* constants)
	Design string // module name
	Seed   int64  // placement seed of the failing attempt
	Err    error
}

// Error implements error.
func (e *StageError) Error() string {
	return fmt.Sprintf("flow: %s stage on %q (seed %d): %v", e.Stage, e.Design, e.Seed, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *StageError) Unwrap() error { return e.Err }

// stageErr wraps err with stage context, avoiding double wrapping when the
// cause already is a StageError.
func stageErr(stage, design string, seed int64, err error) error {
	var se *StageError
	if errors.As(err, &se) {
		return err
	}
	return &StageError{Stage: stage, Design: design, Seed: seed, Err: err}
}
