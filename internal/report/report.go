// Package report renders the designer-facing text reports an HLS tool
// ships: a synthesis report per function (latency, initiation intervals,
// resource usage, schedule depth), a module-level utilization summary
// against the target device, and a post-implementation quality report that
// folds in the routed congestion and timing — the artifacts a user of this
// library reads alongside the congestion predictions.
package report

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/flow"
	"repro/internal/hls"
	"repro/internal/ir"
	"repro/internal/timing"
)

// Synthesis renders the HLS synthesis report of a scheduled, bound design:
// per-function control-state depth, latency, loop table, resource
// estimate, and multiplexer summary.
func Synthesis(sched *hls.Schedule, bind *hls.Binding) string {
	var b strings.Builder
	m := sched.Mod
	fmt.Fprintf(&b, "== HLS SYNTHESIS REPORT: %s ==\n", m.Name)
	fmt.Fprintf(&b, "target clock %.2f ns (uncertainty %.2f ns)\n\n",
		sched.Clock.PeriodNS, sched.Clock.UncertaintyNS)
	for _, f := range m.LiveFuncs() {
		fs := sched.Funcs[f]
		res := bind.FuncBoundResources(f)
		mux := bind.FuncMuxStats(f)
		role := ""
		if f.IsTop {
			role = " (top)"
		}
		fmt.Fprintf(&b, "function %s%s\n", f.Name, role)
		fmt.Fprintf(&b, "  ops %d   control states %d   latency %d cycles\n",
			f.NumOps(), fs.Steps, fs.LatencyCycles)
		if mob := sched.ComputeMobility(f); mob != nil && f.NumOps() > 0 {
			fmt.Fprintf(&b, "  scheduling slack: %d critical ops (zero mobility), mean mobility %.1f states\n",
				len(mob.CriticalOps()), mob.MeanSlack())
		}
		fmt.Fprintf(&b, "  resources: LUT %d  FF %d  DSP %d  BRAM %d\n",
			res.LUT, res.FF, res.DSP, res.BRAM)
		if mux.Count > 0 {
			fmt.Fprintf(&b, "  muxes: %d (avg %.1f inputs, %.1f bits, %d LUT)\n",
				mux.Count, mux.AvgInputs, mux.AvgWidth, mux.Res.LUT)
		}
		if len(f.Loops) > 0 {
			fmt.Fprintf(&b, "  loops:\n")
			for _, l := range loopsInOrder(f) {
				attrs := []string{fmt.Sprintf("trips %d", l.TripCount)}
				if l.Unroll > 1 {
					attrs = append(attrs, fmt.Sprintf("unroll %d", l.Unroll))
				}
				if l.Pipelined {
					attrs = append(attrs, fmt.Sprintf("pipelined II=%d", l.II))
				}
				fmt.Fprintf(&b, "    %s%s: %s\n",
					strings.Repeat("  ", l.Depth()-1), l.Name, strings.Join(attrs, ", "))
			}
		}
		if len(f.Arrays) > 0 {
			fmt.Fprintf(&b, "  memories:\n")
			for _, a := range f.Arrays {
				r := hls.ArrayResources(a)
				kind := "distributed"
				if r.BRAM > 0 {
					kind = fmt.Sprintf("%d x RAMB18", r.BRAM)
				}
				fmt.Fprintf(&b, "    %s: %d x %d bits, %d bank(s), %s\n",
					a.Name, a.Words, a.Bits, a.Banks, kind)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func loopsInOrder(f *ir.Function) []*ir.Loop {
	loops := append([]*ir.Loop(nil), f.Loops...)
	sort.Slice(loops, func(i, j int) bool { return loops[i].ID < loops[j].ID })
	return loops
}

// Utilization renders the post-binding device utilization table.
func Utilization(res *flow.Result) string {
	var b strings.Builder
	bound := res.Bind.ModuleBoundResources()
	tot := res.Config.Dev.Totals
	fmt.Fprintf(&b, "== UTILIZATION: %s on %s ==\n", res.Mod.Name, res.Config.Dev.Name)
	row := func(name string, used, avail int) {
		pct := 0.0
		if avail > 0 {
			pct = 100 * float64(used) / float64(avail)
		}
		fmt.Fprintf(&b, "%-6s %8d / %8d  (%5.1f%%)\n", name, used, avail, pct)
	}
	row("LUT", bound.LUT, tot.LUT)
	row("FF", bound.FF, tot.FF)
	row("DSP", bound.DSP, tot.DSP)
	row("BRAM", bound.BRAM, tot.BRAM)
	st := res.Netlist.ComputeStats()
	fmt.Fprintf(&b, "cells %d   nets %d   pins %d   bus wires %d\n",
		st.Cells, st.Nets, st.Pins, st.TotalWires)
	return b.String()
}

// Quality renders the post-implementation quality-of-results report:
// timing, congestion summary and the worst paths.
func Quality(res *flow.Result, worstPaths int) string {
	var b strings.Builder
	p := res.Perf(res.Mod.Name)
	fmt.Fprintf(&b, "== IMPLEMENTATION QoR: %s ==\n", res.Mod.Name)
	fmt.Fprintf(&b, "WNS %.3f ns   Fmax %.1f MHz   latency %d cycles\n",
		p.WNS, p.FmaxMHz, p.LatencyCycles)
	fmt.Fprintf(&b, "congestion: max V %.1f%%  max H %.1f%%  tiles >100%%: %d  routing overflow: %d\n",
		p.MaxVertPct, p.MaxHorizPct, p.CongestedCLBs, res.Routing.Overflow)
	if worstPaths > 0 {
		paths := timing.CriticalPaths(res.Sched, res.Netlist, res.Routing, res.Config.Timing, worstPaths)
		b.WriteString(timing.FormatPaths(paths))
	}
	return b.String()
}

// Full renders all three reports for a completed run.
func Full(res *flow.Result) string {
	return Synthesis(res.Sched, res.Bind) + "\n" +
		Utilization(res) + "\n" +
		Quality(res, 5)
}
