package report

import (
	"strings"
	"testing"

	"repro/internal/flow"
	"repro/internal/ir"
)

func runReportDesign(t *testing.T) *flow.Result {
	t.Helper()
	m := ir.NewModule("reportable")
	top := m.NewFunction("top")
	b := ir.NewBuilder(top).At("r.cpp", 1)
	p := b.Port("p", 16)
	a := b.Array("big_mem", 2048, 16, 1) // BRAM
	small := b.Array("regs", 8, 8, 8)    // distributed
	_ = small
	var outs []*ir.Op
	b.PipelinedLoop("lanes", 256, 2, func() {
		v := b.Load(a, nil)
		outs = append(outs, b.Op(ir.KindMul, 16, v, p))
	})
	cur := b.ReduceTree(ir.KindAdd, 16, outs)
	for i := 0; i < 3; i++ {
		cur = b.Op(ir.KindMul, 16, cur, cur) // serial -> shared unit + muxes
	}
	b.Ret(cur)
	cfg := flow.DefaultConfig()
	cfg.Place.Moves = 3000
	res, err := flow.Run(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSynthesisReport(t *testing.T) {
	res := runReportDesign(t)
	out := Synthesis(res.Sched, res.Bind)
	for _, want := range []string{
		"HLS SYNTHESIS REPORT", "(top)", "control states", "latency",
		"lanes: trips 256, pipelined II=2",
		"big_mem", "RAMB18", "regs", "distributed", "muxes:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("synthesis report missing %q\n%s", want, out)
		}
	}
}

func TestUtilizationReport(t *testing.T) {
	res := runReportDesign(t)
	out := Utilization(res)
	for _, want := range []string{"UTILIZATION", "xc7z020", "LUT", "DSP", "BRAM", "nets"} {
		if !strings.Contains(out, want) {
			t.Errorf("utilization report missing %q", want)
		}
	}
	if strings.Contains(out, "NaN") {
		t.Error("NaN leaked into the report")
	}
}

func TestQualityReport(t *testing.T) {
	res := runReportDesign(t)
	out := Quality(res, 3)
	for _, want := range []string{"QoR", "WNS", "Fmax", "congestion", "WORST TIMING PATHS"} {
		if !strings.Contains(out, want) {
			t.Errorf("quality report missing %q", want)
		}
	}
	// Zero worst paths suppresses the listing.
	if strings.Contains(Quality(res, 0), "WORST TIMING PATHS") {
		t.Error("path listing printed despite worstPaths=0")
	}
}

func TestFullReportComposes(t *testing.T) {
	res := runReportDesign(t)
	out := Full(res)
	for _, want := range []string{"SYNTHESIS", "UTILIZATION", "QoR"} {
		if !strings.Contains(out, want) {
			t.Errorf("full report missing %q section", want)
		}
	}
}
