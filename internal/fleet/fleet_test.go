package fleet

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/flow"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/store"
)

// fleetModules builds two small real designs (mirroring core's test
// corpus): fleet builds must round-trip genuine flow artifacts.
func fleetModules() []*ir.Module {
	build := func(name string, lanes, width int) *ir.Module {
		m := ir.NewModule(name)
		b := ir.NewBuilder(m.NewFunction(name+"_top")).At(name+".cpp", 1)
		p := b.Port("p", 32)
		a := b.Array("mem", 64, 16, 8)
		var outs []*ir.Op
		for i := 0; i < lanes; i++ {
			b.Line(10 + i)
			v := b.Load(a, nil)
			x := b.OpBits(ir.KindBitSel, width, p, width)
			outs = append(outs, b.Op(ir.KindMul, 16, v, x))
		}
		b.Line(60)
		b.Ret(b.ReduceTree(ir.KindAdd, 16, outs))
		return m
	}
	return []*ir.Module{build("fleet_a", 12, 16), build("fleet_b", 20, 8)}
}

func fleetFlow() flow.Config {
	cfg := flow.DefaultConfig()
	cfg.Place.Moves = 2000
	return cfg
}

func fleetOpts() core.BuildOptions {
	return core.BuildOptions{
		LabelRuns: 2,
		Retry:     flow.RetryPolicy{MaxAttempts: 2, SeedStride: 104729},
	}
}

// runFleetBuild assembles a full in-process fleet — coordinator over real
// HTTP (httptest), n workers with the given fault scripts — and runs one
// distributed build, returning the canonical dataset bytes. Workers are
// named "A", "B", ... unless explicit names are given.
func runFleetBuild(t *testing.T, n int, scripts []*faults.NetScript, copts CoordinatorOptions, names ...string) ([]byte, *Coordinator, *core.BuildSummary) {
	t.Helper()
	mods := fleetModules()
	cfg := fleetFlow()
	opts := fleetOpts()
	spec, err := NewBuildSpec(mods, cfg, opts.LabelRuns, opts.Retry)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(spec, copts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	addr := srv.Listener.Addr().String()

	var wg sync.WaitGroup
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < n; i++ {
		var script *faults.NetScript
		if i < len(scripts) {
			script = scripts[i]
		}
		name := string(rune('A' + i))
		if i < len(names) {
			name = names[i]
		}
		w, err := Join(NewClient(addr, script), WorkerOptions{
			Name:         name,
			RetryBackoff: 10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx)
		}()
	}
	ds, _, sum, buildErr := core.BuildDatasetExec(ctx, mods, cfg, opts, coord.Execute)
	if buildErr != nil {
		t.Fatalf("fleet build failed: %v", buildErr)
	}
	cancel() // release workers blocked on empty-queue waits
	wg.Wait()
	return store.EncodeDataset(ds), coord, sum
}

// sequentialBytes is the reference: the same build through the local
// sequential path.
func sequentialBytes(t *testing.T) []byte {
	t.Helper()
	opts := fleetOpts()
	opts.Workers = 1
	ds, _, _, err := core.BuildDatasetContext(context.Background(), fleetModules(), fleetFlow(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return store.EncodeDataset(ds)
}

// TestSpecRoundTripPreservesKeys pins the wire contract everything else
// rests on: a spec that crosses JSON and IR-text serialization yields the
// exact flow.CacheKeys of the original inputs, for every cell of the grid.
func TestSpecRoundTripPreservesKeys(t *testing.T) {
	mods := fleetModules()
	cfg := fleetFlow()
	opts := fleetOpts()
	spec, err := NewBuildSpec(mods, cfg, opts.LabelRuns, opts.Retry)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := EncodeSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeSpec(wire)
	if err != nil {
		t.Fatal(err)
	}
	rmods, rcfg, rretry, err := decoded.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if len(rmods) != len(mods) {
		t.Fatalf("round-trip kept %d modules, want %d", len(rmods), len(mods))
	}
	if rretry.MaxAttempts != opts.Retry.MaxAttempts || rretry.SeedStride != opts.Retry.SeedStride ||
		rretry.RouteIterStep != opts.Retry.RouteIterStep || rretry.CapacityRelax != opts.Retry.CapacityRelax ||
		rretry.Backoff != opts.Retry.Backoff {
		t.Fatalf("retry policy round-trip: %+v, want %+v", rretry, opts.Retry)
	}
	for mi := range mods {
		for run := 0; run < opts.LabelRuns; run++ {
			want := flow.CacheKey(mods[mi], core.CellConfig(cfg, run))
			got := flow.CacheKey(rmods[mi], core.CellConfig(rcfg, run))
			if got != want {
				t.Fatalf("module %d run %d: round-tripped key %s, want %s", mi, run, got[:12], want[:12])
			}
		}
	}
}

// TestNewBuildSpecRejectsNonSerializable pins the refusal paths: fault
// injectors and custom retry predicates cannot cross the wire.
func TestNewBuildSpecRejectsNonSerializable(t *testing.T) {
	mods := fleetModules()
	cfg := fleetFlow()
	cfg.Faults = faults.ForDesign("x", faults.FailFirst(flow.StagePlace, 0, flow.ErrTimedOut))
	if _, err := NewBuildSpec(mods, cfg, 1, flow.RetryPolicy{}); err == nil {
		t.Fatal("spec accepted a fault injector")
	}
	if _, err := NewBuildSpec(mods, fleetFlow(), 1, flow.RetryPolicy{Retryable: func(error) bool { return true }}); err == nil {
		t.Fatal("spec accepted a Retryable predicate")
	}
}

// TestFleetBuildMatchesSequential is the tentpole's acceptance test: a
// build sharded over two workers on real HTTP is byte-identical to the
// sequential local build.
func TestFleetBuildMatchesSequential(t *testing.T) {
	want := sequentialBytes(t)
	got, coord, sum := runFleetBuild(t, 2, nil, CoordinatorOptions{})
	if !bytes.Equal(got, want) {
		t.Fatal("fleet-built dataset differs from sequential build")
	}
	if sum.Succeeded != 2 {
		t.Fatalf("summary: %+v, want 2 modules succeeded", sum)
	}
	st := coord.StatusSnapshot()
	if st.Done != 4 || !st.BuildDone {
		t.Fatalf("status: %+v, want 4 cells done", st)
	}
	total := 0
	for _, n := range st.Workers {
		total += n
	}
	if total != 4 || len(st.Workers) != 2 {
		t.Fatalf("per-worker accounting: %+v, want 4 cells across 2 workers", st.Workers)
	}
}

// TestFleetSurvivesTransportFaults drops responses and duplicates
// completions on the wire: the dropped-response retries land on the
// idempotent-duplicate path, and the artifact stays byte-identical.
func TestFleetSurvivesTransportFaults(t *testing.T) {
	want := sequentialBytes(t)
	script := faults.NewNetScript(map[faults.NetKey]faults.NetFault{
		{Op: NetOpComplete, N: 0}: faults.NetDropResponse,
		{Op: NetOpComplete, N: 2}: faults.NetDuplicate,
		{Op: NetOpLease, N: 1}:    faults.NetDropRequest,
	})
	got, coord, _ := runFleetBuild(t, 1, []*faults.NetScript{script}, CoordinatorOptions{})
	if !bytes.Equal(got, want) {
		t.Fatal("fleet build under transport faults differs from sequential build")
	}
	st := coord.StatusSnapshot()
	if st.Dups == 0 {
		t.Fatalf("status %+v: dropped/duplicated completions never hit the idempotency path", st)
	}
	if st.Done != 4 {
		t.Fatalf("status %+v, want 4 cells done", st)
	}
}

// TestLeaseExpiryRequeues kills a worker silently (it leases a cell and
// never reports) and proves the lease expires, the cell re-queues, and a
// live worker finishes the build correctly.
func TestLeaseExpiryRequeues(t *testing.T) {
	var clock atomic.Int64
	base := time.Now()
	clock.Store(0)
	now := func() time.Time { return base.Add(time.Duration(clock.Load())) }

	mods := fleetModules()
	cfg := fleetFlow()
	opts := fleetOpts()
	spec, err := NewBuildSpec(mods, cfg, opts.LabelRuns, opts.Retry)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(spec, CoordinatorOptions{
		LeaseTTL:   time.Minute,
		StealAfter: 30 * time.Second,
		Now:        now,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	addr := srv.Listener.Addr().String()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	buildDone := make(chan struct{})
	var dsBytes []byte
	go func() {
		defer close(buildDone)
		ds, _, _, err := core.BuildDatasetExec(ctx, mods, cfg, opts, coord.Execute)
		if err == nil {
			dsBytes = store.EncodeDataset(ds)
		}
	}()

	// The doomed worker leases one cell and vanishes without reporting.
	doomed := NewClient(addr, nil)
	var doomedLease *leaseResponse
	for i := 0; i < 100; i++ {
		doomedLease, err = doomed.Lease("doomed", 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(doomedLease.Cells) > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(doomedLease.Cells) == 0 {
		t.Fatal("doomed worker never got a lease")
	}

	// Expire its lease, then let a live worker drain everything.
	clock.Store(int64(2 * time.Minute))
	w, err := Join(NewClient(addr, nil), WorkerOptions{Name: "live", RetryBackoff: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(ctx); err != nil {
		t.Fatal(err)
	}
	<-buildDone
	if dsBytes == nil {
		t.Fatal("fleet build failed after worker loss")
	}
	if want := sequentialBytes(t); !bytes.Equal(dsBytes, want) {
		t.Fatal("dataset after lease expiry differs from sequential build")
	}
	st := coord.StatusSnapshot()
	if st.Lost == 0 {
		t.Fatalf("status %+v: lease expiry never counted a lost worker", st)
	}
}

// TestStealRunsInFlightCell pins work stealing: with every cell leased to
// a stalled worker and the steal age reached, an idle worker re-leases an
// in-flight cell instead of idling, and the duplicate completion (if the
// stalled worker ever reports) is absorbed.
func TestStealRunsInFlightCell(t *testing.T) {
	var clock atomic.Int64
	base := time.Now()
	now := func() time.Time { return base.Add(time.Duration(clock.Load())) }

	mods := fleetModules()
	cfg := fleetFlow()
	opts := fleetOpts()
	opts.LabelRuns = 1 // 2 cells: easy to pin both in the stalled worker
	spec, err := NewBuildSpec(mods, cfg, opts.LabelRuns, opts.Retry)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(spec, CoordinatorOptions{
		LeaseTTL:   time.Hour, // expiry out of the picture: only stealing can save this build
		StealAfter: time.Minute,
		Now:        now,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	addr := srv.Listener.Addr().String()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	buildDone := make(chan struct{})
	var dsBytes []byte
	go func() {
		defer close(buildDone)
		ds, _, _, err := core.BuildDatasetExec(ctx, mods, cfg, opts, coord.Execute)
		if err == nil {
			dsBytes = store.EncodeDataset(ds)
		}
	}()

	// The stalled worker grabs both cells and sits on them.
	stalled := NewClient(addr, nil)
	grabbed := 0
	for i := 0; i < 200 && grabbed < 2; i++ {
		lease, err := stalled.Lease("stalled", 1)
		if err != nil {
			t.Fatal(err)
		}
		grabbed += len(lease.Cells)
		if len(lease.Cells) == 0 {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if grabbed != 2 {
		t.Fatalf("stalled worker leased %d cells, want 2", grabbed)
	}

	// Past the steal age an idle worker takes over the in-flight cells.
	clock.Store(int64(2 * time.Minute))
	w, err := Join(NewClient(addr, nil), WorkerOptions{Name: "thief", RetryBackoff: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(ctx); err != nil {
		t.Fatal(err)
	}
	<-buildDone
	if dsBytes == nil {
		t.Fatal("fleet build failed despite stealing")
	}
	st := coord.StatusSnapshot()
	if st.Steals < 2 {
		t.Fatalf("status %+v: want ≥2 steals", st)
	}
	if st.Done != 2 || st.Workers["thief"] != 2 {
		t.Fatalf("status %+v: thief should have completed both cells", st)
	}
}

// TestRejectsUnverifiedCompletion posts a forged payload for a leased
// cell: the coordinator must 422 it, count it, and let the build finish
// with the real artifact.
func TestRejectsUnverifiedCompletion(t *testing.T) {
	mods := fleetModules()
	cfg := fleetFlow()
	opts := fleetOpts()
	spec, err := NewBuildSpec(mods, cfg, opts.LabelRuns, opts.Retry)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(spec, CoordinatorOptions{StealAfter: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	addr := srv.Listener.Addr().String()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	buildDone := make(chan struct{})
	var dsBytes []byte
	go func() {
		defer close(buildDone)
		ds, _, _, err := core.BuildDatasetExec(ctx, mods, cfg, opts, coord.Execute)
		if err == nil {
			dsBytes = store.EncodeDataset(ds)
		}
	}()

	// Forge a completion: lease a cell, post garbage for it.
	forger := NewClient(addr, nil)
	var lease *leaseResponse
	for i := 0; i < 100; i++ {
		lease, err = forger.Lease("forger", 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(lease.Cells) > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(lease.Cells) == 0 {
		t.Fatal("forger never got a lease")
	}
	if _, err := forger.Complete(lease.Cells[0].Slot, "forger", []byte("not an artifact"), nil); err == nil {
		t.Fatal("forged completion was accepted")
	}

	// An honest worker (stealing the forged cell quickly) finishes the
	// build with the genuine artifact.
	w, err := Join(NewClient(addr, nil), WorkerOptions{Name: "honest", RetryBackoff: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(ctx); err != nil {
		t.Fatal(err)
	}
	<-buildDone
	if dsBytes == nil {
		t.Fatal("build failed after forged completion")
	}
	if want := sequentialBytes(t); !bytes.Equal(dsBytes, want) {
		t.Fatal("dataset after forged completion differs from sequential build")
	}
	if st := coord.StatusSnapshot(); st.Bad == 0 {
		t.Fatalf("status %+v: forged completion was not counted", st)
	}
}

// TestFleetObserverCounters wires an Observer through a clean 2-worker
// build and checks the fleet.* metrics land.
func TestFleetObserverCounters(t *testing.T) {
	o := obs.New()
	_, coord, _ := runFleetBuild(t, 2, nil, CoordinatorOptions{Obs: o})
	if got := o.Metrics().Counter(obs.MetricFleetCellsDone).Value(); got != 4 {
		t.Fatalf("fleet.cells_done = %d, want 4", got)
	}
	if got := o.Metrics().Gauge(obs.MetricFleetWorkers).Value(); got != 2 {
		t.Fatalf("fleet.workers = %v, want 2", got)
	}
	st := coord.StatusSnapshot()
	perWorker := 0.0
	for name := range st.Workers {
		perWorker += o.Metrics().Gauge(obs.MetricFleetWorkerCellsPrefix + name + ".cells_done").Value()
	}
	if perWorker != 4 {
		t.Fatalf("per-worker gauges sum to %v, want 4", perWorker)
	}
}

// TestFleetAcceptsRetriedCompletion is the regression for the
// retried-success livelock: a cell that fails its first flow attempt and
// succeeds on a retry delivers an artifact keyed by the *escalated*
// config (re-rolled seed), not the base one. The coordinator used to
// verify against the attempt-0 key only, so such a completion was 422'd,
// the cell re-leased, and the identical rejection repeated forever. It
// must be accepted, and the dataset must match the sequential build
// under the same injected faults.
func TestFleetAcceptsRetriedCompletion(t *testing.T) {
	mods := fleetModules()
	cfg := fleetFlow()
	opts := fleetOpts()
	inject := faults.ForDesign(mods[0].Name, faults.FailFirst(flow.StageRoute, 1, flow.ErrUnroutable))

	// Sequential reference under the same per-attempt faults.
	seqCfg := cfg
	seqCfg.Faults = inject
	seqOpts := opts
	seqOpts.Workers = 1
	seqDS, _, seqSum, err := core.BuildDatasetContext(context.Background(), mods, seqCfg, seqOpts)
	if err != nil {
		t.Fatal(err)
	}
	if seqSum.Succeeded != 2 {
		t.Fatalf("sequential reference: %+v, want both modules to succeed via retry", seqSum)
	}
	want := store.EncodeDataset(seqDS)

	spec, err := NewBuildSpec(mods, cfg, opts.LabelRuns, opts.Retry)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(spec, CoordinatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w, err := Join(NewClient(srv.Listener.Addr().String(), nil),
		WorkerOptions{Name: "retrier", RetryBackoff: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// Fault injectors don't cross the wire (NewBuildSpec rejects them);
	// plant the same injector directly in the joined worker, as a faulty
	// environment would.
	w.cfg.Faults = inject
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w.Run(ctx)
	}()
	ds, _, sum, err := core.BuildDatasetExec(ctx, mods, cfg, opts, coord.Execute)
	if err != nil {
		t.Fatalf("fleet build with retried cells failed: %v", err)
	}
	cancel()
	wg.Wait()
	if !bytes.Equal(store.EncodeDataset(ds), want) {
		t.Fatal("fleet build with retried cells differs from sequential build")
	}
	if sum.Succeeded != 2 {
		t.Fatalf("summary: %+v, want 2 modules succeeded", sum)
	}
	st := coord.StatusSnapshot()
	if st.Bad != 0 {
		t.Fatalf("status %+v: retried completions were rejected as unverified", st)
	}
	if st.Done != 4 {
		t.Fatalf("status %+v, want 4 cells done", st)
	}
}

// TestSelfReclaimAfterDroppedLease pins the single-worker recovery path:
// when a lease response is lost on the wire, the holder itself is the
// only worker who will ever ask again — the steal scan must hand its own
// stale cell back at StealAfter instead of stalling until the full
// LeaseTTL.
func TestSelfReclaimAfterDroppedLease(t *testing.T) {
	var clock atomic.Int64
	base := time.Now()
	now := func() time.Time { return base.Add(time.Duration(clock.Load())) }

	mods := fleetModules()
	cfg := fleetFlow()
	opts := fleetOpts()
	opts.LabelRuns = 1 // 2 cells
	spec, err := NewBuildSpec(mods, cfg, opts.LabelRuns, opts.Retry)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(spec, CoordinatorOptions{
		LeaseTTL:   time.Hour, // expiry out of the picture: only self-reclaim can save this build
		StealAfter: time.Minute,
		Now:        now,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	addr := srv.Listener.Addr().String()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	buildDone := make(chan struct{})
	var dsBytes []byte
	go func() {
		defer close(buildDone)
		ds, _, _, err := core.BuildDatasetExec(ctx, mods, cfg, opts, coord.Execute)
		if err == nil {
			dsBytes = store.EncodeDataset(ds)
		}
	}()

	// Both lease responses are "dropped": the worker claims the cells but
	// never learns it holds them.
	solo := NewClient(addr, nil)
	grabbed := 0
	for i := 0; i < 200 && grabbed < 2; i++ {
		lease, err := solo.Lease("solo", 1)
		if err != nil {
			t.Fatal(err)
		}
		grabbed += len(lease.Cells)
		if len(lease.Cells) == 0 {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if grabbed != 2 {
		t.Fatalf("solo worker leased %d cells, want 2", grabbed)
	}

	// Before the steal age nothing comes back, own lease or not.
	if resp, err := solo.Lease("solo", 1); err != nil {
		t.Fatal(err)
	} else if len(resp.Cells) != 0 {
		t.Fatalf("own cell handed back before StealAfter: %+v", resp.Cells)
	}

	// Past the steal age the same worker re-claims its own cells and
	// finishes the build alone.
	clock.Store(int64(2 * time.Minute))
	w, err := Join(NewClient(addr, nil), WorkerOptions{Name: "solo", RetryBackoff: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(ctx); err != nil {
		t.Fatal(err)
	}
	<-buildDone
	if dsBytes == nil {
		t.Fatal("single-worker fleet never recovered its dropped leases")
	}
	st := coord.StatusSnapshot()
	if st.Steals != 0 {
		t.Fatalf("status %+v: self-reclaim must not count as a steal", st)
	}
	if st.Done != 2 || st.Workers["solo"] != 2 {
		t.Fatalf("status %+v: solo worker should have completed both cells", st)
	}
}

// TestWorkerNameSurvivesURLEncoding runs a full build under a worker name
// made of query-string metacharacters: reports must land under that exact
// name instead of corrupting the request URL.
func TestWorkerNameSurvivesURLEncoding(t *testing.T) {
	const nasty = "w&eird=name #1"
	want := sequentialBytes(t)
	got, coord, sum := runFleetBuild(t, 1, nil, CoordinatorOptions{}, nasty)
	if !bytes.Equal(got, want) {
		t.Fatal("fleet build under a metacharacter worker name differs from sequential build")
	}
	if sum.Succeeded != 2 {
		t.Fatalf("summary: %+v, want 2 modules succeeded", sum)
	}
	st := coord.StatusSnapshot()
	if st.Workers[nasty] != 4 {
		t.Fatalf("per-worker accounting %+v: want 4 cells under %q", st.Workers, nasty)
	}
}

// TestOversizedCompletionRejectedDistinctly posts a payload one byte over
// the 64MiB completion cap: the coordinator must answer 413 — not
// silently truncate the body into an undiagnosable 422 decode failure —
// and the build must still finish with the genuine artifact.
func TestOversizedCompletionRejectedDistinctly(t *testing.T) {
	mods := fleetModules()
	cfg := fleetFlow()
	opts := fleetOpts()
	spec, err := NewBuildSpec(mods, cfg, opts.LabelRuns, opts.Retry)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(spec, CoordinatorOptions{StealAfter: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	addr := srv.Listener.Addr().String()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	buildDone := make(chan struct{})
	var dsBytes []byte
	go func() {
		defer close(buildDone)
		ds, _, _, err := core.BuildDatasetExec(ctx, mods, cfg, opts, coord.Execute)
		if err == nil {
			dsBytes = store.EncodeDataset(ds)
		}
	}()

	bloat := NewClient(addr, nil)
	var lease *leaseResponse
	for i := 0; i < 100; i++ {
		lease, err = bloat.Lease("bloat", 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(lease.Cells) > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(lease.Cells) == 0 {
		t.Fatal("bloat worker never got a lease")
	}
	_, cerr := bloat.Complete(lease.Cells[0].Slot, "bloat", make([]byte, 64<<20+1), nil)
	if cerr == nil || !strings.Contains(cerr.Error(), "413") {
		t.Fatalf("oversized completion error = %v, want HTTP 413", cerr)
	}

	w, err := Join(NewClient(addr, nil), WorkerOptions{Name: "honest", RetryBackoff: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(ctx); err != nil {
		t.Fatal(err)
	}
	<-buildDone
	if dsBytes == nil {
		t.Fatal("build failed after oversized completion")
	}
	if st := coord.StatusSnapshot(); st.Bad == 0 {
		t.Fatalf("status %+v: oversized completion was not counted", st)
	}
}

// TestDefectiveWorkerWithdrawsWithoutFailingCells corrupts one worker's
// materialized spec: its Run must return the defect (withdrawing from the
// fleet) rather than reporting Fail — which would terminally poison cells
// healthy workers can complete — and a healthy worker must then finish
// the build byte-identically.
func TestDefectiveWorkerWithdrawsWithoutFailingCells(t *testing.T) {
	mods := fleetModules()
	cfg := fleetFlow()
	opts := fleetOpts()
	spec, err := NewBuildSpec(mods, cfg, opts.LabelRuns, opts.Retry)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(spec, CoordinatorOptions{StealAfter: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	addr := srv.Listener.Addr().String()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	buildDone := make(chan struct{})
	var dsBytes []byte
	go func() {
		defer close(buildDone)
		ds, _, _, err := core.BuildDatasetExec(ctx, mods, cfg, opts, coord.Execute)
		if err == nil {
			dsBytes = store.EncodeDataset(ds)
		}
	}()

	bad, err := Join(NewClient(addr, nil), WorkerOptions{Name: "bad", RetryBackoff: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	bad.cfg.Seed += 13 // skewed spec: every derived key now disagrees with the coordinator's
	if _, err := bad.Run(ctx); err == nil || !strings.Contains(err.Error(), "stale spec") {
		t.Fatalf("defective worker Run = %v, want stale-spec withdrawal", err)
	}
	// The other worker-local defect, a module index this worker doesn't
	// have, withdraws the same way.
	if _, err := bad.runCell(ctx, leaseItem{Slot: 0, Module: 99}); err == nil {
		t.Fatal("out-of-range module index did not withdraw the worker")
	}

	good, err := Join(NewClient(addr, nil), WorkerOptions{Name: "good", RetryBackoff: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := good.Run(ctx); err != nil {
		t.Fatal(err)
	}
	<-buildDone
	if dsBytes == nil {
		t.Fatal("build failed after a defective worker withdrew")
	}
	if want := sequentialBytes(t); !bytes.Equal(dsBytes, want) {
		t.Fatal("dataset after defective-worker withdrawal differs from sequential build")
	}
	st := coord.StatusSnapshot()
	if st.Failed != 0 {
		t.Fatalf("status %+v: a defective worker terminally failed a cell", st)
	}
	if st.Done != 4 {
		t.Fatalf("status %+v, want 4 cells done", st)
	}
}

// TestWorkerCancelledMidBuild cancels a worker's context and checks Run
// returns promptly with the context error (the coordinator side is
// covered by the expiry test).
func TestWorkerCancelledMidBuild(t *testing.T) {
	mods := fleetModules()
	cfg := fleetFlow()
	opts := fleetOpts()
	spec, err := NewBuildSpec(mods, cfg, opts.LabelRuns, opts.Retry)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(spec, CoordinatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	w, err := Join(NewClient(srv.Listener.Addr().String(), nil), WorkerOptions{Name: "w"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := w.Run(ctx); err != context.Canceled {
		t.Fatalf("cancelled Run = %v, want context.Canceled", err)
	}
}

// A traced coordinator stitches worker spans into one trace: every
// imported span carries a worker lane, parents resolve to the fleet.build
// root, and the shifted times land inside the build span.
func TestFleetStitchedTrace(t *testing.T) {
	o := obs.New()
	_, _, _ = runFleetBuild(t, 2, nil, CoordinatorOptions{Obs: o}, "wA", "wB")
	spans := o.Trace.Spans()

	var build *obs.SpanData
	ids := make(map[int64]bool, len(spans))
	for i := range spans {
		ids[spans[i].ID] = true
		if spans[i].Name == "fleet.build" {
			if build != nil {
				t.Fatal("more than one fleet.build root span")
			}
			build = &spans[i]
		}
	}
	if build == nil {
		t.Fatal("no fleet.build root span")
	}
	if build.Proc != "" {
		t.Errorf("root span is on lane %q, want the local lane", build.Proc)
	}

	lanes := make(map[string]int)
	flows := 0
	for _, s := range spans {
		if s.Proc == "" {
			continue
		}
		lanes[s.Proc]++
		if s.Name == "flow" {
			flows++
		}
		if s.ParentID == 0 {
			t.Errorf("imported span %q has no parent", s.Name)
		} else if !ids[s.ParentID] {
			t.Errorf("imported span %q parented on unknown ID %d", s.Name, s.ParentID)
		}
		const slack = 500 * time.Millisecond
		if s.Start < build.Start-slack || s.End > build.End+slack {
			t.Errorf("imported span %q [%v, %v] outside build span [%v, %v]",
				s.Name, s.Start, s.End, build.Start, build.End)
		}
		if s.Proc != "wA" && s.Proc != "wB" {
			t.Errorf("unexpected lane %q", s.Proc)
		}
	}
	if len(lanes) == 0 {
		t.Fatal("no worker lanes in the stitched trace")
	}
	// 4 cells ran; every one must have shipped a flow span from some lane.
	if flows != 4 {
		t.Errorf("stitched trace has %d flow spans, want 4 (one per cell)", flows)
	}
}

// An untraced coordinator advertises no trace context, and workers ship
// no spans — the propagation path stays completely dark.
func TestFleetUntracedShipsNothing(t *testing.T) {
	mods := fleetModules()
	cfg := fleetFlow()
	opts := fleetOpts()
	spec, err := NewBuildSpec(mods, cfg, opts.LabelRuns, opts.Retry)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(spec, CoordinatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	client := NewClient(srv.Listener.Addr().String(), nil)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w, err := Join(client, WorkerOptions{Name: "solo", RetryBackoff: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); w.Run(ctx) }()
	if _, _, _, err := core.BuildDatasetExec(ctx, mods, cfg, opts, coord.Execute); err != nil {
		t.Fatal(err)
	}
	cancel()
	<-done
	if tc := client.TraceContext(); tc.Valid() {
		t.Errorf("untraced build advertised trace context %+v", tc)
	}
}

// A malformed span-framing header is a protocol error (400), and the
// artifact is not consumed.
func TestCompleteRejectsBadSpanFraming(t *testing.T) {
	mods := fleetModules()
	spec, err := NewBuildSpec(mods, fleetFlow(), 1, flow.RetryPolicy{MaxAttempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(spec, CoordinatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	// Enqueue cells so slot 0 exists.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go core.BuildDatasetExec(ctx, mods, fleetFlow(), fleetOpts(), coord.Execute)
	deadline := time.Now().Add(2 * time.Second)
	for coord.StatusSnapshot().Cells == 0 {
		if time.Now().After(deadline) {
			t.Fatal("cells never enqueued")
		}
		time.Sleep(5 * time.Millisecond)
	}

	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/fleet/complete?slot=0&worker=w",
		bytes.NewReader([]byte("payload")))
	req.Header.Set(obs.HeaderSpanBytes, "banana")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad framing status = %d, want 400", resp.StatusCode)
	}

	// A length past the body is equally malformed.
	req2, _ := http.NewRequest(http.MethodPost, srv.URL+"/fleet/complete?slot=0&worker=w",
		bytes.NewReader([]byte("x")))
	req2.Header.Set(obs.HeaderSpanBytes, "999")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("oversize framing status = %d, want 400", resp2.StatusCode)
	}
}
