package fleet

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/flow"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/store"
)

// WorkerOptions tunes a Worker.
type WorkerOptions struct {
	// Name identifies the worker to the coordinator (lease ownership,
	// per-worker metrics). Required.
	Name string
	// Cache optionally memoizes flow runs; attach a flowcache with a disk
	// tier (store shared between workers) so re-runs of stolen or re-queued
	// cells — and whole re-builds — dedupe instead of recomputing.
	Cache flow.Cache
	// Obs observes the worker's flow runs.
	Obs *obs.Observer
	// MaxTransportRetries bounds consecutive transport errors before the
	// worker gives up on a report and moves on (the lease will expire and
	// another worker reruns the cell). Defaults to 3.
	MaxTransportRetries int
	// RetryBackoff is the wait between transport retries (also the poll
	// interval scale when the queue is empty). Defaults to 200ms.
	RetryBackoff time.Duration
}

// Worker pulls cells from a coordinator and runs them. Construct with
// Join, run with Run.
type Worker struct {
	client *Client
	opts   WorkerOptions
	mods   []*ir.Module
	cfg    flow.Config
	retry  flow.RetryPolicy
}

// Join fetches the coordinator's build spec and materializes the build
// inputs. Transport errors retry a few times so workers can start before
// (or while) the coordinator binds its listener.
func Join(client *Client, opts WorkerOptions) (*Worker, error) {
	if opts.Name == "" {
		return nil, fmt.Errorf("fleet: worker needs a name")
	}
	if opts.MaxTransportRetries <= 0 {
		opts.MaxTransportRetries = 3
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = 200 * time.Millisecond
	}
	var spec *BuildSpec
	var err error
	for attempt := 0; attempt <= opts.MaxTransportRetries; attempt++ {
		if spec, err = client.Spec(); err == nil {
			break
		}
		time.Sleep(opts.RetryBackoff << attempt)
	}
	if err != nil {
		return nil, fmt.Errorf("fleet: join: %w", err)
	}
	mods, cfg, retry, err := spec.Materialize()
	if err != nil {
		return nil, fmt.Errorf("fleet: join: %w", err)
	}
	return &Worker{client: client, opts: opts, mods: mods, cfg: cfg, retry: retry}, nil
}

// Run pulls and executes cells until the coordinator reports the build
// done or ctx is cancelled. It returns the number of cells this worker
// completed (duplicates included). Per-cell flow failures are reported to
// the coordinator, not returned — they are build results, not worker
// errors. A worker-local defect (stale or corrupt spec: a leased module
// this worker doesn't have, a cache-key mismatch) IS returned: the
// defective worker withdraws from the fleet without failing the cell, its
// lease expires, and a healthy worker reruns the work.
func (w *Worker) Run(ctx context.Context) (completed int, err error) {
	for {
		if err := ctx.Err(); err != nil {
			return completed, err
		}
		lease, lerr := w.lease()
		if lerr != nil {
			// Transport exhausted: the coordinator is gone (build ended and
			// process exited, or it crashed). Either way there is nothing
			// left to pull.
			return completed, lerr
		}
		if lease.Done {
			return completed, nil
		}
		if len(lease.Cells) == 0 {
			wait := time.Duration(lease.WaitMs) * time.Millisecond
			if wait <= 0 {
				wait = w.opts.RetryBackoff
			}
			select {
			case <-ctx.Done():
				return completed, ctx.Err()
			case <-time.After(wait):
			}
			continue
		}
		for _, item := range lease.Cells {
			if err := ctx.Err(); err != nil {
				return completed, err
			}
			delivered, cellErr := w.runCell(ctx, item)
			if cellErr != nil {
				return completed, cellErr
			}
			if delivered {
				completed++
			}
		}
	}
}

// runCell executes one leased cell and reports its outcome. Reporting is
// best-effort: transport errors retry, then the cell is abandoned to the
// lease-expiry path. delivered reports whether a completion landed. A
// non-nil error is a worker-local defect (stale/corrupt spec) — the cell
// is deliberately NOT failed at the coordinator, because other workers
// with a healthy spec can still complete it; the caller withdraws this
// worker and lets the lease expire. Fail is reserved for genuine flow
// errors, which are functions of (module, config, seed) alone and so
// would reproduce on every worker.
func (w *Worker) runCell(ctx context.Context, item leaseItem) (delivered bool, err error) {
	if item.Module < 0 || item.Module >= len(w.mods) {
		return false, fmt.Errorf("fleet: worker %s has no module %d for slot %d (stale spec?)",
			w.opts.Name, item.Module, item.Slot)
	}
	runCfg := core.CellConfig(w.cfg, item.Run)
	runCfg.Cache = w.opts.Cache
	runCfg.Obs = w.opts.Obs
	// When the coordinator advertises a trace context, record this cell's
	// spans into a private per-cell tracer and ship them back with the
	// completion — the coordinator stitches them under its build span. The
	// worker's own metrics/log sinks still apply; only the span sink is
	// redirected. An untraced build takes none of this path (and allocates
	// nothing for it).
	var cellTracer *obs.Tracer
	tc := w.client.TraceContext()
	if tc.Valid() {
		cellTracer = obs.NewTracer()
		runCfg.Obs = &obs.Observer{Trace: cellTracer, Reg: w.opts.Obs.Metrics(), Log: w.opts.Obs.Logger()}
	}
	// Defense in depth: if the worker's derived key disagrees with the
	// leased one, its spec is stale or corrupt — running the cell would
	// only produce a completion the coordinator rejects.
	if key := flow.CacheKey(w.mods[item.Module], runCfg); key != item.Key {
		return false, fmt.Errorf("fleet: worker %s derives key %s for slot %d, coordinator expects %s (stale spec?)",
			w.opts.Name, key[:12], item.Slot, item.Key[:12])
	}
	res, runErr := flow.RunWithRetry(ctx, w.mods[item.Module], runCfg, w.retry)
	if ctx.Err() != nil {
		// Cancelled mid-cell (drain, kill): report nothing — the lease
		// expires and the cell reruns elsewhere.
		return false, nil
	}
	if runErr != nil {
		w.report(func() error {
			return w.client.Fail(item.Slot, w.opts.Name, runErr.Error())
		})
		return false, nil
	}
	payload, encErr := store.EncodeResult(res)
	if encErr != nil {
		// Encoding is a pure function of the result, which is itself a pure
		// function of the cell: every worker would fail identically, so
		// this is terminal for the cell, like a flow error.
		w.report(func() error {
			return w.client.Fail(item.Slot, w.opts.Name, fmt.Sprintf("encode result: %v", encErr))
		})
		return false, nil
	}
	// Encode the cell's spans once; a batch past the size cap encodes to
	// nil and the lane is dropped — tracing never fails the completion.
	spans := obs.EncodeSpanBatch(cellTracer, tc.TraceID, w.opts.Name)
	w.report(func() error {
		_, err := w.client.Complete(item.Slot, w.opts.Name, payload, spans)
		if err == nil {
			delivered = true
		}
		return err
	})
	return delivered, nil
}

// lease claims one cell, retrying transport errors. Drop faults surface
// here as errors and simply retry — a dropped lease *response* means the
// coordinator leased a cell nobody will run until its lease expires or an
// idle worker steals it, which is exactly the hazard those mechanisms
// cover.
func (w *Worker) lease() (*leaseResponse, error) {
	var last error
	for attempt := 0; attempt <= w.opts.MaxTransportRetries; attempt++ {
		resp, err := w.client.Lease(w.opts.Name, 1)
		if err == nil {
			return resp, nil
		}
		last = err
		if !errors.Is(err, faults.ErrNetDropped) {
			time.Sleep(w.opts.RetryBackoff)
		}
	}
	return nil, last
}

// report runs one reporting call with transport retries.
func (w *Worker) report(call func() error) {
	for attempt := 0; attempt <= w.opts.MaxTransportRetries; attempt++ {
		err := call()
		if err == nil {
			return
		}
		if l := w.opts.Obs.Logger(); l != nil {
			l.Warn("fleet report failed", "worker", w.opts.Name, "attempt", attempt, "error", err)
		}
		if !errors.Is(err, faults.ErrNetDropped) {
			time.Sleep(w.opts.RetryBackoff)
		}
	}
}
