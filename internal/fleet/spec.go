// Package fleet distributes a dataset build's (module × label-run) cell
// grid across worker processes: a coordinator owns the grid and serves a
// lease-based work-stealing queue over HTTP, workers join it, run flow
// cells and stream verified results back.
//
// The protocol is designed around one invariant — determinism survives
// every transport hazard:
//
//   - Work is identified positionally (cell slot in the coordinator's
//     grid) but verified content-addressed: every completion's payload
//     must decode and re-hash to one of the cell's expected
//     flow.CacheKeys — the base config's key or any retry escalation of
//     it (flow.RetryPolicy.Escalate), since a cell that fails
//     transiently succeeds under an escalated config, exactly as in a
//     local RunWithRetry. A wrong, stale or corrupted artifact is
//     rejected (HTTP 422), never assembled.
//   - Completion is idempotent by that same key: the first verified
//     result wins, later duplicates (a retried request whose original
//     landed, a stolen cell finished by both workers) are acknowledged
//     and discarded.
//   - Leases expire: a worker that dies mid-cell (SIGKILL, network
//     partition) simply stops renewing, its cells return to the queue and
//     another worker reruns them. Because cell outcomes are functions of
//     (module text, config, seed) alone — see core.CellConfig — the rerun
//     produces the identical artifact, so the assembled dataset is
//     byte-identical to a sequential build no matter which worker ran
//     what, how often, or in what order.
//
// Transport faults are injectable (faults.NetScript in the Client), so
// dropped requests, dropped responses and duplicated completions are unit
// tested, not just reasoned about.
package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/flow"
	"repro/internal/fpga"
	"repro/internal/hls"
	"repro/internal/ir"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/timing"
)

// ModuleSpec ships one design as its canonical IR text — the same
// serialization flow.CacheKey hashes, so a worker that parses it derives
// the exact keys the coordinator expects.
type ModuleSpec struct {
	Name string `json:"name"`
	Text string `json:"text"`
}

// ConfigSpec is the JSON mirror of the flow.Config fields that influence
// flow outputs (exactly the fields flow.CacheKey hashes). Runtime-only
// fields — Cache, Obs, Faults, Attempt — are deliberately absent: each
// worker attaches its own. All mirrored fields are plain numbers, strings
// and bools; Go's JSON float round-trip is exact, so a config that crosses
// the wire produces byte-identical cache keys on both sides.
type ConfigSpec struct {
	Dev               fpga.Device   `json:"dev"`
	Clock             hls.Clock     `json:"clock"`
	Seed              int64         `json:"seed"`
	Place             place.Options `json:"place"`
	Route             route.Options `json:"route"`
	Timing            timing.Model  `json:"timing"`
	StrictConvergence bool          `json:"strict_convergence"`
}

// RetrySpec mirrors flow.RetryPolicy minus the Retryable predicate (a
// function cannot cross the wire; fleet builds retry every failure, the
// policy's default).
type RetrySpec struct {
	MaxAttempts   int     `json:"max_attempts"`
	SeedStride    int64   `json:"seed_stride"`
	RouteIterStep int     `json:"route_iter_step"`
	CapacityRelax float64 `json:"capacity_relax"`
	BackoffNs     int64   `json:"backoff_ns"`
}

// policy reconstructs the flow.RetryPolicy this spec mirrors — shared by
// worker-side Materialize and the coordinator, which must derive the same
// escalated configs (and so the same cache keys) the workers run under.
func (rs RetrySpec) policy() flow.RetryPolicy {
	return flow.RetryPolicy{
		MaxAttempts:   rs.MaxAttempts,
		SeedStride:    rs.SeedStride,
		RouteIterStep: rs.RouteIterStep,
		CapacityRelax: rs.CapacityRelax,
		Backoff:       time.Duration(rs.BackoffNs),
	}
}

// BuildSpec is everything a worker needs to run any cell of the build:
// the designs, the base flow configuration and the retry escalation. The
// grid itself (which cells need running) stays coordinator-side — workers
// learn cells one lease at a time.
type BuildSpec struct {
	Modules   []ModuleSpec `json:"modules"`
	Config    ConfigSpec   `json:"config"`
	LabelRuns int          `json:"label_runs"`
	Retry     RetrySpec    `json:"retry"`
}

// NewBuildSpec captures a build's inputs for the wire. It refuses inputs
// that cannot survive serialization faithfully: a custom Retryable
// predicate or a fault injector (both would make worker-side behaviour
// diverge from the coordinator's intent).
func NewBuildSpec(mods []*ir.Module, cfg flow.Config, labelRuns int, retry flow.RetryPolicy) (*BuildSpec, error) {
	if cfg.Dev == nil {
		return nil, fmt.Errorf("fleet: config has no device")
	}
	if cfg.Faults != nil {
		return nil, fmt.Errorf("fleet: stage-fault injectors do not serialize; fleet builds must not set Config.Faults")
	}
	if retry.Retryable != nil {
		return nil, fmt.Errorf("fleet: RetryPolicy.Retryable does not serialize; use the default (retry everything)")
	}
	if labelRuns < 1 {
		labelRuns = 1
	}
	spec := &BuildSpec{
		Config: ConfigSpec{
			Dev:               *cfg.Dev,
			Clock:             cfg.Clock,
			Seed:              cfg.Seed,
			Place:             cfg.Place,
			Route:             cfg.Route,
			Timing:            cfg.Timing,
			StrictConvergence: cfg.StrictConvergence,
		},
		LabelRuns: labelRuns,
		Retry: RetrySpec{
			MaxAttempts:   retry.MaxAttempts,
			SeedStride:    retry.SeedStride,
			RouteIterStep: retry.RouteIterStep,
			CapacityRelax: retry.CapacityRelax,
			BackoffNs:     int64(retry.Backoff),
		},
	}
	for _, m := range mods {
		var buf bytes.Buffer
		if err := ir.WriteText(&buf, m); err != nil {
			return nil, fmt.Errorf("fleet: serialize module %s: %w", m.Name, err)
		}
		spec.Modules = append(spec.Modules, ModuleSpec{Name: m.Name, Text: buf.String()})
	}
	return spec, nil
}

// Materialize reconstructs the build inputs on the worker side. The
// returned config carries no Cache/Obs — the worker attaches its own.
func (s *BuildSpec) Materialize() ([]*ir.Module, flow.Config, flow.RetryPolicy, error) {
	mods := make([]*ir.Module, 0, len(s.Modules))
	for _, ms := range s.Modules {
		m, err := ir.ParseText(strings.NewReader(ms.Text))
		if err != nil {
			return nil, flow.Config{}, flow.RetryPolicy{}, fmt.Errorf("fleet: parse module %s: %w", ms.Name, err)
		}
		mods = append(mods, m)
	}
	dev := s.Config.Dev
	cfg := flow.Config{
		Dev:               &dev,
		Clock:             s.Config.Clock,
		Seed:              s.Config.Seed,
		Place:             s.Config.Place,
		Route:             s.Config.Route,
		Timing:            s.Config.Timing,
		StrictConvergence: s.Config.StrictConvergence,
	}
	return mods, cfg, s.Retry.policy(), nil
}

// EncodeSpec serializes a spec for the wire; DecodeSpec is its inverse.
func EncodeSpec(s *BuildSpec) ([]byte, error) { return json.Marshal(s) }

// DecodeSpec parses a wire spec.
func DecodeSpec(data []byte) (*BuildSpec, error) {
	var s BuildSpec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("fleet: decode spec: %w", err)
	}
	if len(s.Modules) == 0 || s.LabelRuns < 1 {
		return nil, fmt.Errorf("fleet: spec has no modules or label runs")
	}
	return &s, nil
}
