package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
)

// Net-operation classes a NetScript can target on the fleet client.
const (
	NetOpSpec     = "spec"
	NetOpLease    = "lease"
	NetOpComplete = "complete"
	NetOpFail     = "fail"
)

// Client speaks the coordinator's fleet protocol with deterministic
// transport-fault injection: a faults.NetScript can drop a request before
// it is sent, drop the response of a request that WAS processed, or
// deliver a request twice — the three hazards the queue's lease/steal and
// idempotent-completion machinery exists to absorb.
type Client struct {
	base string
	hc   *http.Client
	net  *faults.NetScript

	mu sync.Mutex
	tc obs.TraceContext // last trace context advertised on a lease
}

// NewClient returns a client for the coordinator at addr (host:port, no
// scheme). A nil script disables fault injection.
func NewClient(addr string, script *faults.NetScript) *Client {
	return &Client{
		base: "http://" + addr,
		hc:   &http.Client{Timeout: 30 * time.Second},
		net:  script,
	}
}

// TraceContext returns the trace context the coordinator advertised on the
// most recent lease response (zero when the build is untraced). Workers
// read it to decide whether to record and ship spans for a cell.
func (c *Client) TraceContext() obs.TraceContext {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tc
}

// roundTrip performs one faulted POST (or GET when body is nil) and
// returns the response body and headers. reqHdr entries are added to the
// request. Injected drops surface faults.ErrNetDropped; an injected
// duplicate sends the request twice and returns the second response — the
// server must have made both deliveries safe.
func (c *Client) roundTrip(op, path string, body []byte, reqHdr http.Header) ([]byte, http.Header, int, error) {
	send := func() ([]byte, http.Header, int, error) {
		var (
			req *http.Request
			err error
		)
		if body == nil {
			req, err = http.NewRequest(http.MethodGet, c.base+path, nil)
		} else {
			req, err = http.NewRequest(http.MethodPost, c.base+path, bytes.NewReader(body))
			if err == nil {
				req.Header.Set("Content-Type", "application/octet-stream")
			}
		}
		if err != nil {
			return nil, nil, 0, err
		}
		for k, vs := range reqHdr {
			for _, v := range vs {
				req.Header.Add(k, v)
			}
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return nil, nil, 0, err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
		if err != nil {
			return nil, nil, 0, err
		}
		return data, resp.Header, resp.StatusCode, nil
	}
	switch c.net.Next(op) {
	case faults.NetDropRequest:
		return nil, nil, 0, fmt.Errorf("fleet %s: %w", op, faults.ErrNetDropped)
	case faults.NetDropResponse:
		if _, _, _, err := send(); err != nil {
			return nil, nil, 0, err
		}
		return nil, nil, 0, fmt.Errorf("fleet %s: %w", op, faults.ErrNetDropped)
	case faults.NetDuplicate:
		if _, _, _, err := send(); err != nil {
			return nil, nil, 0, err
		}
	}
	return send()
}

// Spec fetches and decodes the coordinator's build spec.
func (c *Client) Spec() (*BuildSpec, error) {
	data, _, status, err := c.roundTrip(NetOpSpec, "/fleet/spec", nil, nil)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("fleet spec: HTTP %d", status)
	}
	return DecodeSpec(data)
}

// Lease claims up to max cells for the named worker, capturing any trace
// context the coordinator advertises alongside.
func (c *Client) Lease(worker string, max int) (*leaseResponse, error) {
	req, _ := json.Marshal(leaseRequest{Worker: worker, Max: max})
	data, hdr, status, err := c.roundTrip(NetOpLease, "/fleet/lease", req, nil)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("fleet lease: HTTP %d", status)
	}
	var resp leaseResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		return nil, fmt.Errorf("fleet lease: %w", err)
	}
	if tc := obs.TraceContextFromHeader(hdr); tc.Valid() {
		c.mu.Lock()
		c.tc = tc
		c.mu.Unlock()
	}
	return &resp, nil
}

// Complete submits one encoded flow result for a leased slot, optionally
// with an encoded span batch riding in front of it (framed by the
// X-Cong-Span-Bytes header) — the worker's half of trace stitching. A
// duplicate acknowledgement (the cell was already resolved) returns
// (true, nil); a verification rejection (HTTP 422) returns an error — the
// worker produced a wrong artifact, which local rebuilds must surface
// loudly.
func (c *Client) Complete(slot int, worker string, payload, spans []byte) (duplicate bool, err error) {
	path := "/fleet/complete?" + slotWorkerQuery(slot, worker)
	body := payload
	var hdr http.Header
	if len(spans) > 0 {
		hdr = http.Header{obs.HeaderSpanBytes: {strconv.Itoa(len(spans))}}
		body = make([]byte, 0, len(spans)+len(payload))
		body = append(body, spans...)
		body = append(body, payload...)
	}
	data, _, status, err := c.roundTrip(NetOpComplete, path, body, hdr)
	if err != nil {
		return false, err
	}
	if status != http.StatusOK {
		return false, fmt.Errorf("fleet complete slot %d: HTTP %d", slot, status)
	}
	var resp completeResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		return false, fmt.Errorf("fleet complete slot %d: %w", slot, err)
	}
	return resp.Duplicate, nil
}

// slotWorkerQuery builds the ?slot&worker query with the worker name
// escaped — names are user-chosen (-fleet-name) and may contain '&', '=',
// spaces or '#', which would otherwise corrupt the request.
func slotWorkerQuery(slot int, worker string) string {
	return url.Values{
		"slot":   {strconv.Itoa(slot)},
		"worker": {worker},
	}.Encode()
}

// Fail reports one terminal cell failure.
func (c *Client) Fail(slot int, worker, errText string) error {
	body, _ := json.Marshal(failRequest{Error: errText})
	path := "/fleet/fail?" + slotWorkerQuery(slot, worker)
	_, _, status, err := c.roundTrip(NetOpFail, path, body, nil)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("fleet fail slot %d: HTTP %d", slot, status)
	}
	return nil
}

// Status fetches the coordinator's progress snapshot.
func (c *Client) Status() (*Status, error) {
	data, _, status, err := c.roundTrip("status", "/fleet/status", nil, nil)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("fleet status: HTTP %d", status)
	}
	var st Status
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, err
	}
	return &st, nil
}
