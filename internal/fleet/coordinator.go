package fleet

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/store"
)

// CoordinatorOptions tunes a Coordinator.
type CoordinatorOptions struct {
	// LeaseTTL is how long a leased cell may go unresolved before the
	// coordinator declares its worker lost and re-queues the cell.
	// Defaults to 30s.
	LeaseTTL time.Duration
	// StealAfter is the lease age past which an idle worker may steal an
	// in-flight cell (run it concurrently with the original holder —
	// completion idempotency resolves the race). Defaults to LeaseTTL/2.
	StealAfter time.Duration
	// MaxLease caps cells handed out per lease request. Defaults to 1 —
	// finest-grained balancing; raise it for very cheap cells.
	MaxLease int
	// Obs observes the fleet: fleet.* counters and per-worker gauges.
	Obs *obs.Observer
	// Now is the lease clock, injectable for expiry tests. Defaults to
	// time.Now.
	Now func() time.Time
}

// Cell lease/queue states.
const (
	cellPending = iota // waiting in the queue
	cellLeased         // handed to ≥1 worker, unresolved
	cellDone           // verified result accepted
	cellFailed         // worker reported a terminal flow failure
)

type cellSlot struct {
	cell core.Cell
	// keys are the flow.CacheKeys a completion may verify against:
	// keys[k] is the key of retry attempt k's escalated config (keys[0]
	// the base config, which leases advertise). A worker's RunWithRetry
	// returns the first attempt that succeeds, so the artifact may hash
	// to any of them.
	keys     []string
	state    int
	worker   string    // current lease holder (last one, when stolen)
	deadline time.Time // lease expiry
	leasedAt time.Time
	res      *flow.Result
	err      error
}

type workerStats struct {
	done  int64
	gauge *obs.Gauge
}

// Coordinator owns one build's cell grid and serves the fleet protocol:
//
//	GET  /fleet/spec               → BuildSpec JSON
//	POST /fleet/lease              → claim cells ({"worker","max"} in)
//	POST /fleet/complete?slot&worker → submit one encoded flow result
//	POST /fleet/fail?slot&worker   → report one terminal cell failure
//	GET  /fleet/status             → progress counters JSON
//
// Construct with NewCoordinator, serve its Handler (or call Serve), then
// run the build through Execute — the core.CellExecutor side of the
// protocol.
//
// Completions are verified against the cell's full escalation key set:
// the cache key of the base config plus one per retry attempt
// (flow.RetryPolicy.Escalate re-rolls the seed and relaxes routing, so
// every attempt has a distinct key, and a worker whose cell succeeded on
// a retry legitimately delivers the escalated artifact — rejecting it
// would re-queue the cell forever). Determinism is preserved: which
// attempt first succeeds is a pure function of (module, config, policy),
// so every worker — and the local reference build — produces the same
// artifact for the cell.
type Coordinator struct {
	opts     CoordinatorOptions
	specJSON []byte
	retry    flow.RetryPolicy // the escalation workers run under

	// traceID names the fleet-wide trace (a digest of the spec, so it is
	// stable across coordinator restarts of the same build). It is only
	// advertised once tracing is armed and Execute has opened the root
	// span.
	traceID string

	mu        sync.Mutex
	slots     []cellSlot
	pending   []int // queue of slot indices, FIFO
	remaining int
	started   bool
	buildDone chan struct{} // closed when remaining hits 0
	workers   map[string]*workerStats
	root      *obs.Span // the fleet.build span worker lanes parent under

	cDone, cFailed, cSteal, cLost, cDup, cBad *obs.Counter
	gWorkers                                  *obs.Gauge
	o                                         *obs.Observer
	reg                                       *obs.Registry
}

// NewCoordinator prepares a coordinator for the build the spec describes.
// Cells are enqueued later, by Execute.
func NewCoordinator(spec *BuildSpec, opts CoordinatorOptions) (*Coordinator, error) {
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 30 * time.Second
	}
	if opts.StealAfter <= 0 {
		opts.StealAfter = opts.LeaseTTL / 2
	}
	if opts.MaxLease <= 0 {
		opts.MaxLease = 1
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	specJSON, err := EncodeSpec(spec)
	if err != nil {
		return nil, fmt.Errorf("fleet: encode spec: %w", err)
	}
	o := opts.Obs
	// StatusSnapshot reads these counters back, so they must be real even
	// without an observer: fall back to a private registry (nil obs
	// handles are silent no-ops that would freeze the status at zero).
	reg := o.Metrics()
	if reg == nil {
		reg = obs.NewRegistry()
	}
	sum := sha256.Sum256(specJSON)
	c := &Coordinator{
		opts:      opts,
		specJSON:  specJSON,
		traceID:   hex.EncodeToString(sum[:8]),
		retry:     spec.Retry.policy(),
		buildDone: make(chan struct{}),
		workers:   make(map[string]*workerStats),
		o:         o,
		reg:       reg,
		cDone:     reg.Counter(obs.MetricFleetCellsDone),
		cFailed:   reg.Counter(obs.MetricFleetCellsFailed),
		cSteal:    reg.Counter(obs.MetricFleetSteals),
		cLost:     reg.Counter(obs.MetricFleetWorkerLost),
		cDup:      reg.Counter(obs.MetricFleetDupComplete),
		cBad:      reg.Counter(obs.MetricFleetBadComplete),
		gWorkers:  reg.Gauge(obs.MetricFleetWorkers),
	}
	return c, nil
}

// Handler returns the coordinator's HTTP handler (mountable under any
// mux; paths are absolute).
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/fleet/spec", c.handleSpec)
	mux.HandleFunc("/fleet/lease", c.handleLease)
	mux.HandleFunc("/fleet/complete", c.handleComplete)
	mux.HandleFunc("/fleet/fail", c.handleFail)
	mux.HandleFunc("/fleet/status", c.handleStatus)
	return mux
}

// Serve listens on addr and serves the fleet protocol until the returned
// shutdown func is called. It reports the bound address (useful with
// ":0").
func (c *Coordinator) Serve(addr string) (bound string, shutdown func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("fleet: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: c.Handler()}
	go srv.Serve(ln)
	return ln.Addr().String(), func() { srv.Close() }, nil
}

// Execute is the core.CellExecutor the coordinator contributes to
// core.BuildDatasetExec: it enqueues the requested cells, lets joined
// workers drain the queue, and returns one outcome per cell once every
// cell is resolved (or ctx is cancelled). Keys are derived from the exact
// per-cell configs the build uses, so worker results verify against the
// same content addresses a local build would produce.
func (c *Coordinator) Execute(ctx context.Context, mods []*ir.Module, cells []core.Cell, cfgs []flow.Config) ([]core.CellOutcome, error) {
	// The root span of the stitched trace. Started before leases go out
	// (its ID travels in the lease headers) and ended when the build
	// resolves; nil when the coordinator is untraced, which disables the
	// whole propagation path.
	var root *obs.Span
	if c.o.Tracing() {
		root = c.o.Start("fleet.build",
			obs.String("trace", c.traceID), obs.Int("cells", int64(len(cells))))
	}
	c.mu.Lock()
	if c.started {
		c.mu.Unlock()
		root.End()
		return nil, fmt.Errorf("fleet: coordinator already executed a build")
	}
	c.started = true
	c.root = root
	c.slots = make([]cellSlot, len(cells))
	c.pending = c.pending[:0]
	attempts := c.retry.Attempts()
	for i, cell := range cells {
		keys := make([]string, attempts)
		for k := range keys {
			keys[k] = flow.CacheKey(mods[cell.Module], c.retry.Escalate(cfgs[i], k))
		}
		c.slots[i] = cellSlot{
			cell:  cell,
			keys:  keys,
			state: cellPending,
		}
		c.pending = append(c.pending, i)
	}
	c.remaining = len(cells)
	done := c.buildDone
	if c.remaining == 0 {
		close(done)
	}
	c.mu.Unlock()

	select {
	case <-ctx.Done():
		root.SetError(ctx.Err())
		root.End()
		return nil, ctx.Err()
	case <-done:
	}
	root.End()
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]core.CellOutcome, len(c.slots))
	for i := range c.slots {
		s := &c.slots[i]
		if s.state == cellDone {
			out[i] = core.CellOutcome{Res: s.res}
		} else {
			out[i] = core.CellOutcome{Err: s.err}
		}
	}
	return out, nil
}

// sweepLocked expires overdue leases, returning their cells to the queue.
// Caller holds mu.
func (c *Coordinator) sweepLocked(now time.Time) {
	for i := range c.slots {
		s := &c.slots[i]
		if s.state == cellLeased && now.After(s.deadline) {
			s.state = cellPending
			c.pending = append(c.pending, i)
			c.cLost.Add(1)
			if l := c.o.Logger(); l != nil {
				l.Warn("fleet lease expired, re-queueing cell",
					"slot", i, "worker", s.worker, "module", s.cell.Module, "run", s.cell.Run)
			}
		}
	}
}

// leaseItem is one claimed cell on the wire.
type leaseItem struct {
	Slot   int    `json:"slot"`
	Module int    `json:"module"`
	Run    int    `json:"run"`
	Key    string `json:"key"`
	Stolen bool   `json:"stolen,omitempty"`
}

type leaseRequest struct {
	Worker string `json:"worker"`
	Max    int    `json:"max"`
}

type leaseResponse struct {
	Cells  []leaseItem `json:"cells"`
	Done   bool        `json:"done"`
	WaitMs int         `json:"wait_ms,omitempty"`
}

func (c *Coordinator) handleSpec(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(c.specJSON)
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req leaseRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil || req.Worker == "" {
		http.Error(w, "bad lease request", http.StatusBadRequest)
		return
	}
	max := req.Max
	if max < 1 || max > c.opts.MaxLease {
		max = c.opts.MaxLease
	}
	now := c.opts.Now()
	var resp leaseResponse

	c.mu.Lock()
	if ws := c.workers[req.Worker]; ws == nil {
		c.workers[req.Worker] = &workerStats{
			gauge: c.reg.Gauge(obs.MetricFleetWorkerCellsPrefix + req.Worker + ".cells_done"),
		}
		c.gWorkers.Set(float64(len(c.workers)))
	}
	c.sweepLocked(now)
	for len(resp.Cells) < max && len(c.pending) > 0 {
		i := c.pending[0]
		c.pending = c.pending[1:]
		s := &c.slots[i]
		if s.state != cellPending {
			continue // resolved while queued (duplicate completion won)
		}
		s.state, s.worker = cellLeased, req.Worker
		s.leasedAt, s.deadline = now, now.Add(c.opts.LeaseTTL)
		resp.Cells = append(resp.Cells, leaseItem{
			Slot: i, Module: s.cell.Module, Run: s.cell.Run, Key: s.keys[0],
		})
	}
	if len(resp.Cells) == 0 && c.started && c.remaining > 0 {
		// Nothing queued but the build is unfinished: steal the
		// longest-held in-flight cell once it is old enough. Both workers
		// then race; the first verified completion wins and the loser's
		// lands on the idempotent-duplicate path. The holder itself may
		// re-claim its own stale lease — after a dropped lease response the
		// sole worker of a fleet is the only one who will ever ask, and
		// without self-reclaim it would idle for the full LeaseTTL.
		best := -1
		for i := range c.slots {
			s := &c.slots[i]
			if s.state != cellLeased {
				continue
			}
			if now.Sub(s.leasedAt) < c.opts.StealAfter {
				continue
			}
			if best == -1 || s.leasedAt.Before(c.slots[best].leasedAt) {
				best = i
			}
		}
		if best >= 0 {
			s := &c.slots[best]
			from := s.worker
			s.worker = req.Worker
			s.leasedAt, s.deadline = now, now.Add(c.opts.LeaseTTL)
			stolen := from != req.Worker
			if stolen {
				c.cSteal.Add(1)
			}
			resp.Cells = append(resp.Cells, leaseItem{
				Slot: best, Module: s.cell.Module, Run: s.cell.Run, Key: s.keys[0], Stolen: stolen,
			})
			if l := c.o.Logger(); l != nil {
				if stolen {
					l.Info("fleet cell stolen", "slot", best, "from", from, "to", req.Worker)
				} else {
					l.Info("fleet cell lease renewed by holder", "slot", best, "worker", req.Worker)
				}
			}
		}
	}
	resp.Done = c.started && c.remaining == 0
	if len(resp.Cells) == 0 && !resp.Done {
		resp.WaitMs = 50
	}
	root := c.root
	c.mu.Unlock()

	// Advertise the trace context once the build's root span exists, so
	// workers record and ship spans for the cells they just leased.
	if root != nil {
		obs.TraceContext{TraceID: c.traceID, SpanID: root.SpanID()}.SetHeader(w.Header())
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// slotWorker parses the ?slot and ?worker of a completion/failure report.
func (c *Coordinator) slotWorker(w http.ResponseWriter, r *http.Request) (int, string, bool) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return 0, "", false
	}
	var slot int
	if _, err := fmt.Sscanf(r.URL.Query().Get("slot"), "%d", &slot); err != nil {
		http.Error(w, "bad slot", http.StatusBadRequest)
		return 0, "", false
	}
	c.mu.Lock()
	n := len(c.slots)
	c.mu.Unlock()
	if slot < 0 || slot >= n {
		http.Error(w, "slot out of range", http.StatusBadRequest)
		return 0, "", false
	}
	return slot, r.URL.Query().Get("worker"), true
}

type completeResponse struct {
	Accepted  bool `json:"accepted"`
	Duplicate bool `json:"duplicate,omitempty"`
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	slot, worker, ok := c.slotWorker(w, r)
	if !ok {
		return
	}
	// Read one byte past the cap so an oversized payload is detected
	// rather than silently truncated into a payload that fails decode for
	// an unrelated-looking reason.
	const maxCompletion = 64 << 20
	payload, err := io.ReadAll(io.LimitReader(r.Body, maxCompletion+1))
	if err != nil {
		http.Error(w, "read body", http.StatusBadRequest)
		return
	}
	if len(payload) > maxCompletion {
		c.cBad.Add(1)
		if l := c.o.Logger(); l != nil {
			l.Warn("fleet rejected oversized completion", "slot", slot, "worker", worker, "cap_bytes", maxCompletion)
		}
		http.Error(w, "completion payload exceeds 64MiB cap", http.StatusRequestEntityTooLarge)
		return
	}
	// Peel off the span batch a tracing worker prefixed to the artifact
	// (X-Cong-Span-Bytes framing) before verification sees the payload.
	spanBlock, payload, ferr := splitSpanBlock(r.Header, payload)
	if ferr != nil {
		http.Error(w, ferr.Error(), http.StatusBadRequest)
		return
	}
	// Verify outside the lock: decode + re-hash is the expensive step, and
	// it needs no queue state beyond the (immutable) key set.
	c.mu.Lock()
	keys := c.slots[slot].keys
	c.mu.Unlock()
	res, derr := store.DecodeResult(payload)
	if derr == nil {
		// Any escalation attempt's key is acceptable: the worker delivers
		// whichever attempt of RunWithRetry first succeeded, and that
		// choice is deterministic (see Execute).
		for _, key := range keys {
			if derr = store.VerifyResultKey(res, key); derr == nil {
				break
			}
		}
	}
	if derr != nil {
		// The payload is not an artifact any of this cell's keys name:
		// reject it and let the lease/steal machinery rerun the cell.
		// Accepting it would silently break byte-identity.
		c.cBad.Add(1)
		if l := c.o.Logger(); l != nil {
			l.Warn("fleet rejected unverified completion", "slot", slot, "worker", worker, "error", derr)
		}
		http.Error(w, "completion failed verification", http.StatusUnprocessableEntity)
		return
	}

	c.mu.Lock()
	s := &c.slots[slot]
	resp := completeResponse{Accepted: true}
	switch s.state {
	case cellDone, cellFailed:
		// Idempotency: this cell is already resolved (stolen copy, retried
		// request whose original landed). Acknowledge so the worker stops
		// retrying, change nothing — the first verified result stays.
		resp.Duplicate = true
		c.cDup.Add(1)
	default:
		s.state, s.res, s.worker = cellDone, res, worker
		c.remaining--
		c.cDone.Add(1)
		if ws := c.workers[worker]; ws != nil {
			ws.done++
			ws.gauge.Set(float64(ws.done))
		}
		if c.remaining == 0 {
			close(c.buildDone)
		}
	}
	root := c.root
	c.mu.Unlock()

	// Stitch the worker's spans under the build span — first verified
	// completion only, so a stolen cell's duplicate doesn't draw the same
	// work twice in the trace. Import takes the tracer's own lock, not the
	// queue's.
	if !resp.Duplicate && len(spanBlock) > 0 && root != nil {
		c.importSpans(worker, spanBlock, root)
	}

	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// splitSpanBlock separates an optional span-batch prefix (framed by the
// X-Cong-Span-Bytes header) from the artifact payload. A malformed length
// is a protocol error; a block past the batch cap is dropped — the
// artifact is still processed, a trace lane is not worth a rebuild.
func splitSpanBlock(h http.Header, body []byte) (spans, artifact []byte, err error) {
	v := h.Get(obs.HeaderSpanBytes)
	if v == "" {
		return nil, body, nil
	}
	n, perr := strconv.Atoi(v)
	if perr != nil || n < 0 || n > len(body) {
		return nil, nil, fmt.Errorf("bad span block length %q", v)
	}
	if n > obs.MaxSpanBatchBytes {
		return nil, body[n:], nil
	}
	return body[:n], body[n:], nil
}

// importSpans decodes one worker's span batch and splices it into the
// coordinator's tracer. Best-effort by design: a batch that fails to
// decode, or that belongs to another trace (a worker that wandered in
// from a previous build), is logged and dropped.
func (c *Coordinator) importSpans(worker string, block []byte, root *obs.Span) {
	if c.o == nil || c.o.Trace == nil {
		return
	}
	batch, spans, err := obs.DecodeSpanBatch(block)
	if err != nil || batch.TraceID != c.traceID {
		if l := c.o.Logger(); l != nil {
			l.Warn("fleet dropped span batch", "worker", worker, "trace", batch.TraceID, "error", err)
		}
		return
	}
	// Shift the worker's epoch-relative offsets into the coordinator's
	// timebase via the wall-clock epoch delta (same-host clocks; Import
	// clamps at zero if skew pushes a span before the local epoch).
	var shift time.Duration
	if epoch, ok := c.o.Trace.EpochWall(); ok {
		shift = time.Unix(0, batch.EpochUnixNs).Sub(epoch)
	}
	proc := batch.Proc
	if proc == "" {
		proc = worker
	}
	c.o.Trace.Import(spans, proc, root, shift)
}

type failRequest struct {
	Error string `json:"error"`
}

func (c *Coordinator) handleFail(w http.ResponseWriter, r *http.Request) {
	slot, worker, ok := c.slotWorker(w, r)
	if !ok {
		return
	}
	var req failRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, "bad failure report", http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	s := &c.slots[slot]
	dup := s.state == cellDone || s.state == cellFailed
	if !dup {
		// The worker already retried per the build's RetryPolicy; the
		// error is terminal for this cell, exactly as in a local build.
		s.state, s.err, s.worker = cellFailed, errors.New(req.Error), worker
		c.remaining--
		c.cFailed.Add(1)
		if c.remaining == 0 {
			close(c.buildDone)
		}
	} else {
		c.cDup.Add(1)
	}
	c.mu.Unlock()
	if l := c.o.Logger(); l != nil && !dup {
		l.Warn("fleet cell failed", "slot", slot, "worker", worker, "error", req.Error)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(completeResponse{Accepted: true, Duplicate: dup})
}

// Status is the coordinator's progress snapshot.
type Status struct {
	Cells     int            `json:"cells"`
	Done      int            `json:"done"`
	Failed    int            `json:"failed"`
	Leased    int            `json:"leased"`
	Pending   int            `json:"pending"`
	Steals    int64          `json:"steals"`
	Lost      int64          `json:"worker_lost"`
	Dups      int64          `json:"dup_completions"`
	Bad       int64          `json:"bad_completions"`
	Workers   map[string]int `json:"workers"`
	BuildDone bool           `json:"build_done"`
}

// StatusSnapshot returns the current progress counters.
func (c *Coordinator) StatusSnapshot() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{
		Cells:   len(c.slots),
		Steals:  c.cSteal.Value(),
		Lost:    c.cLost.Value(),
		Dups:    c.cDup.Value(),
		Bad:     c.cBad.Value(),
		Workers: make(map[string]int, len(c.workers)),
	}
	for i := range c.slots {
		switch c.slots[i].state {
		case cellDone:
			st.Done++
		case cellFailed:
			st.Failed++
		case cellLeased:
			st.Leased++
		case cellPending:
			st.Pending++
		}
	}
	for name, ws := range c.workers {
		st.Workers[name] = int(ws.done)
	}
	st.BuildDone = c.started && c.remaining == 0
	return st
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(c.StatusSnapshot())
}

var _ core.CellExecutor = (*Coordinator)(nil).Execute
