package fpga

import (
	"testing"
	"testing/quick"
)

func TestXC7Z020Totals(t *testing.T) {
	d := XC7Z020()
	if d.Totals.LUT != 53200 || d.Totals.FF != 106400 || d.Totals.DSP != 220 || d.Totals.BRAM != 280 {
		t.Errorf("device totals %+v do not match the xc7z020", d.Totals)
	}
	if d.NumTiles() != d.Cols*d.Rows {
		t.Error("NumTiles mismatch")
	}
}

func TestKindAtColumns(t *testing.T) {
	d := XC7Z020()
	for _, c := range d.DSPCols {
		if d.KindAt(c, 0) != TileDSP {
			t.Errorf("col %d should be DSP", c)
		}
	}
	for _, c := range d.BRAMCols {
		if d.KindAt(c, 5) != TileBRAM {
			t.Errorf("col %d should be BRAM", c)
		}
	}
	if d.KindAt(0, 0) != TileCLB {
		t.Error("col 0 should be CLB")
	}
}

func TestTileKindString(t *testing.T) {
	if TileCLB.String() != "CLB" || TileDSP.String() != "DSP" || TileBRAM.String() != "BRAM" {
		t.Error("TileKind strings wrong")
	}
	if TileKind(9).String() != "?" {
		t.Error("unknown TileKind should print ?")
	}
}

func TestManhattanDist(t *testing.T) {
	if ManhattanDist(XY{0, 0}, XY{3, 4}) != 7 {
		t.Error("dist(0,0 -> 3,4) != 7")
	}
	if ManhattanDist(XY{5, 5}, XY{2, 9}) != 7 {
		t.Error("dist with negative deltas wrong")
	}
	// Symmetry property.
	f := func(ax, ay, bx, by int8) bool {
		a := XY{int(ax), int(ay)}
		b := XY{int(bx), int(by)}
		return ManhattanDist(a, b) == ManhattanDist(b, a) && ManhattanDist(a, a) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInBounds(t *testing.T) {
	d := XC7Z020()
	cases := []struct {
		p    XY
		want bool
	}{
		{XY{0, 0}, true},
		{XY{d.Cols - 1, d.Rows - 1}, true},
		{XY{-1, 0}, false},
		{XY{0, d.Rows}, false},
		{XY{d.Cols, 0}, false},
	}
	for _, c := range cases {
		if d.InBounds(c.p) != c.want {
			t.Errorf("InBounds(%v) = %v", c.p, !c.want)
		}
	}
}

func TestMarginBand(t *testing.T) {
	d := XC7Z020()
	if !d.IsMargin(XY{0, 0}) || !d.IsMargin(XY{d.Cols - 1, d.Rows / 2}) {
		t.Error("edges must be margin")
	}
	cx, cy := d.Center()
	if d.IsMargin(XY{int(cx), int(cy)}) {
		t.Error("center must not be margin")
	}
}

func TestCenterDist(t *testing.T) {
	d := XC7Z020()
	cx, cy := d.Center()
	if got := d.CenterDist(XY{int(cx), int(cy)}); got > 0.05 {
		t.Errorf("center dist = %v, want ~0", got)
	}
	corner := d.CenterDist(XY{0, 0})
	if corner < 0.9 || corner > 1.01 {
		t.Errorf("corner dist = %v, want ~1", corner)
	}
	mid := d.CenterDist(XY{0, int(cy)})
	if mid >= corner {
		t.Error("edge midpoint must be closer than corner")
	}
}

func TestNearestColumns(t *testing.T) {
	d := XC7Z020()
	if got := d.DSPColNearest(0); got != d.DSPCols[0] {
		t.Errorf("DSPColNearest(0) = %d", got)
	}
	if got := d.DSPColNearest(d.Cols); got != d.DSPCols[len(d.DSPCols)-1] {
		t.Errorf("DSPColNearest(right edge) = %d", got)
	}
	// Nearest is actually nearest for every x.
	for x := 0; x < d.Cols; x++ {
		got := d.BRAMColNearest(x)
		for _, c := range d.BRAMCols {
			da := got - x
			if da < 0 {
				da = -da
			}
			db := c - x
			if db < 0 {
				db = -db
			}
			if db < da {
				t.Fatalf("BRAMColNearest(%d) = %d but %d is closer", x, got, c)
			}
		}
	}
}
