// Package fpga models the target device: a grid of tiles with per-tile
// logic capacity and per-tile vertical/horizontal routing capacity. The
// default device mirrors the paper's Xilinx Zynq XC7Z020 (Artix-7 fabric):
// CLB columns interleaved with DSP48 and block-RAM columns, with the
// official resource totals used for utilization-ratio features.
package fpga

import (
	"fmt"
	"math"

	"repro/internal/hls"
)

// TileKind classifies a fabric tile.
type TileKind int

const (
	// TileCLB is a configurable logic block tile (LUTs + flip-flops).
	TileCLB TileKind = iota
	// TileDSP is a DSP48 column tile.
	TileDSP
	// TileBRAM is a block-RAM column tile.
	TileBRAM
)

func (k TileKind) String() string {
	switch k {
	case TileCLB:
		return "CLB"
	case TileDSP:
		return "DSP"
	case TileBRAM:
		return "BRAM"
	}
	return "?"
}

// XY is a tile coordinate: X indexes columns, Y rows.
type XY struct {
	X, Y int
}

func (p XY) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// ManhattanDist returns the L1 distance between two tiles.
func ManhattanDist(a, b XY) int {
	dx := a.X - b.X
	if dx < 0 {
		dx = -dx
	}
	dy := a.Y - b.Y
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// Device describes one FPGA fabric.
type Device struct {
	Name string
	Cols int
	Rows int

	// Columns occupied by DSP and BRAM tiles.
	DSPCols  []int
	BRAMCols []int

	// Per-CLB-tile logic capacity.
	TileLUT int
	TileFF  int
	// Per-special-tile capacity.
	TileDSP  int
	TileBRAM int

	// Routing-channel capacity: wires available across each tile boundary
	// in the vertical and horizontal directions. Congestion percentages are
	// demand/capacity*100, so >100 means the router must detour (the
	// paper's definition).
	VCap float64
	HCap float64

	// Official device totals used for utilization-ratio features.
	Totals hls.Resources
}

// XC7Z020 returns the paper's target device, the Zynq-7020's Artix-7
// fabric: 53,200 LUTs, 106,400 FFs, 220 DSP48 slices, 280 RAMB18s, modeled
// on a 60x110 tile grid with two DSP columns and two BRAM column pairs.
func XC7Z020() *Device {
	d := &Device{
		Name:     "xc7z020clg484",
		Cols:     60,
		Rows:     110,
		DSPCols:  []int{14, 44},
		BRAMCols: []int{7, 22, 37, 52},
		TileLUT:  8,
		TileFF:   16,
		TileDSP:  2,
		TileBRAM: 1,
		VCap:     155,
		HCap:     132,
		Totals:   hls.Resources{LUT: 53200, FF: 106400, DSP: 220, BRAM: 280},
	}
	return d
}

// InBounds reports whether the coordinate is on the device.
func (d *Device) InBounds(p XY) bool {
	return p.X >= 0 && p.X < d.Cols && p.Y >= 0 && p.Y < d.Rows
}

// KindAt returns the tile kind at a coordinate.
func (d *Device) KindAt(x, y int) TileKind {
	for _, c := range d.DSPCols {
		if x == c {
			return TileDSP
		}
	}
	for _, c := range d.BRAMCols {
		if x == c {
			return TileBRAM
		}
	}
	return TileCLB
}

// NumTiles returns the total tile count.
func (d *Device) NumTiles() int { return d.Cols * d.Rows }

// Center returns the die center in tile coordinates.
func (d *Device) Center() (float64, float64) {
	return float64(d.Cols-1) / 2, float64(d.Rows-1) / 2
}

// MarginFrac is the outer fraction of the die treated as the "margin" for
// the paper's marginal-operation analysis (Fig. 5, Sec. III-C1).
const MarginFrac = 0.16

// IsMargin reports whether the tile lies in the outer margin band of the
// die.
func (d *Device) IsMargin(p XY) bool {
	mx := int(float64(d.Cols) * MarginFrac)
	my := int(float64(d.Rows) * MarginFrac)
	return p.X < mx || p.X >= d.Cols-mx || p.Y < my || p.Y >= d.Rows-my
}

// CenterDist returns the normalized distance of a tile from the die center
// (0 at the center, ~1 at the corners).
func (d *Device) CenterDist(p XY) float64 {
	cx, cy := d.Center()
	dx := (float64(p.X) - cx) / (float64(d.Cols) / 2)
	dy := (float64(p.Y) - cy) / (float64(d.Rows) / 2)
	return math.Sqrt(dx*dx+dy*dy) / math.Sqrt2
}

// DSPColNearest returns the DSP column nearest to x.
func (d *Device) DSPColNearest(x int) int { return nearest(d.DSPCols, x) }

// BRAMColNearest returns the BRAM column nearest to x.
func (d *Device) BRAMColNearest(x int) int { return nearest(d.BRAMCols, x) }

func nearest(cols []int, x int) int {
	best, bestD := cols[0], 1<<30
	for _, c := range cols {
		dd := c - x
		if dd < 0 {
			dd = -dd
		}
		if dd < bestD {
			best, bestD = c, dd
		}
	}
	return best
}
