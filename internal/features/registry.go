package features

import (
	"fmt"

	"repro/internal/hls"
	"repro/internal/ir"
)

// The feature registry is populated once at init time. The layout follows
// Table II of the paper; the total is asserted to be exactly NumFeatures
// (302) so any edit that changes the count fails loudly.
func init() {
	registerBitwidth()
	registerInterconnect()
	registerResource()
	registerTiming()
	registerResourceDT()
	registerOpType()
	registerGlobal()
	if len(registry) != NumFeatures {
		panic(fmt.Sprintf("features: registry has %d features, want %d", len(registry), NumFeatures))
	}
}

func registerBitwidth() {
	register("bitwidth", CatBitwidth, func(e *Extractor, c *opCtx) float64 {
		return float64(c.op.Bitwidth)
	})
}

func registerInterconnect() {
	reg := func(name string, f func(*Extractor, *opCtx) float64) {
		register("ic_"+name, CatInterconnect, f)
	}
	reg("fanin", func(e *Extractor, c *opCtx) float64 { return float64(c.node.FanIn()) })
	reg("fanout", func(e *Extractor, c *opCtx) float64 { return float64(c.node.FanOut()) })
	reg("fan_sum", func(e *Extractor, c *opCtx) float64 {
		return float64(c.node.FanIn() + c.node.FanOut())
	})
	reg("num_preds", func(e *Extractor, c *opCtx) float64 { return float64(len(c.node.In)) })
	reg("num_succs", func(e *Extractor, c *opCtx) float64 { return float64(len(c.node.Out)) })
	reg("num_neighbors", func(e *Extractor, c *opCtx) float64 {
		return float64(len(c.node.In) + len(c.node.Out))
	})
	reg("max_edge_wires", func(e *Extractor, c *opCtx) float64 {
		w, _, _ := c.node.MaxEdge()
		return float64(w)
	})
	reg("max_edge_frac_fanin", func(e *Extractor, c *opCtx) float64 {
		_, fi, _ := c.node.MaxEdge()
		return fi
	})
	reg("max_edge_frac_fanout", func(e *Extractor, c *opCtx) float64 {
		_, _, fo := c.node.MaxEdge()
		return fo
	})
	reg("avg_in_edge_wires", func(e *Extractor, c *opCtx) float64 {
		return safeDiv(float64(c.node.FanIn()), float64(len(c.node.In)))
	})
	reg("avg_out_edge_wires", func(e *Extractor, c *opCtx) float64 {
		return safeDiv(float64(c.node.FanOut()), float64(len(c.node.Out)))
	})
	reg("port_neighbors_1hop", func(e *Extractor, c *opCtx) float64 {
		return countPorts(c.n1both)
	})
	reg("num_preds_2hop", func(e *Extractor, c *opCtx) float64 { return float64(len(c.n2pred)) })
	reg("num_succs_2hop", func(e *Extractor, c *opCtx) float64 { return float64(len(c.n2succ)) })
	reg("num_neighbors_2hop", func(e *Extractor, c *opCtx) float64 { return float64(len(c.n2both)) })
	reg("edge_total_2hop", func(e *Extractor, c *opCtx) float64 {
		return float64(c.edge2Total)
	})
	reg("edge_count_2hop", func(e *Extractor, c *opCtx) float64 {
		return float64(c.edge2Count)
	})
	reg("edge_max_2hop", func(e *Extractor, c *opCtx) float64 {
		return float64(c.edge2Max)
	})
	reg("edge_max_frac_2hop", func(e *Extractor, c *opCtx) float64 {
		return safeDiv(float64(c.edge2Max), float64(c.edge2Total))
	})
	reg("fanin_2hop", func(e *Extractor, c *opCtx) float64 {
		s := 0.0
		for _, n := range c.n2pred {
			s += float64(n.FanIn())
		}
		return s
	})
	reg("fanout_2hop", func(e *Extractor, c *opCtx) float64 {
		s := 0.0
		for _, n := range c.n2succ {
			s += float64(n.FanOut())
		}
		return s
	})
	reg("port_neighbors_2hop", func(e *Extractor, c *opCtx) float64 {
		return countPorts(c.n2both)
	})
}

func registerResource() {
	for t := 0; t < hls.ResourceTypeCount; t++ {
		t := t
		tn := hls.ResourceTypeNames[t]
		reg := func(name string, f func(*Extractor, *opCtx) float64) {
			register(fmt.Sprintf("res_%s_%s", tn, name), CatResource, f)
		}
		reg("usage", func(e *Extractor, c *opCtx) float64 {
			return float64(c.node.Res().ByType(t))
		})
		reg("util_dev", func(e *Extractor, c *opCtx) float64 {
			return safeDiv(float64(c.node.Res().ByType(t)), e.devTotal(t))
		})
		reg("util_func", func(e *Extractor, c *opCtx) float64 {
			return safeDiv(float64(c.node.Res().ByType(t)), e.funcTotal(c, t))
		})
		reg("pred_total", func(e *Extractor, c *opCtx) float64 {
			return sumRes(c.n1pred, t)
		})
		reg("succ_total", func(e *Extractor, c *opCtx) float64 {
			return sumRes(c.n1succ, t)
		})
		reg("predsucc_sum", func(e *Extractor, c *opCtx) float64 {
			return sumRes(c.n1pred, t) + sumRes(c.n1succ, t)
		})
		reg("pred_util_dev", func(e *Extractor, c *opCtx) float64 {
			return safeDiv(sumRes(c.n1pred, t), e.devTotal(t))
		})
		reg("succ_util_dev", func(e *Extractor, c *opCtx) float64 {
			return safeDiv(sumRes(c.n1succ, t), e.devTotal(t))
		})
		reg("pred_util_func", func(e *Extractor, c *opCtx) float64 {
			return safeDiv(sumRes(c.n1pred, t), e.funcTotal(c, t))
		})
		reg("succ_util_func", func(e *Extractor, c *opCtx) float64 {
			return safeDiv(sumRes(c.n1succ, t), e.funcTotal(c, t))
		})
		reg("max_nbr", func(e *Extractor, c *opCtx) float64 {
			return maxRes(c.n1both, t)
		})
		reg("max_nbr_frac", func(e *Extractor, c *opCtx) float64 {
			return safeDiv(maxRes(c.n1both, t), sumRes(c.n1both, t))
		})
		reg("pred2_total", func(e *Extractor, c *opCtx) float64 {
			return sumRes(c.n2pred, t)
		})
		reg("succ2_total", func(e *Extractor, c *opCtx) float64 {
			return sumRes(c.n2succ, t)
		})
		reg("sum2", func(e *Extractor, c *opCtx) float64 {
			return sumRes(c.n2pred, t) + sumRes(c.n2succ, t)
		})
		reg("pred2_util_dev", func(e *Extractor, c *opCtx) float64 {
			return safeDiv(sumRes(c.n2pred, t), e.devTotal(t))
		})
		reg("succ2_util_dev", func(e *Extractor, c *opCtx) float64 {
			return safeDiv(sumRes(c.n2succ, t), e.devTotal(t))
		})
		reg("pred2_util_func", func(e *Extractor, c *opCtx) float64 {
			return safeDiv(sumRes(c.n2pred, t), e.funcTotal(c, t))
		})
		reg("succ2_util_func", func(e *Extractor, c *opCtx) float64 {
			return safeDiv(sumRes(c.n2succ, t), e.funcTotal(c, t))
		})
		reg("max_nbr2", func(e *Extractor, c *opCtx) float64 {
			return maxRes(c.n2both, t)
		})
		reg("max_nbr2_frac", func(e *Extractor, c *opCtx) float64 {
			return safeDiv(maxRes(c.n2both, t), sumRes(c.n2both, t))
		})
		reg("both2_total", func(e *Extractor, c *opCtx) float64 {
			return sumRes(c.n2both, t)
		})
		reg("both2_util_dev", func(e *Extractor, c *opCtx) float64 {
			return safeDiv(sumRes(c.n2both, t), e.devTotal(t))
		})
		reg("both2_util_func", func(e *Extractor, c *opCtx) float64 {
			return safeDiv(sumRes(c.n2both, t), e.funcTotal(c, t))
		})
	}
}

func registerTiming() {
	register("timing_delay_ns", CatTiming, func(e *Extractor, c *opCtx) float64 {
		return c.char.DelayNS
	})
	register("timing_latency_cycles", CatTiming, func(e *Extractor, c *opCtx) float64 {
		return float64(c.char.Latency)
	})
	register("timing_start_state", CatTiming, func(e *Extractor, c *opCtx) float64 {
		return float64(e.Sched.Slots[c.op].Start)
	})
	register("timing_finish_delay_ns", CatTiming, func(e *Extractor, c *opCtx) float64 {
		return e.Sched.Slots[c.op].FinishDelay
	})
}

func registerResourceDT() {
	for t := 0; t < hls.ResourceTypeCount; t++ {
		t := t
		tn := hls.ResourceTypeNames[t]
		reg := func(name string, f func(*Extractor, *opCtx) float64) {
			register(fmt.Sprintf("dt_%s_%s", tn, name), CatResourceDT, f)
		}
		reg("pred_sum", func(e *Extractor, c *opCtx) float64 {
			s, _ := e.dtPred(c, t)
			return s
		})
		reg("succ_sum", func(e *Extractor, c *opCtx) float64 {
			s, _ := e.dtSucc(c, t)
			return s
		})
		reg("sum", func(e *Extractor, c *opCtx) float64 {
			p, _ := e.dtPred(c, t)
			s, _ := e.dtSucc(c, t)
			return p + s
		})
		reg("pred_max", func(e *Extractor, c *opCtx) float64 {
			_, m := e.dtPred(c, t)
			return m
		})
		reg("succ_max", func(e *Extractor, c *opCtx) float64 {
			_, m := e.dtSucc(c, t)
			return m
		})
		reg("pred_util_func", func(e *Extractor, c *opCtx) float64 {
			s, _ := e.dtPred(c, t)
			return safeDiv(s, e.funcTotal(c, t))
		})
		reg("succ_util_func", func(e *Extractor, c *opCtx) float64 {
			s, _ := e.dtSucc(c, t)
			return safeDiv(s, e.funcTotal(c, t))
		})
		reg("pred2_sum", func(e *Extractor, c *opCtx) float64 {
			return e.dtPred2(c, t)
		})
		reg("succ2_sum", func(e *Extractor, c *opCtx) float64 {
			return e.dtSucc2(c, t)
		})
		reg("sum2", func(e *Extractor, c *opCtx) float64 {
			return e.dtPred2(c, t) + e.dtSucc2(c, t)
		})
		reg("pred2_util_func", func(e *Extractor, c *opCtx) float64 {
			return safeDiv(e.dtPred2(c, t), e.funcTotal(c, t))
		})
		reg("succ2_util_func", func(e *Extractor, c *opCtx) float64 {
			return safeDiv(e.dtSucc2(c, t), e.funcTotal(c, t))
		})
	}
}

func registerOpType() {
	for _, k := range ir.AllKinds() {
		k := k
		register(fmt.Sprintf("type_is_%s", k), CatOpType, func(e *Extractor, c *opCtx) float64 {
			if c.op.Kind == k {
				return 1
			}
			return 0
		})
	}
	for _, k := range ir.AllKinds() {
		k := k
		register(fmt.Sprintf("type_nbr1_%s", k), CatOpType, func(e *Extractor, c *opCtx) float64 {
			return countKind(c.n1both, k)
		})
	}
	for _, k := range ir.AllKinds() {
		k := k
		register(fmt.Sprintf("type_nbr2_%s", k), CatOpType, func(e *Extractor, c *opCtx) float64 {
			return countKind(c.n2both, k)
		})
	}
}

func registerGlobal() {
	reg := func(name string, f func(*Extractor, *opCtx) float64) {
		register("glob_"+name, CatGlobal, f)
	}
	for t := 0; t < hls.ResourceTypeCount; t++ {
		t := t
		reg("top_"+hls.ResourceTypeNames[t], func(e *Extractor, c *opCtx) float64 {
			return float64(e.topInfo.res.ByType(t))
		})
	}
	for t := 0; t < hls.ResourceTypeCount; t++ {
		t := t
		reg("fop_"+hls.ResourceTypeNames[t], func(e *Extractor, c *opCtx) float64 {
			return float64(c.fi.res.ByType(t))
		})
	}
	for t := 0; t < hls.ResourceTypeCount; t++ {
		t := t
		reg("fop_frac_"+hls.ResourceTypeNames[t], func(e *Extractor, c *opCtx) float64 {
			return safeDiv(float64(c.fi.res.ByType(t)), float64(e.topInfo.res.ByType(t)))
		})
	}
	reg("target_period_ns", func(e *Extractor, c *opCtx) float64 { return e.Sched.Clock.PeriodNS })
	reg("clock_uncertainty_ns", func(e *Extractor, c *opCtx) float64 { return e.Sched.Clock.UncertaintyNS })
	reg("est_clock_top_ns", func(e *Extractor, c *opCtx) float64 { return e.topInfo.estClock })
	reg("est_clock_fop_ns", func(e *Extractor, c *opCtx) float64 { return c.fi.estClock })
	reg("latency_top_cycles", func(e *Extractor, c *opCtx) float64 { return float64(e.topInfo.latency) })
	reg("latency_fop_cycles", func(e *Extractor, c *opCtx) float64 { return float64(c.fi.latency) })
	memFields := []struct {
		name string
		get  func(*funcInfo) float64
	}{
		{"words", func(fi *funcInfo) float64 { return fi.memWords }},
		{"banks", func(fi *funcInfo) float64 { return fi.memBanks }},
		{"bits", func(fi *funcInfo) float64 { return fi.memBits }},
		{"primitives", func(fi *funcInfo) float64 { return fi.memPrims }},
	}
	for _, mf := range memFields {
		mf := mf
		reg("mem_fop_"+mf.name, func(e *Extractor, c *opCtx) float64 { return mf.get(c.fi) })
	}
	for _, mf := range memFields {
		mf := mf
		reg("mem_top_"+mf.name, func(e *Extractor, c *opCtx) float64 { return mf.get(e.topInfo) })
	}
	muxFields := []struct {
		name string
		get  func(hls.MuxStats) float64
	}{
		{"count", func(m hls.MuxStats) float64 { return float64(m.Count) }},
		{"lut", func(m hls.MuxStats) float64 { return float64(m.Res.LUT) }},
		{"avg_inputs", func(m hls.MuxStats) float64 { return m.AvgInputs }},
		{"avg_width", func(m hls.MuxStats) float64 { return m.AvgWidth }},
	}
	for _, mf := range muxFields {
		mf := mf
		reg("mux_fop_"+mf.name, func(e *Extractor, c *opCtx) float64 { return mf.get(c.fi.mux) })
	}
	for _, mf := range muxFields {
		mf := mf
		reg("mux_top_"+mf.name, func(e *Extractor, c *opCtx) float64 { return mf.get(e.topInfo.mux) })
	}
	reg("num_live_funcs", func(e *Extractor, c *opCtx) float64 {
		return float64(e.nLive)
	})
}
