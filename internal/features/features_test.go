package features

import (
	"math"
	"testing"

	"repro/internal/fpga"
	"repro/internal/graph"
	"repro/internal/hls"
	"repro/internal/ir"
)

func TestRegistryLayout(t *testing.T) {
	names := Names()
	cats := Categories()
	if len(names) != NumFeatures || len(cats) != NumFeatures {
		t.Fatalf("registry size %d/%d, want %d", len(names), len(cats), NumFeatures)
	}
	seen := make(map[string]bool)
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate feature name %q", n)
		}
		seen[n] = true
	}
	// All seven categories are populated.
	var counts [CategoryCount]int
	for _, c := range cats {
		counts[c]++
	}
	for c, n := range counts {
		if n == 0 {
			t.Errorf("category %v has no features", Category(c))
		}
	}
	if counts[CatBitwidth] != 1 {
		t.Errorf("bitwidth category has %d features", counts[CatBitwidth])
	}
	// Operator-type features: one-hot + 1-hop counts + 2-hop counts.
	if counts[CatOpType] != 3*ir.KindCount {
		t.Errorf("op-type category has %d features, want %d", counts[CatOpType], 3*ir.KindCount)
	}
	// Resource and #Resource/dTcs scale with the four resource types.
	if counts[CatResource]%hls.ResourceTypeCount != 0 {
		t.Errorf("resource category (%d) not divisible by %d", counts[CatResource], hls.ResourceTypeCount)
	}
	if counts[CatResourceDT]%hls.ResourceTypeCount != 0 {
		t.Errorf("dTcs category (%d) not divisible by %d", counts[CatResourceDT], hls.ResourceTypeCount)
	}
}

func TestCategoryString(t *testing.T) {
	for c := 0; c < CategoryCount; c++ {
		if Category(c).String() == "?" {
			t.Errorf("category %d has no name", c)
		}
	}
	if Category(99).String() != "?" {
		t.Error("unknown category must print ?")
	}
}

// extractorFor builds a small design and its extractor.
func extractorFor(t *testing.T) (*Extractor, *ir.Module, map[string]*ir.Op) {
	t.Helper()
	m := ir.NewModule("m")
	f := m.NewFunction("top")
	b := ir.NewBuilder(f).At("t.cpp", 1)
	p := b.Port("p", 32)
	a := b.Array("mem", 128, 16, 4)
	mul := b.Op(ir.KindMul, 16, b.OpBits(ir.KindTrunc, 16, p, 16), b.Const(16))
	ld := b.Load(a, nil)
	add := b.Op(ir.KindAdd, 16, mul, ld)
	b.Ret(add)
	s, err := hls.ScheduleModule(m, hls.DefaultClock())
	if err != nil {
		t.Fatal(err)
	}
	bind := hls.BindModule(s)
	g := graph.Build(m, bind)
	ex := NewExtractor(m, s, bind, g, fpga.XC7Z020())
	return ex, m, map[string]*ir.Op{"p": p, "mul": mul, "ld": ld, "add": add}
}

func idx(t *testing.T, name string) int {
	t.Helper()
	for i, n := range Names() {
		if n == name {
			return i
		}
	}
	t.Fatalf("feature %q not found", name)
	return -1
}

func TestVectorBasics(t *testing.T) {
	ex, m, ops := extractorFor(t)
	v := ex.Vector(ops["add"])
	if len(v) != NumFeatures {
		t.Fatalf("vector length %d", len(v))
	}
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatalf("feature %q is not finite: %v", Names()[i], x)
		}
	}
	if v[idx(t, "bitwidth")] != 16 {
		t.Errorf("bitwidth = %v", v[idx(t, "bitwidth")])
	}
	if v[idx(t, "type_is_add")] != 1 {
		t.Error("one-hot add not set")
	}
	if v[idx(t, "type_is_mul")] != 0 {
		t.Error("one-hot mul set on add op")
	}
	_ = m
}

func TestVectorInterconnect(t *testing.T) {
	ex, _, ops := extractorFor(t)
	v := ex.Vector(ops["add"])
	if got := v[idx(t, "ic_fanin")]; got != 32 {
		t.Errorf("ic_fanin = %v, want 32 (two 16-bit operands)", got)
	}
	if got := v[idx(t, "ic_num_preds")]; got != 2 {
		t.Errorf("ic_num_preds = %v", got)
	}
}

func TestVectorResourceFeatures(t *testing.T) {
	ex, _, ops := extractorFor(t)
	v := ex.Vector(ops["mul"])
	dsp := v[idx(t, "res_DSP_usage")]
	if dsp == 0 {
		t.Error("mul node reports no DSP usage")
	}
	util := v[idx(t, "res_DSP_util_dev")]
	if math.Abs(util-dsp/220) > 1e-12 {
		t.Errorf("DSP util_dev = %v, want usage/220", util)
	}
}

func TestVectorGlobalFeatures(t *testing.T) {
	ex, _, ops := extractorFor(t)
	v := ex.Vector(ops["ld"])
	if got := v[idx(t, "glob_target_period_ns")]; got != 10 {
		t.Errorf("target period = %v", got)
	}
	if got := v[idx(t, "glob_mem_fop_words")]; got != 128 {
		t.Errorf("mem words = %v", got)
	}
	if got := v[idx(t, "glob_mem_fop_banks")]; got != 4 {
		t.Errorf("mem banks = %v", got)
	}
	if got := v[idx(t, "glob_mem_fop_primitives")]; got != 128*16*4 {
		t.Errorf("mem primitives = %v", got)
	}
	if got := v[idx(t, "glob_num_live_funcs")]; got != 1 {
		t.Errorf("live funcs = %v", got)
	}
}

func TestVectorDeterministic(t *testing.T) {
	ex, m, _ := extractorFor(t)
	for _, o := range m.AllOps() {
		v1 := ex.Vector(o)
		v2 := ex.Vector(o)
		for i := range v1 {
			if v1[i] != v2[i] {
				t.Fatalf("feature %q unstable on op %v", Names()[i], o)
			}
		}
	}
}

func TestVectorTimingFeatures(t *testing.T) {
	ex, _, ops := extractorFor(t)
	v := ex.Vector(ops["mul"])
	if got := v[idx(t, "timing_latency_cycles")]; got != 3 {
		t.Errorf("mul latency feature = %v, want 3", got)
	}
	if got := v[idx(t, "timing_delay_ns")]; got <= 0 {
		t.Errorf("delay feature = %v", got)
	}
}

func TestDTcsFeaturesReactToSlack(t *testing.T) {
	// Two consumers of a value: one immediate, one delayed behind a divide.
	// The immediate consumer's succ-side pressure on the producer is higher
	// (smaller dTcs), mirroring the paper's S1/S2 example.
	m := ir.NewModule("m")
	b := ir.NewBuilder(m.NewFunction("f"))
	p := b.Port("p", 16)
	src := b.Op(ir.KindAdd, 16, p, p)
	imm := b.Op(ir.KindSub, 16, src, p)
	div := b.Op(ir.KindDiv, 16, p, p)
	late := b.Op(ir.KindSub, 16, src, div)
	_ = imm
	_ = late
	s, err := hls.ScheduleModule(m, hls.DefaultClock())
	if err != nil {
		t.Fatal(err)
	}
	bind := hls.BindModule(s)
	g := graph.Build(m, bind)
	ex := NewExtractor(m, s, bind, g, fpga.XC7Z020())
	// src's dt_LUT_succ_sum: imm contributes res/1-ish, late contributes
	// res/dt with dt >> 1, so the sum must be dominated by but larger than
	// the max term.
	v := ex.Vector(src)
	sum := v[idx(t, "dt_LUT_succ_sum")]
	max := v[idx(t, "dt_LUT_succ_max")]
	if sum <= 0 || max <= 0 {
		t.Fatalf("dt features empty: sum=%v max=%v", sum, max)
	}
	if sum <= max {
		t.Errorf("sum %v must exceed single max term %v with two consumers", sum, max)
	}
}

// TestScratchNeighborhoodsMatchGraphQueries pins the scratch-based BFS of
// context() to the graph package's reference queries: the cached
// neighborhoods, rings and edge aggregates must equal what NeighborsK,
// Preds/Succs and EdgeStatsK compute with their per-call maps. This is the
// guard that the allocation-free rewrite did not change a single feature
// value.
func TestScratchNeighborhoodsMatchGraphQueries(t *testing.T) {
	ex, m, _ := extractorFor(t)
	ring2 := func(n *graph.Node, dir int) []*graph.Node {
		one := n.NeighborsK(1, dir)
		inOne := make(map[*graph.Node]bool, len(one))
		for _, x := range one {
			inOne[x] = true
		}
		var out []*graph.Node
		for _, x := range n.NeighborsK(2, dir) {
			if !inOne[x] {
				out = append(out, x)
			}
		}
		return out
	}
	sameNodes := func(tag string, op *ir.Op, got, want []*graph.Node) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("op %s %s: %d nodes, want %d", op.Name, tag, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("op %s %s: node %d is #%d, want #%d (order must match NeighborsK discovery)",
					op.Name, tag, i, got[i].ID, want[i].ID)
			}
		}
	}
	for _, op := range m.AllOps() {
		c := ex.context(op)
		n := c.node
		sameNodes("n1pred", op, c.n1pred, n.Preds())
		sameNodes("n1succ", op, c.n1succ, n.Succs())
		sameNodes("n1both", op, c.n1both, n.NeighborsK(1, graph.DirBoth))
		sameNodes("n2pred", op, c.n2pred, ring2(n, graph.DirPred))
		sameNodes("n2succ", op, c.n2succ, ring2(n, graph.DirSucc))
		sameNodes("n2both", op, c.n2both, ring2(n, graph.DirBoth))
		wt, wc, wm := n.EdgeStatsK(2)
		if c.edge2Total != wt || c.edge2Count != wc || c.edge2Max != wm {
			t.Fatalf("op %s edge stats (%d,%d,%d), want (%d,%d,%d)",
				op.Name, c.edge2Total, c.edge2Count, c.edge2Max, wt, wc, wm)
		}
	}
}

func TestVectorIntoMatchesVector(t *testing.T) {
	ex, m, _ := extractorFor(t)
	dst := make([]float64, NumFeatures)
	for _, op := range m.AllOps() {
		want := ex.Vector(op)
		got := ex.VectorInto(dst, op)
		if &got[0] != &dst[0] {
			t.Fatal("VectorInto did not fill the caller's buffer")
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("op %s feature %q: VectorInto %v, Vector %v", op.Name, Names()[i], got[i], want[i])
			}
		}
	}
}

func TestVectorIntoRejectsWrongLength(t *testing.T) {
	ex, m, _ := extractorFor(t)
	defer func() {
		if recover() == nil {
			t.Fatal("short dst did not panic")
		}
	}()
	ex.VectorInto(make([]float64, NumFeatures-1), m.AllOps()[0])
}

// TestVectorIntoAllocationFree is the allocation regression guard of the
// parallelism PR: once the extractor's scratch has warmed up, extracting a
// feature vector into a caller-provided buffer must not allocate at all.
func TestVectorIntoAllocationFree(t *testing.T) {
	ex, m, _ := extractorFor(t)
	ops := m.AllOps()
	dst := make([]float64, NumFeatures)
	for _, op := range ops { // warm the scratch to steady-state capacity
		ex.VectorInto(dst, op)
	}
	avg := testing.AllocsPerRun(100, func() {
		for _, op := range ops {
			ex.VectorInto(dst, op)
		}
	})
	if avg != 0 {
		t.Fatalf("VectorInto allocates %v objects per extraction sweep, want 0", avg)
	}
}

func BenchmarkVectorInto(b *testing.B) {
	ex, m, _ := benchExtractor(b)
	ops := m.AllOps()
	dst := make([]float64, NumFeatures)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex.VectorInto(dst, ops[i%len(ops)])
	}
}

func BenchmarkVector(b *testing.B) {
	ex, m, _ := benchExtractor(b)
	ops := m.AllOps()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex.Vector(ops[i%len(ops)])
	}
}

// benchExtractor mirrors extractorFor for benchmarks.
func benchExtractor(b *testing.B) (*Extractor, *ir.Module, map[string]*ir.Op) {
	b.Helper()
	m := ir.NewModule("m")
	f := m.NewFunction("top")
	bld := ir.NewBuilder(f).At("t.cpp", 1)
	p := bld.Port("p", 32)
	a := bld.Array("mem", 128, 16, 4)
	mul := bld.Op(ir.KindMul, 16, bld.OpBits(ir.KindTrunc, 16, p, 16), bld.Const(16))
	ld := bld.Load(a, nil)
	add := bld.Op(ir.KindAdd, 16, mul, ld)
	bld.Ret(add)
	s, err := hls.ScheduleModule(m, hls.DefaultClock())
	if err != nil {
		b.Fatal(err)
	}
	bind := hls.BindModule(s)
	g := graph.Build(m, bind)
	ex := NewExtractor(m, s, bind, g, fpga.XC7Z020())
	return ex, m, map[string]*ir.Op{"p": p, "mul": mul, "ld": ld, "add": add}
}
