// Package features implements the paper's feature extraction (Sec. III-B,
// Table II): 302 features per IR operation in seven categories — Bitwidth,
// Interconnection, Resource (per LUT/FF/DSP/BRAM), Timing, #Resource/ΔTcs,
// Operator Type and Global Information. Features are computed on the merged
// dependency graph (shared functional units count once), use schedule
// control states for the ΔTcs terms, and include the two-hop-neighborhood
// variants the paper found most influential.
package features

import (
	"fmt"

	"repro/internal/fpga"
	"repro/internal/graph"
	"repro/internal/hls"
	"repro/internal/ir"
)

// Category labels one of the paper's seven feature categories.
type Category int

// The seven categories of Table II.
const (
	CatBitwidth Category = iota
	CatInterconnect
	CatResource
	CatTiming
	CatResourceDT
	CatOpType
	CatGlobal

	categoryCount
)

// CategoryCount is the number of feature categories.
const CategoryCount = int(categoryCount)

func (c Category) String() string {
	switch c {
	case CatBitwidth:
		return "Bitwidth"
	case CatInterconnect:
		return "Interconnection"
	case CatResource:
		return "Resource"
	case CatTiming:
		return "Timing"
	case CatResourceDT:
		return "#Resource/dTcs"
	case CatOpType:
		return "Operator Type"
	case CatGlobal:
		return "Global Information"
	}
	return "?"
}

// NumFeatures is the paper's feature-vector length.
const NumFeatures = 302

// spec is one registered feature.
type spec struct {
	name string
	cat  Category
	eval func(*Extractor, *opCtx) float64
}

var registry []spec

func register(name string, cat Category, eval func(*Extractor, *opCtx) float64) {
	registry = append(registry, spec{name: name, cat: cat, eval: eval})
}

// Names returns the 302 feature names in vector order.
func Names() []string {
	out := make([]string, len(registry))
	for i, s := range registry {
		out[i] = s.name
	}
	return out
}

// Categories returns the category of each feature in vector order.
func Categories() []Category {
	out := make([]Category, len(registry))
	for i, s := range registry {
		out[i] = s.cat
	}
	return out
}

// Extractor computes feature vectors for one implemented design. It caches
// per-function aggregates so per-op extraction stays cheap.
type Extractor struct {
	Mod   *ir.Module
	Sched *hls.Schedule
	Bind  *hls.Binding
	Graph *graph.Graph
	Dev   *fpga.Device

	funcInfo map[*ir.Function]*funcInfo
	topInfo  *funcInfo
}

type funcInfo struct {
	res      hls.Resources
	estClock float64
	latency  int64
	memWords float64
	memBanks float64
	memBits  float64
	memPrims float64
	mux      hls.MuxStats
}

// NewExtractor prepares feature extraction from the HLS artifacts of a
// design. The graph must be the merged dependency graph of the same module
// and binding.
func NewExtractor(m *ir.Module, s *hls.Schedule, b *hls.Binding, g *graph.Graph, dev *fpga.Device) *Extractor {
	e := &Extractor{
		Mod:      m,
		Sched:    s,
		Bind:     b,
		Graph:    g,
		Dev:      dev,
		funcInfo: make(map[*ir.Function]*funcInfo),
	}
	for _, f := range m.LiveFuncs() {
		fi := &funcInfo{res: b.FuncBoundResources(f), mux: b.FuncMuxStats(f)}
		worst := 0.0
		for _, o := range f.Ops {
			if d := s.Slots[o].FinishDelay; d > worst {
				worst = d
			}
		}
		fi.estClock = worst + s.Clock.UncertaintyNS
		if fs := s.Funcs[f]; fs != nil {
			fi.latency = fs.LatencyCycles
		}
		for _, a := range f.Arrays {
			fi.memWords += float64(a.Words)
			fi.memBanks += float64(a.Banks)
			fi.memBits += float64(a.Bits)
			fi.memPrims += float64(a.Primitives())
		}
		e.funcInfo[f] = fi
		if f.IsTop {
			e.topInfo = fi
		}
	}
	if e.topInfo == nil {
		e.topInfo = &funcInfo{}
	}
	return e
}

// opCtx caches the per-op intermediates shared by many features.
type opCtx struct {
	op   *ir.Op
	node *graph.Node
	fi   *funcInfo

	n1both []*graph.Node // one-hop neighborhood (both directions)
	n2pred []*graph.Node // second ring, predecessor side
	n2succ []*graph.Node // second ring, successor side
	n2both []*graph.Node // second ring, both directions

	char hls.OpCharacter
}

func (e *Extractor) context(op *ir.Op) *opCtx {
	node := e.Graph.OfOp[op]
	if node == nil {
		panic(fmt.Sprintf("features: op %s missing from graph", op.Name))
	}
	c := &opCtx{
		op:   op,
		node: node,
		fi:   e.funcInfo[op.Func],
		char: hls.Characterize(op.Kind, op.Bitwidth),
	}
	if c.fi == nil {
		c.fi = &funcInfo{}
	}
	c.n1both = node.NeighborsK(1, graph.DirBoth)
	c.n2pred = ring2(node, graph.DirPred)
	c.n2succ = ring2(node, graph.DirSucc)
	c.n2both = ring2(node, graph.DirBoth)
	return c
}

// ring2 returns the nodes at exactly two hops (the second ring).
func ring2(n *graph.Node, dir int) []*graph.Node {
	one := n.NeighborsK(1, dir)
	all := n.NeighborsK(2, dir)
	inOne := make(map[*graph.Node]bool, len(one))
	for _, x := range one {
		inOne[x] = true
	}
	var out []*graph.Node
	for _, x := range all {
		if !inOne[x] {
			out = append(out, x)
		}
	}
	return out
}

// Vector computes the 302-entry feature vector of one operation.
func (e *Extractor) Vector(op *ir.Op) []float64 {
	c := e.context(op)
	out := make([]float64, len(registry))
	for i, s := range registry {
		out[i] = s.eval(e, c)
	}
	return out
}

// ---------------------------------------------------------------------------
// Shared helpers.

func sumRes(nodes []*graph.Node, t int) float64 {
	s := 0.0
	for _, n := range nodes {
		s += float64(n.Res().ByType(t))
	}
	return s
}

func maxRes(nodes []*graph.Node, t int) float64 {
	m := 0.0
	for _, n := range nodes {
		if v := float64(n.Res().ByType(t)); v > m {
			m = v
		}
	}
	return m
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func countPorts(nodes []*graph.Node) float64 {
	n := 0.0
	for _, x := range nodes {
		if x.IsPort() {
			n++
		}
	}
	return n
}

func (e *Extractor) devTotal(t int) float64 {
	return float64(e.Dev.Totals.ByType(t))
}

func (e *Extractor) funcTotal(c *opCtx, t int) float64 {
	return float64(c.fi.res.ByType(t))
}

// dtPred sums resource/ΔTcs over the op's direct producers.
func (e *Extractor) dtPred(c *opCtx, t int) (sum, max float64) {
	for _, edge := range c.op.Operands {
		d := edge.Def
		dn := e.Graph.OfOp[d]
		if dn == nil || dn == c.node {
			continue
		}
		dt := float64(e.Sched.DeltaTcs(d, c.op))
		v := float64(dn.Res().ByType(t)) / dt
		sum += v
		if v > max {
			max = v
		}
	}
	return sum, max
}

// dtSucc sums resource/ΔTcs over the op's direct consumers.
func (e *Extractor) dtSucc(c *opCtx, t int) (sum, max float64) {
	for _, u := range c.op.Users() {
		un := e.Graph.OfOp[u]
		if un == nil || un == c.node {
			continue
		}
		dt := float64(e.Sched.DeltaTcs(c.op, u))
		v := float64(un.Res().ByType(t)) / dt
		sum += v
		if v > max {
			max = v
		}
	}
	return sum, max
}

// dtPred2 extends the term through the second predecessor ring, dividing by
// the accumulated schedule distance over the two hops.
func (e *Extractor) dtPred2(c *opCtx, t int) float64 {
	sum := 0.0
	for _, edge := range c.op.Operands {
		mid := edge.Def
		dt1 := float64(e.Sched.DeltaTcs(mid, c.op))
		for _, edge2 := range mid.Operands {
			d2 := edge2.Def
			dn := e.Graph.OfOp[d2]
			if dn == nil || dn == c.node {
				continue
			}
			dt2 := float64(e.Sched.DeltaTcs(d2, mid))
			sum += float64(dn.Res().ByType(t)) / (dt1 + dt2)
		}
	}
	return sum
}

// dtSucc2 is the successor-side two-hop variant.
func (e *Extractor) dtSucc2(c *opCtx, t int) float64 {
	sum := 0.0
	for _, mid := range c.op.Users() {
		dt1 := float64(e.Sched.DeltaTcs(c.op, mid))
		for _, u2 := range mid.Users() {
			un := e.Graph.OfOp[u2]
			if un == nil || un == c.node {
				continue
			}
			dt2 := float64(e.Sched.DeltaTcs(mid, u2))
			sum += float64(un.Res().ByType(t)) / (dt1 + dt2)
		}
	}
	return sum
}

func countKind(nodes []*graph.Node, k ir.OpKind) float64 {
	n := 0.0
	for _, x := range nodes {
		if x.Kind == k {
			n++
		}
	}
	return n
}
