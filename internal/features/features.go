// Package features implements the paper's feature extraction (Sec. III-B,
// Table II): 302 features per IR operation in seven categories — Bitwidth,
// Interconnection, Resource (per LUT/FF/DSP/BRAM), Timing, #Resource/ΔTcs,
// Operator Type and Global Information. Features are computed on the merged
// dependency graph (shared functional units count once), use schedule
// control states for the ΔTcs terms, and include the two-hop-neighborhood
// variants the paper found most influential.
package features

import (
	"fmt"

	"repro/internal/fpga"
	"repro/internal/graph"
	"repro/internal/hls"
	"repro/internal/ir"
)

// Category labels one of the paper's seven feature categories.
type Category int

// The seven categories of Table II.
const (
	CatBitwidth Category = iota
	CatInterconnect
	CatResource
	CatTiming
	CatResourceDT
	CatOpType
	CatGlobal

	categoryCount
)

// CategoryCount is the number of feature categories.
const CategoryCount = int(categoryCount)

func (c Category) String() string {
	switch c {
	case CatBitwidth:
		return "Bitwidth"
	case CatInterconnect:
		return "Interconnection"
	case CatResource:
		return "Resource"
	case CatTiming:
		return "Timing"
	case CatResourceDT:
		return "#Resource/dTcs"
	case CatOpType:
		return "Operator Type"
	case CatGlobal:
		return "Global Information"
	}
	return "?"
}

// NumFeatures is the paper's feature-vector length.
const NumFeatures = 302

// spec is one registered feature.
type spec struct {
	name string
	cat  Category
	eval func(*Extractor, *opCtx) float64
}

var registry []spec

func register(name string, cat Category, eval func(*Extractor, *opCtx) float64) {
	registry = append(registry, spec{name: name, cat: cat, eval: eval})
}

// Names returns the 302 feature names in vector order.
func Names() []string {
	out := make([]string, len(registry))
	for i, s := range registry {
		out[i] = s.name
	}
	return out
}

// Categories returns the category of each feature in vector order.
func Categories() []Category {
	out := make([]Category, len(registry))
	for i, s := range registry {
		out[i] = s.cat
	}
	return out
}

// Extractor computes feature vectors for one implemented design. It caches
// per-function aggregates so per-op extraction stays cheap, and reuses
// per-op scratch state (neighborhood buffers, BFS marks) across Vector
// calls so extraction allocates only the output vector.
//
// An Extractor is NOT safe for concurrent use: the scratch state makes
// Vector/VectorInto calls mutually exclusive. The parallel dataset builder
// respects this by constructing one Extractor per module and extracting on
// a single goroutine.
type Extractor struct {
	Mod   *ir.Module
	Sched *hls.Schedule
	Bind  *hls.Binding
	Graph *graph.Graph
	Dev   *fpga.Device

	funcInfo map[*ir.Function]*funcInfo
	topInfo  *funcInfo
	emptyFI  *funcInfo
	nLive    int

	// Scratch reused by context(): one opCtx plus BFS generation marks
	// indexed by graph-node ID.
	opScratch opCtx
	seen      []int
	gen       int
}

type funcInfo struct {
	res      hls.Resources
	estClock float64
	latency  int64
	memWords float64
	memBanks float64
	memBits  float64
	memPrims float64
	mux      hls.MuxStats
}

// NewExtractor prepares feature extraction from the HLS artifacts of a
// design. The graph must be the merged dependency graph of the same module
// and binding.
func NewExtractor(m *ir.Module, s *hls.Schedule, b *hls.Binding, g *graph.Graph, dev *fpga.Device) *Extractor {
	e := &Extractor{
		Mod:      m,
		Sched:    s,
		Bind:     b,
		Graph:    g,
		Dev:      dev,
		funcInfo: make(map[*ir.Function]*funcInfo),
	}
	for _, f := range m.LiveFuncs() {
		fi := &funcInfo{res: b.FuncBoundResources(f), mux: b.FuncMuxStats(f)}
		worst := 0.0
		for _, o := range f.Ops {
			if d := s.Slots[o].FinishDelay; d > worst {
				worst = d
			}
		}
		fi.estClock = worst + s.Clock.UncertaintyNS
		if fs := s.Funcs[f]; fs != nil {
			fi.latency = fs.LatencyCycles
		}
		for _, a := range f.Arrays {
			fi.memWords += float64(a.Words)
			fi.memBanks += float64(a.Banks)
			fi.memBits += float64(a.Bits)
			fi.memPrims += float64(a.Primitives())
		}
		e.funcInfo[f] = fi
		if f.IsTop {
			e.topInfo = fi
		}
	}
	if e.topInfo == nil {
		e.topInfo = &funcInfo{}
	}
	e.emptyFI = &funcInfo{}
	e.nLive = len(m.LiveFuncs())
	e.seen = make([]int, len(g.Nodes))
	return e
}

// opCtx caches the per-op intermediates shared by many features. The
// neighborhood slices live in the Extractor's scratch and are overwritten
// by the next Vector call; evaluators must not retain them.
type opCtx struct {
	op   *ir.Op
	node *graph.Node
	fi   *funcInfo

	n1both []*graph.Node // one-hop neighborhood (both directions)
	n1pred []*graph.Node // one-hop, predecessor side (== distinct preds)
	n1succ []*graph.Node // one-hop, successor side (== distinct succs)
	n2pred []*graph.Node // second ring, predecessor side
	n2succ []*graph.Node // second ring, successor side
	n2both []*graph.Node // second ring, both directions

	// Wire-weight aggregates of all edges incident to the two-hop
	// neighborhood, matching graph.Node.EdgeStatsK(2).
	edge2Total, edge2Count, edge2Max int

	char hls.OpCharacter
}

func (e *Extractor) context(op *ir.Op) *opCtx {
	node := e.Graph.OfOp[op]
	if node == nil {
		panic(fmt.Sprintf("features: op %s missing from graph", op.Name))
	}
	c := &e.opScratch
	c.op = op
	c.node = node
	c.fi = e.funcInfo[op.Func]
	c.char = hls.Characterize(op.Kind, op.Bitwidth)
	if c.fi == nil {
		c.fi = e.emptyFI
	}
	c.n1pred, c.n2pred = e.walk2(node, graph.DirPred, c.n1pred, c.n2pred)
	c.n1succ, c.n2succ = e.walk2(node, graph.DirSucc, c.n1succ, c.n2succ)
	// The DirBoth walk runs last so its generation marks are still live for
	// the edge aggregation below.
	c.n1both, c.n2both = e.walk2(node, graph.DirBoth, c.n1both, c.n2both)
	c.edge2Total, c.edge2Count, c.edge2Max = e.edgeStats2(c)
	return c
}

// walk2 is a two-hop BFS from n collecting the one-hop neighborhood and the
// second ring into the reused hop1/hop2 scratch slices, preserving
// graph.Node.NeighborsK discovery order (per frontier node: In edges, then
// Out edges). Visited marks use a fresh generation of e.seen, so no map or
// per-call allocation is needed.
func (e *Extractor) walk2(n *graph.Node, dir int, hop1, hop2 []*graph.Node) (h1, h2 []*graph.Node) {
	e.gen++
	g := e.gen
	e.seen[n.ID] = g
	hop1, hop2 = hop1[:0], hop2[:0]
	if dir == graph.DirPred || dir == graph.DirBoth {
		for _, ed := range n.In {
			if e.seen[ed.From.ID] != g {
				e.seen[ed.From.ID] = g
				hop1 = append(hop1, ed.From)
			}
		}
	}
	if dir == graph.DirSucc || dir == graph.DirBoth {
		for _, ed := range n.Out {
			if e.seen[ed.To.ID] != g {
				e.seen[ed.To.ID] = g
				hop1 = append(hop1, ed.To)
			}
		}
	}
	for _, cur := range hop1 {
		if dir == graph.DirPred || dir == graph.DirBoth {
			for _, ed := range cur.In {
				if e.seen[ed.From.ID] != g {
					e.seen[ed.From.ID] = g
					hop2 = append(hop2, ed.From)
				}
			}
		}
		if dir == graph.DirSucc || dir == graph.DirBoth {
			for _, ed := range cur.Out {
				if e.seen[ed.To.ID] != g {
					e.seen[ed.To.ID] = g
					hop2 = append(hop2, ed.To)
				}
			}
		}
	}
	return hop1, hop2
}

// edgeStats2 aggregates the wire weights of all edges incident to the
// two-hop neighborhood of c.node, equal to graph.Node.EdgeStatsK(2) but
// allocation-free: it reuses the generation marks left by the DirBoth walk
// (which flag exactly {node} ∪ n1both ∪ n2both) and dedups each edge by
// counting it at its To endpoint when that endpoint is in the set, and at
// its From endpoint otherwise.
func (e *Extractor) edgeStats2(c *opCtx) (total, count, max int) {
	g := e.gen
	add := func(w int) {
		total += w
		count++
		if w > max {
			max = w
		}
	}
	scan := func(x *graph.Node) {
		for _, ed := range x.In { // x == ed.To, in the set: canonical endpoint
			add(ed.Wires)
		}
		for _, ed := range x.Out { // counted at To's In scan unless To is outside
			if e.seen[ed.To.ID] != g {
				add(ed.Wires)
			}
		}
	}
	scan(c.node)
	for _, x := range c.n1both {
		scan(x)
	}
	for _, x := range c.n2both {
		scan(x)
	}
	return total, count, max
}

// Vector computes the 302-entry feature vector of one operation.
func (e *Extractor) Vector(op *ir.Op) []float64 {
	return e.VectorInto(make([]float64, len(registry)), op)
}

// VectorInto computes the feature vector of op into dst, which must have
// length NumFeatures, and returns dst. It is the allocation-free variant of
// Vector used by the dataset builder, which extracts thousands of ops per
// design into one preallocated backing array.
func (e *Extractor) VectorInto(dst []float64, op *ir.Op) []float64 {
	if len(dst) != len(registry) {
		panic(fmt.Sprintf("features: VectorInto dst length %d, want %d", len(dst), len(registry)))
	}
	c := e.context(op)
	for i, s := range registry {
		dst[i] = s.eval(e, c)
	}
	return dst
}

// ---------------------------------------------------------------------------
// Shared helpers.

func sumRes(nodes []*graph.Node, t int) float64 {
	s := 0.0
	for _, n := range nodes {
		s += float64(n.Res().ByType(t))
	}
	return s
}

func maxRes(nodes []*graph.Node, t int) float64 {
	m := 0.0
	for _, n := range nodes {
		if v := float64(n.Res().ByType(t)); v > m {
			m = v
		}
	}
	return m
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func countPorts(nodes []*graph.Node) float64 {
	n := 0.0
	for _, x := range nodes {
		if x.IsPort() {
			n++
		}
	}
	return n
}

func (e *Extractor) devTotal(t int) float64 {
	return float64(e.Dev.Totals.ByType(t))
}

func (e *Extractor) funcTotal(c *opCtx, t int) float64 {
	return float64(c.fi.res.ByType(t))
}

// dtPred sums resource/ΔTcs over the op's direct producers.
func (e *Extractor) dtPred(c *opCtx, t int) (sum, max float64) {
	for _, edge := range c.op.Operands {
		d := edge.Def
		dn := e.Graph.OfOp[d]
		if dn == nil || dn == c.node {
			continue
		}
		dt := float64(e.Sched.DeltaTcs(d, c.op))
		v := float64(dn.Res().ByType(t)) / dt
		sum += v
		if v > max {
			max = v
		}
	}
	return sum, max
}

// dtSucc sums resource/ΔTcs over the op's direct consumers.
func (e *Extractor) dtSucc(c *opCtx, t int) (sum, max float64) {
	for _, u := range c.op.Users() {
		un := e.Graph.OfOp[u]
		if un == nil || un == c.node {
			continue
		}
		dt := float64(e.Sched.DeltaTcs(c.op, u))
		v := float64(un.Res().ByType(t)) / dt
		sum += v
		if v > max {
			max = v
		}
	}
	return sum, max
}

// dtPred2 extends the term through the second predecessor ring, dividing by
// the accumulated schedule distance over the two hops.
func (e *Extractor) dtPred2(c *opCtx, t int) float64 {
	sum := 0.0
	for _, edge := range c.op.Operands {
		mid := edge.Def
		dt1 := float64(e.Sched.DeltaTcs(mid, c.op))
		for _, edge2 := range mid.Operands {
			d2 := edge2.Def
			dn := e.Graph.OfOp[d2]
			if dn == nil || dn == c.node {
				continue
			}
			dt2 := float64(e.Sched.DeltaTcs(d2, mid))
			sum += float64(dn.Res().ByType(t)) / (dt1 + dt2)
		}
	}
	return sum
}

// dtSucc2 is the successor-side two-hop variant.
func (e *Extractor) dtSucc2(c *opCtx, t int) float64 {
	sum := 0.0
	for _, mid := range c.op.Users() {
		dt1 := float64(e.Sched.DeltaTcs(c.op, mid))
		for _, u2 := range mid.Users() {
			un := e.Graph.OfOp[u2]
			if un == nil || un == c.node {
				continue
			}
			dt2 := float64(e.Sched.DeltaTcs(mid, u2))
			sum += float64(un.Res().ByType(t)) / (dt1 + dt2)
		}
	}
	return sum
}

func countKind(nodes []*graph.Node, k ir.OpKind) float64 {
	n := 0.0
	for _, x := range nodes {
		if x.Kind == k {
			n++
		}
	}
	return n
}
