package dataset

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// LabelStats summarizes one congestion label's distribution.
type LabelStats struct {
	Mean, Std, Min, Max, Median float64
}

// Stats computes the distribution summary of a target over the dataset.
func (d *Dataset) Stats(t Target) LabelStats {
	if len(d.Samples) == 0 {
		return LabelStats{}
	}
	vals := make([]float64, len(d.Samples))
	var sum float64
	st := LabelStats{Min: math.Inf(1), Max: math.Inf(-1)}
	for i, s := range d.Samples {
		v := s.Label(t)
		vals[i] = v
		sum += v
		st.Min = math.Min(st.Min, v)
		st.Max = math.Max(st.Max, v)
	}
	st.Mean = sum / float64(len(vals))
	var va float64
	for _, v := range vals {
		va += (v - st.Mean) * (v - st.Mean)
	}
	st.Std = math.Sqrt(va / float64(len(vals)))
	sort.Float64s(vals)
	n := len(vals)
	if n%2 == 1 {
		st.Median = vals[n/2]
	} else {
		st.Median = (vals[n/2-1] + vals[n/2]) / 2
	}
	return st
}

// Summary renders a human-readable dataset overview: per-design sample
// counts, label distributions per target, and the marginal fraction.
func (d *Dataset) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "dataset: %d samples, %d features, %.2f%% marginal\n",
		d.Len(), len(d.FeatureNames), 100*d.MarginalFraction())
	byDesign := make(map[string]int)
	var names []string
	for _, s := range d.Samples {
		if byDesign[s.Design] == 0 {
			names = append(names, s.Design)
		}
		byDesign[s.Design]++
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "  %-20s %5d samples\n", n, byDesign[n])
	}
	for _, t := range Targets {
		st := d.Stats(t)
		fmt.Fprintf(&b, "  %-12s mean %6.1f  std %5.1f  median %6.1f  range [%.1f, %.1f]\n",
			t, st.Mean, st.Std, st.Median, st.Min, st.Max)
	}
	return b.String()
}
