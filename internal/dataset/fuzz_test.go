package dataset

import (
	"bytes"
	"testing"
)

// FuzzReadCSV feeds arbitrary bytes to the CSV reader: malformed input must
// produce an error, never a panic, and accepted input must round-trip.
func FuzzReadCSV(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("design,op_id,kind,src,margin,replica,replica_root,vert_pct,horiz_pct,avg_pct,f0\n" +
		"d,1,add,a.cpp:1,false,false,-1,1,2,1.5,0.25\n"))
	f.Add([]byte("a,b\n1,2\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ReadCSV(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := d.WriteCSV(&buf); err != nil {
			t.Fatalf("accepted dataset failed to serialize: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round-trip of accepted dataset failed: %v", err)
		}
		if back.Len() != d.Len() {
			t.Fatalf("round-trip changed sample count %d -> %d", d.Len(), back.Len())
		}
	})
}
