// Package dataset assembles training data for the congestion predictor:
// one sample per back-traced IR operation, pairing the 302-entry feature
// vector with the vertical/horizontal congestion labels of the CLB the
// operation landed in. It implements the paper's marginal-operation sample
// filtering (Sec. III-C1) and CSV serialization for the cmd/benchgen tool.
package dataset

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/backtrace"
	"repro/internal/features"
	"repro/internal/ir"
)

// Target selects which congestion label a model is trained against.
type Target int

const (
	// Vertical is the vertical congestion percentage.
	Vertical Target = iota
	// Horizontal is the horizontal congestion percentage.
	Horizontal
	// Average is the paper's Avg (V, H) metric.
	Average
)

func (t Target) String() string {
	switch t {
	case Vertical:
		return "Vertical"
	case Horizontal:
		return "Horizontal"
	case Average:
		return "Avg (V, H)"
	}
	return "?"
}

// Targets lists the three labels of Table IV in order.
var Targets = []Target{Vertical, Horizontal, Average}

// Sample is one (features, labels) pair.
type Sample struct {
	Design   string
	OpID     int
	Kind     ir.OpKind
	Src      ir.SourceLoc
	Features []float64

	VertPct  float64
	HorizPct float64
	AvgPct   float64

	// Margin and Replica feed the marginal-operation filter: a replica of
	// an unrolled-loop body placed in the die's outer margin band.
	Margin  bool
	Replica bool
	// ReplicaRoot identifies the unroll group: the ID of the copy-0
	// operation this sample's op replicates, or -1 for an original.
	ReplicaRoot int
}

// Label returns the selected target value.
func (s *Sample) Label(t Target) float64 {
	switch t {
	case Vertical:
		return s.VertPct
	case Horizontal:
		return s.HorizPct
	default:
		return s.AvgPct
	}
}

// marginalDeviation is how far below its unroll-group median a margin
// sample's label must fall to count as a marginal operation.
const marginalDeviation = 0.9

// Dataset is a collection of samples with a shared feature layout.
type Dataset struct {
	FeatureNames []string
	Samples      []*Sample
}

// New returns an empty dataset with the standard 302-feature layout.
func New() *Dataset {
	return &Dataset{FeatureNames: features.Names()}
}

// FromTrace extracts features for every traced operation of one design and
// appends the samples. All feature vectors of the batch share one flat
// preallocated backing array (full-capacity row slices, so an append on a
// row can never bleed into its neighbor), cutting per-op allocations to the
// Sample headers.
func (d *Dataset) FromTrace(design string, traced []backtrace.OpCongestion, ex *features.Extractor) {
	flat := make([]float64, len(traced)*features.NumFeatures)
	for i, t := range traced {
		row := flat[i*features.NumFeatures : (i+1)*features.NumFeatures : (i+1)*features.NumFeatures]
		d.Samples = append(d.Samples, &Sample{
			Design:      design,
			OpID:        t.Op.ID,
			Kind:        t.Op.Kind,
			Src:         t.Op.Src,
			Features:    ex.VectorInto(row, t.Op),
			VertPct:     t.VertPct,
			HorizPct:    t.HorizPct,
			AvgPct:      t.AvgPct,
			Margin:      t.Margin,
			Replica:     t.Op.IsReplica(),
			ReplicaRoot: t.Op.ReplicaOf,
		})
	}
}

// Merge appends another dataset's samples.
func (d *Dataset) Merge(o *Dataset) {
	d.Samples = append(d.Samples, o.Samples...)
}

// Len returns the sample count.
func (d *Dataset) Len() int { return len(d.Samples) }

// Marginal reports, per sample, whether it is a marginal operation in the
// paper's sense (Sec. III-C1): an unrolled-loop replica placed at the die
// margin whose label deviates far below the median of its sibling replicas
// — same features, outlier label.
func (d *Dataset) Marginal() []bool {
	return d.MarginalWithDeviation(marginalDeviation)
}

// MarginalWithDeviation is Marginal with an explicit deviation threshold: a
// margin-placed replica counts as marginal when its label falls below
// deviation*median of its unroll group. The ablation experiments sweep this
// knob; the paper's filter corresponds to the package default.
func (d *Dataset) MarginalWithDeviation(deviation float64) []bool {
	medians := d.groupMedians()
	out := make([]bool, len(d.Samples))
	for i, s := range d.Samples {
		if !s.Replica || !s.Margin {
			continue
		}
		med, ok := medians[groupKey{s.Design, s.ReplicaRoot}]
		if !ok {
			continue
		}
		out[i] = s.AvgPct < deviation*med
	}
	return out
}

type groupKey struct {
	design string
	root   int
}

// groupMedians returns the median average-congestion label per unroll
// group.
func (d *Dataset) groupMedians() map[groupKey]float64 {
	groups := make(map[groupKey][]float64)
	for _, s := range d.Samples {
		if s.ReplicaRoot < 0 {
			continue
		}
		k := groupKey{s.Design, s.ReplicaRoot}
		groups[k] = append(groups[k], s.AvgPct)
	}
	out := make(map[groupKey]float64, len(groups))
	for k, vals := range groups {
		sort.Float64s(vals)
		n := len(vals)
		if n%2 == 1 {
			out[k] = vals[n/2]
		} else {
			out[k] = (vals[n/2-1] + vals[n/2]) / 2
		}
	}
	return out
}

// FilterMarginal returns a copy without marginal operations, plus the
// number removed. The paper reports ~3.4 % of operations filtered.
func (d *Dataset) FilterMarginal() (*Dataset, int) {
	out := &Dataset{FeatureNames: d.FeatureNames}
	marg := d.Marginal()
	removed := 0
	for i, s := range d.Samples {
		if marg[i] {
			removed++
			continue
		}
		out.Samples = append(out.Samples, s)
	}
	return out, removed
}

// MarginalFraction returns the share of samples the filter would remove.
func (d *Dataset) MarginalFraction() float64 {
	if len(d.Samples) == 0 {
		return 0
	}
	n := 0
	for _, m := range d.Marginal() {
		if m {
			n++
		}
	}
	return float64(n) / float64(len(d.Samples))
}

// Matrix exports the design matrix and target vector for one label.
func (d *Dataset) Matrix(t Target) ([][]float64, []float64) {
	X := make([][]float64, len(d.Samples))
	y := make([]float64, len(d.Samples))
	for i, s := range d.Samples {
		X[i] = s.Features
		y[i] = s.Label(t)
	}
	return X, y
}

// WriteCSV serializes the dataset with a header row. Layout: design, op_id,
// kind, src, margin, replica, vert, horiz, avg, then the feature columns.
func (d *Dataset) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cols := append([]string{"design", "op_id", "kind", "src", "margin", "replica",
		"replica_root", "vert_pct", "horiz_pct", "avg_pct"}, d.FeatureNames...)
	if _, err := bw.WriteString(strings.Join(cols, ",") + "\n"); err != nil {
		return err
	}
	for _, s := range d.Samples {
		row := make([]string, 0, len(cols))
		row = append(row,
			s.Design,
			strconv.Itoa(s.OpID),
			s.Kind.String(),
			s.Src.String(),
			strconv.FormatBool(s.Margin),
			strconv.FormatBool(s.Replica),
			strconv.Itoa(s.ReplicaRoot),
			formatF(s.VertPct),
			formatF(s.HorizPct),
			formatF(s.AvgPct),
		)
		for _, f := range s.Features {
			row = append(row, formatF(f))
		}
		if _, err := bw.WriteString(strings.Join(row, ",") + "\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func formatF(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }

// ReadCSV parses a dataset written by WriteCSV.
func ReadCSV(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<22)
	if !sc.Scan() {
		return nil, fmt.Errorf("dataset: empty CSV")
	}
	header := strings.Split(sc.Text(), ",")
	const meta = 10
	if len(header) <= meta {
		return nil, fmt.Errorf("dataset: header has %d columns", len(header))
	}
	d := &Dataset{FeatureNames: header[meta:]}
	line := 1
	for sc.Scan() {
		line++
		fields := strings.Split(sc.Text(), ",")
		if len(fields) != len(header) {
			return nil, fmt.Errorf("dataset: line %d has %d fields, want %d", line, len(fields), len(header))
		}
		s := &Sample{Design: fields[0]}
		var err error
		if s.OpID, err = strconv.Atoi(fields[1]); err != nil {
			return nil, fmt.Errorf("dataset: line %d op_id: %w", line, err)
		}
		s.Src = parseLoc(fields[3])
		s.Margin = fields[4] == "true"
		s.Replica = fields[5] == "true"
		if s.ReplicaRoot, err = strconv.Atoi(fields[6]); err != nil {
			return nil, fmt.Errorf("dataset: line %d replica_root: %w", line, err)
		}
		if s.VertPct, err = strconv.ParseFloat(fields[7], 64); err != nil {
			return nil, fmt.Errorf("dataset: line %d vert: %w", line, err)
		}
		if s.HorizPct, err = strconv.ParseFloat(fields[8], 64); err != nil {
			return nil, fmt.Errorf("dataset: line %d horiz: %w", line, err)
		}
		if s.AvgPct, err = strconv.ParseFloat(fields[9], 64); err != nil {
			return nil, fmt.Errorf("dataset: line %d avg: %w", line, err)
		}
		s.Features = make([]float64, len(header)-meta)
		for j := meta; j < len(fields); j++ {
			if s.Features[j-meta], err = strconv.ParseFloat(fields[j], 64); err != nil {
				return nil, fmt.Errorf("dataset: line %d col %d: %w", line, j, err)
			}
		}
		d.Samples = append(d.Samples, s)
	}
	return d, sc.Err()
}

func parseLoc(s string) ir.SourceLoc {
	i := strings.LastIndexByte(s, ':')
	if i < 0 {
		return ir.SourceLoc{File: s}
	}
	line, err := strconv.Atoi(s[i+1:])
	if err != nil {
		return ir.SourceLoc{File: s}
	}
	return ir.SourceLoc{File: s[:i], Line: line}
}
