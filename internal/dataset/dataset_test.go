package dataset

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/features"
	"repro/internal/ir"
)

// synthDataset builds a dataset with controlled replica groups.
func synthDataset(n int, rng *rand.Rand) *Dataset {
	d := New()
	for i := 0; i < n; i++ {
		s := &Sample{
			Design:      "synth",
			OpID:        i,
			Kind:        ir.KindAdd,
			Src:         ir.SourceLoc{File: "s.cpp", Line: 1 + i%7},
			Features:    make([]float64, features.NumFeatures),
			VertPct:     rng.Float64() * 100,
			HorizPct:    rng.Float64() * 100,
			ReplicaRoot: -1,
		}
		s.AvgPct = (s.VertPct + s.HorizPct) / 2
		s.Features[0] = float64(i)
		d.Samples = append(d.Samples, s)
	}
	return d
}

func TestTargetsAndLabels(t *testing.T) {
	s := &Sample{VertPct: 10, HorizPct: 30, AvgPct: 20}
	if s.Label(Vertical) != 10 || s.Label(Horizontal) != 30 || s.Label(Average) != 20 {
		t.Error("Label selection wrong")
	}
	if len(Targets) != 3 {
		t.Error("Targets must list three labels")
	}
	if Vertical.String() == Horizontal.String() {
		t.Error("target names must differ")
	}
}

func TestMatrixShape(t *testing.T) {
	d := synthDataset(10, rand.New(rand.NewSource(1)))
	X, y := d.Matrix(Vertical)
	if len(X) != 10 || len(y) != 10 {
		t.Fatal("matrix shape wrong")
	}
	for i := range X {
		if len(X[i]) != features.NumFeatures {
			t.Fatal("row width wrong")
		}
		if y[i] != d.Samples[i].VertPct {
			t.Fatal("labels misaligned")
		}
	}
}

func TestMergeAndLen(t *testing.T) {
	a := synthDataset(4, rand.New(rand.NewSource(1)))
	b := synthDataset(6, rand.New(rand.NewSource(2)))
	a.Merge(b)
	if a.Len() != 10 {
		t.Fatalf("merged len = %d", a.Len())
	}
}

func TestMarginalFilterCriterion(t *testing.T) {
	d := New()
	// A replica group of 8 samples around label 50; two siblings at the
	// margin, one with a deviant low label (marginal), one close to the
	// median (kept).
	for i := 0; i < 8; i++ {
		s := &Sample{
			Design:      "d",
			OpID:        i,
			Features:    []float64{0},
			Replica:     true,
			ReplicaRoot: 100,
			AvgPct:      50,
		}
		switch i {
		case 0:
			s.Margin = true
			s.AvgPct = 10 // deviant low at margin -> marginal
		case 1:
			s.Margin = true
			s.AvgPct = 48 // margin but on-median -> kept
		case 2:
			s.Margin = false
			s.AvgPct = 5 // deviant but not at margin -> kept
		}
		d.Samples = append(d.Samples, s)
	}
	// A non-replica op at the margin with a tiny label -> kept.
	d.Samples = append(d.Samples, &Sample{
		Design: "d", OpID: 99, Features: []float64{0},
		Margin: true, ReplicaRoot: -1, AvgPct: 1,
	})
	marg := d.Marginal()
	wantMarginal := map[int]bool{0: true}
	for i, m := range marg {
		if m != wantMarginal[i] {
			t.Errorf("sample %d marginal = %v, want %v", i, m, wantMarginal[i])
		}
	}
	filtered, removed := d.FilterMarginal()
	if removed != 1 || filtered.Len() != d.Len()-1 {
		t.Errorf("removed %d, len %d", removed, filtered.Len())
	}
	if frac := d.MarginalFraction(); frac != 1.0/9.0 {
		t.Errorf("marginal fraction = %v", frac)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := synthDataset(25, rand.New(rand.NewSource(3)))
	d.Samples[3].Margin = true
	d.Samples[3].Replica = true
	d.Samples[3].ReplicaRoot = 7
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != d.Len() {
		t.Fatalf("roundtrip len %d != %d", back.Len(), d.Len())
	}
	for i, s := range back.Samples {
		o := d.Samples[i]
		if s.OpID != o.OpID || s.Margin != o.Margin || s.Replica != o.Replica ||
			s.ReplicaRoot != o.ReplicaRoot || s.Design != o.Design {
			t.Fatalf("sample %d metadata mismatch: %+v vs %+v", i, s, o)
		}
		if s.Src != o.Src {
			t.Fatalf("sample %d src %v != %v", i, s.Src, o.Src)
		}
		for _, tg := range Targets {
			if diff := s.Label(tg) - o.Label(tg); diff > 1e-6 || diff < -1e-6 {
				t.Fatalf("sample %d label %v mismatch", i, tg)
			}
		}
		for j := range s.Features {
			if diff := s.Features[j] - o.Features[j]; diff > 1e-6 || diff < -1e-6 {
				t.Fatalf("sample %d feature %d mismatch", i, j)
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("")); err == nil {
		t.Error("empty CSV accepted")
	}
	if _, err := ReadCSV(bytes.NewBufferString("a,b,c\n")); err == nil {
		t.Error("short header accepted")
	}
	d := synthDataset(1, rand.New(rand.NewSource(1)))
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	broken := bytes.Replace(buf.Bytes(), []byte("\n"), []byte("\nbad,row\n"), 1)
	if _, err := ReadCSV(bytes.NewBuffer(broken)); err == nil {
		t.Error("ragged row accepted")
	}
}

// Property: filtering never removes non-replica samples and never grows
// the dataset.
func TestFilterProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := synthDataset(30, rng)
		// Randomly mark some replicas/margins.
		for _, s := range d.Samples {
			if rng.Intn(3) == 0 {
				s.Replica = true
				s.ReplicaRoot = rng.Intn(4)
			}
			s.Margin = rng.Intn(4) == 0
		}
		filtered, removed := d.FilterMarginal()
		if filtered.Len()+removed != d.Len() {
			return false
		}
		for _, s := range filtered.Samples {
			_ = s
		}
		// Re-filtering a filtered dataset with the same group medians can
		// remove more (medians shift), but it never grows.
		again, _ := filtered.FilterMarginal()
		return again.Len() <= filtered.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestParseLoc(t *testing.T) {
	if got := parseLoc("a.cpp:17"); got != (ir.SourceLoc{File: "a.cpp", Line: 17}) {
		t.Errorf("parseLoc = %v", got)
	}
	if got := parseLoc("<unknown>"); got.Line != 0 {
		t.Errorf("parseLoc(<unknown>) = %v", got)
	}
}

func TestStatsAndSummary(t *testing.T) {
	d := synthDataset(40, rand.New(rand.NewSource(9)))
	st := d.Stats(Vertical)
	if !(st.Min <= st.Median && st.Median <= st.Max) {
		t.Errorf("stats not ordered: %+v", st)
	}
	if st.Std < 0 || st.Mean < st.Min || st.Mean > st.Max {
		t.Errorf("stats out of range: %+v", st)
	}
	out := d.Summary()
	for _, want := range []string{"40 samples", "synth", "Vertical", "mean"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	empty := New()
	if s := empty.Stats(Average); s.Mean != 0 {
		t.Error("empty stats not zero")
	}
}
