package store

import (
	"bytes"
	"fmt"
	"sort"
	"strings"

	"repro/internal/congestion"
	"repro/internal/flow"
	"repro/internal/fpga"
	"repro/internal/hls"
	"repro/internal/ir"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/rtl"
	"repro/internal/timing"
)

// Flow-result payload codec.
//
// A flow.Result is a deep pointer graph — the schedule keys slots by
// *ir.Op, the netlist maps ops to cells, pins reference nets — so a naive
// field serialization could never restore it. Instead the codec exploits
// the same property the flow cache's keys rely on: the front half of the
// flow (schedule, bind, elaborate) is a deterministic pure function of the
// module text and the clock. The payload therefore stores only the module's
// canonical text plus the stochastic back half (placement positions,
// congestion grids, per-pin routing stats, the timing report), and decoding
// re-derives the front half by replaying schedule/bind/elaborate on the
// parsed module. Cell and net IDs reproduce exactly, so the stored
// positions and pin references resolve against the re-derived netlist.
//
// Verification is semantic, not just checksummed: VerifyResultKey
// recomputes flow.CacheKey over the decoded module and config and compares
// it to the requested key. Since the key hashes the module text and every
// config field that influences outputs, a payload that decodes but
// describes anything other than the requested artifact is rejected — the
// disk tier can degrade to recompute but never serve a wrong result.

const (
	payloadResult  = 'R'
	payloadDataset = 'D'
	payloadModule  = 'M'
	resultVersion  = 1
)

// EncodeResult serializes a completed flow result. Results with missing
// artifacts (failed or synthetic runs) are rejected.
func EncodeResult(res *flow.Result) ([]byte, error) {
	if err := encodableResult(res); err != nil {
		return nil, err
	}
	var text bytes.Buffer
	if err := ir.WriteText(&text, res.Mod); err != nil {
		return nil, fmt.Errorf("store: encode module text: %w", err)
	}
	b := make([]byte, 0, EncodedResultSize(res))
	b = appendU8(b, payloadResult)
	b = appendU8(b, resultVersion)
	b = appendString(b, text.String())
	b = appendConfig(b, res.Config)
	b = appendPlacement(b, res.Placement)
	b = appendRouting(b, res.Routing)
	rep := res.Timing
	b = appendF64(b, rep.CriticalNS)
	b = appendF64(b, rep.WNS)
	b = appendF64(b, rep.FmaxMHz)
	b = appendI64(b, rep.LatencyCycles)
	b = appendBool(b, res.Convergence.Converged)
	b = appendI64(b, int64(res.Convergence.OverusedEdges))
	b = appendI64(b, int64(res.Convergence.Iterations))
	tm := res.Timings
	b = appendI64(b, int64(tm.Schedule))
	b = appendI64(b, int64(tm.Bind))
	b = appendI64(b, int64(tm.Elaborate))
	b = appendI64(b, int64(tm.Place))
	b = appendI64(b, int64(tm.Route))
	b = appendI64(b, int64(tm.Timing))
	b = appendI64(b, int64(tm.Total))
	return b, nil
}

// encodableResult validates that every artifact the codec persists is
// present.
func encodableResult(res *flow.Result) error {
	switch {
	case res == nil:
		return fmt.Errorf("store: encode nil result")
	case res.Mod == nil, res.Config.Dev == nil, res.Placement == nil,
		res.Routing == nil, res.Routing.Map == nil, res.Timing == nil:
		return fmt.Errorf("store: result for %q is missing artifacts, not encodable", resultName(res))
	}
	return nil
}

func resultName(res *flow.Result) string {
	if res.Mod != nil {
		return res.Mod.Name
	}
	return "<nil>"
}

// EncodedResultSize returns the exact payload size EncodeResult will
// produce, without building it — the memory tier prices entries with this.
// Returns 0 for results EncodeResult would reject.
func EncodedResultSize(res *flow.Result) int {
	if encodableResult(res) != nil {
		return 0
	}
	var cw countWriter
	ir.WriteText(&cw, res.Mod)
	dev := res.Config.Dev
	n := 2 // payload kind + version
	n += 4 + cw.n
	// Config: device (name + 6 ints + 2 slices + 2 floats + 4 totals),
	// clock, seed, place, route, timing model, strict flag.
	n += stringSize(dev.Name) + 6*8 + (4 + 8*len(dev.DSPCols)) + (4 + 8*len(dev.BRAMCols)) + 2*8 + 4*8
	n += 2*8 + 8 + (8 + 8 + 8 + 8) + (8 + 8 + 8 + 8 + 8) + 6*8 + 1
	// Placement: positions, stats, region centers.
	pl := res.Placement
	n += 4 + 16*len(pl.Pos) + 2*8
	n += 4
	for f := range pl.RegionCenter {
		n += stringSize(f.Name) + 16
	}
	// Routing: grid dims + two flat grids + pins + overflow/iterations.
	rr := res.Routing
	n += 8 + 16*res.Config.Dev.Cols*res.Config.Dev.Rows
	n += 4 + 32*len(rr.Pins) + 2*8
	// Timing report, convergence, timings.
	n += 3*8 + 8
	n += 1 + 2*8
	n += 7 * 8
	return n
}

func appendConfig(b []byte, cfg flow.Config) []byte {
	dev := cfg.Dev
	b = appendString(b, dev.Name)
	b = appendI64(b, int64(dev.Cols))
	b = appendI64(b, int64(dev.Rows))
	b = appendInts(b, dev.DSPCols)
	b = appendInts(b, dev.BRAMCols)
	b = appendI64(b, int64(dev.TileLUT))
	b = appendI64(b, int64(dev.TileFF))
	b = appendI64(b, int64(dev.TileDSP))
	b = appendI64(b, int64(dev.TileBRAM))
	b = appendF64(b, dev.VCap)
	b = appendF64(b, dev.HCap)
	b = appendI64(b, int64(dev.Totals.LUT))
	b = appendI64(b, int64(dev.Totals.FF))
	b = appendI64(b, int64(dev.Totals.DSP))
	b = appendI64(b, int64(dev.Totals.BRAM))
	b = appendF64(b, cfg.Clock.PeriodNS)
	b = appendF64(b, cfg.Clock.UncertaintyNS)
	b = appendI64(b, cfg.Seed)
	b = appendI64(b, int64(cfg.Place.Moves))
	b = appendF64(b, cfg.Place.DensityWeight)
	b = appendF64(b, cfg.Place.ClusterWeight)
	b = appendI64(b, int64(cfg.Place.BinSize))
	b = appendI64(b, int64(cfg.Route.Iterations))
	b = appendF64(b, cfg.Route.HistoryGain)
	b = appendF64(b, cfg.Route.OverflowPenalty)
	b = appendF64(b, cfg.Route.MazeThreshold)
	b = appendI64(b, int64(cfg.Route.MazeSlack))
	md := cfg.Timing
	b = appendF64(b, md.BaseNS)
	b = appendF64(b, md.PerTileNS)
	b = appendF64(b, md.AvgKnee)
	b = appendF64(b, md.AvgSlope)
	b = appendF64(b, md.MaxSlope)
	b = appendF64(b, md.MaxOverNS)
	return appendBool(b, cfg.StrictConvergence)
}

func appendPlacement(b []byte, pl *place.Placement) []byte {
	b = appendU32(b, uint32(len(pl.Pos)))
	for _, p := range pl.Pos {
		b = appendI64(b, int64(p.X))
		b = appendI64(b, int64(p.Y))
	}
	b = appendI64(b, int64(pl.Stats.Moves))
	b = appendI64(b, int64(pl.Stats.Accepted))
	// Region centers keyed by function name, sorted for a canonical
	// encoding (same placement → same bytes).
	names := make([]string, 0, len(pl.RegionCenter))
	byName := make(map[string]fpga.XY, len(pl.RegionCenter))
	for f, xy := range pl.RegionCenter {
		names = append(names, f.Name)
		byName[f.Name] = xy
	}
	sort.Strings(names)
	b = appendU32(b, uint32(len(names)))
	for _, name := range names {
		b = appendString(b, name)
		b = appendI64(b, int64(byName[name].X))
		b = appendI64(b, int64(byName[name].Y))
	}
	return b
}

func appendRouting(b []byte, rr *route.Result) []byte {
	cols, rows := len(rr.Map.V), 0
	if cols > 0 {
		rows = len(rr.Map.V[0])
	}
	b = appendU32(b, uint32(cols))
	b = appendU32(b, uint32(rows))
	for x := 0; x < cols; x++ {
		for y := 0; y < rows; y++ {
			b = appendF64(b, rr.Map.V[x][y])
		}
	}
	for x := 0; x < cols; x++ {
		for y := 0; y < rows; y++ {
			b = appendF64(b, rr.Map.H[x][y])
		}
	}
	b = appendU32(b, uint32(len(rr.Pins)))
	for _, p := range rr.Pins {
		b = appendU32(b, uint32(p.Net.ID))
		b = appendU32(b, uint32(sinkIndex(p.Net, p.Sink)))
		b = appendI64(b, int64(p.Length))
		b = appendF64(b, p.AvgUtil)
		b = appendF64(b, p.MaxUtil)
	}
	b = appendI64(b, int64(rr.Overflow))
	return appendI64(b, int64(rr.Iterations))
}

// sinkIndex locates a pin's sink within its net (sinks are small slices,
// so a linear scan is fine).
func sinkIndex(n *rtl.Net, s rtl.Sink) int {
	for i, cand := range n.Sinks {
		if cand == s {
			return i
		}
	}
	return -1
}

// DecodeResult reconstructs a flow result from an encoded payload: it
// parses the module text, replays the deterministic front half of the flow
// (schedule, bind, elaborate) and resolves the stored back half against
// the re-derived netlist. Arbitrary input returns an error — never a panic
// (parse/schedule invariant panics are recovered) and never an unvalidated
// artifact (every index is bounds-checked; semantic verification is the
// caller's VerifyResultKey).
func DecodeResult(payload []byte) (res *flow.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("store: decode result: invalid payload: %v", r)
		}
	}()
	r := newReader(payload)
	if k := r.u8("payload kind"); r.err == nil && k != payloadResult {
		return nil, fmt.Errorf("store: payload kind %q is not a flow result", k)
	}
	if v := r.u8("payload version"); r.err == nil && v != resultVersion {
		return nil, fmt.Errorf("store: unsupported result version %d", v)
	}
	modText := r.str("module text")
	cfg := readConfig(r)
	if r.err != nil {
		return nil, r.err
	}
	m, err := ir.ParseText(strings.NewReader(modText))
	if err != nil {
		return nil, fmt.Errorf("store: decode module: %w", err)
	}
	sched, err := hls.ScheduleModule(m, cfg.Clock)
	if err != nil {
		return nil, fmt.Errorf("store: decode: reschedule: %w", err)
	}
	bind := hls.BindModule(sched)
	nl := rtl.Elaborate(bind)

	pl, err := readPlacement(r, cfg.Dev, nl, m)
	if err != nil {
		return nil, err
	}
	rr, err := readRouting(r, cfg.Dev, nl)
	if err != nil {
		return nil, err
	}
	rep := &timing.Report{
		CriticalNS:    r.f64("critical"),
		WNS:           r.f64("wns"),
		FmaxMHz:       r.f64("fmax"),
		LatencyCycles: r.i64("latency"),
	}
	conv := flow.Convergence{
		Converged:     r.bool("converged"),
		OverusedEdges: int(r.i64("overused")),
		Iterations:    int(r.i64("conv iterations")),
	}
	var tm flow.Timings
	for _, p := range []*int64{
		(*int64)(&tm.Schedule), (*int64)(&tm.Bind), (*int64)(&tm.Elaborate),
		(*int64)(&tm.Place), (*int64)(&tm.Route), (*int64)(&tm.Timing), (*int64)(&tm.Total),
	} {
		*p = r.i64("timings")
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("store: decode result: %d trailing bytes", r.remaining())
	}
	return &flow.Result{
		Mod: m, Config: cfg, Sched: sched, Bind: bind, Netlist: nl,
		Placement: pl, Routing: rr, Timing: rep, Convergence: conv, Timings: tm,
	}, nil
}

func readConfig(r *reader) flow.Config {
	dev := &fpga.Device{
		Name:     r.str("dev name"),
		Cols:     int(r.i64("dev cols")),
		Rows:     int(r.i64("dev rows")),
		DSPCols:  r.ints("dsp cols"),
		BRAMCols: r.ints("bram cols"),
		TileLUT:  int(r.i64("tile lut")),
		TileFF:   int(r.i64("tile ff")),
		TileDSP:  int(r.i64("tile dsp")),
		TileBRAM: int(r.i64("tile bram")),
		VCap:     r.f64("vcap"),
		HCap:     r.f64("hcap"),
		Totals: hls.Resources{
			LUT: int(r.i64("total lut")), FF: int(r.i64("total ff")),
			DSP: int(r.i64("total dsp")), BRAM: int(r.i64("total bram")),
		},
	}
	return flow.Config{
		Dev:   dev,
		Clock: hls.Clock{PeriodNS: r.f64("period"), UncertaintyNS: r.f64("uncertainty")},
		Seed:  r.i64("seed"),
		Place: place.Options{
			Moves:         int(r.i64("moves")),
			DensityWeight: r.f64("density weight"),
			ClusterWeight: r.f64("cluster weight"),
			BinSize:       int(r.i64("bin size")),
		},
		Route: route.Options{
			Iterations:      int(r.i64("route iterations")),
			HistoryGain:     r.f64("history gain"),
			OverflowPenalty: r.f64("overflow penalty"),
			MazeThreshold:   r.f64("maze threshold"),
			MazeSlack:       int(r.i64("maze slack")),
		},
		Timing: timing.Model{
			BaseNS: r.f64("base ns"), PerTileNS: r.f64("per tile ns"),
			AvgKnee: r.f64("avg knee"), AvgSlope: r.f64("avg slope"),
			MaxSlope: r.f64("max slope"), MaxOverNS: r.f64("max over ns"),
		},
		StrictConvergence: r.bool("strict"),
	}
}

func readPlacement(r *reader, dev *fpga.Device, nl *rtl.Netlist, m *ir.Module) (*place.Placement, error) {
	n := r.count(16, "positions")
	if r.err != nil {
		return nil, r.err
	}
	if n != len(nl.Cells) {
		return nil, fmt.Errorf("store: decode: %d positions for %d cells", n, len(nl.Cells))
	}
	pos := make([]fpga.XY, n)
	for i := range pos {
		pos[i] = fpga.XY{X: int(r.i64("pos x")), Y: int(r.i64("pos y"))}
		if r.err == nil && (pos[i].X < 0 || pos[i].X >= dev.Cols || pos[i].Y < 0 || pos[i].Y >= dev.Rows) {
			return nil, fmt.Errorf("store: decode: cell %d placed off-device at %v", i, pos[i])
		}
	}
	stats := place.PlaceStats{Moves: int(r.i64("place moves")), Accepted: int(r.i64("place accepted"))}
	funcs := make(map[string]*ir.Function, len(m.Funcs))
	for _, f := range m.Funcs {
		funcs[f.Name] = f
	}
	nc := r.count(4, "region centers")
	if r.err != nil {
		return nil, r.err
	}
	centers := make(map[*ir.Function]fpga.XY, nc)
	for i := 0; i < nc; i++ {
		name := r.str("region name")
		xy := fpga.XY{X: int(r.i64("region x")), Y: int(r.i64("region y"))}
		if r.err != nil {
			return nil, r.err
		}
		f := funcs[name]
		if f == nil {
			return nil, fmt.Errorf("store: decode: region center for unknown function %q", name)
		}
		centers[f] = xy
	}
	if r.err != nil {
		return nil, r.err
	}
	return &place.Placement{Dev: dev, NL: nl, Pos: pos, RegionCenter: centers, Stats: stats}, nil
}

func readRouting(r *reader, dev *fpga.Device, nl *rtl.Netlist) (*route.Result, error) {
	cols := int(r.u32("grid cols"))
	rows := int(r.u32("grid rows"))
	if r.err != nil {
		return nil, r.err
	}
	if cols != dev.Cols || rows != dev.Rows {
		return nil, fmt.Errorf("store: decode: %dx%d grid for a %dx%d device", cols, rows, dev.Cols, dev.Rows)
	}
	if r.remaining() < 16*cols*rows {
		return nil, fmt.Errorf("store: decode: truncated congestion grids")
	}
	cm := &congestion.Map{Dev: dev, V: make([][]float64, cols), H: make([][]float64, cols)}
	for _, grid := range []*[][]float64{&cm.V, &cm.H} {
		flat := make([]float64, cols*rows)
		for i := range flat {
			flat[i] = r.f64("grid")
		}
		for x := 0; x < cols; x++ {
			(*grid)[x] = flat[x*rows : (x+1)*rows : (x+1)*rows]
		}
	}
	np := r.count(32, "pins")
	if r.err != nil {
		return nil, r.err
	}
	pins := make([]route.PinStats, np)
	for i := range pins {
		netID := int(r.u32("pin net"))
		sinkIdx := int(r.u32("pin sink"))
		length := int(r.i64("pin length"))
		avg := r.f64("pin avg util")
		max := r.f64("pin max util")
		if r.err != nil {
			return nil, r.err
		}
		if netID < 0 || netID >= len(nl.Nets) {
			return nil, fmt.Errorf("store: decode: pin references net %d of %d", netID, len(nl.Nets))
		}
		net := nl.Nets[netID]
		if sinkIdx < 0 || sinkIdx >= len(net.Sinks) {
			return nil, fmt.Errorf("store: decode: pin references sink %d of %d on net %d",
				sinkIdx, len(net.Sinks), netID)
		}
		pins[i] = route.PinStats{Net: net, Sink: net.Sinks[sinkIdx], Length: length, AvgUtil: avg, MaxUtil: max}
	}
	rr := &route.Result{Map: cm, Pins: pins,
		Overflow: int(r.i64("overflow")), Iterations: int(r.i64("route iters"))}
	if r.err != nil {
		return nil, r.err
	}
	return rr, nil
}

// VerifyResultKey checks that a decoded result is exactly the artifact the
// key content-addresses: it recomputes flow.CacheKey over the decoded
// module and config and compares. Combined with the entry digest this is
// the store's end-to-end guarantee — a Get can miss, but it cannot lie.
func VerifyResultKey(res *flow.Result, key string) error {
	if res == nil || res.Mod == nil || res.Config.Dev == nil {
		return fmt.Errorf("store: verify: incomplete result")
	}
	if got := flow.CacheKey(res.Mod, res.Config); got != key {
		return fmt.Errorf("store: decoded result hashes to %.8s..., want %.8s...", got, key)
	}
	return nil
}
