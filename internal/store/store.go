// Package store is the crash-safe persistent artifact tier of the
// reproduction: a disk-backed, content-addressed store keyed by the same
// sha256 keys the in-memory flow cache uses (flow.CacheKey), plus codecs
// for the two artifact kinds that live in it — completed flow results
// (codec.go) and columnar datasets / per-module build checkpoints
// (dataset.go).
//
// Robustness is by construction, not by recovery tooling:
//
//   - Writes are atomic: payload → temp file in the target directory →
//     fsync → rename → directory fsync. A crash at any point leaves either
//     the complete previous state or a stray temp file the next Open
//     removes; a torn entry can never sit under a valid name with a valid
//     header.
//   - Reads verify: every Get re-hashes the payload against the entry's
//     embedded sha256 digest and checks the embedded key against the
//     requested one. A corrupt entry is quarantined (moved aside, never
//     deleted — the evidence survives for diagnosis) and reported as a
//     miss, so the caller recomputes; a wrong artifact is never returned.
//   - Open scans the store: stray temp files are removed, entries whose
//     header or size is inconsistent (torn writes) are quarantined, and
//     the byte budget is enforced — the store always starts consistent.
//   - Eviction is mtime-LRU under a configurable byte budget: Get touches
//     an entry's mtime, Put evicts oldest-touched entries until the new
//     entry fits. Invalidation stays by-construction: keys are content
//     hashes of everything that influences the artifact, so entries are
//     immutable and simply age out.
//
// Every failure path degrades to "not stored / not found": callers treat
// the disk tier as best-effort and fall back to recomputing, which the
// flow cache's memory tier already knows how to do.
package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
)

// ErrNotFound reports a key with no (valid) entry on disk. Quarantined and
// evicted entries surface as ErrNotFound too: the caller's move is always
// the same — recompute.
var ErrNotFound = fmt.Errorf("store: artifact not found")

// Options tunes a Store.
type Options struct {
	// MaxBytes bounds the total payload-file bytes kept on disk; 0 means
	// unbounded. Eviction is mtime-LRU: least recently touched entries go
	// first.
	MaxBytes int64
	// EvictGrace exempts entries touched within this window from
	// eviction, so a concurrent reader in another process (a fleet worker
	// sharing the store directory) never has a just-written or
	// just-touched entry yanked out from under it. The budget may
	// overshoot while every entry is inside the grace window; it is
	// re-enforced as entries age. 0 disables the exemption.
	EvictGrace time.Duration
	// Faults optionally injects deterministic disk faults into the write
	// path (tests, chaos runs). Nil disables injection.
	Faults *faults.DiskScript
	// PutHook, when set, runs after every successful Put with the number
	// of Puts completed so far. The crash-recovery harness uses it to
	// SIGKILL the process at a deterministic point mid-build.
	PutHook func(puts int)
}

// Stats is a snapshot of the store's effectiveness counters, captured
// under one lock acquisition so the fields are mutually consistent.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Puts      uint64
	Corrupt   uint64 // entries quarantined (scan + read-side verification)
	Evictions uint64 // entries evicted by the byte budget
	// EvictedBytes totals the file sizes the byte budget reclaimed.
	EvictedBytes uint64
	// PutErrors counts Puts that failed (I/O errors, injected faults) and
	// degraded to not-stored.
	PutErrors uint64
	Entries   int
	// Bytes is the current on-disk footprint of valid entries.
	Bytes int64
}

// String renders the snapshot as one log-friendly line.
func (s Stats) String() string {
	return fmt.Sprintf("store: %d hits, %d misses, %d puts (%d failed), %d corrupt quarantined, %d evictions (%d bytes), %d entries (%d bytes)",
		s.Hits, s.Misses, s.Puts, s.PutErrors, s.Corrupt, s.Evictions, s.EvictedBytes, s.Entries, s.Bytes)
}

// Store is a disk-backed content-addressed artifact store. Safe for
// concurrent use; one mutex guards the index and the I/O (the disk tier
// backs a memory cache, so contention here is the slow path by design).
type Store struct {
	dir  string
	opts Options

	mu      sync.Mutex
	sizes   map[string]int64 // key → entry file size
	bytes   int64
	seq     int // quarantine name disambiguator
	hits    uint64
	misses  uint64
	puts    uint64
	corrupt uint64
	evicts  uint64
	evBytes uint64
	putErrs uint64

	obsHits, obsMisses, obsCorrupt, obsEvicts *obs.Counter
	obsrv                                     *obs.Observer
}

const (
	objectsDir    = "objects"
	quarantineDir = "quarantine"
	entryExt      = ".art"
	tmpPrefix     = ".tmp-"
	// maxHeaderRead bounds the startup scan's per-file header read.
	maxHeaderRead = 256
)

// Open creates (if needed) and scans a store rooted at dir. Stray temp
// files from interrupted writes are removed; entries with inconsistent
// headers or sizes (torn writes) are quarantined; the byte budget is
// enforced. Open never fails because of a bad entry — only because the
// directory itself is unusable.
func Open(dir string, opts Options) (*Store, error) {
	s := &Store{dir: dir, opts: opts, sizes: make(map[string]int64)}
	for _, d := range []string{dir, filepath.Join(dir, objectsDir), filepath.Join(dir, quarantineDir)} {
		if err := os.MkdirAll(d, 0o777); err != nil {
			return nil, fmt.Errorf("store: open %s: %w", dir, err)
		}
	}
	if err := s.scan(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.enforceBudget(0)
	s.mu.Unlock()
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// SetObserver mirrors the store's hit/miss/corrupt/eviction counters into
// o's metrics registry (obs.MetricStoreHits and friends) and logs
// quarantines. A nil observer detaches. Nil-safe on a nil store.
func (s *Store) SetObserver(o *obs.Observer) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.obsrv = o
	s.obsHits = o.Metrics().Counter(obs.MetricStoreHits)
	s.obsMisses = o.Metrics().Counter(obs.MetricStoreMisses)
	s.obsCorrupt = o.Metrics().Counter(obs.MetricStoreCorrupt)
	s.obsEvicts = o.Metrics().Counter(obs.MetricStoreEvictions)
}

// keyPath maps a key to its entry path, sharded by the first two hex
// digits so no directory grows unboundedly.
func (s *Store) keyPath(key string) string {
	return filepath.Join(s.dir, objectsDir, key[:2], key+entryExt)
}

// validKey accepts exactly the keys the flow produces: lowercase hex
// sha256. Rejecting everything else keeps keys path-safe by construction.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Get returns the payload stored under key. The entry's embedded key and
// payload digest are verified; a corrupt entry is quarantined and reported
// as ErrNotFound. Reading touches the entry's mtime (the LRU clock).
func (s *Store) Get(key string) ([]byte, error) {
	if s == nil {
		return nil, ErrNotFound
	}
	if !validKey(key) {
		return nil, fmt.Errorf("store: invalid key %q", key)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	path := s.keyPath(key)
	data, err := os.ReadFile(path)
	if err == nil {
		switch s.opts.Faults.Next(faults.DiskOpRead) {
		case faults.DiskReadError:
			err = faults.ErrReadFault
		case faults.DiskBitFlip:
			// Corrupt the in-memory copy only: models a read returning
			// flipped bits off dying media. The digest check below catches
			// it and the (actually fine) on-disk entry is quarantined —
			// exactly what a store facing a lying disk should do.
			data = append([]byte(nil), data...)
			if n := len(data); n > 0 {
				data[n-1] ^= 0x01
			}
		}
	}
	if err != nil {
		if os.IsNotExist(err) {
			// Another process sharing this directory evicted the entry:
			// drop the phantom index row so Entries/Bytes track reality
			// and the budget math stays honest.
			if size, ok := s.sizes[key]; ok {
				s.bytes -= size
				delete(s.sizes, key)
			}
		}
		s.misses++
		s.obsMisses.Add(1)
		return nil, ErrNotFound
	}
	gotKey, payload, derr := decodeEntry(data)
	if derr == nil && gotKey != key {
		derr = fmt.Errorf("store: entry carries key %q, want %q", gotKey, key)
	}
	if derr != nil {
		s.quarantineLocked(path, key, derr)
		s.misses++
		s.obsMisses.Add(1)
		return nil, ErrNotFound
	}
	s.hits++
	s.obsHits.Add(1)
	now := time.Now()
	os.Chtimes(path, now, now) // best-effort LRU touch
	return payload, nil
}

// Put stores payload under key with the atomic-write protocol. Errors
// (including injected faults) leave no partial entry behind and are
// reported to the caller, who treats the store as best-effort.
func (s *Store) Put(key string, payload []byte) error {
	if s == nil {
		return fmt.Errorf("store: nil store")
	}
	if !validKey(key) {
		return fmt.Errorf("store: invalid key %q", key)
	}
	data := encodeEntry(key, payload)
	s.mu.Lock()
	err := s.putLocked(key, data)
	var hook func(puts int)
	var puts int
	if err != nil {
		s.putErrs++
		if l := s.obsrv.Logger(); l != nil {
			l.Warn("store put failed, degrading to not-stored", "key", key[:8], "error", err)
		}
	} else {
		s.puts++
		puts = int(s.puts)
		hook = s.opts.PutHook
	}
	s.mu.Unlock()
	if hook != nil {
		hook(puts)
	}
	return err
}

// putLocked writes one encoded entry atomically and enforces the budget.
func (s *Store) putLocked(key string, data []byte) error {
	shard := filepath.Join(s.dir, objectsDir, key[:2])
	if err := os.MkdirAll(shard, 0o777); err != nil {
		return fmt.Errorf("store: put %s: %w", key[:8], err)
	}
	// Make room first so the budget holds even while the new entry lands.
	if old, ok := s.sizes[key]; ok {
		s.bytes -= old
		delete(s.sizes, key)
	}
	s.enforceBudget(int64(len(data)))

	f, err := os.CreateTemp(shard, tmpPrefix+"*")
	if err != nil {
		return fmt.Errorf("store: put %s: %w", key[:8], err)
	}
	tmp := f.Name()
	werr := s.faultedWrite(f, data)
	if serr := f.Sync(); werr == nil {
		werr = serr
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil && s.opts.Faults.Next(faults.DiskOpRename) == faults.DiskRenameFail {
		werr = fmt.Errorf("store: injected rename failure")
	}
	if werr == nil {
		werr = os.Rename(tmp, s.keyPath(key))
	}
	if werr != nil {
		os.Remove(tmp)
		return werr
	}
	syncDir(shard)
	s.sizes[key] = int64(len(data))
	s.bytes += int64(len(data))
	return nil
}

// faultedWrite writes data through the fault injector: a torn write lands
// a truncated prefix (and still reports success, like a crash after a
// buffered write), a bit flip corrupts one byte, ENOSPC fails cleanly.
func (s *Store) faultedWrite(w io.Writer, data []byte) error {
	switch s.opts.Faults.Next(faults.DiskOpWrite) {
	case faults.DiskTornWrite:
		_, err := w.Write(data[:len(data)/2])
		return err
	case faults.DiskBitFlip:
		flipped := make([]byte, len(data))
		copy(flipped, data)
		if n := len(flipped); n > 0 {
			flipped[n-1] ^= 0x01 // last byte: payload, not header
		}
		_, err := w.Write(flipped)
		return err
	case faults.DiskNoSpace:
		return faults.ErrNoSpace
	}
	_, err := w.Write(data)
	return err
}

// enforceBudget evicts oldest-mtime entries until incoming more bytes fit
// under MaxBytes. Called with mu held.
//
// Two guards protect concurrent readers in other processes sharing the
// directory (the fleet's shared-store deployment):
//
//   - Entries touched within Options.EvictGrace are exempt, so an entry a
//     sibling just Got (its Get touches the mtime) or just Put cannot
//     disappear between the sibling's index lookup and its read.
//   - Eviction is rename-aside, not unlink-in-place: the entry first moves
//     to a temp-prefixed name (atomic, same directory), then the temp file
//     is removed. A reader that raced the eviction sees either the complete
//     entry or a clean ENOENT miss — never a partially removed one — and
//     any crash mid-eviction leaves only a temp file the next Open sweeps.
func (s *Store) enforceBudget(incoming int64) {
	if s.opts.MaxBytes <= 0 || s.bytes+incoming <= s.opts.MaxBytes {
		return
	}
	graceFloor := int64(0)
	if s.opts.EvictGrace > 0 {
		graceFloor = time.Now().Add(-s.opts.EvictGrace).UnixNano()
	}
	type aged struct {
		key   string
		size  int64
		mtime int64
	}
	entries := make([]aged, 0, len(s.sizes))
	for key, size := range s.sizes {
		var mt int64
		if fi, err := os.Stat(s.keyPath(key)); err == nil {
			mt = fi.ModTime().UnixNano()
		}
		if mt >= graceFloor && graceFloor > 0 {
			continue // recently touched: a sibling process may be mid-read
		}
		entries = append(entries, aged{key, size, mt})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].mtime != entries[j].mtime {
			return entries[i].mtime < entries[j].mtime
		}
		return entries[i].key < entries[j].key // deterministic tie-break
	})
	for _, e := range entries {
		if s.bytes+incoming <= s.opts.MaxBytes {
			break
		}
		path := s.keyPath(e.key)
		aside := filepath.Join(filepath.Dir(path), tmpPrefix+"evict-"+filepath.Base(path))
		if os.Rename(path, aside) == nil {
			os.Remove(aside)
		} else {
			os.Remove(path) // rename failed (e.g. already gone): best effort
		}
		delete(s.sizes, e.key)
		s.bytes -= e.size
		s.evicts++
		s.evBytes += uint64(e.size)
		s.obsEvicts.Add(1)
		if l := s.obsrv.Logger(); l != nil {
			l.Debug("store evicted LRU entry", "key", e.key[:8], "bytes", e.size)
		}
	}
}

// quarantineLocked moves a corrupt file into quarantine/ under a unique
// name and counts it. The original bytes are preserved for diagnosis.
func (s *Store) quarantineLocked(path, key string, cause error) {
	s.seq++
	dst := filepath.Join(s.dir, quarantineDir, fmt.Sprintf("%s.%d", filepath.Base(path), s.seq))
	if err := os.Rename(path, dst); err != nil {
		os.Remove(path) // refuse to serve it even if the move failed
	}
	if size, ok := s.sizes[key]; ok {
		s.bytes -= size
		delete(s.sizes, key)
	}
	s.corrupt++
	s.obsCorrupt.Add(1)
	if l := s.obsrv.Logger(); l != nil {
		l.Warn("store quarantined corrupt entry", "file", filepath.Base(path), "cause", cause)
	}
}

// scan walks objects/, removing stray temp files and quarantining entries
// whose header or size is inconsistent. Full digests are not hashed here —
// Get verifies them on first use — so startup stays O(entries), not
// O(bytes).
func (s *Store) scan() error {
	root := filepath.Join(s.dir, objectsDir)
	return filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		name := d.Name()
		if strings.HasPrefix(name, tmpPrefix) {
			os.Remove(path) // interrupted write; the rename never happened
			return nil
		}
		if !strings.HasSuffix(name, entryExt) {
			return nil // not ours; leave it alone
		}
		key := strings.TrimSuffix(name, entryExt)
		fi, statErr := d.Info()
		if statErr != nil {
			return nil
		}
		verr := func() error {
			if !validKey(key) {
				return fmt.Errorf("store: entry filename %q is not a valid key", name)
			}
			f, err := os.Open(path)
			if err != nil {
				return err
			}
			defer f.Close()
			header := make([]byte, maxHeaderRead)
			n, _ := io.ReadFull(f, header)
			return checkEntryHeader(header[:n], fi.Size(), key)
		}()
		s.mu.Lock()
		if verr != nil {
			s.quarantineLocked(path, key, verr)
		} else {
			s.sizes[key] = fi.Size()
			s.bytes += fi.Size()
		}
		s.mu.Unlock()
		return nil
	})
}

// VerifyAll re-reads and fully verifies every entry (header, key, payload
// digest), quarantining failures. It returns how many entries verified
// clean and how many were quarantined — the cmd/storecheck operation.
func (s *Store) VerifyAll() (ok, quarantined int) {
	s.mu.Lock()
	keys := make([]string, 0, len(s.sizes))
	for key := range s.sizes {
		keys = append(keys, key)
	}
	s.mu.Unlock()
	sort.Strings(keys)
	for _, key := range keys {
		s.mu.Lock()
		path := s.keyPath(key)
		data, err := os.ReadFile(path)
		if err == nil {
			var gotKey string
			gotKey, _, err = decodeEntry(data)
			if err == nil && gotKey != key {
				err = fmt.Errorf("store: entry carries key %q, want %q", gotKey, key)
			}
		}
		if err != nil {
			s.quarantineLocked(path, key, err)
			quarantined++
		} else {
			ok++
		}
		s.mu.Unlock()
	}
	return ok, quarantined
}

// Len returns the number of valid entries currently indexed.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sizes)
}

// Bytes returns the current on-disk footprint of valid entries.
func (s *Store) Bytes() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Stats returns a consistent snapshot of the counters.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Hits: s.hits, Misses: s.misses, Puts: s.puts, Corrupt: s.corrupt,
		Evictions: s.evicts, EvictedBytes: s.evBytes, PutErrors: s.putErrs,
		Entries: len(s.sizes), Bytes: s.bytes,
	}
}

// Corrupt quarantines the entry under key (if present) and counts it.
// The flow-cache tier calls this when an entry decodes cleanly at the
// container level but fails semantic verification (recomputed cache key
// mismatch) — the "never a wrong artifact" backstop.
func (s *Store) Corrupt(key string, cause error) {
	if s == nil || !validKey(key) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	path := s.keyPath(key)
	if _, err := os.Stat(path); err != nil {
		return
	}
	s.quarantineLocked(path, key, cause)
}

// syncDir fsyncs a directory so a just-renamed entry survives power loss.
// Best-effort: some filesystems reject directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
