package store

import (
	"crypto/sha256"
	"crypto/subtle"
	"fmt"
)

// On-disk entry container. Every artifact file is:
//
//	magic   [4]byte  "CGS1"
//	version u8       entryVersion
//	keyLen  u16      length of the content-address key (hex sha256 = 64)
//	key     [keyLen]byte
//	payLen  u64      payload length in bytes
//	digest  [32]byte sha256 of the payload
//	payload [payLen]byte
//
// The header carries everything needed to detect a torn write without
// hashing (declared sizes vs file size) and everything needed to detect a
// bit flip with one hash (the digest). The key is stored redundantly with
// the filename so a renamed or cross-linked file can never serve the wrong
// artifact.

const (
	entryMagic   = "CGS1"
	entryVersion = 1
	// entryHeaderSize is the fixed part before the payload: magic(4) +
	// version(1) + keyLen(2) + payLen(8) + digest(32).
	entryHeaderSize = 4 + 1 + 2 + 8 + 32
)

// encodeEntry wraps a payload in the container format.
func encodeEntry(key string, payload []byte) []byte {
	b := make([]byte, 0, entryHeaderSize+len(key)+len(payload))
	b = append(b, entryMagic...)
	b = appendU8(b, entryVersion)
	b = append(b, byte(len(key)), byte(len(key)>>8))
	b = append(b, key...)
	b = appendI64(b, int64(len(payload)))
	sum := sha256.Sum256(payload)
	b = append(b, sum[:]...)
	return append(b, payload...)
}

// entrySize returns the encoded container size for a payload of n bytes
// under the given key.
func entrySize(key string, n int) int { return entryHeaderSize + len(key) + n }

// decodeEntry validates the container (magic, version, declared sizes,
// payload digest) and returns the embedded key and payload. The returned
// payload aliases data. Arbitrary input never panics: every length is
// bounds-checked before use (FuzzStoreDecode pins this).
func decodeEntry(data []byte) (key string, payload []byte, err error) {
	r := newReader(data)
	if string(r.take(4, "magic")) != entryMagic {
		return "", nil, fmt.Errorf("store: bad entry magic")
	}
	if v := r.u8("version"); r.err == nil && v != entryVersion {
		return "", nil, fmt.Errorf("store: unsupported entry version %d", v)
	}
	kb := r.take(2, "key length")
	var keyLen int
	if kb != nil {
		keyLen = int(kb[0]) | int(kb[1])<<8
	}
	key = string(r.take(keyLen, "key"))
	payLen := r.i64("payload length")
	if r.err != nil {
		return "", nil, r.err
	}
	if payLen < 0 || payLen != int64(r.remaining()-sha256.Size) {
		return "", nil, fmt.Errorf("store: entry declares %d payload bytes, file carries %d",
			payLen, r.remaining()-sha256.Size)
	}
	digest := r.take(sha256.Size, "digest")
	payload = r.take(int(payLen), "payload")
	if r.err != nil {
		return "", nil, r.err
	}
	sum := sha256.Sum256(payload)
	if subtle.ConstantTimeCompare(sum[:], digest) != 1 {
		return "", nil, fmt.Errorf("store: entry payload digest mismatch")
	}
	return key, payload, nil
}

// checkEntryHeader is the startup scan's cheap validation: it verifies
// magic, version, key and the declared payload length against the file
// size without hashing the payload. fileSize is the whole file's length;
// wantKey the key the filename claims.
func checkEntryHeader(header []byte, fileSize int64, wantKey string) error {
	r := newReader(header)
	if string(r.take(4, "magic")) != entryMagic {
		return fmt.Errorf("store: bad entry magic")
	}
	if v := r.u8("version"); r.err == nil && v != entryVersion {
		return fmt.Errorf("store: unsupported entry version %d", v)
	}
	kb := r.take(2, "key length")
	var keyLen int
	if kb != nil {
		keyLen = int(kb[0]) | int(kb[1])<<8
	}
	key := string(r.take(keyLen, "key"))
	payLen := r.i64("payload length")
	if r.err != nil {
		return r.err
	}
	if key != wantKey {
		return fmt.Errorf("store: entry key %q does not match filename key %q", key, wantKey)
	}
	if want := int64(entrySize(wantKey, int(payLen))); payLen < 0 || want != fileSize {
		return fmt.Errorf("store: entry declares %d bytes, file is %d (torn write?)", want, fileSize)
	}
	return nil
}
