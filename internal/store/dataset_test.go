package store

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/flow"
	"repro/internal/ir"
)

// testDataset builds a small dataset with the real feature layout, repeated
// strings (to exercise interning) and distinct per-sample values.
func testDataset() *dataset.Dataset {
	ds := dataset.New()
	cols := len(ds.FeatureNames)
	for i := 0; i < 5; i++ {
		feat := make([]float64, cols)
		for j := range feat {
			feat[j] = float64(i*cols + j)
		}
		ds.Samples = append(ds.Samples, &dataset.Sample{
			Design:      []string{"alpha", "beta"}[i%2],
			OpID:        100 + i,
			Kind:        ir.KindMul,
			Src:         ir.SourceLoc{File: []string{"a.cpp", "b.cpp"}[i%2], Line: 10 * i},
			Features:    feat,
			VertPct:     float64(i) * 1.5,
			HorizPct:    float64(i) * 2.5,
			AvgPct:      float64(i) * 2.0,
			Margin:      i%2 == 0,
			Replica:     i%3 == 0,
			ReplicaRoot: i - 1,
		})
	}
	return ds
}

func TestDatasetRoundtrip(t *testing.T) {
	ds := testDataset()
	enc := EncodeDataset(ds)
	dec, err := DecodeDataset(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec.FeatureNames, ds.FeatureNames) {
		t.Error("feature names differ after roundtrip")
	}
	if len(dec.Samples) != len(ds.Samples) {
		t.Fatalf("samples = %d, want %d", len(dec.Samples), len(ds.Samples))
	}
	for i := range ds.Samples {
		if !reflect.DeepEqual(*dec.Samples[i], *ds.Samples[i]) {
			t.Errorf("sample %d differs:\n got %+v\nwant %+v", i, *dec.Samples[i], *ds.Samples[i])
		}
	}
	// Canonical: decode → re-encode is byte-identical.
	if !bytes.Equal(enc, EncodeDataset(dec)) {
		t.Error("re-encode is not byte-identical")
	}
}

func TestDatasetFlatBacking(t *testing.T) {
	dec, err := DecodeDataset(EncodeDataset(testDataset()))
	if err != nil {
		t.Fatal(err)
	}
	cols := len(dec.FeatureNames)
	for i, s := range dec.Samples {
		if len(s.Features) != cols || cap(s.Features) != cols {
			t.Fatalf("sample %d features len/cap = %d/%d, want %d/%d (flat backing, full-capacity rows)",
				i, len(s.Features), cap(s.Features), cols, cols)
		}
	}
}

func TestDatasetEncodesRaggedRowsAsZeros(t *testing.T) {
	ds := testDataset()
	ds.Samples[2].Features = []float64{1} // violates the shared layout
	dec, err := DecodeDataset(EncodeDataset(ds))
	if err != nil {
		t.Fatal(err)
	}
	for j, v := range dec.Samples[2].Features {
		if v != 0 {
			t.Fatalf("ragged row col %d = %v, want 0", j, v)
		}
	}
	if len(dec.Samples[2].Features) != len(ds.FeatureNames) {
		t.Error("ragged row lost the shared layout")
	}
}

func TestDatasetDecodeRejectsBadInput(t *testing.T) {
	enc := EncodeDataset(testDataset())
	for _, n := range []int{0, 1, 2, 6, len(enc) / 2, len(enc) - 1} {
		if _, err := DecodeDataset(enc[:n]); err == nil {
			t.Errorf("DecodeDataset accepted a %d-byte prefix", n)
		}
	}
	kind := append([]byte(nil), enc...)
	kind[0] = 'Z'
	if _, err := DecodeDataset(kind); err == nil {
		t.Error("DecodeDataset accepted a wrong payload kind")
	}
	ver := append([]byte(nil), enc...)
	ver[1] = 99
	if _, err := DecodeDataset(ver); err == nil {
		t.Error("DecodeDataset accepted an unknown version")
	}
}

func TestEmptyDatasetRoundtrip(t *testing.T) {
	ds := dataset.New()
	dec, err := DecodeDataset(EncodeDataset(ds))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Samples) != 0 || !reflect.DeepEqual(dec.FeatureNames, ds.FeatureNames) {
		t.Errorf("empty roundtrip: %d samples, names equal=%v",
			len(dec.Samples), reflect.DeepEqual(dec.FeatureNames, ds.FeatureNames))
	}
}

func TestCheckpointRoundtrip(t *testing.T) {
	res := testResult(t)
	ds := testDataset()
	s := openStore(t, t.TempDir(), Options{})
	ck := NewCheckpoint(s)
	const runs = 2
	if err := ck.SaveModule(res.Mod, res.Config, runs, ds.FeatureNames, ds.Samples, res); err != nil {
		t.Fatal(err)
	}
	samples, first, ok := ck.LoadModule(res.Mod, res.Config, runs)
	if !ok {
		t.Fatal("LoadModule missed a just-saved block")
	}
	if len(samples) != len(ds.Samples) {
		t.Fatalf("restored %d samples, want %d", len(samples), len(ds.Samples))
	}
	for i := range samples {
		if !reflect.DeepEqual(*samples[i], *ds.Samples[i]) {
			t.Errorf("sample %d differs after checkpoint roundtrip", i)
		}
	}
	if err := VerifyResultKey(first, flow.CacheKey(res.Mod, res.Config)); err != nil {
		t.Errorf("restored run-0 result fails verification: %v", err)
	}
	// A different run count or config is a different block: clean miss.
	if _, _, ok := ck.LoadModule(res.Mod, res.Config, runs+1); ok {
		t.Error("LoadModule hit with a different label-run count")
	}
	other := res.Config
	other.Seed++
	if _, _, ok := ck.LoadModule(res.Mod, other, runs); ok {
		t.Error("LoadModule hit with a different config")
	}
}

func TestCheckpointCorruptBlockDegradesToMiss(t *testing.T) {
	res := testResult(t)
	s := openStore(t, t.TempDir(), Options{})
	ck := NewCheckpoint(s)
	key := ck.ModuleKey(res.Mod, res.Config, 2)
	// A validly stored entry whose payload is not a module block: the
	// container digest passes, the semantic decode must not.
	if err := s.Put(key, []byte("not a module block")); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := ck.LoadModule(res.Mod, res.Config, 2); ok {
		t.Fatal("LoadModule served a garbage block")
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Errorf("corrupt block not quarantined: %+v", st)
	}
}

func TestNilCheckpointDisabled(t *testing.T) {
	if NewCheckpoint(nil) != nil {
		t.Fatal("NewCheckpoint(nil) must disable checkpointing")
	}
	var ck *Checkpoint
	res := testResult(t)
	if _, _, ok := ck.LoadModule(res.Mod, res.Config, 2); ok {
		t.Error("nil checkpoint reported a hit")
	}
	if err := ck.SaveModule(res.Mod, res.Config, 2, nil, nil, res); err == nil {
		t.Error("nil checkpoint accepted a save")
	}
	if ck.Store() != nil {
		t.Error("nil checkpoint has a store")
	}
}

func TestModuleKeyIsValidStoreKey(t *testing.T) {
	res := testResult(t)
	s := openStore(t, t.TempDir(), Options{})
	key := NewCheckpoint(s).ModuleKey(res.Mod, res.Config, 3)
	if !validKey(key) {
		t.Errorf("ModuleKey %q is not a valid store key", key)
	}
}
