package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/flow"
	"repro/internal/ir"
)

// Columnar dataset payload codec.
//
// The layout is column-major: each field of the sample header is one
// contiguous array, and the feature matrix is a single flat rows×cols
// float64 block — exactly the backing-array layout ml.Matrix uses, so a
// restored dataset reconstructs the same full-capacity row-slice structure
// dataset.FromTrace builds and feeds the trainers without reshaping.
// Strings (design and source-file names) are interned in per-payload
// string tables; floats are stored as raw bits, so a decode is
// byte-exactly re-encodable — the property the crash-recovery check
// asserts with cmp.

const datasetVersion = 1

// EncodeDataset serializes a dataset in the columnar format. The encoding
// is canonical: the same dataset always yields the same bytes.
func EncodeDataset(ds *dataset.Dataset) []byte {
	n := len(ds.Samples)
	cols := len(ds.FeatureNames)
	designs, designIdx := internStrings(ds.Samples, func(s *dataset.Sample) string { return s.Design })
	files, fileIdx := internStrings(ds.Samples, func(s *dataset.Sample) string { return s.Src.File })

	b := make([]byte, 0, 64+n*(4+8+8+4+8+1+1+8+24)+8*n*cols)
	b = appendU8(b, payloadDataset)
	b = appendU8(b, datasetVersion)
	b = appendU32(b, uint32(cols))
	for _, name := range ds.FeatureNames {
		b = appendString(b, name)
	}
	b = appendU32(b, uint32(len(designs)))
	for _, d := range designs {
		b = appendString(b, d)
	}
	b = appendU32(b, uint32(len(files)))
	for _, f := range files {
		b = appendString(b, f)
	}
	b = appendU32(b, uint32(n))
	for i := range ds.Samples {
		b = appendU32(b, designIdx[i])
	}
	for _, s := range ds.Samples {
		b = appendI64(b, int64(s.OpID))
	}
	for _, s := range ds.Samples {
		b = appendI64(b, int64(s.Kind))
	}
	for i := range ds.Samples {
		b = appendU32(b, fileIdx[i])
	}
	for _, s := range ds.Samples {
		b = appendI64(b, int64(s.Src.Line))
	}
	for _, s := range ds.Samples {
		b = appendBool(b, s.Margin)
	}
	for _, s := range ds.Samples {
		b = appendBool(b, s.Replica)
	}
	for _, s := range ds.Samples {
		b = appendI64(b, int64(s.ReplicaRoot))
	}
	for _, s := range ds.Samples {
		b = appendF64(b, s.VertPct)
	}
	for _, s := range ds.Samples {
		b = appendF64(b, s.HorizPct)
	}
	for _, s := range ds.Samples {
		b = appendF64(b, s.AvgPct)
	}
	// The feature block: one flat rows×cols array, row-major.
	for _, s := range ds.Samples {
		if len(s.Features) != cols {
			// Canonical layout violated; encode zeros rather than shifting
			// every later row (decode still yields a structurally valid
			// dataset).
			for j := 0; j < cols; j++ {
				b = appendF64(b, 0)
			}
			continue
		}
		for _, v := range s.Features {
			b = appendF64(b, v)
		}
	}
	return b
}

// internStrings builds a first-appearance-ordered string table plus the
// per-sample index column.
func internStrings(samples []*dataset.Sample, get func(*dataset.Sample) string) ([]string, []uint32) {
	var table []string
	index := make(map[string]uint32)
	idx := make([]uint32, len(samples))
	for i, s := range samples {
		v := get(s)
		j, ok := index[v]
		if !ok {
			j = uint32(len(table))
			table = append(table, v)
			index[v] = j
		}
		idx[i] = j
	}
	return table, idx
}

// DecodeDataset reconstructs a dataset from a columnar payload. Arbitrary
// input returns an error, never a panic; all table indices and counts are
// bounds-checked before allocation.
func DecodeDataset(payload []byte) (ds *dataset.Dataset, err error) {
	defer func() {
		if r := recover(); r != nil {
			ds, err = nil, fmt.Errorf("store: decode dataset: invalid payload: %v", r)
		}
	}()
	r := newReader(payload)
	if k := r.u8("payload kind"); r.err == nil && k != payloadDataset {
		return nil, fmt.Errorf("store: payload kind %q is not a dataset", k)
	}
	if v := r.u8("dataset version"); r.err == nil && v != datasetVersion {
		return nil, fmt.Errorf("store: unsupported dataset version %d", v)
	}
	names := readStrings(r, "feature names")
	designs := readStrings(r, "design table")
	files := readStrings(r, "file table")
	n := r.count(1, "samples") // ≥ 1 byte per sample (the margin column)
	if r.err != nil {
		return nil, r.err
	}
	cols := len(names)
	designIdx := readU32s(r, n, "design idx")
	opIDs := readI64s(r, n, "op ids")
	kinds := readI64s(r, n, "kinds")
	fileIdx := readU32s(r, n, "file idx")
	lines := readI64s(r, n, "src lines")
	margins := readBools(r, n, "margins")
	replicas := readBools(r, n, "replicas")
	roots := readI64s(r, n, "replica roots")
	verts := readF64s(r, n, "vert labels")
	horizs := readF64s(r, n, "horiz labels")
	avgs := readF64s(r, n, "avg labels")
	if r.err != nil {
		return nil, r.err
	}
	if r.remaining() != 8*n*cols {
		return nil, fmt.Errorf("store: decode dataset: feature block is %d bytes, want %d",
			r.remaining(), 8*n*cols)
	}
	flat := make([]float64, n*cols)
	for i := range flat {
		flat[i] = r.f64("features")
	}
	if r.err != nil {
		return nil, r.err
	}
	ds = &dataset.Dataset{FeatureNames: names, Samples: make([]*dataset.Sample, n)}
	for i := 0; i < n; i++ {
		if int(designIdx[i]) >= len(designs) {
			return nil, fmt.Errorf("store: decode dataset: sample %d design index %d of %d",
				i, designIdx[i], len(designs))
		}
		if int(fileIdx[i]) >= len(files) {
			return nil, fmt.Errorf("store: decode dataset: sample %d file index %d of %d",
				i, fileIdx[i], len(files))
		}
		ds.Samples[i] = &dataset.Sample{
			Design:      designs[designIdx[i]],
			OpID:        int(opIDs[i]),
			Kind:        ir.OpKind(kinds[i]),
			Src:         ir.SourceLoc{File: files[fileIdx[i]], Line: int(lines[i])},
			Features:    flat[i*cols : (i+1)*cols : (i+1)*cols],
			VertPct:     verts[i],
			HorizPct:    horizs[i],
			AvgPct:      avgs[i],
			Margin:      margins[i],
			Replica:     replicas[i],
			ReplicaRoot: int(roots[i]),
		}
	}
	return ds, nil
}

func readStrings(r *reader, what string) []string {
	n := r.count(4, what)
	if r.err != nil {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = r.str(what)
	}
	return out
}

func readU32s(r *reader, n int, what string) []uint32 {
	if r.err != nil || r.remaining() < 4*n {
		r.fail(what)
		return nil
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = r.u32(what)
	}
	return out
}

func readI64s(r *reader, n int, what string) []int64 {
	if r.err != nil || r.remaining() < 8*n {
		r.fail(what)
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = r.i64(what)
	}
	return out
}

func readF64s(r *reader, n int, what string) []float64 {
	if r.err != nil || r.remaining() < 8*n {
		r.fail(what)
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.f64(what)
	}
	return out
}

func readBools(r *reader, n int, what string) []bool {
	if r.err != nil || r.remaining() < n {
		r.fail(what)
		return nil
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = r.bool(what)
	}
	return out
}

// Checkpoint persists per-module dataset-build progress so a killed build
// resumes instead of recomputing. One module block holds the module's
// samples (columnar) plus its encoded run-0 flow result — embedded, not
// referenced by flow-cache key, because retries re-roll the seed and the
// successful attempt's key is not derivable from the requested config.
// Blocks are content-addressed by the requested (module, config,
// label-run-count), so a config change simply misses and rebuilds;
// invalidation stays by-construction.
type Checkpoint struct {
	s *Store
}

// NewCheckpoint wraps a store for checkpoint use; nil store → nil
// checkpoint (disabled).
func NewCheckpoint(s *Store) *Checkpoint {
	if s == nil {
		return nil
	}
	return &Checkpoint{s: s}
}

// Store exposes the underlying artifact store (nil-safe).
func (c *Checkpoint) Store() *Store {
	if c == nil {
		return nil
	}
	return c.s
}

// ModuleKey content-addresses one module's block within a build: a hash of
// the flow cache key (module text + full config + base seed) and the
// label-run count the build averages over.
func (c *Checkpoint) ModuleKey(m *ir.Module, cfg flow.Config, labelRuns int) string {
	h := sha256.New()
	fmt.Fprintf(h, "dataset-module|%s|runs=%d", flow.CacheKey(m, cfg), labelRuns)
	return hex.EncodeToString(h.Sum(nil))
}

const moduleBlockVersion = 1

// SaveModule persists one completed module: its appended samples and the
// run-0 flow result. featureNames is the build's shared layout. Errors
// mean the checkpoint was not taken; the build continues regardless.
func (c *Checkpoint) SaveModule(m *ir.Module, cfg flow.Config, labelRuns int,
	featureNames []string, samples []*dataset.Sample, first *flow.Result) error {
	if c == nil || c.s == nil {
		return fmt.Errorf("store: nil checkpoint")
	}
	encRes, err := EncodeResult(first)
	if err != nil {
		return err
	}
	sub := EncodeDataset(&dataset.Dataset{FeatureNames: featureNames, Samples: samples})
	b := make([]byte, 0, 2+4+len(sub)+4+len(encRes))
	b = appendU8(b, payloadModule)
	b = appendU8(b, moduleBlockVersion)
	b = appendU32(b, uint32(len(sub)))
	b = append(b, sub...)
	b = appendU32(b, uint32(len(encRes)))
	b = append(b, encRes...)
	return c.s.Put(c.ModuleKey(m, cfg, labelRuns), b)
}

// LoadModule restores a module block, returning its samples and decoded
// run-0 result. Any decode failure quarantines the block and reports a
// miss — the build recomputes the module.
func (c *Checkpoint) LoadModule(m *ir.Module, cfg flow.Config, labelRuns int) (
	samples []*dataset.Sample, first *flow.Result, ok bool) {
	if c == nil || c.s == nil {
		return nil, nil, false
	}
	key := c.ModuleKey(m, cfg, labelRuns)
	payload, err := c.s.Get(key)
	if err != nil {
		return nil, nil, false
	}
	ds, res, err := decodeModuleBlock(payload)
	if err != nil {
		c.s.Corrupt(key, err)
		return nil, nil, false
	}
	return ds.Samples, res, true
}

// decodeModuleBlock splits and decodes a module block's two sub-payloads.
func decodeModuleBlock(payload []byte) (*dataset.Dataset, *flow.Result, error) {
	r := newReader(payload)
	if k := r.u8("module block kind"); r.err == nil && k != payloadModule {
		return nil, nil, fmt.Errorf("store: payload kind %q is not a module block", k)
	}
	if v := r.u8("module block version"); r.err == nil && v != moduleBlockVersion {
		return nil, nil, fmt.Errorf("store: unsupported module block version %d", v)
	}
	nds := r.count(1, "dataset block")
	sub := r.take(nds, "dataset block")
	nres := r.count(1, "result block")
	encRes := r.take(nres, "result block")
	if r.err != nil {
		return nil, nil, r.err
	}
	if r.remaining() != 0 {
		return nil, nil, fmt.Errorf("store: module block has %d trailing bytes", r.remaining())
	}
	ds, err := DecodeDataset(sub)
	if err != nil {
		return nil, nil, err
	}
	res, err := DecodeResult(encRes)
	if err != nil {
		return nil, nil, err
	}
	return ds, res, nil
}
