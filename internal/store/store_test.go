package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
)

// testKey returns a distinct valid (64-hex) key per index.
func testKey(i int) string {
	return fmt.Sprintf("%064x", i+1)
}

func openStore(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func quarantined(t *testing.T, dir string) int {
	t.Helper()
	ents, err := os.ReadDir(filepath.Join(dir, quarantineDir))
	if err != nil {
		t.Fatal(err)
	}
	return len(ents)
}

func TestPutGetRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	key, payload := testKey(0), []byte("hello artifact")
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Errorf("Get = %q, want %q", got, payload)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Puts != 1 || st.Entries != 1 || st.Bytes != int64(entrySize(key, len(payload))) {
		t.Errorf("unexpected stats after roundtrip: %+v", st)
	}

	// The entry survives a reopen: the scan re-indexes it.
	s2 := openStore(t, dir, Options{})
	if s2.Len() != 1 || s2.Bytes() != s.Bytes() {
		t.Fatalf("reopen lost the entry: len=%d bytes=%d", s2.Len(), s2.Bytes())
	}
	if got, err := s2.Get(key); err != nil || string(got) != string(payload) {
		t.Fatalf("Get after reopen = %q, %v", got, err)
	}
}

func TestGetMissingReportsNotFound(t *testing.T) {
	s := openStore(t, t.TempDir(), Options{})
	if _, err := s.Get(testKey(7)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(missing) = %v, want ErrNotFound", err)
	}
	if st := s.Stats(); st.Misses != 1 {
		t.Errorf("misses = %d, want 1", st.Misses)
	}
}

func TestInvalidKeysRejected(t *testing.T) {
	s := openStore(t, t.TempDir(), Options{})
	for _, key := range []string{
		"", "short", strings.Repeat("g", 64), strings.Repeat("A", 64),
		"../" + strings.Repeat("a", 61), strings.Repeat("a", 63) + "/",
	} {
		if err := s.Put(key, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted an invalid key", key)
		}
		if _, err := s.Get(key); err == nil || errors.Is(err, ErrNotFound) {
			t.Errorf("Get(%q) = %v, want an invalid-key error", key, err)
		}
	}
}

func TestBitFlipQuarantinedOnGet(t *testing.T) {
	dir := t.TempDir()
	script := faults.NewDiskScript(map[faults.DiskKey]faults.DiskFault{
		{Op: faults.DiskOpWrite, N: 0}: faults.DiskBitFlip,
	})
	s := openStore(t, dir, Options{Faults: script})
	key := testKey(0)
	// The flipped write reports success — the corruption is only
	// discoverable by the read-side digest check.
	if err := s.Put(key, []byte("payload-to-corrupt")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(corrupt) = %v, want ErrNotFound", err)
	}
	st := s.Stats()
	if st.Corrupt != 1 || st.Entries != 0 {
		t.Errorf("stats after corrupt get: %+v", st)
	}
	if n := quarantined(t, dir); n != 1 {
		t.Errorf("quarantine holds %d files, want 1 (evidence preserved)", n)
	}
	// The entry stays gone: a second Get is a plain miss.
	if _, err := s.Get(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second Get = %v, want ErrNotFound", err)
	}
}

func TestTornWriteQuarantinedAtScan(t *testing.T) {
	dir := t.TempDir()
	script := faults.NewDiskScript(map[faults.DiskKey]faults.DiskFault{
		{Op: faults.DiskOpWrite, N: 0}: faults.DiskTornWrite,
	})
	s := openStore(t, dir, Options{Faults: script})
	if err := s.Put(testKey(0), []byte("this payload will be torn in half")); err != nil {
		t.Fatal(err)
	}
	// A fresh Open scans the store: the half-length file fails the
	// header-vs-size check and is quarantined before anyone reads it.
	s2 := openStore(t, dir, Options{})
	if s2.Len() != 0 {
		t.Fatalf("reopen indexed %d entries, want 0", s2.Len())
	}
	if st := s2.Stats(); st.Corrupt != 1 {
		t.Errorf("scan corrupt count = %d, want 1", st.Corrupt)
	}
	if n := quarantined(t, dir); n != 1 {
		t.Errorf("quarantine holds %d files, want 1", n)
	}
}

func TestNoSpaceFailsCleanly(t *testing.T) {
	dir := t.TempDir()
	script := faults.NewDiskScript(map[faults.DiskKey]faults.DiskFault{
		{Op: faults.DiskOpWrite, N: 0}: faults.DiskNoSpace,
	})
	s := openStore(t, dir, Options{Faults: script})
	err := s.Put(testKey(0), []byte("won't fit"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("Put under ENOSPC = %v, want syscall.ENOSPC", err)
	}
	if st := s.Stats(); st.PutErrors != 1 || st.Entries != 0 {
		t.Errorf("stats after ENOSPC: %+v", st)
	}
	// Second Put succeeds: the fault was a one-shot.
	if err := s.Put(testKey(0), []byte("fits now")); err != nil {
		t.Fatal(err)
	}
}

func TestRenameFailureLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	script := faults.NewDiskScript(map[faults.DiskKey]faults.DiskFault{
		{Op: faults.DiskOpRename, N: 0}: faults.DiskRenameFail,
	})
	s := openStore(t, dir, Options{Faults: script})
	key := testKey(0)
	if err := s.Put(key, []byte("never lands")); err == nil {
		t.Fatal("Put with injected rename failure succeeded")
	}
	var temps []string
	filepath.WalkDir(filepath.Join(dir, objectsDir), func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasPrefix(d.Name(), tmpPrefix) {
			temps = append(temps, path)
		}
		return nil
	})
	if len(temps) != 0 {
		t.Errorf("failed Put left temp files behind: %v", temps)
	}
	if _, err := s.Get(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after failed Put = %v, want ErrNotFound", err)
	}
	if err := s.Put(key, []byte("retry lands")); err != nil {
		t.Fatal(err)
	}
}

func TestStrayTempRemovedOnOpen(t *testing.T) {
	dir := t.TempDir()
	shard := filepath.Join(dir, objectsDir, "ab")
	if err := os.MkdirAll(shard, 0o777); err != nil {
		t.Fatal(err)
	}
	stray := filepath.Join(shard, tmpPrefix+"12345")
	if err := os.WriteFile(stray, []byte("interrupted write"), 0o666); err != nil {
		t.Fatal(err)
	}
	openStore(t, dir, Options{})
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Errorf("stray temp file survived Open: %v", err)
	}
}

func TestEvictionIsMtimeLRU(t *testing.T) {
	dir := t.TempDir()
	payload := []byte(strings.Repeat("x", 100))
	one := int64(entrySize(testKey(0), len(payload)))
	s := openStore(t, dir, Options{MaxBytes: 2 * one})
	base := time.Now().Add(-time.Hour)
	for i := 0; i < 2; i++ {
		if err := s.Put(testKey(i), payload); err != nil {
			t.Fatal(err)
		}
		// Filesystem mtime granularity can collapse back-to-back writes;
		// pin distinct, ordered mtimes so the LRU order is unambiguous.
		mt := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(s.keyPath(testKey(i)), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	// Touch entry 0 (a Get refreshes mtime), making entry 1 the LRU victim.
	if _, err := s.Get(testKey(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testKey(2), payload); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(testKey(1)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("LRU entry 1 still present: %v", err)
	}
	if _, err := s.Get(testKey(0)); err != nil {
		t.Fatalf("recently touched entry 0 was evicted: %v", err)
	}
	st := s.Stats()
	if st.Evictions != 1 || st.EvictedBytes != uint64(one) || st.Bytes > 2*one {
		t.Errorf("eviction stats: %+v (entry size %d)", st, one)
	}
}

func TestBudgetEnforcedAtOpen(t *testing.T) {
	dir := t.TempDir()
	payload := []byte(strings.Repeat("y", 50))
	s := openStore(t, dir, Options{})
	base := time.Now().Add(-time.Hour)
	for i := 0; i < 3; i++ {
		if err := s.Put(testKey(i), payload); err != nil {
			t.Fatal(err)
		}
		mt := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(s.keyPath(testKey(i)), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	one := int64(entrySize(testKey(0), len(payload)))
	s2 := openStore(t, dir, Options{MaxBytes: one})
	if s2.Len() != 1 {
		t.Fatalf("open with budget kept %d entries, want 1", s2.Len())
	}
	if _, err := s2.Get(testKey(2)); err != nil {
		t.Errorf("newest entry evicted instead of oldest: %v", err)
	}
}

func TestCorruptQuarantinesEntry(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	key := testKey(0)
	if err := s.Put(key, []byte("semantically wrong")); err != nil {
		t.Fatal(err)
	}
	s.Corrupt(key, fmt.Errorf("verification mismatch"))
	if _, err := s.Get(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after Corrupt = %v, want ErrNotFound", err)
	}
	if st := s.Stats(); st.Corrupt != 1 || st.Entries != 0 {
		t.Errorf("stats after Corrupt: %+v", st)
	}
	if n := quarantined(t, dir); n != 1 {
		t.Errorf("quarantine holds %d files, want 1", n)
	}
	// Corrupt on a missing key is a no-op.
	s.Corrupt(testKey(9), fmt.Errorf("x"))
	if st := s.Stats(); st.Corrupt != 1 {
		t.Errorf("Corrupt(missing) counted: %+v", st)
	}
}

func TestVerifyAllFindsSilentCorruption(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	for i := 0; i < 2; i++ {
		if err := s.Put(testKey(i), []byte(fmt.Sprintf("payload %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Flip one payload byte directly on disk — the header still parses, so
	// only a full digest check can find it.
	path := s.keyPath(testKey(0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x40
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	ok, bad := s.VerifyAll()
	if ok != 1 || bad != 1 {
		t.Fatalf("VerifyAll = (%d ok, %d quarantined), want (1, 1)", ok, bad)
	}
	if n := quarantined(t, dir); n != 1 {
		t.Errorf("quarantine holds %d files, want 1", n)
	}
	if ok, bad := s.VerifyAll(); ok != 1 || bad != 0 {
		t.Fatalf("second VerifyAll = (%d, %d), want (1, 0)", ok, bad)
	}
}

func TestPutReplacesExistingKey(t *testing.T) {
	s := openStore(t, t.TempDir(), Options{})
	key := testKey(0)
	if err := s.Put(key, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key, []byte("second, longer payload")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(key)
	if err != nil || string(got) != "second, longer payload" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	st := s.Stats()
	if st.Entries != 1 || st.Bytes != int64(entrySize(key, len("second, longer payload"))) {
		t.Errorf("replacement double-counted: %+v", st)
	}
}

func TestPutHookReportsCount(t *testing.T) {
	var calls []int
	s := openStore(t, t.TempDir(), Options{PutHook: func(n int) { calls = append(calls, n) }})
	s.Put(testKey(0), []byte("a"))
	s.Put(testKey(1), []byte("b"))
	if len(calls) != 2 || calls[0] != 1 || calls[1] != 2 {
		t.Errorf("PutHook calls = %v, want [1 2]", calls)
	}
}

func TestObserverMirrorsCounters(t *testing.T) {
	dir := t.TempDir()
	script := faults.NewDiskScript(map[faults.DiskKey]faults.DiskFault{
		{Op: faults.DiskOpWrite, N: 1}: faults.DiskBitFlip,
	})
	one := int64(entrySize(testKey(0), 1))
	o := obs.New()
	s := openStore(t, dir, Options{MaxBytes: 2 * one, Faults: script})
	s.SetObserver(o)
	base := time.Now().Add(-time.Hour)
	s.Put(testKey(0), []byte("a")) // clean
	os.Chtimes(s.keyPath(testKey(0)), base, base)
	s.Put(testKey(1), []byte("b")) // bit-flipped on disk
	s.Get(testKey(0))              // hit
	s.Get(testKey(1))              // corrupt → quarantine + miss
	s.Get(testKey(9))              // miss
	s.Put(testKey(2), []byte("c"))
	s.Put(testKey(3), []byte("d")) // evicts the oldest
	snap := o.Reg.Snapshot()
	for name, want := range map[string]int64{
		obs.MetricStoreHits:      1,
		obs.MetricStoreMisses:    2,
		obs.MetricStoreCorrupt:   1,
		obs.MetricStoreEvictions: 1,
	} {
		if got, _ := snap.Counter(name); got != want {
			t.Errorf("counter %s = %d, want %d", name, got, want)
		}
	}
}

func TestNilStoreIsSafe(t *testing.T) {
	var s *Store
	if _, err := s.Get(testKey(0)); !errors.Is(err, ErrNotFound) {
		t.Errorf("nil Get = %v, want ErrNotFound", err)
	}
	if err := s.Put(testKey(0), []byte("x")); err == nil {
		t.Error("nil Put succeeded")
	}
	s.Corrupt(testKey(0), fmt.Errorf("x"))
	s.SetObserver(obs.New())
	if s.Len() != 0 || s.Bytes() != 0 {
		t.Error("nil Len/Bytes nonzero")
	}
	if st := s.Stats(); st != (Stats{}) {
		t.Errorf("nil Stats = %+v", st)
	}
}

func TestStatsString(t *testing.T) {
	st := Stats{Hits: 2, Misses: 1, Puts: 3, PutErrors: 1, Corrupt: 1,
		Evictions: 2, EvictedBytes: 300, Entries: 4, Bytes: 1024}
	want := "store: 2 hits, 1 misses, 3 puts (1 failed), 1 corrupt quarantined, 2 evictions (300 bytes), 4 entries (1024 bytes)"
	if got := st.String(); got != want {
		t.Errorf("Stats.String() = %q, want %q", got, want)
	}
}

func TestEntryCodec(t *testing.T) {
	key, payload := testKey(3), []byte("entry payload")
	data := encodeEntry(key, payload)
	if len(data) != entrySize(key, len(payload)) {
		t.Fatalf("encoded entry is %d bytes, entrySize says %d", len(data), entrySize(key, len(payload)))
	}
	gotKey, gotPayload, err := decodeEntry(data)
	if err != nil || gotKey != key || string(gotPayload) != string(payload) {
		t.Fatalf("decodeEntry = (%q, %q, %v)", gotKey, gotPayload, err)
	}
	if err := checkEntryHeader(data, int64(len(data)), key); err != nil {
		t.Errorf("checkEntryHeader rejected a valid entry: %v", err)
	}
	if err := checkEntryHeader(data, int64(len(data)-1), key); err == nil {
		t.Error("checkEntryHeader accepted a truncated file size")
	}
	if err := checkEntryHeader(data, int64(len(data)), testKey(4)); err == nil {
		t.Error("checkEntryHeader accepted a filename/key mismatch")
	}
	for _, mut := range []int{0, 4, 5, len(data) - 1} {
		bad := append([]byte(nil), data...)
		bad[mut] ^= 0x01
		if _, _, err := decodeEntry(bad); err == nil {
			t.Errorf("decodeEntry accepted a corrupt byte at offset %d", mut)
		}
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s := openStore(t, t.TempDir(), Options{})
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 20; i++ {
				key := testKey(w*20 + i)
				if err := s.Put(key, []byte(key)); err != nil {
					t.Error(err)
					return
				}
				if got, err := s.Get(key); err != nil || string(got) != key {
					t.Errorf("Get(%q) = %q, %v", key, got, err)
					return
				}
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	if s.Len() != 80 {
		t.Errorf("Len = %d, want 80", s.Len())
	}
}

// TestConcurrentOpensEvictionRace is the regression test for the
// cross-process eviction race: two Stores on one directory (modeling a
// fleet worker and a coordinator sharing the artifact tier), where A's
// byte budget evicts an entry B still has indexed. B's Get must degrade to
// a clean ErrNotFound miss — never a partial read, never a quarantine of a
// phantom — and B's index must self-heal so its byte accounting matches
// the directory again.
func TestConcurrentOpensEvictionRace(t *testing.T) {
	dir := t.TempDir()
	payload := []byte(strings.Repeat("z", 100))
	one := int64(entrySize(testKey(0), len(payload)))

	// A enforces a 2-entry budget with a grace window; B is an unbounded
	// reader of the same directory.
	a := openStore(t, dir, Options{MaxBytes: 2 * one, EvictGrace: 30 * time.Second})
	for i := 0; i < 2; i++ {
		if err := a.Put(testKey(i), payload); err != nil {
			t.Fatal(err)
		}
	}
	b := openStore(t, dir, Options{})
	if b.Len() != 2 {
		t.Fatalf("reader indexed %d entries, want 2", b.Len())
	}

	// Inside the grace window nothing is evictable: A's next Put may
	// overshoot the budget but B's entries stay readable.
	if err := a.Put(testKey(2), payload); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := b.Get(testKey(i)); err != nil {
			t.Fatalf("entry %d evicted inside the grace window: %v", i, err)
		}
	}
	if st := a.Stats(); st.Evictions != 0 {
		t.Fatalf("evictions inside grace window: %+v", st)
	}

	// Age every entry past the grace window; A's next Put now evicts the
	// two oldest. B still has them indexed.
	old := time.Now().Add(-time.Hour)
	for i := 0; i < 3; i++ {
		mt := old.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(a.keyPath(testKey(i)), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Put(testKey(3), payload); err != nil {
		t.Fatal(err)
	}
	if st := a.Stats(); st.Evictions != 2 {
		t.Fatalf("aged entries not evicted: %+v", st)
	}

	// B's Get of an evicted entry: clean miss, no quarantine, index healed.
	if _, err := b.Get(testKey(0)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(evicted) = %v, want ErrNotFound", err)
	}
	if _, err := b.Get(testKey(1)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(evicted) = %v, want ErrNotFound", err)
	}
	st := b.Stats()
	if st.Corrupt != 0 {
		t.Fatalf("cross-process eviction quarantined entries: %+v", st)
	}
	// B indexed entries 0 and 1 at Open (2 and 3 landed later); both
	// phantom rows must now be gone.
	if st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("reader index did not self-heal: %+v", st)
	}
	if q := quarantined(t, dir); q != 0 {
		t.Fatalf("%d files in quarantine, want 0", q)
	}
	// No eviction leftovers: the rename-aside temp file must be gone.
	err := filepath.WalkDir(filepath.Join(dir, objectsDir), func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasPrefix(d.Name(), tmpPrefix) {
			t.Errorf("eviction left temp file %s", d.Name())
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestGetInjectedReadFaults covers the read-side fault hooks the
// flow-cache degradation tests build on: an injected read error degrades
// to a miss without touching the (healthy) entry; injected flipped bits
// fail digest verification and quarantine the entry.
func TestGetInjectedReadFaults(t *testing.T) {
	dir := t.TempDir()
	script := faults.NewDiskScript(map[faults.DiskKey]faults.DiskFault{
		{Op: faults.DiskOpRead, N: 1}: faults.DiskReadError,
		{Op: faults.DiskOpRead, N: 3}: faults.DiskBitFlip,
	})
	s := openStore(t, dir, Options{Faults: script})
	key, payload := testKey(0), []byte("read-fault fodder")
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(key); err != nil { // read #0: clean
		t.Fatal(err)
	}
	if _, err := s.Get(key); !errors.Is(err, ErrNotFound) { // read #1: EIO → miss
		t.Fatalf("Get under read error = %v, want ErrNotFound", err)
	}
	if q := quarantined(t, dir); q != 0 {
		t.Fatalf("read error quarantined a healthy entry (%d files)", q)
	}
	if _, err := s.Get(key); err != nil { // read #2: clean again
		t.Fatalf("entry gone after transient read error: %v", err)
	}
	if _, err := s.Get(key); !errors.Is(err, ErrNotFound) { // read #3: bit flip
		t.Fatalf("Get under bit flip = %v, want ErrNotFound", err)
	}
	st := s.Stats()
	if st.Corrupt != 1 {
		t.Fatalf("bit-flipped read not quarantined: %+v", st)
	}
	if q := quarantined(t, dir); q != 1 {
		t.Fatalf("%d files in quarantine, want 1", q)
	}
}
