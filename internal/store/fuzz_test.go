package store

import (
	"strings"
	"testing"

	"repro/internal/flow"
)

// FuzzStoreDecode drives arbitrary bytes through every decoder in the
// store's read path: the entry container, the flow-result codec, the
// columnar dataset codec and the checkpoint module block. The invariants
// under test are the store's robustness contract: no input may panic, and
// no input may yield an artifact that passes semantic verification for a
// key it does not hash to — corrupt bytes degrade to an error (recompute),
// never to a wrong result.
func FuzzStoreDecode(f *testing.F) {
	res := testResult(f)
	key := flow.CacheKey(res.Mod, res.Config)
	encRes, err := EncodeResult(res)
	if err != nil {
		f.Fatal(err)
	}
	ds := testDataset()
	encDS := EncodeDataset(ds)
	// A checkpoint module block, built exactly like Checkpoint.SaveModule.
	blk := []byte{payloadModule, moduleBlockVersion}
	blk = appendU32(blk, uint32(len(encDS)))
	blk = append(blk, encDS...)
	blk = appendU32(blk, uint32(len(encRes)))
	blk = append(blk, encRes...)

	f.Add([]byte{})
	f.Add([]byte{payloadResult})
	f.Add([]byte{payloadResult, resultVersion})
	f.Add([]byte{payloadDataset, datasetVersion, 0, 0, 0, 0})
	f.Add([]byte{payloadModule, moduleBlockVersion})
	f.Add(encRes)
	f.Add(encDS)
	f.Add(blk)
	f.Add(encodeEntry(key, encRes))
	f.Add(encodeEntry(key, encDS))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Entry container: a successful decode means the embedded digest
		// matched the payload and the key round-tripped.
		if k, payload, err := decodeEntry(data); err == nil {
			reenc := encodeEntry(k, payload)
			if string(reenc) != string(data) {
				t.Fatal("decodeEntry accepted a non-canonical container")
			}
		}
		checkEntryHeader(data, int64(len(data)), key)

		// Flow-result codec: a successful decode must be internally
		// consistent — it verifies against its own recomputed key and
		// never against a key it wasn't derived from.
		if dec, err := DecodeResult(data); err == nil {
			own := flow.CacheKey(dec.Mod, dec.Config)
			if verr := VerifyResultKey(dec, own); verr != nil {
				t.Fatalf("decoded result fails verification against its own key: %v", verr)
			}
			if VerifyResultKey(dec, strings.Repeat("f", 64)) == nil {
				t.Fatal("decoded result verified against a foreign key")
			}
		}

		// Dataset codec: a successful decode keeps the columnar layout.
		if ds, err := DecodeDataset(data); err == nil {
			cols := len(ds.FeatureNames)
			for i, s := range ds.Samples {
				if len(s.Features) != cols {
					t.Fatalf("decoded sample %d has %d features, layout says %d", i, len(s.Features), cols)
				}
			}
		}

		// Module blocks recurse into both codecs.
		decodeModuleBlock(data)
	})
}
