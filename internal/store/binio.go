package store

import (
	"encoding/binary"
	"fmt"
	"math"
)

// The on-disk codecs use a fixed-width little-endian encoding with no
// varints or alignment: every field's size is knowable without reading it,
// which keeps EncodedResultSize an O(structure) arithmetic walk and makes
// the decoder's bounds checks exact. appendX builds buffers, reader
// consumes them; reader latches the first error and returns zero values
// from then on, so decode paths check err once at the end of each section
// instead of after every field.

func appendU8(b []byte, v uint8) []byte { return append(b, v) }

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendI64(b []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(b, uint64(v))
}

func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// appendString writes a u32 length prefix followed by the raw bytes.
func appendString(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

// appendInts writes a u32 count followed by each value as i64.
func appendInts(b []byte, vs []int) []byte {
	b = appendU32(b, uint32(len(vs)))
	for _, v := range vs {
		b = appendI64(b, int64(v))
	}
	return b
}

// appendF64s writes a u32 count followed by the raw float64 bits.
func appendF64s(b []byte, vs []float64) []byte {
	b = appendU32(b, uint32(len(vs)))
	for _, v := range vs {
		b = appendF64(b, v)
	}
	return b
}

// stringSize returns the encoded size of appendString's output.
func stringSize(s string) int { return 4 + len(s) }

// reader consumes a fixed-width encoded buffer with exact bounds checks.
// The first failure latches into err; subsequent reads return zero values.
type reader struct {
	buf []byte
	off int
	err error
}

func newReader(buf []byte) *reader { return &reader{buf: buf} }

// fail latches the first error with the current offset for diagnostics.
func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("store: truncated %s at offset %d (len %d)", what, r.off, len(r.buf))
	}
}

// take returns the next n bytes, or nil after latching an error.
func (r *reader) take(n int, what string) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.buf) || r.off+n < r.off {
		r.fail(what)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u8(what string) uint8 {
	b := r.take(1, what)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u32(what string) uint32 {
	b := r.take(4, what)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) i64(what string) int64 {
	b := r.take(8, what)
	if b == nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(b))
}

func (r *reader) f64(what string) float64 {
	b := r.take(8, what)
	if b == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

func (r *reader) bool(what string) bool { return r.u8(what) != 0 }

func (r *reader) str(what string) string {
	n := r.u32(what)
	b := r.take(int(n), what)
	if b == nil {
		return ""
	}
	return string(b)
}

// count reads a u32 element count and validates that elemSize*count bytes
// actually remain, so a corrupt length can never trigger a huge allocation.
func (r *reader) count(elemSize int, what string) int {
	n := int(r.u32(what))
	if r.err != nil {
		return 0
	}
	if n < 0 || elemSize > 0 && n > (len(r.buf)-r.off)/elemSize {
		r.fail(what + " count")
		return 0
	}
	return n
}

func (r *reader) ints(what string) []int {
	n := r.count(8, what)
	if r.err != nil {
		return nil
	}
	vs := make([]int, n)
	for i := range vs {
		vs[i] = int(r.i64(what))
	}
	return vs
}

func (r *reader) f64s(what string) []float64 {
	n := r.count(8, what)
	if r.err != nil {
		return nil
	}
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = r.f64(what)
	}
	return vs
}

// remaining returns how many bytes are left unconsumed.
func (r *reader) remaining() int { return len(r.buf) - r.off }

// countWriter measures io.Writer traffic without storing it; it is how
// EncodedResultSize prices the module's text serialization.
type countWriter struct{ n int }

func (w *countWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}
