package store

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/flow"
	"repro/internal/ir"
)

// testModule builds one small design, fast enough for unit tests but with
// multiple functions AND a cross-function call so region centers and the
// call-graph round-trip (op names, callee edges) exercise the codec — the
// decode path re-elaborates the netlist, and a lost call edge changes it.
func testModule() *ir.Module {
	m := ir.NewModule("store_tiny")
	build := func(name string, lanes int, callee *ir.Function) *ir.Function {
		f := m.NewFunction(name)
		b := ir.NewBuilder(f).At(name+".cpp", 1)
		p := b.Port("p", 32)
		a := b.Array("mem", 64, 16, 8)
		var outs []*ir.Op
		for i := 0; i < lanes; i++ {
			b.Line(10 + i)
			v := b.Load(a, nil)
			x := b.OpBits(ir.KindBitSel, 16, p, 16)
			outs = append(outs, b.Op(ir.KindMul, 16, v, x))
		}
		b.Line(55)
		sum := b.ReduceTree(ir.KindAdd, 16, outs)
		if callee != nil {
			sum = b.Op(ir.KindAdd, 16, sum, b.Call(callee, p))
		}
		b.Line(60)
		b.Ret(sum)
		return f
	}
	aux := build("store_tiny_aux", 6, nil)
	m.SetTop(build("store_tiny_top", 12, aux))
	return m
}

var (
	testResOnce sync.Once
	testRes     *flow.Result
	testResErr  error
)

// testResult runs one real flow once and shares the result across tests —
// the codec must round-trip genuine artifacts, not synthetic ones.
func testResult(t testing.TB) *flow.Result {
	t.Helper()
	testResOnce.Do(func() {
		cfg := flow.DefaultConfig()
		cfg.Place.Moves = 3000
		testRes, testResErr = flow.Run(testModule(), cfg)
	})
	if testResErr != nil {
		t.Fatal(testResErr)
	}
	return testRes
}

func TestResultRoundtrip(t *testing.T) {
	res := testResult(t)
	enc, err := EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	if got := EncodedResultSize(res); got != len(enc) {
		t.Fatalf("EncodedResultSize = %d, encoded payload is %d bytes", got, len(enc))
	}
	dec, err := DecodeResult(enc)
	if err != nil {
		t.Fatal(err)
	}
	key := flow.CacheKey(res.Mod, res.Config)
	if err := VerifyResultKey(dec, key); err != nil {
		t.Fatalf("decoded result fails semantic verification: %v", err)
	}
	if !reflect.DeepEqual(dec.Placement.Pos, res.Placement.Pos) {
		t.Error("placement positions differ after roundtrip")
	}
	if dec.Placement.Stats != res.Placement.Stats {
		t.Errorf("placement stats = %+v, want %+v", dec.Placement.Stats, res.Placement.Stats)
	}
	if len(dec.Placement.RegionCenter) != len(res.Placement.RegionCenter) {
		t.Errorf("region centers = %d, want %d",
			len(dec.Placement.RegionCenter), len(res.Placement.RegionCenter))
	}
	if !reflect.DeepEqual(dec.Routing.Map.V, res.Routing.Map.V) ||
		!reflect.DeepEqual(dec.Routing.Map.H, res.Routing.Map.H) {
		t.Error("congestion grids differ after roundtrip")
	}
	if len(dec.Routing.Pins) != len(res.Routing.Pins) {
		t.Fatalf("pins = %d, want %d", len(dec.Routing.Pins), len(res.Routing.Pins))
	}
	for i, p := range res.Routing.Pins {
		d := dec.Routing.Pins[i]
		if d.Net.ID != p.Net.ID || d.Sink != d.Net.Sinks[sinkIndex(d.Net, d.Sink)] ||
			d.Length != p.Length || d.AvgUtil != p.AvgUtil || d.MaxUtil != p.MaxUtil {
			t.Fatalf("pin %d differs: %+v vs %+v", i, d, p)
		}
	}
	if *dec.Timing != *res.Timing {
		t.Errorf("timing report = %+v, want %+v", dec.Timing, res.Timing)
	}
	if dec.Convergence != res.Convergence {
		t.Errorf("convergence = %+v, want %+v", dec.Convergence, res.Convergence)
	}
	if dec.Timings != res.Timings {
		t.Errorf("timings = %+v, want %+v", dec.Timings, res.Timings)
	}
	// The re-derived front half must be usable: cells and nets match.
	if len(dec.Netlist.Cells) != len(res.Netlist.Cells) || len(dec.Netlist.Nets) != len(res.Netlist.Nets) {
		t.Errorf("re-derived netlist: %d cells / %d nets, want %d / %d",
			len(dec.Netlist.Cells), len(dec.Netlist.Nets), len(res.Netlist.Cells), len(res.Netlist.Nets))
	}
}

func TestReencodeIsByteIdentical(t *testing.T) {
	res := testResult(t)
	enc, err := EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeResult(enc)
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := EncodeResult(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Error("decode → re-encode is not byte-identical; the encoding is not canonical")
	}
}

func TestEncodeRejectsIncompleteResults(t *testing.T) {
	res := testResult(t)
	incomplete := []*flow.Result{
		nil,
		{},
		{Mod: res.Mod, Config: res.Config},                           // no placement
		{Mod: res.Mod, Config: res.Config, Placement: res.Placement}, // no routing
	}
	for i, r := range incomplete {
		if _, err := EncodeResult(r); err == nil {
			t.Errorf("case %d: EncodeResult accepted an incomplete result", i)
		}
		if size := EncodedResultSize(r); size != 0 {
			t.Errorf("case %d: EncodedResultSize = %d, want 0", i, size)
		}
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	res := testResult(t)
	enc, err := EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, 2, 10, 100, len(enc) / 2, len(enc) - 8, len(enc) - 1} {
		if _, err := DecodeResult(enc[:n]); err == nil {
			t.Errorf("DecodeResult accepted a %d-byte prefix of %d", n, len(enc))
		}
	}
}

func TestDecodeRejectsWrongKindVersionTrailing(t *testing.T) {
	res := testResult(t)
	enc, err := EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	kind := append([]byte(nil), enc...)
	kind[0] = 'X'
	if _, err := DecodeResult(kind); err == nil {
		t.Error("DecodeResult accepted a wrong payload kind")
	}
	ver := append([]byte(nil), enc...)
	ver[1] = 99
	if _, err := DecodeResult(ver); err == nil {
		t.Error("DecodeResult accepted an unknown version")
	}
	if _, err := DecodeResult(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Error("DecodeResult accepted trailing bytes")
	}
}

func TestVerifyResultKeyRejectsMismatch(t *testing.T) {
	res := testResult(t)
	key := flow.CacheKey(res.Mod, res.Config)
	if err := VerifyResultKey(res, key); err != nil {
		t.Fatalf("VerifyResultKey rejected the result's own key: %v", err)
	}
	if err := VerifyResultKey(res, strings.Repeat("0", 64)); err == nil {
		t.Error("VerifyResultKey accepted a foreign key")
	}
	if err := VerifyResultKey(nil, key); err == nil {
		t.Error("VerifyResultKey accepted a nil result")
	}
	// A payload stored under the wrong key must be rejected end to end:
	// decode succeeds (the bytes are fine) but verification fails.
	enc, err := EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeResult(enc)
	if err != nil {
		t.Fatal(err)
	}
	other := res.Config
	other.Seed++
	if err := VerifyResultKey(dec, flow.CacheKey(res.Mod, other)); err == nil {
		t.Error("decoded artifact verified against a different config's key")
	}
}
