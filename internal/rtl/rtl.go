// Package rtl turns a bound HLS schedule into a register-transfer-level
// netlist: cells (functional-unit instances, steering multiplexers, memory
// banks) connected by named nets. Net names embed the driving IR operation
// the way Vivado HLS embeds RTL signal provenance, which is what the
// back-tracing flow in internal/backtrace parses to walk congestion metrics
// from placed cells back to IR operations and source lines.
package rtl

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/hls"
	"repro/internal/ir"
)

// CellKind distinguishes the netlist cell classes.
type CellKind int

const (
	// CellFU is a functional-unit instance (possibly shared).
	CellFU CellKind = iota
	// CellMux is a steering multiplexer in front of a shared unit port.
	CellMux
	// CellMem is one bank of an on-chip memory.
	CellMem
)

func (k CellKind) String() string {
	switch k {
	case CellFU:
		return "fu"
	case CellMux:
		return "mux"
	case CellMem:
		return "mem"
	}
	return "?"
}

// Cell is one placeable netlist element.
type Cell struct {
	ID   int
	Name string
	Kind CellKind
	Res  hls.Resources
	Func *ir.Function // owning RTL module instance

	// Provenance. Exactly one of FU/Mux/Bank is non-nil.
	FU   *hls.FU
	Mux  *hls.Mux
	Bank *hls.MemBank
}

// Ops returns the IR operations implemented by the cell (empty for muxes
// and memory banks).
func (c *Cell) Ops() []*ir.Op {
	if c.FU != nil {
		return c.FU.Ops
	}
	return nil
}

// Sink is one net endpoint with the number of wires it taps.
type Sink struct {
	Cell *Cell
	Bits int
}

// Net is a named multi-terminal connection.
type Net struct {
	ID     int
	Name   string
	Width  int
	Driver *Cell
	Sinks  []Sink

	// SrcOp is the IR operation whose result the net carries, nil for
	// structural nets (mux outputs, memory ports).
	SrcOp *ir.Op
}

// Wires returns the total wire count the net must carry: the maximum sink
// tap (all sinks share the same physical bus).
func (n *Net) Wires() int {
	w := 0
	for _, s := range n.Sinks {
		if s.Bits > w {
			w = s.Bits
		}
	}
	if w == 0 {
		w = n.Width
	}
	return w
}

// Netlist is the whole elaborated design.
type Netlist struct {
	Mod     *ir.Module
	Binding *hls.Binding
	Cells   []*Cell
	Nets    []*Net

	CellOf  map[*ir.Op]*Cell       // FU cell implementing each op
	cellFor map[*hls.FU]*Cell      //
	muxFor  map[muxKey]*Cell       //
	bankFor map[*hls.MemBank]*Cell //
}

type muxKey struct {
	fu   *hls.FU
	port int
}

// Elaborate builds the netlist from a binding.
func Elaborate(b *hls.Binding) *Netlist {
	nl := &Netlist{
		Mod:     b.Sched.Mod,
		Binding: b,
		CellOf:  make(map[*ir.Op]*Cell),
		cellFor: make(map[*hls.FU]*Cell),
		muxFor:  make(map[muxKey]*Cell),
		bankFor: make(map[*hls.MemBank]*Cell),
	}
	nl.buildCells()
	nl.buildNets()
	return nl
}

func (nl *Netlist) newCell(name string, kind CellKind, res hls.Resources, f *ir.Function) *Cell {
	c := &Cell{ID: len(nl.Cells), Name: name, Kind: kind, Res: res, Func: f}
	nl.Cells = append(nl.Cells, c)
	return c
}

func (nl *Netlist) buildCells() {
	b := nl.Binding
	for _, u := range b.Units {
		c := nl.newCell(fmt.Sprintf("%s/%s_fu_%d", u.Func.Name, u.Kind, u.ID), CellFU, u.Res, u.Func)
		c.FU = u
		nl.cellFor[u] = c
		for _, o := range u.Ops {
			nl.CellOf[o] = c
		}
	}
	// Mux cells, keyed by (unit, port). Binding stores muxes flat; ports of
	// one unit appear in insertion order.
	portSeen := make(map[*hls.FU]int)
	for _, m := range b.Muxes {
		p := portSeen[m.FU]
		portSeen[m.FU] = p + 1
		c := nl.newCell(fmt.Sprintf("%s/mux_%s_%d_p%d", m.FU.Func.Name, m.FU.Kind, m.FU.ID, p),
			CellMux, m.Res, m.FU.Func)
		c.Mux = m
		nl.muxFor[muxKey{m.FU, p}] = c
	}
	for _, mb := range b.Banks {
		c := nl.newCell(fmt.Sprintf("%s/%s_bank%d", mb.Array.Func.Name, mb.Array.Name, mb.Index),
			CellMem, mb.Res, mb.Array.Func)
		c.Bank = mb
		nl.bankFor[mb] = c
	}
}

// netName encodes the driving op so the back-tracer can recover it; the
// format mirrors Vivado's <module>/<signal>_reg naming.
func netName(o *ir.Op) string {
	return fmt.Sprintf("%s/%s_reg_%d", o.Func.Name, o.Name, o.ID)
}

// ParseNetOpID recovers the driving op ID from a provenance net name. It
// returns -1 for structural nets and for digit runs too large to be an op
// ID (overflow would otherwise wrap negative).
func ParseNetOpID(name string) int {
	i := len(name) - 1
	for i >= 0 && name[i] >= '0' && name[i] <= '9' {
		i--
	}
	if i < 0 || i == len(name)-1 || i < 4 || name[i] != '_' {
		return -1
	}
	if name[i-4:i] != "_reg" {
		return -1
	}
	digits := name[i+1:]
	if len(digits) > 18 { // beyond any real op ID; would overflow int64
		return -1
	}
	id := 0
	for _, d := range digits {
		id = id*10 + int(d-'0')
	}
	return id
}

func (nl *Netlist) buildNets() {
	// Dataflow nets: one per defining op that has users in other cells.
	for _, f := range nl.Mod.LiveFuncs() {
		for _, o := range f.Ops {
			drv := nl.CellOf[o]
			if drv == nil {
				continue
			}
			sinkBits := make(map[*Cell]int)
			for _, u := range o.Users() {
				uc := nl.CellOf[u]
				if uc == nil || uc == drv {
					continue
				}
				// Caller-side values feeding a call land directly on the
				// callee instance's interface register (its port cell); the
				// call unit itself only carries control.
				target := uc
				if u.Kind == ir.KindCall {
					if pc := nl.argPortCell(u, o); pc != nil {
						target = pc
					}
				} else if u2, ok := nl.routeViaMux(u, o, uc); ok {
					// Route into the shared unit's mux when one exists for
					// the operand port this edge feeds.
					target = u2
				}
				bits := 0
				for _, e := range u.Operands {
					if e.Def == o && e.Bits > bits {
						bits = e.Bits
					}
				}
				if bits > sinkBits[target] {
					sinkBits[target] = bits
				}
			}
			// Memory data connections.
			if o.Kind == ir.KindStore && o.Array != nil {
				if bc := nl.bankCellFor(o); bc != nil {
					if o.Bitwidth > sinkBits[bc] {
						sinkBits[bc] = o.Array.Bits
					}
				}
			}
			if len(sinkBits) == 0 {
				continue
			}
			n := &Net{
				ID:     len(nl.Nets),
				Name:   netName(o),
				Width:  o.Bitwidth,
				Driver: drv,
				SrcOp:  o,
			}
			cells := make([]*Cell, 0, len(sinkBits))
			for c := range sinkBits {
				cells = append(cells, c)
			}
			sort.Slice(cells, func(i, j int) bool { return cells[i].ID < cells[j].ID })
			for _, c := range cells {
				n.Sinks = append(n.Sinks, Sink{Cell: c, Bits: sinkBits[c]})
			}
			nl.Nets = append(nl.Nets, n)
		}
	}
	// Mux output nets: mux -> its unit.
	for _, mc := range nl.Cells {
		if mc.Kind != CellMux {
			continue
		}
		uc, ok := nl.cellFor[mc.Mux.FU]
		if !ok {
			continue
		}
		nl.Nets = append(nl.Nets, &Net{
			ID:     len(nl.Nets),
			Name:   mc.Name + "_out",
			Width:  mc.Mux.Width,
			Driver: mc,
			Sinks:  []Sink{{Cell: uc, Bits: mc.Mux.Width}},
		})
	}
	// Memory read nets: bank -> load units.
	loadsOf := make(map[*Cell][]*Cell) // bank cell -> load cells
	for _, f := range nl.Mod.LiveFuncs() {
		for _, o := range f.Ops {
			if o.Kind != ir.KindLoad || o.Array == nil {
				continue
			}
			bc := nl.bankCellFor(o)
			lc := nl.CellOf[o]
			if bc == nil || lc == nil {
				continue
			}
			loadsOf[bc] = append(loadsOf[bc], lc)
		}
	}
	bankCells := make([]*Cell, 0, len(loadsOf))
	for bc := range loadsOf {
		bankCells = append(bankCells, bc)
	}
	sort.Slice(bankCells, func(i, j int) bool { return bankCells[i].ID < bankCells[j].ID })
	for _, bc := range bankCells {
		seen := make(map[*Cell]bool)
		n := &Net{
			ID:     len(nl.Nets),
			Name:   bc.Name + "_dout",
			Width:  bc.Bank.Array.Bits,
			Driver: bc,
		}
		for _, lc := range loadsOf[bc] {
			if seen[lc] {
				continue
			}
			seen[lc] = true
			n.Sinks = append(n.Sinks, Sink{Cell: lc, Bits: bc.Bank.Array.Bits})
		}
		nl.Nets = append(nl.Nets, n)
	}
	// Call return nets: the callee's return-value register drives the
	// caller-side call unit, which fans the result out to its users.
	for _, f := range nl.Mod.LiveFuncs() {
		for _, o := range f.Ops {
			if o.Kind != ir.KindCall {
				continue
			}
			callee := nl.calleeOf(f, o)
			if callee == nil {
				continue
			}
			rv := calleeRetValue(callee)
			if rv == nil {
				continue
			}
			rc := nl.CellOf[rv]
			cc := nl.CellOf[o]
			if rc == nil || cc == nil || rc == cc {
				continue
			}
			nl.Nets = append(nl.Nets, &Net{
				ID:     len(nl.Nets),
				Name:   fmt.Sprintf("%s_ret_%d", o.Name, o.ID),
				Width:  o.Bitwidth,
				Driver: rc,
				Sinks:  []Sink{{Cell: cc, Bits: o.Bitwidth}},
				SrcOp:  o,
			})
		}
	}
}

// argPortCell maps a call operand's defining value to the callee port cell
// the value is registered into.
func (nl *Netlist) argPortCell(call *ir.Op, def *ir.Op) *Cell {
	callee := nl.calleeOf(call.Func, call)
	if callee == nil {
		return nil
	}
	ports := callee.PortOps()
	for i, e := range call.Operands {
		if e.Def == def && i < len(ports) {
			return nl.CellOf[ports[i]]
		}
	}
	return nil
}

// calleeRetValue returns the op whose value the callee returns, or nil.
func calleeRetValue(callee *ir.Function) *ir.Op {
	for _, o := range callee.Ops {
		if o.Kind == ir.KindRet && len(o.Operands) > 0 {
			return o.Operands[0].Def
		}
	}
	return nil
}

// routeViaMux redirects an edge feeding a shared unit to the mux cell that
// guards the operand port the edge uses.
func (nl *Netlist) routeViaMux(user, def *ir.Op, userCell *Cell) (*Cell, bool) {
	if userCell.FU == nil || !userCell.FU.Shared() {
		return nil, false
	}
	port := -1
	for i, e := range user.Operands {
		if e.Def == def {
			port = i
			break
		}
	}
	if port < 0 {
		return nil, false
	}
	mc, ok := nl.muxFor[muxKey{userCell.FU, port}]
	if !ok {
		return nil, false
	}
	return mc, true
}

// bankCellFor picks the bank cell a memory op accesses; accesses spread
// round-robin over the partition banks by op ID, approximating affine
// bank-interleaved partitioning.
func (nl *Netlist) bankCellFor(o *ir.Op) *Cell {
	banks := nl.Binding.BankOf[o.Array]
	if len(banks) == 0 {
		return nil
	}
	mb := banks[o.ID%len(banks)]
	return nl.bankFor[mb]
}

func (nl *Netlist) calleeOf(f *ir.Function, call *ir.Op) *ir.Function {
	for _, cf := range f.Callees {
		if call.Name == "call_"+cf.Name && !cf.Inlined {
			return cf
		}
	}
	return nil
}

// FootprintRadii estimates, per cell, the radius in tiles of the region the
// cell's logic and pin wiring physically occupy: large macros spread over
// many tiles, and heavily connected cells (interface register banks, shared
// hubs) fan their pins out over a neighborhood. The router spreads pin
// terminals over this footprint and back-tracing averages congestion labels
// over it.
func (nl *Netlist) FootprintRadii() []int {
	pinWires := make([]float64, len(nl.Cells))
	for _, n := range nl.Nets {
		w := float64(n.Wires())
		pinWires[n.Driver.ID] += w
		for _, s := range n.Sinks {
			pinWires[s.Cell.ID] += w
		}
	}
	const perTile = 16.0 // logic units a CLB tile holds (8 LUT + 16 FF/2)
	radii := make([]int, len(nl.Cells))
	for _, c := range nl.Cells {
		area := float64(c.Res.LUT) + 0.5*float64(c.Res.FF)
		rad := int(math.Sqrt(area/perTile)) / 2
		if wr := int(pinWires[c.ID] / 64); wr > rad {
			rad = wr
		}
		if rad > 8 {
			rad = 8
		}
		radii[c.ID] = rad
	}
	return radii
}

// Stats summarizes the netlist.
type Stats struct {
	Cells, Nets, Pins int
	TotalWires        int
	Res               hls.Resources
}

// ComputeStats tallies the netlist size.
func (nl *Netlist) ComputeStats() Stats {
	var st Stats
	st.Cells = len(nl.Cells)
	st.Nets = len(nl.Nets)
	for _, c := range nl.Cells {
		st.Res = st.Res.Add(c.Res)
	}
	for _, n := range nl.Nets {
		st.Pins += 1 + len(n.Sinks)
		st.TotalWires += n.Wires()
	}
	return st
}
