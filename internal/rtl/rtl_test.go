package rtl

import (
	"strings"
	"testing"

	"repro/internal/hls"
	"repro/internal/ir"
)

func elaborate(t *testing.T, m *ir.Module) *Netlist {
	t.Helper()
	s, err := hls.ScheduleModule(m, hls.DefaultClock())
	if err != nil {
		t.Fatal(err)
	}
	return Elaborate(hls.BindModule(s))
}

func simpleModule() *ir.Module {
	m := ir.NewModule("m")
	b := ir.NewBuilder(m.NewFunction("f"))
	p := b.Port("p", 16)
	a := b.Array("mem", 64, 16, 2)
	v := b.Load(a, nil)
	s := b.Op(ir.KindAdd, 16, v, p)
	b.Store(a, s, nil)
	b.Ret(s)
	return m
}

func TestElaborateCells(t *testing.T) {
	m := simpleModule()
	nl := elaborate(t, m)
	var fu, mem, mux int
	for _, c := range nl.Cells {
		switch c.Kind {
		case CellFU:
			fu++
		case CellMem:
			mem++
		case CellMux:
			mux++
		}
	}
	if mem != 2 {
		t.Errorf("mem cells = %d, want 2 banks", mem)
	}
	if fu == 0 {
		t.Error("no FU cells")
	}
	// Every op maps to a cell.
	for _, o := range m.AllOps() {
		if nl.CellOf[o] == nil {
			t.Errorf("op %v has no cell", o)
		}
	}
}

func TestNetNamesCarryProvenance(t *testing.T) {
	m := simpleModule()
	nl := elaborate(t, m)
	found := 0
	for _, n := range nl.Nets {
		if n.SrcOp == nil {
			continue
		}
		id := ParseNetOpID(n.Name)
		if n.SrcOp.Kind == ir.KindCall {
			continue // return nets reuse the call op's id differently
		}
		if id != n.SrcOp.ID {
			t.Errorf("net %q parses to id %d, want %d", n.Name, id, n.SrcOp.ID)
		}
		found++
	}
	if found == 0 {
		t.Fatal("no provenance nets found")
	}
}

func TestParseNetOpID(t *testing.T) {
	cases := map[string]int{
		"f/add_12_reg_12":   12,
		"top/mul_3_reg_345": 345,
		"f/mux_out":         -1,
		"weird":             -1,
		"x_reg_":            -1,
		"_reg_7":            7, // minimal provenance form still parses
	}
	for name, want := range cases {
		if got := ParseNetOpID(name); got != want {
			t.Errorf("ParseNetOpID(%q) = %d, want %d", name, got, want)
		}
	}
}

func TestNetWires(t *testing.T) {
	n := &Net{Width: 32, Sinks: []Sink{{Bits: 8}, {Bits: 16}}}
	if n.Wires() != 16 {
		t.Errorf("Wires = %d, want max sink tap 16", n.Wires())
	}
	empty := &Net{Width: 9}
	if empty.Wires() != 9 {
		t.Errorf("sink-less net Wires = %d, want width", empty.Wires())
	}
}

func TestMemoryNets(t *testing.T) {
	m := simpleModule()
	nl := elaborate(t, m)
	var bankDrives, bankSinks int
	for _, n := range nl.Nets {
		if n.Driver.Kind == CellMem {
			bankDrives++
		}
		for _, s := range n.Sinks {
			if s.Cell.Kind == CellMem {
				bankSinks++
			}
		}
	}
	if bankDrives == 0 {
		t.Error("no bank->load net")
	}
	if bankSinks == 0 {
		t.Error("no store->bank connection")
	}
}

func TestCallArgsWireToPortCells(t *testing.T) {
	m := ir.NewModule("m")
	top := m.NewFunction("top")
	leaf := m.NewFunction("leaf")
	lb := ir.NewBuilder(leaf)
	x := lb.Port("x", 32)
	lv := lb.Op(ir.KindNot, 32, x)
	lb.Ret(lv)
	tb := ir.NewBuilder(top)
	a := tb.Port("a", 32)
	prod := tb.Op(ir.KindNot, 32, a)
	call := tb.Call(leaf, prod)
	tb.Ret(tb.Op(ir.KindNot, 32, call))

	nl := elaborate(t, m)
	portCell := nl.CellOf[x]
	prodCell := nl.CellOf[prod]
	// The arg net must run producer -> callee port cell, not to the call
	// unit.
	foundArg := false
	for _, n := range nl.Nets {
		if n.Driver != prodCell {
			continue
		}
		for _, s := range n.Sinks {
			if s.Cell == portCell {
				foundArg = true
			}
			if s.Cell == nl.CellOf[call] {
				t.Error("arg net routed to call unit instead of port cell")
			}
		}
	}
	if !foundArg {
		t.Fatal("no producer->port net found")
	}
	// The return net runs callee ret-value cell -> call unit.
	foundRet := false
	for _, n := range nl.Nets {
		if n.Driver == nl.CellOf[lv] {
			for _, s := range n.Sinks {
				if s.Cell == nl.CellOf[call] {
					foundRet = true
				}
			}
		}
	}
	if !foundRet {
		t.Fatal("no return net found")
	}
}

func TestMuxCellsGuardSharedUnits(t *testing.T) {
	m := ir.NewModule("m")
	b := ir.NewBuilder(m.NewFunction("f"))
	cur := b.Port("p", 16)
	for i := 0; i < 4; i++ {
		cur = b.Op(ir.KindMul, 16, cur, cur) // serial -> shared
	}
	nl := elaborate(t, m)
	var muxCells []*Cell
	for _, c := range nl.Cells {
		if c.Kind == CellMux {
			muxCells = append(muxCells, c)
		}
	}
	if len(muxCells) == 0 {
		t.Fatal("shared unit without mux cells")
	}
	// Each mux cell drives exactly its unit.
	for _, mc := range muxCells {
		drives := 0
		for _, n := range nl.Nets {
			if n.Driver == mc {
				drives++
				if n.Sinks[0].Cell.FU != mc.Mux.FU {
					t.Error("mux output net does not feed its unit")
				}
			}
		}
		if drives != 1 {
			t.Errorf("mux cell drives %d nets, want 1", drives)
		}
	}
}

func TestComputeStats(t *testing.T) {
	nl := elaborate(t, simpleModule())
	st := nl.ComputeStats()
	if st.Cells != len(nl.Cells) || st.Nets != len(nl.Nets) {
		t.Error("stats counts wrong")
	}
	if st.Pins < st.Nets {
		t.Error("pins must be at least one per net")
	}
	if st.TotalWires <= 0 {
		t.Error("no wires counted")
	}
}

func TestFootprintRadii(t *testing.T) {
	m := ir.NewModule("m")
	b := ir.NewBuilder(m.NewFunction("f"))
	p := b.Port("p", 32)
	small := b.Op(ir.KindICmp, 1, p, p)
	big := b.Op(ir.KindDiv, 32, p, p) // hundreds of LUTs
	nl := elaborate(t, m)
	radii := nl.FootprintRadii()
	if len(radii) != len(nl.Cells) {
		t.Fatal("radius per cell missing")
	}
	if radii[nl.CellOf[big].ID] <= radii[nl.CellOf[small].ID] {
		t.Errorf("big cell radius %d <= small cell radius %d",
			radii[nl.CellOf[big].ID], radii[nl.CellOf[small].ID])
	}
	for _, r := range radii {
		if r < 0 || r > 8 {
			t.Errorf("radius %d out of [0,8]", r)
		}
	}
}

func TestCellNames(t *testing.T) {
	nl := elaborate(t, simpleModule())
	for _, c := range nl.Cells {
		if !strings.Contains(c.Name, "/") {
			t.Errorf("cell name %q missing module prefix", c.Name)
		}
	}
}
