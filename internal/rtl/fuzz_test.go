package rtl

import "testing"

// FuzzParseNetOpID hammers the provenance parser with arbitrary strings:
// it must never panic and must round-trip every well-formed name.
func FuzzParseNetOpID(f *testing.F) {
	f.Add("top/add_3_reg_3")
	f.Add("_reg_")
	f.Add("")
	f.Add("f/x_reg_18446744073709551615")
	f.Fuzz(func(t *testing.T, name string) {
		id := ParseNetOpID(name)
		if id < -1 {
			t.Fatalf("ParseNetOpID(%q) = %d", name, id)
		}
	})
}
