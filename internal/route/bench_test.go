package route

import (
	"math/rand"
	"testing"
)

// BenchmarkRoute times full negotiated routing of the placed test design
// with the O(1)-pattern/pooled-scratch router ("fast") against the frozen
// pre-optimization router kept in equiv_test.go ("reference"). The
// equivalence tests prove both produce bit-identical congestion maps, so
// the ns/op ratio is the speedup of the router tentpole. Run with
// -benchmem: steady state the fast router allocates only the Result it
// returns (routeAll itself is allocation-free, see
// TestRouteAllSteadyStateAllocs).
func BenchmarkRoute(b *testing.B) {
	pl := placedDesign(b, 3)
	opts := DefaultOptions()
	opts.Iterations = 5

	b.Run("fast", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Route(pl, rand.New(rand.NewSource(7)), opts)
		}
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			refRoute(pl, rand.New(rand.NewSource(7)), opts)
		}
	})
}
