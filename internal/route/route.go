// Package route implements a PathFinder-style iterative global router over
// the placed netlist. Each two-pin connection is routed with the cheapest of
// several L- and Z-shaped patterns under a cost that combines present
// congestion and accumulated history, then the whole design is ripped up and
// rerouted for a few iterations so demand negotiates away from overflowed
// tiles. The result is the per-tile vertical/horizontal congestion map the
// predictor learns to estimate, plus per-connection route statistics the
// timing analyzer turns into congestion-dependent wire delays.
package route

import (
	"context"
	"math/rand"

	"repro/internal/congestion"
	"repro/internal/fpga"
	"repro/internal/place"
	"repro/internal/rtl"
)

// Options tunes the router.
type Options struct {
	// Iterations is the number of rip-up-and-reroute passes.
	Iterations int
	// HistoryGain scales how fast overflowed tiles accumulate history cost.
	HistoryGain float64
	// OverflowPenalty scales the present-congestion cost term.
	OverflowPenalty float64
	// MazeThreshold enables a Dijkstra maze fallback: when the best
	// L/Z pattern for a connection would cross a tile above this
	// utilization ratio (e.g. 1.2 = 120 %), the connection is maze-routed
	// instead. Zero disables the fallback (the calibrated default — the
	// experiments' congestion maps come from pattern routing, as do the
	// paper's Vivado reports before the router gives up and detours).
	MazeThreshold float64
	// MazeSlack inflates the maze search's bounding box in tiles
	// (default 6).
	MazeSlack int
}

// DefaultOptions returns the tuning used by the experiments.
func DefaultOptions() Options {
	return Options{Iterations: 3, HistoryGain: 0.6, OverflowPenalty: 4.0}
}

// PinStats describes the final route of one driver->sink connection.
type PinStats struct {
	Net     *rtl.Net
	Sink    rtl.Sink
	Length  int     // tiles traversed
	AvgUtil float64 // mean demand/capacity along the path (1.0 = 100 %)
	MaxUtil float64 // worst tile on the path
}

// Result is the routing outcome.
type Result struct {
	Map        *congestion.Map
	Pins       []PinStats
	Overflow   int // tile-direction pairs above capacity after the last pass
	Iterations int // rip-up-and-reroute passes executed
}

// Converged reports whether the final pass left no overused crossings.
func (r *Result) Converged() bool { return r.Overflow == 0 }

// Route routes the placement. The rng only breaks ties between equal-cost
// patterns, keeping results deterministic per seed. It is RouteContext
// without cancellation.
func Route(pl *place.Placement, rng *rand.Rand, opts Options) *Result {
	res, _ := RouteContext(context.Background(), pl, rng, opts)
	return res
}

// RouteContext routes the placement under a context, checking cancellation
// between rip-up-and-reroute passes so a deadline terminates within one
// negotiation iteration. On cancellation it returns the context's error
// and a nil Result.
func RouteContext(ctx context.Context, pl *place.Placement, rng *rand.Rand, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Iterations < 1 {
		opts.Iterations = 1
	}
	r := newRouter(pl, opts)
	for it := 0; it < opts.Iterations; it++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		final := it == opts.Iterations-1
		r.reset()
		r.routeAll(rng, final)
		if !final {
			r.accumulateHistory()
		}
	}
	return r.result(), nil
}

type router struct {
	pl   *place.Placement
	dev  *fpga.Device
	opts Options

	// Demand in wires crossing each tile, per direction.
	useV, useH []float64
	histV      []float64
	histH      []float64

	// radius is the footprint radius of each cell: a placed macro of many
	// LUTs occupies a region, so its pins land spread over that region
	// instead of on a single tile (otherwise wide shared interfaces create
	// artificial single-tile hubs no real fabric exhibits).
	radius []int

	pins []PinStats
}

func newRouter(pl *place.Placement, opts Options) *router {
	n := pl.Dev.Cols * pl.Dev.Rows
	r := &router{
		pl:    pl,
		dev:   pl.Dev,
		opts:  opts,
		useV:  make([]float64, n),
		useH:  make([]float64, n),
		histV: make([]float64, n),
		histH: make([]float64, n),
	}
	r.radius = pl.NL.FootprintRadii()
	return r
}

// pinPos returns the routing terminal of a net at a cell: the placed
// location jittered deterministically within the cell's footprint.
func (r *router) pinPos(netID int, c *rtl.Cell) fpga.XY {
	p := r.pl.Pos[c.ID]
	rad := r.radius[c.ID]
	if rad == 0 {
		return p
	}
	h := uint32(netID)*2654435761 ^ uint32(c.ID)*40503
	span := 2*rad + 1
	p.X += int(h%uint32(span)) - rad
	p.Y += int((h/31)%uint32(span)) - rad
	if p.X < 0 {
		p.X = 0
	}
	if p.X >= r.dev.Cols {
		p.X = r.dev.Cols - 1
	}
	if p.Y < 0 {
		p.Y = 0
	}
	if p.Y >= r.dev.Rows {
		p.Y = r.dev.Rows - 1
	}
	return p
}

func (r *router) idx(x, y int) int { return x*r.dev.Rows + y }

func (r *router) reset() {
	for i := range r.useV {
		r.useV[i] = 0
		r.useH[i] = 0
	}
	r.pins = r.pins[:0]
}

func (r *router) accumulateHistory() {
	for i := range r.useV {
		if r.useV[i] > r.dev.VCap {
			r.histV[i] += r.opts.HistoryGain * (r.useV[i] - r.dev.VCap) / r.dev.VCap
		}
		if r.useH[i] > r.dev.HCap {
			r.histH[i] += r.opts.HistoryGain * (r.useH[i] - r.dev.HCap) / r.dev.HCap
		}
	}
}

// edgeCost prices one tile crossing in the given direction for a connection
// of `wires` wires.
func (r *router) edgeCost(vertical bool, x, y int, wires float64) float64 {
	i := r.idx(x, y)
	var use, cap, hist float64
	if vertical {
		use, cap, hist = r.useV[i], r.dev.VCap, r.histV[i]
	} else {
		use, cap, hist = r.useH[i], r.dev.HCap, r.histH[i]
	}
	c := 1.0 + hist
	if over := (use + wires - cap) / cap; over > 0 {
		c += r.opts.OverflowPenalty * over
	}
	return c
}

// pattern is a candidate route: up to three segments through two corners.
type pattern struct {
	corners [2]fpga.XY
	n       int // corners used (1 for L, 2 for Z)
}

func (r *router) routeAll(rng *rand.Rand, final bool) {
	visited := make(map[int]bool)
	for _, n := range r.pl.NL.Nets {
		src := r.pinPos(n.ID, n.Driver)
		wires := float64(n.Wires())
		// A multi-terminal net shares trunk wiring between its branches:
		// each (tile, direction) crossing consumes the net's wires once no
		// matter how many sinks pass through it, approximating a Steiner
		// tree. `visited` tracks the crossings this net already owns.
		for k := range visited {
			delete(visited, k)
		}
		for _, s := range n.Sinks {
			dst := r.pinPos(n.ID, s.Cell)
			ps := r.routePin(rng, src, dst, wires, visited)
			if final {
				ps.Net = n
				ps.Sink = s
				r.pins = append(r.pins, ps)
			}
		}
	}
}

// routePin picks the cheapest pattern between src and dst given the net's
// already-owned crossings, commits its usage, and returns its statistics.
// With MazeThreshold set, connections whose best pattern still crosses a
// badly overfull tile fall back to Dijkstra maze routing.
func (r *router) routePin(rng *rand.Rand, src, dst fpga.XY, wires float64, visited map[int]bool) PinStats {
	cands := r.candidates(rng, src, dst)
	bestCost := -1.0
	var best pattern
	for _, p := range cands {
		c := r.patternCost(src, dst, p, wires, visited)
		if bestCost < 0 || c < bestCost {
			bestCost = c
			best = p
		}
	}
	if r.opts.MazeThreshold > 0 && r.patternWorstUtil(src, dst, best, wires) > r.opts.MazeThreshold {
		slack := r.opts.MazeSlack
		if slack <= 0 {
			slack = 6
		}
		if path := r.mazeRoute(src, dst, wires, visited, slack); path != nil {
			return r.commitCrossings(path, wires, visited)
		}
	}
	return r.commit(src, dst, best, wires, visited)
}

// patternWorstUtil predicts the worst post-commit utilization along a
// pattern.
func (r *router) patternWorstUtil(src, dst fpga.XY, p pattern, wires float64) float64 {
	worst := 0.0
	walk(src, dst, p, func(vertical bool, x, y int) {
		i := r.idx(x, y)
		var u float64
		if vertical {
			u = (r.useV[i] + wires) / r.dev.VCap
		} else {
			u = (r.useH[i] + wires) / r.dev.HCap
		}
		if u > worst {
			worst = u
		}
	})
	return worst
}

// commitCrossings books usage along an explicit crossing list (maze paths).
func (r *router) commitCrossings(path []crossing, wires float64, visited map[int]bool) PinStats {
	var length int
	var sumUtil, maxUtil float64
	for _, c := range path {
		i := r.idx(c.x, c.y)
		key := r.crossKey(c.vertical, c.x, c.y)
		if !visited[key] {
			visited[key] = true
			if c.vertical {
				r.useV[i] += wires
			} else {
				r.useH[i] += wires
			}
		}
		var u float64
		if c.vertical {
			u = r.useV[i] / r.dev.VCap
		} else {
			u = r.useH[i] / r.dev.HCap
		}
		sumUtil += u
		if u > maxUtil {
			maxUtil = u
		}
		length++
	}
	ps := PinStats{Length: length, MaxUtil: maxUtil}
	if length > 0 {
		ps.AvgUtil = sumUtil / float64(length)
	}
	return ps
}

// crossKey packs a (direction, tile) crossing into one map key.
func (r *router) crossKey(vertical bool, x, y int) int {
	k := r.idx(x, y) * 2
	if vertical {
		k++
	}
	return k
}

// candidates proposes the two L patterns plus two Z patterns through a
// random interior coordinate.
func (r *router) candidates(rng *rand.Rand, src, dst fpga.XY) []pattern {
	ps := []pattern{
		{corners: [2]fpga.XY{{X: dst.X, Y: src.Y}}, n: 1},
		{corners: [2]fpga.XY{{X: src.X, Y: dst.Y}}, n: 1},
	}
	if src.X != dst.X && src.Y != dst.Y {
		mx := midpoint(rng, src.X, dst.X)
		my := midpoint(rng, src.Y, dst.Y)
		ps = append(ps,
			pattern{corners: [2]fpga.XY{{X: mx, Y: src.Y}, {X: mx, Y: dst.Y}}, n: 2},
			pattern{corners: [2]fpga.XY{{X: src.X, Y: my}, {X: dst.X, Y: my}}, n: 2},
		)
	}
	return ps
}

func midpoint(rng *rand.Rand, a, b int) int {
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi-lo <= 1 {
		return lo
	}
	return lo + 1 + rng.Intn(hi-lo-1)
}

// walk visits each tile crossing of the pattern.
func walk(src, dst fpga.XY, p pattern, visit func(vertical bool, x, y int)) {
	cur := src
	via := append([]fpga.XY{}, p.corners[:p.n]...)
	via = append(via, dst)
	for _, next := range via {
		// Horizontal leg then vertical leg to reach `next`.
		step := 1
		if next.X < cur.X {
			step = -1
		}
		for x := cur.X; x != next.X; x += step {
			visit(false, x, cur.Y)
		}
		cur.X = next.X
		step = 1
		if next.Y < cur.Y {
			step = -1
		}
		for y := cur.Y; y != next.Y; y += step {
			visit(true, cur.X, y)
		}
		cur.Y = next.Y
	}
}

func (r *router) patternCost(src, dst fpga.XY, p pattern, wires float64, visited map[int]bool) float64 {
	cost := 0.0
	walk(src, dst, p, func(vertical bool, x, y int) {
		if visited[r.crossKey(vertical, x, y)] {
			return // reusing the net's own trunk is free
		}
		cost += r.edgeCost(vertical, x, y, wires)
	})
	return cost
}

func (r *router) commit(src, dst fpga.XY, p pattern, wires float64, visited map[int]bool) PinStats {
	var length int
	var sumUtil, maxUtil float64
	walk(src, dst, p, func(vertical bool, x, y int) {
		i := r.idx(x, y)
		key := r.crossKey(vertical, x, y)
		if !visited[key] {
			visited[key] = true
			if vertical {
				r.useV[i] += wires
			} else {
				r.useH[i] += wires
			}
		}
		var u float64
		if vertical {
			u = r.useV[i] / r.dev.VCap
		} else {
			u = r.useH[i] / r.dev.HCap
		}
		sumUtil += u
		if u > maxUtil {
			maxUtil = u
		}
		length++
	})
	ps := PinStats{Length: length, MaxUtil: maxUtil}
	if length > 0 {
		ps.AvgUtil = sumUtil / float64(length)
	}
	return ps
}

func (r *router) result() *Result {
	m := congestion.New(r.dev)
	overflow := 0
	for x := 0; x < r.dev.Cols; x++ {
		for y := 0; y < r.dev.Rows; y++ {
			i := r.idx(x, y)
			m.V[x][y] = 100 * r.useV[i] / r.dev.VCap
			m.H[x][y] = 100 * r.useH[i] / r.dev.HCap
			if r.useV[i] > r.dev.VCap {
				overflow++
			}
			if r.useH[i] > r.dev.HCap {
				overflow++
			}
		}
	}
	return &Result{
		Map:        m,
		Pins:       append([]PinStats(nil), r.pins...),
		Overflow:   overflow,
		Iterations: r.opts.Iterations,
	}
}
