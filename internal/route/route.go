// Package route implements a PathFinder-style iterative global router over
// the placed netlist. Each two-pin connection is routed with the cheapest of
// several L- and Z-shaped patterns under a cost that combines present
// congestion and accumulated history, then the whole design is ripped up and
// rerouted for a few iterations so demand negotiates away from overflowed
// tiles. The result is the per-tile vertical/horizontal congestion map the
// predictor learns to estimate, plus per-connection route statistics the
// timing analyzer turns into congestion-dependent wire delays.
//
// The inner loops are optimized but bit-exact: a clean L/Z candidate — no
// history, no tile near capacity, no overlap with the net's own trunk —
// costs exactly 1.0 per crossing, so its total is the crossing count and
// the per-tile walk is skipped entirely (clean-ness is answered in O(1)
// from per-row/per-column summaries rebuilt each rip-up pass). Any pattern
// that is not provably clean is priced by the original in-order fold, so
// every cost the router compares is bit-identical to the reference
// implementation and routing decisions never change. All scratch state
// lives in a pooled arena reused across passes and across flows; the
// steady-state routing loop performs zero heap allocations (see
// TestRouteAllSteadyStateAllocs).
package route

import (
	"context"
	"math/rand"
	"sync"

	"repro/internal/congestion"
	"repro/internal/fpga"
	"repro/internal/place"
	"repro/internal/rtl"
)

// Options tunes the router.
type Options struct {
	// Iterations is the number of rip-up-and-reroute passes.
	Iterations int
	// HistoryGain scales how fast overflowed tiles accumulate history cost.
	HistoryGain float64
	// OverflowPenalty scales the present-congestion cost term.
	OverflowPenalty float64
	// MazeThreshold enables a Dijkstra maze fallback: when the best
	// L/Z pattern for a connection would cross a tile above this
	// utilization ratio (e.g. 1.2 = 120 %), the connection is maze-routed
	// instead. Zero disables the fallback (the calibrated default — the
	// experiments' congestion maps come from pattern routing, as do the
	// paper's Vivado reports before the router gives up and detours).
	MazeThreshold float64
	// MazeSlack inflates the maze search's bounding box in tiles
	// (default 6).
	MazeSlack int
}

// DefaultOptions returns the tuning used by the experiments.
func DefaultOptions() Options {
	return Options{Iterations: 3, HistoryGain: 0.6, OverflowPenalty: 4.0}
}

// PinStats describes the final route of one driver->sink connection.
type PinStats struct {
	Net     *rtl.Net
	Sink    rtl.Sink
	Length  int     // tiles traversed
	AvgUtil float64 // mean demand/capacity along the path (1.0 = 100 %)
	MaxUtil float64 // worst tile on the path
}

// Result is the routing outcome.
type Result struct {
	Map        *congestion.Map
	Pins       []PinStats
	Overflow   int // tile-direction pairs above capacity after the last pass
	Iterations int // rip-up-and-reroute passes executed
}

// Converged reports whether the final pass left no overused crossings.
func (r *Result) Converged() bool { return r.Overflow == 0 }

// Route routes the placement. The rng only breaks ties between equal-cost
// patterns, keeping results deterministic per seed. It is RouteContext
// without cancellation.
func Route(pl *place.Placement, rng *rand.Rand, opts Options) *Result {
	res, _ := RouteContext(context.Background(), pl, rng, opts)
	return res
}

// RouteContext routes the placement under a context, checking cancellation
// between rip-up-and-reroute passes so a deadline terminates within one
// negotiation iteration. On cancellation it returns the context's error
// and a nil Result.
func RouteContext(ctx context.Context, pl *place.Placement, rng *rand.Rand, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Iterations < 1 {
		opts.Iterations = 1
	}
	r := newRouter(pl, opts)
	defer r.release()
	for it := 0; it < opts.Iterations; it++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		final := it == opts.Iterations-1
		r.reset()
		r.routeAll(rng, final)
		if !final {
			r.accumulateHistory()
		}
	}
	return r.result(), nil
}

// scratch is the router's reusable working memory: demand, history, the
// per-net trunk stamps, the per-pass clean-row summaries and the maze
// buffers. It is pooled so repeated flows (label runs, retries, dataset
// builds) route without reallocating — newRouter acquires an arena of the
// right geometry and release returns it.
type scratch struct {
	cols, rows int

	// Demand in wires crossing each tile, per direction.
	useV, useH []float64
	histV      []float64
	histH      []float64

	// visitStamp marks the crossings the current net already owns
	// (stamp == the net's stamp), replacing a per-net map.
	visitStamp []int32
	// trunkHRow / trunkVCol are stamped when the current net commits a
	// crossing in that row/column, so the fast path can prove a leg does
	// not touch the net's own trunk without walking it.
	trunkHRow []int32
	trunkVCol []int32

	// hotHRow / hotVCol count tiles in the row/column whose demand is
	// within maxWires of capacity: a zero count proves no crossing there
	// can incur an overflow term for any net this pass. Demand only grows
	// within a pass, so the counters are bumped on upward transitions at
	// commit time and rebuilt on reset.
	hotHRow []int32
	hotVCol []int32

	// dirtyH[x*rows+y] counts history-carrying H crossings at x' < x in
	// row y (dirtyV likewise per column), so a leg's history exposure is
	// a prefix-sum difference. History only changes between passes, so
	// these are rebuilt once per reset.
	dirtyH []int32
	dirtyV []int32

	pins []PinStats

	// Maze scratch (used only when Options.MazeThreshold > 0).
	mazeDist []float64
	mazeFrom []mazeStep
	mazeDone []bool
	mazeQ    mazeQueue
	mazePath []crossing
}

var scratchPool sync.Pool

// acquireScratch returns an arena for the given grid, reusing a pooled one
// when the geometry matches. Flow-scoped state (history, stamps) starts
// zeroed; pass-scoped state is initialized by reset.
func acquireScratch(cols, rows int) *scratch {
	n := cols * rows
	s, _ := scratchPool.Get().(*scratch)
	if s == nil || s.cols != cols || s.rows != rows {
		s = &scratch{
			cols: cols, rows: rows,
			useV:       make([]float64, n),
			useH:       make([]float64, n),
			histV:      make([]float64, n),
			histH:      make([]float64, n),
			visitStamp: make([]int32, 2*n),
			trunkHRow:  make([]int32, rows),
			trunkVCol:  make([]int32, cols),
			hotHRow:    make([]int32, rows),
			hotVCol:    make([]int32, cols),
			dirtyH:     make([]int32, (cols+1)*rows),
			dirtyV:     make([]int32, cols*(rows+1)),
		}
		return s
	}
	for i := range s.histV {
		s.histV[i] = 0
		s.histH[i] = 0
	}
	for i := range s.visitStamp {
		s.visitStamp[i] = 0
	}
	for i := range s.trunkHRow {
		s.trunkHRow[i] = 0
	}
	for i := range s.trunkVCol {
		s.trunkVCol[i] = 0
	}
	return s
}

type router struct {
	pl   *place.Placement
	dev  *fpga.Device
	opts Options

	rows     int
	maxWires float64 // widest net in the design, for the hot-tile bound
	stamp    int32   // current net's stamp for visitStamp/trunk arrays
	cand     [4]pattern

	// radius is the footprint radius of each cell: a placed macro of many
	// LUTs occupies a region, so its pins land spread over that region
	// instead of on a single tile (otherwise wide shared interfaces create
	// artificial single-tile hubs no real fabric exhibits).
	radius []int

	*scratch
}

func newRouter(pl *place.Placement, opts Options) *router {
	r := &router{
		pl:   pl,
		dev:  pl.Dev,
		opts: opts,
		rows: pl.Dev.Rows,
		// Stamps start above the zeroed visitStamp array so a fresh router
		// owns no crossings; routeAll bumps the stamp before each net.
		stamp:   1,
		scratch: acquireScratch(pl.Dev.Cols, pl.Dev.Rows),
	}
	for _, n := range pl.NL.Nets {
		if w := float64(n.Wires()); w > r.maxWires {
			r.maxWires = w
		}
	}
	r.radius = pl.NL.FootprintRadii()
	return r
}

// release returns the router's arena to the pool. The caller must be done
// with everything derived from it (result() copies what it keeps).
func (r *router) release() {
	s := r.scratch
	r.scratch = nil
	s.pins = s.pins[:0]
	scratchPool.Put(s)
}

// pinPos returns the routing terminal of a net at a cell: the placed
// location jittered deterministically within the cell's footprint.
func (r *router) pinPos(netID int, c *rtl.Cell) fpga.XY {
	p := r.pl.Pos[c.ID]
	rad := r.radius[c.ID]
	if rad == 0 {
		return p
	}
	h := uint32(netID)*2654435761 ^ uint32(c.ID)*40503
	span := 2*rad + 1
	p.X += int(h%uint32(span)) - rad
	p.Y += int((h/31)%uint32(span)) - rad
	if p.X < 0 {
		p.X = 0
	}
	if p.X >= r.dev.Cols {
		p.X = r.dev.Cols - 1
	}
	if p.Y < 0 {
		p.Y = 0
	}
	if p.Y >= r.dev.Rows {
		p.Y = r.dev.Rows - 1
	}
	return p
}

func (r *router) idx(x, y int) int { return x*r.rows + y }

// reset starts a rip-up pass: demand returns to zero and the per-pass
// summaries (hot counters, history prefix sums) are rebuilt.
func (r *router) reset() {
	for i := range r.useV {
		r.useV[i] = 0
		r.useH[i] = 0
	}
	r.pins = r.pins[:0]

	// With zero demand a tile is already hot only if the widest net alone
	// would overflow it — degenerate, but handled so the fast path stays
	// conservative.
	var hotH, hotV int32
	if r.maxWires > r.dev.HCap {
		hotH = int32(r.dev.Cols)
	}
	if r.maxWires > r.dev.VCap {
		hotV = int32(r.rows)
	}
	for y := range r.hotHRow {
		r.hotHRow[y] = hotH
	}
	for x := range r.hotVCol {
		r.hotVCol[x] = hotV
	}

	// History prefix counts: dirtyH[x*rows+y] = #{x' < x : histH[x',y] != 0}.
	cols, rows := r.dev.Cols, r.rows
	for y := 0; y < rows; y++ {
		r.dirtyH[y] = 0
	}
	for x := 0; x < cols; x++ {
		base := x * rows
		for y := 0; y < rows; y++ {
			d := r.dirtyH[base+y]
			if r.histH[base+y] != 0 {
				d++
			}
			r.dirtyH[base+rows+y] = d
		}
	}
	// dirtyV[x*(rows+1)+y] = #{y' < y : histV[x,y'] != 0}.
	for x := 0; x < cols; x++ {
		vb := x * (rows + 1)
		hb := x * rows
		d := int32(0)
		r.dirtyV[vb] = 0
		for y := 0; y < rows; y++ {
			if r.histV[hb+y] != 0 {
				d++
			}
			r.dirtyV[vb+y+1] = d
		}
	}
}

func (r *router) accumulateHistory() {
	for i := range r.useV {
		if r.useV[i] > r.dev.VCap {
			r.histV[i] += r.opts.HistoryGain * (r.useV[i] - r.dev.VCap) / r.dev.VCap
		}
		if r.useH[i] > r.dev.HCap {
			r.histH[i] += r.opts.HistoryGain * (r.useH[i] - r.dev.HCap) / r.dev.HCap
		}
	}
}

// edgeCostH prices one horizontal tile crossing for a connection of `wires`
// wires. The overflow branch tests use+wires > cap directly — equivalent to
// the reference's over > 0 test (for finite floats a-b > 0 iff a > b) —
// and evaluates the division only on overflowed tiles.
func (r *router) edgeCostH(x, y int, wires float64) float64 {
	i := x*r.rows + y
	c := 1.0 + r.histH[i]
	if use := r.useH[i]; use+wires > r.dev.HCap {
		c += r.opts.OverflowPenalty * ((use + wires - r.dev.HCap) / r.dev.HCap)
	}
	return c
}

func (r *router) edgeCostV(x, y int, wires float64) float64 {
	i := x*r.rows + y
	c := 1.0 + r.histV[i]
	if use := r.useV[i]; use+wires > r.dev.VCap {
		c += r.opts.OverflowPenalty * ((use + wires - r.dev.VCap) / r.dev.VCap)
	}
	return c
}

// edgeCost prices one tile crossing in the given direction (maze fallback
// entry point; the pattern loops call the direction-specific versions).
func (r *router) edgeCost(vertical bool, x, y int, wires float64) float64 {
	if vertical {
		return r.edgeCostV(x, y, wires)
	}
	return r.edgeCostH(x, y, wires)
}

// pattern is a candidate route: up to three segments through two corners.
type pattern struct {
	corners [2]fpga.XY
	n       int // corners used (1 for L, 2 for Z)
}

func (r *router) routeAll(rng *rand.Rand, final bool) {
	for _, n := range r.pl.NL.Nets {
		src := r.pinPos(n.ID, n.Driver)
		wires := float64(n.Wires())
		// A multi-terminal net shares trunk wiring between its branches:
		// each (tile, direction) crossing consumes the net's wires once no
		// matter how many sinks pass through it, approximating a Steiner
		// tree. Crossings stamped with the net's stamp are the ones it
		// already owns; bumping the stamp forgets them in O(1).
		r.stamp++
		for _, s := range n.Sinks {
			dst := r.pinPos(n.ID, s.Cell)
			ps := r.routePin(rng, src, dst, wires, final)
			if final {
				ps.Net = n
				ps.Sink = s
				r.pins = append(r.pins, ps)
			}
		}
	}
}

// routePin picks the cheapest pattern between src and dst given the net's
// already-owned crossings, commits its usage, and returns its statistics.
// With MazeThreshold set, connections whose best pattern still crosses a
// badly overfull tile fall back to Dijkstra maze routing.
func (r *router) routePin(rng *rand.Rand, src, dst fpga.XY, wires float64, final bool) PinStats {
	cands := r.candidates(rng, src, dst)
	bestCost := -1.0
	var best pattern
	for _, p := range cands {
		c, ok := r.patternFast(src, dst, p)
		if !ok {
			c = r.patternCost(src, dst, p, wires)
		}
		if bestCost < 0 || c < bestCost {
			bestCost = c
			best = p
		}
	}
	if r.opts.MazeThreshold > 0 && r.patternWorstUtil(src, dst, best, wires) > r.opts.MazeThreshold {
		slack := r.opts.MazeSlack
		if slack <= 0 {
			slack = 6
		}
		if path := r.mazeRoute(src, dst, wires, slack); path != nil {
			return r.commitCrossings(path, wires, final)
		}
	}
	return r.commit(src, dst, best, wires, final)
}

// patternFast prices a pattern in O(legs) when every leg is provably clean:
// no history, no tile within maxWires of capacity, and no overlap with the
// net's own trunk. Every crossing then costs exactly 1.0, and since a
// float64 accumulator of successive +1.0s stays an exact integer, the
// crossing count equals the reference fold bit-for-bit. Any leg that fails
// a check returns ok=false and the caller falls back to the exact walk.
func (r *router) patternFast(src, dst fpga.XY, p pattern) (float64, bool) {
	cur := src
	total := 0
	rows := r.rows
	for k := 0; k <= p.n; k++ {
		next := dst
		if k < p.n {
			next = p.corners[k]
		}
		if next.X != cur.X {
			lo, hi := cur.X, next.X
			if lo > hi {
				lo, hi = hi, lo
			}
			y := cur.Y
			if r.hotHRow[y] != 0 || r.trunkHRow[y] == r.stamp ||
				r.dirtyH[hi*rows+y] != r.dirtyH[lo*rows+y] {
				return 0, false
			}
			total += hi - lo
			cur.X = next.X
		}
		if next.Y != cur.Y {
			lo, hi := cur.Y, next.Y
			if lo > hi {
				lo, hi = hi, lo
			}
			x := cur.X
			if r.hotVCol[x] != 0 || r.trunkVCol[x] == r.stamp ||
				r.dirtyV[x*(rows+1)+hi] != r.dirtyV[x*(rows+1)+lo] {
				return 0, false
			}
			total += hi - lo
			cur.Y = next.Y
		}
	}
	return float64(total), true
}

// patternCost is the exact reference pricing: crossings are folded in walk
// order, own-trunk crossings contribute nothing.
func (r *router) patternCost(src, dst fpga.XY, p pattern, wires float64) float64 {
	cost := 0.0
	cur := src
	rows := r.rows
	for k := 0; k <= p.n; k++ {
		next := dst
		if k < p.n {
			next = p.corners[k]
		}
		step := 1
		if next.X < cur.X {
			step = -1
		}
		for x := cur.X; x != next.X; x += step {
			if r.visitStamp[(x*rows+cur.Y)*2] == r.stamp {
				continue // reusing the net's own trunk is free
			}
			cost += r.edgeCostH(x, cur.Y, wires)
		}
		cur.X = next.X
		step = 1
		if next.Y < cur.Y {
			step = -1
		}
		for y := cur.Y; y != next.Y; y += step {
			if r.visitStamp[(cur.X*rows+y)*2+1] == r.stamp {
				continue
			}
			cost += r.edgeCostV(cur.X, y, wires)
		}
		cur.Y = next.Y
	}
	return cost
}

// patternWorstUtil predicts the worst post-commit utilization along a
// pattern.
func (r *router) patternWorstUtil(src, dst fpga.XY, p pattern, wires float64) float64 {
	worst := 0.0
	walk(src, dst, p, func(vertical bool, x, y int) {
		i := r.idx(x, y)
		var u float64
		if vertical {
			u = (r.useV[i] + wires) / r.dev.VCap
		} else {
			u = (r.useH[i] + wires) / r.dev.HCap
		}
		if u > worst {
			worst = u
		}
	})
	return worst
}

// bookH charges `wires` to the H crossing at (x,y) if the current net does
// not already own it, maintaining the hot-row counter and the net's trunk
// stamps. Returns the tile's demand after booking.
func (r *router) bookH(x, y int, wires float64) float64 {
	i := x*r.rows + y
	if key := i * 2; r.visitStamp[key] != r.stamp {
		r.visitStamp[key] = r.stamp
		use := r.useH[i]
		wasHot := use+r.maxWires > r.dev.HCap
		use += wires
		r.useH[i] = use
		if !wasHot && use+r.maxWires > r.dev.HCap {
			r.hotHRow[y]++
		}
		r.trunkHRow[y] = r.stamp
	}
	return r.useH[i]
}

func (r *router) bookV(x, y int, wires float64) float64 {
	i := x*r.rows + y
	if key := i*2 + 1; r.visitStamp[key] != r.stamp {
		r.visitStamp[key] = r.stamp
		use := r.useV[i]
		wasHot := use+r.maxWires > r.dev.VCap
		use += wires
		r.useV[i] = use
		if !wasHot && use+r.maxWires > r.dev.VCap {
			r.hotVCol[x]++
		}
		r.trunkVCol[x] = r.stamp
	}
	return r.useV[i]
}

// commitCrossings books usage along an explicit crossing list (maze paths).
// Per-pin statistics are only assembled on the final pass.
func (r *router) commitCrossings(path []crossing, wires float64, final bool) PinStats {
	var length int
	var sumUtil, maxUtil float64
	for _, c := range path {
		var use, cap float64
		if c.vertical {
			use, cap = r.bookV(c.x, c.y, wires), r.dev.VCap
		} else {
			use, cap = r.bookH(c.x, c.y, wires), r.dev.HCap
		}
		if final {
			u := use / cap
			sumUtil += u
			if u > maxUtil {
				maxUtil = u
			}
		}
		length++
	}
	ps := PinStats{Length: length, MaxUtil: maxUtil}
	if final && length > 0 {
		ps.AvgUtil = sumUtil / float64(length)
	}
	return ps
}

// candidates proposes the two L patterns plus two Z patterns through a
// random interior coordinate, into the router's reusable buffer.
func (r *router) candidates(rng *rand.Rand, src, dst fpga.XY) []pattern {
	r.cand[0] = pattern{corners: [2]fpga.XY{{X: dst.X, Y: src.Y}}, n: 1}
	r.cand[1] = pattern{corners: [2]fpga.XY{{X: src.X, Y: dst.Y}}, n: 1}
	nc := 2
	if src.X != dst.X && src.Y != dst.Y {
		mx := midpoint(rng, src.X, dst.X)
		my := midpoint(rng, src.Y, dst.Y)
		r.cand[2] = pattern{corners: [2]fpga.XY{{X: mx, Y: src.Y}, {X: mx, Y: dst.Y}}, n: 2}
		r.cand[3] = pattern{corners: [2]fpga.XY{{X: src.X, Y: my}, {X: dst.X, Y: my}}, n: 2}
		nc = 4
	}
	return r.cand[:nc]
}

func midpoint(rng *rand.Rand, a, b int) int {
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi-lo <= 1 {
		return lo
	}
	return lo + 1 + rng.Intn(hi-lo-1)
}

// walk visits each tile crossing of the pattern (diagnostic paths only; the
// hot loops iterate legs inline).
func walk(src, dst fpga.XY, p pattern, visit func(vertical bool, x, y int)) {
	cur := src
	via := append([]fpga.XY{}, p.corners[:p.n]...)
	via = append(via, dst)
	for _, next := range via {
		// Horizontal leg then vertical leg to reach `next`.
		step := 1
		if next.X < cur.X {
			step = -1
		}
		for x := cur.X; x != next.X; x += step {
			visit(false, x, cur.Y)
		}
		cur.X = next.X
		step = 1
		if next.Y < cur.Y {
			step = -1
		}
		for y := cur.Y; y != next.Y; y += step {
			visit(true, cur.X, y)
		}
		cur.Y = next.Y
	}
}

// commit books the chosen pattern's usage in walk order. Per-pin statistics
// are only assembled on the final pass — earlier passes route solely to
// produce demand for history accumulation.
func (r *router) commit(src, dst fpga.XY, p pattern, wires float64, final bool) PinStats {
	var length int
	var sumUtil, maxUtil float64
	cur := src
	for k := 0; k <= p.n; k++ {
		next := dst
		if k < p.n {
			next = p.corners[k]
		}
		step := 1
		if next.X < cur.X {
			step = -1
		}
		for x := cur.X; x != next.X; x += step {
			use := r.bookH(x, cur.Y, wires)
			if final {
				u := use / r.dev.HCap
				sumUtil += u
				if u > maxUtil {
					maxUtil = u
				}
			}
			length++
		}
		cur.X = next.X
		step = 1
		if next.Y < cur.Y {
			step = -1
		}
		for y := cur.Y; y != next.Y; y += step {
			use := r.bookV(cur.X, y, wires)
			if final {
				u := use / r.dev.VCap
				sumUtil += u
				if u > maxUtil {
					maxUtil = u
				}
			}
			length++
		}
		cur.Y = next.Y
	}
	ps := PinStats{Length: length, MaxUtil: maxUtil}
	if final && length > 0 {
		ps.AvgUtil = sumUtil / float64(length)
	}
	return ps
}

func (r *router) result() *Result {
	m := congestion.New(r.dev)
	overflow := 0
	for x := 0; x < r.dev.Cols; x++ {
		for y := 0; y < r.dev.Rows; y++ {
			i := r.idx(x, y)
			m.V[x][y] = 100 * r.useV[i] / r.dev.VCap
			m.H[x][y] = 100 * r.useH[i] / r.dev.HCap
			if r.useV[i] > r.dev.VCap {
				overflow++
			}
			if r.useH[i] > r.dev.HCap {
				overflow++
			}
		}
	}
	return &Result{
		Map:        m,
		Pins:       append([]PinStats(nil), r.pins...),
		Overflow:   overflow,
		Iterations: r.opts.Iterations,
	}
}
