package route

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fpga"
	"repro/internal/hls"
	"repro/internal/ir"
	"repro/internal/place"
	"repro/internal/rtl"
)

func placedDesign(t testing.TB, seed int64) *place.Placement {
	t.Helper()
	m := ir.NewModule("m")
	b := ir.NewBuilder(m.NewFunction("f"))
	p := b.Port("p", 16)
	a := b.Array("mem", 64, 16, 4)
	var outs []*ir.Op
	for i := 0; i < 24; i++ {
		v := b.Load(a, nil)
		outs = append(outs, b.Op(ir.KindAdd, 16, v, p))
	}
	b.Ret(b.ReduceTree(ir.KindAdd, 16, outs))
	s, err := hls.ScheduleModule(m, hls.DefaultClock())
	if err != nil {
		t.Fatal(err)
	}
	nl := rtl.Elaborate(hls.BindModule(s))
	opts := place.DefaultOptions()
	opts.Moves = 4000
	pl, err := place.Place(nl, fpga.XC7Z020(), rand.New(rand.NewSource(seed)), opts)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestRouteProducesFiniteMap(t *testing.T) {
	pl := placedDesign(t, 1)
	rr := Route(pl, rand.New(rand.NewSource(1)), DefaultOptions())
	dev := pl.Dev
	for x := 0; x < dev.Cols; x++ {
		for y := 0; y < dev.Rows; y++ {
			if rr.Map.V[x][y] < 0 || rr.Map.H[x][y] < 0 {
				t.Fatalf("negative congestion at (%d,%d)", x, y)
			}
		}
	}
	if rr.Map.Summarize(0).Max == 0 && rr.Map.Summarize(1).Max == 0 {
		t.Fatal("routing produced no demand at all")
	}
}

func TestRoutePinStatsPerSink(t *testing.T) {
	pl := placedDesign(t, 2)
	rr := Route(pl, rand.New(rand.NewSource(2)), DefaultOptions())
	wantPins := 0
	for _, n := range pl.NL.Nets {
		wantPins += len(n.Sinks)
	}
	if len(rr.Pins) != wantPins {
		t.Fatalf("pin stats = %d, want %d", len(rr.Pins), wantPins)
	}
	for _, p := range rr.Pins {
		if p.Net == nil || p.Sink.Cell == nil {
			t.Fatal("pin stats missing provenance")
		}
		if p.Length < 0 || p.AvgUtil < 0 || p.MaxUtil < p.AvgUtil-1e-9 {
			t.Fatalf("malformed pin stats %+v", p)
		}
	}
}

func TestRouteDeterministicPerSeed(t *testing.T) {
	pl := placedDesign(t, 3)
	r1 := Route(pl, rand.New(rand.NewSource(9)), DefaultOptions())
	r2 := Route(pl, rand.New(rand.NewSource(9)), DefaultOptions())
	for x := range r1.Map.V {
		for y := range r1.Map.V[x] {
			if r1.Map.V[x][y] != r2.Map.V[x][y] || r1.Map.H[x][y] != r2.Map.H[x][y] {
				t.Fatalf("maps differ at (%d,%d) across identical seeds", x, y)
			}
		}
	}
}

func TestReroutingReducesOverflow(t *testing.T) {
	pl := placedDesign(t, 4)
	one := Route(pl, rand.New(rand.NewSource(5)), Options{Iterations: 1, HistoryGain: 0.6, OverflowPenalty: 4})
	three := Route(pl, rand.New(rand.NewSource(5)), Options{Iterations: 3, HistoryGain: 0.6, OverflowPenalty: 4})
	if three.Overflow > one.Overflow {
		t.Errorf("negotiation increased overflow: %d -> %d", one.Overflow, three.Overflow)
	}
}

// TestWalkConnectsEndpoints: every candidate pattern's walk makes exactly
// the Manhattan distance number of crossings (L and Z routes are detour
// free).
func TestWalkConnectsEndpoints(t *testing.T) {
	f := func(ax, ay, bx, by uint8, seed int64) bool {
		src := fpga.XY{X: int(ax) % 60, Y: int(ay) % 110}
		dst := fpga.XY{X: int(bx) % 60, Y: int(by) % 110}
		rng := rand.New(rand.NewSource(seed))
		r := &router{dev: fpga.XC7Z020()}
		for _, p := range r.candidates(rng, src, dst) {
			steps := 0
			walk(src, dst, p, func(vertical bool, x, y int) {
				if x < 0 || x >= 60 || y < 0 || y >= 110 {
					t.Errorf("walk left the die at (%d,%d)", x, y)
				}
				steps++
			})
			if steps != fpga.ManhattanDist(src, dst) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTrunkSharingCountsNetOnce(t *testing.T) {
	// A net with many sinks on the same far-away tile must consume its
	// wires once per crossing, not once per sink.
	m := ir.NewModule("m")
	b := ir.NewBuilder(m.NewFunction("f"))
	p := b.Port("p", 32)
	var sinks []*ir.Op
	for i := 0; i < 10; i++ {
		sinks = append(sinks, b.Op(ir.KindNot, 32, p))
	}
	_ = sinks
	s, err := hls.ScheduleModule(m, hls.DefaultClock())
	if err != nil {
		t.Fatal(err)
	}
	nl := rtl.Elaborate(hls.BindModule(s))
	dev := fpga.XC7Z020()
	pl := &place.Placement{Dev: dev, NL: nl, Pos: make([]fpga.XY, len(nl.Cells))}
	// Driver at origin, every sink stacked on one far tile.
	for _, c := range nl.Cells {
		pl.Pos[c.ID] = fpga.XY{X: 40, Y: 40}
	}
	var driver *rtl.Cell
	for _, n := range nl.Nets {
		driver = n.Driver
	}
	pl.Pos[driver.ID] = fpga.XY{X: 10, Y: 40}
	rr := Route(pl, rand.New(rand.NewSource(1)), Options{Iterations: 1})
	// Total horizontal demand along the shared row: each crossing carries
	// the bus once (32 wires), despite 10 sinks.
	maxH := rr.Map.Summarize(1).Max
	wantPct := 100 * 32 / dev.HCap
	if maxH > wantPct*1.5 {
		t.Errorf("max horizontal congestion %.1f%%, want ~%.1f%% (trunk shared)", maxH, wantPct)
	}
	if maxH < wantPct*0.5 {
		t.Errorf("max horizontal congestion %.1f%% suspiciously low", maxH)
	}
}

func TestMidpointRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		m := midpoint(rng, 3, 10)
		if m < 3 || m >= 10 {
			t.Fatalf("midpoint(3,10) = %d", m)
		}
		if midpoint(rng, 5, 6) != 5 {
			t.Fatal("adjacent midpoint must degenerate")
		}
	}
}

func TestPinPosStaysOnDie(t *testing.T) {
	pl := placedDesign(t, 6)
	r := newRouter(pl, DefaultOptions())
	for _, c := range pl.NL.Cells {
		for netID := 0; netID < 50; netID += 7 {
			p := r.pinPos(netID, c)
			if !pl.Dev.InBounds(p) {
				t.Fatalf("pin position %v off die", p)
			}
		}
	}
}

func TestMazeRouteConnects(t *testing.T) {
	pl := placedDesign(t, 7)
	r := newRouter(pl, DefaultOptions())
	src := fpga.XY{X: 5, Y: 5}
	dst := fpga.XY{X: 20, Y: 30}
	path := r.mazeRoute(src, dst, 8, 4)
	if len(path) < fpga.ManhattanDist(src, dst) {
		t.Fatalf("maze path %d crossings, need at least %d", len(path), fpga.ManhattanDist(src, dst))
	}
	// Replay the crossings as moves and confirm they lead src -> dst.
	cur := src
	for _, c := range path {
		if c.vertical {
			if cur.X != c.x || (cur.Y != c.y && cur.Y != c.y+1) {
				t.Fatalf("discontiguous vertical crossing %+v from %v", c, cur)
			}
			if cur.Y == c.y {
				cur.Y++
			} else {
				cur.Y--
			}
		} else {
			if cur.Y != c.y || (cur.X != c.x && cur.X != c.x+1) {
				t.Fatalf("discontiguous horizontal crossing %+v from %v", c, cur)
			}
			if cur.X == c.x {
				cur.X++
			} else {
				cur.X--
			}
		}
	}
	if cur != dst {
		t.Fatalf("maze path ends at %v, want %v", cur, dst)
	}
	if r.mazeRoute(src, src, 8, 4) != nil {
		t.Error("degenerate maze route should be nil")
	}
}

func TestMazeRouteAvoidsCongestion(t *testing.T) {
	pl := placedDesign(t, 8)
	r := newRouter(pl, DefaultOptions())
	// Build a wall of congestion across the straight-line path.
	src := fpga.XY{X: 10, Y: 20}
	dst := fpga.XY{X: 30, Y: 20}
	for x := 11; x < 30; x++ {
		r.useH[r.idx(x, 20)] = r.dev.HCap * 3 // straight row overfull
	}
	path := r.mazeRoute(src, dst, 8, 6)
	onWall := 0
	for _, c := range path {
		if !c.vertical && c.y == 20 && c.x >= 11 && c.x < 30 {
			onWall++
		}
	}
	if onWall > 2 {
		t.Errorf("maze route crossed the congestion wall %d times", onWall)
	}
}

func TestMazeFallbackReducesOverflow(t *testing.T) {
	pl := placedDesign(t, 9)
	plain := Route(pl, rand.New(rand.NewSource(3)), Options{Iterations: 1})
	maze := Route(pl, rand.New(rand.NewSource(3)),
		Options{Iterations: 1, MazeThreshold: 1.0, MazeSlack: 8})
	if maze.Overflow > plain.Overflow {
		t.Errorf("maze fallback increased overflow: %d -> %d", plain.Overflow, maze.Overflow)
	}
}

func TestMazeFallbackCommitsCrossings(t *testing.T) {
	// Force the fallback: a tiny threshold routes every congested
	// connection through the maze path (exercising commitCrossings).
	pl := placedDesign(t, 10)
	rr := Route(pl, rand.New(rand.NewSource(4)),
		Options{Iterations: 2, MazeThreshold: 0.05, MazeSlack: 4})
	if len(rr.Pins) == 0 {
		t.Fatal("no pins routed")
	}
	// The map still carries all demand and stays finite.
	total := 0.0
	for x := range rr.Map.V {
		for y := range rr.Map.V[x] {
			total += rr.Map.V[x][y] + rr.Map.H[x][y]
		}
	}
	if total <= 0 {
		t.Fatal("maze-routed design produced no demand")
	}
	// Pin stats from maze paths remain well-formed.
	for _, p := range rr.Pins {
		if p.Length < 0 || p.AvgUtil < 0 || p.MaxUtil+1e-9 < p.AvgUtil {
			t.Fatalf("malformed maze pin stats %+v", p)
		}
	}
}

func TestRouteContextCancellation(t *testing.T) {
	pl := placedDesign(t, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RouteContext(ctx, pl, rand.New(rand.NewSource(1)), DefaultOptions())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestRouteResultRecordsIterations(t *testing.T) {
	pl := placedDesign(t, 1)
	opts := DefaultOptions()
	opts.Iterations = 4
	rr := Route(pl, rand.New(rand.NewSource(1)), opts)
	if rr.Iterations != 4 {
		t.Fatalf("iterations = %d, want 4", rr.Iterations)
	}
	if rr.Converged() != (rr.Overflow == 0) {
		t.Fatalf("Converged()=%v inconsistent with overflow %d", rr.Converged(), rr.Overflow)
	}
}
