package route

// Equivalence suite for the router fast paths: a frozen copy of the
// pre-optimization implementation — per-net visited maps, closure-driven
// walks pricing every crossing individually, per-call maze allocations and
// a pointer-based container/heap priority queue — routes the same
// placements, and the optimized router must reproduce its congestion.Map,
// PinStats and Overflow bit-for-bit. The reference is deliberately
// duplicated here so it stays a golden baseline: the clean-pattern O(1)
// pricing, stamp arrays and pooled scratch are pure speedups, and any
// divergence means a routing decision changed.

import (
	"container/heap"
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/congestion"
	"repro/internal/fpga"
	"repro/internal/hls"
	"repro/internal/place"
	"repro/internal/rtl"
)

type refRouter struct {
	pl   *place.Placement
	dev  *fpga.Device
	opts Options

	useV, useH []float64
	histV      []float64
	histH      []float64

	radius []int
	pins   []PinStats
}

func refRoute(pl *place.Placement, rng *rand.Rand, opts Options) *Result {
	if opts.Iterations < 1 {
		opts.Iterations = 1
	}
	n := pl.Dev.Cols * pl.Dev.Rows
	r := &refRouter{
		pl:    pl,
		dev:   pl.Dev,
		opts:  opts,
		useV:  make([]float64, n),
		useH:  make([]float64, n),
		histV: make([]float64, n),
		histH: make([]float64, n),
	}
	r.radius = pl.NL.FootprintRadii()
	for it := 0; it < opts.Iterations; it++ {
		final := it == opts.Iterations-1
		for i := range r.useV {
			r.useV[i] = 0
			r.useH[i] = 0
		}
		r.pins = r.pins[:0]
		r.routeAll(rng, final)
		if !final {
			for i := range r.useV {
				if r.useV[i] > r.dev.VCap {
					r.histV[i] += r.opts.HistoryGain * (r.useV[i] - r.dev.VCap) / r.dev.VCap
				}
				if r.useH[i] > r.dev.HCap {
					r.histH[i] += r.opts.HistoryGain * (r.useH[i] - r.dev.HCap) / r.dev.HCap
				}
			}
		}
	}
	return r.result()
}

func (r *refRouter) pinPos(netID int, c *rtl.Cell) fpga.XY {
	p := r.pl.Pos[c.ID]
	rad := r.radius[c.ID]
	if rad == 0 {
		return p
	}
	h := uint32(netID)*2654435761 ^ uint32(c.ID)*40503
	span := 2*rad + 1
	p.X += int(h%uint32(span)) - rad
	p.Y += int((h/31)%uint32(span)) - rad
	if p.X < 0 {
		p.X = 0
	}
	if p.X >= r.dev.Cols {
		p.X = r.dev.Cols - 1
	}
	if p.Y < 0 {
		p.Y = 0
	}
	if p.Y >= r.dev.Rows {
		p.Y = r.dev.Rows - 1
	}
	return p
}

func (r *refRouter) idx(x, y int) int { return x*r.dev.Rows + y }

func (r *refRouter) edgeCost(vertical bool, x, y int, wires float64) float64 {
	i := r.idx(x, y)
	var use, cap, hist float64
	if vertical {
		use, cap, hist = r.useV[i], r.dev.VCap, r.histV[i]
	} else {
		use, cap, hist = r.useH[i], r.dev.HCap, r.histH[i]
	}
	c := 1.0 + hist
	if over := (use + wires - cap) / cap; over > 0 {
		c += r.opts.OverflowPenalty * over
	}
	return c
}

func (r *refRouter) routeAll(rng *rand.Rand, final bool) {
	visited := make(map[int]bool)
	for _, n := range r.pl.NL.Nets {
		src := r.pinPos(n.ID, n.Driver)
		wires := float64(n.Wires())
		for k := range visited {
			delete(visited, k)
		}
		for _, s := range n.Sinks {
			dst := r.pinPos(n.ID, s.Cell)
			ps := r.routePin(rng, src, dst, wires, visited)
			if final {
				ps.Net = n
				ps.Sink = s
				r.pins = append(r.pins, ps)
			}
		}
	}
}

func (r *refRouter) routePin(rng *rand.Rand, src, dst fpga.XY, wires float64, visited map[int]bool) PinStats {
	cands := []pattern{
		{corners: [2]fpga.XY{{X: dst.X, Y: src.Y}}, n: 1},
		{corners: [2]fpga.XY{{X: src.X, Y: dst.Y}}, n: 1},
	}
	if src.X != dst.X && src.Y != dst.Y {
		mx := midpoint(rng, src.X, dst.X)
		my := midpoint(rng, src.Y, dst.Y)
		cands = append(cands,
			pattern{corners: [2]fpga.XY{{X: mx, Y: src.Y}, {X: mx, Y: dst.Y}}, n: 2},
			pattern{corners: [2]fpga.XY{{X: src.X, Y: my}, {X: dst.X, Y: my}}, n: 2},
		)
	}
	bestCost := -1.0
	var best pattern
	for _, p := range cands {
		c := r.patternCost(src, dst, p, wires, visited)
		if bestCost < 0 || c < bestCost {
			bestCost = c
			best = p
		}
	}
	if r.opts.MazeThreshold > 0 && r.patternWorstUtil(src, dst, best, wires) > r.opts.MazeThreshold {
		slack := r.opts.MazeSlack
		if slack <= 0 {
			slack = 6
		}
		if path := r.mazeRoute(src, dst, wires, visited, slack); path != nil {
			return r.commitCrossings(path, wires, visited)
		}
	}
	return r.commit(src, dst, best, wires, visited)
}

func (r *refRouter) crossKey(vertical bool, x, y int) int {
	k := r.idx(x, y) * 2
	if vertical {
		k++
	}
	return k
}

func (r *refRouter) patternCost(src, dst fpga.XY, p pattern, wires float64, visited map[int]bool) float64 {
	cost := 0.0
	walk(src, dst, p, func(vertical bool, x, y int) {
		if visited[r.crossKey(vertical, x, y)] {
			return
		}
		cost += r.edgeCost(vertical, x, y, wires)
	})
	return cost
}

func (r *refRouter) patternWorstUtil(src, dst fpga.XY, p pattern, wires float64) float64 {
	worst := 0.0
	walk(src, dst, p, func(vertical bool, x, y int) {
		i := r.idx(x, y)
		var u float64
		if vertical {
			u = (r.useV[i] + wires) / r.dev.VCap
		} else {
			u = (r.useH[i] + wires) / r.dev.HCap
		}
		if u > worst {
			worst = u
		}
	})
	return worst
}

func (r *refRouter) commit(src, dst fpga.XY, p pattern, wires float64, visited map[int]bool) PinStats {
	var length int
	var sumUtil, maxUtil float64
	walk(src, dst, p, func(vertical bool, x, y int) {
		i := r.idx(x, y)
		key := r.crossKey(vertical, x, y)
		if !visited[key] {
			visited[key] = true
			if vertical {
				r.useV[i] += wires
			} else {
				r.useH[i] += wires
			}
		}
		var u float64
		if vertical {
			u = r.useV[i] / r.dev.VCap
		} else {
			u = r.useH[i] / r.dev.HCap
		}
		sumUtil += u
		if u > maxUtil {
			maxUtil = u
		}
		length++
	})
	ps := PinStats{Length: length, MaxUtil: maxUtil}
	if length > 0 {
		ps.AvgUtil = sumUtil / float64(length)
	}
	return ps
}

func (r *refRouter) commitCrossings(path []crossing, wires float64, visited map[int]bool) PinStats {
	var length int
	var sumUtil, maxUtil float64
	for _, c := range path {
		i := r.idx(c.x, c.y)
		key := r.crossKey(c.vertical, c.x, c.y)
		if !visited[key] {
			visited[key] = true
			if c.vertical {
				r.useV[i] += wires
			} else {
				r.useH[i] += wires
			}
		}
		var u float64
		if c.vertical {
			u = r.useV[i] / r.dev.VCap
		} else {
			u = r.useH[i] / r.dev.HCap
		}
		sumUtil += u
		if u > maxUtil {
			maxUtil = u
		}
		length++
	}
	ps := PinStats{Length: length, MaxUtil: maxUtil}
	if length > 0 {
		ps.AvgUtil = sumUtil / float64(length)
	}
	return ps
}

func (r *refRouter) result() *Result {
	m := congestion.New(r.dev)
	overflow := 0
	for x := 0; x < r.dev.Cols; x++ {
		for y := 0; y < r.dev.Rows; y++ {
			i := r.idx(x, y)
			m.V[x][y] = 100 * r.useV[i] / r.dev.VCap
			m.H[x][y] = 100 * r.useH[i] / r.dev.HCap
			if r.useV[i] > r.dev.VCap {
				overflow++
			}
			if r.useH[i] > r.dev.HCap {
				overflow++
			}
		}
	}
	return &Result{
		Map:        m,
		Pins:       append([]PinStats(nil), r.pins...),
		Overflow:   overflow,
		Iterations: r.opts.Iterations,
	}
}

// refMazeNode / refMazeHeap are the old pointer-based container/heap queue.
type refMazeNode struct {
	pos  fpga.XY
	cost float64
	idx  int
}

type refMazeHeap []*refMazeNode

func (h refMazeHeap) Len() int            { return len(h) }
func (h refMazeHeap) Less(i, j int) bool  { return h[i].cost < h[j].cost }
func (h refMazeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i]; h[i].idx = i; h[j].idx = j }
func (h *refMazeHeap) Push(x interface{}) { n := x.(*refMazeNode); n.idx = len(*h); *h = append(*h, n) }
func (h *refMazeHeap) Pop() interface{} {
	old := *h
	n := old[len(old)-1]
	*h = old[:len(old)-1]
	return n
}

func (r *refRouter) mazeRoute(src, dst fpga.XY, wires float64, visited map[int]bool, slack int) []crossing {
	if src == dst {
		return nil
	}
	x0, x1 := minInt(src.X, dst.X)-slack, maxIntr(src.X, dst.X)+slack
	y0, y1 := minInt(src.Y, dst.Y)-slack, maxIntr(src.Y, dst.Y)+slack
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 >= r.dev.Cols {
		x1 = r.dev.Cols - 1
	}
	if y1 >= r.dev.Rows {
		y1 = r.dev.Rows - 1
	}
	w := x1 - x0 + 1
	hgt := y1 - y0 + 1
	local := func(p fpga.XY) int { return (p.X-x0)*hgt + (p.Y - y0) }

	dist := make([]float64, w*hgt)
	from := make([]mazeStep, w*hgt)
	done := make([]bool, w*hgt)
	for i := range dist {
		dist[i] = -1
	}
	pq := &refMazeHeap{}
	start := &refMazeNode{pos: src, cost: 0}
	dist[local(src)] = 0
	heap.Push(pq, start)

	stepCost := func(vertical bool, x, y int) float64 {
		if visited[r.crossKey(vertical, x, y)] {
			return 0
		}
		return r.edgeCost(vertical, x, y, wires)
	}

	for pq.Len() > 0 {
		cur := heap.Pop(pq).(*refMazeNode)
		li := local(cur.pos)
		if done[li] {
			continue
		}
		done[li] = true
		if cur.pos == dst {
			break
		}
		type move struct {
			np   fpga.XY
			step mazeStep
			cost float64
		}
		var moves []move
		if cur.pos.X > x0 {
			moves = append(moves, move{fpga.XY{X: cur.pos.X - 1, Y: cur.pos.Y}, stepRight,
				stepCost(false, cur.pos.X-1, cur.pos.Y)})
		}
		if cur.pos.X < x1 {
			moves = append(moves, move{fpga.XY{X: cur.pos.X + 1, Y: cur.pos.Y}, stepLeft,
				stepCost(false, cur.pos.X, cur.pos.Y)})
		}
		if cur.pos.Y > y0 {
			moves = append(moves, move{fpga.XY{X: cur.pos.X, Y: cur.pos.Y - 1}, stepUp,
				stepCost(true, cur.pos.X, cur.pos.Y-1)})
		}
		if cur.pos.Y < y1 {
			moves = append(moves, move{fpga.XY{X: cur.pos.X, Y: cur.pos.Y + 1}, stepDown,
				stepCost(true, cur.pos.X, cur.pos.Y)})
		}
		for _, mv := range moves {
			ni := local(mv.np)
			nc := cur.cost + mv.cost
			if dist[ni] < 0 || nc < dist[ni] {
				dist[ni] = nc
				from[ni] = mv.step
				heap.Push(pq, &refMazeNode{pos: mv.np, cost: nc})
			}
		}
	}
	if dist[local(dst)] < 0 {
		return nil
	}
	var rev []crossing
	cur := dst
	for cur != src {
		switch from[local(cur)] {
		case stepLeft:
			rev = append(rev, crossing{vertical: false, x: cur.X - 1, y: cur.Y})
			cur.X--
		case stepRight:
			rev = append(rev, crossing{vertical: false, x: cur.X, y: cur.Y})
			cur.X++
		case stepDown:
			rev = append(rev, crossing{vertical: true, x: cur.X, y: cur.Y - 1})
			cur.Y--
		case stepUp:
			rev = append(rev, crossing{vertical: true, x: cur.X, y: cur.Y})
			cur.Y++
		default:
			return nil
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// compareResults demands bit-identical congestion maps, pin statistics and
// overflow counts.
func compareResults(t *testing.T, name string, got, want *Result) {
	t.Helper()
	for x := range want.Map.V {
		for y := range want.Map.V[x] {
			if got.Map.V[x][y] != want.Map.V[x][y] || got.Map.H[x][y] != want.Map.H[x][y] {
				t.Fatalf("%s: map differs at (%d,%d): V %v vs %v, H %v vs %v",
					name, x, y, got.Map.V[x][y], want.Map.V[x][y], got.Map.H[x][y], want.Map.H[x][y])
			}
		}
	}
	if len(got.Pins) != len(want.Pins) {
		t.Fatalf("%s: %d pins, reference has %d", name, len(got.Pins), len(want.Pins))
	}
	for i := range got.Pins {
		if got.Pins[i] != want.Pins[i] {
			t.Fatalf("%s: pin %d = %+v, reference %+v", name, i, got.Pins[i], want.Pins[i])
		}
	}
	if got.Overflow != want.Overflow {
		t.Fatalf("%s: overflow %d, reference %d", name, got.Overflow, want.Overflow)
	}
}

// TestRouteEquivalentToReference: pattern routing with the clean-path O(1)
// pricing must match the reference crossing-by-crossing fold bit-for-bit,
// across seeds and iteration counts.
func TestRouteEquivalentToReference(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		pl := placedDesign(t, seed)
		for _, iters := range []int{1, 3, 5} {
			opts := DefaultOptions()
			opts.Iterations = iters
			got := Route(pl, rand.New(rand.NewSource(seed*100+int64(iters))), opts)
			want := refRoute(pl, rand.New(rand.NewSource(seed*100+int64(iters))), opts)
			compareResults(t, "unit design", got, want)
		}
	}
}

// TestRouteEquivalentToReferenceMaze exercises the maze fallback: the
// value-heap Dijkstra and stamp-based trunk checks must pick the same
// detours as the reference pointer-heap/map implementation.
func TestRouteEquivalentToReferenceMaze(t *testing.T) {
	for _, th := range []float64{0.05, 0.5, 1.0} {
		pl := placedDesign(t, 5)
		opts := Options{Iterations: 2, HistoryGain: 0.6, OverflowPenalty: 4.0,
			MazeThreshold: th, MazeSlack: 4}
		got := Route(pl, rand.New(rand.NewSource(11)), opts)
		want := refRoute(pl, rand.New(rand.NewSource(11)), opts)
		compareResults(t, "maze fallback", got, want)
	}
}

// TestRouteEquivalentToReferencePaperDesign routes a real training
// implementation placed with the production flow's budget.
func TestRouteEquivalentToReferencePaperDesign(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-design equivalence is slow")
	}
	m := bench.DigitSpam()
	s, err := hls.ScheduleModule(m, hls.DefaultClock())
	if err != nil {
		t.Fatal(err)
	}
	nl := rtl.Elaborate(hls.BindModule(s))
	pl, err := place.Place(nl, fpga.XC7Z020(), rand.New(rand.NewSource(1)), place.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	got := Route(pl, rand.New(rand.NewSource(1)), DefaultOptions())
	want := refRoute(pl, rand.New(rand.NewSource(1)), DefaultOptions())
	compareResults(t, "digit+spam", got, want)
}

// TestRouterReuseAcrossFlows routes twice through the pooled scratch path
// and demands identical results — stale history, stamps or demand leaking
// between flows would surface here.
func TestRouterReuseAcrossFlows(t *testing.T) {
	pl := placedDesign(t, 6)
	first := Route(pl, rand.New(rand.NewSource(2)), DefaultOptions())
	for i := 0; i < 3; i++ {
		again := Route(pl, rand.New(rand.NewSource(2)), DefaultOptions())
		compareResults(t, "pooled rerun", again, first)
	}
}

// TestRouteAllSteadyStateAllocs guards the zero-allocation contract of the
// steady-state routing loop: with scratch acquired and warm, a full rip-up
// pass (including the final, stats-collecting one) allocates nothing.
func TestRouteAllSteadyStateAllocs(t *testing.T) {
	pl := placedDesign(t, 7)
	r := newRouter(pl, DefaultOptions())
	defer r.release()
	rng := rand.New(rand.NewSource(3))
	r.reset()
	r.routeAll(rng, true) // warm pins backing
	for _, final := range []bool{false, true} {
		final := final
		allocs := testing.AllocsPerRun(5, func() {
			r.reset()
			r.routeAll(rng, final)
		})
		if allocs != 0 {
			t.Errorf("routeAll(final=%v) allocates %.0f objects per pass, want 0", final, allocs)
		}
	}
}
