package route

import (
	"container/heap"

	"repro/internal/fpga"
)

// Maze routing: when every candidate pattern for a connection crosses a
// badly overfull tile, a Dijkstra search over the routing grid finds the
// cheapest detour under the same congestion-aware edge costs — the
// "real router" escape hatch PathFinder implementations fall back to once
// pattern routing saturates.

// mazeNode is one priority-queue entry.
type mazeNode struct {
	pos  fpga.XY
	cost float64
	idx  int // heap index
}

type mazeHeap []*mazeNode

func (h mazeHeap) Len() int            { return len(h) }
func (h mazeHeap) Less(i, j int) bool  { return h[i].cost < h[j].cost }
func (h mazeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i]; h[i].idx = i; h[j].idx = j }
func (h *mazeHeap) Push(x interface{}) { n := x.(*mazeNode); n.idx = len(*h); *h = append(*h, n) }
func (h *mazeHeap) Pop() interface{} {
	old := *h
	n := old[len(old)-1]
	*h = old[:len(old)-1]
	return n
}

// mazeStep encodes the move taken to reach a tile, for path reconstruction.
type mazeStep int8

const (
	stepNone mazeStep = iota
	stepLeft          // arrived moving +X (crossed H edge at x-1)
	stepRight
	stepDown // arrived moving +Y (crossed V edge at y-1)
	stepUp
)

// mazeRoute runs Dijkstra from src to dst under the router's congestion
// cost, restricted to the bounding box inflated by `slack` tiles (keeping
// the search local, as global routers do). It returns the tile-crossing
// walk in order, or nil when src == dst.
func (r *router) mazeRoute(src, dst fpga.XY, wires float64, visited map[int]bool, slack int) []crossing {
	if src == dst {
		return nil
	}
	x0, x1 := minInt(src.X, dst.X)-slack, maxIntr(src.X, dst.X)+slack
	y0, y1 := minInt(src.Y, dst.Y)-slack, maxIntr(src.Y, dst.Y)+slack
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 >= r.dev.Cols {
		x1 = r.dev.Cols - 1
	}
	if y1 >= r.dev.Rows {
		y1 = r.dev.Rows - 1
	}
	w := x1 - x0 + 1
	hgt := y1 - y0 + 1
	local := func(p fpga.XY) int { return (p.X-x0)*hgt + (p.Y - y0) }

	dist := make([]float64, w*hgt)
	from := make([]mazeStep, w*hgt)
	done := make([]bool, w*hgt)
	for i := range dist {
		dist[i] = -1
	}
	pq := &mazeHeap{}
	start := &mazeNode{pos: src, cost: 0}
	dist[local(src)] = 0
	heap.Push(pq, start)

	// stepCost prices crossing from cur to next; the crossing is charged at
	// the lower-coordinate tile of the pair, matching walk()'s convention
	// (H edge at min-x tile, V edge at min-y tile). A crossing the net
	// already owns is free.
	stepCost := func(vertical bool, x, y int) float64 {
		if visited[r.crossKey(vertical, x, y)] {
			return 0
		}
		return r.edgeCost(vertical, x, y, wires)
	}

	for pq.Len() > 0 {
		cur := heap.Pop(pq).(*mazeNode)
		li := local(cur.pos)
		if done[li] {
			continue
		}
		done[li] = true
		if cur.pos == dst {
			break
		}
		type move struct {
			np   fpga.XY
			step mazeStep
			cost float64
		}
		var moves []move
		if cur.pos.X > x0 {
			moves = append(moves, move{fpga.XY{X: cur.pos.X - 1, Y: cur.pos.Y}, stepRight,
				stepCost(false, cur.pos.X-1, cur.pos.Y)})
		}
		if cur.pos.X < x1 {
			moves = append(moves, move{fpga.XY{X: cur.pos.X + 1, Y: cur.pos.Y}, stepLeft,
				stepCost(false, cur.pos.X, cur.pos.Y)})
		}
		if cur.pos.Y > y0 {
			moves = append(moves, move{fpga.XY{X: cur.pos.X, Y: cur.pos.Y - 1}, stepUp,
				stepCost(true, cur.pos.X, cur.pos.Y-1)})
		}
		if cur.pos.Y < y1 {
			moves = append(moves, move{fpga.XY{X: cur.pos.X, Y: cur.pos.Y + 1}, stepDown,
				stepCost(true, cur.pos.X, cur.pos.Y)})
		}
		for _, mv := range moves {
			ni := local(mv.np)
			nc := cur.cost + mv.cost
			if dist[ni] < 0 || nc < dist[ni] {
				dist[ni] = nc
				from[ni] = mv.step
				heap.Push(pq, &mazeNode{pos: mv.np, cost: nc})
			}
		}
	}
	if dist[local(dst)] < 0 {
		return nil // boxed search failed (cannot happen with slack >= 0)
	}
	// Reconstruct dst -> src, emitting crossings, then reverse.
	var rev []crossing
	cur := dst
	for cur != src {
		switch from[local(cur)] {
		case stepLeft: // came from x-1
			rev = append(rev, crossing{vertical: false, x: cur.X - 1, y: cur.Y})
			cur.X--
		case stepRight: // came from x+1
			rev = append(rev, crossing{vertical: false, x: cur.X, y: cur.Y})
			cur.X++
		case stepDown: // came from y-1
			rev = append(rev, crossing{vertical: true, x: cur.X, y: cur.Y - 1})
			cur.Y--
		case stepUp: // came from y+1
			rev = append(rev, crossing{vertical: true, x: cur.X, y: cur.Y})
			cur.Y++
		default:
			return nil // corrupt predecessor chain
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// crossing is one tile-boundary traversal.
type crossing struct {
	vertical bool
	x, y     int
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxIntr(a, b int) int {
	if a > b {
		return a
	}
	return b
}
