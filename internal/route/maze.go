package route

import (
	"repro/internal/fpga"
)

// Maze routing: when every candidate pattern for a connection crosses a
// badly overfull tile, a Dijkstra search over the routing grid finds the
// cheapest detour under the same congestion-aware edge costs — the
// "real router" escape hatch PathFinder implementations fall back to once
// pattern routing saturates.

// mazeNode is one priority-queue entry.
type mazeNode struct {
	pos  fpga.XY
	cost float64
}

// mazeQueue is a binary min-heap of value nodes. push and pop replicate
// container/heap's sift order exactly (and the ordering depends only on
// cost comparisons), so search results are identical to the previous
// pointer-based heap — without the per-node allocation.
type mazeQueue []mazeNode

func (h *mazeQueue) push(n mazeNode) {
	q := append(*h, n)
	*h = q
	j := len(q) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !(q[j].cost < q[i].cost) {
			break
		}
		q[i], q[j] = q[j], q[i]
		j = i
	}
}

func (h *mazeQueue) pop() mazeNode {
	q := *h
	n := len(q) - 1
	q[0], q[n] = q[n], q[0]
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && q[j2].cost < q[j1].cost {
			j = j2
		}
		if !(q[j].cost < q[i].cost) {
			break
		}
		q[i], q[j] = q[j], q[i]
		i = j
	}
	top := q[n]
	*h = q[:n]
	return top
}

// mazeStep encodes the move taken to reach a tile, for path reconstruction.
type mazeStep int8

const (
	stepNone mazeStep = iota
	stepLeft          // arrived moving +X (crossed H edge at x-1)
	stepRight
	stepDown // arrived moving +Y (crossed V edge at y-1)
	stepUp
)

// mazeRoute runs Dijkstra from src to dst under the router's congestion
// cost, restricted to the bounding box inflated by `slack` tiles (keeping
// the search local, as global routers do). It returns the tile-crossing
// walk in order, or nil when src == dst. The returned slice aliases the
// router's scratch and is only valid until the next mazeRoute call.
func (r *router) mazeRoute(src, dst fpga.XY, wires float64, slack int) []crossing {
	if src == dst {
		return nil
	}
	x0, x1 := minInt(src.X, dst.X)-slack, maxIntr(src.X, dst.X)+slack
	y0, y1 := minInt(src.Y, dst.Y)-slack, maxIntr(src.Y, dst.Y)+slack
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 >= r.dev.Cols {
		x1 = r.dev.Cols - 1
	}
	if y1 >= r.dev.Rows {
		y1 = r.dev.Rows - 1
	}
	w := x1 - x0 + 1
	hgt := y1 - y0 + 1
	local := func(p fpga.XY) int { return (p.X-x0)*hgt + (p.Y - y0) }

	// Reuse the router's maze buffers: slice to the search box and reinit.
	box := w * hgt
	if cap(r.mazeDist) < box {
		r.mazeDist = make([]float64, box)
		r.mazeFrom = make([]mazeStep, box)
		r.mazeDone = make([]bool, box)
	}
	dist := r.mazeDist[:box]
	from := r.mazeFrom[:box]
	done := r.mazeDone[:box]
	for i := range dist {
		dist[i] = -1
		from[i] = stepNone
		done[i] = false
	}
	pq := &r.mazeQ
	*pq = (*pq)[:0]
	dist[local(src)] = 0
	pq.push(mazeNode{pos: src, cost: 0})

	// stepCost prices crossing from cur to next; the crossing is charged at
	// the lower-coordinate tile of the pair, matching walk()'s convention
	// (H edge at min-x tile, V edge at min-y tile). A crossing the net
	// already owns is free.
	stepCost := func(vertical bool, x, y int) float64 {
		key := (x*r.rows + y) * 2
		if vertical {
			key++
		}
		if r.visitStamp[key] == r.stamp {
			return 0
		}
		return r.edgeCost(vertical, x, y, wires)
	}

	type move struct {
		np   fpga.XY
		step mazeStep
		cost float64
	}
	for len(*pq) > 0 {
		cur := pq.pop()
		li := local(cur.pos)
		if done[li] {
			continue
		}
		done[li] = true
		if cur.pos == dst {
			break
		}
		var moves [4]move
		nm := 0
		if cur.pos.X > x0 {
			moves[nm] = move{fpga.XY{X: cur.pos.X - 1, Y: cur.pos.Y}, stepRight,
				stepCost(false, cur.pos.X-1, cur.pos.Y)}
			nm++
		}
		if cur.pos.X < x1 {
			moves[nm] = move{fpga.XY{X: cur.pos.X + 1, Y: cur.pos.Y}, stepLeft,
				stepCost(false, cur.pos.X, cur.pos.Y)}
			nm++
		}
		if cur.pos.Y > y0 {
			moves[nm] = move{fpga.XY{X: cur.pos.X, Y: cur.pos.Y - 1}, stepUp,
				stepCost(true, cur.pos.X, cur.pos.Y-1)}
			nm++
		}
		if cur.pos.Y < y1 {
			moves[nm] = move{fpga.XY{X: cur.pos.X, Y: cur.pos.Y + 1}, stepDown,
				stepCost(true, cur.pos.X, cur.pos.Y)}
			nm++
		}
		for _, mv := range moves[:nm] {
			ni := local(mv.np)
			nc := cur.cost + mv.cost
			if dist[ni] < 0 || nc < dist[ni] {
				dist[ni] = nc
				from[ni] = mv.step
				pq.push(mazeNode{pos: mv.np, cost: nc})
			}
		}
	}
	if dist[local(dst)] < 0 {
		return nil // boxed search failed (cannot happen with slack >= 0)
	}
	// Reconstruct dst -> src, emitting crossings, then reverse.
	rev := r.mazePath[:0]
	cur := dst
	for cur != src {
		switch from[local(cur)] {
		case stepLeft: // came from x-1
			rev = append(rev, crossing{vertical: false, x: cur.X - 1, y: cur.Y})
			cur.X--
		case stepRight: // came from x+1
			rev = append(rev, crossing{vertical: false, x: cur.X, y: cur.Y})
			cur.X++
		case stepDown: // came from y-1
			rev = append(rev, crossing{vertical: true, x: cur.X, y: cur.Y - 1})
			cur.Y--
		case stepUp: // came from y+1
			rev = append(rev, crossing{vertical: true, x: cur.X, y: cur.Y})
			cur.Y++
		default:
			r.mazePath = rev
			return nil // corrupt predecessor chain
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	r.mazePath = rev
	return rev
}

// crossing is one tile-boundary traversal.
type crossing struct {
	vertical bool
	x, y     int
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxIntr(a, b int) int {
	if a > b {
		return a
	}
	return b
}
