package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersNormalization(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Errorf("Workers(4) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := Workers(0); got != want {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, want)
	}
	if got := Workers(-3); got != want {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, want)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 257
		counts := make([]atomic.Int64, n)
		if err := ForEach(context.Background(), n, workers, func(_ context.Context, i int) {
			counts[i].Add(1)
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(context.Background(), 0, 8, func(context.Context, int) {
		t.Error("task ran for n=0")
	}); err != nil {
		t.Fatal(err)
	}
}

func TestForEachNilContext(t *testing.T) {
	ran := false
	if err := ForEach(nil, 1, 1, func(ctx context.Context, _ int) { //nolint:staticcheck // nil ctx is part of the contract
		ran = ctx != nil
	}); err != nil || !ran {
		t.Fatalf("nil context not normalized (ran=%v err=%v)", ran, err)
	}
}

func TestForEachCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := ForEach(ctx, 50, 4, func(context.Context, int) { ran.Add(1) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d tasks ran under a pre-cancelled context", ran.Load())
	}
}

func TestForEachStopsSchedulingAfterCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := ForEach(ctx, 10_000, 2, func(ctx context.Context, i int) {
		if ran.Add(1) == 3 {
			cancel()
		}
		// Give the cancellation a moment to propagate to the other worker.
		select {
		case <-ctx.Done():
		case <-time.After(time.Millisecond):
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 10_000 {
		t.Fatalf("cancellation did not stop scheduling (ran %d tasks)", n)
	}
}

func TestForEachPanicIsWrappedOnCaller(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				pe, ok := r.(*PanicError)
				if !ok {
					t.Fatalf("workers=%d: recovered %T %v, want *PanicError", workers, r, r)
				}
				if pe.Index != 7 || fmt.Sprint(pe.Value) != "boom" {
					t.Fatalf("workers=%d: bad PanicError %+v", workers, pe)
				}
				if len(pe.Stack) == 0 {
					t.Fatalf("workers=%d: PanicError lost the worker stack", workers)
				}
				if pe.Error() == "" {
					t.Fatalf("workers=%d: empty Error()", workers)
				}
			}()
			_ = ForEach(context.Background(), 8, workers, func(_ context.Context, i int) {
				if i == 7 {
					panic("boom")
				}
			})
			t.Fatalf("workers=%d: panic did not propagate", workers)
		}()
	}
}

func TestMapOrdersResultsByIndex(t *testing.T) {
	for _, workers := range []int{1, 8} {
		out, errs, err := Map(context.Background(), 100, workers, func(_ context.Context, i int) (int, error) {
			if i%10 == 3 {
				return 0, fmt.Errorf("task %d failed", i)
			}
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range out {
			if i%10 == 3 {
				if errs[i] == nil || errs[i].Error() != fmt.Sprintf("task %d failed", i) {
					t.Fatalf("workers=%d: errs[%d] = %v", workers, i, errs[i])
				}
				continue
			}
			if out[i] != i*i || errs[i] != nil {
				t.Fatalf("workers=%d: out[%d] = %d (err %v), want %d", workers, i, out[i], errs[i], i*i)
			}
		}
	}
}

// TestForEachParallelMatchesSequential is the package-level determinism
// contract: the same tasks produce the same per-index results whatever the
// worker count.
func TestForEachParallelMatchesSequential(t *testing.T) {
	run := func(workers int) []float64 {
		out := make([]float64, 500)
		if err := ForEach(context.Background(), len(out), workers, func(_ context.Context, i int) {
			v := float64(i)
			out[i] = v*v/3 + v
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	seq := run(1)
	par := run(16)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("index %d: sequential %v != parallel %v", i, seq[i], par[i])
		}
	}
}
