// Package parallel provides the bounded worker-pool primitive the hot
// loops of this repository fan out on: dataset builds run one flow per
// (module, label-run) cell, grid search evaluates one (candidate, fold)
// cell per task, and both need the parallel result to be byte-identical to
// the sequential one. The pool therefore guarantees deterministic result
// placement — task i writes slot i, whatever goroutine ran it — and leaves
// all ordered reduction (float accumulation, error joining) to the caller,
// which replays it in index order.
//
// Contract:
//
//   - Tasks receive a context and must stop early when it is cancelled.
//   - A panic on any worker is captured with its stack and re-raised on
//     the calling goroutine as a *PanicError, so recover-based guards
//     around a parallel call behave exactly as around sequential code.
//   - workers <= 1 runs tasks on the calling goroutine in index order,
//     making Workers=1 a true sequential reference execution.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count knob: values above zero are taken as
// given, anything else means "one worker per available CPU"
// (runtime.GOMAXPROCS(0)).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// PanicError is a panic captured on a pool worker, re-raised on the caller
// goroutine. Value is the original panic value and Stack the worker's
// stack at capture time, so the crash diagnoses the task, not the pool.
type PanicError struct {
	// Index is the task index that panicked.
	Index int
	// Value is the original panic value.
	Value any
	// Stack is the panicking worker's stack trace.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: task %d panicked: %v", e.Index, e.Value)
}

// ForEach runs fn(ctx, i) for every i in [0, n) on at most workers
// goroutines (normalized by Workers). Each task writes its own results —
// typically into slot i of a caller-owned slice — which keeps result
// ordering deterministic regardless of scheduling.
//
// Cancellation: no new task starts after ctx is cancelled, and ForEach
// returns the context's error once started tasks finish; the caller must
// treat indices it never observed output for as not-run. A worker panic
// cancels the remaining tasks and is re-raised on the calling goroutine as
// a *PanicError.
func ForEach(ctx context.Context, n, workers int, fn func(ctx context.Context, i int)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Sequential reference path: index order, same panic wrapping as
		// the pool so behavior does not depend on the worker count.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if pe := runTask(ctx, i, fn); pe != nil {
				panic(pe)
			}
		}
		return ctx.Err()
	}

	pctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next      atomic.Int64
		wg        sync.WaitGroup
		panicOnce sync.Once
		pe        *PanicError
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || pctx.Err() != nil {
					return
				}
				if p := runTask(pctx, i, fn); p != nil {
					panicOnce.Do(func() {
						pe = p
						cancel()
					})
					return
				}
			}
		}()
	}
	wg.Wait()
	if pe != nil {
		panic(pe)
	}
	return ctx.Err()
}

// runTask executes one task, converting a panic into a *PanicError.
func runTask(ctx context.Context, i int, fn func(context.Context, int)) (pe *PanicError) {
	defer func() {
		if r := recover(); r != nil {
			if already, ok := r.(*PanicError); ok {
				// A nested pool already wrapped it; keep the inner task's
				// index and stack.
				pe = already
				return
			}
			pe = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
		}
	}()
	fn(ctx, i)
	return nil
}

// Map runs fn over [0, n) with ForEach's scheduling and collects results
// and errors by task index: out[i] and errs[i] always belong to task i.
// The returned error is ForEach's (context cancellation); per-task errors
// stay in errs for the caller to reduce in deterministic order.
func Map[T any](ctx context.Context, n, workers int, fn func(ctx context.Context, i int) (T, error)) (out []T, errs []error, err error) {
	out = make([]T, n)
	errs = make([]error, n)
	err = ForEach(ctx, n, workers, func(ctx context.Context, i int) {
		out[i], errs[i] = fn(ctx, i)
	})
	return out, errs, err
}
