package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/features"
	"repro/internal/ir"
)

// tinyDataset builds a small dataset quickly for ablation/tuning tests.
func tinyDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	build := func(name string, lanes int) *ir.Module {
		m := ir.NewModule(name)
		b := ir.NewBuilder(m.NewFunction(name+"_top")).At(name+".cpp", 1)
		p := b.Port("p", 32)
		a := b.Array("mem", 64, 16, 8)
		var outs []*ir.Op
		b.UnrolledLoop("main", 512, 4, func(copy int) {
			for i := 0; i < lanes; i++ {
				v := b.Load(a, nil)
				x := b.OpBits(ir.KindBitSel, 16, p, 16)
				outs = append(outs, b.Op(ir.KindMul, 16, v, x))
			}
		})
		b.Ret(b.ReduceTree(ir.KindAdd, 16, outs))
		return m
	}
	cfg := quickCfg()
	cfg.Flow.Place.Moves = 3000
	ds, _, err := core.BuildDatasetRuns([]*ir.Module{build("ta", 5), build("tb", 8)}, cfg.Flow, 2)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestAblateCategories(t *testing.T) {
	cfg := quickCfg()
	ds := tinyDataset(t)
	res, err := AblateCategories(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != features.CategoryCount {
		t.Fatalf("rows = %d, want %d", len(res.Rows), features.CategoryCount)
	}
	if res.Baseline <= 0 {
		t.Fatal("baseline MAE missing")
	}
	for _, r := range res.Rows {
		if r.MAE <= 0 {
			t.Errorf("ablated MAE for %v is %v", r.Category, r.MAE)
		}
		if got := r.MAE - res.Baseline; got != r.Delta {
			t.Errorf("delta inconsistent for %v", r.Category)
		}
	}
	if !strings.Contains(res.Format(), "ABLATION") {
		t.Error("format header missing")
	}
}

func TestSweepFilterThreshold(t *testing.T) {
	cfg := quickCfg()
	ds := tinyDataset(t)
	points, err := SweepFilterThreshold(cfg, ds, []float64{0, 0.5, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	if points[0].Removed != 0 {
		t.Errorf("deviation 0 removed %d samples, want 0", points[0].Removed)
	}
	for i := 1; i < len(points); i++ {
		if points[i].Removed < points[i-1].Removed {
			t.Error("higher threshold removed fewer samples")
		}
	}
	if !strings.Contains(FormatFilterSweep(points), "SWEEP") {
		t.Error("format header missing")
	}
}

func TestTuningQuick(t *testing.T) {
	cfg := quickCfg()
	ds := tinyDataset(t)
	res, err := Tuning(cfg, ds, core.Linear)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated < 2 {
		t.Errorf("evaluated %d candidates", res.Evaluated)
	}
	if res.BestScore <= 0 {
		t.Errorf("best score = %v", res.BestScore)
	}
	if _, ok := res.Best["alpha"]; !ok {
		t.Error("linear tuning must pick alpha")
	}
	out := FormatTuning([]*TuningResult{res})
	if !strings.Contains(out, "Linear") || !strings.Contains(out, "alpha") {
		t.Errorf("format output %q", out)
	}
}

func TestTuningGridsCoverAllKinds(t *testing.T) {
	for _, kind := range core.ModelKinds {
		for _, quick := range []bool{false, true} {
			g := core.TuningGrid(kind, quick)
			if len(g.Enumerate()) == 0 {
				t.Errorf("empty grid for %v quick=%v", kind, quick)
			}
		}
		f := core.Factory(kind, 1)
		for _, p := range core.TuningGrid(kind, true).Enumerate() {
			if f(p) == nil {
				t.Errorf("factory %v returned nil", kind)
			}
		}
	}
}

func TestGeneralization(t *testing.T) {
	cfg := quickCfg()
	ds := tinyDataset(t)
	res, err := Generalization(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want one per design", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Train == 0 || r.Test == 0 {
			t.Fatalf("fold %s has empty split", r.HeldOut)
		}
		for _, tg := range dataset.Targets {
			if r.Acc[tg].MAE <= 0 {
				t.Errorf("%s/%v: empty accuracy", r.HeldOut, tg)
			}
		}
	}
	if res.RandomSplit[dataset.Average].MAE <= 0 {
		t.Error("random-split reference missing")
	}
	out := res.Format()
	if !strings.Contains(out, "GENERALIZATION") || !strings.Contains(out, "random 80/20") {
		t.Errorf("format malformed:\n%s", out)
	}
}

func TestHotspotDetectionModule(t *testing.T) {
	cfg := quickCfg()
	ds := tinyDataset(t)
	pred, err := core.Train(ds, core.TrainOptions{Kind: core.Linear, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Score on a fresh module of the same family.
	m := ir.NewModule("hotspot_target")
	b := ir.NewBuilder(m.NewFunction("t_top")).At("t.cpp", 1)
	p := b.Port("p", 32)
	a := b.Array("mem", 64, 16, 8)
	var outs []*ir.Op
	for i := 0; i < 20; i++ {
		b.Line(5 + i)
		v := b.Load(a, nil)
		outs = append(outs, b.Op(ir.KindMul, 16, v, b.OpBits(ir.KindBitSel, 16, p, 16)))
	}
	b.Line(40)
	b.Ret(b.ReduceTree(ir.KindAdd, 16, outs))

	res, err := HotspotDetectionModule(cfg, pred, m)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lines == 0 {
		t.Fatal("no aligned source lines")
	}
	for k, p := range res.PrecisionAtK {
		if p < 0 || p > 1 {
			t.Errorf("precision@%d = %v out of [0,1]", k, p)
		}
	}
	if res.Spearman < -1 || res.Spearman > 1 {
		t.Errorf("spearman = %v", res.Spearman)
	}
	if !strings.Contains(res.Format(), "HOTSPOT DETECTION") {
		t.Error("format header missing")
	}
}

func TestAblateLabelAveraging(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset rebuilds in -short mode")
	}
	cfg := quickCfg()
	cfg.Flow.Place.Moves = 3000
	points, err := AblateLabelAveraging(cfg, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.MAE <= 0 {
			t.Errorf("runs=%d MAE=%v", p.Runs, p.MAE)
		}
	}
	out := FormatLabelRuns(points)
	if !strings.Contains(out, "LABEL-AVERAGING") {
		t.Error("format header missing")
	}
}
