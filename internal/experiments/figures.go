package experiments

import (
	"fmt"
	"strings"

	"repro/internal/bench"
	"repro/internal/congestion"
	"repro/internal/flow"
)

// FigureMap is one rendered congestion map.
type FigureMap struct {
	Title  string
	Metric congestion.Metric
	Map    *congestion.Map
}

// Render returns the ASCII heat map.
func (f FigureMap) Render() string {
	return f.Title + "\n" + f.Map.RenderASCII(f.Metric, 1, 2)
}

// Figure1Result holds the two Face Detection congestion maps of Fig. 1.
type Figure1Result struct {
	Maps []FigureMap
}

// Figure1 reproduces the motivation figure: congestion maps of Face
// Detection with and without directives.
func Figure1(cfg Config) (*Figure1Result, error) {
	out := &Figure1Result{}
	for _, c := range []struct {
		name string
		dir  bench.Directives
	}{
		{"Face Detection, with directives", bench.WithDirectives()},
		{"Face Detection, without directives", bench.WithoutDirectives()},
	} {
		res, err := flow.Run(bench.FaceDetection(c.dir), cfg.Flow)
		if err != nil {
			return nil, fmt.Errorf("experiments: figure 1 (%s): %w", c.name, err)
		}
		out.Maps = append(out.Maps, FigureMap{
			Title:  fmt.Sprintf("Fig. 1: %s (max %.1f%%)", c.name, res.Routing.Map.MaxCongestion()),
			Metric: congestion.Average,
			Map:    res.Routing.Map,
		})
	}
	return out, nil
}

// Format renders both maps.
func (f *Figure1Result) Format() string {
	var b strings.Builder
	for _, m := range f.Maps {
		b.WriteString(m.Render())
		b.WriteString("\n")
	}
	return b.String()
}

// Figure5Result quantifies Fig. 5: the distribution of vertical congestion
// over the die for Face Detection, as a radial profile (margin low, center
// high) plus the rendered map.
type Figure5Result struct {
	Map *congestion.Map
	// Profile is the mean vertical congestion per normalized
	// center-distance bin (bin 0 = die center, last bin = corners).
	Profile []float64
	// MarginMean and CenterMean summarize the paper's qualitative claim.
	MarginMean float64
	CenterMean float64
}

// Figure5 runs the optimized Face Detection and bins vertical congestion by
// distance from the die center.
func Figure5(cfg Config) (*Figure5Result, error) {
	res, err := flow.Run(bench.FaceDetection(bench.WithDirectives()), cfg.Flow)
	if err != nil {
		return nil, fmt.Errorf("experiments: figure 5: %w", err)
	}
	m := res.Routing.Map
	const bins = 8
	out := &Figure5Result{Map: m, Profile: m.RadialProfile(congestion.Vertical, bins)}
	// Center = inner quarter of bins, margin = outer quarter.
	q := bins / 4
	var cs, ms float64
	for i := 0; i < q; i++ {
		cs += out.Profile[i]
		ms += out.Profile[bins-1-i]
	}
	out.CenterMean = cs / float64(q)
	out.MarginMean = ms / float64(q)
	return out, nil
}

// Format renders the profile and map.
func (f *Figure5Result) Format() string {
	var b strings.Builder
	b.WriteString("Fig. 5: distribution of vertical routing congestion (Face Detection)\n")
	b.WriteString("mean vertical congestion by distance from die center:\n")
	for i, v := range f.Profile {
		bar := strings.Repeat("#", int(v/4))
		fmt.Fprintf(&b, "  bin %d (r=%.2f..%.2f): %6.1f%% %s\n",
			i, float64(i)/float64(len(f.Profile)), float64(i+1)/float64(len(f.Profile)), v, bar)
	}
	fmt.Fprintf(&b, "center mean %.1f%% vs margin mean %.1f%%\n", f.CenterMean, f.MarginMean)
	b.WriteString(f.Map.RenderASCII(congestion.Vertical, 1, 2))
	return b.String()
}

// Figure6Result holds the per-step congestion maps of the case study, one
// vertical and one horizontal map per resolution step.
type Figure6Result struct {
	Maps []FigureMap
}

// Figure6 renders V and H congestion maps for Baseline, Not Inline and
// Replication.
func Figure6(cfg Config) (*Figure6Result, error) {
	out := &Figure6Result{}
	for _, c := range []struct {
		name string
		dir  bench.Directives
	}{
		{"Baseline", bench.WithDirectives()},
		{"Not Inline", bench.NotInline()},
		{"Replication", bench.Replication()},
	} {
		res, err := flow.Run(bench.FaceDetection(c.dir), cfg.Flow)
		if err != nil {
			return nil, fmt.Errorf("experiments: figure 6 (%s): %w", c.name, err)
		}
		for _, mt := range []congestion.Metric{congestion.Vertical, congestion.Horizontal} {
			s := res.Routing.Map.Summarize(mt)
			out.Maps = append(out.Maps, FigureMap{
				Title:  fmt.Sprintf("Fig. 6: %s — %s (max %.1f%%)", c.name, mt, s.Max),
				Metric: mt,
				Map:    res.Routing.Map,
			})
		}
	}
	return out, nil
}

// Format renders all six maps.
func (f *Figure6Result) Format() string {
	var b strings.Builder
	for _, m := range f.Maps {
		b.WriteString(m.Render())
		b.WriteString("\n")
	}
	return b.String()
}
