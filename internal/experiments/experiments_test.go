package experiments

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/ir"
)

// benchModule returns a small design for plumbing tests.
func benchModule() *ir.Module {
	m := ir.NewModule("plumb")
	b := ir.NewBuilder(m.NewFunction("plumb_top"))
	p := b.Port("p", 16)
	b.Ret(b.Op(ir.KindNot, 16, p))
	return m
}

// quickCfg keeps experiment tests fast: shrunken models, fewer SA moves.
func quickCfg() Config {
	cfg := DefaultConfig()
	cfg.Quick = true
	cfg.Flow.Place.Moves = 8000
	return cfg
}

func TestTableI(t *testing.T) {
	res, err := TableI(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	with, without := res.Rows[0], res.Rows[1]
	// The paper's qualitative claims: directives slash latency but raise
	// congestion and cost frequency.
	if with.LatencyCycles >= without.LatencyCycles {
		t.Errorf("directives did not reduce latency: %d vs %d",
			with.LatencyCycles, without.LatencyCycles)
	}
	if with.MaxCongPct <= without.MaxCongPct {
		t.Errorf("directives did not increase congestion: %.1f vs %.1f",
			with.MaxCongPct, without.MaxCongPct)
	}
	if with.FmaxMHz >= without.FmaxMHz {
		t.Errorf("directives did not cost frequency: %.1f vs %.1f",
			with.FmaxMHz, without.FmaxMHz)
	}
	out := res.Format()
	for _, want := range []string{"TABLE I", "With Directives", "Without Directives"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q", want)
		}
	}
}

func TestTableVI(t *testing.T) {
	res, err := TableVI(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	base, ni, rep := res.Rows[0], res.Rows[1], res.Rows[2]
	// Monotone congestion resolution: the congested-CLB count collapses.
	if !(base.CongestedCLBs > ni.CongestedCLBs && ni.CongestedCLBs > rep.CongestedCLBs) {
		t.Errorf("congested CLBs not monotone: %d -> %d -> %d",
			base.CongestedCLBs, ni.CongestedCLBs, rep.CongestedCLBs)
	}
	// Frequency recovers at each step.
	if !(base.FmaxMHz < ni.FmaxMHz && ni.FmaxMHz < rep.FmaxMHz) {
		t.Errorf("Fmax not monotone: %.1f -> %.1f -> %.1f",
			base.FmaxMHz, ni.FmaxMHz, rep.FmaxMHz)
	}
	// Latency stays roughly flat (within 15% of baseline).
	for i, d := range res.DeltaLatency {
		if float64(d) > 0.15*float64(base.LatencyCycles) {
			t.Errorf("step %d latency regressed by %d cycles", i, d)
		}
	}
	if !strings.Contains(res.Format(), "TABLE VI") {
		t.Error("format header missing")
	}
}

func TestFigure1(t *testing.T) {
	res, err := Figure1(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Maps) != 2 {
		t.Fatalf("maps = %d", len(res.Maps))
	}
	out := res.Format()
	if !strings.Contains(out, "with directives") || !strings.Contains(out, "without directives") {
		t.Error("figure titles missing")
	}
	if len(strings.Split(out, "\n")) < 40 {
		t.Error("rendered maps suspiciously short")
	}
}

func TestFigure5CenterHot(t *testing.T) {
	res, err := Figure5(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.CenterMean <= res.MarginMean {
		t.Errorf("center %.1f not hotter than margin %.1f — Fig. 5 shape broken",
			res.CenterMean, res.MarginMean)
	}
	if len(res.Profile) != 8 {
		t.Errorf("profile bins = %d", len(res.Profile))
	}
	if !strings.Contains(res.Format(), "Fig. 5") {
		t.Error("format header missing")
	}
}

func TestFigure6(t *testing.T) {
	res, err := Figure6(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Maps) != 6 {
		t.Fatalf("maps = %d, want 3 steps x 2 directions", len(res.Maps))
	}
}

func TestTableIIIAggregates(t *testing.T) {
	if testing.Short() {
		t.Skip("full dataset flows in -short mode")
	}
	res, err := TableIII(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Impls) != 3 {
		t.Fatalf("implementations = %d", len(res.Impls))
	}
	for col := 0; col < 5; col++ {
		if !(res.Min[col] <= res.Avg[col] && res.Avg[col] <= res.Max[col]) {
			t.Errorf("column %d not ordered: min %v avg %v max %v",
				col, res.Min[col], res.Avg[col], res.Max[col])
		}
	}
	if res.Samples < 7000 {
		t.Errorf("only %d samples aggregated", res.Samples)
	}
	if !strings.Contains(res.Format(), "TABLE III") {
		t.Error("format header missing")
	}
}

func TestTableIVQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset build in -short mode")
	}
	res, err := TableIV(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d, want 3 models x 2 filtering", len(res.Rows))
	}
	for _, r := range res.Rows {
		for _, tg := range dataset.Targets {
			if r.Acc[tg].MAE <= 0 {
				t.Errorf("%v/%v: zero MAE is implausible", r.Kind, tg)
			}
			if r.Acc[tg].MedAE > r.Acc[tg].MAE {
				t.Errorf("%v/%v: MedAE %v above MAE %v (label errors are right-skewed)",
					r.Kind, tg, r.Acc[tg].MedAE, r.Acc[tg].MAE)
			}
		}
	}
	if !strings.Contains(res.Format(), "TABLE IV") {
		t.Error("format header missing")
	}
}

func TestTableVQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset build in -short mode")
	}
	res, err := TableV(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, tg := range dataset.Targets {
		rank := res.Ranking[tg]
		if len(rank) == 0 {
			t.Fatalf("no ranking for %v", tg)
		}
		total := 0.0
		for i, ci := range rank {
			total += ci.Importance
			if i > 0 && rank[i-1].Importance < ci.Importance {
				t.Fatal("ranking not sorted")
			}
		}
		if total < 0.99 || total > 1.01 {
			t.Errorf("%v importance sums to %v", tg, total)
		}
	}
	if !strings.Contains(res.Format(), "TABLE V") {
		t.Error("format header missing")
	}
}

func TestFigure6Format(t *testing.T) {
	res, err := Figure6(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	out := res.Format()
	for _, want := range []string{"Baseline", "Not Inline", "Replication", "Vertical", "Horizontal"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 6 format missing %q", want)
		}
	}
}

func TestRunOnce(t *testing.T) {
	cfg := quickCfg()
	res, err := RunOnce(benchModule(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Timing == nil {
		t.Fatal("RunOnce returned incomplete result")
	}
}
