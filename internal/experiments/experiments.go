// Package experiments regenerates every table and figure of the paper's
// evaluation section from the simulated flow: Table I (directive
// comparison), Figure 1 (congestion maps), Table III (benchmark property
// summary), Table IV (congestion estimation accuracy — the headline
// result), Table V (important feature categories), Table VI (the Face
// Detection case study) and Figures 5/6 (congestion distributions). Each
// runner returns structured results plus a formatted text rendering; the
// root-level benchmarks and cmd/hlscong call straight into them.
package experiments

import (
	"context"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/flow"
	"repro/internal/flowcache"
	"repro/internal/ir"
	"repro/internal/store"
)

// Config selects the flow setup and effort level for experiment runs.
type Config struct {
	Flow flow.Config
	// Seed drives the train/test split and model seeds.
	Seed int64
	// Quick shrinks the ML models (fewer boosting stages / epochs) so unit
	// tests finish fast; published numbers use Quick=false.
	Quick bool
	// Workers bounds how many flow runs (dataset builds) and grid-search
	// cells evaluate concurrently. Zero means one worker per CPU; 1 forces
	// sequential execution. Results are identical either way — see
	// core.BuildOptions.Workers and ml.GridSearchCVWorkers.
	Workers int
	// Ctx optionally bounds every flow run of the experiment (deadline,
	// Ctrl-C); nil means context.Background().
	Ctx context.Context
	// Checkpoint optionally persists per-module dataset-build progress to
	// an artifact store (see core.BuildOptions.Checkpoint): a killed
	// experiment resumes its dataset build instead of recomputing it.
	Checkpoint *store.Checkpoint
}

// ctx normalizes the optional context.
func (c Config) ctx() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

// DefaultConfig mirrors the paper's setup. It installs a flow cache so
// repeated (design, config, seed) implementations across tables, figures
// and ablations are memoized within one experiment session — outputs are
// byte-identical with the cache removed (Flow.Cache = nil).
func DefaultConfig() Config {
	cfg := flow.DefaultConfig()
	cfg.Cache = flowcache.New(0)
	return Config{Flow: cfg, Seed: 42}
}

// buildModel adapts the model size to the effort level.
func (c Config) evaluate(ds *dataset.Dataset, kind core.ModelKind, filter bool) (core.EvalRow, error) {
	if !c.Quick {
		return core.Evaluate(ds, kind, filter, c.Seed)
	}
	return core.EvaluateSized(ds, kind, filter, c.Seed, core.SizeQuick)
}

// RunOnce executes the flow on one module with the experiment's setup.
func RunOnce(m *ir.Module, cfg Config) (*flow.Result, error) {
	return flow.RunContext(cfg.ctx(), m, cfg.Flow)
}

// PaperDataset builds the paper's 8111-sample-scale dataset from the three
// combined implementations (Face Detection; Digit Recognition + Spam
// Filtering; BNN + 3D Rendering + Optical Flow).
func (c Config) PaperDataset() (*dataset.Dataset, []*flow.Result, error) {
	ds, results, _, err := core.BuildDatasetContext(c.ctx(), bench.TrainingModules(), c.Flow,
		core.BuildOptions{LabelRuns: core.LabelRuns, Retry: flow.DefaultRetryPolicy(),
			Workers: c.Workers, Checkpoint: c.Checkpoint})
	return ds, results, err
}
