package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/backtrace"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/ir"
	"repro/internal/ml"
)

// Hotspot detection: the paper closes Sec. IV-A with "since we attempt to
// locate the most congested region in the source code, the accuracy of our
// model is sufficient to solve our problem". This experiment measures that
// claim directly: train the predictor, predict per-source-line congestion
// for a design from HLS information only, run one real PAR, and score how
// well the predicted ranking finds the actually hottest lines.

// HotspotDetectionResult scores predicted-vs-actual hotspot rankings.
type HotspotDetectionResult struct {
	Design string
	Lines  int
	// PrecisionAtK is |predicted top-K ∩ actual top-K| / K over source
	// lines, for K = 1, 3, 5, 10.
	PrecisionAtK map[int]float64
	// Spearman is the rank correlation between predicted and actual mean
	// congestion per source line.
	Spearman float64
	// TopPredicted / TopActual list the leading lines of each ranking.
	TopPredicted []string
	TopActual    []string
}

// HotspotDetection trains the filtered GBRT on the paper dataset and
// scores hotspot localization on the Face Detection baseline.
func HotspotDetection(cfg Config) (*HotspotDetectionResult, error) {
	ds, _, err := cfg.PaperDataset()
	if err != nil {
		return nil, err
	}
	pred, err := core.Train(ds, core.TrainOptions{Kind: core.GBRT, Filter: true, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	design := bench.FaceDetection(bench.WithDirectives())
	return HotspotDetectionModule(cfg, pred, design)
}

// HotspotDetectionModule scores an already-trained predictor on one
// design: predict per-line congestion from HLS information, run one real
// flow, and compare rankings.
func HotspotDetectionModule(cfg Config, pred *core.Predictor, m *ir.Module) (*HotspotDetectionResult, error) {
	preds, err := pred.PredictModule(m, cfg.Flow)
	if err != nil {
		return nil, err
	}
	predicted := core.Hotspots(preds)

	res, err := flow.Run(m, cfg.Flow)
	if err != nil {
		return nil, err
	}
	actual := backtrace.HotspotsBySource(backtrace.Trace(res))

	// Align the two rankings on the union of source lines, scoring by mean
	// average congestion per line.
	predScore := make(map[string]float64)
	for _, h := range predicted {
		predScore[h.Loc.String()] = (h.MeanV + h.MeanH) / 2
	}
	actScore := make(map[string]float64)
	for _, h := range actual {
		actScore[h.Loc.String()] = (h.MeanV + h.MeanH) / 2
	}
	var lines []string
	for l := range actScore {
		if _, ok := predScore[l]; ok {
			lines = append(lines, l)
		}
	}
	sort.Strings(lines)
	pv := make([]float64, len(lines))
	av := make([]float64, len(lines))
	for i, l := range lines {
		pv[i] = predScore[l]
		av[i] = actScore[l]
	}
	out := &HotspotDetectionResult{
		Design:       m.Name,
		Lines:        len(lines),
		PrecisionAtK: make(map[int]float64),
		Spearman:     ml.Spearman(pv, av),
	}
	rank := func(score map[string]float64) []string {
		ls := append([]string(nil), lines...)
		sort.Slice(ls, func(i, j int) bool { return score[ls[i]] > score[ls[j]] })
		return ls
	}
	pRank := rank(predScore)
	aRank := rank(actScore)
	for _, k := range []int{1, 3, 5, 10} {
		if k > len(lines) {
			continue
		}
		inTop := make(map[string]bool, k)
		for _, l := range aRank[:k] {
			inTop[l] = true
		}
		hit := 0
		for _, l := range pRank[:k] {
			if inTop[l] {
				hit++
			}
		}
		out.PrecisionAtK[k] = float64(hit) / float64(k)
	}
	limit := 5
	if limit > len(pRank) {
		limit = len(pRank)
	}
	out.TopPredicted = append(out.TopPredicted, pRank[:limit]...)
	out.TopActual = append(out.TopActual, aRank[:limit]...)
	return out, nil
}

// Format renders the detection scores.
func (r *HotspotDetectionResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "HOTSPOT DETECTION (%s, %d source lines)\n", r.Design, r.Lines)
	fmt.Fprintf(&b, "rank correlation (Spearman): %.2f\n", r.Spearman)
	ks := []int{1, 3, 5, 10}
	for _, k := range ks {
		if p, ok := r.PrecisionAtK[k]; ok {
			fmt.Fprintf(&b, "precision@%-2d %.2f\n", k, p)
		}
	}
	fmt.Fprintf(&b, "predicted top lines: %s\n", strings.Join(r.TopPredicted, ", "))
	fmt.Fprintf(&b, "actual top lines:    %s\n", strings.Join(r.TopActual, ", "))
	return b.String()
}
