package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ml"
	"repro/internal/obs"
)

// TuningResult reports the grid search outcome for one model family.
type TuningResult struct {
	Kind      core.ModelKind
	Best      ml.Params
	BestScore float64 // mean CV MAE of the winner
	Evaluated int
	Folds     int
	Rows      int           // training rows the search ran on
	Elapsed   time.Duration // wall time of the grid search itself
}

// CandidatesPerSec is the search throughput: grid candidates evaluated
// (each over all CV folds) per second of wall time.
func (r *TuningResult) CandidatesPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Evaluated) / r.Elapsed.Seconds()
}

// Tuning reproduces the paper's model-selection protocol: grid search with
// k-fold cross-validation over the training portion of the dataset,
// scoring by MAE on the vertical congestion target. Full mode uses 10
// folds on a subsample of the training split (full-size CV of the boosted
// and neural models would take hours in pure Go); quick mode shrinks folds
// and grid for tests.
func Tuning(cfg Config, ds *dataset.Dataset, kind core.ModelKind) (*TuningResult, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	split := ml.TrainTestSplit(ds.Len(), 0.2, rng)
	X, y := ds.Matrix(dataset.Vertical)
	Xtr, ytr := ml.Take(X, y, split.Train)

	folds := 10
	maxRows := 1500
	if cfg.Quick {
		folds = 3
		maxRows = 400
	}
	if len(Xtr) > maxRows {
		Xtr, ytr = Xtr[:maxRows], ytr[:maxRows]
	}
	scaler := ml.FitScaler(Xtr)
	var xm ml.Matrix
	scaler.TransformRowsInto(&xm, Xtr)
	XtrS := xm.RowViews(nil)

	// The experiment's observer rides along on the flow config; the grid
	// search traces/measures through it without changing the result.
	o := cfg.Flow.Obs
	start := time.Now()
	res, err := ml.GridSearchCVObs(core.Factory(kind, cfg.Seed), core.TuningGrid(kind, cfg.Quick),
		XtrS, ytr, folds, rng, cfg.Workers, o)
	if err != nil {
		return nil, fmt.Errorf("experiments: tuning %s: %w", kind, err)
	}
	out := &TuningResult{
		Kind:      kind,
		Best:      res.Best,
		BestScore: res.BestScore,
		Evaluated: res.Evaluated,
		Folds:     folds,
		Rows:      len(Xtr),
		Elapsed:   time.Since(start),
	}
	o.SetGauge(obs.MetricGridCandidatesPerSec, out.CandidatesPerSec())
	if l := o.Logger(); l != nil {
		l.Info("grid search finished", "model", kind.String(), "candidates", out.Evaluated,
			"cand_per_sec", out.CandidatesPerSec(), "cv_mae", out.BestScore)
	}
	return out, nil
}

// TuneAll runs the search for every model family on a fresh dataset.
func TuneAll(cfg Config) ([]*TuningResult, error) {
	ds, _, err := cfg.PaperDataset()
	if err != nil {
		return nil, err
	}
	var out []*TuningResult
	for _, kind := range core.ModelKinds {
		r, err := Tuning(cfg, ds, kind)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// FormatTuning renders tuning results.
func FormatTuning(results []*TuningResult) string {
	var b strings.Builder
	b.WriteString("HYPERPARAMETER SEARCH (grid + k-fold CV, vertical congestion MAE)\n")
	for _, r := range results {
		fmt.Fprintf(&b, "%-7s best=%v  cvMAE=%.2f  (%d candidates, %d folds, %d rows)  %.2fs (%.1f cand/s)\n",
			r.Kind, formatParams(r.Best), r.BestScore, r.Evaluated, r.Folds, r.Rows,
			r.Elapsed.Seconds(), r.CandidatesPerSec())
	}
	return b.String()
}

func formatParams(p ml.Params) string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	// Small fixed sort to keep output deterministic.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s: %g", k, p[k])
	}
	b.WriteByte('}')
	return b.String()
}
