package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ml"
)

// Cross-design generalization: the paper's flow assumes the target design
// (or similar applications) contributed to the training set — "if there
// are not many available applications ... the target design should go
// through the complete C-to-FPGA flow for one time to generate congestion
// metrics which will be used to enrich the dataset" (Sec. III). This
// experiment quantifies that caveat with leave-one-design-out evaluation:
// train on two implementations, test on the third, and compare with the
// random-split protocol of Table IV.

// GeneralizationRow is one leave-one-design-out fold.
type GeneralizationRow struct {
	HeldOut string
	Train   int
	Test    int
	Acc     map[dataset.Target]core.Accuracy
}

// GeneralizationResult bundles all folds plus the random-split reference.
type GeneralizationResult struct {
	Rows []GeneralizationRow
	// RandomSplit is the GBRT filtered row of Table IV, for comparison.
	RandomSplit map[dataset.Target]core.Accuracy
}

// Generalization runs leave-one-design-out with the GBRT (the best model).
func Generalization(cfg Config, ds *dataset.Dataset) (*GeneralizationResult, error) {
	size := core.SizeFull
	if cfg.Quick {
		size = core.SizeQuick
	}
	designs := map[string]bool{}
	for _, s := range ds.Samples {
		designs[s.Design] = true
	}
	var names []string
	for n := range designs {
		names = append(names, n)
	}
	// Insertion-order independent: sort.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	out := &GeneralizationResult{}
	marginal := ds.Marginal()
	var trM, teM ml.Matrix // backing arrays shared across the folds
	for _, held := range names {
		train := &dataset.Dataset{FeatureNames: ds.FeatureNames}
		test := &dataset.Dataset{FeatureNames: ds.FeatureNames}
		for i, s := range ds.Samples {
			if s.Design == held {
				test.Samples = append(test.Samples, s)
			} else if !marginal[i] {
				train.Samples = append(train.Samples, s)
			}
		}
		if train.Len() == 0 || test.Len() == 0 {
			continue
		}
		row := GeneralizationRow{
			HeldOut: held,
			Train:   train.Len(),
			Test:    test.Len(),
			Acc:     make(map[dataset.Target]core.Accuracy),
		}
		Xtr, _ := train.Matrix(dataset.Vertical)
		scaler := ml.FitScaler(Xtr)
		scaler.TransformRowsInto(&trM, Xtr)
		XtrS := trM.RowViews(nil)
		Xte, _ := test.Matrix(dataset.Vertical)
		scaler.TransformRowsInto(&teM, Xte)
		XteS := teM.RowViews(nil)
		pred := make([]float64, len(XteS))
		for _, tg := range dataset.Targets {
			_, ytr := train.Matrix(tg)
			_, yte := test.Matrix(tg)
			m := core.NewModelSized(core.GBRT, cfg.Seed, size)
			if err := m.Fit(XtrS, ytr); err != nil {
				return nil, fmt.Errorf("experiments: generalization (%s/%s): %w", held, tg, err)
			}
			ml.PredictBatchInto(m, XteS, pred)
			row.Acc[tg] = core.Accuracy{MAE: ml.MAE(yte, pred), MedAE: ml.MedAE(yte, pred)}
		}
		out.Rows = append(out.Rows, row)
	}
	// Reference: the standard random-split protocol.
	ref, err := cfg.evaluate(ds, core.GBRT, true)
	if err != nil {
		return nil, err
	}
	out.RandomSplit = ref.Acc
	return out, nil
}

// Format renders the generalization table.
func (g *GeneralizationResult) Format() string {
	var b strings.Builder
	b.WriteString("CROSS-DESIGN GENERALIZATION (GBRT, leave-one-design-out)\n")
	fmt.Fprintf(&b, "%-22s %6s %6s", "held-out design", "train", "test")
	for _, tg := range dataset.Targets {
		fmt.Fprintf(&b, " | %-11s MAE MedAE", tg)
	}
	b.WriteString("\n")
	for _, r := range g.Rows {
		fmt.Fprintf(&b, "%-22s %6d %6d", r.HeldOut, r.Train, r.Test)
		for _, tg := range dataset.Targets {
			fmt.Fprintf(&b, " | %12.2f %8.2f", r.Acc[tg].MAE, r.Acc[tg].MedAE)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%-22s %6s %6s", "(random 80/20 split)", "-", "-")
	for _, tg := range dataset.Targets {
		fmt.Fprintf(&b, " | %12.2f %8.2f", g.RandomSplit[tg].MAE, g.RandomSplit[tg].MedAE)
	}
	b.WriteString("\n")
	b.WriteString("Unseen-design error quantifies the paper's advice to enrich the dataset\nwith one full flow of the target design when few applications are available.\n")
	return b.String()
}
