package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/features"
	"repro/internal/ml"
)

// The ablation experiments quantify the design decisions DESIGN.md calls
// out: how much each feature category contributes to accuracy, how the
// marginal-filter threshold behaves, and what multi-seed label averaging
// buys. None of these appear in the paper verbatim; they exist to justify
// this reproduction's choices.

// CategoryAblation is the accuracy cost of hiding one feature category.
type CategoryAblation struct {
	Category features.Category
	MAE      float64 // test MAE with the category zeroed out
	Delta    float64 // MAE - baseline (positive = category helps)
}

// CategoryAblationResult bundles the sweep.
type CategoryAblationResult struct {
	Baseline float64
	Rows     []CategoryAblation
}

// AblateCategories trains the GBRT on the average-congestion target with
// each feature category zeroed in turn and reports the accuracy cost —
// Table V's importance ranking validated by intervention instead of split
// counts.
func AblateCategories(cfg Config, ds *dataset.Dataset) (*CategoryAblationResult, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	split := ml.TrainTestSplit(ds.Len(), 0.2, rng)
	X, y := ds.Matrix(dataset.Average)
	Xtr, ytr := ml.Take(X, y, split.Train)
	Xte, yte := ml.Take(X, y, split.Test)
	cats := features.Categories()
	size := core.SizeFull
	if cfg.Quick {
		size = core.SizeQuick
	}

	// One set of flat matrices and one prediction buffer serve the whole
	// sweep: every point reuses their backing arrays.
	var trM, teM ml.Matrix
	pred := make([]float64, len(Xte))
	eval := func(hide features.Category, mask bool) (float64, error) {
		maskRows := func(rows [][]float64) [][]float64 {
			if !mask {
				return rows
			}
			out := make([][]float64, len(rows))
			for i, r := range rows {
				c := append([]float64(nil), r...)
				for j := range c {
					if cats[j] == hide {
						c[j] = 0
					}
				}
				out[i] = c
			}
			return out
		}
		mXtr := maskRows(Xtr)
		mXte := maskRows(Xte)
		scaler := ml.FitScaler(mXtr)
		scaler.TransformRowsInto(&trM, mXtr)
		scaler.TransformRowsInto(&teM, mXte)
		m := core.NewModelSized(core.GBRT, cfg.Seed, size)
		if err := m.Fit(trM.RowViews(nil), ytr); err != nil {
			return 0, err
		}
		ml.PredictBatchInto(m, teM.RowViews(nil), pred)
		return ml.MAE(yte, pred), nil
	}

	base, err := eval(0, false)
	if err != nil {
		return nil, fmt.Errorf("experiments: category ablation baseline: %w", err)
	}
	out := &CategoryAblationResult{Baseline: base}
	for c := 0; c < features.CategoryCount; c++ {
		mae, err := eval(features.Category(c), true)
		if err != nil {
			return nil, fmt.Errorf("experiments: category ablation %v: %w", features.Category(c), err)
		}
		out.Rows = append(out.Rows, CategoryAblation{
			Category: features.Category(c),
			MAE:      mae,
			Delta:    mae - base,
		})
	}
	return out, nil
}

// Format renders the ablation table.
func (r *CategoryAblationResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "FEATURE-CATEGORY ABLATION (GBRT, Avg(V,H) target; baseline MAE %.2f)\n", r.Baseline)
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  without %-20s MAE %6.2f  (%+.2f)\n", row.Category, row.MAE, row.Delta)
	}
	return b.String()
}

// FilterSweepPoint is one marginal-filter threshold setting.
type FilterSweepPoint struct {
	Deviation float64
	Removed   int
	MAE       float64 // GBRT test MAE on the filtered dataset
}

// SweepFilterThreshold sweeps the marginal-operation deviation threshold
// (0 disables the filter; the library default is 0.9) and reports the GBRT
// accuracy at each point.
func SweepFilterThreshold(cfg Config, ds *dataset.Dataset, deviations []float64) ([]FilterSweepPoint, error) {
	size := core.SizeFull
	if cfg.Quick {
		size = core.SizeQuick
	}
	var trM, teM ml.Matrix
	var out []FilterSweepPoint
	for _, dev := range deviations {
		marg := ds.MarginalWithDeviation(dev)
		rng := rand.New(rand.NewSource(cfg.Seed))
		split := ml.TrainTestSplit(ds.Len(), 0.2, rng)
		keep := func(idx []int) ([][]float64, []float64) {
			var X [][]float64
			var y []float64
			for _, i := range idx {
				if marg[i] {
					continue
				}
				X = append(X, ds.Samples[i].Features)
				y = append(y, ds.Samples[i].AvgPct)
			}
			return X, y
		}
		Xtr, ytr := keep(split.Train)
		Xte, yte := keep(split.Test)
		scaler := ml.FitScaler(Xtr)
		scaler.TransformRowsInto(&trM, Xtr)
		scaler.TransformRowsInto(&teM, Xte)
		m := core.NewModelSized(core.GBRT, cfg.Seed, size)
		if err := m.Fit(trM.RowViews(nil), ytr); err != nil {
			return nil, fmt.Errorf("experiments: filter sweep dev=%.2f: %w", dev, err)
		}
		removed := 0
		for _, mg := range marg {
			if mg {
				removed++
			}
		}
		pred := ml.PredictBatchInto(m, teM.RowViews(nil), make([]float64, len(Xte)))
		out = append(out, FilterSweepPoint{
			Deviation: dev,
			Removed:   removed,
			MAE:       ml.MAE(yte, pred),
		})
	}
	return out, nil
}

// FormatFilterSweep renders the sweep.
func FormatFilterSweep(points []FilterSweepPoint) string {
	var b strings.Builder
	b.WriteString("MARGINAL-FILTER THRESHOLD SWEEP (GBRT, Avg(V,H))\n")
	for _, p := range points {
		fmt.Fprintf(&b, "  deviation %.2f: removed %4d samples, MAE %6.2f\n", p.Deviation, p.Removed, p.MAE)
	}
	return b.String()
}

// LabelRunsPoint is one label-averaging setting.
type LabelRunsPoint struct {
	Runs int
	MAE  float64
}

// AblateLabelAveraging rebuilds the dataset with 1..N placement runs per
// label and reports the GBRT accuracy, quantifying DESIGN.md's expected-
// congestion substitution for the paper's deterministic Vivado placements.
func AblateLabelAveraging(cfg Config, runCounts []int) ([]LabelRunsPoint, error) {
	size := core.SizeFull
	if cfg.Quick {
		size = core.SizeQuick
	}
	var trM, teM ml.Matrix
	var out []LabelRunsPoint
	for _, runs := range runCounts {
		ds, _, err := core.BuildDatasetRuns(bench.TrainingModules(), cfg.Flow, runs)
		if err != nil {
			return nil, fmt.Errorf("experiments: label-averaging runs=%d: %w", runs, err)
		}
		rng := rand.New(rand.NewSource(cfg.Seed))
		split := ml.TrainTestSplit(ds.Len(), 0.2, rng)
		X, y := ds.Matrix(dataset.Average)
		Xtr, ytr := ml.Take(X, y, split.Train)
		Xte, yte := ml.Take(X, y, split.Test)
		scaler := ml.FitScaler(Xtr)
		scaler.TransformRowsInto(&trM, Xtr)
		scaler.TransformRowsInto(&teM, Xte)
		m := core.NewModelSized(core.GBRT, cfg.Seed, size)
		if err := m.Fit(trM.RowViews(nil), ytr); err != nil {
			return nil, err
		}
		pred := ml.PredictBatchInto(m, teM.RowViews(nil), make([]float64, len(Xte)))
		out = append(out, LabelRunsPoint{
			Runs: runs,
			MAE:  ml.MAE(yte, pred),
		})
	}
	return out, nil
}

// FormatLabelRuns renders the ablation.
func FormatLabelRuns(points []LabelRunsPoint) string {
	var b strings.Builder
	b.WriteString("LABEL-AVERAGING ABLATION (GBRT, Avg(V,H); labels averaged over N placements)\n")
	for _, p := range points {
		fmt.Fprintf(&b, "  runs=%d: MAE %6.2f\n", p.Runs, p.MAE)
	}
	return b.String()
}
