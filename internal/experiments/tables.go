package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/backtrace"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/features"
	"repro/internal/flow"
	"repro/internal/ml/gbrt"
)

// ---------------------------------------------------------------------------
// Table I — performance comparison of Face Detection with and without HLS
// directives.

// TableIResult holds the two implementation rows.
type TableIResult struct {
	Rows []flow.PerfRow
}

// TableI runs Face Detection with the paper's directive bundle and without
// any directives through the complete flow.
func TableI(cfg Config) (*TableIResult, error) {
	var out TableIResult
	for _, c := range []struct {
		name string
		dir  bench.Directives
	}{
		{"With Directives", bench.WithDirectives()},
		{"Without Directives", bench.WithoutDirectives()},
	} {
		res, err := flow.Run(bench.FaceDetection(c.dir), cfg.Flow)
		if err != nil {
			return nil, fmt.Errorf("experiments: table I (%s): %w", c.name, err)
		}
		out.Rows = append(out.Rows, res.Perf(c.name))
	}
	return &out, nil
}

// Format renders the table in the paper's layout.
func (t *TableIResult) Format() string {
	var b strings.Builder
	b.WriteString("TABLE I. PERFORMANCE COMPARISON\n")
	fmt.Fprintf(&b, "%-20s %10s %14s %16s %18s\n",
		"Implementation", "WNS(ns)", "Max Freq.(MHz)", "Latency(cycles)", "Max Congestion(%)")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-20s %10.3f %14.1f %16.3g %18.2f\n",
			r.Name, r.WNS, r.FmaxMHz, float64(r.LatencyCycles), r.MaxCongPct)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Table III — property summary of the benchmark implementations.

// TableIIIResult aggregates WNS/Fmax across the three implementations and
// the congestion metrics across all back-traced samples, mirroring the
// paper's Max/Min/Avg rows.
type TableIIIResult struct {
	Impls []flow.PerfRow // per-implementation timing rows

	// Max/Min/Avg of each column in paper order: WNS, Freq, Vertical
	// congestion, Horizontal congestion, Avg(V,H).
	Max, Min, Avg [5]float64

	Samples int
}

// TableIII runs the three dataset implementations and aggregates.
func TableIII(cfg Config) (*TableIIIResult, error) {
	out := &TableIIIResult{}
	for i := range out.Max {
		out.Max[i] = math.Inf(-1)
		out.Min[i] = math.Inf(1)
	}
	var sums [5]float64
	var wnsVals, freqVals []float64
	nSamples := 0
	for _, m := range bench.TrainingModules() {
		res, err := flow.Run(m, cfg.Flow)
		if err != nil {
			return nil, fmt.Errorf("experiments: table III (%s): %w", m.Name, err)
		}
		p := res.Perf(m.Name)
		out.Impls = append(out.Impls, p)
		wnsVals = append(wnsVals, p.WNS)
		freqVals = append(freqVals, p.FmaxMHz)
		for _, t := range backtrace.Trace(res) {
			vals := [3]float64{t.VertPct, t.HorizPct, t.AvgPct}
			for j, v := range vals {
				col := 2 + j
				if v > out.Max[col] {
					out.Max[col] = v
				}
				if v < out.Min[col] {
					out.Min[col] = v
				}
				sums[col] += v
			}
			nSamples++
		}
	}
	for _, v := range wnsVals {
		out.Max[0] = math.Max(out.Max[0], v)
		out.Min[0] = math.Min(out.Min[0], v)
		sums[0] += v
	}
	for _, v := range freqVals {
		out.Max[1] = math.Max(out.Max[1], v)
		out.Min[1] = math.Min(out.Min[1], v)
		sums[1] += v
	}
	for j := 0; j < 2; j++ {
		out.Avg[j] = sums[j] / float64(len(out.Impls))
	}
	for j := 2; j < 5; j++ {
		out.Avg[j] = sums[j] / float64(nSamples)
	}
	out.Samples = nSamples
	return out, nil
}

// Format renders the paper's Max/Min/Avg rows.
func (t *TableIIIResult) Format() string {
	var b strings.Builder
	b.WriteString("TABLE III. PROPERTY SUMMARY OF BENCHMARKS\n")
	fmt.Fprintf(&b, "%-8s %10s %10s %16s %18s %14s\n",
		"Metrics", "WNS(ns)", "Freq.(MHz)", "Vertical Cong(%)", "Horizontal Cong(%)", "Avg. (V, H)(%)")
	row := func(name string, v [5]float64) {
		fmt.Fprintf(&b, "%-8s %10.3f %10.1f %16.2f %18.2f %14.2f\n",
			name, v[0], v[1], v[2], v[3], v[4])
	}
	row("Max", t.Max)
	row("Min", t.Min)
	row("Avg.", t.Avg)
	fmt.Fprintf(&b, "(%d back-traced CLB samples across %d implementations)\n",
		t.Samples, len(t.Impls))
	return b.String()
}

// ---------------------------------------------------------------------------
// Table IV — congestion estimation accuracy, the headline result.

// TableIVResult holds the six rows: {Linear, ANN, GBRT} x {not filtering,
// filtering}.
type TableIVResult struct {
	Rows             []core.EvalRow
	Samples          int
	MarginalFraction float64
}

// TableIV builds the dataset once and evaluates every model/filtering
// combination on the shared 80/20 split.
func TableIV(cfg Config) (*TableIVResult, error) {
	ds, _, err := cfg.PaperDataset()
	if err != nil {
		return nil, fmt.Errorf("experiments: table IV: %w", err)
	}
	return TableIVOn(cfg, ds)
}

// TableIVOn evaluates Table IV on a pre-built dataset (the CLI reuses a
// CSV-loaded dataset this way).
func TableIVOn(cfg Config, ds *dataset.Dataset) (*TableIVResult, error) {
	out := &TableIVResult{Samples: ds.Len(), MarginalFraction: ds.MarginalFraction()}
	for _, filter := range []bool{false, true} {
		for _, kind := range core.ModelKinds {
			row, err := cfg.evaluate(ds, kind, filter)
			if err != nil {
				return nil, fmt.Errorf("experiments: table IV: %w", err)
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// Format renders the table in the paper's layout.
func (t *TableIVResult) Format() string {
	var b strings.Builder
	b.WriteString("TABLE IV. CONGESTION ESTIMATION RESULTS\n")
	fmt.Fprintf(&b, "%-14s %-8s", "", "Models")
	for _, tg := range dataset.Targets {
		fmt.Fprintf(&b, " | %-11s MAE  MedAE", tg)
	}
	b.WriteString("\n")
	for _, r := range t.Rows {
		group := "Not Filtering"
		if r.Filtered {
			group = "Filtering"
		}
		fmt.Fprintf(&b, "%-14s %-8s", group, r.Kind)
		for _, tg := range dataset.Targets {
			a := r.Acc[tg]
			fmt.Fprintf(&b, " | %17.2f %6.2f", a.MAE, a.MedAE)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "(%d samples; marginal operations: %.2f%%)\n",
		t.Samples, 100*t.MarginalFraction)
	return b.String()
}

// ---------------------------------------------------------------------------
// Table V — important feature categories per congestion metric.

// CategoryImportance is one (category, importance share) pair.
type CategoryImportance struct {
	Category   features.Category
	Importance float64
}

// TableVResult ranks feature categories per target by GBRT split-count
// importance.
type TableVResult struct {
	Ranking map[dataset.Target][]CategoryImportance
}

// TableV trains a GBRT per congestion target on the filtered dataset and
// aggregates split-count feature importance by category.
func TableV(cfg Config) (*TableVResult, error) {
	ds, _, err := cfg.PaperDataset()
	if err != nil {
		return nil, fmt.Errorf("experiments: table V: %w", err)
	}
	return TableVOn(cfg, ds)
}

// TableVOn computes Table V on a pre-built dataset.
func TableVOn(cfg Config, ds *dataset.Dataset) (*TableVResult, error) {
	filtered, _ := ds.FilterMarginal()
	size := core.SizeFull
	if cfg.Quick {
		size = core.SizeQuick
	}
	cats := features.Categories()
	out := &TableVResult{Ranking: make(map[dataset.Target][]CategoryImportance)}
	for _, tg := range dataset.Targets {
		X, y := filtered.Matrix(tg)
		m, ok := core.NewModelSized(core.GBRT, cfg.Seed, size).(*gbrt.Model)
		if !ok {
			return nil, fmt.Errorf("experiments: table V: GBRT model has unexpected type")
		}
		if err := m.Fit(X, y); err != nil {
			return nil, fmt.Errorf("experiments: table V (%s): %w", tg, err)
		}
		imp := m.FeatureImportance()
		byCat := make([]float64, features.CategoryCount)
		for j, v := range imp {
			byCat[cats[j]] += v
		}
		var rank []CategoryImportance
		for c := 0; c < features.CategoryCount; c++ {
			rank = append(rank, CategoryImportance{Category: features.Category(c), Importance: byCat[c]})
		}
		sort.Slice(rank, func(i, j int) bool { return rank[i].Importance > rank[j].Importance })
		out.Ranking[tg] = rank
	}
	return out, nil
}

// Format renders the top categories per metric like the paper's Table V.
func (t *TableVResult) Format() string {
	var b strings.Builder
	b.WriteString("TABLE V. IMPORTANT FEATURE CATEGORIES\n")
	fmt.Fprintf(&b, "%-6s", "Rank")
	for _, tg := range dataset.Targets {
		fmt.Fprintf(&b, " | %-28s", tg)
	}
	b.WriteString("\n")
	for rank := 0; rank < 4; rank++ {
		fmt.Fprintf(&b, "%-6d", rank+1)
		for _, tg := range dataset.Targets {
			r := t.Ranking[tg]
			if rank < len(r) {
				fmt.Fprintf(&b, " | %-19s (%5.1f%%)", r[rank].Category, 100*r[rank].Importance)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Table VI — the case study: resolving Face Detection's congestion.

// TableVIResult holds the three case-study rows.
type TableVIResult struct {
	Rows []flow.PerfRow
	// DeltaLatency is each row's latency minus the baseline's.
	DeltaLatency []int64
}

// TableVI runs Baseline, Not Inline and Replication through the flow.
func TableVI(cfg Config) (*TableVIResult, error) {
	out := &TableVIResult{}
	var base int64
	for i, c := range []struct {
		name string
		dir  bench.Directives
	}{
		{"Baseline", bench.WithDirectives()},
		{"Not Inline", bench.NotInline()},
		{"Replication", bench.Replication()},
	} {
		res, err := flow.Run(bench.FaceDetection(c.dir), cfg.Flow)
		if err != nil {
			return nil, fmt.Errorf("experiments: table VI (%s): %w", c.name, err)
		}
		p := res.Perf(c.name)
		out.Rows = append(out.Rows, p)
		if i == 0 {
			base = p.LatencyCycles
		}
		out.DeltaLatency = append(out.DeltaLatency, p.LatencyCycles-base)
	}
	return out, nil
}

// Format renders the table in the paper's layout.
func (t *TableVIResult) Format() string {
	var b strings.Builder
	b.WriteString("TABLE VI. CASE STUDY: PERFORMANCE IMPROVEMENT\n")
	fmt.Fprintf(&b, "%-14s %10s %14s %12s %22s %20s\n",
		"Implementation", "WNS(ns)", "Max Freq.(MHz)", "dLatency", "Max Cong Vert,Hori(%)", "#Congested CLBs(>100%)")
	for i, r := range t.Rows {
		fmt.Fprintf(&b, "%-14s %10.3f %14.1f %+12d %11.2f,%9.2f %20d\n",
			r.Name, r.WNS, r.FmaxMHz, t.DeltaLatency[i], r.MaxVertPct, r.MaxHorizPct, r.CongestedCLBs)
	}
	return b.String()
}
