// Package flowcache provides the standard implementation of flow.Cache: a
// concurrency-safe, LRU-bounded, content-addressed memoization of completed
// implementation flows. The flow itself computes the keys (flow.CacheKey
// hashes the design's canonical text, the full tool configuration and the
// seed), so this package is a pure key-value store: any input change yields
// a new key and stale entries simply age out of the LRU — there is no other
// invalidation. Cached *flow.Result values are shared between every caller
// that hits the same key; consumers must treat them as read-only, which
// everything downstream of the flow (back-tracing, graph building, feature
// extraction) already does.
//
// AttachStore adds a persistent disk tier (internal/store) underneath the
// memory tier: lookups go memory hit → disk hit → recompute, and every Put
// writes through to disk, so a later process restores completed flows
// instead of re-running them. Disk entries are verified end to end before
// use — container digest in the store, then a semantic check here that the
// decoded result re-hashes to the requested key — and any failure
// quarantines the entry and degrades to recompute. The disk tier is
// best-effort by design: its errors never fail a lookup or a store.
package flowcache

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/flow"
	"repro/internal/obs"
	"repro/internal/store"
)

// Stats is a point-in-time snapshot of cache effectiveness counters. It is
// always captured under one lock acquisition (see Cache.Stats), so the
// fields are mutually consistent — hits, misses, evictions, entry counts
// and byte totals all describe the same instant, and derived figures like
// HitRate can never mix counters from different moments. The counters
// describe the memory tier; the disk tier keeps its own (store.Stats).
type Stats struct {
	Hits      uint64
	Misses    uint64
	Puts      uint64
	Evictions uint64
	Entries   int
	// Bytes is the resident payload footprint of the memory tier: the sum
	// of each entry's encoded-artifact size (store.EncodedResultSize — the
	// exact bytes the entry occupies when spilled to the disk tier, zero
	// for results with missing artifacts). EvictedBytes totals the sizes
	// of entries the LRU bound has evicted, so the memory tier's pressure
	// reads in the same unit as the disk tier's byte budget.
	Bytes        int64
	EvictedBytes uint64
}

// HitRate returns hits/(hits+misses), zero when the cache is untouched.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// String renders the snapshot as one log-friendly line, eviction and
// resident bytes included.
func (s Stats) String() string {
	return fmt.Sprintf("flowcache: %d hits, %d misses (%.1f%% hit rate), %d puts, %d evictions (%d bytes evicted), %d entries (%d bytes)",
		s.Hits, s.Misses, 100*s.HitRate(), s.Puts, s.Evictions, s.EvictedBytes, s.Entries, s.Bytes)
}

// Cache is a bounded LRU flow-result cache, safe for concurrent use by the
// dataset builder's worker pool.
type Cache struct {
	mu        sync.Mutex
	max       int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	hits      uint64
	misses    uint64
	puts      uint64
	evictions uint64
	bytes     int64
	evBytes   uint64

	// disk is the optional persistent tier; see AttachStore.
	disk *store.Store

	// Observation handles (nil when unobserved): registry counters
	// mirroring the internal counters, and an eviction event sink. Hits
	// and misses fire on every Get from arbitrary worker goroutines, so
	// they are striped (per-goroutine hint picks the stripe) and merge
	// back to one series at Snapshot; evictions are rare and stay plain.
	obsHits, obsMisses *obs.StripedCounter
	obsEvictions       *obs.Counter
	obsrv              *obs.Observer
}

type entry struct {
	key  string
	res  *flow.Result
	size int
}

// DefaultMaxEntries bounds a cache built with New(0). Each entry pins one
// full flow Result (netlist, placement, congestion map), so the default is
// sized for the paper's experiment sweeps — a few designs at a few label
// seeds each across directive variants — not for unbounded corpora.
const DefaultMaxEntries = 128

// New returns a cache holding at most maxEntries results; maxEntries <= 0
// selects DefaultMaxEntries.
func New(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	return &Cache{
		max:   maxEntries,
		ll:    list.New(),
		items: make(map[string]*list.Element, maxEntries),
	}
}

// AttachStore installs a persistent disk tier: memory misses consult the
// store before reporting a miss, and Puts write through to it. Call before
// the cache is shared with workers; a nil store detaches. The store's own
// hit/miss/corrupt/evict counters surface through its SetObserver.
func (c *Cache) AttachStore(s *store.Store) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.disk = s
}

// Store returns the attached disk tier, nil when none.
func (c *Cache) Store() *store.Store {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.disk
}

// SetObserver mirrors the cache's hit/miss/eviction counters into o's
// metrics registry (obs.MetricCacheHits and friends), forwards o to the
// attached disk tier (obs.MetricStoreHits and friends), and logs evictions
// at debug level. Call before the cache is shared with workers; a nil
// observer detaches.
func (c *Cache) SetObserver(o *obs.Observer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.obsrv = o
	c.obsHits = o.Metrics().StripedCounter(obs.MetricCacheHits, obs.DefaultStripes())
	c.obsMisses = o.Metrics().StripedCounter(obs.MetricCacheMisses, obs.DefaultStripes())
	c.obsEvictions = o.Metrics().Counter(obs.MetricCacheEvictions)
	c.disk.SetObserver(o)
}

// Get implements flow.Cache: memory hit → disk hit → miss. A disk hit is
// decoded, verified against the requested key and promoted into the memory
// tier; any disk failure (missing, corrupt, verification mismatch) counts
// as this tier's miss and the caller recomputes.
func (c *Cache) Get(key string) (*flow.Result, bool) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.hits++
		c.obsHits.Add(1)
		c.ll.MoveToFront(el)
		res := el.Value.(*entry).res
		c.mu.Unlock()
		return res, true
	}
	c.misses++
	c.obsMisses.Add(1)
	disk := c.disk
	c.mu.Unlock()
	if disk == nil {
		return nil, false
	}
	// Disk tier, outside the lock: a slow read must not stall concurrent
	// memory hits. A racing fetch of the same key is benign — last insert
	// wins and both results are content-identical.
	payload, err := disk.Get(key)
	if err != nil {
		return nil, false
	}
	res, derr := store.DecodeResult(payload)
	if derr == nil {
		derr = store.VerifyResultKey(res, key)
	}
	if derr != nil {
		// The container digest passed but the artifact is not what the key
		// promises (codec drift, tampering): quarantine and recompute —
		// never serve it.
		disk.Corrupt(key, derr)
		if l := c.obsrv.Logger(); l != nil {
			l.Warn("flowcache rejected unverified disk entry", "key", key[:8], "error", derr)
		}
		return nil, false
	}
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		// Lost the race to another restorer; serve the resident result.
		c.ll.MoveToFront(el)
		res = el.Value.(*entry).res
	} else {
		c.insertLocked(key, res, store.EncodedResultSize(res))
	}
	c.mu.Unlock()
	return res, true
}

// Put implements flow.Cache. Storing an existing key refreshes its recency
// and replaces the value; storing a new key may evict the least recently
// used entry. With a disk tier attached the encoded artifact is written
// through (outside the lock); a failed disk write degrades to memory-only.
func (c *Cache) Put(key string, res *flow.Result) {
	if res == nil {
		return
	}
	size := store.EncodedResultSize(res)
	c.mu.Lock()
	disk := c.disk
	c.puts++
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry)
		c.bytes += int64(size) - int64(e.size)
		e.res, e.size = res, size
		c.ll.MoveToFront(el)
	} else {
		c.insertLocked(key, res, size)
	}
	c.mu.Unlock()
	if disk == nil || size == 0 {
		return
	}
	if enc, err := store.EncodeResult(res); err == nil {
		disk.Put(key, enc) // errors counted and logged by the store
	}
}

// insertLocked adds a new entry and evicts past the bound. Caller holds mu.
func (c *Cache) insertLocked(key string, res *flow.Result, size int) {
	c.items[key] = c.ll.PushFront(&entry{key: key, res: res, size: size})
	c.bytes += int64(size)
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		e := oldest.Value.(*entry)
		delete(c.items, e.key)
		c.bytes -= int64(e.size)
		c.evictions++
		c.evBytes += uint64(e.size)
		c.obsEvictions.Add(1)
		if l := c.obsrv.Logger(); l != nil {
			l.Debug("flowcache evicted LRU entry", "entries", c.ll.Len(),
				"evictions", c.evictions, "freed_bytes", e.size)
		}
	}
}

// Len returns the current number of cached results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns a snapshot of the hit/miss/eviction counters and byte
// totals.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:         c.hits,
		Misses:       c.misses,
		Puts:         c.puts,
		Evictions:    c.evictions,
		Entries:      c.ll.Len(),
		Bytes:        c.bytes,
		EvictedBytes: c.evBytes,
	}
}

// Reset drops every memory-tier entry and zeroes the counters. The disk
// tier is untouched: its entries remain restorable.
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element, c.max)
	c.hits, c.misses, c.puts, c.evictions = 0, 0, 0, 0
	c.bytes, c.evBytes = 0, 0
}

var _ flow.Cache = (*Cache)(nil)
