// Package flowcache provides the standard implementation of flow.Cache: a
// concurrency-safe, LRU-bounded, content-addressed memoization of completed
// implementation flows. The flow itself computes the keys (flow.CacheKey
// hashes the design's canonical text, the full tool configuration and the
// seed), so this package is a pure key-value store: any input change yields
// a new key and stale entries simply age out of the LRU — there is no other
// invalidation. Cached *flow.Result values are shared between every caller
// that hits the same key; consumers must treat them as read-only, which
// everything downstream of the flow (back-tracing, graph building, feature
// extraction) already does.
package flowcache

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/flow"
	"repro/internal/obs"
)

// Stats is a point-in-time snapshot of cache effectiveness counters. It is
// always captured under one lock acquisition (see Cache.Stats), so the
// fields are mutually consistent — hits, misses, evictions and the entry
// count all describe the same instant, and derived figures like HitRate
// can never mix counters from different moments.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Puts      uint64
	Evictions uint64
	Entries   int
}

// HitRate returns hits/(hits+misses), zero when the cache is untouched.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// String renders the snapshot as one log-friendly line, evictions
// included.
func (s Stats) String() string {
	return fmt.Sprintf("flowcache: %d hits, %d misses (%.1f%% hit rate), %d puts, %d evictions, %d entries",
		s.Hits, s.Misses, 100*s.HitRate(), s.Puts, s.Evictions, s.Entries)
}

// Cache is a bounded LRU flow-result cache, safe for concurrent use by the
// dataset builder's worker pool.
type Cache struct {
	mu        sync.Mutex
	max       int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	hits      uint64
	misses    uint64
	puts      uint64
	evictions uint64

	// Observation handles (nil when unobserved): registry counters
	// mirroring the internal counters, and an eviction event sink. The
	// handles are atomic, so bumping them under mu adds no contention.
	obsHits, obsMisses, obsEvictions *obs.Counter
	obsrv                            *obs.Observer
}

type entry struct {
	key string
	res *flow.Result
}

// DefaultMaxEntries bounds a cache built with New(0). Each entry pins one
// full flow Result (netlist, placement, congestion map), so the default is
// sized for the paper's experiment sweeps — a few designs at a few label
// seeds each across directive variants — not for unbounded corpora.
const DefaultMaxEntries = 128

// New returns a cache holding at most maxEntries results; maxEntries <= 0
// selects DefaultMaxEntries.
func New(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	return &Cache{
		max:   maxEntries,
		ll:    list.New(),
		items: make(map[string]*list.Element, maxEntries),
	}
}

// SetObserver mirrors the cache's hit/miss/eviction counters into o's
// metrics registry (obs.MetricCacheHits and friends) and logs evictions
// at debug level. Call before the cache is shared with workers; a nil
// observer detaches.
func (c *Cache) SetObserver(o *obs.Observer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.obsrv = o
	c.obsHits = o.Metrics().Counter(obs.MetricCacheHits)
	c.obsMisses = o.Metrics().Counter(obs.MetricCacheMisses)
	c.obsEvictions = o.Metrics().Counter(obs.MetricCacheEvictions)
}

// Get implements flow.Cache.
func (c *Cache) Get(key string) (*flow.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		c.obsMisses.Add(1)
		return nil, false
	}
	c.hits++
	c.obsHits.Add(1)
	c.ll.MoveToFront(el)
	return el.Value.(*entry).res, true
}

// Put implements flow.Cache. Storing an existing key refreshes its recency
// and replaces the value; storing a new key may evict the least recently
// used entry.
func (c *Cache) Put(key string, res *flow.Result) {
	if res == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.puts++
	if el, ok := c.items[key]; ok {
		el.Value.(*entry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&entry{key: key, res: res})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*entry).key)
		c.evictions++
		c.obsEvictions.Add(1)
		if l := c.obsrv.Logger(); l != nil {
			l.Debug("flowcache evicted LRU entry", "entries", c.ll.Len(), "evictions", c.evictions)
		}
	}
}

// Len returns the current number of cached results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns a snapshot of the hit/miss/eviction counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Puts:      c.puts,
		Evictions: c.evictions,
		Entries:   c.ll.Len(),
	}
}

// Reset drops every entry and zeroes the counters.
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element, c.max)
	c.hits, c.misses, c.puts, c.evictions = 0, 0, 0, 0
}

var _ flow.Cache = (*Cache)(nil)
