package flowcache

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/flow"
	"repro/internal/obs"
)

func res(i int) *flow.Result { return &flow.Result{Config: flow.Config{Seed: int64(i)}} }

func TestGetPutRoundTrip(t *testing.T) {
	c := New(4)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache reported a hit")
	}
	want := res(1)
	c.Put("a", want)
	got, ok := c.Get("a")
	if !ok || got != want {
		t.Fatalf("Get(a) = %v, %v; want the stored result", got, ok)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Puts != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 put / 1 entry", s)
	}
}

func TestNilResultIgnored(t *testing.T) {
	c := New(4)
	c.Put("a", nil)
	if c.Len() != 0 {
		t.Fatal("nil result was stored")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	c.Put("a", res(1))
	c.Put("b", res(2))
	c.Get("a") // refresh a, so b is now the eviction candidate
	c.Put("c", res(3))
	if _, ok := c.Get("b"); ok {
		t.Fatal("least recently used entry survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("recently used entry was evicted")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("new entry missing")
	}
	if s := c.Stats(); s.Evictions != 1 || s.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction and 2 entries", s)
	}
}

func TestPutExistingKeyRefreshes(t *testing.T) {
	c := New(2)
	c.Put("a", res(1))
	c.Put("b", res(2))
	next := res(3)
	c.Put("a", next) // replace value and refresh recency
	c.Put("c", res(4))
	if got, ok := c.Get("a"); !ok || got != next {
		t.Fatal("refreshed entry lost or stale")
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("refresh evicted the wrong entry")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
}

func TestDefaultSize(t *testing.T) {
	c := New(0)
	for i := 0; i < DefaultMaxEntries+10; i++ {
		c.Put(fmt.Sprintf("k%d", i), res(i))
	}
	if c.Len() != DefaultMaxEntries {
		t.Fatalf("len = %d, want DefaultMaxEntries = %d", c.Len(), DefaultMaxEntries)
	}
}

func TestReset(t *testing.T) {
	c := New(4)
	c.Put("a", res(1))
	c.Get("a")
	c.Get("missing")
	c.Reset()
	if c.Len() != 0 {
		t.Fatal("reset left entries behind")
	}
	if s := c.Stats(); s != (Stats{}) {
		t.Fatalf("reset left counters: %+v", s)
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("reset entry still served")
	}
}

func TestHitRate(t *testing.T) {
	if r := (Stats{}).HitRate(); r != 0 {
		t.Fatalf("untouched hit rate = %v, want 0", r)
	}
	if r := (Stats{Hits: 3, Misses: 1}).HitRate(); r != 0.75 {
		t.Fatalf("hit rate = %v, want 0.75", r)
	}
}

// TestConcurrentAccess hammers one cache from many goroutines; run with
// -race this doubles as the data-race check for the dataset builder's
// worker-pool usage.
func TestConcurrentAccess(t *testing.T) {
	c := New(8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%16)
				if r, ok := c.Get(key); ok && r == nil {
					t.Error("hit returned nil result")
					return
				}
				c.Put(key, res(i))
				c.Len()
				c.Stats()
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 8 {
		t.Fatalf("len = %d exceeds bound 8", c.Len())
	}
	s := c.Stats()
	if s.Puts != 8*200 {
		t.Fatalf("puts = %d, want %d", s.Puts, 8*200)
	}
}

func TestStatsString(t *testing.T) {
	c := New(2)
	c.Put("a", res(1))
	c.Put("b", res(2))
	c.Put("c", res(3)) // evicts "a"
	c.Get("b")
	c.Get("a") // miss (evicted)
	got := c.Stats().String()
	want := "flowcache: 1 hits, 1 misses (50.0% hit rate), 3 puts, 1 evictions (0 bytes evicted), 2 entries (0 bytes)"
	if got != want {
		t.Errorf("Stats.String() = %q, want %q", got, want)
	}
}

func TestObserverMirrorsCounters(t *testing.T) {
	o := obs.New()
	c := New(2)
	c.SetObserver(o)
	c.Put("a", res(1))
	c.Put("b", res(2))
	c.Put("c", res(3)) // evicts
	c.Get("c")
	c.Get("a") // miss
	snap := o.Reg.Snapshot()
	for name, want := range map[string]int64{
		obs.MetricCacheHits:      1,
		obs.MetricCacheMisses:    1,
		obs.MetricCacheEvictions: 1,
	} {
		if v, ok := snap.Counter(name); !ok || v != want {
			t.Errorf("%s = %d (present=%v), want %d", name, v, ok, want)
		}
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Evictions != 1 {
		t.Errorf("internal stats diverged from mirrored counters: %+v", s)
	}
}

func TestNilObserverDetaches(t *testing.T) {
	c := New(2)
	c.SetObserver(obs.New())
	c.SetObserver(nil) // must detach without panicking
	c.Put("a", res(1))
	c.Get("a")
	c.Get("b")
	if s := c.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats after detach = %+v", s)
	}
}
