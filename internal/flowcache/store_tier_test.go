package flowcache

import (
	"sync"
	"testing"

	"repro/internal/faults"
	"repro/internal/flow"
	"repro/internal/ir"
	"repro/internal/store"
)

// tierModule builds one small real design: the disk tier round-trips
// genuine flow artifacts (decode re-elaborates the netlist), so synthetic
// results would not exercise the verification path.
func tierModule() *ir.Module {
	m := ir.NewModule("fc_tier_tiny")
	f := m.NewFunction("fc_tier_tiny_top")
	b := ir.NewBuilder(f).At("fc.cpp", 1)
	p := b.Port("p", 32)
	a := b.Array("mem", 64, 16, 8)
	var outs []*ir.Op
	for i := 0; i < 4; i++ {
		b.Line(10 + i)
		v := b.Load(a, nil)
		x := b.OpBits(ir.KindBitSel, 16, p, 16)
		outs = append(outs, b.Op(ir.KindMul, 16, v, x))
	}
	b.Line(40)
	b.Ret(b.ReduceTree(ir.KindAdd, 16, outs))
	m.SetTop(f)
	return m
}

var (
	tierOnce sync.Once
	tierKeys []string
	tierRess []*flow.Result
	tierErr  error
)

// tierResults runs three real flows (distinct seeds → distinct cache keys)
// once per test binary.
func tierResults(t *testing.T) ([]string, []*flow.Result) {
	t.Helper()
	tierOnce.Do(func() {
		m := tierModule()
		for seed := int64(1); seed <= 3; seed++ {
			cfg := flow.DefaultConfig()
			cfg.Place.Moves = 2000
			cfg.Seed = seed
			res, err := flow.Run(m, cfg)
			if err != nil {
				tierErr = err
				return
			}
			tierKeys = append(tierKeys, flow.CacheKey(res.Mod, res.Config))
			tierRess = append(tierRess, res)
		}
	})
	if tierErr != nil {
		t.Fatal(tierErr)
	}
	return tierKeys, tierRess
}

// TestAttachStoreDegradationConcurrent hammers one shared disk tier with
// concurrent writers (write-through Puts) and cold-memory readers (every
// Get falls through to disk) while a fault script injects read errors,
// flipped read bits, ENOSPC and a torn write. The contract under fire:
//
//   - a Get either returns the exact result its key names or a clean miss
//     — never a wrong artifact, never a panic (run under -race by check.sh);
//   - flipped reads are quarantined, not served;
//   - once the fault script is exhausted the tier converges: re-Put
//     entries restore and a cold cache hits all of them.
func TestAttachStoreDegradationConcurrent(t *testing.T) {
	keys, ress := tierResults(t)
	table := map[faults.DiskKey]faults.DiskFault{
		{Op: faults.DiskOpWrite, N: 3}: faults.DiskNoSpace,
		{Op: faults.DiskOpWrite, N: 6}: faults.DiskTornWrite,
	}
	for n := 2; n < 40; n += 5 {
		table[faults.DiskKey{Op: faults.DiskOpRead, N: n}] = faults.DiskReadError
	}
	for n := 4; n < 40; n += 9 {
		table[faults.DiskKey{Op: faults.DiskOpRead, N: n}] = faults.DiskBitFlip
	}
	script := faults.NewDiskScript(table)
	s, err := store.Open(t.TempDir(), store.Options{Faults: script})
	if err != nil {
		t.Fatal(err)
	}
	shared := New(8)
	shared.AttachStore(s)
	for i := range keys {
		shared.Put(keys[i], ress[i])
	}

	const loops = 25
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < loops; i++ {
				k := (w + i) % len(keys)
				shared.Put(keys[k], ress[k])
			}
		}(w)
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < loops; i++ {
				k := (r + i) % len(keys)
				// A fresh memory tier per lookup forces the disk path.
				cold := New(2)
				cold.AttachStore(s)
				res, ok := cold.Get(keys[k])
				if ok && res.Config.Seed != ress[k].Config.Seed {
					t.Errorf("Get(%s) returned result with seed %d, want %d",
						keys[k][:8], res.Config.Seed, ress[k].Config.Seed)
				}
			}
		}(r)
	}
	wg.Wait()

	// Drain the read-fault script deterministically: keep reading (and
	// restoring quarantined entries) until every scheduled read fault has
	// fired, then prove convergence.
	for script.Count(faults.DiskOpRead) < 40 {
		cold := New(2)
		cold.AttachStore(s)
		if _, ok := cold.Get(keys[0]); !ok {
			shared.Put(keys[0], ress[0])
		}
	}
	for i := range keys {
		shared.Put(keys[i], ress[i])
	}
	final := New(len(keys))
	final.AttachStore(s)
	for i := range keys {
		res, ok := final.Get(keys[i])
		if !ok {
			t.Fatalf("fault-free Get(%s) missed after convergence", keys[i][:8])
		}
		if res.Config.Seed != ress[i].Config.Seed {
			t.Fatalf("converged Get(%s) returned seed %d, want %d",
				keys[i][:8], res.Config.Seed, ress[i].Config.Seed)
		}
	}
	st := s.Stats()
	if st.Corrupt == 0 {
		t.Error("no flipped read was quarantined; the bit-flip path never fired")
	}
	if st.PutErrors == 0 {
		t.Error("no Put degraded; the write-fault path never fired")
	}
}
