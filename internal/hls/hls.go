// Package hls implements the synthesis middle-end the paper's predictor
// reads its information from: a characterized operator library (resource
// usage, delay and latency per operation kind and bitwidth), a
// resource-constrained list scheduler that assigns IR operations to control
// states with operator chaining, and a binder that shares functional units
// across control steps and inserts the multiplexers that sharing requires.
//
// Scheduling supplies the control-state numbers behind the paper's
// #Resource/ΔTcs feature category; binding supplies the merged dependency
// graph nodes (Fig. 4) and the multiplexer statistics in the Global
// Information feature category.
package hls

import "fmt"

// Clock captures the synthesis timing target.
type Clock struct {
	PeriodNS      float64 // target clock period, ns
	UncertaintyNS float64 // clock uncertainty subtracted from the budget
}

// DefaultClock is the paper's 100 MHz target with Vivado HLS' default
// 12.5 % uncertainty.
func DefaultClock() Clock {
	return Clock{PeriodNS: 10.0, UncertaintyNS: 1.25}
}

// Budget returns the usable combinational delay per control step.
func (c Clock) Budget() float64 { return c.PeriodNS - c.UncertaintyNS }

// Resources tallies the four FPGA resource types the paper's feature set
// distinguishes.
type Resources struct {
	LUT  int
	FF   int
	DSP  int
	BRAM int
}

// Add returns the element-wise sum.
func (r Resources) Add(o Resources) Resources {
	return Resources{r.LUT + o.LUT, r.FF + o.FF, r.DSP + o.DSP, r.BRAM + o.BRAM}
}

// Scale returns r with every component multiplied by k.
func (r Resources) Scale(k int) Resources {
	return Resources{r.LUT * k, r.FF * k, r.DSP * k, r.BRAM * k}
}

// Total returns a scalar weight used when one number must summarize the
// vector (DSP and BRAM are weighted by their approximate LUT-equivalent
// area).
func (r Resources) Total() float64 {
	return float64(r.LUT) + 0.5*float64(r.FF) + 100*float64(r.DSP) + 300*float64(r.BRAM)
}

// ByType returns the component for a dense resource-type index in the order
// {LUT, FF, DSP, BRAM} used by the feature extractor.
func (r Resources) ByType(i int) int {
	switch i {
	case 0:
		return r.LUT
	case 1:
		return r.FF
	case 2:
		return r.DSP
	case 3:
		return r.BRAM
	}
	panic(fmt.Sprintf("hls: resource type index %d out of range", i))
}

// ResourceTypeCount is the number of resource types (LUT, FF, DSP, BRAM).
const ResourceTypeCount = 4

// ResourceTypeNames names the dense resource-type indices.
var ResourceTypeNames = [ResourceTypeCount]string{"LUT", "FF", "DSP", "BRAM"}

// OpCharacter is one row of the pre-characterization library: what a single
// operator of a given kind and width costs.
type OpCharacter struct {
	Res     Resources
	DelayNS float64 // combinational delay through the operator
	Latency int     // pipeline latency in cycles (0 = combinational)
}
