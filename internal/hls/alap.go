package hls

import "repro/internal/ir"

// ALAP/slack analysis: alongside the ASAP list schedule that drives
// binding, an as-late-as-possible schedule gives each operation's
// mobility — how many control states it could slide without stretching
// the function. Zero-mobility operations form the scheduling-critical
// spine of the design; the synthesis report surfaces them and library
// users exploring directive changes read them the way they read timing
// slack.

// Mobility holds the slack analysis of one function.
type Mobility struct {
	Func *ir.Function
	// ALAPStart is the latest start state of each op under the function's
	// existing overall depth.
	ALAPStart map[*ir.Op]int
	// Slack is ALAPStart - ASAP start, in control states.
	Slack map[*ir.Op]int
}

// ComputeMobility derives the ALAP schedule and per-op slack from an
// existing schedule. Memory-port and resource constraints are not re-run;
// mobility is the pure dependence slack, an upper bound on how far an op
// can move.
func (s *Schedule) ComputeMobility(f *ir.Function) *Mobility {
	fs := s.Funcs[f]
	if fs == nil {
		return nil
	}
	depth := fs.Steps - 1 // last usable state index
	mob := &Mobility{
		Func:      f,
		ALAPStart: make(map[*ir.Op]int, len(f.Ops)),
		Slack:     make(map[*ir.Op]int, len(f.Ops)),
	}
	// Walk in reverse creation order (reverse topological).
	for i := len(f.Ops) - 1; i >= 0; i-- {
		o := f.Ops[i]
		slot := s.Slots[o]
		dur := slot.End - slot.Start
		// Latest completion allowed by users: min over users of their ALAP
		// start; sink ops may finish at the function's depth.
		lateEnd := depth
		for _, u := range o.Users() {
			if ua, ok := mob.ALAPStart[u]; ok {
				// The producer's result must exist when the user starts;
				// chained combinational pairs share a state.
				limit := ua
				if dur > 0 || s.Slots[u].Start != s.Slots[u].End {
					// Sequential boundary: finish strictly before the user
					// starts unless they chain in the same state.
					if s.Slots[u].Start > slot.End {
						limit = ua - 1
					}
				}
				if limit < lateEnd {
					lateEnd = limit
				}
			}
		}
		late := lateEnd - dur
		if late < slot.Start {
			late = slot.Start // never earlier than ASAP
		}
		mob.ALAPStart[o] = late
		mob.Slack[o] = late - slot.Start
	}
	return mob
}

// CriticalOps returns the zero-slack operations in creation order — the
// dependence-critical spine of the function.
func (m *Mobility) CriticalOps() []*ir.Op {
	var out []*ir.Op
	for _, o := range m.Func.Ops {
		if m.Slack[o] == 0 {
			out = append(out, o)
		}
	}
	return out
}

// MeanSlack returns the average mobility in control states.
func (m *Mobility) MeanSlack() float64 {
	if len(m.Func.Ops) == 0 {
		return 0
	}
	total := 0
	for _, o := range m.Func.Ops {
		total += m.Slack[o]
	}
	return float64(total) / float64(len(m.Func.Ops))
}
