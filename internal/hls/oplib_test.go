package hls

import (
	"testing"
	"testing/quick"

	"repro/internal/ir"
)

func TestClockBudget(t *testing.T) {
	c := DefaultClock()
	if c.PeriodNS != 10.0 {
		t.Errorf("default period = %v, want 10ns (100 MHz)", c.PeriodNS)
	}
	if got := c.Budget(); got != 8.75 {
		t.Errorf("budget = %v, want 8.75", got)
	}
}

func TestResourcesArithmetic(t *testing.T) {
	a := Resources{LUT: 1, FF: 2, DSP: 3, BRAM: 4}
	b := Resources{LUT: 10, FF: 20, DSP: 30, BRAM: 40}
	sum := a.Add(b)
	if sum != (Resources{11, 22, 33, 44}) {
		t.Errorf("Add = %+v", sum)
	}
	if a.Scale(3) != (Resources{3, 6, 9, 12}) {
		t.Errorf("Scale = %+v", a.Scale(3))
	}
	for i := 0; i < ResourceTypeCount; i++ {
		want := []int{1, 2, 3, 4}[i]
		if a.ByType(i) != want {
			t.Errorf("ByType(%d) = %d, want %d", i, a.ByType(i), want)
		}
	}
	if a.Total() <= 0 {
		t.Error("Total must be positive for nonzero resources")
	}
}

func TestByTypePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ByType(4) did not panic")
		}
	}()
	Resources{}.ByType(4)
}

func TestCharacterizeAdderScalesLinearly(t *testing.T) {
	c8 := Characterize(ir.KindAdd, 8)
	c32 := Characterize(ir.KindAdd, 32)
	if c8.Res.LUT != 8 || c32.Res.LUT != 32 {
		t.Errorf("adder LUTs: %d/%d", c8.Res.LUT, c32.Res.LUT)
	}
	if c32.DelayNS <= c8.DelayNS {
		t.Error("wider adder must be slower")
	}
	if c8.Latency != 0 {
		t.Error("adder must be combinational")
	}
}

func TestCharacterizeMultiplierDSPThreshold(t *testing.T) {
	small := Characterize(ir.KindMul, 8)
	if small.Res.DSP != 0 || small.Res.LUT == 0 {
		t.Errorf("8-bit mul should be LUT-based: %+v", small.Res)
	}
	big := Characterize(ir.KindMul, 16)
	if big.Res.DSP == 0 {
		t.Errorf("16-bit mul should use DSP: %+v", big.Res)
	}
	if big.Latency == 0 {
		t.Error("DSP multiplier must be pipelined")
	}
	wide := Characterize(ir.KindMul, 32)
	if wide.Res.DSP <= big.Res.DSP {
		t.Error("32-bit mul needs more DSPs than 16-bit")
	}
}

func TestCharacterizeFloatCores(t *testing.T) {
	fa := Characterize(ir.KindFAdd, 32)
	if fa.Latency < 2 || fa.Res.DSP == 0 {
		t.Errorf("fadd should be a pipelined DSP core: %+v", fa)
	}
	fd := Characterize(ir.KindFDiv, 32)
	if fd.Latency <= fa.Latency {
		t.Error("fdiv latency must exceed fadd latency")
	}
}

func TestCharacterizeWiringIsFree(t *testing.T) {
	for _, k := range []ir.OpKind{ir.KindTrunc, ir.KindZExt, ir.KindSExt, ir.KindConcat, ir.KindBitSel} {
		c := Characterize(k, 32)
		if c.Res != (Resources{}) {
			t.Errorf("%v should consume no resources: %+v", k, c.Res)
		}
		if c.Latency != 0 {
			t.Errorf("%v should be combinational", k)
		}
	}
}

func TestCharacterizeDivLatencyTracksWidth(t *testing.T) {
	d8 := Characterize(ir.KindDiv, 8)
	d32 := Characterize(ir.KindDiv, 32)
	if d32.Latency <= d8.Latency {
		t.Error("wider divide must take more cycles")
	}
}

// Property: every kind/width combination yields sane characterization.
func TestCharacterizeAlwaysSane(t *testing.T) {
	f := func(kindIdx uint8, width uint8) bool {
		k := ir.KindFromIndex(int(kindIdx) % ir.KindCount)
		w := 1 + int(width)%64
		c := Characterize(k, w)
		if c.DelayNS < 0 || c.Latency < 0 {
			return false
		}
		r := c.Res
		return r.LUT >= 0 && r.FF >= 0 && r.DSP >= 0 && r.BRAM >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestArrayResourcesBRAMVsDistributed(t *testing.T) {
	small := &ir.Array{Words: 16, Bits: 8, Banks: 1} // 128 bits -> fabric
	rs := ArrayResources(small)
	if rs.BRAM != 0 || rs.FF == 0 {
		t.Errorf("small array should be distributed: %+v", rs)
	}
	big := &ir.Array{Words: 1024, Bits: 32, Banks: 1} // 32kb -> BRAM
	rb := ArrayResources(big)
	if rb.BRAM == 0 {
		t.Errorf("big array should use BRAM: %+v", rb)
	}
	if rb.BRAM != 2 {
		t.Errorf("32kb/18kb = 2 RAMB18, got %d", rb.BRAM)
	}
	// Complete partitioning always lands in fabric registers.
	part := &ir.Array{Words: 1024, Bits: 32, Banks: 1024}
	rp := ArrayResources(part)
	if rp.BRAM != 0 || rp.FF != 1024*32 {
		t.Errorf("completely partitioned array: %+v", rp)
	}
}

func TestSharablePolicy(t *testing.T) {
	cases := []struct {
		kind ir.OpKind
		w    int
		want bool
	}{
		{ir.KindMul, 16, true},
		{ir.KindMul, 8, false}, // cheap LUT mul: replicate, don't mux
		{ir.KindDiv, 8, true},
		{ir.KindFAdd, 32, true},
		{ir.KindAdd, 8, false},
		{ir.KindAdd, 32, true},
		{ir.KindAnd, 32, false},
		{ir.KindBitSel, 32, false},
	}
	for _, c := range cases {
		if got := Sharable(c.kind, c.w); got != c.want {
			t.Errorf("Sharable(%v, %d) = %v, want %v", c.kind, c.w, got, c.want)
		}
	}
}

func TestMuxResources(t *testing.T) {
	if MuxResources(1, 32) != (Resources{}) {
		t.Error("1-input mux should be free")
	}
	m2 := MuxResources(2, 32)
	m8 := MuxResources(8, 32)
	if m8.LUT <= m2.LUT {
		t.Error("mux cost must grow with inputs")
	}
	if MuxResources(4, 16).LUT >= MuxResources(4, 64).LUT {
		t.Error("mux cost must grow with width")
	}
}
