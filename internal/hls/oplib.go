package hls

import (
	"math"

	"repro/internal/ir"
)

// Characterize returns the operator-library entry for an operation: its
// resource usage, combinational delay and pipeline latency as a function of
// kind and bitwidth. The numbers follow the scaling behaviour of Xilinx
// 7-series characterization data (adders scale linearly in LUTs, multipliers
// consume DSP48 slices above ~11 bits, floating-point cores are deeply
// pipelined macro blocks, bit-manipulation ops are free wiring).
func Characterize(kind ir.OpKind, bitwidth int) OpCharacter {
	w := bitwidth
	if w < 1 {
		w = 1
	}
	fw := float64(w)
	switch kind {
	case ir.KindAdd, ir.KindSub:
		return OpCharacter{
			Res:     Resources{LUT: w, FF: 0},
			DelayNS: 0.9 + 0.049*fw,
		}
	case ir.KindMul:
		if w <= 10 {
			return OpCharacter{
				Res:     Resources{LUT: (w*w + 1) / 2},
				DelayNS: 1.4 + 0.08*fw,
			}
		}
		d := (w + 17) / 18 // DSP48E1 operand chunks
		return OpCharacter{
			Res:     Resources{DSP: d * d, LUT: 2 * w, FF: 2 * w},
			DelayNS: 3.2,
			Latency: 3,
		}
	case ir.KindDiv, ir.KindRem:
		return OpCharacter{
			Res:     Resources{LUT: w * (w + 2) / 2, FF: 3 * w},
			DelayNS: 2.1,
			Latency: w + 2,
		}
	case ir.KindAnd, ir.KindOr, ir.KindXor:
		return OpCharacter{
			Res:     Resources{LUT: (w + 1) / 2},
			DelayNS: 0.45,
		}
	case ir.KindNot:
		return OpCharacter{
			Res:     Resources{LUT: (w + 3) / 4},
			DelayNS: 0.35,
		}
	case ir.KindShl, ir.KindLShr, ir.KindAShr:
		stages := int(math.Ceil(math.Log2(fw + 1)))
		return OpCharacter{
			Res:     Resources{LUT: w * stages / 2},
			DelayNS: 0.8 + 0.12*float64(stages),
		}
	case ir.KindICmp:
		return OpCharacter{
			Res:     Resources{LUT: w/2 + 1},
			DelayNS: 0.7 + 0.02*fw,
		}
	case ir.KindFAdd, ir.KindFSub:
		return OpCharacter{
			Res:     Resources{DSP: 2, LUT: 214, FF: 324},
			DelayNS: 3.6,
			Latency: 4,
		}
	case ir.KindFMul:
		return OpCharacter{
			Res:     Resources{DSP: 3, LUT: 110, FF: 166},
			DelayNS: 3.3,
			Latency: 3,
		}
	case ir.KindFDiv:
		return OpCharacter{
			Res:     Resources{LUT: 780, FF: 1444},
			DelayNS: 3.9,
			Latency: 15,
		}
	case ir.KindFCmp:
		return OpCharacter{
			Res:     Resources{LUT: 66, FF: 72},
			DelayNS: 1.9,
			Latency: 1,
		}
	case ir.KindSqrt:
		return OpCharacter{
			Res:     Resources{LUT: 468, FF: 620},
			DelayNS: 3.8,
			Latency: 16,
		}
	case ir.KindSelect, ir.KindPhi:
		return OpCharacter{
			Res:     Resources{LUT: (w + 1) / 2},
			DelayNS: 0.55,
		}
	case ir.KindLoad:
		return OpCharacter{
			Res:     Resources{LUT: (w + 7) / 8},
			DelayNS: 1.2,
			Latency: 1, // synchronous memory read
		}
	case ir.KindStore:
		return OpCharacter{
			Res:     Resources{LUT: (w + 7) / 8},
			DelayNS: 1.0,
			Latency: 1,
		}
	case ir.KindTrunc, ir.KindZExt, ir.KindSExt, ir.KindConcat, ir.KindBitSel:
		return OpCharacter{DelayNS: 0.05} // pure wiring
	case ir.KindConst:
		return OpCharacter{}
	case ir.KindPort:
		return OpCharacter{Res: Resources{FF: w}, DelayNS: 0.2}
	case ir.KindCall:
		return OpCharacter{Res: Resources{FF: w, LUT: (w + 3) / 4}, DelayNS: 0.4, Latency: 1}
	case ir.KindRet:
		return OpCharacter{DelayNS: 0.1}
	}
	return OpCharacter{DelayNS: 0.5, Res: Resources{LUT: w}}
}

// ArrayResources returns the memory resources an array instance consumes:
// small or heavily partitioned arrays become distributed LUT-RAM/registers,
// large monolithic arrays become block RAM (18 kb halves of RAMB36E1).
func ArrayResources(a *ir.Array) Resources {
	bitsPerBank := a.WordsPerBank() * a.Bits
	const bramThreshold = 256 // bits below which a bank stays in fabric
	if bitsPerBank <= bramThreshold || a.Banks >= a.Words {
		// Distributed: registers plus LUT addressing per bank.
		return Resources{
			FF:  a.Words * a.Bits,
			LUT: a.Banks * ((a.Bits+1)/2 + 4),
		}
	}
	per := (bitsPerBank + 18*1024 - 1) / (18 * 1024)
	return Resources{
		BRAM: per * a.Banks,
		LUT:  a.Banks * 6,
	}
}

// Sharable reports whether operations of this kind are candidates for
// functional-unit sharing. Cheap operators (wiring, small logic) are cheaper
// to replicate than to multiplex, matching real HLS binding policy.
func Sharable(kind ir.OpKind, bitwidth int) bool {
	switch kind {
	case ir.KindMul:
		return bitwidth > 10
	case ir.KindDiv, ir.KindRem, ir.KindFAdd, ir.KindFSub, ir.KindFMul,
		ir.KindFDiv, ir.KindFCmp, ir.KindSqrt:
		return true
	case ir.KindAdd, ir.KindSub:
		return bitwidth >= 16
	}
	return false
}
