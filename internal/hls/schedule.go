package hls

import (
	"fmt"
	"sort"

	"repro/internal/ir"
)

// OpSlot records where one operation landed in the control-state schedule.
// Start is the state in which the operation begins (inputs sampled), End the
// state in which its result becomes available. FinishDelay is the
// accumulated combinational delay inside the End state, used for operator
// chaining and later by static timing analysis.
type OpSlot struct {
	Start       int
	End         int
	FinishDelay float64
}

// FuncSchedule summarizes the schedule of one function.
type FuncSchedule struct {
	Func          *ir.Function
	Steps         int   // control states of one body execution
	LatencyCycles int64 // total latency including loop trip counts and callees
}

// Allocation bounds how many operations of a kind may execute
// concurrently, the ALLOCATION pragma of real HLS tools: tightening a limit
// trades latency for area (the serialized operations then share one unit
// in binding). A kind absent from Limits is unconstrained.
type Allocation struct {
	Limits map[ir.OpKind]int
}

// Schedule is the module-wide scheduling result.
type Schedule struct {
	Mod   *ir.Module
	Clock Clock
	Alloc Allocation
	Slots map[*ir.Op]OpSlot
	Funcs map[*ir.Function]*FuncSchedule
}

// Slot returns the schedule slot of an op.
func (s *Schedule) Slot(o *ir.Op) OpSlot { return s.Slots[o] }

// DeltaTcs returns the paper's ΔTcs between a producer and a consumer: the
// number of control states separating the producer's result from the
// consumer's start, never less than 1 so the #Resource/ΔTcs features stay
// finite. Operations chained in the same state have the tightest possible
// spatial constraint, ΔTcs = 1.
func (s *Schedule) DeltaTcs(producer, consumer *ir.Op) int {
	d := s.Slots[consumer].Start - s.Slots[producer].End
	if d < 1 {
		return 1
	}
	return d + 1
}

// ScheduleModule runs resource-aware list scheduling over every live
// function of the module. Operations chain combinationally within a control
// state while the clock budget allows; multi-cycle operators occupy their
// characterized latency; memory operations respect the two ports each array
// bank exposes (the mechanism through which ARRAY_PARTITION buys
// parallelism).
func ScheduleModule(m *ir.Module, clock Clock) (*Schedule, error) {
	return ScheduleModuleAlloc(m, clock, Allocation{})
}

// ScheduleModuleAlloc is ScheduleModule under per-kind allocation limits.
func ScheduleModuleAlloc(m *ir.Module, clock Clock, alloc Allocation) (*Schedule, error) {
	if err := ir.Validate(m); err != nil {
		return nil, fmt.Errorf("hls: schedule: %w", err)
	}
	s := &Schedule{
		Mod:   m,
		Clock: clock,
		Alloc: alloc,
		Slots: make(map[*ir.Op]OpSlot, m.NumOps()),
		Funcs: make(map[*ir.Function]*FuncSchedule),
	}
	for _, f := range m.LiveFuncs() {
		if err := s.scheduleFunc(f); err != nil {
			return nil, err
		}
	}
	// Latency roll-up needs callees resolved first; LiveFuncs puts the top
	// first, so compute in reverse dependency order by iterating until fixed
	// (call graphs here are acyclic and shallow).
	for _, f := range m.LiveFuncs() {
		s.computeLatency(f)
	}
	s.computeLatency(m.Top)
	return s, nil
}

func (s *Schedule) scheduleFunc(f *ir.Function) error {
	budget := s.Clock.Budget()
	if budget <= 0 {
		return fmt.Errorf("hls: clock budget %.2f ns is not positive", budget)
	}
	// Builders emit operands before users, so f.Ops is already topological;
	// verify rather than trust.
	pos := make(map[*ir.Op]int, len(f.Ops))
	for i, o := range f.Ops {
		pos[o] = i
	}
	for _, o := range f.Ops {
		for _, e := range o.Operands {
			if pos[e.Def] >= pos[o] {
				return fmt.Errorf("hls: function %q ops not topologically ordered (%s before %s)",
					f.Name, o.Name, e.Def.Name)
			}
		}
	}

	// portsUsed[array][state] counts memory accesses issued that state;
	// kindBusy[kind][state] counts allocation-limited ops executing there.
	portsUsed := make(map[*ir.Array]map[int]int)
	kindBusy := make(map[ir.OpKind]map[int]int)
	maxEnd := 0
	for _, o := range f.Ops {
		ch := Characterize(o.Kind, o.Bitwidth)
		// Earliest state and incoming chained delay from operands.
		state := 0
		inDelay := 0.0
		for _, e := range o.Operands {
			dep := s.Slots[e.Def]
			if dep.End > state {
				state = dep.End
				inDelay = dep.FinishDelay
			} else if dep.End == state && dep.FinishDelay > inDelay {
				inDelay = dep.FinishDelay
			}
		}
		var slot OpSlot
		if ch.Latency > 0 {
			// Sequential operator: inputs latched at end of `state`, result
			// available Latency states later.
			start := state
			if o.Kind.IsMemory() {
				start = s.reserveMemPort(portsUsed, o.Array, start)
			}
			start = s.reserveUnit(kindBusy, o.Kind, start, ch.Latency)
			slot = OpSlot{Start: start, End: start + ch.Latency, FinishDelay: 0}
		} else {
			// Combinational: chain if the budget allows, else register the
			// inputs and occupy the next state.
			if inDelay+ch.DelayNS <= budget {
				slot = OpSlot{Start: state, End: state, FinishDelay: inDelay + ch.DelayNS}
			} else {
				slot = OpSlot{Start: state + 1, End: state + 1, FinishDelay: ch.DelayNS}
			}
			start := s.reserveUnit(kindBusy, o.Kind, slot.Start, 0)
			if start != slot.Start {
				slot = OpSlot{Start: start, End: start, FinishDelay: ch.DelayNS}
			}
		}
		s.Slots[o] = slot
		if slot.End > maxEnd {
			maxEnd = slot.End
		}
	}
	s.Funcs[f] = &FuncSchedule{Func: f, Steps: maxEnd + 1}
	return nil
}

// reserveMemPort finds the earliest state >= want with a free port on the
// array (2 ports per bank) and reserves it.
func (s *Schedule) reserveMemPort(used map[*ir.Array]map[int]int, a *ir.Array, want int) int {
	if a == nil {
		return want
	}
	m := used[a]
	if m == nil {
		m = make(map[int]int)
		used[a] = m
	}
	limit := 2 * a.Banks
	if limit < 1 {
		limit = 1
	}
	st := want
	for m[st] >= limit {
		st++
	}
	m[st]++
	return st
}

// reserveUnit finds the earliest start >= want where the allocation limit
// for the kind admits another op occupying [start, start+latency-1] (or
// just start, for combinational ops), and books it.
func (s *Schedule) reserveUnit(busy map[ir.OpKind]map[int]int, kind ir.OpKind, want, latency int) int {
	limit, limited := s.Alloc.Limits[kind]
	if !limited || limit < 1 {
		return want
	}
	m := busy[kind]
	if m == nil {
		m = make(map[int]int)
		busy[kind] = m
	}
	span := latency
	if span < 1 {
		span = 1
	}
	start := want
search:
	for {
		for st := start; st < start+span; st++ {
			if m[st] >= limit {
				start = st + 1
				continue search
			}
		}
		break
	}
	for st := start; st < start+span; st++ {
		m[st]++
	}
	return start
}

// computeLatency rolls the scheduled body up through loop trip counts and
// call sites into a total cycle count.
func (s *Schedule) computeLatency(f *ir.Function) {
	fs := s.Funcs[f]
	if fs == nil || fs.LatencyCycles > 0 {
		return
	}
	// Span occupied by ops whose innermost loop is l (or nil for top level).
	span := func(match func(*ir.Op) bool) int64 {
		minS, maxE := -1, -1
		for _, o := range f.Ops {
			if !match(o) {
				continue
			}
			sl := s.Slots[o]
			if minS < 0 || sl.Start < minS {
				minS = sl.Start
			}
			if sl.End > maxE {
				maxE = sl.End
			}
		}
		if minS < 0 {
			return 1
		}
		return int64(maxE-minS) + 1
	}

	var loopLat func(l *ir.Loop) int64
	loopLat = func(l *ir.Loop) int64 {
		own := span(func(o *ir.Op) bool { return o.Loop == l })
		var kids int64
		for _, k := range l.Kids {
			kids += loopLat(k)
		}
		trips := int64(l.EffectiveTrips())
		if l.Pipelined {
			ii := int64(l.II)
			if ii < 1 {
				ii = 1
			}
			return ii*(trips-1) + own + kids
		}
		return trips * (own + kids)
	}

	total := span(func(o *ir.Op) bool { return o.Loop == nil })
	for _, l := range f.Loops {
		if l.Parent == nil {
			total += loopLat(l)
		}
	}
	// Each call op adds the callee's latency once per sequential
	// invocation. Pipelined loops overlap successive callee executions, so
	// they contribute the callee latency once (pipeline fill) rather than
	// per trip — which is why the paper's de-inlined Face Detection only
	// pays a handful of extra cycles.
	for _, o := range f.Ops {
		if o.Kind != ir.KindCall {
			continue
		}
		for _, callee := range f.Callees {
			if o.Name == "call_"+callee.Name {
				s.computeLatency(callee)
				if cs := s.Funcs[callee]; cs != nil {
					mult := int64(1)
					for l := o.Loop; l != nil; l = l.Parent {
						if !l.Pipelined {
							mult *= int64(l.EffectiveTrips())
						}
					}
					total += mult * cs.LatencyCycles
				}
			}
		}
	}
	fs.LatencyCycles = total
}

// EstimateResources sums the characterized resources of a function's
// operations and arrays — the HLS-report-level estimate used by the Global
// Information features (post-binding sharing is accounted separately).
func EstimateResources(f *ir.Function) Resources {
	var r Resources
	for _, o := range f.Ops {
		r = r.Add(Characterize(o.Kind, o.Bitwidth).Res)
	}
	for _, a := range f.Arrays {
		r = r.Add(ArrayResources(a))
	}
	return r
}

// EstimateModuleResources sums estimates over all live functions.
func EstimateModuleResources(m *ir.Module) Resources {
	var r Resources
	for _, f := range m.LiveFuncs() {
		r = r.Add(EstimateResources(f))
	}
	return r
}

// SortedOps returns the function's ops ordered by (Start, ID) — the order
// binding walks them.
func (s *Schedule) SortedOps(f *ir.Function) []*ir.Op {
	ops := append([]*ir.Op(nil), f.Ops...)
	sort.Slice(ops, func(i, j int) bool {
		a, b := s.Slots[ops[i]], s.Slots[ops[j]]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return ops[i].ID < ops[j].ID
	})
	return ops
}
