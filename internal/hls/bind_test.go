package hls

import (
	"testing"

	"repro/internal/ir"
)

// serialMuls builds n dependent 16-bit multiplies (disjoint execution
// intervals -> perfect sharing candidates).
func serialMuls(n int) *ir.Module {
	m := ir.NewModule("serial")
	b := ir.NewBuilder(m.NewFunction("f"))
	cur := b.Port("p", 16)
	for i := 0; i < n; i++ {
		cur = b.Op(ir.KindMul, 16, cur, cur)
	}
	return m
}

// parallelMuls builds n independent 16-bit multiplies (overlapping
// intervals -> no sharing possible).
func parallelMuls(n int) *ir.Module {
	m := ir.NewModule("parallel")
	b := ir.NewBuilder(m.NewFunction("f"))
	p := b.Port("p", 16)
	var outs []*ir.Op
	for i := 0; i < n; i++ {
		outs = append(outs, b.Op(ir.KindMul, 16, p, p))
	}
	b.Ret(b.ReduceTree(ir.KindAdd, 16, outs))
	return m
}

func bindOf(t *testing.T, m *ir.Module) *Binding {
	t.Helper()
	s, err := ScheduleModule(m, DefaultClock())
	if err != nil {
		t.Fatal(err)
	}
	return BindModule(s)
}

func countUnits(b *Binding, k ir.OpKind) int {
	n := 0
	for _, u := range b.Units {
		if u.Kind == k {
			n++
		}
	}
	return n
}

func TestBindingSharesSerialOps(t *testing.T) {
	b := bindOf(t, serialMuls(6))
	if got := countUnits(b, ir.KindMul); got != 1 {
		t.Errorf("6 serial muls bound to %d units, want 1 shared unit", got)
	}
	for _, u := range b.Units {
		if u.Kind == ir.KindMul && !u.Shared() {
			t.Error("the mul unit should report Shared()")
		}
	}
}

func TestBindingKeepsParallelOpsApart(t *testing.T) {
	b := bindOf(t, parallelMuls(6))
	if got := countUnits(b, ir.KindMul); got != 6 {
		t.Errorf("6 parallel muls bound to %d units, want 6", got)
	}
}

func TestBindingNoSharingInPipelinedLoops(t *testing.T) {
	m := ir.NewModule("m")
	b := ir.NewBuilder(m.NewFunction("f"))
	p := b.Port("p", 16)
	b.PipelinedLoop("l", 100, 1, func() {
		v := b.Op(ir.KindMul, 16, p, p)
		b.Op(ir.KindMul, 16, v, v) // serial, but pipelined -> no sharing
	})
	bd := bindOf(t, m)
	if got := countUnits(bd, ir.KindMul); got != 2 {
		t.Errorf("pipelined muls bound to %d units, want 2", got)
	}
}

func TestBindingInsertsMuxes(t *testing.T) {
	b := bindOf(t, serialMuls(4))
	if len(b.Muxes) == 0 {
		t.Fatal("shared unit should receive steering muxes")
	}
	for _, mx := range b.Muxes {
		if mx.Inputs < 2 {
			t.Errorf("mux with %d inputs", mx.Inputs)
		}
		if mx.Res.LUT == 0 {
			t.Error("mux with no cost")
		}
		if !mx.FU.Shared() {
			t.Error("mux attached to unshared unit")
		}
	}
	// No sharing -> no muxes.
	b2 := bindOf(t, parallelMuls(4))
	if len(b2.Muxes) != 0 {
		t.Errorf("parallel design got %d muxes, want 0", len(b2.Muxes))
	}
}

func TestBindingEveryOpHasUnit(t *testing.T) {
	m := serialMuls(5)
	b := bindOf(t, m)
	for _, o := range m.AllOps() {
		u := b.UnitOf[o]
		if u == nil {
			t.Fatalf("op %v has no unit", o)
		}
		found := false
		for _, bound := range u.Ops {
			if bound == o {
				found = true
			}
		}
		if !found {
			t.Fatalf("op %v missing from its unit's op list", o)
		}
	}
}

func TestBindingMemBanks(t *testing.T) {
	m := ir.NewModule("m")
	b := ir.NewBuilder(m.NewFunction("f"))
	a := b.Array("mem", 64, 8, 4)
	b.Ret(b.Load(a, nil))
	bd := bindOf(t, m)
	if len(bd.Banks) != 4 {
		t.Fatalf("banks = %d, want 4", len(bd.Banks))
	}
	if got := len(bd.BankOf[a]); got != 4 {
		t.Fatalf("BankOf = %d entries", got)
	}
	for i, mb := range bd.BankOf[a] {
		if mb.Index != i {
			t.Errorf("bank %d has index %d", i, mb.Index)
		}
	}
}

func TestMuxStatsAggregation(t *testing.T) {
	m := serialMuls(4)
	bd := bindOf(t, m)
	st := bd.FuncMuxStats(m.Top)
	if st.Count != len(bd.Muxes) {
		t.Errorf("mux count = %d, want %d", st.Count, len(bd.Muxes))
	}
	if st.Count > 0 && (st.AvgInputs < 2 || st.AvgWidth <= 0) {
		t.Errorf("mux stats malformed: %+v", st)
	}
	// A function with no muxes yields zeroes.
	empty := ir.NewModule("e")
	eb := ir.NewBuilder(empty.NewFunction("f"))
	eb.Ret(eb.Port("p", 8))
	ebd := bindOf(t, empty)
	if s := ebd.FuncMuxStats(empty.Top); s.Count != 0 || s.AvgInputs != 0 {
		t.Errorf("empty mux stats: %+v", s)
	}
}

func TestBoundResourcesCountSharedOnce(t *testing.T) {
	shared := bindOf(t, serialMuls(6))
	private := bindOf(t, parallelMuls(6))
	sr := shared.ModuleBoundResources()
	pr := private.ModuleBoundResources()
	if sr.DSP >= pr.DSP {
		t.Errorf("shared DSP (%d) must be below replicated DSP (%d)", sr.DSP, pr.DSP)
	}
}

func TestUnitsOfSorted(t *testing.T) {
	m := parallelMuls(5)
	bd := bindOf(t, m)
	us := bd.UnitsOf(m.Top)
	for i := 1; i < len(us); i++ {
		if us[i-1].ID >= us[i].ID {
			t.Fatal("UnitsOf not sorted")
		}
	}
}

func TestWidthBucket(t *testing.T) {
	cases := map[int]int{1: 8, 8: 8, 9: 16, 16: 16, 17: 32, 33: 64}
	for w, want := range cases {
		if got := widthBucket(w); got != want {
			t.Errorf("widthBucket(%d) = %d, want %d", w, got, want)
		}
	}
}

func TestOverlaps(t *testing.T) {
	spans := []span{{2, 4}, {8, 9}}
	cases := []struct {
		s, e int
		want bool
	}{
		{0, 1, false}, {0, 2, true}, {4, 5, true}, {5, 7, false}, {9, 12, true},
	}
	for _, c := range cases {
		if got := overlaps(spans, c.s, c.e); got != c.want {
			t.Errorf("overlaps([%d,%d]) = %v, want %v", c.s, c.e, got, c.want)
		}
	}
}
