package hls

import (
	"testing"

	"repro/internal/ir"
)

// chainModule builds a linear chain of n adders on one port.
func chainModule(n int, width int) (*ir.Module, []*ir.Op) {
	m := ir.NewModule("chain")
	b := ir.NewBuilder(m.NewFunction("f"))
	cur := b.Port("p", width)
	var ops []*ir.Op
	for i := 0; i < n; i++ {
		cur = b.Op(ir.KindAdd, width, cur, cur)
		ops = append(ops, cur)
	}
	return m, ops
}

func TestScheduleChainsWithinBudget(t *testing.T) {
	// 8-bit adds are ~1.3 ns; about 6 of them chain into one 8.75 ns state.
	m, ops := chainModule(12, 8)
	s, err := ScheduleModule(m, DefaultClock())
	if err != nil {
		t.Fatal(err)
	}
	budget := s.Clock.Budget()
	prevEnd, prevDelay := 0, 0.0
	states := 1
	for _, o := range ops {
		sl := s.Slot(o)
		if sl.FinishDelay > budget {
			t.Errorf("op %v finish delay %.2f exceeds budget %.2f", o, sl.FinishDelay, budget)
		}
		if sl.End < prevEnd {
			t.Errorf("schedule goes backwards at %v", o)
		}
		if sl.End > prevEnd {
			states++
			if prevEnd != 0 && prevDelay+0.01 < budget-2.0 {
				t.Errorf("started new state while %.2f of %.2f budget unused", budget-prevDelay, budget)
			}
		}
		prevEnd, prevDelay = sl.End, sl.FinishDelay
	}
	if states < 2 {
		t.Errorf("12 chained adds should span several states, got %d", states)
	}
}

func TestScheduleSequentialOperators(t *testing.T) {
	m := ir.NewModule("m")
	b := ir.NewBuilder(m.NewFunction("f"))
	p := b.Port("p", 16)
	mul := b.Op(ir.KindMul, 16, p, p) // latency 3
	use := b.Op(ir.KindAdd, 16, mul, p)
	s, err := ScheduleModule(m, DefaultClock())
	if err != nil {
		t.Fatal(err)
	}
	ms := s.Slot(mul)
	if ms.End-ms.Start != Characterize(ir.KindMul, 16).Latency {
		t.Errorf("mul occupies %d cycles", ms.End-ms.Start)
	}
	us := s.Slot(use)
	if us.Start < ms.End {
		t.Errorf("consumer starts at %d before producer result at %d", us.Start, ms.End)
	}
}

func TestScheduleMemoryPortLimit(t *testing.T) {
	// One monolithic array (2 ports) with 8 parallel loads: the loads must
	// serialize over >= 4 states. A fully partitioned copy must not.
	build := func(banks int) *ir.Module {
		m := ir.NewModule("m")
		b := ir.NewBuilder(m.NewFunction("f"))
		a := b.Array("mem", 16, 8, banks)
		var loads []*ir.Op
		for i := 0; i < 8; i++ {
			loads = append(loads, b.Load(a, nil))
		}
		b.Ret(b.ReduceTree(ir.KindAdd, 8, loads))
		return m
	}
	sMono, err := ScheduleModule(build(1), DefaultClock())
	if err != nil {
		t.Fatal(err)
	}
	sPart, err := ScheduleModule(build(16), DefaultClock())
	if err != nil {
		t.Fatal(err)
	}
	monoSteps := sMono.Funcs[sMono.Mod.Top].Steps
	partSteps := sPart.Funcs[sPart.Mod.Top].Steps
	if monoSteps <= partSteps {
		t.Errorf("monolithic array (%d steps) must serialize vs partitioned (%d steps)",
			monoSteps, partSteps)
	}
}

func TestScheduleLatencyLoops(t *testing.T) {
	m := ir.NewModule("m")
	b := ir.NewBuilder(m.NewFunction("f"))
	p := b.Port("p", 8)
	b.EnterLoop("l", 100)
	b.Op(ir.KindNot, 8, p)
	b.ExitLoop()
	s, err := ScheduleModule(m, DefaultClock())
	if err != nil {
		t.Fatal(err)
	}
	lat := s.Funcs[m.Top].LatencyCycles
	if lat < 100 {
		t.Errorf("100-trip loop latency = %d, want >= 100", lat)
	}
}

func TestSchedulePipelinedLoopLatency(t *testing.T) {
	build := func(pipelined bool) int64 {
		m := ir.NewModule("m")
		b := ir.NewBuilder(m.NewFunction("f"))
		p := b.Port("p", 16)
		body := func() {
			v := b.Op(ir.KindDiv, 16, p, p) // multi-state body
			b.Op(ir.KindAdd, 16, v, p)
		}
		if pipelined {
			b.PipelinedLoop("l", 1000, 1, body)
		} else {
			b.EnterLoop("l", 1000)
			body()
			b.ExitLoop()
		}
		s, err := ScheduleModule(m, DefaultClock())
		if err != nil {
			panic(err)
		}
		return s.Funcs[m.Top].LatencyCycles
	}
	plain := build(false)
	piped := build(true)
	if piped >= plain {
		t.Errorf("pipelined latency %d must beat sequential %d", piped, plain)
	}
}

func TestScheduleCallLatency(t *testing.T) {
	// A callee invoked from a non-pipelined loop multiplies its latency by
	// the trip count; from a pipelined loop it is paid once.
	build := func(pipelined bool) int64 {
		m := ir.NewModule("m")
		top := m.NewFunction("top")
		leaf := m.NewFunction("leaf")
		lb := ir.NewBuilder(leaf)
		lp := lb.Port("x", 16)
		lv := lb.Op(ir.KindDiv, 16, lp, lp) // long-latency body
		lb.Ret(lv)
		tb := ir.NewBuilder(top)
		tp := tb.Port("a", 16)
		body := func() { tb.Call(leaf, tp) }
		if pipelined {
			tb.PipelinedLoop("l", 50, 1, body)
		} else {
			tb.EnterLoop("l", 50)
			body()
			tb.ExitLoop()
		}
		s, err := ScheduleModule(m, DefaultClock())
		if err != nil {
			panic(err)
		}
		return s.Funcs[top].LatencyCycles
	}
	seq := build(false)
	pip := build(true)
	if seq < 50*int64(Characterize(ir.KindDiv, 16).Latency) {
		t.Errorf("sequential call latency %d too small", seq)
	}
	if pip >= seq/2 {
		t.Errorf("pipelined calls latency %d should be far below sequential %d", pip, seq)
	}
}

func TestDeltaTcs(t *testing.T) {
	m := ir.NewModule("m")
	b := ir.NewBuilder(m.NewFunction("f"))
	p := b.Port("p", 16)
	mul := b.Op(ir.KindMul, 16, p, p) // result at state Start+3
	imm := b.Op(ir.KindAdd, 16, p, p) // same state as p
	late := b.Op(ir.KindAdd, 16, mul, imm)
	s, err := ScheduleModule(m, DefaultClock())
	if err != nil {
		t.Fatal(err)
	}
	if dt := s.DeltaTcs(mul, late); dt < 1 {
		t.Errorf("DeltaTcs = %d, must be >= 1", dt)
	}
	// imm finished long before late starts: its slack is larger.
	if s.DeltaTcs(imm, late) <= s.DeltaTcs(mul, late) {
		t.Errorf("earlier producer must have larger DeltaTcs: imm=%d mul=%d",
			s.DeltaTcs(imm, late), s.DeltaTcs(mul, late))
	}
}

func TestScheduleRejectsInvalidModule(t *testing.T) {
	m := &ir.Module{Name: "broken"}
	if _, err := ScheduleModule(m, DefaultClock()); err == nil {
		t.Fatal("scheduling an invalid module must fail")
	}
}

func TestEstimateResources(t *testing.T) {
	m := ir.NewModule("m")
	f := m.NewFunction("f")
	b := ir.NewBuilder(f)
	p := b.Port("p", 16)
	b.Op(ir.KindMul, 16, p, p)
	b.Array("mem", 2048, 16, 1)
	r := EstimateResources(f)
	if r.DSP == 0 {
		t.Error("estimate misses the multiplier DSP")
	}
	if r.BRAM == 0 {
		t.Error("estimate misses the array BRAM")
	}
	if EstimateModuleResources(m) != r {
		t.Error("module estimate != single function estimate")
	}
}

func TestSortedOps(t *testing.T) {
	m, _ := chainModule(5, 8)
	s, err := ScheduleModule(m, DefaultClock())
	if err != nil {
		t.Fatal(err)
	}
	ops := s.SortedOps(m.Top)
	for i := 1; i < len(ops); i++ {
		a, b := s.Slot(ops[i-1]), s.Slot(ops[i])
		if a.Start > b.Start {
			t.Fatal("SortedOps not ordered by start state")
		}
	}
}

func TestComputeMobility(t *testing.T) {
	m := ir.NewModule("m")
	b := ir.NewBuilder(m.NewFunction("f"))
	p := b.Port("p", 16)
	// A long dependence chain (critical) and one side op (slack).
	cur := p
	for i := 0; i < 4; i++ {
		cur = b.Op(ir.KindMul, 16, cur, cur) // sequential, 3 cycles each
	}
	side := b.Op(ir.KindAdd, 16, p, p)
	b.Ret(b.Op(ir.KindAdd, 16, cur, side))
	s, err := ScheduleModule(m, DefaultClock())
	if err != nil {
		t.Fatal(err)
	}
	mob := s.ComputeMobility(m.Top)
	if mob == nil {
		t.Fatal("nil mobility")
	}
	// Every slack must be non-negative and ALAP >= ASAP.
	for _, o := range m.Top.Ops {
		if mob.Slack[o] < 0 {
			t.Fatalf("negative slack on %v", o)
		}
		if mob.ALAPStart[o] < s.Slots[o].Start {
			t.Fatalf("ALAP before ASAP on %v", o)
		}
	}
	if mob.Slack[side] == 0 {
		t.Error("side op should have mobility")
	}
	crit := mob.CriticalOps()
	if len(crit) == 0 {
		t.Fatal("no critical ops on a chained design")
	}
	// The multiply chain must be critical.
	mulCrit := 0
	for _, o := range crit {
		if o.Kind == ir.KindMul {
			mulCrit++
		}
	}
	if mulCrit != 4 {
		t.Errorf("critical muls = %d, want 4", mulCrit)
	}
	if mob.MeanSlack() <= 0 {
		t.Error("mean slack should be positive with a slack op present")
	}
	if s.ComputeMobility(&ir.Function{}) != nil {
		t.Error("unknown function should yield nil mobility")
	}
}

func TestAllocationLimitSerializes(t *testing.T) {
	build := func() *ir.Module {
		m := ir.NewModule("m")
		b := ir.NewBuilder(m.NewFunction("f"))
		p := b.Port("p", 16)
		var outs []*ir.Op
		for i := 0; i < 8; i++ {
			outs = append(outs, b.Op(ir.KindMul, 16, p, p))
		}
		b.Ret(b.ReduceTree(ir.KindAdd, 16, outs))
		return m
	}
	free, err := ScheduleModule(build(), DefaultClock())
	if err != nil {
		t.Fatal(err)
	}
	limited, err := ScheduleModuleAlloc(build(), DefaultClock(),
		Allocation{Limits: map[ir.OpKind]int{ir.KindMul: 2}})
	if err != nil {
		t.Fatal(err)
	}
	fs, ls := free.Funcs[free.Mod.Top].Steps, limited.Funcs[limited.Mod.Top].Steps
	if ls <= fs {
		t.Errorf("allocation limit did not serialize: %d steps vs %d", ls, fs)
	}
	// At most 2 muls execute in any state.
	occupancy := map[int]int{}
	for _, o := range limited.Mod.AllOps() {
		if o.Kind != ir.KindMul {
			continue
		}
		sl := limited.Slots[o]
		for st := sl.Start; st < sl.End; st++ {
			occupancy[st]++
			if occupancy[st] > 2 {
				t.Fatalf("state %d runs %d muls, limit 2", st, occupancy[st])
			}
		}
	}
	// The serialized muls now share hardware in binding.
	freeBind := BindModule(free)
	limBind := BindModule(limited)
	count := func(b *Binding) int {
		n := 0
		for _, u := range b.Units {
			if u.Kind == ir.KindMul {
				n++
			}
		}
		return n
	}
	if count(limBind) >= count(freeBind) {
		t.Errorf("allocation limit did not reduce mul units: %d vs %d",
			count(limBind), count(freeBind))
	}
}

func TestAllocationUnlimitedByDefault(t *testing.T) {
	m := ir.NewModule("m")
	b := ir.NewBuilder(m.NewFunction("f"))
	p := b.Port("p", 16)
	for i := 0; i < 4; i++ {
		b.Op(ir.KindMul, 16, p, p)
	}
	s, err := ScheduleModule(m, DefaultClock())
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range m.AllOps() {
		if o.Kind == ir.KindMul && s.Slots[o].Start != 0 {
			t.Fatalf("unconstrained mul delayed to state %d", s.Slots[o].Start)
		}
	}
}
