package hls

import (
	"sort"

	"repro/internal/ir"
)

// FU is one bound functional-unit instance. Several IR operations may share
// it when their execution intervals do not overlap; the paper merges such
// operations into one dependency-graph node (Fig. 4).
type FU struct {
	ID    int
	Kind  ir.OpKind
	Width int // operand width of the instantiated unit
	Func  *ir.Function
	Ops   []*ir.Op
	Res   Resources // hardware cost of the single instance
}

// Shared reports whether more than one operation is bound to the unit.
func (u *FU) Shared() bool { return len(u.Ops) > 1 }

// Mux is a steering multiplexer inserted in front of a shared unit's
// operand port.
type Mux struct {
	FU     *FU
	Inputs int
	Width  int
	Res    Resources
}

// MemBank is one physical bank of a partitioned array.
type MemBank struct {
	ID    int
	Array *ir.Array
	Index int
	Res   Resources
}

// Binding is the module-wide binding result.
type Binding struct {
	Sched  *Schedule
	Units  []*FU
	UnitOf map[*ir.Op]*FU
	Muxes  []*Mux
	Banks  []*MemBank
	BankOf map[*ir.Array][]*MemBank
}

// MuxStats aggregates multiplexer figures for the Global Information
// feature category of one function.
type MuxStats struct {
	Count     int
	Res       Resources
	AvgInputs float64
	AvgWidth  float64
}

// MuxResources returns the fabric cost of an inputs-way multiplexer of the
// given width: 7-series LUT6 structures absorb roughly two selectees per
// LUT per bit.
func MuxResources(inputs, width int) Resources {
	if inputs < 2 {
		return Resources{}
	}
	return Resources{LUT: width * ((inputs + 1) / 2)}
}

// BindModule shares functional units across control steps. Operations are
// walked in schedule order per function; a sharable op joins the first
// compatible unit (same kind, same width bucket, disjoint busy interval, not
// in a pipelined loop). Every other op gets a private unit. Memory banks are
// materialized per array partition.
func BindModule(s *Schedule) *Binding {
	b := &Binding{
		Sched:  s,
		UnitOf: make(map[*ir.Op]*FU, s.Mod.NumOps()),
		BankOf: make(map[*ir.Array][]*MemBank),
	}
	nextFU := 0
	nextBank := 0
	for _, f := range s.Mod.LiveFuncs() {
		// busy[fu] = list of [start,end] intervals, kept only per function.
		busy := make(map[*FU][]span)
		var candidates []*FU

		for _, o := range s.SortedOps(f) {
			slot := s.Slots[o]
			pipelined := false
			for l := o.Loop; l != nil; l = l.Parent {
				if l.Pipelined {
					pipelined = true
					break
				}
			}
			var unit *FU
			if !pipelined && Sharable(o.Kind, o.Bitwidth) {
				bucket := widthBucket(o.Bitwidth)
				for _, u := range candidates {
					if u.Kind != o.Kind || u.Width != bucket {
						continue
					}
					if overlaps(busy[u], slot.Start, slot.End) {
						continue
					}
					unit = u
					break
				}
			}
			if unit == nil {
				width := o.Bitwidth
				if Sharable(o.Kind, o.Bitwidth) {
					width = widthBucket(o.Bitwidth)
				}
				unit = &FU{
					ID:    nextFU,
					Kind:  o.Kind,
					Width: width,
					Func:  f,
					Res:   Characterize(o.Kind, width).Res,
				}
				nextFU++
				b.Units = append(b.Units, unit)
				if Sharable(o.Kind, o.Bitwidth) && !pipelined {
					candidates = append(candidates, unit)
				}
			}
			unit.Ops = append(unit.Ops, o)
			// A multi-cycle unit is busy until the cycle before its result
			// registers; a back-to-back successor may take it over in the
			// result cycle itself.
			busyEnd := slot.End
			if busyEnd > slot.Start {
				busyEnd--
			}
			busy[unit] = append(busy[unit], span{slot.Start, busyEnd})
			b.UnitOf[o] = unit
		}

		for _, a := range f.Arrays {
			per := ArrayResources(a)
			// Split the array cost evenly over its banks.
			banks := a.Banks
			if banks < 1 {
				banks = 1
			}
			each := Resources{
				LUT:  per.LUT / banks,
				FF:   per.FF / banks,
				DSP:  per.DSP / banks,
				BRAM: per.BRAM / banks,
			}
			for i := 0; i < banks; i++ {
				mb := &MemBank{ID: nextBank, Array: a, Index: i, Res: each}
				nextBank++
				b.Banks = append(b.Banks, mb)
				b.BankOf[a] = append(b.BankOf[a], mb)
			}
		}
	}
	b.insertMuxes()
	return b
}

func (b *Binding) insertMuxes() {
	for _, u := range b.Units {
		if !u.Shared() {
			continue
		}
		ports := 0
		for _, o := range u.Ops {
			if len(o.Operands) > ports {
				ports = len(o.Operands)
			}
		}
		for p := 0; p < ports; p++ {
			feeders := 0
			for _, o := range u.Ops {
				if p < len(o.Operands) {
					feeders++
				}
			}
			if feeders < 2 {
				continue
			}
			b.Muxes = append(b.Muxes, &Mux{
				FU:     u,
				Inputs: feeders,
				Width:  u.Width,
				Res:    MuxResources(feeders, u.Width),
			})
		}
	}
}

// FuncMuxStats aggregates the function's multiplexer statistics.
func (b *Binding) FuncMuxStats(f *ir.Function) MuxStats {
	var st MuxStats
	var ins, wid int
	for _, m := range b.Muxes {
		if m.FU.Func != f {
			continue
		}
		st.Count++
		st.Res = st.Res.Add(m.Res)
		ins += m.Inputs
		wid += m.Width
	}
	if st.Count > 0 {
		st.AvgInputs = float64(ins) / float64(st.Count)
		st.AvgWidth = float64(wid) / float64(st.Count)
	}
	return st
}

// FuncBoundResources sums the post-binding hardware of one function:
// unit instances (shared units counted once), muxes, and memory banks.
func (b *Binding) FuncBoundResources(f *ir.Function) Resources {
	var r Resources
	for _, u := range b.Units {
		if u.Func == f {
			r = r.Add(u.Res)
		}
	}
	for _, m := range b.Muxes {
		if m.FU.Func == f {
			r = r.Add(m.Res)
		}
	}
	for _, mb := range b.Banks {
		if mb.Array.Func == f {
			r = r.Add(mb.Res)
		}
	}
	return r
}

// ModuleBoundResources sums bound hardware over all live functions.
func (b *Binding) ModuleBoundResources() Resources {
	var r Resources
	for _, f := range b.Sched.Mod.LiveFuncs() {
		r = r.Add(b.FuncBoundResources(f))
	}
	return r
}

// UnitsOf returns the units belonging to a function, sorted by ID.
func (b *Binding) UnitsOf(f *ir.Function) []*FU {
	var us []*FU
	for _, u := range b.Units {
		if u.Func == f {
			us = append(us, u)
		}
	}
	sort.Slice(us, func(i, j int) bool { return us[i].ID < us[j].ID })
	return us
}

// span is a closed busy interval of control states.
type span struct{ s, e int }

func widthBucket(w int) int {
	b := 8
	for b < w {
		b *= 2
	}
	return b
}

func overlaps(spans []span, start, end int) bool {
	for _, sp := range spans {
		if start <= sp.e && sp.s <= end {
			return true
		}
	}
	return false
}
