// Package ml provides the model-agnostic machinery the paper gets from
// scikit-learn: the Regressor interface, feature standardization, the MAE
// and MedAE accuracy metrics, shuffled train/test splitting, k-fold
// cross-validation and exhaustive grid search. The three model families the
// paper compares live in the subpackages lasso, ann and gbrt.
package ml

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Regressor is a trainable single-target regression model.
type Regressor interface {
	// Fit trains on rows X with targets y. Implementations must not retain
	// the caller's slices.
	Fit(X [][]float64, y []float64) error
	// Predict returns the estimate for one feature vector.
	Predict(x []float64) float64
}

// PredictBatch runs Predict over many rows.
func PredictBatch(r Regressor, X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, x := range X {
		out[i] = r.Predict(x)
	}
	return out
}

// MAE returns the mean absolute error between targets and predictions.
func MAE(y, pred []float64) float64 {
	if len(y) != len(pred) {
		panic(fmt.Sprintf("ml: MAE length mismatch %d vs %d", len(y), len(pred)))
	}
	if len(y) == 0 {
		return 0
	}
	s := 0.0
	for i := range y {
		s += math.Abs(y[i] - pred[i])
	}
	return s / float64(len(y))
}

// MedAE returns the median absolute error, the outlier-robust companion
// metric the paper reports next to MAE.
func MedAE(y, pred []float64) float64 {
	if len(y) != len(pred) {
		panic(fmt.Sprintf("ml: MedAE length mismatch %d vs %d", len(y), len(pred)))
	}
	if len(y) == 0 {
		return 0
	}
	errs := make([]float64, len(y))
	for i := range y {
		errs[i] = math.Abs(y[i] - pred[i])
	}
	sort.Float64s(errs)
	n := len(errs)
	if n%2 == 1 {
		return errs[n/2]
	}
	return (errs[n/2-1] + errs[n/2]) / 2
}

// RMSE returns the root-mean-square error.
func RMSE(y, pred []float64) float64 {
	if len(y) == 0 {
		return 0
	}
	s := 0.0
	for i := range y {
		d := y[i] - pred[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(y)))
}

// R2 returns the coefficient of determination.
func R2(y, pred []float64) float64 {
	if len(y) == 0 {
		return 0
	}
	mean := 0.0
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	var ssRes, ssTot float64
	for i := range y {
		d := y[i] - pred[i]
		ssRes += d * d
		t := y[i] - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		return 0
	}
	return 1 - ssRes/ssTot
}

// Spearman returns the Spearman rank-correlation coefficient between two
// equal-length samples: the Pearson correlation of their rank vectors,
// with ties sharing the average rank. It measures how well one score
// *orders* another, which is what hotspot detection needs.
func Spearman(a, b []float64) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return 0
	}
	ra := ranks(a)
	rb := ranks(b)
	var ma, mb float64
	for i := range ra {
		ma += ra[i]
		mb += rb[i]
	}
	n := float64(len(ra))
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range ra {
		da := ra[i] - ma
		db := rb[i] - mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// ranks returns average ranks (1-based) with ties averaged.
func ranks(v []float64) []float64 {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return v[idx[i]] < v[idx[j]] })
	out := make([]float64, len(v))
	for i := 0; i < len(idx); {
		j := i
		for j+1 < len(idx) && v[idx[j+1]] == v[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}

// Scaler standardizes features to zero mean and unit variance, the
// preprocessing both the Lasso and the ANN need to train well.
type Scaler struct {
	Mean []float64
	Std  []float64
}

// FitScaler learns per-column statistics.
func FitScaler(X [][]float64) *Scaler {
	if len(X) == 0 {
		return &Scaler{}
	}
	d := len(X[0])
	s := &Scaler{Mean: make([]float64, d), Std: make([]float64, d)}
	for _, row := range X {
		for j, v := range row {
			s.Mean[j] += v
		}
	}
	n := float64(len(X))
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for _, row := range X {
		for j, v := range row {
			d := v - s.Mean[j]
			s.Std[j] += d * d
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] / n)
		if s.Std[j] < 1e-12 {
			s.Std[j] = 1
		}
	}
	return s
}

// Transform returns standardized copies of the rows.
func (s *Scaler) Transform(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		out[i] = s.TransformRow(row)
	}
	return out
}

// TransformRow standardizes one row.
func (s *Scaler) TransformRow(row []float64) []float64 {
	if len(s.Mean) == 0 {
		return append([]float64(nil), row...)
	}
	out := make([]float64, len(row))
	for j, v := range row {
		out[j] = (v - s.Mean[j]) / s.Std[j]
	}
	return out
}

// Split holds index sets of one train/test partition.
type Split struct {
	Train []int
	Test  []int
}

// TrainTestSplit shuffles indices 0..n-1 and carves off testFrac of them,
// the paper's random 80/20 partition.
func TrainTestSplit(n int, testFrac float64, rng *rand.Rand) Split {
	idx := rng.Perm(n)
	k := int(float64(n) * testFrac)
	if k < 1 && n > 1 {
		k = 1
	}
	return Split{Test: idx[:k], Train: idx[k:]}
}

// KFold returns k cross-validation splits over shuffled indices.
func KFold(n, k int, rng *rand.Rand) []Split {
	if k < 2 {
		k = 2
	}
	if k > n {
		k = n
	}
	idx := rng.Perm(n)
	folds := make([]Split, k)
	for f := 0; f < k; f++ {
		lo := f * n / k
		hi := (f + 1) * n / k
		test := append([]int(nil), idx[lo:hi]...)
		train := make([]int, 0, n-len(test))
		train = append(train, idx[:lo]...)
		train = append(train, idx[hi:]...)
		folds[f] = Split{Train: train, Test: test}
	}
	return folds
}

// Take gathers the selected rows and targets.
func Take(X [][]float64, y []float64, idx []int) ([][]float64, []float64) {
	xs := make([][]float64, len(idx))
	ys := make([]float64, len(idx))
	for i, j := range idx {
		xs[i] = X[j]
		ys[i] = y[j]
	}
	return xs, ys
}
