// Package ml provides the model-agnostic machinery the paper gets from
// scikit-learn: the Regressor interface, feature standardization, the MAE
// and MedAE accuracy metrics, shuffled train/test splitting, k-fold
// cross-validation and exhaustive grid search. The three model families the
// paper compares live in the subpackages lasso, ann and gbrt.
package ml

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
)

// Regressor is a trainable single-target regression model.
type Regressor interface {
	// Fit trains on rows X with targets y. Implementations must not retain
	// the caller's slices.
	Fit(X [][]float64, y []float64) error
	// Predict returns the estimate for one feature vector.
	Predict(x []float64) float64
}

// BatchPredictor is the serving-side fast path: regressors that can fill a
// caller-owned output slice for a whole batch without allocating. All three
// model families (lasso, ann, gbrt) implement it; predictions are
// bit-identical to calling Predict per row.
type BatchPredictor interface {
	// PredictBatchInto writes the estimate for X[i] into out[i]. out must
	// have len(X) entries.
	PredictBatchInto(out []float64, X [][]float64)
}

// SharedTrainer is implemented by regressors that can digest a training
// set once into a hyperparameter-independent prepared form every candidate
// fitted on the same rows can reuse — GBRT's quantile binning is the
// motivating case: the binned matrix depends only on the data, not on tree
// count, depth or learning rate, so the grid search prepares it once per
// fold instead of once per (candidate, fold) cell.
type SharedTrainer interface {
	Regressor
	// PrepareShared digests the rows. The digest must own its data (no
	// retained X slices) so callers may reuse X's backing storage.
	PrepareShared(X [][]float64) any
	// FitShared trains from a digest previously prepared on exactly these
	// rows, falling back to a plain Fit when the digest is incompatible
	// (e.g. a different bin count). Results are bit-identical to Fit.
	FitShared(prep any, X [][]float64, y []float64) error
}

// PredictBatch runs Predict over many rows.
func PredictBatch(r Regressor, X [][]float64) []float64 {
	out := make([]float64, len(X))
	return PredictBatchInto(r, X, out)
}

// PredictBatchInto fills out (which must have len(X) entries) with r's
// estimates, taking the regressor's allocation-free batch path when it has
// one, and returns out. Values are identical to PredictBatch.
func PredictBatchInto(r Regressor, X [][]float64, out []float64) []float64 {
	if len(out) != len(X) {
		panic(fmt.Sprintf("ml: PredictBatchInto output length %d for %d rows", len(out), len(X)))
	}
	if bp, ok := r.(BatchPredictor); ok {
		bp.PredictBatchInto(out, X)
		return out
	}
	for i, x := range X {
		out[i] = r.Predict(x)
	}
	return out
}

// MAE returns the mean absolute error between targets and predictions.
func MAE(y, pred []float64) float64 {
	if len(y) != len(pred) {
		panic(fmt.Sprintf("ml: MAE length mismatch %d vs %d", len(y), len(pred)))
	}
	if len(y) == 0 {
		return 0
	}
	s := 0.0
	for i := range y {
		s += math.Abs(y[i] - pred[i])
	}
	return s / float64(len(y))
}

// medaeScratch recycles the absolute-error buffer across MedAE calls so
// metric evaluation inside cross-validation stops allocating per fold.
var medaeScratch = sync.Pool{New: func() any { s := make([]float64, 0, 512); return &s }}

// MedAE returns the median absolute error, the outlier-robust companion
// metric the paper reports next to MAE. The median is found by partial
// selection on a pooled scratch buffer — no allocation, no full sort — and
// the result is identical to sorting: order statistics are the same values
// however they are located.
func MedAE(y, pred []float64) float64 {
	if len(y) != len(pred) {
		panic(fmt.Sprintf("ml: MedAE length mismatch %d vs %d", len(y), len(pred)))
	}
	if len(y) == 0 {
		return 0
	}
	sp := medaeScratch.Get().(*[]float64)
	errs := (*sp)[:0]
	for i := range y {
		errs = append(errs, math.Abs(y[i]-pred[i]))
	}
	n := len(errs)
	upper := selectNth(errs, n/2)
	var med float64
	if n%2 == 1 {
		med = upper
	} else {
		// selectNth leaves errs[:n/2] holding the n/2 smallest values;
		// their maximum is the lower middle element.
		lower := errs[0]
		for _, v := range errs[1 : n/2] {
			if v > lower {
				lower = v
			}
		}
		med = (lower + upper) / 2
	}
	*sp = errs
	medaeScratch.Put(sp)
	return med
}

// selectNth partially partitions s (in place) so s[k] holds the k-th
// smallest element with everything before it no larger, and returns s[k].
// Deterministic median-of-three quickselect; 0 <= k < len(s).
func selectNth(s []float64, k int) float64 {
	lo, hi := 0, len(s)-1
	for lo < hi {
		// Median-of-three pivot, moved to s[hi-1] by the ordering swaps.
		mid := lo + (hi-lo)/2
		if s[mid] < s[lo] {
			s[mid], s[lo] = s[lo], s[mid]
		}
		if s[hi] < s[lo] {
			s[hi], s[lo] = s[lo], s[hi]
		}
		if s[hi] < s[mid] {
			s[hi], s[mid] = s[mid], s[hi]
		}
		if hi-lo < 3 {
			break // the three-element ordering above already sorted them
		}
		s[mid], s[hi-1] = s[hi-1], s[mid]
		pivot := s[hi-1]
		i, j := lo, hi-1
		for {
			for i++; s[i] < pivot; i++ {
			}
			for j--; s[j] > pivot; j-- {
			}
			if i >= j {
				break
			}
			s[i], s[j] = s[j], s[i]
		}
		s[i], s[hi-1] = s[hi-1], s[i]
		switch {
		case k < i:
			hi = i - 1
		case k > i:
			lo = i + 1
		default:
			return s[k]
		}
	}
	return s[k]
}

// RMSE returns the root-mean-square error.
func RMSE(y, pred []float64) float64 {
	if len(y) == 0 {
		return 0
	}
	s := 0.0
	for i := range y {
		d := y[i] - pred[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(y)))
}

// R2 returns the coefficient of determination.
func R2(y, pred []float64) float64 {
	if len(y) == 0 {
		return 0
	}
	mean := 0.0
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	var ssRes, ssTot float64
	for i := range y {
		d := y[i] - pred[i]
		ssRes += d * d
		t := y[i] - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		return 0
	}
	return 1 - ssRes/ssTot
}

// Spearman returns the Spearman rank-correlation coefficient between two
// equal-length samples: the Pearson correlation of their rank vectors,
// with ties sharing the average rank. It measures how well one score
// *orders* another, which is what hotspot detection needs.
func Spearman(a, b []float64) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return 0
	}
	ra := ranks(a)
	rb := ranks(b)
	var ma, mb float64
	for i := range ra {
		ma += ra[i]
		mb += rb[i]
	}
	n := float64(len(ra))
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range ra {
		da := ra[i] - ma
		db := rb[i] - mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// ranks returns average ranks (1-based) with ties averaged.
func ranks(v []float64) []float64 {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return v[idx[i]] < v[idx[j]] })
	out := make([]float64, len(v))
	for i := 0; i < len(idx); {
		j := i
		for j+1 < len(idx) && v[idx[j+1]] == v[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}

// Scaler standardizes features to zero mean and unit variance, the
// preprocessing both the Lasso and the ANN need to train well.
type Scaler struct {
	Mean []float64
	Std  []float64
}

// Width returns the feature-vector width the scaler was fitted on — the
// row length every Transform* call expects.
func (s *Scaler) Width() int { return len(s.Mean) }

// FitScaler learns per-column statistics.
func FitScaler(X [][]float64) *Scaler {
	if len(X) == 0 {
		return &Scaler{}
	}
	d := len(X[0])
	s := &Scaler{Mean: make([]float64, d), Std: make([]float64, d)}
	for _, row := range X {
		for j, v := range row {
			s.Mean[j] += v
		}
	}
	n := float64(len(X))
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for _, row := range X {
		for j, v := range row {
			d := v - s.Mean[j]
			s.Std[j] += d * d
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] / n)
		if s.Std[j] < 1e-12 {
			s.Std[j] = 1
		}
	}
	return s
}

// Transform returns standardized copies of the rows.
func (s *Scaler) Transform(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		out[i] = s.TransformRow(row)
	}
	return out
}

// TransformRow standardizes one row into a fresh slice. Hot paths use
// TransformRowInto instead and reuse the destination.
func (s *Scaler) TransformRow(row []float64) []float64 {
	return s.TransformRowInto(make([]float64, len(row)), row)
}

// TransformRowInto standardizes row into dst (len(dst) must be len(row))
// and returns dst. It is the allocation-free form of TransformRow used by
// the predict hot path; values are identical.
func (s *Scaler) TransformRowInto(dst, row []float64) []float64 {
	if len(dst) != len(row) {
		panic(fmt.Sprintf("ml: TransformRowInto dst length %d for row length %d", len(dst), len(row)))
	}
	if len(s.Mean) == 0 {
		copy(dst, row)
		return dst
	}
	for j, v := range row {
		dst[j] = (v - s.Mean[j]) / s.Std[j]
	}
	return dst
}

// TransformRowsInto standardizes every row of X into the flat matrix dst,
// reusing dst's backing array — the training-side counterpart of
// TransformRowInto. Values are identical to Transform.
func (s *Scaler) TransformRowsInto(dst *Matrix, X [][]float64) {
	cols := 0
	if len(X) > 0 {
		cols = len(X[0])
	}
	dst.Reset(len(X), cols)
	for i, row := range X {
		s.TransformRowInto(dst.Row(i), row)
	}
}

// Split holds index sets of one train/test partition.
type Split struct {
	Train []int
	Test  []int
}

// TrainTestSplit shuffles indices 0..n-1 and carves off testFrac of them,
// the paper's random 80/20 partition.
func TrainTestSplit(n int, testFrac float64, rng *rand.Rand) Split {
	idx := rng.Perm(n)
	k := int(float64(n) * testFrac)
	if k < 1 && n > 1 {
		k = 1
	}
	return Split{Test: idx[:k], Train: idx[k:]}
}

// KFold returns k cross-validation splits over shuffled indices.
func KFold(n, k int, rng *rand.Rand) []Split {
	if k < 2 {
		k = 2
	}
	if k > n {
		k = n
	}
	idx := rng.Perm(n)
	folds := make([]Split, k)
	for f := 0; f < k; f++ {
		lo := f * n / k
		hi := (f + 1) * n / k
		test := append([]int(nil), idx[lo:hi]...)
		train := make([]int, 0, n-len(test))
		train = append(train, idx[:lo]...)
		train = append(train, idx[hi:]...)
		folds[f] = Split{Train: train, Test: test}
	}
	return folds
}

// Take gathers the selected rows and targets.
func Take(X [][]float64, y []float64, idx []int) ([][]float64, []float64) {
	xs := make([][]float64, len(idx))
	ys := make([]float64, len(idx))
	for i, j := range idx {
		xs[i] = X[j]
		ys[i] = y[j]
	}
	return xs, ys
}
