package gbrt

import (
	"encoding/json"
	"math/rand"
	"testing"
)

func TestGBRTSerializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	X, y := stepData(300, 4, rng)
	m := New(30, 0.1, 5)
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Model
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if m.Predict(X[i]) != back.Predict(X[i]) {
			t.Fatalf("prediction %d differs after reload", i)
		}
	}
	// Importance survives too.
	a, b := m.FeatureImportance(), back.FeatureImportance()
	for j := range a {
		if a[j] != b[j] {
			t.Fatal("importance differs after reload")
		}
	}
}

// TestGBRTRoundTripBatchForest checks that a reloaded model rebuilds its
// flattened forest: the batch fast path on the reloaded model must agree
// bitwise with the original model's per-row Predict.
func TestGBRTRoundTripBatchForest(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	X, y := stepData(250, 5, rng)
	m := New(20, 0.15, 9)
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Model
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	out := make([]float64, len(X))
	back.PredictBatchInto(out, X)
	for i, x := range X {
		if want := m.Predict(x); out[i] != want {
			t.Fatalf("reloaded batch prediction %d = %v, want %v", i, out[i], want)
		}
	}
}

func TestGBRTUnmarshalRejectsCorruptTrees(t *testing.T) {
	var m Model
	bad := `{"trees":[[{"f":0,"l":99,"r":1},{"f":-1,"v":1}]],"thresholds":[[0.5]]}`
	if err := json.Unmarshal([]byte(bad), &m); err == nil {
		t.Fatal("dangling children accepted")
	}
	empty := `{"trees":[[]]}`
	if err := json.Unmarshal([]byte(empty), &m); err == nil {
		t.Fatal("empty tree accepted")
	}
	if err := json.Unmarshal([]byte("{"), &m); err == nil {
		t.Fatal("truncated JSON accepted")
	}
}
