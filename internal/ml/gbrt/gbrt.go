// Package gbrt implements gradient-boosted regression trees — the paper's
// best-performing model. Stage-wise least-squares boosting fits shallow CART
// trees to the running residuals; split search uses quantile-binned feature
// histograms for speed; feature importance follows the paper's measure, the
// number of times a feature is used as a split point across the ensemble.
package gbrt

import (
	"fmt"
	"math/rand"
	"sort"
)

// Model is a gradient-boosted tree ensemble for regression.
type Model struct {
	NumTrees       int     // boosting stages (default 200)
	LearningRate   float64 // shrinkage per stage (default 0.1)
	MaxDepth       int     // tree depth (default 4)
	MinSamplesLeaf int     // minimum rows per leaf (default 5)
	Subsample      float64 // row fraction per stage, <1 = stochastic (default 0.8)
	FeatureFrac    float64 // feature fraction searched per node (default 1.0)
	Bins           int     // histogram bins per feature (default 64, max 256)
	Seed           int64   // subsampling seed

	base       float64
	trees      []*tree
	thresholds [][]float64 // per-feature bin upper edges
	splitCount []int       // per-feature split-point count (importance)
}

// New returns a model with the given stage count and learning rate.
func New(numTrees int, learningRate float64, seed int64) *Model {
	return &Model{
		NumTrees:       numTrees,
		LearningRate:   learningRate,
		MaxDepth:       4,
		MinSamplesLeaf: 5,
		Subsample:      0.8,
		FeatureFrac:    1.0,
		Bins:           64,
		Seed:           seed,
	}
}

// node is one tree vertex in the flat arena.
type node struct {
	feature int     // split feature, -1 for leaves
	bin     uint8   // split bin: go left when binned value <= bin
	thresh  float64 // real-valued threshold for prediction
	left    int
	right   int
	value   float64 // leaf prediction (already shrunk)
}

type tree struct {
	nodes []*node
}

// Fit trains the ensemble.
func (m *Model) Fit(X [][]float64, y []float64) error {
	n := len(X)
	if n == 0 || n != len(y) {
		return fmt.Errorf("gbrt: fit on %d rows / %d targets", n, len(y))
	}
	d := len(X[0])
	if m.NumTrees <= 0 {
		m.NumTrees = 200
	}
	if m.LearningRate <= 0 {
		m.LearningRate = 0.1
	}
	if m.MaxDepth <= 0 {
		m.MaxDepth = 4
	}
	if m.MinSamplesLeaf <= 0 {
		m.MinSamplesLeaf = 5
	}
	if m.Subsample <= 0 || m.Subsample > 1 {
		m.Subsample = 1
	}
	if m.FeatureFrac <= 0 || m.FeatureFrac > 1 {
		m.FeatureFrac = 1
	}
	if m.Bins <= 1 || m.Bins > 256 {
		m.Bins = 64
	}
	rng := rand.New(rand.NewSource(m.Seed))

	binned, thresholds := m.binize(X, d)
	m.thresholds = thresholds
	m.splitCount = make([]int, d)

	// Base prediction: target mean.
	m.base = 0
	for _, v := range y {
		m.base += v
	}
	m.base /= float64(n)

	pred := make([]float64, n)
	for i := range pred {
		pred[i] = m.base
	}
	residual := make([]float64, n)
	m.trees = m.trees[:0]

	rows := make([]int, n)
	features := make([]int, d)
	for j := range features {
		features[j] = j
	}
	nFeat := int(float64(d) * m.FeatureFrac)
	if nFeat < 1 {
		nFeat = 1
	}

	for t := 0; t < m.NumTrees; t++ {
		for i := range residual {
			residual[i] = y[i] - pred[i]
		}
		rows = rows[:0]
		if m.Subsample < 1 {
			for i := 0; i < n; i++ {
				if rng.Float64() < m.Subsample {
					rows = append(rows, i)
				}
			}
			if len(rows) < 2*m.MinSamplesLeaf {
				for i := 0; i < n; i++ {
					rows = append(rows[:0], i)
				}
			}
		} else {
			for i := 0; i < n; i++ {
				rows = append(rows, i)
			}
		}
		tr := &tree{}
		b := &builder{
			m: m, binned: binned, residual: residual, tree: tr,
			rng: rng, features: features, nFeat: nFeat, dims: d,
		}
		b.grow(rows, 0)
		m.trees = append(m.trees, tr)
		// Update all predictions (not only the subsample), standard GBM.
		for i := 0; i < n; i++ {
			pred[i] += tr.predictBinned(binned[i])
		}
	}
	return nil
}

// binize quantile-bins each feature column.
func (m *Model) binize(X [][]float64, d int) ([][]uint8, [][]float64) {
	n := len(X)
	thresholds := make([][]float64, d)
	vals := make([]float64, n)
	for j := 0; j < d; j++ {
		for i := 0; i < n; i++ {
			vals[i] = X[i][j]
		}
		sort.Float64s(vals)
		var th []float64
		for b := 1; b < m.Bins; b++ {
			q := vals[b*(n-1)/m.Bins]
			if len(th) == 0 || q > th[len(th)-1] {
				th = append(th, q)
			}
		}
		thresholds[j] = th
	}
	binned := make([][]uint8, n)
	for i := 0; i < n; i++ {
		row := make([]uint8, d)
		for j := 0; j < d; j++ {
			row[j] = binOf(X[i][j], thresholds[j])
		}
		binned[i] = row
	}
	return binned, thresholds
}

func binOf(v float64, th []float64) uint8 {
	lo, hi := 0, len(th)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= th[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return uint8(lo)
}

type builder struct {
	m        *Model
	binned   [][]uint8
	residual []float64
	tree     *tree
	rng      *rand.Rand
	features []int
	nFeat    int
	dims     int
}

// grow builds a subtree over the row set and returns its node index.
func (b *builder) grow(rows []int, depth int) int {
	sum := 0.0
	for _, i := range rows {
		sum += b.residual[i]
	}
	mean := sum / float64(len(rows))

	leaf := func() int {
		nd := &node{feature: -1, value: b.m.LearningRate * mean}
		b.tree.nodes = append(b.tree.nodes, nd)
		return len(b.tree.nodes) - 1
	}
	if depth >= b.m.MaxDepth || len(rows) < 2*b.m.MinSamplesLeaf {
		return leaf()
	}
	feat, bin, gain := b.bestSplit(rows, sum)
	if feat < 0 || gain <= 1e-12 {
		return leaf()
	}
	var left, right []int
	for _, i := range rows {
		if b.binned[i][feat] <= bin {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < b.m.MinSamplesLeaf || len(right) < b.m.MinSamplesLeaf {
		return leaf()
	}
	b.m.splitCount[feat]++
	th := b.m.thresholds[feat]
	thresh := 0.0
	if int(bin) < len(th) {
		thresh = th[bin]
	} else if len(th) > 0 {
		thresh = th[len(th)-1]
	}
	nd := &node{feature: feat, bin: bin, thresh: thresh}
	b.tree.nodes = append(b.tree.nodes, nd)
	idx := len(b.tree.nodes) - 1
	nd.left = b.grow(left, depth+1)
	nd.right = b.grow(right, depth+1)
	return idx
}

// bestSplit scans per-feature histograms for the largest SSE reduction.
func (b *builder) bestSplit(rows []int, total float64) (feat int, bin uint8, gain float64) {
	nT := float64(len(rows))
	baseScore := total * total / nT
	feat = -1

	cand := b.features
	if b.nFeat < b.dims {
		cand = make([]int, b.nFeat)
		perm := b.rng.Perm(b.dims)
		copy(cand, perm[:b.nFeat])
	}
	var cnt [256]int
	var sums [256]float64
	for _, j := range cand {
		nb := len(b.m.thresholds[j]) + 1
		if nb < 2 {
			continue
		}
		for k := 0; k < nb; k++ {
			cnt[k] = 0
			sums[k] = 0
		}
		for _, i := range rows {
			bv := b.binned[i][j]
			cnt[bv]++
			sums[bv] += b.residual[i]
		}
		cl, sl := 0, 0.0
		for k := 0; k < nb-1; k++ {
			cl += cnt[k]
			sl += sums[k]
			cr := len(rows) - cl
			if cl < b.m.MinSamplesLeaf || cr < b.m.MinSamplesLeaf {
				continue
			}
			sr := total - sl
			g := sl*sl/float64(cl) + sr*sr/float64(cr) - baseScore
			if g > gain {
				gain = g
				feat = j
				bin = uint8(k)
			}
		}
	}
	return feat, bin, gain
}

func (t *tree) predictBinned(row []uint8) float64 {
	i := 0
	for {
		nd := t.nodes[i]
		if nd.feature < 0 {
			return nd.value
		}
		if row[nd.feature] <= nd.bin {
			i = nd.left
		} else {
			i = nd.right
		}
	}
}

// Predict evaluates the ensemble on raw (unbinned) features.
func (m *Model) Predict(x []float64) float64 {
	s := m.base
	for _, t := range m.trees {
		i := 0
		for {
			nd := t.nodes[i]
			if nd.feature < 0 {
				s += nd.value
				break
			}
			if x[nd.feature] <= nd.thresh {
				i = nd.left
			} else {
				i = nd.right
			}
		}
	}
	return s
}

// FeatureImportance returns the per-feature split counts normalized to sum
// to 1 — the paper's importance measure ("the number of times that a
// feature is used as a split point", averaged over the ensemble).
func (m *Model) FeatureImportance() []float64 {
	out := make([]float64, len(m.splitCount))
	total := 0
	for _, c := range m.splitCount {
		total += c
	}
	if total == 0 {
		return out
	}
	for j, c := range m.splitCount {
		out[j] = float64(c) / float64(total)
	}
	return out
}

// NumSplits returns the raw split count per feature.
func (m *Model) NumSplits() []int {
	return append([]int(nil), m.splitCount...)
}
