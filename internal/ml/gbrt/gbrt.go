// Package gbrt implements gradient-boosted regression trees — the paper's
// best-performing model. Stage-wise least-squares boosting fits shallow CART
// trees to the running residuals; split search uses quantile-binned feature
// histograms for speed; feature importance follows the paper's measure, the
// number of times a feature is used as a split point across the ensemble.
//
// The training fast path works on a column-major binned matrix (Prebin)
// that is hyperparameter-independent and therefore shareable across every
// candidate of a grid search fitted on the same rows (ml.SharedTrainer);
// tree growth uses a flat value-typed node arena, a stable in-place row
// partition over one shared index array, and exact histogram subtraction
// for sibling node *counts*. Per-bin residual sums keep the direct scan:
// float subtraction would not reproduce the original accumulation order,
// and every optimization here is gated on byte-identical ensembles
// (equiv_test.go). Prediction walks a flattened index-based forest.
package gbrt

import (
	"fmt"
	"math/rand"
	"sort"
)

// Model is a gradient-boosted tree ensemble for regression.
type Model struct {
	NumTrees       int     // boosting stages (default 200)
	LearningRate   float64 // shrinkage per stage (default 0.1)
	MaxDepth       int     // tree depth (default 4)
	MinSamplesLeaf int     // minimum rows per leaf (default 5)
	Subsample      float64 // row fraction per stage, <1 = stochastic (default 0.8)
	FeatureFrac    float64 // feature fraction searched per node (default 1.0)
	Bins           int     // histogram bins per feature (default 64, max 256)
	Seed           int64   // subsampling seed

	base       float64
	trees      []tree
	forest     []node  // all trees' nodes concatenated, child indices global
	roots      []int32 // root index of each tree within forest
	thresholds [][]float64 // per-feature bin upper edges
	splitCount []int       // per-feature split-point count (importance)
}

// New returns a model with the given stage count and learning rate.
func New(numTrees int, learningRate float64, seed int64) *Model {
	return &Model{
		NumTrees:       numTrees,
		LearningRate:   learningRate,
		MaxDepth:       4,
		MinSamplesLeaf: 5,
		Subsample:      0.8,
		FeatureFrac:    1.0,
		Bins:           64,
		Seed:           seed,
	}
}

// node is one tree vertex in the flat arena. Values, not pointers: a tree
// is one contiguous []node and Predict never chases a heap pointer.
type node struct {
	feature int32   // split feature, -1 for leaves
	bin     uint8   // split bin: go left when binned value <= bin
	left    int32
	right   int32
	thresh  float64 // real-valued threshold for prediction
	value   float64 // leaf prediction (already shrunk)
}

type tree struct {
	nodes []node
}

// Prebin is the quantile-binned, column-major form of a training matrix:
// per-feature bin thresholds plus one uint8 bin index per cell, feature j
// occupying binned[j*n : (j+1)*n]. It depends only on the data and the bin
// count — never on tree count, depth, learning rate or seed — so one
// Prebin serves every grid-search candidate fitted on the same rows
// (ml.SharedTrainer). A Prebin owns its storage and is immutable after
// construction; concurrent readers are safe.
type Prebin struct {
	bins, n, d int
	thresholds [][]float64
	binned     []uint8 // column-major: feature j at binned[j*n : (j+1)*n]
	rows       []uint8 // row-major: row i at rows[i*d : (i+1)*d]
}

// NewPrebin quantile-bins X with the given bin count (out-of-range values
// select the package default, matching Fit's normalization).
func NewPrebin(X [][]float64, bins int) *Prebin {
	if bins <= 1 || bins > 256 {
		bins = 64
	}
	n := len(X)
	pb := &Prebin{bins: bins, n: n}
	if n == 0 {
		return pb
	}
	pb.d = len(X[0])
	pb.thresholds = make([][]float64, pb.d)
	vals := make([]float64, n)
	for j := 0; j < pb.d; j++ {
		for i := 0; i < n; i++ {
			vals[i] = X[i][j]
		}
		sort.Float64s(vals)
		var th []float64
		for b := 1; b < bins; b++ {
			q := vals[b*(n-1)/bins]
			if len(th) == 0 || q > th[len(th)-1] {
				th = append(th, q)
			}
		}
		pb.thresholds[j] = th
	}
	pb.binned = make([]uint8, pb.d*n)
	for j := 0; j < pb.d; j++ {
		th := pb.thresholds[j]
		col := pb.binned[j*n : (j+1)*n]
		for i := 0; i < n; i++ {
			col[i] = binOf(X[i][j], th)
		}
	}
	// Row-major mirror: split search walks whole rows (one contiguous
	// d-byte strip per row), the partition walks single columns.
	pb.rows = make([]uint8, n*pb.d)
	for j := 0; j < pb.d; j++ {
		col := pb.binned[j*n : (j+1)*n]
		for i := 0; i < n; i++ {
			pb.rows[i*pb.d+j] = col[i]
		}
	}
	return pb
}

// col returns feature j's bin column.
func (pb *Prebin) col(j int) []uint8 { return pb.binned[j*pb.n : (j+1)*pb.n] }

// applyDefaults normalizes the hyperparameters exactly as Fit always has.
func (m *Model) applyDefaults() {
	if m.NumTrees <= 0 {
		m.NumTrees = 200
	}
	if m.LearningRate <= 0 {
		m.LearningRate = 0.1
	}
	if m.MaxDepth <= 0 {
		m.MaxDepth = 4
	}
	if m.MinSamplesLeaf <= 0 {
		m.MinSamplesLeaf = 5
	}
	if m.Subsample <= 0 || m.Subsample > 1 {
		m.Subsample = 1
	}
	if m.FeatureFrac <= 0 || m.FeatureFrac > 1 {
		m.FeatureFrac = 1
	}
	if m.Bins <= 1 || m.Bins > 256 {
		m.Bins = 64
	}
}

// Fit trains the ensemble.
func (m *Model) Fit(X [][]float64, y []float64) error {
	n := len(X)
	if n == 0 || n != len(y) {
		return fmt.Errorf("gbrt: fit on %d rows / %d targets", n, len(y))
	}
	m.applyDefaults()
	return m.fitBinned(NewPrebin(X, m.Bins), y)
}

// PrepareShared digests X into a Prebin (ml.SharedTrainer). The digest is
// valid for any model of this family with the same bin count.
func (m *Model) PrepareShared(X [][]float64) any {
	bins := m.Bins
	if bins <= 1 || bins > 256 {
		bins = 64
	}
	return NewPrebin(X, bins)
}

// FitShared trains from a Prebin previously prepared on exactly these rows
// (ml.SharedTrainer), skipping the per-fit binning pass. An incompatible
// or missing digest falls back to a plain Fit; either way the trained
// ensemble is bit-identical to Fit(X, y).
func (m *Model) FitShared(prep any, X [][]float64, y []float64) error {
	pb, ok := prep.(*Prebin)
	if !ok || pb == nil {
		return m.Fit(X, y)
	}
	n := len(X)
	if n == 0 || n != len(y) {
		return fmt.Errorf("gbrt: fit on %d rows / %d targets", n, len(y))
	}
	m.applyDefaults()
	if pb.n != n || pb.d != len(X[0]) || pb.bins != m.Bins {
		return m.Fit(X, y)
	}
	return m.fitBinned(pb, y)
}

// fitBinned is the boosting loop over an already-binned training set.
func (m *Model) fitBinned(pb *Prebin, y []float64) error {
	n, d := pb.n, pb.d
	rng := rand.New(rand.NewSource(m.Seed))

	m.thresholds = pb.thresholds
	m.splitCount = make([]int, d)

	// Base prediction: target mean.
	m.base = 0
	for _, v := range y {
		m.base += v
	}
	m.base /= float64(n)

	pred := make([]float64, n)
	for i := range pred {
		pred[i] = m.base
	}
	residual := make([]float64, n)
	m.trees = m.trees[:0]
	m.forest, m.roots = nil, nil

	features := make([]int, d)
	for j := range features {
		features[j] = j
	}
	nFeat := int(float64(d) * m.FeatureFrac)
	if nFeat < 1 {
		nFeat = 1
	}
	b := &builder{
		m: m, pb: pb, residual: residual, rng: rng,
		features: features, nFeat: nFeat, dims: d, stride: pb.bins,
		idx: make([]int, 0, n), part: make([]int, n),
		treeOut: make([]float64, n), stamp: make([]int32, n),
		res: make([]float64, n),
	}
	if b.shareable() {
		b.sumsArena = make([]float64, d*pb.bins)
	}

	for t := 0; t < m.NumTrees; t++ {
		for i := range residual {
			residual[i] = y[i] - pred[i]
		}
		rows := b.idx[:0]
		if m.Subsample < 1 {
			for i := 0; i < n; i++ {
				if rng.Float64() < m.Subsample {
					rows = append(rows, i)
				}
			}
			if len(rows) < 2*m.MinSamplesLeaf {
				// Faithful to the original fallback (which ends holding only
				// the final row): changing it would shift trained ensembles.
				for i := 0; i < n; i++ {
					rows = append(rows[:0], i)
				}
			}
		} else {
			for i := 0; i < n; i++ {
				rows = append(rows, i)
			}
		}
		b.idx = rows
		m.trees = append(m.trees, tree{})
		tr := &m.trees[len(m.trees)-1]
		b.tree = tr
		b.curStamp = int32(t + 1)
		b.grow(0, len(rows), 0, nil)
		// Update all predictions (not only the subsample), standard GBM.
		// Rows the tree was grown on already know their leaf (recorded as
		// the grower sealed each leaf's row segment) — same value, same
		// single addition as a tree walk; only rows outside the subsample
		// still walk the tree.
		if len(rows) == n {
			for i := 0; i < n; i++ {
				pred[i] += b.treeOut[i]
			}
		} else {
			for i := 0; i < n; i++ {
				if b.stamp[i] == b.curStamp {
					pred[i] += b.treeOut[i]
				} else {
					pred[i] += tr.predictBinned(pb, i)
				}
			}
		}
	}
	m.buildForest()
	return nil
}

func binOf(v float64, th []float64) uint8 {
	lo, hi := 0, len(th)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= th[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return uint8(lo)
}

// Count-histogram slots per depth: a node's own histograms (when it had to
// compute them fresh) and one per child (filled by histogram subtraction).
const (
	slotSelf = iota
	slotLeft
	slotRight
	slotsPerDepth
)

type builder struct {
	m        *Model
	pb       *Prebin
	residual []float64
	tree     *tree
	rng      *rand.Rand
	features []int
	nFeat    int
	dims     int
	stride   int // count-histogram bins per feature (= Prebin bin count)

	// idx is the row-index arena: every subtree owns one contiguous
	// segment, reordered in place by the stable partition. part is the
	// partition scratch; cntStack holds the per-depth count histograms.
	idx      []int
	part     []int
	cntStack [][]uint32

	// treeOut[i] is the current tree's leaf value for row i, recorded when
	// the leaf owning i's segment is sealed; stamp[i] marks which tree
	// (1-based) last covered row i, so stale entries need no clearing.
	treeOut  []float64
	stamp    []int32
	curStamp int32

	// res is bestSplit's densely-packed copy of the segment's residuals:
	// gathered once per node so the split scan reads them sequentially
	// instead of through the row indices.
	res []float64

	// sumsArena holds every feature's per-bin residual sums for the node
	// being split (dims*stride, feature-major) — filled by one row-major
	// pass over the segment instead of d per-feature gather scans. Only
	// allocated when all features are candidates at every node.
	sumsArena []float64
}

// shareable reports whether count histograms can be reused across the
// tree: with feature subsampling each node scans a different candidate
// set, so a parent's histograms do not cover a child's features.
func (b *builder) shareable() bool { return b.nFeat == b.dims }

// slot returns (allocating lazily) the count-histogram buffer for one
// depth level, dims*stride uint32s laid out feature-major.
func (b *builder) slot(depth, which int) []uint32 {
	k := depth*slotsPerDepth + which
	for len(b.cntStack) <= k {
		b.cntStack = append(b.cntStack, nil)
	}
	if b.cntStack[k] == nil {
		b.cntStack[k] = make([]uint32, b.dims*b.stride)
	}
	return b.cntStack[k]
}

// grow builds a subtree over idx[lo:hi] and returns its node index. cnts,
// when non-nil, holds this node's per-feature bin counts (derived at the
// parent by histogram subtraction).
func (b *builder) grow(lo, hi, depth int, cnts []uint32) int {
	seg := b.idx[lo:hi]
	sum := 0.0
	for _, i := range seg {
		sum += b.residual[i]
	}
	mean := sum / float64(len(seg))

	leaf := func() int {
		v := b.m.LearningRate * mean
		for _, i := range seg {
			b.treeOut[i] = v
			b.stamp[i] = b.curStamp
		}
		b.tree.nodes = append(b.tree.nodes, node{feature: -1, value: v})
		return len(b.tree.nodes) - 1
	}
	if depth >= b.m.MaxDepth || len(seg) < 2*b.m.MinSamplesLeaf {
		return leaf()
	}
	feat, bin, gain, nodeCnts := b.bestSplit(lo, hi, sum, cnts, depth)
	if feat < 0 || gain <= 1e-12 {
		return leaf()
	}
	// Stable in-place partition over the shared scratch: left rows keep
	// their order, then right rows keep theirs — exactly the order the
	// original append-based partition produced.
	col := b.pb.col(feat)
	part := b.part[lo:hi]
	nl := 0
	for _, i := range seg {
		if col[i] <= bin {
			nl++
		}
	}
	nr := len(seg) - nl
	if nl < b.m.MinSamplesLeaf || nr < b.m.MinSamplesLeaf {
		return leaf()
	}
	li, ri := 0, nl
	for _, i := range seg {
		if col[i] <= bin {
			part[li] = i
			li++
		} else {
			part[ri] = i
			ri++
		}
	}
	copy(seg, part)

	b.m.splitCount[feat]++
	th := b.m.thresholds[feat]
	thresh := 0.0
	if int(bin) < len(th) {
		thresh = th[bin]
	} else if len(th) > 0 {
		thresh = th[len(th)-1]
	}
	b.tree.nodes = append(b.tree.nodes, node{feature: int32(feat), bin: bin, thresh: thresh})
	idx := len(b.tree.nodes) - 1
	leftC, rightC := b.childCounts(lo, lo+nl, hi, depth, nodeCnts)
	l := b.grow(lo, lo+nl, depth+1, leftC)
	r := b.grow(lo+nl, hi, depth+1, rightC)
	b.tree.nodes[idx].left = int32(l)
	b.tree.nodes[idx].right = int32(r)
	return idx
}

// bestSplit scans per-feature histograms for the largest SSE reduction.
// When cnts is non-nil the bin counts are already known (histogram
// subtraction at the parent) and the scan accumulates residual sums only;
// otherwise counts are tallied into this node's slot so its own children
// can subtract. Per-bin residual sums are always accumulated by direct
// scan in row order — identical float arithmetic to the original kernel.
func (b *builder) bestSplit(lo, hi int, total float64, cnts []uint32, depth int) (feat int, bin uint8, gain float64, nodeCnts []uint32) {
	seg := b.idx[lo:hi]
	nT := float64(len(seg))
	baseScore := total * total / nT
	feat = -1

	// Pack the segment's residuals once so the scans below stream them
	// sequentially (same addends, same order).
	res := b.res[:len(seg)]
	for s, i := range seg {
		res[s] = b.residual[i]
	}

	if b.shareable() {
		// All-features fast path: one row-major pass over the segment fills
		// every feature's per-bin residual sums (and, when not inherited
		// from the parent, counts) at once — each (feature, bin) cell still
		// receives exactly the original addends in segment row order, so
		// the float sums are bit-identical to the per-feature gather scans.
		d, st := b.dims, b.stride
		arena := b.sumsArena
		for k := range arena {
			arena[k] = 0
		}
		rb := b.pb.rows
		if cnts != nil {
			nodeCnts = cnts
			for s, i := range seg {
				r := res[s]
				row := rb[i*d : i*d+d]
				for j, bv := range row {
					arena[j*st+int(bv)] += r
				}
			}
		} else {
			// Tally this node's counts into its slot so children can
			// derive theirs by subtraction (childCounts).
			nodeCnts = b.slot(depth, slotSelf)
			for k := range nodeCnts {
				nodeCnts[k] = 0
			}
			for s, i := range seg {
				r := res[s]
				row := rb[i*d : i*d+d]
				for j, bv := range row {
					k := j*st + int(bv)
					nodeCnts[k]++
					arena[k] += r
				}
			}
		}
		for j := 0; j < d; j++ {
			nb := len(b.m.thresholds[j]) + 1
			if nb < 2 {
				continue
			}
			sums := arena[j*st:]
			cj := nodeCnts[j*st:]
			cl, sl := 0, 0.0
			for k := 0; k < nb-1; k++ {
				cl += int(cj[k])
				sl += sums[k]
				cr := len(seg) - cl
				if cl < b.m.MinSamplesLeaf || cr < b.m.MinSamplesLeaf {
					continue
				}
				sr := total - sl
				g := sl*sl/float64(cl) + sr*sr/float64(cr) - baseScore
				if g > gain {
					gain = g
					feat = j
					bin = uint8(k)
				}
			}
		}
		return feat, bin, gain, nodeCnts
	}

	// Feature-subsampled path: per-node candidate draw, per-feature gather
	// scans (count histograms can't be shared across nodes here).
	cand := make([]int, b.nFeat)
	perm := b.rng.Perm(b.dims)
	copy(cand, perm[:b.nFeat])
	var sums [256]float64
	var localCnt [256]int
	for _, j := range cand {
		nb := len(b.m.thresholds[j]) + 1
		if nb < 2 {
			continue
		}
		col := b.pb.col(j)
		for k := 0; k < nb; k++ {
			sums[k] = 0
			localCnt[k] = 0
		}
		for s, i := range seg {
			bv := col[i]
			localCnt[bv]++
			sums[bv] += res[s]
		}
		cl, sl := 0, 0.0
		for k := 0; k < nb-1; k++ {
			cl += localCnt[k]
			sl += sums[k]
			cr := len(seg) - cl
			if cl < b.m.MinSamplesLeaf || cr < b.m.MinSamplesLeaf {
				continue
			}
			sr := total - sl
			g := sl*sl/float64(cl) + sr*sr/float64(cr) - baseScore
			if g > gain {
				gain = g
				feat = j
				bin = uint8(k)
			}
		}
	}
	return feat, bin, gain, nodeCnts
}

// childCounts derives the children's per-feature bin counts with exact
// integer histogram subtraction: the cheaper child is counted directly,
// its sibling obtained as node minus child. Only counts are derived this
// way — residual sums stay direct scans, because float subtraction would
// not reproduce the original accumulation order bit-for-bit.
func (b *builder) childCounts(lo, mid, hi, depth int, nodeCnts []uint32) (leftC, rightC []uint32) {
	if nodeCnts == nil || !b.shareable() {
		return nil, nil
	}
	nl, nr := mid-lo, hi-mid
	willSplit := func(sz int) bool { return depth+1 < b.m.MaxDepth && sz >= 2*b.m.MinSamplesLeaf }
	ls, rs := willSplit(nl), willSplit(nr)
	// A derivation costs ~3*stride histogram slots per feature (zero +
	// subtract) and saves the derived child's per-row count increments —
	// profitable only past this size.
	overhead := 3 * b.stride
	countInto := func(which, s, e int) []uint32 {
		c := b.slot(depth+1, which)
		for k := range c {
			c[k] = 0
		}
		d, st := b.dims, b.stride
		rb := b.pb.rows
		for _, i := range b.idx[s:e] {
			row := rb[i*d : i*d+d]
			for j, bv := range row {
				c[j*st+int(bv)]++
			}
		}
		return c
	}
	derive := func(which int, direct []uint32) []uint32 {
		c := b.slot(depth+1, which)
		for k := range c {
			c[k] = nodeCnts[k] - direct[k]
		}
		return c
	}
	switch {
	case ls && rs:
		// Derive the larger child, count the smaller directly (its own
		// scan then skips the increments, so the direct count is ~free).
		if nl <= nr {
			if nr > overhead {
				leftC = countInto(slotLeft, lo, mid)
				rightC = derive(slotRight, leftC)
			}
		} else if nl > overhead {
			rightC = countInto(slotRight, mid, hi)
			leftC = derive(slotLeft, rightC)
		}
	case ls:
		// Only one child splits: counting the sibling is pure overhead on
		// top of the subtraction, so the bar is higher.
		if nl > nr+overhead {
			rightC = countInto(slotRight, mid, hi)
			leftC = derive(slotLeft, rightC)
			rightC = nil
		}
	case rs:
		if nr > nl+overhead {
			leftC = countInto(slotLeft, lo, mid)
			rightC = derive(slotRight, leftC)
			leftC = nil
		}
	}
	return leftC, rightC
}

// predictBinned evaluates one tree on row i of the binned matrix.
func (t *tree) predictBinned(pb *Prebin, i int) float64 {
	nodes := t.nodes
	k := 0
	for {
		nd := &nodes[k]
		if nd.feature < 0 {
			return nd.value
		}
		if pb.rows[i*pb.d+int(nd.feature)] <= nd.bin {
			k = int(nd.left)
		} else {
			k = int(nd.right)
		}
	}
}

// buildForest concatenates every tree's node arena into one flat array
// with globalized child indices — the cache-friendly evaluator Predict
// and PredictBatchInto walk.
func (m *Model) buildForest() {
	total := 0
	for i := range m.trees {
		total += len(m.trees[i].nodes)
	}
	m.forest = make([]node, 0, total)
	m.roots = make([]int32, len(m.trees))
	for ti := range m.trees {
		off := int32(len(m.forest))
		m.roots[ti] = off
		for _, nd := range m.trees[ti].nodes {
			if nd.feature >= 0 {
				nd.left += off
				nd.right += off
			}
			m.forest = append(m.forest, nd)
		}
	}
}

// Predict evaluates the ensemble on raw (unbinned) features.
func (m *Model) Predict(x []float64) float64 {
	if m.forest != nil {
		return m.predictForest(x)
	}
	// Ensembles built outside Fit/UnmarshalJSON: walk the per-tree arenas.
	s := m.base
	for ti := range m.trees {
		nodes := m.trees[ti].nodes
		i := 0
		for {
			nd := &nodes[i]
			if nd.feature < 0 {
				s += nd.value
				break
			}
			if x[nd.feature] <= nd.thresh {
				i = int(nd.left)
			} else {
				i = int(nd.right)
			}
		}
	}
	return s
}

// predictForest walks the flattened forest; same trees, same order, same
// accumulation — just one contiguous array.
func (m *Model) predictForest(x []float64) float64 {
	s := m.base
	f := m.forest
	for _, root := range m.roots {
		i := root
		for {
			nd := &f[i]
			if nd.feature < 0 {
				s += nd.value
				break
			}
			if x[nd.feature] <= nd.thresh {
				i = nd.left
			} else {
				i = nd.right
			}
		}
	}
	return s
}

// PredictBatchInto writes the estimate for X[i] into out[i] without
// allocating (ml.BatchPredictor). Values are identical to Predict.
func (m *Model) PredictBatchInto(out []float64, X [][]float64) {
	if m.forest != nil {
		for i, x := range X {
			out[i] = m.predictForest(x)
		}
		return
	}
	for i, x := range X {
		out[i] = m.Predict(x)
	}
}

// FeatureImportance returns the per-feature split counts normalized to sum
// to 1 — the paper's importance measure ("the number of times that a
// feature is used as a split point", averaged over the ensemble).
func (m *Model) FeatureImportance() []float64 {
	out := make([]float64, len(m.splitCount))
	total := 0
	for _, c := range m.splitCount {
		total += c
	}
	if total == 0 {
		return out
	}
	for j, c := range m.splitCount {
		out[j] = float64(c) / float64(total)
	}
	return out
}

// NumSplits returns the raw split count per feature.
func (m *Model) NumSplits() []int {
	return append([]int(nil), m.splitCount...)
}
