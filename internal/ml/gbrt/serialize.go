package gbrt

import (
	"encoding/json"
	"fmt"
)

// nodeJSON is the wire form of one tree node.
type nodeJSON struct {
	F int     `json:"f"`           // split feature, -1 for leaves
	B uint8   `json:"b,omitempty"` // split bin
	T float64 `json:"t,omitempty"` // real threshold
	L int     `json:"l,omitempty"`
	R int     `json:"r,omitempty"`
	V float64 `json:"v,omitempty"` // leaf value
}

// modelJSON is the wire form of a trained ensemble.
type modelJSON struct {
	NumTrees       int          `json:"num_trees"`
	LearningRate   float64      `json:"learning_rate"`
	MaxDepth       int          `json:"max_depth"`
	MinSamplesLeaf int          `json:"min_samples_leaf"`
	Subsample      float64      `json:"subsample"`
	FeatureFrac    float64      `json:"feature_frac"`
	Bins           int          `json:"bins"`
	Seed           int64        `json:"seed"`
	Base           float64      `json:"base"`
	Trees          [][]nodeJSON `json:"trees"`
	Thresholds     [][]float64  `json:"thresholds"`
	SplitCount     []int        `json:"split_count"`
}

// MarshalJSON serializes the trained model, hyperparameters included, so a
// predictor can be persisted and reloaded without retraining.
func (m *Model) MarshalJSON() ([]byte, error) {
	out := modelJSON{
		NumTrees:       m.NumTrees,
		LearningRate:   m.LearningRate,
		MaxDepth:       m.MaxDepth,
		MinSamplesLeaf: m.MinSamplesLeaf,
		Subsample:      m.Subsample,
		FeatureFrac:    m.FeatureFrac,
		Bins:           m.Bins,
		Seed:           m.Seed,
		Base:           m.base,
		Thresholds:     m.thresholds,
		SplitCount:     m.splitCount,
	}
	for ti := range m.trees {
		t := &m.trees[ti]
		nodes := make([]nodeJSON, len(t.nodes))
		for i, nd := range t.nodes {
			nodes[i] = nodeJSON{F: int(nd.feature), B: nd.bin, T: nd.thresh, L: int(nd.left), R: int(nd.right), V: nd.value}
		}
		out.Trees = append(out.Trees, nodes)
	}
	return json.Marshal(out)
}

// UnmarshalJSON restores a trained model and rebuilds the flattened
// prediction forest.
func (m *Model) UnmarshalJSON(data []byte) error {
	var in modelJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("gbrt: %w", err)
	}
	m.NumTrees = in.NumTrees
	m.LearningRate = in.LearningRate
	m.MaxDepth = in.MaxDepth
	m.MinSamplesLeaf = in.MinSamplesLeaf
	m.Subsample = in.Subsample
	m.FeatureFrac = in.FeatureFrac
	m.Bins = in.Bins
	m.Seed = in.Seed
	m.base = in.Base
	m.thresholds = in.Thresholds
	m.splitCount = in.SplitCount
	m.trees = nil
	for ti, nodes := range in.Trees {
		var t tree
		for i, nd := range nodes {
			if nd.F >= 0 {
				if nd.L < 0 || nd.L >= len(nodes) || nd.R < 0 || nd.R >= len(nodes) {
					return fmt.Errorf("gbrt: tree %d node %d has dangling children", ti, i)
				}
			}
			t.nodes = append(t.nodes, node{
				feature: int32(nd.F), bin: nd.B, thresh: nd.T, left: int32(nd.L), right: int32(nd.R), value: nd.V,
			})
		}
		if len(t.nodes) == 0 {
			return fmt.Errorf("gbrt: tree %d is empty", ti)
		}
		m.trees = append(m.trees, t)
	}
	m.buildForest()
	return nil
}
