package gbrt

// Frozen reference implementation of the GBRT trainer, kept verbatim from
// before the flat fast path (row-major binned matrix, pointer nodes,
// append-based partition, per-node histogram scans) with ref* renames.
// The equivalence tests train both implementations on the same data with
// the same seeds and demand *byte-identical* ensembles and predictions:
// the fast path (column-major shared binning, value-node arenas, in-place
// stable partition, sibling count-histogram subtraction, flattened
// forest) is a pure layout/scheduling change, never a numeric one. Same
// pattern as internal/place/equiv_test.go and internal/route/equiv_test.go.

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

type refModel struct {
	NumTrees       int
	LearningRate   float64
	MaxDepth       int
	MinSamplesLeaf int
	Subsample      float64
	FeatureFrac    float64
	Bins           int
	Seed           int64

	base       float64
	trees      []*refTree
	thresholds [][]float64
	splitCount []int
}

type refNode struct {
	feature int
	bin     uint8
	thresh  float64
	left    int
	right   int
	value   float64
}

type refTree struct {
	nodes []*refNode
}

func (m *refModel) fit(X [][]float64, y []float64) error {
	n := len(X)
	d := len(X[0])
	if m.NumTrees <= 0 {
		m.NumTrees = 200
	}
	if m.LearningRate <= 0 {
		m.LearningRate = 0.1
	}
	if m.MaxDepth <= 0 {
		m.MaxDepth = 4
	}
	if m.MinSamplesLeaf <= 0 {
		m.MinSamplesLeaf = 5
	}
	if m.Subsample <= 0 || m.Subsample > 1 {
		m.Subsample = 1
	}
	if m.FeatureFrac <= 0 || m.FeatureFrac > 1 {
		m.FeatureFrac = 1
	}
	if m.Bins <= 1 || m.Bins > 256 {
		m.Bins = 64
	}
	rng := rand.New(rand.NewSource(m.Seed))

	binned, thresholds := m.binize(X, d)
	m.thresholds = thresholds
	m.splitCount = make([]int, d)

	m.base = 0
	for _, v := range y {
		m.base += v
	}
	m.base /= float64(n)

	pred := make([]float64, n)
	for i := range pred {
		pred[i] = m.base
	}
	residual := make([]float64, n)
	m.trees = m.trees[:0]

	rows := make([]int, n)
	features := make([]int, d)
	for j := range features {
		features[j] = j
	}
	nFeat := int(float64(d) * m.FeatureFrac)
	if nFeat < 1 {
		nFeat = 1
	}

	for t := 0; t < m.NumTrees; t++ {
		for i := range residual {
			residual[i] = y[i] - pred[i]
		}
		rows = rows[:0]
		if m.Subsample < 1 {
			for i := 0; i < n; i++ {
				if rng.Float64() < m.Subsample {
					rows = append(rows, i)
				}
			}
			if len(rows) < 2*m.MinSamplesLeaf {
				for i := 0; i < n; i++ {
					rows = append(rows[:0], i)
				}
			}
		} else {
			for i := 0; i < n; i++ {
				rows = append(rows, i)
			}
		}
		tr := &refTree{}
		b := &refBuilder{
			m: m, binned: binned, residual: residual, tree: tr,
			rng: rng, features: features, nFeat: nFeat, dims: d,
		}
		b.grow(rows, 0)
		m.trees = append(m.trees, tr)
		for i := 0; i < n; i++ {
			pred[i] += tr.predictBinned(binned[i])
		}
	}
	return nil
}

func (m *refModel) binize(X [][]float64, d int) ([][]uint8, [][]float64) {
	n := len(X)
	thresholds := make([][]float64, d)
	vals := make([]float64, n)
	for j := 0; j < d; j++ {
		for i := 0; i < n; i++ {
			vals[i] = X[i][j]
		}
		sort.Float64s(vals)
		var th []float64
		for b := 1; b < m.Bins; b++ {
			q := vals[b*(n-1)/m.Bins]
			if len(th) == 0 || q > th[len(th)-1] {
				th = append(th, q)
			}
		}
		thresholds[j] = th
	}
	binned := make([][]uint8, n)
	for i := 0; i < n; i++ {
		row := make([]uint8, d)
		for j := 0; j < d; j++ {
			row[j] = refBinOf(X[i][j], thresholds[j])
		}
		binned[i] = row
	}
	return binned, thresholds
}

func refBinOf(v float64, th []float64) uint8 {
	lo, hi := 0, len(th)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= th[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return uint8(lo)
}

type refBuilder struct {
	m        *refModel
	binned   [][]uint8
	residual []float64
	tree     *refTree
	rng      *rand.Rand
	features []int
	nFeat    int
	dims     int
}

func (b *refBuilder) grow(rows []int, depth int) int {
	sum := 0.0
	for _, i := range rows {
		sum += b.residual[i]
	}
	mean := sum / float64(len(rows))

	leaf := func() int {
		nd := &refNode{feature: -1, value: b.m.LearningRate * mean}
		b.tree.nodes = append(b.tree.nodes, nd)
		return len(b.tree.nodes) - 1
	}
	if depth >= b.m.MaxDepth || len(rows) < 2*b.m.MinSamplesLeaf {
		return leaf()
	}
	feat, bin, gain := b.bestSplit(rows, sum)
	if feat < 0 || gain <= 1e-12 {
		return leaf()
	}
	var left, right []int
	for _, i := range rows {
		if b.binned[i][feat] <= bin {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < b.m.MinSamplesLeaf || len(right) < b.m.MinSamplesLeaf {
		return leaf()
	}
	b.m.splitCount[feat]++
	th := b.m.thresholds[feat]
	thresh := 0.0
	if int(bin) < len(th) {
		thresh = th[bin]
	} else if len(th) > 0 {
		thresh = th[len(th)-1]
	}
	nd := &refNode{feature: feat, bin: bin, thresh: thresh}
	b.tree.nodes = append(b.tree.nodes, nd)
	idx := len(b.tree.nodes) - 1
	nd.left = b.grow(left, depth+1)
	nd.right = b.grow(right, depth+1)
	return idx
}

func (b *refBuilder) bestSplit(rows []int, total float64) (feat int, bin uint8, gain float64) {
	nT := float64(len(rows))
	baseScore := total * total / nT
	feat = -1

	cand := b.features
	if b.nFeat < b.dims {
		cand = make([]int, b.nFeat)
		perm := b.rng.Perm(b.dims)
		copy(cand, perm[:b.nFeat])
	}
	var cnt [256]int
	var sums [256]float64
	for _, j := range cand {
		nb := len(b.m.thresholds[j]) + 1
		if nb < 2 {
			continue
		}
		for k := 0; k < nb; k++ {
			cnt[k] = 0
			sums[k] = 0
		}
		for _, i := range rows {
			bv := b.binned[i][j]
			cnt[bv]++
			sums[bv] += b.residual[i]
		}
		cl, sl := 0, 0.0
		for k := 0; k < nb-1; k++ {
			cl += cnt[k]
			sl += sums[k]
			cr := len(rows) - cl
			if cl < b.m.MinSamplesLeaf || cr < b.m.MinSamplesLeaf {
				continue
			}
			sr := total - sl
			g := sl*sl/float64(cl) + sr*sr/float64(cr) - baseScore
			if g > gain {
				gain = g
				feat = j
				bin = uint8(k)
			}
		}
	}
	return feat, bin, gain
}

func (t *refTree) predictBinned(row []uint8) float64 {
	i := 0
	for {
		nd := t.nodes[i]
		if nd.feature < 0 {
			return nd.value
		}
		if row[nd.feature] <= nd.bin {
			i = nd.left
		} else {
			i = nd.right
		}
	}
}

func (m *refModel) predict(x []float64) float64 {
	s := m.base
	for _, t := range m.trees {
		i := 0
		for {
			nd := t.nodes[i]
			if nd.feature < 0 {
				s += nd.value
				break
			}
			if x[nd.feature] <= nd.thresh {
				i = nd.left
			} else {
				i = nd.right
			}
		}
	}
	return s
}

// equivData synthesizes a regression set with informative, duplicated and
// constant columns so trees exercise ties, single-bin features and deep
// splits.
func equivData(seed int64, n, d int) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		row := make([]float64, d)
		for j := range row {
			switch {
			case j == d-1:
				row[j] = 3.25 // constant column: one bin, never split
			case j%5 == 4:
				row[j] = row[j-1] // duplicated column
			case j%3 == 0:
				row[j] = float64(rng.Intn(8)) // heavy ties
			default:
				row[j] = rng.NormFloat64()
			}
		}
		X[i] = row
		y[i] = 2*row[0] + math.Sin(row[1]*3) + 0.5*row[2]*row[2] + 0.1*rng.NormFloat64()
	}
	return X, y
}

// equivConfigs covers the default path, stochastic row subsampling (rng
// draws + the degenerate-fallback path), feature subsampling (per-node
// rng.Perm, shared histograms disabled) and a deeper tree.
func equivConfigs() []Model {
	return []Model{
		{NumTrees: 12, LearningRate: 0.2, MaxDepth: 3, MinSamplesLeaf: 4, Subsample: 1, FeatureFrac: 1, Bins: 16},
		{NumTrees: 10, LearningRate: 0.1, MaxDepth: 4, MinSamplesLeaf: 5, Subsample: 0.7, FeatureFrac: 1, Bins: 32},
		{NumTrees: 8, LearningRate: 0.15, MaxDepth: 4, MinSamplesLeaf: 3, Subsample: 0.8, FeatureFrac: 0.5, Bins: 64},
		{NumTrees: 6, LearningRate: 0.3, MaxDepth: 6, MinSamplesLeaf: 2, Subsample: 0.02, FeatureFrac: 1, Bins: 8}, // forces the subsample fallback
	}
}

func refFrom(cfg Model, seed int64) *refModel {
	return &refModel{
		NumTrees: cfg.NumTrees, LearningRate: cfg.LearningRate, MaxDepth: cfg.MaxDepth,
		MinSamplesLeaf: cfg.MinSamplesLeaf, Subsample: cfg.Subsample, FeatureFrac: cfg.FeatureFrac,
		Bins: cfg.Bins, Seed: seed,
	}
}

func requireSameEnsemble(t *testing.T, ref *refModel, m *Model) {
	t.Helper()
	if math.Float64bits(ref.base) != math.Float64bits(m.base) {
		t.Fatalf("base: ref %v fast %v", ref.base, m.base)
	}
	if len(ref.trees) != len(m.trees) {
		t.Fatalf("tree count: ref %d fast %d", len(ref.trees), len(m.trees))
	}
	for ti := range ref.trees {
		rn, fn := ref.trees[ti].nodes, m.trees[ti].nodes
		if len(rn) != len(fn) {
			t.Fatalf("tree %d: ref %d nodes, fast %d", ti, len(rn), len(fn))
		}
		for ni := range rn {
			r, f := rn[ni], fn[ni]
			if r.feature != int(f.feature) || r.bin != f.bin || r.left != int(f.left) || r.right != int(f.right) ||
				math.Float64bits(r.thresh) != math.Float64bits(f.thresh) ||
				math.Float64bits(r.value) != math.Float64bits(f.value) {
				t.Fatalf("tree %d node %d: ref %+v fast %+v", ti, ni, *r, f)
			}
		}
	}
	if len(ref.splitCount) != len(m.splitCount) {
		t.Fatalf("splitCount len: ref %d fast %d", len(ref.splitCount), len(m.splitCount))
	}
	for j := range ref.splitCount {
		if ref.splitCount[j] != m.splitCount[j] {
			t.Fatalf("splitCount[%d]: ref %d fast %d", j, ref.splitCount[j], m.splitCount[j])
		}
	}
	for j := range ref.thresholds {
		if len(ref.thresholds[j]) != len(m.thresholds[j]) {
			t.Fatalf("thresholds[%d] len mismatch", j)
		}
		for k := range ref.thresholds[j] {
			if math.Float64bits(ref.thresholds[j][k]) != math.Float64bits(m.thresholds[j][k]) {
				t.Fatalf("thresholds[%d][%d] mismatch", j, k)
			}
		}
	}
}

// TestGBRTEquivalence is the tentpole gate: across seeds and
// configurations the fast path must produce byte-identical ensembles and
// predictions to the frozen reference.
func TestGBRTEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 17} {
		X, y := equivData(seed, 150, 11)
		probe, _ := equivData(seed+1000, 40, 11)
		for ci, cfg := range equivConfigs() {
			ref := refFrom(cfg, seed)
			if err := ref.fit(X, y); err != nil {
				t.Fatalf("seed %d cfg %d: ref fit: %v", seed, ci, err)
			}
			fast := cfg // copy
			fast.Seed = seed
			if err := fast.Fit(X, y); err != nil {
				t.Fatalf("seed %d cfg %d: fast fit: %v", seed, ci, err)
			}
			requireSameEnsemble(t, ref, &fast)
			for _, x := range probe {
				r, f := ref.predict(x), fast.Predict(x)
				if math.Float64bits(r) != math.Float64bits(f) {
					t.Fatalf("seed %d cfg %d: predict ref %v fast %v", seed, ci, r, f)
				}
			}
			out := make([]float64, len(probe))
			fast.PredictBatchInto(out, probe)
			for i, x := range probe {
				if math.Float64bits(out[i]) != math.Float64bits(ref.predict(x)) {
					t.Fatalf("seed %d cfg %d: batch predict row %d diverges", seed, ci, i)
				}
			}
		}
	}
}

// TestGBRTFitSharedEquivalence checks the grid-search fast path: training
// from a shared Prebin digest is byte-identical to a standalone Fit, and
// incompatible digests fall back safely.
func TestGBRTFitSharedEquivalence(t *testing.T) {
	for _, seed := range []int64{5, 6, 7} {
		X, y := equivData(seed, 120, 9)
		for ci, cfg := range equivConfigs() {
			plain := cfg
			plain.Seed = seed
			if err := plain.Fit(X, y); err != nil {
				t.Fatalf("fit: %v", err)
			}
			shared := cfg
			shared.Seed = seed
			digest := shared.PrepareShared(X)
			if err := shared.FitShared(digest, X, y); err != nil {
				t.Fatalf("fit shared: %v", err)
			}
			ref := refFrom(cfg, seed)
			if err := ref.fit(X, y); err != nil {
				t.Fatalf("ref fit: %v", err)
			}
			requireSameEnsemble(t, ref, &shared)
			_ = plain

			// Digest from different rows: must fall back to Fit and still
			// match the reference.
			otherX, _ := equivData(seed+99, 80, 9)
			fb := cfg
			fb.Seed = seed
			if err := fb.FitShared(fb.PrepareShared(otherX), X, y); err != nil {
				t.Fatalf("fallback fit shared: %v", err)
			}
			requireSameEnsemble(t, ref, &fb)
			if ci == 0 {
				// nil digest falls back too.
				nd := cfg
				nd.Seed = seed
				if err := nd.FitShared(nil, X, y); err != nil {
					t.Fatalf("nil-digest fit shared: %v", err)
				}
				requireSameEnsemble(t, ref, &nd)
			}
		}
	}
}
