package gbrt

// Old-vs-new benchmarks for the GBRT fast path. The *Ref benchmarks drive
// the frozen reference implementation from equiv_test.go (row-major
// binning per fit, pointer nodes, per-node full histogram scans, per-cell
// Take copies in the grid search); their non-Ref counterparts drive the
// shipped fast path. scripts/bench.sh pairs them up in BENCH_PR4.json.

import (
	"math/rand"
	"testing"

	"repro/internal/ml"
)

func benchData(n, d int) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(77))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		X[i] = row
		y[i] = 2*row[0] - row[1]*row[1] + 0.5*row[2] + 0.1*rng.NormFloat64()
	}
	return X, y
}

var benchCfg = Model{NumTrees: 30, LearningRate: 0.1, MaxDepth: 4, MinSamplesLeaf: 5, Subsample: 1, Bins: 32, Seed: 1}

func BenchmarkFitRef(b *testing.B) {
	X, y := benchData(400, 40)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := refFrom(benchCfg, 1)
		if err := m.fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFit(b *testing.B) {
	X, y := benchData(400, 40)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := benchCfg
		if err := m.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredictBatchRef(b *testing.B) {
	X, y := benchData(400, 40)
	m := refFrom(benchCfg, 1)
	if err := m.fit(X, y); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, x := range X {
			_ = m.predict(x)
		}
	}
}

func BenchmarkPredictBatchInto(b *testing.B) {
	X, y := benchData(400, 40)
	m := benchCfg
	if err := m.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	out := make([]float64, len(X))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PredictBatchInto(out, X)
	}
}

// refGridSearchCV replicates the pre-fast-path grid search over the
// frozen reference model: per-cell Take copies and a full fit (its own
// binning pass) for every (candidate, fold) cell.
func refGridSearchCV(grid ml.Grid, X [][]float64, y []float64, k int, rng *rand.Rand) float64 {
	folds := ml.KFold(len(X), k, rng)
	cands := grid.Enumerate()
	best := -1.0
	for _, p := range cands {
		score := 0.0
		for _, fold := range folds {
			trX, trY := ml.Take(X, y, fold.Train)
			teX, teY := ml.Take(X, y, fold.Test)
			m := refFrom(Model{
				NumTrees: int(p["trees"]), LearningRate: p["lr"], MaxDepth: int(p["depth"]),
				MinSamplesLeaf: 5, Subsample: 1, Bins: 32,
			}, 1)
			if err := m.fit(trX, trY); err != nil {
				panic(err)
			}
			pred := make([]float64, len(teX))
			for i, x := range teX {
				pred[i] = m.predict(x)
			}
			score += ml.MAE(teY, pred)
		}
		score /= float64(len(folds))
		if best < 0 || score < best {
			best = score
		}
	}
	return best
}

var benchGrid = ml.Grid{"trees": {10, 20}, "depth": {3, 4}, "lr": {0.05, 0.1}}

// The grid-search pair uses a feature dimension in the ballpark of the
// paper's HLS feature vectors (hundreds of columns), where per-cell
// re-binning is a large share of the reference's cost.
func BenchmarkGridSearchCVRef(b *testing.B) {
	X, y := benchData(300, 150)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = refGridSearchCV(benchGrid, X, y, 3, rand.New(rand.NewSource(9)))
	}
}

func BenchmarkGridSearchCV(b *testing.B) {
	X, y := benchData(300, 150)
	factory := func(p ml.Params) ml.Regressor {
		return &Model{
			NumTrees: int(p["trees"]), LearningRate: p["lr"], MaxDepth: int(p["depth"]),
			MinSamplesLeaf: 5, Subsample: 1, Bins: 32, Seed: 1,
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ml.GridSearchCVWorkers(factory, benchGrid, X, y, 3, rand.New(rand.NewSource(9)), 1); err != nil {
			b.Fatal(err)
		}
	}
}
