package gbrt

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/ml"
)

// stepData builds a piecewise-constant target over one informative feature
// plus noise features — trees should nail it, linear models cannot.
func stepData(n, d int, rng *rand.Rand) ([][]float64, []float64) {
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = make([]float64, d)
		for j := range X[i] {
			X[i][j] = rng.Float64()
		}
		switch {
		case X[i][0] < 0.3:
			y[i] = 10
		case X[i][0] < 0.7:
			y[i] = 50
		default:
			y[i] = 90
		}
	}
	return X, y
}

func TestGBRTFitsStepFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	X, y := stepData(500, 5, rng)
	m := New(100, 0.1, 1)
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if mae := ml.MAE(y, ml.PredictBatch(m, X)); mae > 2 {
		t.Errorf("step-function MAE = %v", mae)
	}
}

func TestGBRTImportanceFindsSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	X, y := stepData(500, 8, rng)
	m := New(60, 0.1, 1)
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	imp := m.FeatureImportance()
	total := 0.0
	for _, v := range imp {
		total += v
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("importance sums to %v", total)
	}
	for j := 1; j < len(imp); j++ {
		if imp[j] >= imp[0] {
			t.Errorf("noise feature %d importance %v >= signal feature %v", j, imp[j], imp[0])
		}
	}
	if imp[0] < 0.5 {
		t.Errorf("signal feature importance = %v, want dominant", imp[0])
	}
	splits := m.NumSplits()
	if splits[0] == 0 {
		t.Error("signal feature never used as split point")
	}
}

func TestGBRTMoreTreesFitBetter(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	X, y := stepData(400, 4, rng)
	few := New(5, 0.1, 1)
	many := New(80, 0.1, 1)
	if err := few.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := many.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	maeFew := ml.MAE(y, ml.PredictBatch(few, X))
	maeMany := ml.MAE(y, ml.PredictBatch(many, X))
	if maeMany >= maeFew {
		t.Errorf("80 trees (%v) no better than 5 trees (%v)", maeMany, maeFew)
	}
}

func TestGBRTDeterministicPerSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	X, y := stepData(200, 4, rng)
	m1 := New(20, 0.1, 7)
	m2 := New(20, 0.1, 7)
	if err := m1.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := m2.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if m1.Predict(X[i]) != m2.Predict(X[i]) {
			t.Fatal("same seed produced different ensembles")
		}
	}
}

func TestGBRTConstantTarget(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}, {9}, {10}}
	y := make([]float64, 10)
	for i := range y {
		y[i] = 42
	}
	m := New(10, 0.1, 1)
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{5}); math.Abs(got-42) > 1e-9 {
		t.Errorf("constant target predicted as %v", got)
	}
	for _, c := range m.NumSplits() {
		if c != 0 {
			t.Error("constant target produced splits")
		}
	}
}

func TestGBRTMinSamplesLeafRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	X, y := stepData(100, 3, rng)
	m := New(10, 0.1, 1)
	m.MinSamplesLeaf = 40 // only very coarse splits possible
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	// With 100 rows and min leaf 40, each tree can split at most once.
	for _, tr := range m.trees {
		internal := 0
		for _, nd := range tr.nodes {
			if nd.feature >= 0 {
				internal++
			}
		}
		if internal > 1 {
			t.Fatalf("tree has %d splits despite MinSamplesLeaf=40", internal)
		}
	}
}

func TestGBRTErrors(t *testing.T) {
	m := New(5, 0.1, 1)
	if err := m.Fit(nil, nil); err == nil {
		t.Error("empty fit accepted")
	}
	if err := m.Fit([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("mismatched fit accepted")
	}
}

func TestBinOf(t *testing.T) {
	th := []float64{1, 2, 3}
	cases := map[float64]uint8{0.5: 0, 1: 0, 1.5: 1, 2: 1, 2.5: 2, 3: 2, 99: 3}
	for v, want := range cases {
		if got := binOf(v, th); got != want {
			t.Errorf("binOf(%v) = %d, want %d", v, got, want)
		}
	}
}

func TestGBRTSubsampleStillLearns(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	X, y := stepData(400, 4, rng)
	m := New(80, 0.1, 9)
	m.Subsample = 0.5
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if mae := ml.MAE(y, ml.PredictBatch(m, X)); mae > 4 {
		t.Errorf("stochastic GBM MAE = %v", mae)
	}
}
