package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMAE(t *testing.T) {
	y := []float64{1, 2, 3}
	p := []float64{2, 2, 1}
	if got := MAE(y, p); got != 1 {
		t.Errorf("MAE = %v, want 1", got)
	}
	if MAE(nil, nil) != 0 {
		t.Error("empty MAE != 0")
	}
}

func TestMedAE(t *testing.T) {
	y := []float64{0, 0, 0, 0}
	p := []float64{1, 2, 3, 100}
	if got := MedAE(y, p); got != 2.5 {
		t.Errorf("MedAE = %v, want 2.5 (robust to the outlier)", got)
	}
	yo := []float64{0, 0, 0}
	po := []float64{1, 5, 9}
	if got := MedAE(yo, po); got != 5 {
		t.Errorf("odd MedAE = %v, want 5", got)
	}
}

func TestMetricsPanicOnMismatch(t *testing.T) {
	for name, fn := range map[string]func(){
		"MAE":   func() { MAE([]float64{1}, []float64{1, 2}) },
		"MedAE": func() { MedAE([]float64{1}, []float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic on length mismatch", name)
				}
			}()
			fn()
		}()
	}
}

func TestRMSEAndR2(t *testing.T) {
	y := []float64{1, 2, 3, 4}
	if got := RMSE(y, y); got != 0 {
		t.Errorf("RMSE(self) = %v", got)
	}
	if got := R2(y, y); got != 1 {
		t.Errorf("R2(self) = %v", got)
	}
	mean := []float64{2.5, 2.5, 2.5, 2.5}
	if got := R2(y, mean); math.Abs(got) > 1e-12 {
		t.Errorf("R2(mean) = %v, want 0", got)
	}
}

// Property: MedAE never exceeds the max error and MAE sits between min and
// max error.
func TestMetricBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		y := make([]float64, n)
		p := make([]float64, n)
		minE, maxE := math.Inf(1), math.Inf(-1)
		for i := range y {
			y[i] = rng.NormFloat64() * 10
			p[i] = rng.NormFloat64() * 10
			e := math.Abs(y[i] - p[i])
			minE = math.Min(minE, e)
			maxE = math.Max(maxE, e)
		}
		mae, med := MAE(y, p), MedAE(y, p)
		return mae >= minE-1e-12 && mae <= maxE+1e-12 && med <= maxE+1e-12 && med >= minE-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestScaler(t *testing.T) {
	X := [][]float64{{1, 100}, {2, 200}, {3, 300}}
	s := FitScaler(X)
	out := s.Transform(X)
	for j := 0; j < 2; j++ {
		mean, va := 0.0, 0.0
		for i := range out {
			mean += out[i][j]
		}
		mean /= 3
		for i := range out {
			va += (out[i][j] - mean) * (out[i][j] - mean)
		}
		va /= 3
		if math.Abs(mean) > 1e-12 || math.Abs(va-1) > 1e-9 {
			t.Errorf("col %d standardized to mean %v var %v", j, mean, va)
		}
	}
	// Constant columns keep std=1 to avoid division blowups.
	c := FitScaler([][]float64{{5}, {5}})
	if c.Std[0] != 1 {
		t.Errorf("constant column std = %v", c.Std[0])
	}
	// Empty scaler copies rows untouched.
	e := FitScaler(nil)
	row := e.TransformRow([]float64{1, 2})
	if row[0] != 1 || row[1] != 2 {
		t.Error("empty scaler mangled the row")
	}
}

func TestTrainTestSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sp := TrainTestSplit(100, 0.2, rng)
	if len(sp.Test) != 20 || len(sp.Train) != 80 {
		t.Fatalf("split sizes %d/%d", len(sp.Train), len(sp.Test))
	}
	seen := make(map[int]bool)
	for _, i := range append(append([]int{}, sp.Train...), sp.Test...) {
		if seen[i] {
			t.Fatalf("index %d appears twice", i)
		}
		seen[i] = true
	}
	if len(seen) != 100 {
		t.Fatal("split does not cover all indices")
	}
	// Tiny datasets still carve out one test sample.
	sp2 := TrainTestSplit(3, 0.1, rng)
	if len(sp2.Test) != 1 {
		t.Errorf("tiny split test size = %d", len(sp2.Test))
	}
}

func TestKFold(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	folds := KFold(50, 10, rng)
	if len(folds) != 10 {
		t.Fatalf("folds = %d", len(folds))
	}
	covered := make(map[int]int)
	for _, f := range folds {
		if len(f.Test)+len(f.Train) != 50 {
			t.Fatal("fold does not partition")
		}
		for _, i := range f.Test {
			covered[i]++
		}
	}
	for i := 0; i < 50; i++ {
		if covered[i] != 1 {
			t.Fatalf("index %d in %d test folds, want exactly 1", i, covered[i])
		}
	}
	// k > n clamps.
	if got := len(KFold(3, 10, rng)); got != 3 {
		t.Errorf("KFold(3,10) gave %d folds", got)
	}
}

func TestTake(t *testing.T) {
	X := [][]float64{{0}, {1}, {2}}
	y := []float64{10, 11, 12}
	xs, ys := Take(X, y, []int{2, 0})
	if xs[0][0] != 2 || ys[0] != 12 || xs[1][0] != 0 || ys[1] != 10 {
		t.Error("Take gathered wrong rows")
	}
}

func TestPredictBatch(t *testing.T) {
	m := constModel(7)
	out := PredictBatch(m, [][]float64{{1}, {2}})
	if len(out) != 2 || out[0] != 7 || out[1] != 7 {
		t.Error("PredictBatch wrong")
	}
}

type constModel float64

func (c constModel) Fit(X [][]float64, y []float64) error { return nil }
func (c constModel) Predict(x []float64) float64          { return float64(c) }

func TestSpearman(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if got := Spearman(a, a); math.Abs(got-1) > 1e-12 {
		t.Errorf("self correlation = %v", got)
	}
	rev := []float64{5, 4, 3, 2, 1}
	if got := Spearman(a, rev); math.Abs(got+1) > 1e-12 {
		t.Errorf("reversed correlation = %v", got)
	}
	// Monotone transform leaves rank correlation at 1.
	sq := []float64{1, 4, 9, 16, 25}
	if got := Spearman(a, sq); math.Abs(got-1) > 1e-12 {
		t.Errorf("monotone transform correlation = %v", got)
	}
	// Ties average: {1,1,2} vs {1,2,2} still positively correlated.
	if got := Spearman([]float64{1, 1, 2}, []float64{1, 2, 2}); got <= 0 {
		t.Errorf("tied correlation = %v", got)
	}
	if Spearman(a, a[:3]) != 0 {
		t.Error("length mismatch should return 0")
	}
	if Spearman([]float64{1, 1}, []float64{2, 2}) != 0 {
		t.Error("constant input should return 0")
	}
}
