package ml_test

// End-to-end equivalence gates for the ml fast path: the rebuilt grid
// search (flat matrix, per-fold shared digests, pooled scoring buffers)
// must select the same winner with a bit-identical score as the frozen
// per-cell reference, and the metric/scaler fast paths must reproduce
// their naive forms exactly. Model-level byte-identity is proven in the
// per-package equiv tests (lasso, ann, gbrt).

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/ml"
	"repro/internal/ml/gbrt"
	"repro/internal/ml/lasso"
)

// refGridSearchCV is the frozen pre-fast-path grid search: per-cell Take
// copies, plain Fit, allocating PredictBatch — sequential, in the same
// cell order the parallel reduce uses.
func refGridSearchCV(factory ml.Factory, grid ml.Grid, X [][]float64, y []float64, k int, rng *rand.Rand) (ml.SearchResult, error) {
	folds := ml.KFold(len(X), k, rng)
	cands := grid.Enumerate()
	nf := len(folds)
	maes := make([]float64, len(cands)*nf)
	for i := range maes {
		p, fold := cands[i/nf], folds[i%nf]
		trX, trY := ml.Take(X, y, fold.Train)
		teX, teY := ml.Take(X, y, fold.Test)
		m := factory(p)
		if err := m.Fit(trX, trY); err != nil {
			return ml.SearchResult{}, err
		}
		maes[i] = ml.MAE(teY, ml.PredictBatch(m, teX))
	}
	res := ml.SearchResult{BestScore: -1}
	for ci, p := range cands {
		score := 0.0
		for fi := 0; fi < nf; fi++ {
			score += maes[ci*nf+fi]
		}
		score /= float64(nf)
		res.Evaluated++
		if res.BestScore < 0 || score < res.BestScore {
			res.BestScore = score
			res.Best = p
		}
	}
	return res, nil
}

func searchEquivData(seed int64, n, d int) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		X[i] = row
		y[i] = 2*row[0] - row[1]*row[1] + 0.1*rng.NormFloat64()
	}
	return X, y
}

// TestGridSearchEquivalenceGBRT drives the SharedTrainer path (per-fold
// shared binning + FitShared) against the frozen reference across seeds
// and worker counts.
func TestGridSearchEquivalenceGBRT(t *testing.T) {
	factory := func(p ml.Params) ml.Regressor {
		return &gbrt.Model{
			NumTrees:       int(p["trees"]),
			LearningRate:   p["lr"],
			MaxDepth:       int(p["depth"]),
			MinSamplesLeaf: 3,
			Subsample:      0.8,
			Bins:           16,
			Seed:           42,
		}
	}
	grid := ml.Grid{"trees": {4, 8}, "lr": {0.1, 0.3}, "depth": {2, 3}}
	for _, seed := range []int64{1, 2, 3} {
		X, y := searchEquivData(seed, 90, 7)
		want, err := refGridSearchCV(factory, grid, X, y, 3, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatalf("ref search: %v", err)
		}
		for _, workers := range []int{1, 4} {
			got, err := ml.GridSearchCVWorkers(factory, grid, X, y, 3, rand.New(rand.NewSource(seed)), workers)
			if err != nil {
				t.Fatalf("fast search: %v", err)
			}
			if math.Float64bits(got.BestScore) != math.Float64bits(want.BestScore) {
				t.Fatalf("seed %d workers %d: score ref %v fast %v", seed, workers, want.BestScore, got.BestScore)
			}
			if got.Evaluated != want.Evaluated || len(got.Best) != len(want.Best) {
				t.Fatalf("seed %d workers %d: result shape ref %+v fast %+v", seed, workers, want, got)
			}
			for k, v := range want.Best {
				if gv, ok := got.Best[k]; !ok || math.Float64bits(gv) != math.Float64bits(v) {
					t.Fatalf("seed %d workers %d: best[%q] ref %v fast %v", seed, workers, k, v, got.Best[k])
				}
			}
		}
	}
}

// TestGridSearchEquivalenceLasso covers the non-SharedTrainer path (plain
// Fit over fold views).
func TestGridSearchEquivalenceLasso(t *testing.T) {
	factory := func(p ml.Params) ml.Regressor { return lasso.New(p["alpha"]) }
	grid := ml.Grid{"alpha": {0.001, 0.01, 0.1}}
	for _, seed := range []int64{4, 5, 6} {
		X, y := searchEquivData(seed, 70, 5)
		want, err := refGridSearchCV(factory, grid, X, y, 4, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatalf("ref search: %v", err)
		}
		got, err := ml.GridSearchCV(factory, grid, X, y, 4, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatalf("fast search: %v", err)
		}
		if math.Float64bits(got.BestScore) != math.Float64bits(want.BestScore) {
			t.Fatalf("seed %d: score ref %v fast %v", seed, want.BestScore, got.BestScore)
		}
		for k, v := range want.Best {
			if gv, ok := got.Best[k]; !ok || math.Float64bits(gv) != math.Float64bits(v) {
				t.Fatalf("seed %d: best[%q] ref %v fast %v", seed, k, v, got.Best[k])
			}
		}
	}
}

// TestMedAEEquivalence pins the quickselect MedAE to the sort-based
// definition across many random shapes, including ties and even/odd
// lengths.
func TestMedAEEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(40)
		y := make([]float64, n)
		pred := make([]float64, n)
		for i := range y {
			y[i] = rng.NormFloat64()
			if rng.Intn(3) == 0 {
				pred[i] = y[i] // exact ties at zero error
			} else {
				pred[i] = rng.NormFloat64()
			}
		}
		errs := make([]float64, n)
		for i := range y {
			errs[i] = math.Abs(y[i] - pred[i])
		}
		sort.Float64s(errs)
		var want float64
		if n%2 == 1 {
			want = errs[n/2]
		} else {
			want = (errs[n/2-1] + errs[n/2]) / 2
		}
		if got := ml.MedAE(y, pred); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("trial %d (n=%d): MedAE %v want %v", trial, n, got, want)
		}
	}
}

// TestScalerIntoEquivalence pins the Into variants to Transform.
func TestScalerIntoEquivalence(t *testing.T) {
	X, _ := searchEquivData(8, 40, 6)
	s := ml.FitScaler(X)
	want := s.Transform(X)

	var m ml.Matrix
	s.TransformRowsInto(&m, X)
	if m.Rows != len(X) || m.Cols != 6 {
		t.Fatalf("TransformRowsInto shape %dx%d", m.Rows, m.Cols)
	}
	dst := make([]float64, 6)
	for i, row := range X {
		s.TransformRowInto(dst, row)
		for j := range dst {
			if math.Float64bits(dst[j]) != math.Float64bits(want[i][j]) {
				t.Fatalf("TransformRowInto[%d][%d] diverges", i, j)
			}
			if math.Float64bits(m.Row(i)[j]) != math.Float64bits(want[i][j]) {
				t.Fatalf("TransformRowsInto[%d][%d] diverges", i, j)
			}
		}
	}
	// Backing-array reuse keeps values correct after a reshape.
	s.TransformRowsInto(&m, X[:10])
	for i := 0; i < 10; i++ {
		for j := 0; j < 6; j++ {
			if math.Float64bits(m.Row(i)[j]) != math.Float64bits(want[i][j]) {
				t.Fatalf("reused TransformRowsInto[%d][%d] diverges", i, j)
			}
		}
	}
}
