package ml_test

// Steady-state allocation guards for the serving fast path: once pools
// and model state are warm, batch prediction, metric evaluation and row
// standardization must not allocate at all.

import (
	"math/rand"
	"testing"

	"repro/internal/ml"
	"repro/internal/ml/ann"
	"repro/internal/ml/gbrt"
	"repro/internal/ml/lasso"
)

func allocFixture(t *testing.T) ([][]float64, []float64, [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	n, d := 120, 8
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		X[i] = row
		y[i] = row[0] - 0.5*row[1] + 0.1*rng.NormFloat64()
	}
	return X, y, X[:40]
}

func requireZeroAllocs(t *testing.T, name string, fn func()) {
	t.Helper()
	if raceEnabled {
		t.Skip("alloc counts are unstable under -race: sync.Pool randomly drops Puts")
	}
	fn() // warm pools and lazily-grown scratch
	if avg := testing.AllocsPerRun(50, fn); avg != 0 {
		t.Errorf("%s: %v allocs/op in steady state, want 0", name, avg)
	}
}

func TestPredictBatchIntoZeroAlloc(t *testing.T) {
	X, y, probe := allocFixture(t)
	out := make([]float64, len(probe))

	gm := &gbrt.Model{NumTrees: 10, LearningRate: 0.2, MaxDepth: 3, MinSamplesLeaf: 4, Subsample: 1, Bins: 16}
	if err := gm.Fit(X, y); err != nil {
		t.Fatalf("gbrt fit: %v", err)
	}
	requireZeroAllocs(t, "gbrt.PredictBatchInto", func() { gm.PredictBatchInto(out, probe) })

	lm := lasso.New(0.01)
	if err := lm.Fit(X, y); err != nil {
		t.Fatalf("lasso fit: %v", err)
	}
	requireZeroAllocs(t, "lasso.PredictBatchInto", func() { lm.PredictBatchInto(out, probe) })

	am := &ann.Model{Hidden: []int{8}, Epochs: 2, BatchSize: 32, LR: 1e-3}
	if err := am.Fit(X, y); err != nil {
		t.Fatalf("ann fit: %v", err)
	}
	requireZeroAllocs(t, "ann.PredictBatchInto", func() { am.PredictBatchInto(out, probe) })

	// The generic dispatcher adds nothing on top of the models' paths.
	requireZeroAllocs(t, "ml.PredictBatchInto", func() { ml.PredictBatchInto(gm, probe, out) })
}

func TestMetricAndScalerZeroAlloc(t *testing.T) {
	X, y, _ := allocFixture(t)
	pred := make([]float64, len(y))
	for i := range pred {
		pred[i] = y[i] * 1.01
	}
	requireZeroAllocs(t, "ml.MedAE", func() { ml.MedAE(y, pred) })
	requireZeroAllocs(t, "ml.MAE", func() { ml.MAE(y, pred) })

	s := ml.FitScaler(X)
	dst := make([]float64, len(X[0]))
	requireZeroAllocs(t, "Scaler.TransformRowInto", func() { s.TransformRowInto(dst, X[0]) })

	var m ml.Matrix
	s.TransformRowsInto(&m, X) // allocate once
	requireZeroAllocs(t, "Scaler.TransformRowsInto", func() { s.TransformRowsInto(&m, X) })
}

func TestMatrixReuseZeroAlloc(t *testing.T) {
	X, y, _ := allocFixture(t)
	full := ml.MatrixFromRows(X)
	idx := make([]int, 60)
	for i := range idx {
		idx[i] = i * 2
	}
	var gx ml.Matrix
	gy := make([]float64, 0, len(idx))
	gx.Gather(full, idx) // size the backing array
	requireZeroAllocs(t, "Matrix.Gather", func() { gx.Gather(full, idx) })
	requireZeroAllocs(t, "GatherVec", func() { gy = ml.GatherVec(gy, y, idx) })
}
