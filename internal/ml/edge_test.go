package ml

// Edge-case pins for the metric and splitting helpers the fast path
// reworked or now leans on harder: tie handling in Spearman's average
// ranks, R2 on a zero-variance target, and KFold's remainder distribution
// when k does not divide n.

import (
	"math"
	"math/rand"
	"testing"
)

// TestSpearmanTiedRanks checks the average-rank convention exactly: tied
// groups share the mean of the ranks they span, so a strictly inverse
// relationship through tied middles is still perfect anticorrelation.
func TestSpearmanTiedRanks(t *testing.T) {
	a := []float64{1, 2, 2, 3}
	b := []float64{3, 2, 2, 1}
	// ranks(a) = {1, 2.5, 2.5, 4}, ranks(b) = {4, 2.5, 2.5, 1}: rho = -1.
	if got := Spearman(a, b); math.Abs(got+1) > 1e-12 {
		t.Errorf("inverse with tied middle: rho = %v, want -1", got)
	}
	// A fully tied vector has zero rank variance: defined as 0 here.
	if got := Spearman([]float64{5, 5, 5}, []float64{1, 2, 3}); got != 0 {
		t.Errorf("all-tied input: rho = %v, want 0", got)
	}
	// Tie groups at different positions, hand-computed: a ranks
	// {1.5, 1.5, 3.5, 3.5}, b ranks {1, 2.5, 2.5, 4}.
	a = []float64{1, 1, 2, 2}
	b = []float64{10, 20, 20, 30}
	ra := []float64{1.5, 1.5, 3.5, 3.5}
	rb := []float64{1, 2.5, 2.5, 4}
	var cov, va, vb float64
	for i := range ra {
		da, db := ra[i]-2.5, rb[i]-2.5
		cov += da * db
		va += da * da
		vb += db * db
	}
	want := cov / math.Sqrt(va*vb)
	if got := Spearman(a, b); math.Abs(got-want) > 1e-12 {
		t.Errorf("tied groups: rho = %v, want %v", got, want)
	}
}

// TestR2ZeroVariance pins the degenerate-target convention: a constant y
// has no variance to explain, and R2 reports 0 rather than dividing by
// zero — regardless of how wrong the predictions are.
func TestR2ZeroVariance(t *testing.T) {
	y := []float64{4, 4, 4, 4}
	if got := R2(y, []float64{4, 4, 4, 4}); got != 0 {
		t.Errorf("R2(const, exact) = %v, want 0", got)
	}
	if got := R2(y, []float64{0, 1, 2, 3}); got != 0 {
		t.Errorf("R2(const, wrong) = %v, want 0", got)
	}
	if got := R2(nil, nil); got != 0 {
		t.Errorf("R2(empty) = %v, want 0", got)
	}
}

// TestKFoldRemainderDistribution checks fold sizing when k does not divide
// n: every index appears in exactly one test fold, and the lo = f*n/k
// boundaries spread the remainder so fold sizes never differ by more than
// one.
func TestKFoldRemainderDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct{ n, k int }{{53, 10}, {7, 3}, {11, 4}, {100, 7}} {
		folds := KFold(tc.n, tc.k, rng)
		if len(folds) != tc.k {
			t.Fatalf("KFold(%d,%d): %d folds", tc.n, tc.k, len(folds))
		}
		covered := make([]int, tc.n)
		minSz, maxSz := tc.n, 0
		total := 0
		for _, f := range folds {
			sz := len(f.Test)
			total += sz
			if sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
			if len(f.Train)+sz != tc.n {
				t.Fatalf("KFold(%d,%d): fold does not partition", tc.n, tc.k)
			}
			for _, i := range f.Test {
				covered[i]++
			}
		}
		if total != tc.n {
			t.Fatalf("KFold(%d,%d): test folds cover %d indices", tc.n, tc.k, total)
		}
		if maxSz-minSz > 1 {
			t.Fatalf("KFold(%d,%d): fold sizes range %d..%d, want spread <= 1", tc.n, tc.k, minSz, maxSz)
		}
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("KFold(%d,%d): index %d in %d test folds", tc.n, tc.k, i, c)
			}
		}
	}
}
