package ann

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/ml"
)

func TestANNFitsLinearFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 300
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		y[i] = 2*X[i][0] - X[i][1] + 0.5
	}
	m := New([]int{16}, 1)
	m.Epochs = 120
	m.LR = 5e-3
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if mae := ml.MAE(y, ml.PredictBatch(m, X)); mae > 0.15 {
		t.Errorf("linear fit MAE = %v", mae)
	}
}

func TestANNFitsNonlinearFunction(t *testing.T) {
	// y = |x| is unreachable for a purely linear model but easy for one
	// hidden ReLU layer.
	rng := rand.New(rand.NewSource(2))
	n := 400
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{rng.NormFloat64() * 2}
		y[i] = math.Abs(X[i][0])
	}
	m := New([]int{16, 8}, 3)
	m.Epochs = 200
	m.LR = 5e-3
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	mae := ml.MAE(y, ml.PredictBatch(m, X))
	if mae > 0.2 {
		t.Errorf("nonlinear fit MAE = %v", mae)
	}
	// Linear lower bound: best linear fit of |x| over symmetric data has
	// MAE around E|x|-ish; the network must beat 0.5 comfortably.
	if mae > 0.5 {
		t.Errorf("network failed to beat a linear model on |x|: MAE %v", mae)
	}
}

func TestANNDeterministicPerSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	X := make([][]float64, 50)
	y := make([]float64, 50)
	for i := range X {
		X[i] = []float64{rng.Float64()}
		y[i] = X[i][0]
	}
	m1 := New([]int{8}, 42)
	m2 := New([]int{8}, 42)
	m1.Epochs, m2.Epochs = 10, 10
	if err := m1.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := m2.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for i := range X {
		if m1.Predict(X[i]) != m2.Predict(X[i]) {
			t.Fatal("same seed produced different models")
		}
	}
	m3 := New([]int{8}, 43)
	m3.Epochs = 10
	if err := m3.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range X {
		if m1.Predict(X[i]) != m3.Predict(X[i]) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical models")
	}
}

func TestANNErrors(t *testing.T) {
	m := New([]int{4}, 1)
	if err := m.Fit(nil, nil); err == nil {
		t.Error("empty fit accepted")
	}
	if err := m.Fit([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("mismatched fit accepted")
	}
}

func TestANNPredictBeforeFit(t *testing.T) {
	m := New([]int{4}, 1)
	if got := m.Predict([]float64{1}); got != 0 {
		t.Errorf("unfitted Predict = %v, want 0", got)
	}
}

func TestANNWeightDecayShrinksWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	X := make([][]float64, 100)
	y := make([]float64, 100)
	for i := range X {
		X[i] = []float64{rng.NormFloat64()}
		y[i] = 3 * X[i][0]
	}
	free := New([]int{8}, 9)
	free.Epochs = 50
	decayed := New([]int{8}, 9)
	decayed.Epochs = 50
	decayed.L2 = 0.1
	if err := free.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := decayed.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	norm := func(m *Model) float64 {
		s := 0.0
		for _, layer := range m.weights {
			for _, w := range layer {
				s += w * w
			}
		}
		return s
	}
	if norm(decayed) >= norm(free) {
		t.Errorf("L2 did not shrink weights: %v vs %v", norm(decayed), norm(free))
	}
}
