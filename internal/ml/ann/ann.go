// Package ann implements a multilayer-perceptron regressor trained with
// mini-batch Adam — the paper's artificial-neural-network model: hidden
// layers of weighted linear transformations followed by a non-linear
// activation, with the usual pile of hyperparameters to tune. Inputs should
// be standardized; ml.Scaler does that.
//
// The training fast path runs each mini-batch through batched, loop-
// interchanged layer kernels over flat weight slices and preallocated
// per-batch scratch; inference reuses a pooled ping-pong activation
// buffer. Both are provably bit-identical to the original per-sample
// loops — every float accumulator receives the same addends in the same
// order (see equiv_test.go) — the interchange only changes which memory
// is walked contiguously.
package ann

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// Model is an MLP with ReLU hidden layers and a linear output.
type Model struct {
	Hidden    []int   // hidden layer widths, e.g. {64, 32}
	Epochs    int     // training epochs (default 60)
	BatchSize int     // mini-batch size (default 32)
	LR        float64 // Adam step size (default 1e-3)
	L2        float64 // weight decay (default 0)
	Seed      int64   // weight-init / shuffle seed
	// HuberDelta switches the loss from squared error to the Huber loss
	// with the given transition point when positive: residuals beyond the
	// delta contribute linearly, so label outliers stop dominating training
	// — the right choice when the evaluation metric is MAE/MedAE. The delta
	// is expressed in standardized target units when NormalizeTarget is on.
	HuberDelta float64
	// NormalizeTarget standardizes y to zero mean / unit variance during
	// training and un-scales predictions, so the output layer does not have
	// to learn the raw label magnitude.
	NormalizeTarget bool

	weights [][]float64 // layer l: (in+1) x out, row-major, bias last row
	dims    []int
	yMean   float64
	yStd    float64
}

// New returns an MLP with the given hidden layout.
func New(hidden []int, seed int64) *Model {
	return &Model{Hidden: append([]int(nil), hidden...), Epochs: 60, BatchSize: 32, LR: 1e-3, Seed: seed}
}

// Fit trains the network. Rows of X must all have len(X[0]) columns.
func (m *Model) Fit(X [][]float64, y []float64) error {
	n := len(X)
	if n == 0 || n != len(y) {
		return fmt.Errorf("ann: fit on %d rows / %d targets", n, len(y))
	}
	if m.Epochs <= 0 {
		m.Epochs = 60
	}
	if m.BatchSize <= 0 {
		m.BatchSize = 32
	}
	if m.LR <= 0 {
		m.LR = 1e-3
	}
	in := len(X[0])
	m.dims = append([]int{in}, m.Hidden...)
	m.dims = append(m.dims, 1)
	rng := rand.New(rand.NewSource(m.Seed))

	m.yMean, m.yStd = 0, 1
	if m.NormalizeTarget {
		for _, v := range y {
			m.yMean += v
		}
		m.yMean /= float64(n)
		va := 0.0
		for _, v := range y {
			va += (v - m.yMean) * (v - m.yMean)
		}
		m.yStd = math.Sqrt(va / float64(n))
		if m.yStd < 1e-12 {
			m.yStd = 1
		}
		scaled := make([]float64, n)
		for i, v := range y {
			scaled[i] = (v - m.yMean) / m.yStd
		}
		y = scaled
	}

	layers := len(m.dims) - 1
	m.weights = make([][]float64, layers)
	for l := 0; l < layers; l++ {
		fanIn, fanOut := m.dims[l], m.dims[l+1]
		w := make([]float64, (fanIn+1)*fanOut)
		scale := math.Sqrt(2.0 / float64(fanIn)) // He init for ReLU
		for i := 0; i < fanIn*fanOut; i++ {
			w[i] = rng.NormFloat64() * scale
		}
		m.weights[l] = w
	}

	// Adam state.
	mom := make([][]float64, layers)
	vel := make([][]float64, layers)
	grad := make([][]float64, layers)
	for l := range m.weights {
		mom[l] = make([]float64, len(m.weights[l]))
		vel[l] = make([]float64, len(m.weights[l]))
		grad[l] = make([]float64, len(m.weights[l]))
	}
	const beta1, beta2, eps = 0.9, 0.999, 1e-8
	step := 0

	// Flat per-batch scratch: activations and deltas for a whole
	// mini-batch at every layer, sample s of layer l occupying
	// acts[l][s*dims[l] : (s+1)*dims[l]]. Allocated once per Fit.
	B := m.BatchSize
	if B > n {
		B = n
	}
	acts := make([][]float64, layers+1)
	deltas := make([][]float64, layers+1)
	for l, d := range m.dims {
		acts[l] = make([]float64, B*d)
		deltas[l] = make([]float64, B*d)
	}
	maxDim := 1
	for _, d := range m.dims {
		if d > maxDim {
			maxDim = d
		}
	}
	ks := make([]int, maxDim) // active-output index scratch for backward

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	d0 := m.dims[0]
	for epoch := 0; epoch < m.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < n; start += m.BatchSize {
			end := start + m.BatchSize
			if end > n {
				end = n
			}
			batch := order[start:end]
			bs := len(batch)
			for l := range grad {
				g := grad[l]
				for i := range g {
					g[i] = 0
				}
			}
			// Forward the whole mini-batch, layer by layer.
			for s, idx := range batch {
				copy(acts[0][s*d0:(s+1)*d0], X[idx])
			}
			for l := 0; l < layers; l++ {
				fanIn, fanOut := m.dims[l], m.dims[l+1]
				w := m.weights[l]
				relu := l < layers-1
				for s := 0; s < bs; s++ {
					layerForward(w, acts[l][s*fanIn:(s+1)*fanIn], acts[l+1][s*fanOut:(s+1)*fanOut], relu)
				}
			}
			// Output deltas. Squared loss: d(0.5*(pred-y)^2)/dpred =
			// residual; Huber clips the gradient at +/- delta.
			for s, idx := range batch {
				r := acts[layers][s] - y[idx]
				if m.HuberDelta > 0 {
					if r > m.HuberDelta {
						r = m.HuberDelta
					} else if r < -m.HuberDelta {
						r = -m.HuberDelta
					}
				}
				deltas[layers][s] = r
			}
			// Backward, layer by layer: for any gradient cell the addends
			// still arrive in mini-batch sample order, as they did when
			// samples were processed one at a time.
			for l := layers - 1; l >= 0; l-- {
				fanIn, fanOut := m.dims[l], m.dims[l+1]
				w := m.weights[l]
				g := grad[l]
				for s := 0; s < bs; s++ {
					inp := acts[l][s*fanIn : (s+1)*fanIn]
					dOut := deltas[l+1][s*fanOut : (s+1)*fanOut]
					var dIn []float64
					if l > 0 {
						dIn = deltas[l][s*fanIn : (s+1)*fanIn]
					}
					layerBackward(w, g, inp, dOut, dIn, ks)
					if l > 0 {
						// ReLU derivative at the previous activation.
						for i, a := range inp {
							if a <= 0 {
								dIn[i] = 0
							}
						}
					}
				}
			}
			bsf := float64(bs)
			step++
			lr := m.LR * math.Sqrt(1-math.Pow(beta2, float64(step))) / (1 - math.Pow(beta1, float64(step)))
			for l := range m.weights {
				w := m.weights[l]
				for i := range w {
					g := grad[l][i]/bsf + m.L2*w[i]
					mom[l][i] = beta1*mom[l][i] + (1-beta1)*g
					vel[l][i] = beta2*vel[l][i] + (1-beta2)*g*g
					w[i] -= lr * mom[l][i] / (math.Sqrt(vel[l][i]) + eps)
				}
			}
		}
	}
	return nil
}

// layerForward computes one layer for one sample: out = W'in + b with an
// optional ReLU. The i-outer / o-inner interchange walks the weight row
// and the output contiguously; each out[o] still receives its bias first
// and then the i-ascending addends — the exact accumulation order of the
// per-output loop it replaces, so results are bit-identical.
func layerForward(w, in, out []float64, relu bool) {
	fanIn, fanOut := len(in), len(out)
	copy(out, w[fanIn*fanOut:(fanIn+1)*fanOut]) // bias row
	for i, a := range in {
		wr := w[i*fanOut : (i+1)*fanOut]
		for o, wv := range wr {
			out[o] += a * wv
		}
	}
	if relu {
		for o, v := range out {
			if v < 0 {
				out[o] = 0
			}
		}
	}
}

// layerBackward accumulates one sample's weight gradients into g and, when
// dIn is non-nil, writes the back-propagated deltas. The original loop
// skipped outputs with a zero delta; the active-output list ks preserves
// that skip (it is observable in the sign of zero sums) while letting the
// i-outer interchange walk g and w rows contiguously. Per-accumulator
// addend order is unchanged: ascending active o, one addend per sample.
func layerBackward(w, g, in, dOut, dIn []float64, ks []int) {
	fanIn, fanOut := len(in), len(dOut)
	nk := 0
	for o, d := range dOut {
		if d != 0 {
			ks[nk] = o
			nk++
		}
	}
	act := ks[:nk]
	gb := g[fanIn*fanOut:]
	for _, o := range act {
		gb[o] += dOut[o]
	}
	if dIn == nil {
		// Input layer: deltas are never consumed, skip computing them.
		for i, a := range in {
			gi := g[i*fanOut : (i+1)*fanOut]
			for _, o := range act {
				gi[o] += dOut[o] * a
			}
		}
		return
	}
	for i, a := range in {
		gi := g[i*fanOut : (i+1)*fanOut]
		wi := w[i*fanOut : (i+1)*fanOut]
		s := 0.0
		for _, o := range act {
			d := dOut[o]
			gi[o] += d * a
			s += d * wi[o]
		}
		dIn[i] = s
	}
}

// predictScratch is the pooled ping-pong activation pair for inference.
type predictScratch struct {
	a, b []float64
}

var predictPool = sync.Pool{New: func() any { return new(predictScratch) }}

// predictWith runs one forward pass using ps's buffers, growing them on
// first use. Arithmetic is identical to training's forward kernels.
func (m *Model) predictWith(ps *predictScratch, x []float64) float64 {
	maxDim := 0
	for _, d := range m.dims {
		if d > maxDim {
			maxDim = d
		}
	}
	if cap(ps.a) < maxDim || cap(ps.b) < maxDim {
		ps.a = make([]float64, maxDim)
		ps.b = make([]float64, maxDim)
	}
	cur, nxt := ps.a[:maxDim], ps.b[:maxDim]
	d0 := m.dims[0]
	nc := copy(cur[:d0], x)
	for i := nc; i < d0; i++ {
		cur[i] = 0 // short rows see zeros, as with a fresh buffer
	}
	layers := len(m.weights)
	for l := 0; l < layers; l++ {
		fanIn, fanOut := m.dims[l], m.dims[l+1]
		layerForward(m.weights[l], cur[:fanIn], nxt[:fanOut], l < layers-1)
		cur, nxt = nxt, cur
	}
	out := cur[0]
	if m.yStd != 0 && (m.yMean != 0 || m.yStd != 1) {
		out = out*m.yStd + m.yMean
	}
	return out
}

// Predict runs a forward pass.
func (m *Model) Predict(x []float64) float64 {
	if m.weights == nil {
		return 0
	}
	ps := predictPool.Get().(*predictScratch)
	v := m.predictWith(ps, x)
	predictPool.Put(ps)
	return v
}

// PredictBatchInto writes the estimate for X[i] into out[i] without
// allocating in steady state (ml.BatchPredictor): one pooled scratch
// serves the whole batch. Values are identical to Predict.
func (m *Model) PredictBatchInto(out []float64, X [][]float64) {
	if m.weights == nil {
		for i := range X {
			out[i] = 0
		}
		return
	}
	ps := predictPool.Get().(*predictScratch)
	for i, x := range X {
		out[i] = m.predictWith(ps, x)
	}
	predictPool.Put(ps)
}
