// Package ann implements a multilayer-perceptron regressor trained with
// mini-batch Adam — the paper's artificial-neural-network model: hidden
// layers of weighted linear transformations followed by a non-linear
// activation, with the usual pile of hyperparameters to tune. Inputs should
// be standardized; ml.Scaler does that.
package ann

import (
	"fmt"
	"math"
	"math/rand"
)

// Model is an MLP with ReLU hidden layers and a linear output.
type Model struct {
	Hidden    []int   // hidden layer widths, e.g. {64, 32}
	Epochs    int     // training epochs (default 60)
	BatchSize int     // mini-batch size (default 32)
	LR        float64 // Adam step size (default 1e-3)
	L2        float64 // weight decay (default 0)
	Seed      int64   // weight-init / shuffle seed
	// HuberDelta switches the loss from squared error to the Huber loss
	// with the given transition point when positive: residuals beyond the
	// delta contribute linearly, so label outliers stop dominating training
	// — the right choice when the evaluation metric is MAE/MedAE. The delta
	// is expressed in standardized target units when NormalizeTarget is on.
	HuberDelta float64
	// NormalizeTarget standardizes y to zero mean / unit variance during
	// training and un-scales predictions, so the output layer does not have
	// to learn the raw label magnitude.
	NormalizeTarget bool

	weights [][]float64 // layer l: (in+1) x out, row-major, bias last row
	dims    []int
	yMean   float64
	yStd    float64
}

// New returns an MLP with the given hidden layout.
func New(hidden []int, seed int64) *Model {
	return &Model{Hidden: append([]int(nil), hidden...), Epochs: 60, BatchSize: 32, LR: 1e-3, Seed: seed}
}

// Fit trains the network.
func (m *Model) Fit(X [][]float64, y []float64) error {
	n := len(X)
	if n == 0 || n != len(y) {
		return fmt.Errorf("ann: fit on %d rows / %d targets", n, len(y))
	}
	if m.Epochs <= 0 {
		m.Epochs = 60
	}
	if m.BatchSize <= 0 {
		m.BatchSize = 32
	}
	if m.LR <= 0 {
		m.LR = 1e-3
	}
	in := len(X[0])
	m.dims = append([]int{in}, m.Hidden...)
	m.dims = append(m.dims, 1)
	rng := rand.New(rand.NewSource(m.Seed))

	m.yMean, m.yStd = 0, 1
	if m.NormalizeTarget {
		for _, v := range y {
			m.yMean += v
		}
		m.yMean /= float64(n)
		va := 0.0
		for _, v := range y {
			va += (v - m.yMean) * (v - m.yMean)
		}
		m.yStd = math.Sqrt(va / float64(n))
		if m.yStd < 1e-12 {
			m.yStd = 1
		}
		scaled := make([]float64, n)
		for i, v := range y {
			scaled[i] = (v - m.yMean) / m.yStd
		}
		y = scaled
	}

	layers := len(m.dims) - 1
	m.weights = make([][]float64, layers)
	for l := 0; l < layers; l++ {
		fanIn, fanOut := m.dims[l], m.dims[l+1]
		w := make([]float64, (fanIn+1)*fanOut)
		scale := math.Sqrt(2.0 / float64(fanIn)) // He init for ReLU
		for i := 0; i < fanIn*fanOut; i++ {
			w[i] = rng.NormFloat64() * scale
		}
		m.weights[l] = w
	}

	// Adam state.
	mom := make([][]float64, layers)
	vel := make([][]float64, layers)
	grad := make([][]float64, layers)
	for l := range m.weights {
		mom[l] = make([]float64, len(m.weights[l]))
		vel[l] = make([]float64, len(m.weights[l]))
		grad[l] = make([]float64, len(m.weights[l]))
	}
	const beta1, beta2, eps = 0.9, 0.999, 1e-8
	step := 0

	acts := make([][]float64, layers+1)
	deltas := make([][]float64, layers+1)
	for l, d := range m.dims {
		acts[l] = make([]float64, d)
		deltas[l] = make([]float64, d)
	}

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < m.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < n; start += m.BatchSize {
			end := start + m.BatchSize
			if end > n {
				end = n
			}
			for l := range grad {
				for i := range grad[l] {
					grad[l][i] = 0
				}
			}
			for _, idx := range order[start:end] {
				m.forward(X[idx], acts)
				// Squared loss: d(0.5*(pred-y)^2)/dpred = residual. Huber
				// clips the gradient at +/- delta.
				r := acts[layers][0] - y[idx]
				if m.HuberDelta > 0 {
					if r > m.HuberDelta {
						r = m.HuberDelta
					} else if r < -m.HuberDelta {
						r = -m.HuberDelta
					}
				}
				deltas[layers][0] = r
				m.backward(acts, deltas, grad)
			}
			bs := float64(end - start)
			step++
			lr := m.LR * math.Sqrt(1-math.Pow(beta2, float64(step))) / (1 - math.Pow(beta1, float64(step)))
			for l := range m.weights {
				w := m.weights[l]
				for i := range w {
					g := grad[l][i]/bs + m.L2*w[i]
					mom[l][i] = beta1*mom[l][i] + (1-beta1)*g
					vel[l][i] = beta2*vel[l][i] + (1-beta2)*g*g
					w[i] -= lr * mom[l][i] / (math.Sqrt(vel[l][i]) + eps)
				}
			}
		}
	}
	return nil
}

// forward fills acts[0..layers]; hidden layers apply ReLU.
func (m *Model) forward(x []float64, acts [][]float64) {
	copy(acts[0], x)
	layers := len(m.weights)
	for l := 0; l < layers; l++ {
		fanIn, fanOut := m.dims[l], m.dims[l+1]
		w := m.weights[l]
		out := acts[l+1]
		for o := 0; o < fanOut; o++ {
			s := w[fanIn*fanOut+o] // bias row
			for i := 0; i < fanIn; i++ {
				s += acts[l][i] * w[i*fanOut+o]
			}
			if l < layers-1 && s < 0 {
				s = 0 // ReLU
			}
			out[o] = s
		}
	}
}

// backward accumulates gradients into grad given deltas at the output.
func (m *Model) backward(acts, deltas, grad [][]float64) {
	layers := len(m.weights)
	for l := layers - 1; l >= 0; l-- {
		fanIn, fanOut := m.dims[l], m.dims[l+1]
		w := m.weights[l]
		g := grad[l]
		dOut := deltas[l+1]
		dIn := deltas[l]
		for i := 0; i < fanIn; i++ {
			dIn[i] = 0
		}
		for o := 0; o < fanOut; o++ {
			d := dOut[o]
			if d == 0 {
				continue
			}
			g[fanIn*fanOut+o] += d
			for i := 0; i < fanIn; i++ {
				g[i*fanOut+o] += d * acts[l][i]
				dIn[i] += d * w[i*fanOut+o]
			}
		}
		if l > 0 {
			// ReLU derivative at the previous activation.
			for i := 0; i < fanIn; i++ {
				if acts[l][i] <= 0 {
					dIn[i] = 0
				}
			}
		}
	}
}

// Predict runs a forward pass.
func (m *Model) Predict(x []float64) float64 {
	if m.weights == nil {
		return 0
	}
	acts := make([][]float64, len(m.dims))
	for l, d := range m.dims {
		acts[l] = make([]float64, d)
	}
	m.forward(x, acts)
	out := acts[len(acts)-1][0]
	if m.yStd != 0 && (m.yMean != 0 || m.yStd != 1) {
		out = out*m.yStd + m.yMean
	}
	return out
}
