package ann

import (
	"encoding/json"
	"fmt"
)

// modelJSON is the wire form of a trained MLP.
type modelJSON struct {
	Hidden    []int       `json:"hidden"`
	Epochs    int         `json:"epochs"`
	BatchSize int         `json:"batch_size"`
	LR        float64     `json:"lr"`
	L2        float64     `json:"l2"`
	Huber     float64     `json:"huber,omitempty"`
	NormY     bool        `json:"norm_y,omitempty"`
	YMean     float64     `json:"y_mean,omitempty"`
	YStd      float64     `json:"y_std,omitempty"`
	Seed      int64       `json:"seed"`
	Dims      []int       `json:"dims"`
	Weights   [][]float64 `json:"weights"`
}

// MarshalJSON serializes the trained network.
func (m *Model) MarshalJSON() ([]byte, error) {
	return json.Marshal(modelJSON{
		Hidden:    m.Hidden,
		Epochs:    m.Epochs,
		BatchSize: m.BatchSize,
		LR:        m.LR,
		L2:        m.L2,
		Huber:     m.HuberDelta,
		NormY:     m.NormalizeTarget,
		YMean:     m.yMean,
		YStd:      m.yStd,
		Seed:      m.Seed,
		Dims:      m.dims,
		Weights:   m.weights,
	})
}

// UnmarshalJSON restores a trained network.
func (m *Model) UnmarshalJSON(data []byte) error {
	var in modelJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("ann: %w", err)
	}
	if len(in.Dims) > 0 {
		if len(in.Weights) != len(in.Dims)-1 {
			return fmt.Errorf("ann: %d weight layers for %d dims", len(in.Weights), len(in.Dims))
		}
		for l := 0; l < len(in.Weights); l++ {
			want := (in.Dims[l] + 1) * in.Dims[l+1]
			if len(in.Weights[l]) != want {
				return fmt.Errorf("ann: layer %d has %d weights, want %d", l, len(in.Weights[l]), want)
			}
		}
	}
	m.Hidden = in.Hidden
	m.Epochs = in.Epochs
	m.BatchSize = in.BatchSize
	m.LR = in.LR
	m.L2 = in.L2
	m.HuberDelta = in.Huber
	m.NormalizeTarget = in.NormY
	m.yMean = in.YMean
	m.yStd = in.YStd
	m.Seed = in.Seed
	m.dims = in.Dims
	m.weights = in.Weights
	return nil
}
