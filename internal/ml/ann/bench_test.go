package ann

// Old-vs-new benchmarks for the ANN fast path: the *Ref benchmarks drive
// the frozen per-sample reference from equiv_test.go, the others the
// batched loop-interchanged kernels. scripts/bench.sh pairs them up in
// BENCH_PR4.json.

import (
	"testing"
)

func annBenchFixture() ([][]float64, []float64, [][]float64) {
	X, y := annEquivData(33, 256, 24)
	probe, _ := annEquivData(34, 128, 24)
	return X, y, probe
}

func BenchmarkFitRef(b *testing.B) {
	X, y, _ := annBenchFixture()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := &refANN{Hidden: []int{32, 16}, Epochs: 4, BatchSize: 32, LR: 1e-3, Seed: 1}
		if err := m.fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFit(b *testing.B) {
	X, y, _ := annBenchFixture()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := &Model{Hidden: []int{32, 16}, Epochs: 4, BatchSize: 32, LR: 1e-3, Seed: 1}
		if err := m.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredictBatchRef(b *testing.B) {
	X, y, probe := annBenchFixture()
	m := &refANN{Hidden: []int{32, 16}, Epochs: 2, BatchSize: 32, LR: 1e-3, Seed: 1}
	if err := m.fit(X, y); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, x := range probe {
			_ = m.predict(x)
		}
	}
}

func BenchmarkPredictBatchInto(b *testing.B) {
	X, y, probe := annBenchFixture()
	m := &Model{Hidden: []int{32, 16}, Epochs: 2, BatchSize: 32, LR: 1e-3, Seed: 1}
	if err := m.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	out := make([]float64, len(probe))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PredictBatchInto(out, probe)
	}
}
